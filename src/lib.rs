//! # bnnkc — Exploiting Kernel Compression on BNNs
//!
//! An open-source reproduction of *"Exploiting Kernel Compression on
//! BNNs"* (F. Silfa, J. M. Arnau, A. González — DATE 2023,
//! [arXiv:2212.00608](https://arxiv.org/abs/2212.00608)).
//!
//! The paper observes that the 9-bit channel patterns ("bit sequences")
//! of binary 3×3 kernels are heavily skewed in frequency, compresses them
//! with a table-based simplified Huffman code plus a Hamming-1 clustering
//! pass, and adds a small decoding unit to a mobile CPU so the compressed
//! kernels also run *faster* (loads stream and overlap) instead of slower
//! (software decoding overhead).
//!
//! This crate re-exports the building blocks:
//!
//! * [`bitnn`] — the BNN inference substrate (bit-packed tensors, channel
//!   packing, xnor-popcount kernels, the ReActNet model, calibrated
//!   synthetic weights);
//! * [`kc_core`] — the compression scheme itself (frequency analysis,
//!   simplified + full Huffman coding, clustering, codecs);
//! * [`simcpu`] — a cycle-approximate CPU model with the paper's decoding
//!   unit (`lddu` / `ldps`);
//! * [`serve`] — the batch-coalescing inference daemon (`bnnkc serve`):
//!   model registry, backpressure, hot-swap, wire protocol.
//!
//! # Quickstart
//!
//! ```
//! use bnnkc::prelude::*;
//!
//! // A ReActNet-shaped model with weights calibrated to the paper's
//! // published bit-sequence statistics.
//! let model = ReActNet::tiny(42);
//!
//! // Compress every 3x3 kernel: encoding + Hamming-1 clustering.
//! let codec = KernelCodec::paper_clustered();
//! let ratio = model_compression_ratio(&model, &codec)?;
//! assert!(ratio.ratio() > 1.0);
//! # Ok::<(), kc_core::KcError>(())
//! ```
//!
//! See `examples/` for end-to-end scenarios and `crates/bench` for the
//! harnesses that regenerate every table and figure of the paper.

#![warn(missing_docs)]

pub use bitnn;
pub use bnnkc_serve as serve;
pub use kc_core;
pub use simcpu;

/// Convenient single-import surface for examples and downstream users.
pub mod prelude {
    pub use bitnn::backend::{Backend, BackendKind, CpuBackend, ScalarBackend};
    pub use bitnn::engine::Engine;
    pub use bitnn::exec::ExecPolicy;
    pub use bitnn::graph::arch::{
        attach_weights, build_model, build_spec, reactnet_spec, sample_conv3_kernels, Arch,
    };
    pub use bitnn::graph::{
        ConvGeometry, GraphBuilder, GraphNode, GraphSpec, ModelGraph, NodeOp, NodeSpec, OpSpec,
    };
    pub use bitnn::infer::{
        compare_models, logits_digest, synthetic_batch, Agreement, RUN_INPUT_SALT,
    };
    pub use bitnn::model::{BlockSpec, OpCategory, ReActNet, ReActNetConfig};
    pub use bitnn::pack::PackedKernel;
    pub use bitnn::tensor::{BitTensor, Tensor};
    pub use bitnn::weightgen::SeqDistribution;
    pub use bnnkc_serve::{
        serve_listener, Client, InferSlot, ModelShape, ServeConfig, ServeError, Server,
    };
    pub use kc_core::cluster::{ClusterConfig, ClusterPlan};
    pub use kc_core::codec::{model_compression_ratio, CompressedKernel, KernelCodec};
    pub use kc_core::container::{
        read_container, read_model_container, read_model_container_unverified, write_atomic,
        write_container, write_model_container, write_model_container_v2, write_model_container_v3,
        Container, ModelContainer, MODEL_VERSION_V2, MODEL_VERSION_V3,
    };
    pub use kc_core::delta::{apply_patch, diff_containers, inspect_patch, PatchInfo, PatchStats};
    pub use kc_core::digest::{Digest, DIGEST_LEN};
    pub use kc_core::huffman::{FullHuffman, SimplifiedTree, TreeConfig};
    pub use kc_core::stream_decode::GroupDecoder;
    pub use kc_core::wire::{ErrorCode, Request, Response};
    pub use kc_core::{BitSeq, FreqTable};
    pub use simcpu::config::CpuConfig;
    pub use simcpu::run::{
        compare_modes, run_model, run_model_streams, run_spec_streams, run_workload, Mode,
    };
    pub use simcpu::trace::KernelStream;
}
