//! `bnnkc` — command-line front end for the kernel-compression pipeline.
//!
//! ```text
//! bnnkc compress   --out model.bkcm [--seed 1] [--scale 0.25] [--no-cluster]
//! bnnkc inspect    --in model.bkcm
//! bnnkc verify     --in model.bkcm [--seed 1] [--scale 0.25] [--no-cluster]
//! bnnkc simulate   [--image 224] [--ratio 1.33]
//! ```
//!
//! `compress` builds the 13 calibrated ReActNet kernels, compresses each,
//! and writes one model container. `inspect` prints per-kernel statistics
//! from the container alone. `verify` regenerates the kernels and checks
//! the container decodes to them (bit-exactly without clustering; within
//! Hamming distance 1 per channel with it). `simulate` runs the timing
//! model in the three modes.

use bnnkc::prelude::*;
use kc_core::container::{read_model_container, write_model_container};
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = args.first() else {
        eprintln!("usage: bnnkc <compress|inspect|verify|simulate> [flags]");
        return ExitCode::FAILURE;
    };
    let result = match cmd.as_str() {
        "compress" => cmd_compress(&args),
        "inspect" => cmd_inspect(&args),
        "verify" => cmd_verify(&args),
        "simulate" => cmd_simulate(&args),
        other => {
            eprintln!("unknown command `{other}`");
            return ExitCode::FAILURE;
        }
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

fn flag_value<'a>(args: &'a [String], flag: &str) -> Option<&'a str> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .map(String::as_str)
}

/// Parse `flag`'s value, or use `default` when the flag is absent.
/// A present-but-unparseable value is an error, not a silent default.
fn parse_flag<T: std::str::FromStr>(
    args: &[String],
    flag: &str,
    default: T,
) -> Result<T, Box<dyn std::error::Error>> {
    match flag_value(args, flag) {
        None => Ok(default),
        Some(v) => v
            .parse()
            .map_err(|_| format!("invalid value `{v}` for {flag}").into()),
    }
}

fn codec_from(args: &[String]) -> KernelCodec {
    if args.iter().any(|a| a == "--no-cluster") {
        KernelCodec::paper()
    } else {
        KernelCodec::paper_clustered()
    }
}

fn build_kernels(args: &[String]) -> Result<Vec<BitTensor>, Box<dyn std::error::Error>> {
    use rand::SeedableRng;
    let seed: u64 = parse_flag(args, "--seed", 1)?;
    let scale: f64 = parse_flag(args, "--scale", 0.25)?;
    if !scale.is_finite() || scale <= 0.0 {
        return Err("--scale must be positive".into());
    }
    // Channel schedule comes from the canonical full model, so the CLI's
    // kernels always track the architecture the simulator runs.
    let blocks = ReActNetConfig::full().blocks;
    Ok(blocks
        .iter()
        .enumerate()
        .map(|(i, spec)| {
            let block = i + 1;
            let c = ((spec.in_ch as f64 * scale).round() as usize).max(8);
            let mut rng = rand::rngs::StdRng::seed_from_u64(seed ^ block as u64);
            SeqDistribution::for_block(block, 0).sample_kernel(c, c, &mut rng)
        })
        .collect())
}

fn cmd_compress(args: &[String]) -> Result<(), Box<dyn std::error::Error>> {
    let out = flag_value(args, "--out").ok_or("--out <file> is required")?;
    let codec = codec_from(args);
    let kernels = build_kernels(args)?;
    let mut compressed = Vec::new();
    let (mut orig_bits, mut stream_bits) = (0usize, 0usize);
    for (i, k) in kernels.iter().enumerate() {
        let ck = codec.compress(k)?;
        orig_bits += ck.original_bits();
        stream_bits += ck.stream_bits();
        println!(
            "block {:>2}: {:>7} -> {:>7} bits ({:.3}x)",
            i + 1,
            ck.original_bits(),
            ck.stream_bits(),
            ck.ratio()
        );
        compressed.push(ck);
    }
    let bytes = write_model_container(&compressed);
    std::fs::write(out, &bytes)?;
    println!(
        "\nwrote {out}: {} bytes, aggregate kernel ratio {:.3}x",
        bytes.len(),
        orig_bits as f64 / stream_bits as f64
    );
    Ok(())
}

fn cmd_inspect(args: &[String]) -> Result<(), Box<dyn std::error::Error>> {
    let input = flag_value(args, "--in").ok_or("--in <file> is required")?;
    let bytes = std::fs::read(input)?;
    let containers = read_model_container(&bytes)?;
    println!(
        "{input}: {} compressed kernels, {} bytes total\n",
        containers.len(),
        bytes.len()
    );
    for (i, c) in containers.iter().enumerate() {
        let seqs = c.filters * c.channels;
        println!(
            "kernel {:>2}: {}x{}x3x3, stream {:>7} bits ({:.3}x), code lengths {:?}, tables {:?}",
            i + 1,
            c.filters,
            c.channels,
            c.stream_bits,
            (seqs * 9) as f64 / c.stream_bits as f64,
            c.tree.length_table(),
            (0..c.tree.config().nodes())
                .map(|n| c.tree.table(n).len())
                .collect::<Vec<_>>(),
        );
    }
    Ok(())
}

fn cmd_verify(args: &[String]) -> Result<(), Box<dyn std::error::Error>> {
    let input = flag_value(args, "--in").ok_or("--in <file> is required")?;
    let clustered = !args.iter().any(|a| a == "--no-cluster");
    let bytes = std::fs::read(input)?;
    let containers = read_model_container(&bytes)?;
    let kernels = build_kernels(args)?;
    if containers.len() != kernels.len() {
        return Err(format!(
            "container holds {} kernels, expected {}",
            containers.len(),
            kernels.len()
        )
        .into());
    }
    for (i, (c, original)) in containers.iter().zip(&kernels).enumerate() {
        let decoded = c.decode_kernel()?;
        if clustered {
            let shape = original.shape();
            for f in 0..shape[0] {
                for ch in 0..shape[1] {
                    let a = bitnn::weightgen::read_sequence(original, f, ch);
                    let b = bitnn::weightgen::read_sequence(&decoded, f, ch);
                    if (a ^ b).count_ones() > 1 {
                        return Err(format!(
                            "kernel {} channel ({f},{ch}) moved {} bits",
                            i + 1,
                            (a ^ b).count_ones()
                        )
                        .into());
                    }
                }
            }
        } else if &decoded != original {
            return Err(format!("kernel {} did not round-trip bit-exactly", i + 1).into());
        }
        println!("kernel {:>2}: OK", i + 1);
    }
    println!("\nall kernels verified");
    Ok(())
}

fn cmd_simulate(args: &[String]) -> Result<(), Box<dyn std::error::Error>> {
    let image: usize = parse_flag(args, "--image", 224)?;
    let ratio: f64 = parse_flag(args, "--ratio", 1.33)?;
    if image == 0 {
        return Err("--image must be at least 1".into());
    }
    if !ratio.is_finite() || ratio <= 0.0 {
        return Err("--ratio must be positive".into());
    }
    let mut cfg = ReActNetConfig::full();
    cfg.image_size = image;
    let model = ReActNet::new(cfg, 1);
    let wls = model.workloads();
    let cpu = CpuConfig::default();
    let base = run_model(&cpu, &wls, Mode::Baseline, &[1.0]);
    let sw = run_model(&cpu, &wls, Mode::SoftwareDecode, &[ratio]);
    let hw = run_model(&cpu, &wls, Mode::HardwareDecode, &[ratio]);
    println!("image {image}x{image}, compression ratio {ratio}:");
    println!("  baseline: {:>12} cycles", base.total_cycles);
    println!(
        "  software: {:>12} cycles ({:.3}x slower)",
        sw.total_cycles,
        sw.total_cycles as f64 / base.total_cycles as f64
    );
    println!(
        "  hardware: {:>12} cycles ({:.3}x faster)",
        hw.total_cycles,
        base.total_cycles as f64 / hw.total_cycles as f64
    );
    Ok(())
}
