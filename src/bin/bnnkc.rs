//! `bnnkc` — command-line front end for the kernel-compression pipeline.
//!
//! ```text
//! bnnkc compress   --out model.bkcm [--arch reactnet] [--seed 1]
//!                  [--scale 0.25] [--image 224] [--no-cluster] [--v3]
//! bnnkc inspect    --in model.bkcm|patch.bkcp
//! bnnkc verify     --in model.bkcm [--integrity] [--arch A] [--seed 1]
//!                  [--scale 0.25] [--no-cluster] [--backend auto|cpu|scalar]
//! bnnkc run        --in model.bkcm [--arch A] [--seed 1] [--scale 0.25]
//!                  [--image 224] [--batch 1] [--threads N|auto] [--offline]
//!                  [--backend auto|cpu|scalar]
//! bnnkc diff       base.bkcm new.bkcm -o patch.bkcp
//! bnnkc patch      base.bkcm patch.bkcp -o new.bkcm
//! bnnkc simulate   [--arch A] [--scale 1.0] [--image 224]
//!                  [--ratio 1.33 | --in model.bkcm]
//! bnnkc serve      [--in model.bkcm] [--model name=model.bkcm]...
//!                  [--addr 127.0.0.1:0] [--threads N|auto]
//!                  [--queue-depth 256] [--max-batch auto] [--flush-us 200]
//!                  [--seed 1] [--image 32]
//! bnnkc features   [--json]
//! ```
//!
//! Every command speaks the model-graph IR (`bitnn::graph`), so the whole
//! pipeline is architecture-generic: `--arch` selects a built-in family
//! (`reactnet`, `vggsmall`, `resnetlite`).
//!
//! `compress` builds the family's graph spec, samples its calibrated
//! binary 3×3 kernels, compresses each, and writes one **v2** model
//! container carrying the graph topology next to the kernel streams.
//! `inspect` prints the topology and per-kernel statistics from the
//! container alone. `verify` checks the container's topology against the
//! requested family/scale, regenerates the kernels, and confirms the
//! streams decode to them (bit-exactly without clustering; within
//! Hamming distance 1 per channel with it). `run` executes the full
//! forward pass *from the compressed container* through the graph
//! executor: the container geometry is validated against the model
//! up front, then each kernel is stream-decoded straight into
//! channel-packed lane words (`--offline` switches to the
//! decompress-then-pack reference path, which produces bit-identical
//! logits). `simulate` runs the timing model — with `--in` the per-layer
//! stream sizes, sequence counts, and decoder configurations come from
//! the actual container (any architecture), not a synthetic ratio.
//! `serve` runs the batch-coalescing inference daemon: a model registry
//! with per-entry batching queues, backpressure, and wire-protocol
//! hot-swap (see `crates/serve`). `features` reports what this host
//! offers the execution backends: detected CPU features, the selected
//! SIMD level, hardware parallelism, the backend `auto` resolves to, and
//! the GEMM kernel variant the micro-autotuner picks per shape class —
//! `--json` emits the same facts machine-readably.
//!
//! `run` executes through the selected execution backend (`--backend`):
//! `cpu` is the fused engine path, `scalar` the naive reference oracle,
//! and `auto` (the default) honors `BITNN_BACKEND` then falls back to
//! `cpu`. All backends produce bit-identical logits; `verify` accepts the
//! flag for symmetry and reports which backend the choice resolves to.
//!
//! `diff` emits a `.bkcp` delta patch between two containers (unchanged
//! kernels by digest reference, near-identical ones as sparse channel
//! edits, the rest as full records); `patch` applies it, writing the
//! target **v3** container atomically (temp + fsync + rename — an
//! interrupted write never leaves a torn file). `compress --v3` writes
//! the integrity-checked v3 format directly; `verify --integrity` checks
//! only the stored digests, and `inspect` prints per-record sizes and
//! digests for containers and patches alike, exiting nonzero when any
//! record fails to decode.
//!
//! v1 containers (13 anonymous ReActNet kernels) still load everywhere:
//! their ReActNet schedule is reconstructed from the kernel dimensions.
//!
//! Unrecognized flags are rejected: a typo like `--seeed 7` is an error,
//! not a silently applied default.

use bnnkc::prelude::*;
use simcpu::energy::EnergyModel;
use simcpu::exec::ExecStats;
use simcpu::mem::MemStats;
use simcpu::trace::STREAM_BASE;
use std::process::ExitCode;
use std::time::Instant;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = args.first() else {
        eprintln!(
            "usage: bnnkc <compress|inspect|verify|run|diff|patch|simulate|serve|features> [flags]"
        );
        return ExitCode::FAILURE;
    };
    let result = match cmd.as_str() {
        "compress" => cmd_compress(&args),
        "inspect" => cmd_inspect(&args),
        "verify" => cmd_verify(&args),
        "run" => cmd_run(&args),
        "diff" => cmd_diff(&args),
        "patch" => cmd_patch(&args),
        "simulate" => cmd_simulate(&args),
        "serve" => cmd_serve(&args),
        "features" => cmd_features(&args),
        other => {
            eprintln!("unknown command `{other}`");
            return ExitCode::FAILURE;
        }
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

type CliResult = Result<(), Box<dyn std::error::Error>>;

/// Validate that every argument after the command is a known flag:
/// `value_flags` consume the following argument, `bool_flags` stand
/// alone. Unknown flags and value flags missing their value are errors —
/// never silently ignored.
fn check_flags(cmd: &str, args: &[String], value_flags: &[&str], bool_flags: &[&str]) -> CliResult {
    let mut i = 1; // args[0] is the command itself
    while i < args.len() {
        let a = args[i].as_str();
        if value_flags.contains(&a) {
            match args.get(i + 1) {
                Some(v) if !v.starts_with("--") => i += 2,
                _ => return Err(format!("flag {a} requires a value").into()),
            }
        } else if bool_flags.contains(&a) {
            i += 1;
        } else {
            let known: Vec<&str> = value_flags.iter().chain(bool_flags).copied().collect();
            let detail = if known.is_empty() {
                format!("`{cmd}` takes no flags")
            } else {
                format!("known flags: {}", known.join(", "))
            };
            return Err(format!("unknown flag `{a}` for `{cmd}` ({detail})").into());
        }
    }
    Ok(())
}

/// Like [`check_flags`] but for commands that also take positional
/// arguments (`diff`/`patch`): returns the positionals in order, with
/// the same strictness about unknown flags and missing values.
fn positional_args<'a>(
    cmd: &str,
    args: &'a [String],
    value_flags: &[&str],
) -> Result<Vec<&'a str>, Box<dyn std::error::Error>> {
    let mut positionals = Vec::new();
    let mut i = 1;
    while i < args.len() {
        let a = args[i].as_str();
        if value_flags.contains(&a) {
            match args.get(i + 1) {
                Some(v) if !v.starts_with("--") => i += 2,
                _ => return Err(format!("flag {a} requires a value").into()),
            }
        } else if a.starts_with('-') {
            return Err(format!(
                "unknown flag `{a}` for `{cmd}` (known flags: {})",
                value_flags.join(", ")
            )
            .into());
        } else {
            positionals.push(a);
            i += 1;
        }
    }
    Ok(positionals)
}

fn flag_value<'a>(args: &'a [String], flag: &str) -> Option<&'a str> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .map(String::as_str)
}

/// Every occurrence of a repeatable value flag, in order.
fn flag_values<'a>(args: &'a [String], flag: &str) -> Vec<&'a str> {
    args.iter()
        .enumerate()
        .filter(|(_, a)| a.as_str() == flag)
        .filter_map(|(i, _)| args.get(i + 1))
        .map(String::as_str)
        .collect()
}

/// Parse `flag`'s value, or use `default` when the flag is absent.
/// A present-but-unparseable value is an error, not a silent default.
fn parse_flag<T: std::str::FromStr>(
    args: &[String],
    flag: &str,
    default: T,
) -> Result<T, Box<dyn std::error::Error>> {
    match flag_value(args, flag) {
        None => Ok(default),
        Some(v) => v
            .parse()
            .map_err(|_| format!("invalid value `{v}` for {flag}").into()),
    }
}

fn codec_from(args: &[String]) -> KernelCodec {
    if args.iter().any(|a| a == "--no-cluster") {
        KernelCodec::paper()
    } else {
        KernelCodec::paper_clustered()
    }
}

/// The `--arch` flag, when present.
fn arch_flag(args: &[String]) -> Result<Option<Arch>, Box<dyn std::error::Error>> {
    match flag_value(args, "--arch") {
        None => Ok(None),
        Some(v) => Ok(Some(v.parse::<Arch>()?)),
    }
}

fn parse_scale(args: &[String], default: f64) -> Result<f64, Box<dyn std::error::Error>> {
    let scale: f64 = parse_flag(args, "--scale", default)?;
    if !scale.is_finite() || scale <= 0.0 {
        return Err("--scale must be positive".into());
    }
    Ok(scale)
}

/// Parse `--threads` through the engine's shared grammar: a positive
/// integer or `auto` (also the default), rejecting `0` with a pointer at
/// `auto` instead of silently running single-threaded.
fn parse_threads(args: &[String]) -> Result<usize, Box<dyn std::error::Error>> {
    bnnkc::bitnn::exec::parse_thread_count(flag_value(args, "--threads")).map_err(Into::into)
}

/// Parse `--backend` (default `auto`); the returned kind may still be
/// `Auto` — resolution to a concrete backend happens where it is used.
fn parse_backend(args: &[String]) -> Result<BackendKind, Box<dyn std::error::Error>> {
    match flag_value(args, "--backend") {
        None => Ok(BackendKind::Auto),
        Some(v) => v.parse::<BackendKind>().map_err(Into::into),
    }
}

/// The architecture a container belongs to: its stored arch tag (v2), or
/// ReActNet for v1 containers.
fn container_arch(container: &ModelContainer) -> Result<Arch, Box<dyn std::error::Error>> {
    match &container.spec {
        Some(spec) => spec
            .arch
            .parse::<Arch>()
            .map_err(|_| format!("container was written for unknown arch `{}`", spec.arch).into()),
        None => Ok(Arch::ReActNet),
    }
}

/// Resolve the effective architecture for a read-path command and reject
/// an `--arch` flag that contradicts the container.
fn resolve_arch(
    args: &[String],
    container: &ModelContainer,
) -> Result<Arch, Box<dyn std::error::Error>> {
    let stored = container_arch(container)?;
    match arch_flag(args)? {
        Some(requested) if requested != stored => Err(format!(
            "container was written for --arch {stored}, but --arch {requested} was requested"
        )
        .into()),
        _ => Ok(stored),
    }
}

/// Replace a spec's advisory input image size (the executor and simulator
/// follow `--image`, not the size the container was compressed at).
fn spec_with_image(mut spec: GraphSpec, image: usize) -> GraphSpec {
    if let Some(node) = spec.nodes.first_mut() {
        if let OpSpec::Input { channels, .. } = node.op {
            node.op = OpSpec::Input { channels, image };
        }
    }
    spec
}

/// Up-front geometry check for `run`/`verify`: the container's topology
/// must match the spec of the model the flags describe.
fn check_container_geometry(
    container_spec: &GraphSpec,
    model_spec: &GraphSpec,
    arch: Arch,
    scale: f64,
) -> CliResult {
    if let Err(e) = model_spec.same_topology_ignoring_image(container_spec) {
        return Err(format!(
            "container geometry does not match --arch {arch} --scale {scale}: {e} \
             (wrong --scale or --arch?)"
        )
        .into());
    }
    Ok(())
}

fn cmd_compress(args: &[String]) -> CliResult {
    check_flags(
        "compress",
        args,
        &["--out", "--seed", "--scale", "--arch", "--image"],
        &["--no-cluster", "--v3"],
    )?;
    let out = flag_value(args, "--out").ok_or("--out <file> is required")?;
    let arch = arch_flag(args)?.unwrap_or(Arch::ReActNet);
    let seed: u64 = parse_flag(args, "--seed", 1)?;
    let scale = parse_scale(args, 0.25)?;
    let image: usize = parse_flag(args, "--image", 224)?;
    let codec = codec_from(args);
    let spec = build_spec(arch, scale, image)?;
    let kernels = sample_conv3_kernels(&spec, seed)?;
    let mut compressed = Vec::new();
    let (mut orig_bits, mut stream_bits) = (0usize, 0usize);
    for (i, k) in kernels.iter().enumerate() {
        let ck = codec.compress(k)?;
        orig_bits += ck.original_bits();
        stream_bits += ck.stream_bits();
        println!(
            "conv {:>2}: {:>7} -> {:>7} bits ({:.3}x)",
            i + 1,
            ck.original_bits(),
            ck.stream_bits(),
            ck.ratio()
        );
        compressed.push(ck);
    }
    let v3 = args.iter().any(|a| a == "--v3");
    let bytes = if v3 {
        write_model_container_v3(&spec, &compressed)?
    } else {
        write_model_container_v2(&spec, &compressed)?
    };
    write_atomic(std::path::Path::new(out), &bytes)?;
    println!(
        "\nwrote {out}: arch {arch}, v{} container, {} bytes, aggregate kernel ratio {:.3}x",
        if v3 { 3 } else { 2 },
        bytes.len(),
        orig_bits as f64 / stream_bits as f64
    );
    Ok(())
}

fn cmd_inspect(args: &[String]) -> CliResult {
    check_flags("inspect", args, &["--in"], &["--stats"])?;
    let input = flag_value(args, "--in").ok_or("--in <file> is required")?;
    let stats = args.iter().any(|a| a == "--stats");
    let bytes = std::fs::read(input)?;
    if bytes.len() >= 4 && &bytes[..4] == bnnkc::kc_core::delta::PATCH_MAGIC {
        return inspect_patch_file(input, &bytes);
    }
    let container = read_model_container(&bytes)?;
    let arch = match &container.spec {
        Some(spec) => format!("arch {} ({} graph nodes)", spec.arch, spec.nodes.len()),
        None => "no topology; ReActNet assumed".to_string(),
    };
    println!(
        "{input}: v{} container, {} compressed kernels, {} bytes total, {arch}",
        container.version,
        container.kernels.len(),
        bytes.len()
    );
    println!(
        "file digest {} ({})\n",
        Digest::of(&bytes),
        if container.version == MODEL_VERSION_V3 {
            "stored record digests verified on load"
        } else {
            "no stored digests in this version"
        }
    );
    // Every record must actually decode; a stream that parses but does
    // not decode is a warning and the command exits nonzero.
    let mut warnings = Vec::new();
    for (i, c) in container.kernels.iter().enumerate() {
        let seqs = c.filters * c.channels;
        let record = c.to_bytes();
        println!(
            "kernel {:>2}: {}x{}x3x3, record {:>6} B, stream {:>7} bits ({:.3}x), \
             code lengths {:?}, tables {:?}, digest {}",
            i + 1,
            c.filters,
            c.channels,
            record.len(),
            c.stream_bits,
            (seqs * 9) as f64 / c.stream_bits as f64,
            c.tree.length_table(),
            (0..c.tree.config().nodes())
                .map(|n| c.tree.table(n).len())
                .collect::<Vec<_>>(),
            Digest::of(&record),
        );
        if let Err(e) = c.decode_kernel() {
            warnings.push(format!("kernel {}: stream does not decode: {e}", i + 1));
        }
        // --stats: sequence-skew statistics from the record's dedup bank
        // (paper Fig. 2: a handful of 9-bit values dominate each kernel).
        if stats {
            match c.decode_bank() {
                Ok(bank) => {
                    let top: Vec<String> = bank
                        .top_k(5)
                        .into_iter()
                        .map(|(seq, count)| {
                            format!(
                                "{seq:#05x}x{count} ({:.1}%)",
                                100.0 * count as f64 / bank.total_count() as f64
                            )
                        })
                        .collect();
                    println!(
                        "           {} unique of {} seqs (dedup {:.2}x), \
                         {} H1-cluster roots, top-5 [{}]",
                        bank.unique_count(),
                        bank.total_count(),
                        bank.dedup_ratio(),
                        bank.h1_root_count(),
                        top.join(", "),
                    );
                }
                Err(e) => {
                    warnings.push(format!("kernel {}: bank does not decode: {e}", i + 1));
                }
            }
        }
    }
    if container.spec.is_none() {
        if let Err(e) = container.spec_or_reactnet(224) {
            warnings.push(format!("v1 kernel list is not a ReActNet schedule: {e}"));
        }
    }
    if !warnings.is_empty() {
        for w in &warnings {
            eprintln!("warning: {w}");
        }
        return Err(format!("{} parse warning(s)", warnings.len()).into());
    }
    Ok(())
}

/// `inspect` on a `.bkcp` patch: verifies the whole-file checksum, then
/// prints the base/target digests and the per-entry encoding.
fn inspect_patch_file(input: &str, bytes: &[u8]) -> CliResult {
    let info = inspect_patch(bytes)?;
    println!(
        "{input}: bkcp patch, {} bytes, {} entries ({} same, {} edits, {} full)",
        bytes.len(),
        info.entries.len(),
        info.stats.same,
        info.stats.edits,
        info.stats.full
    );
    println!("base container digest:   {}", info.base_digest);
    println!("target container digest: {}\n", info.target_digest);
    for (node, kind, payload) in &info.entries {
        println!("node {node:>3}: {kind:<5} ({payload} payload bytes)");
    }
    Ok(())
}

fn cmd_verify(args: &[String]) -> CliResult {
    check_flags(
        "verify",
        args,
        &["--in", "--seed", "--scale", "--arch", "--backend"],
        &["--no-cluster", "--integrity"],
    )?;
    let backend = parse_backend(args)?.resolve();
    let input = flag_value(args, "--in").ok_or("--in <file> is required")?;
    let clustered = !args.iter().any(|a| a == "--no-cluster");
    let seed: u64 = parse_flag(args, "--seed", 1)?;
    let scale = parse_scale(args, 0.25)?;
    let bytes = std::fs::read(input)?;
    if args.iter().any(|a| a == "--integrity") {
        return verify_integrity(input, &bytes);
    }
    let container = read_model_container(&bytes)?;
    let arch = resolve_arch(args, &container)?;
    // Geometry first: the container must describe the family/scale the
    // flags claim, reported clearly before any decoding happens.
    let container_spec = container.spec_or_reactnet(224)?;
    let expected_spec = build_spec(arch, scale, 224)?;
    check_container_geometry(&container_spec, &expected_spec, arch, scale)?;
    let kernels = sample_conv3_kernels(&container_spec, seed)?;
    for (i, (c, original)) in container.kernels.iter().zip(&kernels).enumerate() {
        let decoded = c.decode_kernel()?;
        // The streaming group decoder must agree with the offline path on
        // every verified container — the packed words the engine would
        // consume are cross-checked here for free.
        let streamed = c.decode_packed()?;
        if streamed != PackedKernel::pack(&decoded)? {
            return Err(format!("kernel {}: stream decode diverges", i + 1).into());
        }
        if clustered {
            let shape = original.shape();
            for f in 0..shape[0] {
                for ch in 0..shape[1] {
                    let a = bitnn::weightgen::read_sequence(original, f, ch);
                    let b = bitnn::weightgen::read_sequence(&decoded, f, ch);
                    if (a ^ b).count_ones() > 1 {
                        return Err(format!(
                            "kernel {} channel ({f},{ch}) moved {} bits",
                            i + 1,
                            (a ^ b).count_ones()
                        )
                        .into());
                    }
                }
            }
        } else if &decoded != original {
            return Err(format!("kernel {} did not round-trip bit-exactly", i + 1).into());
        }
        println!("kernel {:>2}: OK", i + 1);
    }
    println!("\nall kernels verified ({arch}; execution backend: {backend})");
    Ok(())
}

/// `verify --integrity`: check the stored digests only — no kernel
/// regeneration, no model comparison. For a v3 container the verifying
/// reader proves every record, the graph section, and the container
/// trailer; for v1/v2 there is nothing stored to verify, so the digests
/// are computed and printed for pinning elsewhere.
fn verify_integrity(input: &str, bytes: &[u8]) -> CliResult {
    let container = read_model_container(bytes)?;
    for (i, d) in container.record_digests().iter().enumerate() {
        println!("kernel {:>2}: digest {d}", i + 1);
    }
    println!("file digest: {}", Digest::of(bytes));
    if container.version == MODEL_VERSION_V3 {
        println!(
            "\n{input}: v3 integrity verified ({} record digests, graph digest, \
             container digest all match)",
            container.kernels.len()
        );
    } else {
        println!(
            "\n{input}: v{} container carries no stored digests; computed digests \
             printed above (re-compress with --v3 for mandatory integrity)",
            container.version
        );
    }
    Ok(())
}

fn cmd_diff(args: &[String]) -> CliResult {
    let pos = positional_args("diff", args, &["-o", "--out"])?;
    let [base_path, new_path] = pos.as_slice() else {
        return Err("usage: bnnkc diff <base.bkcm> <new.bkcm> -o <patch.bkcp>".into());
    };
    let out = flag_value(args, "-o")
        .or_else(|| flag_value(args, "--out"))
        .ok_or("-o <patch.bkcp> is required")?;
    let base = std::fs::read(base_path)?;
    let new = std::fs::read(new_path)?;
    let (patch, stats) = diff_containers(&base, &new)?;
    write_atomic(std::path::Path::new(out), &patch)?;
    println!(
        "wrote {out}: {} bytes ({:.1}% of {new_path}); {} kernels unchanged, \
         {} as sparse edits, {} full",
        patch.len(),
        100.0 * patch.len() as f64 / new.len() as f64,
        stats.same,
        stats.edits,
        stats.full
    );
    Ok(())
}

fn cmd_patch(args: &[String]) -> CliResult {
    let pos = positional_args("patch", args, &["-o", "--out"])?;
    let [base_path, patch_path] = pos.as_slice() else {
        return Err("usage: bnnkc patch <base.bkcm> <patch.bkcp> -o <new.bkcm>".into());
    };
    let out = flag_value(args, "-o")
        .or_else(|| flag_value(args, "--out"))
        .ok_or("-o <new.bkcm> is required")?;
    let base = std::fs::read(base_path)?;
    let patch = std::fs::read(patch_path)?;
    let target = apply_patch(&base, &patch)?;
    write_atomic(std::path::Path::new(out), &target)?;
    println!(
        "wrote {out}: v3 container, {} bytes, digest {} (verified against the patch)",
        target.len(),
        Digest::of(&target)
    );
    Ok(())
}

fn cmd_run(args: &[String]) -> CliResult {
    check_flags(
        "run",
        args,
        &[
            "--in",
            "--seed",
            "--scale",
            "--image",
            "--batch",
            "--threads",
            "--arch",
            "--backend",
        ],
        &["--offline"],
    )?;
    let input = flag_value(args, "--in").ok_or("--in <file> is required")?;
    let seed: u64 = parse_flag(args, "--seed", 1)?;
    let scale = parse_scale(args, 0.25)?;
    let image: usize = parse_flag(args, "--image", 224)?;
    let batch: usize = parse_flag(args, "--batch", 1)?;
    let threads = parse_threads(args)?;
    let backend = parse_backend(args)?.resolve();
    let offline = args.iter().any(|a| a == "--offline");
    if image == 0 {
        return Err("--image must be at least 1".into());
    }
    if batch == 0 {
        return Err("--batch must be at least 1".into());
    }

    let bytes = std::fs::read(input)?;
    let container = read_model_container(&bytes)?;
    let arch = resolve_arch(args, &container)?;
    let container_spec = container.spec_or_reactnet(image)?;

    // Build the weighted model graph and validate the container against
    // it *before* decoding anything: a wrong --scale/--arch is reported
    // as a geometry mismatch here, not as a shape panic mid-forward.
    let mut model = build_model(arch, scale, image, seed)?;
    check_container_geometry(&container_spec, model.spec(), arch, scale)?;

    // Deploy the compressed kernels. Streamed path: Huffman stream →
    // channel-packed lane words → engine weight forms, no intermediate
    // [K, C, 3, 3] tensor; layers the engine's dedup heuristic selects
    // for compressed-domain execution instead keep the stream's dedup
    // bank and never materialize dense lane words at all. Offline path:
    // decompress to a flat tensor, then re-pack — the bit-exact
    // reference.
    let engine = Engine::with_threads(threads);
    let t0 = Instant::now();
    let mut bank_deploys = 0usize;
    for (i, c) in container.kernels.iter().enumerate() {
        if offline {
            model.set_conv3_weights(i, c.decode_kernel()?)?;
        } else if engine.uses_bank(3, 3, c.channels) {
            model.set_conv3_bank(i, c.decode_bank()?)?;
            bank_deploys += 1;
        } else {
            model.set_conv3_packed(i, c.decode_packed()?)?;
        }
    }
    let decode_ms = t0.elapsed().as_secs_f64() * 1e3;

    let input_channels = match container_spec.nodes.first().map(|n| n.op) {
        Some(OpSpec::Input { channels, .. }) => channels,
        _ => 3,
    };
    let inputs = synthetic_batch(batch, input_channels, image, seed ^ RUN_INPUT_SALT);
    let t1 = Instant::now();
    let outputs = match backend {
        // The engine path keeps its batch-level parallel entry point.
        BackendKind::Auto | BackendKind::Cpu => model.forward_batch(&inputs, &engine)?,
        // Any other backend runs item-by-item through the generic
        // backend entry point (bit-exact with the engine path).
        kind => {
            let b = kind.create(engine.clone());
            let mut state = model.state_for(b.as_ref());
            let mut outs = Vec::with_capacity(inputs.len());
            for x in &inputs {
                let mut out = Tensor::default();
                model.forward_on(b.as_ref(), &mut state, x, &mut out)?;
                outs.push(out);
            }
            outs
        }
    };
    let forward_ms = t1.elapsed().as_secs_f64() * 1e3;

    println!(
        "{input}: arch {arch}, {} kernels deployed via {} in {decode_ms:.1} ms",
        container.kernels.len(),
        if offline {
            "offline decompress+pack".to_string()
        } else if bank_deploys > 0 {
            format!(
                "streaming decode ({bank_deploys} as dedup banks for \
                 compressed-domain execution, rest as lane words)"
            )
        } else {
            "streaming decode (stream -> lane words -> engine)".to_string()
        }
    );
    println!(
        "forward: backend {backend}, batch {batch}, image {image}x{image}, {threads} threads, \
         {forward_ms:.1} ms"
    );
    for (i, out) in outputs.iter().enumerate() {
        let logits = out.data();
        let argmax = logits
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.total_cmp(b.1))
            .map(|(j, _)| j)
            .unwrap_or(0);
        let head: Vec<String> = logits
            .iter()
            .take(4)
            .map(|v| format!("{:08x}", v.to_bits()))
            .collect();
        println!(
            "item {i}: argmax {argmax}, logits[0..{}] = [{}], digest {:016x}",
            head.len(),
            head.join(" "),
            logits_digest(logits)
        );
    }
    Ok(())
}

fn cmd_simulate(args: &[String]) -> CliResult {
    check_flags(
        "simulate",
        args,
        &["--image", "--ratio", "--in", "--arch", "--scale"],
        &[],
    )?;
    let image: usize = parse_flag(args, "--image", 224)?;
    if image == 0 {
        return Err("--image must be at least 1".into());
    }
    if let Some(input) = flag_value(args, "--in") {
        if flag_value(args, "--ratio").is_some() {
            return Err("--ratio conflicts with --in: ratios come from the container".into());
        }
        if flag_value(args, "--scale").is_some() {
            return Err("--scale conflicts with --in: geometry comes from the container".into());
        }
        return simulate_container(args, input, image);
    }
    let ratio: f64 = parse_flag(args, "--ratio", 1.33)?;
    if !ratio.is_finite() || ratio <= 0.0 {
        return Err("--ratio must be positive".into());
    }
    let arch = arch_flag(args)?.unwrap_or(Arch::ReActNet);
    let scale = parse_scale(args, 1.0)?;
    let spec = build_spec(arch, scale, image)?;
    let wls = spec.workloads();
    let cpu = CpuConfig::default();
    let base = run_model(&cpu, &wls, Mode::Baseline, &[1.0]);
    let sw = run_model(&cpu, &wls, Mode::SoftwareDecode, &[ratio]);
    let hw = run_model(&cpu, &wls, Mode::HardwareDecode, &[ratio]);
    println!("arch {arch}, image {image}x{image}, compression ratio {ratio}:");
    print_mode_cycles(&base, &sw, &hw);
    Ok(())
}

/// `simulate --in`: every 3×3 layer's stream length, sequence count, and
/// decoder configuration (paper Table III) come from the actual `.bkcm`
/// records, and the layer geometry comes from the container's graph
/// topology — so the speedup and energy reported here describe a real
/// compressed model of any architecture, not a synthetic ratio.
fn simulate_container(args: &[String], input: &str, image: usize) -> CliResult {
    let bytes = std::fs::read(input)?;
    let container = read_model_container(&bytes)?;
    // The simulator needs only the embedded spec, so custom (non-built-in)
    // architectures simulate too; --arch is accepted purely as a
    // cross-check against the stored tag.
    let arch = match &container.spec {
        Some(spec) => spec.arch.clone(),
        None => Arch::ReActNet.name().to_string(),
    };
    if let Some(requested) = arch_flag(args)? {
        if requested.name() != arch {
            return Err(format!(
                "container was written for --arch {arch}, but --arch {requested} was requested"
            )
            .into());
        }
    }
    let spec = spec_with_image(container.spec_or_reactnet(image)?, image);
    let wls = spec.workloads();

    // Each record's dedup bank gives the unique-sequence count the
    // decode unit's uncompressed table exploits: `streams` models a unit
    // with no dedup information, `dedup_streams` the skew-aware unit.
    let banks = container
        .kernels
        .iter()
        .map(|c| c.decode_bank())
        .collect::<Result<Vec<_>, _>>()?;
    let streams: Vec<KernelStream> = container
        .kernels
        .iter()
        .map(|c| {
            let num_seqs = (c.filters * c.channels) as u64;
            KernelStream {
                stream_bytes: c.stream.len() as u64,
                num_seqs,
                unique_seqs: num_seqs,
            }
        })
        .collect();
    let dedup_streams: Vec<KernelStream> = streams
        .iter()
        .zip(&banks)
        .map(|(s, bank)| KernelStream {
            unique_seqs: bank.unique_count() as u64,
            ..*s
        })
        .collect();

    println!("{input}: arch {arch}, per-kernel decoder configurations (Table III):");
    let (mut orig_bits, mut comp_bits) = (0u64, 0u64);
    for (i, c) in container.kernels.iter().enumerate() {
        let dc = c.decoder_config(STREAM_BASE);
        orig_bits += dc.num_sequences * 9;
        comp_bits += c.stream_bits as u64;
        println!(
            "kernel {:>2}: {:>4}x{:<4} {:>6} seqs ({:>3} unique, dedup {:.2}x), \
             stream {:>7} B, ratio {:.3}x, code lengths {:?}",
            i + 1,
            c.filters,
            c.channels,
            dc.num_sequences,
            banks[i].unique_count(),
            banks[i].dedup_ratio(),
            dc.stream_len_bytes,
            streams[i].ratio(),
            dc.node_code_lengths,
        );
    }
    println!(
        "aggregate kernel ratio {:.3}x\n",
        orig_bits as f64 / comp_bits as f64
    );

    let cpu = CpuConfig::default();
    let base = run_model(&cpu, &wls, Mode::Baseline, &[1.0]);
    let sw = run_spec_streams(&cpu, &spec, Mode::SoftwareDecode, &streams)?;
    let hw = run_spec_streams(&cpu, &spec, Mode::HardwareDecode, &streams)?;
    let hw_dedup = run_spec_streams(&cpu, &spec, Mode::HardwareDecode, &dedup_streams)?;
    println!("image {image}x{image}, streams from {input}:");
    print_mode_cycles(&base, &sw, &hw);
    println!(
        "  hw+dedup: {:>12} cycles ({:.3}x faster; {} table hits, \
         consumer stalls {} -> {})",
        hw_dedup.total_cycles,
        base.total_cycles as f64 / hw_dedup.total_cycles as f64,
        hw_dedup.unit.table_hits,
        hw.unit.consumer_stall_cycles,
        hw_dedup.unit.consumer_stall_cycles,
    );

    // First-order energy (decoding-unit sequences: each 3×3 layer
    // re-streams its kernel once per pixel tile).
    let em = EnergyModel::default();
    let line = cpu.l1.line_bytes as u64;
    let decoded_seqs: u64 = wls
        .iter()
        .filter(|w| w.category == OpCategory::Conv3x3)
        .zip(&streams)
        .map(|(w, s)| ((w.oh * w.ow) as u64).div_ceil(cpu.pixel_tile as u64) * s.num_seqs)
        .sum();
    let energy = |run: &simcpu::run::ModelRun, seqs: u64| {
        let mem = run.layers.iter().fold(MemStats::default(), |mut acc, l| {
            acc.dram_bytes += l.mem.dram_bytes;
            acc.l1_hits += l.mem.l1_hits;
            acc.l2_hits += l.mem.l2_hits;
            acc.dram_accesses += l.mem.dram_accesses;
            acc
        });
        let exec = ExecStats {
            cycles: run.total_cycles,
            ops: run.layers.iter().map(|l| l.exec.ops).sum(),
            ..ExecStats::default()
        };
        em.estimate(&exec, &mem, seqs, line).total_uj()
    };
    let (e_base, e_sw, e_hw) = (energy(&base, 0), energy(&sw, 0), energy(&hw, decoded_seqs));
    println!("energy (first-order):");
    println!("  baseline: {e_base:>10.1} uJ");
    println!("  software: {e_sw:>10.1} uJ ({:.3}x)", e_sw / e_base);
    println!("  hardware: {e_hw:>10.1} uJ ({:.3}x)", e_hw / e_base);
    Ok(())
}

/// `bnnkc serve`: run the batch-coalescing inference daemon on a TCP
/// socket until a client sends a shutdown request. Models come from
/// `--in <file>` (registered as `default`) and any number of
/// `--model <name>=<file>` flags; each gets its own batching queue and
/// worker. `--addr 127.0.0.1:0` binds an ephemeral port — the resolved
/// address is printed on the first line so scripts can parse it.
fn cmd_serve(args: &[String]) -> CliResult {
    check_flags(
        "serve",
        args,
        &[
            "--in",
            "--model",
            "--addr",
            "--threads",
            "--queue-depth",
            "--max-batch",
            "--flush-us",
            "--seed",
            "--image",
        ],
        &[],
    )?;
    let addr = flag_value(args, "--addr").unwrap_or("127.0.0.1:0");
    let threads = parse_threads(args)?;
    let queue_depth: usize = parse_flag(args, "--queue-depth", 256)?;
    let max_batch: usize = parse_flag(args, "--max-batch", 0)?;
    let flush_us: u64 = parse_flag(args, "--flush-us", 200)?;
    let seed: u64 = parse_flag(args, "--seed", 1)?;
    let image: usize = parse_flag(args, "--image", 32)?;
    if queue_depth == 0 {
        return Err("--queue-depth must be at least 1".into());
    }
    if image == 0 {
        return Err("--image must be at least 1".into());
    }

    let mut models: Vec<(String, &str)> = Vec::new();
    if let Some(path) = flag_value(args, "--in") {
        models.push(("default".to_string(), path));
    }
    for spec in flag_values(args, "--model") {
        let Some((name, path)) = spec.split_once('=') else {
            return Err(format!("--model takes <name>=<file>, got `{spec}`").into());
        };
        if name.is_empty() || path.is_empty() {
            return Err(format!("--model takes <name>=<file>, got `{spec}`").into());
        }
        models.push((name.to_string(), path));
    }
    if models.is_empty() {
        return Err("at least one of --in <file> or --model <name>=<file> is required".into());
    }

    let cfg = ServeConfig {
        policy: ExecPolicy::with_threads(threads),
        queue_depth,
        max_batch,
        flush: std::time::Duration::from_micros(flush_us),
        seed,
        image,
    };
    let server = Server::new(cfg);
    let listener = std::net::TcpListener::bind(addr)?;
    // First line, machine-parseable: the resolved address.
    println!("bnnkc serve: listening on {}", listener.local_addr()?);
    for (name, path) in &models {
        let shape = server.register_path(name, std::path::Path::new(path))?;
        println!(
            "registered `{name}` from {path}: input {}x{}x{}, {} classes, \
             max batch {}, queue depth {queue_depth}",
            shape.channels,
            shape.image,
            shape.image,
            shape.classes,
            server
                .stats_report()
                .models
                .iter()
                .find(|m| &m.name == name)
                .map_or(0, |m| m.max_batch),
        );
    }
    println!("serving with {threads} threads (shutdown via the wire protocol)");
    serve_listener(&server, &listener)?;
    let s = server.stats_report();
    println!(
        "drained: {} served in {} batches, {} rejected, {} swaps",
        s.served, s.batches, s.rejected, s.swaps
    );
    Ok(())
}

/// Minimal JSON string escaping for `features --json` (keys and values
/// here are ASCII identifiers, but stay safe on principle).
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// `bnnkc features`: what this host offers the execution backends —
/// detected CPU features, the SIMD level the kernels dispatch at (after
/// any `BITNN_SIMD` cap), hardware parallelism, which backend `auto`
/// resolves to, the GEMM microkernel variant the autotuner picks per
/// kernel shape class, and the per-geometry conv lowering (streaming
/// direct vs im2col) the conv autotuner picks.
fn cmd_features(args: &[String]) -> CliResult {
    check_flags("features", args, &[], &["--json"])?;
    use bnnkc::bitnn::{engine, exec, ops::gemm, simd};

    let f = simd::detect();
    let cap = std::env::var("BITNN_SIMD").ok();
    let backend_env = std::env::var("BITNN_BACKEND").ok();
    let conv_env = std::env::var("BITNN_CONV").ok();
    let kind = parse_backend(args)?; // always Auto: features takes no value flags
    let choices = gemm::warm_gemm_tables();
    let conv_choices = engine::warm_conv_table();

    if args.iter().any(|a| a == "--json") {
        // Hand-written JSON (this workspace builds offline, without a
        // serde implementation) — same convention as the perfsuite
        // emitter.
        let mut out = String::from("{\n");
        out.push_str(&format!(
            "  \"cpu_features\": {{\"popcnt\": {}, \"avx2\": {}, \"avx512_vpopcntdq\": {}}},\n",
            f.popcnt, f.avx2, f.avx512
        ));
        out.push_str(&format!(
            "  \"simd_level\": \"{}\",\n",
            json_escape(simd::level().name())
        ));
        out.push_str(&format!(
            "  \"simd_env\": {},\n",
            cap.as_deref()
                .map_or("null".to_string(), |v| format!("\"{}\"", json_escape(v)))
        ));
        out.push_str(&format!(
            "  \"hardware_threads\": {},\n",
            exec::hardware_threads()
        ));
        out.push_str(&format!(
            "  \"pool_workers\": {},\n",
            exec::hardware_threads().saturating_sub(1)
        ));
        out.push_str(&format!("  \"backend\": \"{}\",\n", kind.resolve()));
        out.push_str(&format!(
            "  \"backend_env\": {},\n",
            backend_env
                .as_deref()
                .map_or("null".to_string(), |v| format!("\"{}\"", json_escape(v)))
        ));
        out.push_str("  \"gemm_autotuner\": [\n");
        for (i, choice) in choices.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"class\": \"{}\", \"lanes\": {}, \"variant\": \"{}\", \"source\": \"{}\"}}{}\n",
                json_escape(choice.class.name()),
                choice.class.representative_lanes(),
                json_escape(choice.variant.name()),
                match choice.source {
                    simd::ChoiceSource::Autotuned => "autotuned",
                    simd::ChoiceSource::Forced => "forced",
                },
                if i + 1 < choices.len() { "," } else { "" },
            ));
        }
        out.push_str("  ],\n");
        out.push_str(&format!(
            "  \"conv_env\": {},\n",
            conv_env
                .as_deref()
                .map_or("null".to_string(), |v| format!("\"{}\"", json_escape(v)))
        ));
        out.push_str("  \"conv_autotuner\": [\n");
        for (i, choice) in conv_choices.iter().enumerate() {
            let g = choice.geom;
            out.push_str(&format!(
                "    {{\"channels\": {}, \"filters\": {}, \"h\": {}, \"w\": {}, \
                 \"stride\": {}, \"pad\": {}, \"lowering\": \"{}\", \"source\": \"{}\"}}{}\n",
                g.channels,
                g.filters,
                g.h,
                g.w,
                g.stride,
                g.pad,
                json_escape(choice.lowering.name()),
                match choice.source {
                    simd::ChoiceSource::Autotuned => "autotuned",
                    simd::ChoiceSource::Forced => "forced",
                },
                if i + 1 < conv_choices.len() { "," } else { "" },
            ));
        }
        out.push_str("  ]\n}");
        println!("{out}");
        return Ok(());
    }

    let yn = |b: bool| if b { "yes" } else { "no" };
    println!("cpu features:");
    println!("  popcnt:            {}", yn(f.popcnt));
    println!("  avx2:              {}", yn(f.avx2));
    println!("  avx512-vpopcntdq:  {}", yn(f.avx512));
    println!(
        "simd level: {} (BITNN_SIMD {})",
        simd::level().name(),
        cap.as_deref()
            .map_or("unset".to_string(), |v| format!("= {v}")),
    );
    println!("hardware threads: {}", exec::hardware_threads());

    println!(
        "backend: {} (auto; BITNN_BACKEND {})",
        kind.resolve(),
        backend_env
            .as_deref()
            .map_or("unset".to_string(), |v| format!("= {v}")),
    );

    println!("gemm microkernel selection ({}):", simd::level().name());
    println!("  <=2 lanes (<=128 ch): short-row path (fixed)");
    for choice in choices {
        let lanes = choice.class.representative_lanes();
        println!(
            "  {:>6} (~{} lanes): {} ({})",
            choice.class.name(),
            lanes,
            choice.variant.name(),
            match choice.source {
                simd::ChoiceSource::Autotuned => "autotuned",
                simd::ChoiceSource::Forced => "forced via BITNN_GEMM",
            },
        );
    }

    println!(
        "conv lowering selection (BITNN_CONV {}):",
        conv_env
            .as_deref()
            .map_or("unset".to_string(), |v| format!("= {v}")),
    );
    for choice in conv_choices {
        let g = choice.geom;
        println!(
            "  {}x{} c{} -> k{} s{} p{}: {} ({})",
            g.h,
            g.w,
            g.channels,
            g.filters,
            g.stride,
            g.pad,
            choice.lowering.name(),
            match choice.source {
                simd::ChoiceSource::Autotuned => "autotuned",
                simd::ChoiceSource::Forced => "forced via BITNN_CONV",
            },
        );
    }
    Ok(())
}

fn print_mode_cycles(
    base: &simcpu::run::ModelRun,
    sw: &simcpu::run::ModelRun,
    hw: &simcpu::run::ModelRun,
) {
    println!("  baseline: {:>12} cycles", base.total_cycles);
    println!(
        "  software: {:>12} cycles ({:.3}x slower)",
        sw.total_cycles,
        sw.total_cycles as f64 / base.total_cycles as f64
    );
    println!(
        "  hardware: {:>12} cycles ({:.3}x faster)",
        hw.total_cycles,
        base.total_cycles as f64 / hw.total_cycles as f64
    );
}
