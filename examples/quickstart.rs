//! Quickstart: build a BNN, inspect its bit-sequence statistics, compress
//! a kernel, and verify the round trip.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use bnnkc::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. A ReActNet-shaped binary network. Weights are synthetic but
    //    calibrated to the bit-sequence statistics the paper published
    //    for the trained ImageNet model (Table II / Fig. 3).
    let model = ReActNet::tiny(42);
    println!(
        "Model: {} basic blocks, {} classes",
        model.num_blocks(),
        model.config().num_classes
    );

    // 2. Run an inference to see the substrate working end to end.
    let input = synthetic_batch(1, 3, 32, 7).remove(0);
    let logits = model.forward(&input);
    println!(
        "Forward pass: input {:?} -> logits {:?}, predicted class {}",
        input.shape(),
        logits.shape(),
        logits.argmax().expect("non-empty logits")
    );

    // 3. Look at block 1's 3x3 kernel the way the paper does: as a bag of
    //    9-bit "bit sequences", one per channel (Fig. 2).
    let kernel = model.conv3_weights(0);
    let freq = FreqTable::from_kernel(kernel)?;
    println!(
        "\nBlock 1 kernel: {} sequences, {} distinct",
        freq.total(),
        freq.distinct()
    );
    println!("Top-5 sequences:");
    for (seq, count) in freq.top_k(5) {
        println!(
            "  seq {seq:>3} ({seq:b}): {count} uses ({:.1}%)",
            freq.percent(seq)
        );
    }
    println!(
        "Top-64 coverage: {:.1}%   entropy: {:.2} bits/sequence",
        freq.top_k_coverage_pct(64),
        freq.entropy_bits()
    );

    // 4. Compress it with the paper's pipeline (simplified Huffman tree +
    //    Hamming-1 clustering) and decompress.
    let codec = KernelCodec::paper_clustered();
    let compressed = codec.compress(kernel)?;
    println!(
        "\nCompression: {} bits -> {} bits (ratio {:.2}x, {} sequences substituted)",
        compressed.original_bits(),
        compressed.stream_bits(),
        compressed.ratio(),
        compressed.substitutions().len()
    );
    let restored = compressed.decompress()?;
    assert_eq!(restored.shape(), kernel.shape());
    println!("Round trip OK: decompressed kernel has the original shape and");
    println!("every channel within Hamming distance 1 of the original.");

    Ok(())
}
