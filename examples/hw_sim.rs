//! Hardware simulation walkthrough: configure the decoding unit the way
//! the `lddu` instruction would (paper Table III), then compare the three
//! execution modes on one weight-bound layer and on a whole model.
//!
//! ```text
//! cargo run --release --example hw_sim
//! ```

use bitnn::model::{LayerWorkload, OpCategory};
use bnnkc::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // --- The decoder configuration structure (Table III) ---
    let kernel = SeqDistribution::for_block(7, 0).sample_kernel(128, 128, &mut seeded(3));
    let compressed = KernelCodec::paper_clustered().compress(&kernel)?;
    let decoder_cfg = compressed.decoder_config(0x4000_0000);
    println!("Decoder configuration structure (what `lddu` loads, Table III):");
    println!("  number of bit sequences : {}", decoder_cfg.num_sequences);
    println!("  compressed stream ptr   : {:#x}", decoder_cfg.stream_ptr);
    println!(
        "  compressed stream bytes : {}",
        decoder_cfg.stream_len_bytes
    );
    println!(
        "  Huffman node code bits  : {:?}",
        decoder_cfg.node_code_lengths
    );
    println!(
        "  node table entries      : {:?}",
        decoder_cfg.node_table_sizes
    );
    println!(
        "  uncompressed-table usage: {}/512 entries ({} bytes of the 1 KB budget)",
        decoder_cfg.table_entries(),
        decoder_cfg.table_entries() * 2
    );

    // --- One weight-bound layer in all three modes ---
    let cpu = CpuConfig::default();
    println!("\n{}", cpu.to_table());
    let layer = LayerWorkload {
        name: "block7.conv3x3".into(),
        category: OpCategory::Conv3x3,
        in_ch: 512,
        out_ch: 512,
        kh: 3,
        kw: 3,
        oh: 14,
        ow: 14,
        precision_bits: 1,
    };
    println!("Layer {} ({} binary MACs):", layer.name, layer.macs());
    let base = run_workload(&cpu, &layer, Mode::Baseline, 1.0);
    let sw = run_workload(&cpu, &layer, Mode::SoftwareDecode, compressed.ratio());
    let hw = run_workload(&cpu, &layer, Mode::HardwareDecode, compressed.ratio());
    for (name, st) in [("baseline", &base), ("software", &sw), ("hardware", &hw)] {
        println!(
            "  {name:<9} {:>9} cycles  ({:>6.2} ms @1GHz, {:>6.1} MB DRAM, {:.2}x vs baseline)",
            st.cycles,
            cpu.cycles_to_ms(st.cycles),
            st.mem.dram_bytes as f64 / 1e6,
            base.cycles as f64 / st.cycles as f64,
        );
    }

    // --- Whole tiny model ---
    let model = ReActNet::tiny(5);
    let wls = model.workloads();
    let speedup = compare_modes(&cpu, &wls, Mode::HardwareDecode, &[compressed.ratio()]);
    println!(
        "\nWhole tiny model: baseline {} cycles vs hardware {} cycles -> {:.2}x",
        speedup.baseline_cycles,
        speedup.scheme_cycles,
        speedup.factor()
    );
    println!("(Small models fit their kernels in cache, so the gain is modest; run");
    println!(" `cargo run -p bench --release --bin speedup` for the full-geometry 1.35x.)");

    Ok(())
}

fn seeded(seed: u64) -> rand::rngs::StdRng {
    use rand::SeedableRng;
    rand::rngs::StdRng::seed_from_u64(seed)
}
