//! Build a custom BNN topology with the model-graph IR, execute it
//! through the fused graph executor, and push its 3×3 kernels through
//! the full compression pipeline — no architecture-specific code
//! anywhere.
//!
//! ```text
//! cargo run --release --example graph_model
//! ```

use bitnn::engine::Scratch;
use bitnn::layers::{BatchNorm, BinConv2d, QuantConv2d, QuantLinear, RPReLU, RSign};
use bitnn::ops::conv::Conv2dParams;
use bitnn::weightgen::{random_floats, random_kernel};
use bnnkc::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Assemble a small residual topology by hand: stem, one
    //    identity-shortcut binary block, one stride-2 pool-shortcut
    //    block, global pool, classifier. The builder validates topology,
    //    infers shapes, and compiles the fused execution plan.
    let c = 16;
    let image = 20;
    let stem_w = Tensor::from_vec(&[c, 3, 3, 3], random_floats(c * 3 * 9, 1.0, 1))?;
    let mut b = GraphBuilder::new("custom-demo", 3, image);
    let stem = b.push(
        "stem",
        NodeOp::StemConv(QuantConv2d::from_float(
            &stem_w,
            Conv2dParams { stride: 2, pad: 1 },
        )),
        &[0],
    );

    // Identity-shortcut residual block.
    let sign = b.push("b1.sign", NodeOp::Sign(RSign::zero(c)), &[stem]);
    let conv = b.push(
        "b1.conv3x3",
        NodeOp::BinConv(BinConv2d::new(
            random_kernel(&[c, c, 3, 3], 2),
            Conv2dParams { stride: 1, pad: 1 },
        )),
        &[sign],
    );
    let bn = b.push("b1.bn", NodeOp::BatchNorm(BatchNorm::identity(c)), &[conv]);
    let add = b.push("b1.add", NodeOp::Add, &[bn, stem]);
    let act = b.push("b1.act", NodeOp::Act(RPReLU::plain(c, 0.25)), &[add]);

    // Stride-2 block: the identity is average-pooled alongside the conv.
    let sign = b.push("b2.sign", NodeOp::Sign(RSign::zero(c)), &[act]);
    let conv = b.push(
        "b2.conv3x3",
        NodeOp::BinConv(BinConv2d::new(
            random_kernel(&[c, c, 3, 3], 3),
            Conv2dParams { stride: 2, pad: 1 },
        )),
        &[sign],
    );
    let bn = b.push("b2.bn", NodeOp::BatchNorm(BatchNorm::identity(c)), &[conv]);
    let pool = b.push("b2.pool", NodeOp::AvgPool2x2, &[act]);
    let add = b.push("b2.add", NodeOp::Add, &[bn, pool]);
    let act2 = b.push("b2.act", NodeOp::Act(RPReLU::plain(c, 0.25)), &[add]);

    let gap = b.push("gap", NodeOp::GlobalAvgPool, &[act2]);
    b.push(
        "fc",
        NodeOp::Classifier(QuantLinear::from_float(
            &random_floats(10 * c, 0.5, 4),
            10,
            c,
        )),
        &[gap],
    );
    let mut model = b.finish()?;
    println!(
        "Graph `{}`: {} nodes, {} compressible 3x3 convs, {} simulator workloads",
        model.arch(),
        model.nodes().len(),
        model.num_conv3(),
        model.workloads().len()
    );

    // 2. The engine path (fused stages, scratch reuse, worker threads) is
    //    bit-exact with the naive scalar walk.
    let input = synthetic_batch(1, 3, image, 7).remove(0);
    let engine = Engine::with_threads(4);
    let fast = model.forward_with(&input, &engine, &mut Scratch::default())?;
    let oracle = model.forward_scalar(&input)?;
    assert_eq!(fast.data(), oracle.data());
    println!(
        "Forward: logits {:?}, engine path bit-exact with the scalar walk",
        fast.shape()
    );

    // 3. Compress every 3x3 kernel and stream-decode it straight back
    //    into the executor — the paper's pipeline, on a topology it has
    //    never seen.
    let codec = KernelCodec::paper();
    for i in 0..model.num_conv3() {
        let original = model.conv3_weights(i).clone();
        let ck = codec.compress(&original)?;
        let container = read_container(&write_container(&ck))?;
        model.set_conv3_packed(i, container.decode_packed()?)?;
        assert_eq!(model.conv3_weights(i), &original);
        println!(
            "conv {i}: {} -> {} bits ({:.3}x), stream-decoded back bit-exactly",
            ck.original_bits(),
            ck.stream_bits(),
            ck.ratio()
        );
    }

    // 4. The same graph drives the cycle simulator.
    let wls = model.workloads();
    let run = run_model(&CpuConfig::default(), &wls, Mode::HardwareDecode, &[1.3]);
    println!("Simulated hardware-decode cycles: {}", run.total_cycles);
    Ok(())
}
