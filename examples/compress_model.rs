//! Whole-model compression with an accuracy check — the paper's offline
//! pipeline (Sec. IV-A) on a complete network.
//!
//! Compresses every 3×3 kernel of a ReActNet, reports the per-block and
//! whole-model ratios, deploys the clustered weights back into the model,
//! and verifies the substituted network still agrees with the original.
//!
//! ```text
//! cargo run --release --example compress_model
//! ```

use bnnkc::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let original = ReActNet::tiny(1);
    let codec = KernelCodec::paper_clustered();

    // --- Offline: compress each block's 3x3 kernel ---
    println!("Per-block compression (simplified tree 32/64/64/256 + clustering):");
    let mut deployed = original.clone();
    for i in 0..original.num_blocks() {
        let kernel = original.conv3_weights(i);
        let compressed = codec.compress(kernel)?;
        println!(
            "  block {}: {:>6} bits -> {:>6} bits  (x{:.2}, {} substitutions, code lengths {:?})",
            i + 1,
            compressed.original_bits(),
            compressed.stream_bits(),
            compressed.ratio(),
            compressed.substitutions().len(),
            compressed.tree().length_table(),
        );
        // Deploy: the network now runs with the clustered weights, which
        // is what the decoding unit would feed the CPU at runtime.
        deployed.set_conv3_weights(i, compressed.decompress()?);
    }

    // --- Whole-model accounting (the paper's 1.2x) ---
    let ratio = model_compression_ratio(&original, &codec)?;
    println!(
        "\nWhole model: {:.2} Mbit -> {:.2} Mbit ({:.3}x; mean kernel ratio {:.2}x)",
        ratio.original_bits as f64 / 1e6,
        ratio.compressed_bits as f64 / 1e6,
        ratio.ratio(),
        ratio.mean_kernel_ratio
    );

    // --- Accuracy proxy: does clustering change predictions? ---
    let cfg = original.config().clone();
    let batch = synthetic_batch(16, cfg.input_channels, cfg.image_size, 99);
    let agreement = compare_models(&original, &deployed, &batch);
    println!(
        "\nOriginal vs clustered network over {} inputs:",
        agreement.inputs
    );
    println!("  top-1 agreement:    {:.1}%", agreement.top1 * 100.0);
    println!("  mean |logit delta|: {:.4}", agreement.mean_abs_dev);
    println!("  max  |logit delta|: {:.4}", agreement.max_abs_dev);
    println!("\nPaper Sec. III-C: replacing rare sequences with Hamming-1 common ones");
    println!("keeps the network's behaviour — each substituted channel changes one");
    println!("weight, perturbing any single dot product by at most ±2.");

    Ok(())
}
