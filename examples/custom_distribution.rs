//! Using the library on your own kernels and tuning the tree.
//!
//! Scenario: you trained a BNN whose 3×3 kernels have a different skew
//! than ReActNet's. This example builds a custom sequence distribution,
//! sweeps tree configurations to pick the best one under the hardware's
//! table budget, and checks when clustering is worth its accuracy risk.
//!
//! ```text
//! cargo run --release --example custom_distribution
//! ```

use bnnkc::prelude::*;
use rand::SeedableRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut rng = rand::rngs::StdRng::seed_from_u64(11);

    // --- A custom, flatter distribution (e.g. a heavily regularized
    //     model): top-64 cover only 40%, top-256 cover 80%. ---
    let dist = SeqDistribution::calibrated(40.0, 80.0, 11);
    let kernel = dist.sample_kernel(256, 256, &mut rng);
    let freq = FreqTable::from_kernel(&kernel)?;
    println!(
        "Custom kernel: top-64 {:.1}%, entropy {:.2} bits (vs ReActNet's ~6.3)",
        freq.top_k_coverage_pct(64),
        freq.entropy_bits()
    );

    // --- Sweep tree shapes under the 512-entry table budget ---
    println!("\nTree sweep (hardware budget: 512 table entries, 1 KB):");
    let candidates: Vec<Vec<usize>> = vec![
        vec![32, 64, 64, 256], // the paper's shape
        vec![16, 32, 128, 256],
        vec![64, 64, 128, 256],
        vec![64, 128, 256],
        vec![32, 32, 64, 128, 256],
    ];
    let mut best: Option<(f64, Vec<usize>)> = None;
    for caps in candidates {
        let tree_cfg = TreeConfig::with_capacities(caps.clone())?;
        let tree = SimplifiedTree::build(&freq, tree_cfg);
        let ratio = 9.0 / tree.avg_bits(&freq);
        println!(
            "  {caps:?}: code lengths {:?}, ratio {ratio:.3}",
            tree.length_table()
        );
        if best.as_ref().is_none_or(|(r, _)| ratio > *r) {
            best = Some((ratio, caps));
        }
    }
    let (best_ratio, best_caps) = best.expect("at least one candidate");
    println!("Best shape for this skew: {best_caps:?} at {best_ratio:.3}x");

    // --- Is clustering worth it here? ---
    println!("\nClustering trade-off on the flatter distribution:");
    for n in [128usize, 256, 384] {
        let codec = KernelCodec::new(TreeConfig::with_capacities(best_caps.clone())?)
            .with_clustering(ClusterConfig {
                n_remove: n,
                ..ClusterConfig::default()
            });
        let ck = codec.compress(&kernel)?;
        let moved: u64 = ck.substitutions().iter().map(|s| freq.count(s.from)).sum();
        println!(
            "  N={n:>3}: ratio {:.3}, {} substitutions touching {:.1}% of weights' channels",
            ck.ratio(),
            ck.substitutions().len(),
            moved as f64 / freq.total() as f64 * 100.0
        );
    }
    println!("\nFlatter distributions compress less and need deeper clustering —");
    println!("exactly the sensitivity the paper's empirical M/N search navigates.");

    Ok(())
}
