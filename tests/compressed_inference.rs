//! Compressed-container inference: the streaming decode path
//! (stream → channel-packed lane words → engine) must be bit-exact with
//! ReActNet inference on the offline-decompressed weights, at the library
//! level and through the `bnnkc run` CLI.

mod common;

use bnnkc::prelude::*;
use common::{bnnkc, tmp_file, TempFile};
use std::process::Output;

/// Mirror of the CLI's logits digest (FNV-1a over the f32 bit patterns).
fn logits_digest(logits: &[f32]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for v in logits {
        for b in v.to_bits().to_le_bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
    h
}

/// Mirror of the CLI's input-batch seed derivation.
const RUN_INPUT_SALT: u64 = 0x1A7E57;

/// Library-level round trip: deploy a compressed model once via the
/// streaming packed path and once via offline decompression; every logits
/// tensor must be bit-identical across both paths and all thread counts.
#[test]
fn streamed_and_offline_deployment_are_bit_exact() {
    let codec = KernelCodec::paper_clustered();
    let base = ReActNet::tiny(31);
    let compressed: Vec<CompressedKernel> = (0..base.num_blocks())
        .map(|i| codec.compress(base.conv3_weights(i)).expect("compress"))
        .collect();
    let containers = read_model_container(&write_model_container(&compressed)).expect("parse");

    let mut streamed = base.clone();
    let mut offline = base.clone();
    for (i, c) in containers.iter().enumerate() {
        streamed.set_conv3_packed(i, c.decode_packed().expect("stream decode"));
        offline.set_conv3_weights(i, c.decode_kernel().expect("offline decode"));
    }

    let inputs = synthetic_batch(3, 3, 32, 77);
    for threads in [1usize, 2, 4] {
        let engine = Engine::with_threads(threads);
        let a = streamed.forward_batch(&inputs, &engine);
        let b = offline.forward_batch(&inputs, &engine);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.data(), y.data(), "threads = {threads}");
        }
    }
    // And against the scalar seed oracle.
    for x in &inputs {
        assert_eq!(streamed.forward(x).data(), offline.forward_scalar(x).data());
    }
}

/// CLI round trip: `bnnkc run` logits (streamed) must match both the
/// `--offline` reference path and logits computed in-process with
/// `ReActNet` inference on the offline-decompressed weights.
#[test]
fn cli_run_logits_pin_against_offline_inference() {
    let out = TempFile(tmp_file("run-roundtrip.bkcm"));
    let path = out.0.to_str().unwrap();
    let (seed, scale, image, batch) = (5u64, 0.125f64, 32usize, 2usize);

    let c = bnnkc(&["compress", "--out", path, "--scale", "0.125", "--seed", "5"]);
    assert!(c.status.success(), "compress failed: {c:?}");

    let run_args = [
        "run",
        "--in",
        path,
        "--scale",
        "0.125",
        "--seed",
        "5",
        "--image",
        "32",
        "--batch",
        "2",
        "--threads",
        "2",
    ];
    let streamed = bnnkc(&run_args);
    assert!(streamed.status.success(), "run failed: {streamed:?}");
    let offline = bnnkc(
        &run_args
            .iter()
            .chain(&["--offline"])
            .copied()
            .collect::<Vec<_>>(),
    );
    assert!(
        offline.status.success(),
        "run --offline failed: {offline:?}"
    );

    let item_lines = |o: &Output| -> Vec<String> {
        String::from_utf8_lossy(&o.stdout)
            .lines()
            .filter(|l| l.starts_with("item "))
            .map(str::to_string)
            .collect()
    };
    let s_lines = item_lines(&streamed);
    let o_lines = item_lines(&offline);
    assert_eq!(s_lines.len(), batch);
    assert_eq!(s_lines, o_lines, "streamed and offline logits must match");

    // In-process reference: same scaled model, offline-decompressed
    // weights, same synthetic inputs — digests must line up exactly.
    let containers = read_model_container(&std::fs::read(path).unwrap()).expect("parse");
    let mut cfg = ReActNetConfig::scaled(scale).expect("scaled config");
    cfg.image_size = image;
    let mut model = ReActNet::new(cfg.clone(), seed);
    for (i, c) in containers.iter().enumerate() {
        model.set_conv3_weights(i, c.decode_kernel().expect("decode"));
    }
    let inputs = synthetic_batch(batch, cfg.input_channels, image, seed ^ RUN_INPUT_SALT);
    let outputs = model.forward_batch(&inputs, &Engine::with_threads(2));
    for (i, out) in outputs.iter().enumerate() {
        let digest = format!("digest {:016x}", logits_digest(out.data()));
        assert!(
            s_lines[i].ends_with(&digest),
            "item {i}: CLI `{}` vs library `{digest}`",
            s_lines[i]
        );
    }
}

/// The group decoder agrees with the offline path on every block of a
/// freshly compressed model, including partial tail lanes.
#[test]
fn group_decoder_covers_all_model_blocks() {
    let codec = KernelCodec::paper();
    let model = ReActNet::tiny(41);
    for i in 0..model.num_blocks() {
        let ck = codec.compress(model.conv3_weights(i)).expect("compress");
        let container = read_container(&write_container(&ck)).expect("parse");
        let streamed = container.decode_packed().expect("stream decode");
        let offline = PackedKernel::pack(&container.decode_kernel().expect("decode")).unwrap();
        assert_eq!(streamed, offline, "block {i}");
        assert_eq!(streamed.unpack(), *model.conv3_weights(i), "block {i}");
    }
}
