//! Compressed-container inference: the streaming decode path
//! (stream → channel-packed lane words → engine) must be bit-exact with
//! inference on the offline-decompressed weights — at the library level,
//! through the `bnnkc run` CLI, and for **every** built-in architecture,
//! with v1 containers still loading.

mod common;

use bnnkc::prelude::*;
use common::{bnnkc, tmp_file, TempFile};
use proptest::prelude::*;
use std::process::Output;

/// Mirror of the CLI's logits digest (FNV-1a over the f32 bit patterns).
fn logits_digest(logits: &[f32]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for v in logits {
        for b in v.to_bits().to_le_bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
    h
}

/// Mirror of the CLI's input-batch seed derivation.
const RUN_INPUT_SALT: u64 = 0x1A7E57;

fn item_lines(o: &Output) -> Vec<String> {
    String::from_utf8_lossy(&o.stdout)
        .lines()
        .filter(|l| l.starts_with("item "))
        .map(str::to_string)
        .collect()
}

/// Library-level round trip: deploy a compressed model once via the
/// streaming packed path and once via offline decompression; every logits
/// tensor must be bit-identical across both paths and all thread counts.
#[test]
fn streamed_and_offline_deployment_are_bit_exact() {
    let codec = KernelCodec::paper_clustered();
    let base = ReActNet::tiny(31);
    let compressed: Vec<CompressedKernel> = (0..base.num_blocks())
        .map(|i| codec.compress(base.conv3_weights(i)).expect("compress"))
        .collect();
    let container = read_model_container(&write_model_container(&compressed)).expect("parse");

    let mut streamed = base.clone();
    let mut offline = base.clone();
    for (i, c) in container.kernels.iter().enumerate() {
        streamed.set_conv3_packed(i, c.decode_packed().expect("stream decode"));
        offline.set_conv3_weights(i, c.decode_kernel().expect("offline decode"));
    }

    let inputs = synthetic_batch(3, 3, 32, 77);
    for threads in [1usize, 2, 4] {
        let engine = Engine::with_threads(threads);
        let a = streamed.forward_batch(&inputs, &engine);
        let b = offline.forward_batch(&inputs, &engine);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.data(), y.data(), "threads = {threads}");
        }
    }
    // And against the scalar seed oracle.
    for x in &inputs {
        assert_eq!(streamed.forward(x).data(), offline.forward_scalar(x).data());
    }
}

/// The same round trip through the graph deployment API, for every
/// non-ReActNet built-in architecture: compress the graph's kernels,
/// stream-decode them back in, and pin the executor against the scalar
/// oracle.
#[test]
fn graph_deployment_is_bit_exact_across_architectures() {
    let codec = KernelCodec::paper_clustered();
    for arch in [Arch::VggSmall, Arch::ResNetLite] {
        let base = build_model(arch, 0.0625, 16, 21).expect("build model");
        let compressed: Vec<CompressedKernel> = (0..base.num_conv3())
            .map(|i| codec.compress(base.conv3_weights(i)).expect("compress"))
            .collect();
        let bytes = write_model_container_v2(base.spec(), &compressed).expect("write v2");
        let container = read_model_container(&bytes).expect("parse");
        assert_eq!(container.spec.as_ref(), Some(base.spec()));

        let mut streamed = base.clone();
        let mut offline = base.clone();
        for (i, c) in container.kernels.iter().enumerate() {
            streamed
                .set_conv3_packed(i, c.decode_packed().expect("stream decode"))
                .expect("deploy packed");
            offline
                .set_conv3_weights(i, c.decode_kernel().expect("offline decode"))
                .expect("deploy tensor");
        }
        let inputs = synthetic_batch(2, 3, 16, 78);
        for threads in [1usize, 3] {
            let engine = Engine::with_threads(threads);
            let a = streamed.forward_batch(&inputs, &engine).expect("forward");
            let b = offline.forward_batch(&inputs, &engine).expect("forward");
            for ((x, y), input) in a.iter().zip(&b).zip(&inputs) {
                assert_eq!(x.data(), y.data(), "{arch} threads = {threads}");
                let oracle = streamed.forward_scalar(input).expect("scalar");
                assert_eq!(x.data(), oracle.data(), "{arch} vs oracle");
            }
        }
    }
}

/// CLI round trip: `bnnkc run` logits (streamed) must match both the
/// `--offline` reference path and logits computed in-process with
/// `ReActNet` inference on the offline-decompressed weights.
#[test]
fn cli_run_logits_pin_against_offline_inference() {
    let out = TempFile(tmp_file("run-roundtrip.bkcm"));
    let path = out.0.to_str().unwrap();
    let (seed, scale, image, batch) = (5u64, 0.125f64, 32usize, 2usize);

    let c = bnnkc(&["compress", "--out", path, "--scale", "0.125", "--seed", "5"]);
    assert!(c.status.success(), "compress failed: {c:?}");

    let run_args = [
        "run",
        "--in",
        path,
        "--scale",
        "0.125",
        "--seed",
        "5",
        "--image",
        "32",
        "--batch",
        "2",
        "--threads",
        "2",
    ];
    let streamed = bnnkc(&run_args);
    assert!(streamed.status.success(), "run failed: {streamed:?}");
    let offline = bnnkc(
        &run_args
            .iter()
            .chain(&["--offline"])
            .copied()
            .collect::<Vec<_>>(),
    );
    assert!(
        offline.status.success(),
        "run --offline failed: {offline:?}"
    );

    let s_lines = item_lines(&streamed);
    let o_lines = item_lines(&offline);
    assert_eq!(s_lines.len(), batch);
    assert_eq!(s_lines, o_lines, "streamed and offline logits must match");

    // In-process reference: same scaled model, offline-decompressed
    // weights, same synthetic inputs — digests must line up exactly.
    let container = read_model_container(&std::fs::read(path).unwrap()).expect("parse");
    let mut cfg = ReActNetConfig::scaled(scale).expect("scaled config");
    cfg.image_size = image;
    let mut model = ReActNet::new(cfg.clone(), seed).expect("valid config");
    for (i, c) in container.kernels.iter().enumerate() {
        model.set_conv3_weights(i, c.decode_kernel().expect("decode"));
    }
    let inputs = synthetic_batch(batch, cfg.input_channels, image, seed ^ RUN_INPUT_SALT);
    let outputs = model.forward_batch(&inputs, &Engine::with_threads(2));
    for (i, out) in outputs.iter().enumerate() {
        let digest = format!("digest {:016x}", logits_digest(out.data()));
        assert!(
            s_lines[i].ends_with(&digest),
            "item {i}: CLI `{}` vs library `{digest}`",
            s_lines[i]
        );
    }
}

/// Full CLI pipeline for each non-ReActNet architecture:
/// compress → run (streamed == offline, pinned against the in-process
/// graph model) → verify → simulate, all from the v2 container.
#[test]
fn cli_pipeline_covers_non_reactnet_architectures() {
    for arch in [Arch::VggSmall, Arch::ResNetLite] {
        let out = TempFile(tmp_file(&format!("pipeline-{arch}.bkcm")));
        let path = out.0.to_str().unwrap();
        let name = arch.name();
        let (seed, scale, image, batch) = (9u64, 0.0625f64, 16usize, 2usize);

        let c = bnnkc(&[
            "compress", "--out", path, "--arch", name, "--scale", "0.0625", "--seed", "9",
        ]);
        assert!(c.status.success(), "{arch} compress failed: {c:?}");

        let run_args = [
            "run",
            "--in",
            path,
            "--arch",
            name,
            "--scale",
            "0.0625",
            "--seed",
            "9",
            "--image",
            "16",
            "--batch",
            "2",
            "--threads",
            "2",
        ];
        let streamed = bnnkc(&run_args);
        assert!(streamed.status.success(), "{arch} run failed: {streamed:?}");
        let offline = bnnkc(
            &run_args
                .iter()
                .chain(&["--offline"])
                .copied()
                .collect::<Vec<_>>(),
        );
        assert!(offline.status.success(), "{arch} --offline failed");
        let s_lines = item_lines(&streamed);
        assert_eq!(s_lines.len(), batch);
        assert_eq!(s_lines, item_lines(&offline), "{arch} streamed vs offline");

        // In-process pin: same graph model, offline-deployed kernels.
        let container = read_model_container(&std::fs::read(path).unwrap()).expect("parse");
        let mut model = build_model(arch, scale, image, seed).expect("build model");
        for (i, c) in container.kernels.iter().enumerate() {
            model
                .set_conv3_weights(i, c.decode_kernel().expect("decode"))
                .expect("deploy");
        }
        let inputs = synthetic_batch(batch, 3, image, seed ^ RUN_INPUT_SALT);
        let outputs = model
            .forward_batch(&inputs, &Engine::with_threads(2))
            .expect("forward");
        for (i, out) in outputs.iter().enumerate() {
            let digest = format!("digest {:016x}", logits_digest(out.data()));
            assert!(
                s_lines[i].ends_with(&digest),
                "{arch} item {i}: CLI `{}` vs library `{digest}`",
                s_lines[i]
            );
        }

        let v = bnnkc(&[
            "verify", "--in", path, "--arch", name, "--scale", "0.0625", "--seed", "9",
        ]);
        assert!(v.status.success(), "{arch} verify failed: {v:?}");
        assert!(String::from_utf8_lossy(&v.stdout).contains("all kernels verified"));

        let s = bnnkc(&["simulate", "--in", path, "--image", "16"]);
        assert!(s.status.success(), "{arch} simulate failed: {s:?}");
        let stdout = String::from_utf8_lossy(&s.stdout);
        assert!(stdout.contains(&format!("arch {name}")), "{stdout}");
        assert!(stdout.contains("hardware:"), "{stdout}");
    }
}

/// Geometry mismatches are reported up front with a clear message, not
/// as a shape panic mid-forward.
#[test]
fn cli_rejects_mismatched_arch_and_scale_up_front() {
    let out = TempFile(tmp_file("mismatch.bkcm"));
    let path = out.0.to_str().unwrap();
    let c = bnnkc(&[
        "compress", "--out", path, "--arch", "vggsmall", "--scale", "0.0625",
    ]);
    assert!(c.status.success(), "compress failed: {c:?}");

    // Wrong --arch: the container says vggsmall.
    let r = bnnkc(&[
        "run",
        "--in",
        path,
        "--arch",
        "resnetlite",
        "--scale",
        "0.0625",
        "--image",
        "16",
    ]);
    assert!(!r.status.success());
    let err = String::from_utf8_lossy(&r.stderr).to_string();
    assert!(
        err.contains("written for --arch vggsmall"),
        "unexpected error: {err}"
    );

    // Wrong --scale: topology mismatch, caught before deployment.
    let r = bnnkc(&[
        "run", "--in", path, "--arch", "vggsmall", "--scale", "0.5", "--image", "16",
    ]);
    assert!(!r.status.success());
    let err = String::from_utf8_lossy(&r.stderr).to_string();
    assert!(
        err.contains("geometry does not match") && err.contains("--scale"),
        "unexpected error: {err}"
    );

    // Same for verify.
    let v = bnnkc(&[
        "verify", "--in", path, "--arch", "vggsmall", "--scale", "0.5",
    ]);
    assert!(!v.status.success());
    let err = String::from_utf8_lossy(&v.stderr).to_string();
    assert!(err.contains("geometry does not match"), "{err}");
}

/// A v1 container (written by the pre-graph pipeline) auto-upgrades: it
/// runs through the graph executor and still matches the offline path.
#[test]
fn v1_container_runs_through_the_graph_pipeline() {
    let out = TempFile(tmp_file("v1-compat.bkcm"));
    let path = out.0.to_str().unwrap();
    let (seed, scale) = (5u64, 0.125f64);

    // Write a v1 container with the exact kernels `compress --scale 0.125
    // --seed 5` would produce.
    let spec = build_spec(Arch::ReActNet, scale, 224).expect("spec");
    let codec = KernelCodec::paper_clustered();
    let kernels = sample_conv3_kernels(&spec, seed).expect("sample");
    let compressed: Vec<CompressedKernel> =
        kernels.iter().map(|k| codec.compress(k).unwrap()).collect();
    std::fs::write(path, write_model_container(&compressed)).unwrap();

    let run_args = [
        "run", "--in", path, "--scale", "0.125", "--seed", "5", "--image", "32", "--batch", "2",
    ];
    let streamed = bnnkc(&run_args);
    assert!(streamed.status.success(), "v1 run failed: {streamed:?}");
    let offline = bnnkc(
        &run_args
            .iter()
            .chain(&["--offline"])
            .copied()
            .collect::<Vec<_>>(),
    );
    assert!(offline.status.success());
    assert_eq!(item_lines(&streamed), item_lines(&offline));

    let v = bnnkc(&["verify", "--in", path, "--scale", "0.125", "--seed", "5"]);
    assert!(v.status.success(), "v1 verify failed: {v:?}");
    let s = bnnkc(&["simulate", "--in", path, "--image", "32"]);
    assert!(s.status.success(), "v1 simulate failed: {s:?}");
}

/// A v2 container for a *custom* (non-built-in) topology: `inspect` and
/// `simulate` work from the embedded spec alone; `run` (which must build
/// a weighted model) reports the unknown arch cleanly.
#[test]
fn custom_arch_containers_simulate_but_refuse_to_run() {
    let out = TempFile(tmp_file("custom.bkcm"));
    let path = out.0.to_str().unwrap();
    // input → stem → sign → conv3x3 → bn → act → gap → fc.
    let spec = GraphSpec {
        arch: "custom-demo".into(),
        nodes: vec![
            NodeSpec {
                op: OpSpec::Input {
                    channels: 3,
                    image: 16,
                },
                inputs: vec![],
            },
            NodeSpec {
                op: OpSpec::StemConv {
                    out_ch: 8,
                    stride: 2,
                },
                inputs: vec![0],
            },
            NodeSpec {
                op: OpSpec::Sign,
                inputs: vec![1],
            },
            NodeSpec {
                op: OpSpec::BinConv {
                    out_ch: 8,
                    kh: 3,
                    kw: 3,
                    stride: 1,
                    pad: 1,
                },
                inputs: vec![2],
            },
            NodeSpec {
                op: OpSpec::BatchNorm,
                inputs: vec![3],
            },
            NodeSpec {
                op: OpSpec::Act,
                inputs: vec![4],
            },
            NodeSpec {
                op: OpSpec::GlobalAvgPool,
                inputs: vec![5],
            },
            NodeSpec {
                op: OpSpec::Classifier { classes: 10 },
                inputs: vec![6],
            },
        ],
    };
    let codec = KernelCodec::paper();
    let compressed: Vec<CompressedKernel> = sample_conv3_kernels(&spec, 3)
        .unwrap()
        .iter()
        .map(|k| codec.compress(k).unwrap())
        .collect();
    std::fs::write(path, write_model_container_v2(&spec, &compressed).unwrap()).unwrap();

    let i = bnnkc(&["inspect", "--in", path]);
    assert!(i.status.success(), "inspect failed: {i:?}");
    assert!(String::from_utf8_lossy(&i.stdout).contains("arch custom-demo"));

    let s = bnnkc(&["simulate", "--in", path, "--image", "16"]);
    assert!(s.status.success(), "custom simulate failed: {s:?}");
    let stdout = String::from_utf8_lossy(&s.stdout);
    assert!(stdout.contains("arch custom-demo") && stdout.contains("hardware:"));
    // --arch against a custom container is a clear mismatch error.
    let s = bnnkc(&[
        "simulate", "--in", path, "--image", "16", "--arch", "reactnet",
    ]);
    assert!(!s.status.success());
    assert!(String::from_utf8_lossy(&s.stderr).contains("written for --arch custom-demo"));

    // run needs a built-in family to construct weights.
    let r = bnnkc(&["run", "--in", path, "--image", "16"]);
    assert!(!r.status.success());
    assert!(String::from_utf8_lossy(&r.stderr).contains("unknown arch"));
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Sequence-bank round trip under the codec: compress a random
    /// skewed kernel, stream-decode its dedup bank, and the bank must
    /// reconstruct the exact packed kernel the stream decodes to — with
    /// every per-(filter, channel) index resolving to the sequence the
    /// offline path reads, for both codec variants and partial tail
    /// lanes.
    #[test]
    fn sequence_bank_roundtrips_through_the_codec(
        filters in 1usize..12,
        channels in 1usize..80,
        clustered in any::<bool>(),
        seed in any::<u64>()
    ) {
        use bitnn::bank::SequenceBank;
        use bitnn::weightgen::{read_sequence, SeqDistribution};
        use rand::SeedableRng;

        let codec = if clustered {
            KernelCodec::paper_clustered()
        } else {
            KernelCodec::paper()
        };
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let dist = SeqDistribution::calibrated(70.0, 93.0, seed ^ 0xBA);
        let kernel = dist.sample_kernel(filters, channels, &mut rng);
        let ck = codec.compress(&kernel).expect("compress");
        let container = read_container(&write_container(&ck)).expect("parse");

        let bank = container.decode_bank().expect("bank decode");
        let packed = container.decode_packed().expect("stream decode");
        let decoded = container.decode_kernel().expect("offline decode");

        // Encode → decode round trip: the bank IS the kernel.
        prop_assert_eq!(&bank.to_packed(), &packed);
        prop_assert_eq!(&PackedKernel::pack(&decoded).unwrap(), &packed);
        // And again after a dense → bank re-encode.
        prop_assert_eq!(&SequenceBank::from_packed(&packed).unwrap().to_packed(), &packed);

        // Per-slot agreement with the offline reader, plus conserved
        // counts: every occurrence is attributed to exactly one entry.
        let mut total = 0u64;
        for (f, ch) in (0..filters).flat_map(|f| (0..channels).map(move |ch| (f, ch))) {
            prop_assert_eq!(bank.sequence(f, ch), read_sequence(&decoded, f, ch));
        }
        for &count in bank.counts() {
            prop_assert!(count > 0, "bank entries must be referenced");
            total += count as u64;
        }
        prop_assert_eq!(total, (filters * channels) as u64);
        prop_assert!(bank.unique_count() <= bank.total_count());
        prop_assert!(bank.dedup_ratio() >= 1.0);
    }
}

/// The group decoder agrees with the offline path on every block of a
/// freshly compressed model, including partial tail lanes.
#[test]
fn group_decoder_covers_all_model_blocks() {
    let codec = KernelCodec::paper();
    let model = ReActNet::tiny(41);
    for i in 0..model.num_blocks() {
        let ck = codec.compress(model.conv3_weights(i)).expect("compress");
        let container = read_container(&write_container(&ck)).expect("parse");
        let streamed = container.decode_packed().expect("stream decode");
        let offline = PackedKernel::pack(&container.decode_kernel().expect("decode")).unwrap();
        assert_eq!(streamed, offline, "block {i}");
        assert_eq!(streamed.unpack(), *model.conv3_weights(i), "block {i}");
    }
}
