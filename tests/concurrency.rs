//! Concurrency stress: a single shared [`Engine`] (and its process-wide
//! persistent worker pool) serves batched forwards from many OS threads at
//! once, and every result stays bit-exact with the scalar oracle.
//!
//! The engine holds no per-call state — scratches and arenas are
//! caller-owned — so concurrent `forward_batch` calls must neither corrupt
//! each other nor deadlock the pool, whichever thread's job drains first.

use bitnn::engine::{ExecPolicy, Lowering};
use bitnn::graph::BatchScratch;
use bnnkc::prelude::*;
use std::thread;

fn engine(threads: usize) -> Engine {
    Engine::new(ExecPolicy {
        threads,
        // Force the parallel path even on the tiny test workloads so the
        // pool sees concurrent jobs wherever the hardware allows.
        min_work: 0,
        lowering: Lowering::Auto,
        ..ExecPolicy::default()
    })
}

#[test]
fn concurrent_forward_batch_on_one_engine_is_bit_exact() {
    let model = ReActNet::tiny(21);
    let engine = engine(4);
    // Per-thread input sets with precomputed scalar-oracle logits.
    let cases: Vec<(Vec<Tensor>, Vec<Tensor>)> = (0..4u64)
        .map(|t| {
            let inputs = synthetic_batch(3, 3, 32, 100 + t);
            let expect = inputs.iter().map(|x| model.forward_scalar(x)).collect();
            (inputs, expect)
        })
        .collect();

    thread::scope(|s| {
        for (inputs, expect) in &cases {
            let model = &model;
            let engine = &engine;
            s.spawn(move || {
                let mut scratch = BatchScratch::default();
                let mut outs = Vec::new();
                for round in 0..8 {
                    model.forward_batch_into(inputs, engine, &mut scratch, &mut outs);
                    assert_eq!(outs.len(), expect.len());
                    for (o, e) in outs.iter().zip(expect) {
                        assert_eq!(o.data(), e.data(), "round {round}");
                    }
                }
            });
        }
    });
}

#[test]
fn concurrent_graph_archs_share_one_engine() {
    // Different architectures, one engine, all threads at once.
    let engine = engine(4);
    let models: Vec<_> = [Arch::ReActNet, Arch::VggSmall, Arch::ResNetLite]
        .iter()
        .map(|&a| build_model(a, 0.0625, 16, 5).unwrap())
        .collect();
    let inputs = synthetic_batch(4, 3, 16, 77);
    let expect: Vec<Vec<Tensor>> = models
        .iter()
        .map(|m| {
            inputs
                .iter()
                .map(|x| m.forward_scalar(x).unwrap())
                .collect()
        })
        .collect();

    thread::scope(|s| {
        for (model, expect) in models.iter().zip(&expect) {
            let engine = &engine;
            let inputs = &inputs;
            s.spawn(move || {
                for _ in 0..6 {
                    let outs = model.forward_batch(inputs, engine).unwrap();
                    for (o, e) in outs.iter().zip(expect) {
                        assert_eq!(o.data(), e.data());
                    }
                }
            });
        }
    });
}
