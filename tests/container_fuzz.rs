//! Container robustness under byte-level damage: mutating or truncating a
//! valid `.bkcm`/`.bkck` byte stream must never panic and never silently
//! decode the original kernel from damaged payload bytes. Where a decode
//! still succeeds (e.g. a flipped table entry the stream never
//! references), both decode paths — offline tensor and streaming packed —
//! must stay mutually consistent.

mod common;

use bnnkc::prelude::*;
use common::corrupt::{classify, flip, truncate, Verdict};
use proptest::prelude::*;
use rand::SeedableRng;
use std::sync::OnceLock;

struct Fixture {
    clean: Vec<u8>,
    original: BitTensor,
    /// Byte offset where the encoded stream section starts.
    stream_start: usize,
}

fn fixture() -> &'static Fixture {
    static FIX: OnceLock<Fixture> = OnceLock::new();
    FIX.get_or_init(|| {
        let mut rng = rand::rngs::StdRng::seed_from_u64(0xF1C);
        let kernel = SeqDistribution::for_block(3, 0).sample_kernel(24, 24, &mut rng);
        let ck = KernelCodec::paper().compress(&kernel).unwrap();
        let clean = write_container(&ck).to_vec();
        let stream_start = clean.len() - ck.stream().len();
        Fixture {
            clean,
            original: kernel,
            stream_start,
        }
    })
}

fn model_fixture() -> &'static Vec<u8> {
    static FIX: OnceLock<Vec<u8>> = OnceLock::new();
    FIX.get_or_init(|| {
        let codec = KernelCodec::paper_clustered();
        let kernels: Vec<CompressedKernel> = (1..=3)
            .map(|b| {
                let mut rng = rand::rngs::StdRng::seed_from_u64(b);
                let k = SeqDistribution::for_block(b as usize, 0).sample_kernel(16, 16, &mut rng);
                codec.compress(&k).unwrap()
            })
            .collect();
        write_model_container(&kernels).to_vec()
    })
}

/// A v2 container (graph topology + kernels) for a non-ReActNet family.
fn model_v2_fixture() -> &'static Vec<u8> {
    static FIX: OnceLock<Vec<u8>> = OnceLock::new();
    FIX.get_or_init(|| {
        let codec = KernelCodec::paper_clustered();
        let spec = build_spec(Arch::ResNetLite, 0.0625, 16).unwrap();
        let kernels: Vec<CompressedKernel> = sample_conv3_kernels(&spec, 0xF2)
            .unwrap()
            .iter()
            .map(|k| codec.compress(k).unwrap())
            .collect();
        write_model_container_v2(&spec, &kernels).unwrap().to_vec()
    })
}

/// The same model as an integrity-checked v3 container.
fn model_v3_fixture() -> &'static Vec<u8> {
    static FIX: OnceLock<Vec<u8>> = OnceLock::new();
    FIX.get_or_init(|| {
        let codec = KernelCodec::paper_clustered();
        let spec = build_spec(Arch::ResNetLite, 0.0625, 16).unwrap();
        let kernels: Vec<CompressedKernel> = sample_conv3_kernels(&spec, 0xF2)
            .unwrap()
            .iter()
            .map(|k| codec.compress(k).unwrap())
            .collect();
        write_model_container_v3(&spec, &kernels).unwrap().to_vec()
    })
}

/// Canonical semantic value for the corruption classifier: version,
/// topology, record bytes.
type ContainerValue = (u16, Option<GraphSpec>, Vec<Vec<u8>>);

fn container_value(bytes: &[u8]) -> Result<ContainerValue, kc_core::KcError> {
    let c = read_model_container(bytes)?;
    Ok((
        c.version,
        c.spec,
        c.kernels.iter().map(|k| k.to_bytes().to_vec()).collect(),
    ))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Satellite: every byte-level mutation either errors with a KcError
    /// or decodes — consistently across both decoders — to a kernel that
    /// differs from the original whenever payload bytes were touched.
    #[test]
    fn mutated_containers_never_panic_or_alias(
        idx in 0usize..4096,
        xor in 1u8..=255,
    ) {
        let fix = fixture();
        let idx = idx % fix.clean.len();
        let bytes = flip(&fix.clean, idx, xor);
        match read_container(&bytes) {
            Err(_) => {} // structural damage detected at parse time
            Ok(c) => {
                let offline = c.decode_kernel();
                let streamed = c.decode_packed();
                match (offline, streamed) {
                    (Err(_), Err(_)) => {} // payload damage detected at decode time
                    (Ok(k), Ok(p)) => {
                        // Both decoders must tell the same story.
                        prop_assert_eq!(&PackedKernel::pack(&k).unwrap(), &p);
                        if idx >= fix.stream_start {
                            // Every bit of the stream section is payload
                            // (padding bits are verified zero at parse),
                            // so a surviving decode cannot reproduce the
                            // original kernel.
                            prop_assert_ne!(&k, &fix.original,
                                "flip at stream byte {} went unnoticed", idx);
                        }
                    }
                    (a, b) => panic!(
                        "decoders disagree at byte {idx}: offline ok={} vs streamed ok={}",
                        a.is_ok(),
                        b.is_ok()
                    ),
                }
            }
        }
    }

    /// Satellite: any truncation of a single-kernel container is a parse
    /// or decode error — never a panic, never a silent success.
    #[test]
    fn truncated_containers_always_error(cut in 0usize..4096) {
        let fix = fixture();
        let cut = cut % fix.clean.len(); // strictly shorter than the original
        let r = read_container(&truncate(&fix.clean, cut));
        prop_assert!(r.is_err(), "cut at {} must fail", cut);
    }

    /// Model containers: mutation never panics, truncation always errors.
    #[test]
    fn model_container_damage_is_contained(
        idx in 0usize..8192,
        xor in 1u8..=255,
        cut in 0usize..8192,
    ) {
        let clean = model_fixture();
        let idx = idx % clean.len();
        let bytes = flip(clean, idx, xor);
        if let Ok(containers) = read_model_container(&bytes) {
            for c in &containers.kernels {
                let offline = c.decode_kernel();
                let streamed = c.decode_packed();
                prop_assert_eq!(offline.is_ok(), streamed.is_ok());
                if let (Ok(k), Ok(p)) = (offline, streamed) {
                    prop_assert_eq!(&PackedKernel::pack(&k).unwrap(), &p);
                }
            }
        }
        let cut = cut % clean.len();
        prop_assert!(read_model_container(&truncate(clean, cut)).is_err(),
            "truncation at {} must fail", cut);
    }

    /// v2 model containers (graph section + records): mutation never
    /// panics and never breaks offline/streamed consistency; any parse
    /// that survives still carries a validated spec matching its kernels;
    /// truncation always errors.
    #[test]
    fn model_container_v2_damage_is_contained(
        idx in 0usize..8192,
        xor in 1u8..=255,
        cut in 0usize..8192,
    ) {
        let clean = model_v2_fixture();
        let idx = idx % clean.len();
        let bytes = flip(clean, idx, xor);
        if let Ok(container) = read_model_container(&bytes) {
            if let Some(spec) = &container.spec {
                prop_assert!(spec.validate().is_ok());
                let convs = spec.conv3_geometries();
                prop_assert_eq!(convs.len(), container.kernels.len());
                for (g, k) in convs.iter().zip(&container.kernels) {
                    prop_assert_eq!((g.filters, g.channels), (k.filters, k.channels));
                }
            }
            for c in &container.kernels {
                let offline = c.decode_kernel();
                let streamed = c.decode_packed();
                prop_assert_eq!(offline.is_ok(), streamed.is_ok());
                if let (Ok(k), Ok(p)) = (offline, streamed) {
                    prop_assert_eq!(&PackedKernel::pack(&k).unwrap(), &p);
                }
            }
        }
        let cut = cut % clean.len();
        prop_assert!(read_model_container(&truncate(clean, cut)).is_err(),
            "v2 truncation at {} must fail", cut);
    }

    /// v3 model containers: every sampled single-byte mutation is
    /// *detected* — no harmless survivals, no silent model changes (the
    /// exhaustive sweep lives in `container_tamper.rs`; this is the
    /// randomized cross-check through the shared driver).
    #[test]
    fn model_container_v3_mutations_always_detected(
        idx in 0usize..8192,
        xor in 1u8..=255,
        cut in 0usize..8192,
    ) {
        let clean = model_v3_fixture();
        let clean_value = container_value(clean).unwrap();
        let idx = idx % clean.len();
        let verdict = classify(&clean_value, container_value, &flip(clean, idx, xor));
        prop_assert_eq!(verdict, Verdict::Detected,
            "byte {} xor {:#04x} was not detected", idx, xor);
        let cut = cut % clean.len();
        prop_assert!(read_model_container(&truncate(clean, cut)).is_err(),
            "v3 truncation at {} must fail", cut);
    }
}
