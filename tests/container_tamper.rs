//! Fault-injection proof for the integrity-checked formats: **every**
//! single-byte mutation of a v3 container or a `.bkcp` patch is rejected
//! with a typed error — never a silently different model — and record
//! duplication, record transplants between files, truncation, and
//! cross-format version flips are all detected too.
//!
//! The exhaustive sweeps run every byte position crossed with several
//! XOR masks, which is several thousand mutations per format (the CI
//! criterion demands ≥ 1000 each).

mod common;

use bnnkc::prelude::*;
use common::corrupt::{
    assert_all_truncations_detected, duplicate, find, flip, sweep_single_byte, transplant,
};
use kc_core::KcError;

/// A v3 container plus the pieces the record-level mutations need.
struct Fixture {
    base_v2: Vec<u8>,
    v3: Vec<u8>,
    patch: Vec<u8>,
    /// v3 bytes of a *different* model (transplant donor).
    donor_v3: Vec<u8>,
    record_bytes: Vec<Vec<u8>>,
}

fn fixture() -> Fixture {
    let codec = KernelCodec::paper();
    let spec = build_spec(Arch::VggSmall, 0.0625, 32).unwrap();
    let compress = |seed: u64| -> Vec<CompressedKernel> {
        sample_conv3_kernels(&spec, seed)
            .unwrap()
            .iter()
            .map(|k| codec.compress(k).unwrap())
            .collect()
    };
    let kernels = compress(41);
    let donor_kernels = compress(42);
    let base_v2 = write_model_container_v2(&spec, &kernels).unwrap().to_vec();
    let v3 = write_model_container_v3(&spec, &donor_kernels)
        .unwrap()
        .to_vec();
    let donor_v3 = write_model_container_v3(&spec, &kernels).unwrap().to_vec();
    let (patch, _) = diff_containers(&base_v2, &v3).unwrap();
    let record_bytes = read_model_container(&v3)
        .unwrap()
        .kernels
        .iter()
        .map(|c| c.to_bytes().to_vec())
        .collect();
    Fixture {
        base_v2,
        v3,
        patch: patch.to_vec(),
        donor_v3,
        record_bytes,
    }
}

/// Canonical semantic value of a parsed container: version, spec, and
/// every record's canonical bytes — if two parses agree on this, they
/// decode the same model.
type ContainerValue = (u16, Option<GraphSpec>, Vec<Vec<u8>>);

fn container_value(bytes: &[u8]) -> Result<ContainerValue, KcError> {
    let c = read_model_container(bytes)?;
    Ok((
        c.version,
        c.spec,
        c.kernels.iter().map(|k| k.to_bytes().to_vec()).collect(),
    ))
}

#[test]
fn v3_every_single_byte_mutation_is_detected() {
    let fix = fixture();
    let clean_value = container_value(&fix.v3).unwrap();
    // Three masks x every byte: ~3x the file size in mutations, far over
    // the 1000-per-format floor. Harmless survivals are forbidden too:
    // every v3 byte is load-bearing (payload, digest, or structure).
    let report = sweep_single_byte(
        &fix.v3,
        &clean_value,
        container_value,
        &[0x01, 0x80, 0xFF],
        true,
        true,
    );
    assert!(
        report.mutations >= 1000,
        "sweep too small: {}",
        report.mutations
    );
    assert_eq!(report.detected, report.mutations);
}

#[test]
fn v3_mutations_yield_typed_errors() {
    // Spot-check that digest damage surfaces as the typed
    // IntegrityViolation (structure damage may legitimately surface as
    // CorruptStream first).
    let fix = fixture();
    let mut integrity_hits = 0usize;
    for i in 0..fix.v3.len() {
        match read_model_container(&flip(&fix.v3, i, 0x01)) {
            Err(KcError::IntegrityViolation { .. }) => integrity_hits += 1,
            Err(_) => {}
            Ok(_) => panic!("byte {i}: accepted"),
        }
    }
    // The stream payloads dominate the file, and payload damage is a
    // digest mismatch, so typed integrity errors must dominate.
    assert!(
        integrity_hits * 2 > fix.v3.len(),
        "only {integrity_hits}/{} mutations were typed IntegrityViolation",
        fix.v3.len()
    );
}

#[test]
fn patch_every_single_byte_mutation_is_detected() {
    let fix = fixture();
    let clean_target = apply_patch(&fix.base_v2, &fix.patch).unwrap().to_vec();
    let apply = |bytes: &[u8]| apply_patch(&fix.base_v2, bytes).map(|b| b.to_vec());
    let report = sweep_single_byte(
        &fix.patch,
        &clean_target,
        apply,
        &[0x01, 0x80, 0xFF],
        true,
        true,
    );
    assert!(
        report.mutations >= 1000,
        "sweep too small: {}",
        report.mutations
    );
    assert_eq!(report.detected, report.mutations);
    // The whole-file checksum runs first, so body damage is the typed
    // integrity error on the patch itself.
    let mid = fix.patch.len() / 2;
    assert!(matches!(
        apply_patch(&fix.base_v2, &flip(&fix.patch, mid, 0x55)),
        Err(KcError::IntegrityViolation { ref record, .. }) if record == "patch"
    ));
}

#[test]
fn truncation_is_always_detected() {
    let fix = fixture();
    assert_all_truncations_detected(&fix.v3, container_value);
    assert_all_truncations_detected(&fix.patch, |b| apply_patch(&fix.base_v2, b));
}

#[test]
fn duplicated_records_are_detected() {
    let fix = fixture();
    for rec in &fix.record_bytes {
        let start = find(&fix.v3, rec).expect("record bytes occur in the file");
        // Duplicate the record body alone, and the body plus its length
        // prefix + digest (a structurally plausible extra record).
        for (s, l) in [(start, rec.len()), (start - 4, rec.len() + 4 + DIGEST_LEN)] {
            let bad = duplicate(&fix.v3, s, l);
            assert!(
                read_model_container(&bad).is_err(),
                "duplicated record at {s} (+{l} bytes) was accepted"
            );
        }
    }
}

#[test]
fn transplanted_records_are_detected() {
    let fix = fixture();
    let donor = read_model_container(&fix.donor_v3).unwrap();
    for (i, rec) in fix.record_bytes.iter().enumerate() {
        let donor_rec = donor.kernels[i].to_bytes().to_vec();
        if donor_rec == *rec {
            continue; // same bytes transplant harmlessly by definition
        }
        let start = find(&fix.v3, rec).expect("record bytes occur in the file");
        // Swap in the donor's record body without updating its digest:
        // the per-record digest must catch it. (Equal-length records keep
        // the structure parsable; unequal lengths break structure, which
        // is detected anyway.)
        let bad = transplant(&fix.v3, start..start + rec.len(), &donor_rec);
        assert!(
            read_model_container(&bad).is_err(),
            "transplanted record {i} was accepted"
        );
    }
}

#[test]
fn cross_format_version_flips_are_detected() {
    let fix = fixture();
    // v3 -> v2: the digest fields become trailing/extra bytes.
    let as_v2 = flip(&fix.v3, 4, 3 ^ 2);
    assert!(read_model_container(&as_v2).is_err());
    // v3 -> v1: the graph section bytes cannot be a kernel count + records.
    let as_v1 = flip(&fix.v3, 4, 3 ^ 1);
    assert!(read_model_container(&as_v1).is_err());
    // v2 -> v3: digests are now expected where none were written.
    let as_v3 = flip(&fix.base_v2, 4, 2 ^ 3);
    assert!(read_model_container(&as_v3).is_err());
    // Patch magic flipped to BKCM: its version 0x0301 is no model version.
    let mut as_model = fix.patch.clone();
    as_model[3] = b'M';
    let err = read_model_container(&as_model).unwrap_err();
    assert!(
        err.to_string().contains("unsupported model version"),
        "{err}"
    );
    // A model container fed to the patch applier fails on magic.
    assert!(apply_patch(&fix.base_v2, &fix.v3).is_err());
}

#[test]
fn legacy_formats_never_alias_silently_on_classified_sweeps() {
    // v1/v2 carry no digests, so some mutations are necessarily silent
    // model changes — the classifier must still never panic, and the
    // *graph section* of v2 (fully validated) plus all structure bytes
    // must stay Detected-or-Harmless. This quantifies what v3 buys.
    let fix = fixture();
    let clean_value = container_value(&fix.base_v2).unwrap();
    let report = sweep_single_byte(
        &fix.base_v2,
        &clean_value,
        container_value,
        &[0x01],
        false,
        false,
    );
    assert_eq!(
        report.detected + report.harmless + report.silent,
        report.mutations
    );
    // And the same sweep on the v3 encoding of a model eliminates the
    // silent class entirely (proven strictly in the tests above).
    assert!(
        report.silent > 0,
        "if v2 detected everything, v3 would be redundant — fixture too small?"
    );
}
