//! Cross-crate property tests: the pipeline invariants must hold for
//! arbitrary distributions and kernel shapes, not just the calibrated
//! ones.

use bnnkc::prelude::*;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn arbitrary_kernel(filters: usize, channels: usize, skew: f64, seed: u64) -> BitTensor {
    // Interpolate from a mild to a very peaked distribution, staying in
    // the head-heavy domain `calibrated` documents (top-64 mass at least
    // a third of the 64..256 mass).
    let t64 = 20.0 + skew * 60.0;
    let t256 = (t64 * 3.2).min(96.0).max(t64 + 5.0);
    let dist = SeqDistribution::calibrated(t64, t256, seed);
    let mut rng = StdRng::seed_from_u64(seed);
    dist.sample_kernel(filters, channels, &mut rng)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Encoding round-trips bit-exactly for any kernel.
    #[test]
    fn encoding_roundtrip_any_kernel(
        filters in 1usize..24,
        channels in 1usize..24,
        skew in 0.0f64..0.9,
        seed in any::<u64>()
    ) {
        let kernel = arbitrary_kernel(filters, channels, skew, seed);
        let compressed = KernelCodec::paper().compress(&kernel).unwrap();
        prop_assert_eq!(compressed.decompress().unwrap(), kernel);
    }

    /// The compressed stream is never larger than the fixed 9-bit format
    /// plus the worst-case code inflation (13 bits per sequence after
    /// auto-widening), and positive-skew kernels actually compress.
    #[test]
    fn stream_size_bounds(
        filters in 4usize..24,
        channels in 4usize..24,
        skew in 0.0f64..0.9,
        seed in any::<u64>()
    ) {
        let kernel = arbitrary_kernel(filters, channels, skew, seed);
        let compressed = KernelCodec::paper().compress(&kernel).unwrap();
        let n = compressed.num_sequences();
        prop_assert!(compressed.stream_bits() <= n * 13);
        prop_assert!(compressed.stream_bits() >= n * 6);
    }

    /// Clustering never moves a channel by more than the configured
    /// Hamming radius, for any radius.
    #[test]
    fn clustering_respects_radius(
        radius in 1u32..4,
        n_remove in 0usize..512,
        seed in any::<u64>()
    ) {
        let kernel = arbitrary_kernel(16, 16, 0.7, seed);
        let freq = FreqTable::from_kernel(&kernel).unwrap();
        let plan = ClusterPlan::build(&freq, &ClusterConfig {
            n_remove,
            max_distance: radius,
            ..ClusterConfig::default()
        });
        for s in plan.substitutions() {
            prop_assert!(s.from.hamming(s.to) <= radius);
            prop_assert!(s.from.hamming(s.to) >= 1);
        }
        let rewritten = plan.apply_to_kernel(&kernel).unwrap();
        let f2 = FreqTable::from_kernel(&rewritten).unwrap();
        prop_assert_eq!(f2.total(), freq.total());
    }

    /// Clustering is idempotent at the kernel level: re-planning on the
    /// rewritten kernel with the same budget replaces strictly fewer
    /// sequences' mass (the removed ones are gone).
    #[test]
    fn clustering_reduces_distinct_sequences(seed in any::<u64>()) {
        let kernel = arbitrary_kernel(24, 24, 0.8, seed);
        let freq = FreqTable::from_kernel(&kernel).unwrap();
        let plan = ClusterPlan::build(&freq, &ClusterConfig::default());
        prop_assume!(plan.replaced() > 0);
        let rewritten = plan.apply_to_kernel(&kernel).unwrap();
        let f2 = FreqTable::from_kernel(&rewritten).unwrap();
        prop_assert!(f2.distinct() < freq.distinct());
    }

    /// The whole-model ratio is always consistent with its parts.
    #[test]
    fn model_ratio_consistency(seed in any::<u64>()) {
        let model = ReActNet::tiny(seed);
        let mr = model_compression_ratio(&model, &KernelCodec::paper()).unwrap();
        prop_assert!(mr.compressed_bits <= mr.original_bits);
        prop_assert!(mr.ratio() >= 1.0);
        prop_assert!(mr.mean_kernel_ratio >= 1.0);
    }

    // The graph-executor-vs-scalar-oracle sweep now lives in
    // tests/backend_conformance.rs, parameterized over every registered
    // execution backend.

    /// For the ReActNet family the graph executor must also agree with
    /// the frozen block-walking scalar oracle (`ReActNet::forward_scalar`)
    /// across strides and scales — the pre-IR ground truth.
    #[test]
    fn reactnet_graph_matches_frozen_block_oracle(
        scale_q in 0usize..3,
        threads in 1usize..5,
        seed in any::<u64>()
    ) {
        // Scales where the clamp-to-8 keeps the C/2C block invariant.
        let scale = [0.0625, 0.125, 0.25][scale_q];
        let mut cfg = ReActNetConfig::scaled(scale).unwrap();
        cfg.image_size = 16;
        // Keep it fast: only the first 5 blocks (covers stride-2 and
        // channel-doubling transitions).
        cfg.blocks.truncate(5);
        cfg.num_classes = 10;
        let model = ReActNet::new(cfg, seed).unwrap();
        let inputs = synthetic_batch(2, 3, 16, seed ^ 0x0DD);
        let engine = Engine::with_threads(threads);
        let batched = model.forward_batch(&inputs, &engine);
        for (x, via_batch) in inputs.iter().zip(&batched) {
            let frozen = model.forward_scalar(x);
            let via_graph = model.graph().forward_scalar(x).unwrap();
            prop_assert_eq!(frozen.data(), via_batch.data());
            prop_assert_eq!(frozen.data(), via_graph.data());
        }
    }

    /// Compress → stream-decode → deploy into the graph is lossless for
    /// any architecture (the paper's pipeline, end to end, as a property).
    #[test]
    fn compressed_graph_deployment_is_lossless(
        arch_idx in 0usize..3,
        seed in any::<u64>()
    ) {
        let arch = Arch::ALL[arch_idx];
        let mut model = build_model(arch, 0.0625, 12, seed).unwrap();
        let codec = KernelCodec::paper();
        for i in 0..model.num_conv3() {
            let original = model.conv3_weights(i).clone();
            let ck = codec.compress(&original).unwrap();
            let container = read_container(&write_container(&ck)).unwrap();
            model.set_conv3_packed(i, container.decode_packed().unwrap()).unwrap();
            prop_assert_eq!(model.conv3_weights(i), &original, "{} conv {}", arch, i);
        }
    }

    /// The binary convolution substrate agrees with its float oracle for
    /// arbitrary packed inputs (cross-checking bitnn against itself via
    /// the public API).
    #[test]
    fn conv_agrees_with_oracle(
        c in 1usize..40,
        seed in any::<u64>()
    ) {
        use bitnn::ops::conv::{conv2d_binary, Conv2dParams};
        use bitnn::ops::reference::conv2d_reference;
        use bitnn::pack::{PackedActivations, PackedKernel};

        let kernel = arbitrary_kernel(2, c, 0.5, seed);
        let mut rng = StdRng::seed_from_u64(!seed);
        let acts = SeqDistribution::uniform().sample_kernel(1, c, &mut rng);
        // Reuse the 3x3 sampler as a [1, c, 3, 3] activation tensor.
        let pa = PackedActivations::pack(&acts).unwrap();
        let pk = PackedKernel::pack(&kernel).unwrap();
        let params = Conv2dParams { stride: 1, pad: 1 };
        let fast = conv2d_binary(&pa, &pk, params).unwrap();
        let oracle = conv2d_reference(&acts.to_tensor(), &kernel.to_tensor(), params);
        prop_assert_eq!(fast.shape(), oracle.shape());
        for (a, b) in fast.data().iter().zip(oracle.data()) {
            prop_assert_eq!(a, b);
        }
    }
}
