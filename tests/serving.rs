//! Serving-layer integration proofs:
//!
//! * served logits are **bit-exact** with the offline decode path
//!   (the scalar-reference oracle every backend must match);
//! * a hot-swap under concurrent load drops **zero** requests, and every
//!   response is bit-exact for the version it reports being served by;
//! * backpressure rejects with the typed [`ServeError::QueueFull`]
//!   immediately and the daemon keeps serving afterwards;
//! * registry misuse (duplicate names, arch/scale-incompatible swaps,
//!   unknown models, wrong shapes) fails with typed errors, never a
//!   panic;
//! * the `bnnkc serve` CLI exits nonzero on misconfiguration, and the
//!   TCP daemon handles the full wire lifecycle (ping, infer, hot-swap
//!   from a `bnnkc patch`-built container, drain) end to end.

mod common;

use bnnkc::prelude::*;
use bnnkc::serve::MAX_BATCH;
use common::{tmp_file, TempFile};
use std::io::BufRead;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

const IMAGE: usize = 32;
const SCALE: f64 = 0.0625;
const WEIGHT_SEED: u64 = 9;

/// Container bytes for the standard test model, kernels sampled from
/// `kernel_seed`.
fn container_bytes(kernel_seed: u64) -> Vec<u8> {
    let codec = KernelCodec::paper();
    let spec = build_spec(Arch::VggSmall, SCALE, IMAGE).unwrap();
    let kernels: Vec<CompressedKernel> = sample_conv3_kernels(&spec, kernel_seed)
        .unwrap()
        .iter()
        .map(|k| codec.compress(k).unwrap())
        .collect();
    write_model_container_v2(&spec, &kernels).unwrap().to_vec()
}

/// The independent oracle: offline decompress-and-pack deployment (the
/// bit-exact reference path `bnnkc run --offline` uses), forwarded on a
/// single-threaded engine.
fn oracle_logits(container: &[u8], inputs: &[Tensor]) -> Vec<Vec<u32>> {
    let parsed = read_model_container(container).unwrap();
    let spec = parsed.spec_or_reactnet(IMAGE).unwrap();
    let mut graph = attach_weights(&spec, WEIGHT_SEED).unwrap();
    for (i, c) in parsed.kernels.iter().enumerate() {
        graph
            .set_conv3_weights(i, c.decode_kernel().unwrap())
            .unwrap();
    }
    let engine = Engine::single_threaded();
    graph
        .forward_batch(inputs, &engine)
        .unwrap()
        .iter()
        .map(|t| t.data().iter().map(|v| v.to_bits()).collect())
        .collect()
}

fn bits_of(t: &Tensor) -> Vec<u32> {
    t.data().iter().map(|v| v.to_bits()).collect()
}

fn test_server(cfg: ServeConfig) -> Server {
    Server::new(cfg)
}

fn default_cfg() -> ServeConfig {
    ServeConfig {
        seed: WEIGHT_SEED,
        image: IMAGE,
        ..Default::default()
    }
}

#[test]
fn served_logits_are_bit_exact_with_offline_oracle() {
    let bytes = container_bytes(41);
    let inputs = synthetic_batch(6, 3, IMAGE, 7 ^ RUN_INPUT_SALT);
    let expected = oracle_logits(&bytes, &inputs);

    let server = test_server(default_cfg());
    let shape = server.register_bytes("m", &bytes).unwrap();
    assert_eq!(
        (shape.channels, shape.image, shape.classes),
        (3, IMAGE, 10),
        "vggsmall geometry"
    );
    let mut slot = InferSlot::new();
    let mut out = Tensor::default();
    for (x, want) in inputs.iter().zip(&expected) {
        let version = server.infer_blocking("m", &mut slot, x, &mut out).unwrap();
        assert_eq!(version, 1);
        assert_eq!(&bits_of(&out), want, "served logits must be bit-exact");
    }
    let stats = server.stats_report();
    assert_eq!(stats.served, inputs.len() as u64);
    assert_eq!(stats.rejected, 0);
    assert!(!stats.batch_hist.is_empty());
}

#[test]
fn hot_swap_under_load_drops_nothing_and_stays_bit_exact() {
    let v1 = container_bytes(41);
    // The replacement container is built exactly like `bnnkc patch`
    // builds it: a delta patch from v1, applied to produce a v3 target.
    let fresh: Vec<u8> = {
        let codec = KernelCodec::paper();
        let spec = build_spec(Arch::VggSmall, SCALE, IMAGE).unwrap();
        let kernels: Vec<CompressedKernel> = sample_conv3_kernels(&spec, 42)
            .unwrap()
            .iter()
            .map(|k| codec.compress(k).unwrap())
            .collect();
        write_model_container_v3(&spec, &kernels).unwrap().to_vec()
    };
    let (patch, _) = diff_containers(&v1, &fresh).unwrap();
    let v2 = apply_patch(&v1, &patch).unwrap();

    let pool = synthetic_batch(4, 3, IMAGE, 7 ^ RUN_INPUT_SALT);
    let oracle_v1 = oracle_logits(&v1, &pool);
    let oracle_v2 = oracle_logits(&v2, &pool);
    assert_ne!(oracle_v1, oracle_v2, "versions must be distinguishable");

    let server = test_server(default_cfg());
    server.register_bytes("m", &v1).unwrap();

    const CLIENTS: usize = 4;
    const PER_CLIENT: u64 = 60;
    let served_v1 = AtomicU64::new(0);
    let served_v2 = AtomicU64::new(0);
    let completed = AtomicU64::new(0);
    std::thread::scope(|scope| {
        for c in 0..CLIENTS {
            let (server, pool) = (&server, &pool);
            let (served_v1, served_v2, completed) = (&served_v1, &served_v2, &completed);
            let (oracle_v1, oracle_v2) = (&oracle_v1, &oracle_v2);
            scope.spawn(move || {
                let mut slot = InferSlot::new();
                let mut out = Tensor::default();
                for i in 0..PER_CLIENT {
                    let idx = (c as u64 + i) as usize % pool.len();
                    let version = server
                        .infer_blocking("m", &mut slot, &pool[idx], &mut out)
                        .expect("no request may be dropped during a hot-swap");
                    let got = bits_of(&out);
                    match version {
                        1 => {
                            assert_eq!(got, oracle_v1[idx], "v1 response must match v1 oracle");
                            served_v1.fetch_add(1, Ordering::Relaxed);
                        }
                        2 => {
                            assert_eq!(got, oracle_v2[idx], "v2 response must match v2 oracle");
                            served_v2.fetch_add(1, Ordering::Relaxed);
                        }
                        other => panic!("unexpected version {other}"),
                    }
                    completed.fetch_add(1, Ordering::Relaxed);
                }
            });
        }
        // Swap mid-load: wait until some requests were served, then
        // atomically replace the model.
        let deadline = Instant::now() + Duration::from_secs(30);
        while completed.load(Ordering::Relaxed) < (CLIENTS as u64 * PER_CLIENT) / 4 {
            assert!(Instant::now() < deadline, "load did not progress");
            std::thread::yield_now();
        }
        assert_eq!(server.swap_bytes("m", &v2).unwrap(), 2);
    });

    let total = CLIENTS as u64 * PER_CLIENT;
    assert_eq!(
        served_v1.load(Ordering::Relaxed) + served_v2.load(Ordering::Relaxed),
        total,
        "every request must be answered (zero drops)"
    );
    assert!(
        served_v1.load(Ordering::Relaxed) > 0,
        "some requests must have been served before the swap"
    );

    // After the swap every new request is served by version 2.
    let mut slot = InferSlot::new();
    let mut out = Tensor::default();
    let version = server
        .infer_blocking("m", &mut slot, &pool[0], &mut out)
        .unwrap();
    assert_eq!(version, 2);
    assert_eq!(bits_of(&out), oracle_v2[0]);

    let stats = server.stats_report();
    assert_eq!(stats.served, total + 1);
    assert_eq!(stats.swaps, 1);
    assert_eq!(stats.models[0].version, 2);
}

#[test]
fn backpressure_rejects_typed_and_daemon_recovers() {
    let bytes = container_bytes(41);
    let cfg = ServeConfig {
        policy: ExecPolicy::single_threaded(),
        queue_depth: 3,
        max_batch: 2,
        ..default_cfg()
    };
    let server = test_server(cfg);
    server.register_bytes("m", &bytes).unwrap();
    let input = synthetic_batch(1, 3, IMAGE, 7 ^ RUN_INPUT_SALT).remove(0);

    // Hold the batch worker so the queue fills deterministically.
    server.pause("m").unwrap();
    std::thread::scope(|scope| {
        for _ in 0..3 {
            let (server, input) = (&server, &input);
            scope.spawn(move || {
                let mut slot = InferSlot::new();
                let mut out = Tensor::default();
                server
                    .infer_blocking("m", &mut slot, input, &mut out)
                    .expect("queued requests must be served after resume");
            });
        }
        let deadline = Instant::now() + Duration::from_secs(30);
        while server.queue_len("m").unwrap() < 3 {
            assert!(Instant::now() < deadline, "queue never filled");
            std::thread::yield_now();
        }
        // Queue is at depth: the next submit is rejected immediately
        // with the typed error — it must not block.
        let mut slot = InferSlot::new();
        let mut out = Tensor::default();
        let t0 = Instant::now();
        let err = server
            .infer_blocking("m", &mut slot, &input, &mut out)
            .unwrap_err();
        assert_eq!(err, ServeError::QueueFull);
        assert_eq!(err.code(), ErrorCode::QueueFull);
        assert!(
            t0.elapsed() < Duration::from_secs(5),
            "backpressure rejection must be immediate"
        );
        server.resume("m").unwrap();
    });

    // The daemon stayed live: the queued requests were all served and
    // new ones still work.
    let stats = server.stats_report();
    assert_eq!(stats.served, 3);
    assert_eq!(stats.rejected, 1);
    let mut slot = InferSlot::new();
    let mut out = Tensor::default();
    assert!(server
        .infer_blocking("m", &mut slot, &input, &mut out)
        .is_ok());
}

#[test]
fn registry_misuse_fails_typed() {
    let bytes = container_bytes(41);
    let server = test_server(default_cfg());
    server.register_bytes("m", &bytes).unwrap();

    // Duplicate name.
    assert_eq!(
        server.register_bytes("m", &bytes).unwrap_err(),
        ServeError::DuplicateModel("m".into())
    );

    // Arch/scale-incompatible hot-swap: a different scale changes the
    // topology.
    let other_scale = {
        let codec = KernelCodec::paper();
        let spec = build_spec(Arch::VggSmall, 0.125, IMAGE).unwrap();
        let kernels: Vec<CompressedKernel> = sample_conv3_kernels(&spec, 41)
            .unwrap()
            .iter()
            .map(|k| codec.compress(k).unwrap())
            .collect();
        write_model_container_v2(&spec, &kernels).unwrap().to_vec()
    };
    let err = server.swap_bytes("m", &other_scale).unwrap_err();
    assert!(
        matches!(
            err,
            ServeError::Container(kc_core::KcError::IncompatibleModel(_))
        ),
        "incompatible swap must be typed, got {err:?}"
    );
    assert_eq!(err.code(), ErrorCode::Incompatible);

    // A rejected swap must not have bumped the version.
    assert_eq!(server.stats_report().models[0].version, 1);
    assert_eq!(server.stats_report().swaps, 0);

    // Unknown model.
    let input = synthetic_batch(1, 3, IMAGE, 7).remove(0);
    let mut slot = InferSlot::new();
    let mut out = Tensor::default();
    assert_eq!(
        server
            .infer_blocking("nope", &mut slot, &input, &mut out)
            .unwrap_err(),
        ServeError::UnknownModel("nope".into())
    );

    // Wrong input shape.
    let bad = synthetic_batch(1, 3, 16, 7).remove(0);
    let err = server
        .infer_blocking("m", &mut slot, &bad, &mut out)
        .unwrap_err();
    assert!(matches!(err, ServeError::ShapeMismatch { .. }));
    assert_eq!(err.code(), ErrorCode::BadInput);

    // Tampered container bytes.
    let mut tampered = container_bytes(41);
    let n = tampered.len();
    tampered[n / 2] ^= 0x40;
    assert!(matches!(
        server.register_bytes("t", &tampered).unwrap_err(),
        ServeError::Container(_)
    ));

    // After a drain, submits are rejected with the typed shutdown error.
    server.begin_drain();
    assert_eq!(
        server
            .infer_blocking("m", &mut slot, &input, &mut out)
            .unwrap_err(),
        ServeError::ShuttingDown
    );
}

#[test]
fn preferred_batch_is_clamped_and_positive() {
    let bytes = container_bytes(41);
    let server = test_server(ServeConfig {
        max_batch: 1000, // explicit caps clamp to MAX_BATCH
        ..default_cfg()
    });
    server.register_bytes("m", &bytes).unwrap();
    let m = &server.stats_report().models[0];
    assert!(m.max_batch >= 1 && m.max_batch <= MAX_BATCH as u32);
}

#[test]
fn cli_serve_rejects_bad_configs_nonzero() {
    // No model source at all.
    let out = common::bnnkc(&["serve", "--addr", "127.0.0.1:0"]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("--in"));

    // Unknown flag.
    let out = common::bnnkc(&["serve", "--addr", "127.0.0.1:0", "--bogus", "x"]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown flag"));

    // Malformed --model spec.
    let out = common::bnnkc(&["serve", "--addr", "127.0.0.1:0", "--model", "no-equals"]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("<name>=<file>"));

    // Duplicate model names.
    let file = TempFile(tmp_file("serve-dup.bkcm"));
    std::fs::write(&file.0, container_bytes(41)).unwrap();
    let path = file.0.to_str().unwrap();
    let spec_a = format!("a={path}");
    let out = common::bnnkc(&[
        "serve",
        "--addr",
        "127.0.0.1:0",
        "--model",
        &spec_a,
        "--model",
        &spec_a,
    ]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("already registered"));

    // Missing container file.
    let out = common::bnnkc(&[
        "serve",
        "--addr",
        "127.0.0.1:0",
        "--in",
        "/nonexistent.bkcm",
    ]);
    assert!(!out.status.success());
}

/// Full TCP lifecycle against the real `bnnkc serve` process: ping,
/// bit-exact inference, hot-swap from a `bnnkc patch`-built container
/// file, stats, graceful shutdown.
#[test]
fn daemon_wire_lifecycle_end_to_end() {
    let v1 = container_bytes(41);
    let fresh = {
        let codec = KernelCodec::paper();
        let spec = build_spec(Arch::VggSmall, SCALE, IMAGE).unwrap();
        let kernels: Vec<CompressedKernel> = sample_conv3_kernels(&spec, 42)
            .unwrap()
            .iter()
            .map(|k| codec.compress(k).unwrap())
            .collect();
        write_model_container_v3(&spec, &kernels).unwrap().to_vec()
    };
    let (patch, _) = diff_containers(&v1, &fresh).unwrap();
    let v2 = apply_patch(&v1, &patch).unwrap();

    let model_file = TempFile(tmp_file("serve-e2e.bkcm"));
    std::fs::write(&model_file.0, &v1).unwrap();
    let swap_file = TempFile(tmp_file("serve-e2e-v2.bkcm"));
    std::fs::write(&swap_file.0, &v2).unwrap();

    let inputs = synthetic_batch(2, 3, IMAGE, WEIGHT_SEED ^ RUN_INPUT_SALT);
    let oracle_v1 = oracle_logits(&v1, &inputs);
    let oracle_v2 = oracle_logits(&v2, &inputs);

    let mut child = std::process::Command::new(env!("CARGO_BIN_EXE_bnnkc"))
        .args([
            "serve",
            "--in",
            model_file.0.to_str().unwrap(),
            "--addr",
            "127.0.0.1:0",
            "--seed",
            &WEIGHT_SEED.to_string(),
            "--image",
            &IMAGE.to_string(),
        ])
        .stdout(std::process::Stdio::piped())
        .stderr(std::process::Stdio::null())
        .spawn()
        .expect("spawn daemon");
    let mut stdout = std::io::BufReader::new(child.stdout.take().unwrap());
    let mut first = String::new();
    stdout.read_line(&mut first).unwrap();
    let addr = first
        .trim()
        .rsplit(' ')
        .next()
        .expect("resolved address on the first line")
        .to_string();

    let run = || -> Result<(), String> {
        let mut client = Client::connect(&addr).map_err(|e| e.to_string())?;
        let call = |client: &mut Client, req: &Request| -> Result<Response, String> {
            client.call(req).map_err(|e| e.to_string())
        };
        // Liveness.
        match call(&mut client, &Request::Ping)? {
            Response::Pong => {}
            other => return Err(format!("want Pong, got {other:?}")),
        }
        // Bit-exact inference on v1.
        let infer = |client: &mut Client, i: usize| -> Result<(u32, Vec<u32>), String> {
            let req = Request::Infer(kc_core::wire::InferRequest {
                model: "default".into(),
                seq: i as u64,
                shape: [3, IMAGE as u32, IMAGE as u32],
                data: inputs[i].data().to_vec(),
            });
            match call(client, &req)? {
                Response::Logits { seq, version, data } if seq == i as u64 => {
                    Ok((version, data.iter().map(|v| v.to_bits()).collect()))
                }
                other => Err(format!("want Logits(seq={i}), got {other:?}")),
            }
        };
        let (version, bits) = infer(&mut client, 0)?;
        if version != 1 || bits != oracle_v1[0] {
            return Err("v1 inference mismatch".into());
        }
        // Hot-swap from the patched container file.
        let swap = Request::Swap {
            model: "default".into(),
            path: swap_file.0.to_str().unwrap().into(),
        };
        match call(&mut client, &swap)? {
            Response::Swapped { version: 2 } => {}
            other => return Err(format!("want Swapped(2), got {other:?}")),
        }
        let (version, bits) = infer(&mut client, 1)?;
        if version != 2 || bits != oracle_v2[1] {
            return Err("v2 inference mismatch".into());
        }
        // Stats reflect the swap.
        match call(&mut client, &Request::Stats)? {
            Response::Stats(s) => {
                if s.swaps != 1 || s.models[0].version != 2 {
                    return Err(format!("stats disagree: {s:?}"));
                }
            }
            other => return Err(format!("want Stats, got {other:?}")),
        }
        // Graceful shutdown.
        match call(&mut client, &Request::Shutdown)? {
            Response::Closing => Ok(()),
            other => Err(format!("want Closing, got {other:?}")),
        }
    };
    let result = run();
    if result.is_err() {
        let _ = child.kill();
    }
    result.unwrap();
    let status = child.wait().unwrap();
    assert!(status.success(), "daemon must exit cleanly after drain");
}
