//! Backend conformance: every registered execution backend must be
//! bit-exact with `ScalarBackend` — the frozen naive-reference oracle —
//! on random graphs, strides, pads, batch sizes, and thread counts.
//!
//! This is the one parameterized harness that replaces the old
//! engine-specific oracle proptests: a new backend added to
//! `bitnn::backend::all_backends` is swept here automatically, with no
//! new test code. The op-level section keeps the kernel substrate honest
//! underneath the graph sweep: the engine's conv and GEMM (through
//! whatever SIMD level and microkernel variant the host dispatches to —
//! portable, AVX2, or AVX-512; see the CI legs that pin
//! `BITNN_SIMD=portable`) against the float references.

use bnnkc::prelude::*;
use proptest::prelude::*;

use bitnn::backend::all_backends;
use bitnn::exec::{ConvMode, DedupMode, Lowering};
use bitnn::layers::{BatchNorm, BinConv2d, QuantConv2d, QuantLinear, RPReLU, RSign};
use bitnn::ops::conv::Conv2dParams;
use bitnn::pack::PackedActivations;
use bitnn::weightgen::{random_floats, random_kernel};

/// Build a random-but-valid graph: a chain of bn/act/conv/pool ops with
/// occasional skip-connection adds to random earlier same-shape values,
/// plus stride-2 convolutions. Multi-consumer values, reconvergent adds,
/// and mixed strides are exactly what stresses fusion detection and the
/// liveness-driven slot recycling differently per backend (fused vs
/// unfused step lists).
fn random_chain_graph(ops: &[usize], picks: &[usize], seed: u64) -> ModelGraph {
    let c = 8;
    let stem_w = Tensor::from_vec(&[c, 3, 3, 3], random_floats(c * 27, 1.0, seed)).unwrap();
    let mut b = GraphBuilder::new("conformance", 3, 8);
    let mut x = b.push(
        "stem",
        NodeOp::StemConv(QuantConv2d::from_float(
            &stem_w,
            Conv2dParams { stride: 1, pad: 1 },
        )),
        &[0],
    );
    let mut size = 8usize; // stride-1 stem keeps the input size
    let mut avail: Vec<(usize, usize)> = vec![(x, size)];
    for (i, (&op, &pick)) in ops.iter().zip(picks).enumerate() {
        x = match op {
            0 => b.push(
                format!("bn{i}"),
                NodeOp::BatchNorm(BatchNorm::identity(c)),
                &[x],
            ),
            1 => b.push(format!("act{i}"), NodeOp::Act(RPReLU::plain(c, 0.25)), &[x]),
            2 => {
                // Skip add with a random earlier same-shape value (falls
                // back to self-add when none exists).
                let same: Vec<usize> = avail
                    .iter()
                    .filter(|&&(_, s)| s == size)
                    .map(|&(id, _)| id)
                    .collect();
                let other = same[pick % same.len()];
                b.push(format!("add{i}"), NodeOp::Add, &[x, other])
            }
            3 => {
                let sign = b.push(format!("sign{i}"), NodeOp::Sign(RSign::zero(c)), &[x]);
                b.push(
                    format!("conv{i}"),
                    NodeOp::BinConv(BinConv2d::new(
                        random_kernel(&[c, c, 3, 3], seed ^ i as u64),
                        Conv2dParams { stride: 1, pad: 1 },
                    )),
                    &[sign],
                )
            }
            4 => {
                // Stride-2 conv: halves the spatial size like the pool.
                if size < 3 {
                    continue;
                }
                size = (size + 2 - 3) / 2 + 1; // pad 1, k 3, stride 2
                let sign = b.push(format!("sign{i}"), NodeOp::Sign(RSign::zero(c)), &[x]);
                b.push(
                    format!("sconv{i}"),
                    NodeOp::BinConv(BinConv2d::new(
                        random_kernel(&[c, c, 3, 3], seed ^ (0x51 + i as u64)),
                        Conv2dParams { stride: 2, pad: 1 },
                    )),
                    &[sign],
                )
            }
            _ => {
                if size < 2 {
                    continue; // too small to pool again
                }
                size = size.div_ceil(2);
                b.push(format!("pool{i}"), NodeOp::AvgPool2x2, &[x])
            }
        };
        avail.push((x, size));
    }
    let gap = b.push("gap", NodeOp::GlobalAvgPool, &[x]);
    b.push(
        "fc",
        NodeOp::Classifier(QuantLinear::from_float(
            &random_floats(10 * c, 0.5, seed ^ 0xFC),
            10,
            c,
        )),
        &[gap],
    );
    b.finish().unwrap()
}

/// Run every registered backend over `inputs` and assert each output is
/// bit-exact with the scalar oracle. Two consecutive forwards per input
/// stream through the same state, so warmed-arena reuse is covered too.
fn assert_backends_conform(model: &ModelGraph, inputs: &[Tensor], threads: usize) {
    let expect: Vec<Tensor> = inputs
        .iter()
        .map(|x| model.forward_scalar(x).unwrap())
        .collect();
    for backend in all_backends(threads) {
        let mut state = model.state_for(backend.as_ref());
        for round in 0..2 {
            for (x, e) in inputs.iter().zip(&expect) {
                let mut y = Tensor::default();
                model
                    .forward_on(backend.as_ref(), &mut state, x, &mut y)
                    .unwrap();
                assert_eq!(
                    y.data(),
                    e.data(),
                    "backend {} diverged from scalar oracle \
                     (threads {threads}, round {round})",
                    backend.name()
                );
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Every registered backend is bit-exact with `ScalarBackend` on
    /// random graphs — skip adds, stride-2 convs, pools, reconvergence —
    /// across thread counts and repeated (arena-reusing) forwards.
    #[test]
    fn backends_match_scalar_on_random_graphs(
        ops in proptest::collection::vec(0usize..6, 1..20),
        picks in proptest::collection::vec(0usize..64, 20),
        threads in 1usize..5,
        seed in any::<u64>()
    ) {
        let model = random_chain_graph(&ops, &picks, seed);
        let x = Tensor::from_vec(&[1, 3, 8, 8], random_floats(3 * 64, 1.0, seed ^ 9)).unwrap();
        assert_backends_conform(&model, &[x], threads);
    }

    /// Every backend is bit-exact with the oracle on the built-in
    /// architecture families across image sizes, batch sizes, and thread
    /// counts — strides and shortcut forms vary per family (identity,
    /// stride-2 pool, channel duplication), so this sweeps all fused
    /// paths. The engine's batch entry point must agree too.
    #[test]
    fn backends_match_scalar_across_architectures(
        arch_idx in 0usize..3,
        image in 12usize..24,
        batch in 1usize..4,
        threads in 1usize..5,
        seed in any::<u64>()
    ) {
        let arch = Arch::ALL[arch_idx];
        let model = build_model(arch, 0.0625, image, seed).unwrap();
        let inputs = synthetic_batch(batch, 3, image, seed ^ 0x6A17);
        assert_backends_conform(&model, &inputs, threads);
        // The CPU backend's batch-parallel entry point (forward_batch)
        // must match the per-item path as well.
        let engine = Engine::with_threads(threads);
        let batched = model.forward_batch(&inputs, &engine).unwrap();
        for (x, via_batch) in inputs.iter().zip(&batched) {
            let scalar = model.forward_scalar(x).unwrap();
            prop_assert_eq!(scalar.data(), via_batch.data(),
                "{} batch path diverged", arch);
        }
    }

    /// The compressed-domain (sequence-bank memoized) conv path is
    /// bit-exact with the scalar oracle across architecture families,
    /// image sizes, batches, and thread counts. `DedupMode::On` forces
    /// the bank path onto every 3×3 layer regardless of width;
    /// `DedupMode::Off` pins the dense path — both must agree with the
    /// oracle, and hence with each other, on every architecture's mix of
    /// strides and shortcut forms.
    #[test]
    fn dedup_paths_match_scalar_across_architectures(
        arch_idx in 0usize..3,
        image in 12usize..20,
        batch in 1usize..3,
        threads in 1usize..5,
        dedup_on in any::<bool>(),
        seed in any::<u64>()
    ) {
        let arch = Arch::ALL[arch_idx];
        let model = build_model(arch, 0.0625, image, seed).unwrap();
        let inputs = synthetic_batch(batch, 3, image, seed ^ 0xD3D0);
        let engine = Engine::new(ExecPolicy {
            threads,
            dedup: if dedup_on { DedupMode::On } else { DedupMode::Off },
            ..ExecPolicy::default()
        });
        let backend = CpuBackend::new(engine.clone());
        let mut state = model.state_for(&backend);
        for x in &inputs {
            let mut y = Tensor::default();
            model.forward_on(&backend, &mut state, x, &mut y).unwrap();
            let e = model.forward_scalar(x).unwrap();
            prop_assert_eq!(y.data(), e.data(),
                "{} dedup={} diverged from scalar oracle", arch, dedup_on);
        }
        // The batch-parallel entry point must take the same path.
        let batched = model.forward_batch(&inputs, &engine).unwrap();
        for (x, via_batch) in inputs.iter().zip(&batched) {
            let scalar = model.forward_scalar(x).unwrap();
            prop_assert_eq!(scalar.data(), via_batch.data(),
                "{} dedup={} batch path diverged", arch, dedup_on);
        }
    }

    /// The streaming direct-conv lowering, pinned via
    /// `ConvMode::Stream`, is bit-exact with the float reference across
    /// random 3×3 geometries: strides 1–2, pads 0–1, degenerate one-row
    /// and one-column planes, batches, channel counts spanning one and
    /// two lane words, and filter counts spanning the filter-block
    /// remainders.
    #[test]
    fn streaming_conv_matches_scalar_oracle(
        c in 1usize..70,
        h in 1usize..8,
        w in 1usize..8,
        n in 1usize..4,
        kf in 1usize..7,
        stride in 1usize..3,
        pad in 0usize..2,
        threads in 1usize..5,
        seed in any::<u64>()
    ) {
        use bitnn::engine::ConvScratch;
        use bitnn::ops::reference::conv2d_reference;

        prop_assume!(h + 2 * pad >= 3 && w + 2 * pad >= 3);
        let a = random_kernel(&[n, c, h, w], seed);
        let wk = random_kernel(&[kf, c, 3, 3], !seed);
        let pa = PackedActivations::pack(&a).unwrap();
        let pk = PackedKernel::pack(&wk).unwrap();
        let params = Conv2dParams { stride, pad };
        let engine = Engine::new(ExecPolicy {
            threads,
            conv: ConvMode::Stream,
            // Exercise the parallel band split even on tiny shapes.
            min_work: 0,
            ..ExecPolicy::default()
        });
        let mut scratch = ConvScratch::default();
        let got = engine.conv2d(&pa, (&pk).into(), params, &mut scratch).unwrap();
        let expect = conv2d_reference(&a.to_tensor(), &wk.to_tensor(), params);
        prop_assert_eq!(got.shape(), expect.shape());
        for (g, e) in got.data().iter().zip(expect.data()) {
            prop_assert_eq!(*g, *e);
        }
    }

    /// Whole-model conformance with the streaming lowering pinned: the
    /// packed binary-domain edges, the stacked weight-stationary batch
    /// schedule, and the streaming conv kernels compose to results
    /// bit-exact with the scalar oracle across architecture families.
    #[test]
    fn streaming_conv_matches_scalar_across_architectures(
        arch_idx in 0usize..3,
        image in 12usize..20,
        batch in 2usize..4,
        threads in 1usize..5,
        seed in any::<u64>()
    ) {
        let arch = Arch::ALL[arch_idx];
        let model = build_model(arch, 0.0625, image, seed).unwrap();
        let inputs = synthetic_batch(batch, 3, image, seed ^ 0x57E4);
        let engine = Engine::new(ExecPolicy {
            threads,
            conv: ConvMode::Stream,
            ..ExecPolicy::default()
        });
        let backend = CpuBackend::new(engine.clone());
        let mut state = model.state_for(&backend);
        for x in &inputs {
            let mut y = Tensor::default();
            model.forward_on(&backend, &mut state, x, &mut y).unwrap();
            let e = model.forward_scalar(x).unwrap();
            prop_assert_eq!(y.data(), e.data(),
                "{} streaming conv diverged from scalar oracle", arch);
        }
        // The batch entry point (stacked weight-stationary schedule on
        // the intra-op split) must take the same path.
        let batched = model.forward_batch(&inputs, &engine).unwrap();
        for (x, via_batch) in inputs.iter().zip(&batched) {
            let scalar = model.forward_scalar(x).unwrap();
            prop_assert_eq!(scalar.data(), via_batch.data(),
                "{} streaming batch path diverged", arch);
        }
    }

    /// Op-level floor under the graph sweep: the engine conv is bit-exact
    /// vs `ops::reference` across random shapes, strides, pads, thread
    /// counts, and every lowering — through whatever SIMD path the host
    /// dispatches (portable, AVX2, AVX-512).
    #[test]
    fn engine_conv_matches_reference(
        c in 1usize..70,
        h in 3usize..7,
        w in 3usize..7,
        n in 1usize..3,
        kf in 1usize..4,
        ks in 1usize..4,
        stride in 1usize..3,
        pad in 0usize..2,
        threads in 1usize..5,
        lowering_pick in 0usize..3,
        seed in any::<u64>()
    ) {
        use bitnn::engine::ConvScratch;
        use bitnn::ops::reference::conv2d_reference;

        let lowering = [Lowering::Auto, Lowering::Direct, Lowering::Im2col][lowering_pick];
        let a = random_kernel(&[n, c, h, w], seed);
        let wk = random_kernel(&[kf, c, ks, ks], !seed);
        let pa = PackedActivations::pack(&a).unwrap();
        let pk = PackedKernel::pack(&wk).unwrap();
        let params = Conv2dParams { stride, pad };
        let engine = Engine::new(ExecPolicy {
            threads,
            lowering,
            // Exercise the parallel path even on tiny shapes.
            min_work: 0,
            ..ExecPolicy::default()
        });
        let mut scratch = ConvScratch::default();
        let got = engine.conv2d(&pa, (&pk).into(), params, &mut scratch).unwrap();
        let expect = conv2d_reference(&a.to_tensor(), &wk.to_tensor(), params);
        prop_assert_eq!(got.shape(), expect.shape());
        for (g, e) in got.data().iter().zip(expect.data()) {
            prop_assert_eq!(*g, *e);
        }
    }

    /// The engine GEMM is bit-exact vs the naive loop and the float
    /// reference for any thread count. `k` spans every microkernel shape
    /// class (short-row ≤ 2 lanes through wide ≥ 13 lanes), so whichever
    /// register-blocking variant the autotuner picked is validated here.
    #[test]
    fn engine_gemm_matches_reference(
        m in 1usize..9, kn in 1usize..7, k in 1usize..1200,
        threads in 1usize..5,
        seed in any::<u64>()
    ) {
        use bitnn::ops::gemm::PackedMatrix;
        use bitnn::ops::reference::matmul_reference;

        let ak = random_kernel(&[1, 1, m, k], seed);
        let bk = random_kernel(&[1, 1, kn, k], !seed);
        let a_bits: Vec<bool> = (0..ak.len()).map(|i| ak.get(i)).collect();
        let b_bits: Vec<bool> = (0..bk.len()).map(|i| bk.get(i)).collect();
        let a = PackedMatrix::from_bools(m, k, &a_bits).unwrap();
        let b = PackedMatrix::from_bools(kn, k, &b_bits).unwrap();
        let engine = Engine::with_threads(threads);
        let got = engine.gemm(&a, &b).unwrap();
        prop_assert_eq!(&got, &bitnn::ops::gemm::gemm_binary_naive(&a, &b).unwrap());
        let sgn = |v: bool| if v { 1.0f32 } else { -1.0 };
        let af: Vec<f32> = a_bits.iter().map(|&v| sgn(v)).collect();
        let bf: Vec<f32> = b_bits.iter().map(|&v| sgn(v)).collect();
        let reference = matmul_reference(&af, &bf, m, kn, k);
        for (g, e) in got.iter().zip(&reference) {
            prop_assert_eq!(*g as f32, *e);
        }
    }
}

/// Deterministic streaming-conv edge geometries, always exercised even
/// when the property sweep's generator skirts them: one-row and
/// one-column planes (every window row out of bounds on one side), a 1×1
/// plane under pad 1 (pad-only windows), stride 2 without padding, and
/// the perfsuite-gated 28×28/c64/k64 shape batched.
#[test]
fn streaming_conv_degenerate_geometries_match_oracle() {
    use bitnn::engine::ConvScratch;
    use bitnn::ops::reference::conv2d_reference;

    let engine = Engine::new(ExecPolicy {
        threads: 1,
        conv: ConvMode::Stream,
        ..ExecPolicy::default()
    });
    let mut scratch = ConvScratch::default();
    for (shape, kf, stride, pad) in [
        ([2, 5, 1, 9], 4, 1, 1),     // single row
        ([2, 5, 9, 1], 4, 1, 1),     // single column
        ([1, 64, 1, 1], 3, 1, 1),    // pad-only windows
        ([3, 70, 6, 7], 5, 2, 0),    // stride 2, no padding, 2 lanes
        ([2, 64, 28, 28], 64, 1, 1), // the perfsuite-gated geometry
    ] {
        let a = random_kernel(&shape, 0xDE6E ^ (shape[1] * shape[3]) as u64);
        let wk = random_kernel(&[kf, shape[1], 3, 3], 0xF117 ^ kf as u64);
        let pa = PackedActivations::pack(&a).unwrap();
        let pk = PackedKernel::pack(&wk).unwrap();
        let params = Conv2dParams { stride, pad };
        let got = engine
            .conv2d(&pa, (&pk).into(), params, &mut scratch)
            .unwrap();
        let expect = conv2d_reference(&a.to_tensor(), &wk.to_tensor(), params);
        assert_eq!(got.shape(), expect.shape());
        assert_eq!(
            got.data(),
            expect.data(),
            "stream diverged at {shape:?} kf={kf} s={stride} p={pad}"
        );
    }
}
