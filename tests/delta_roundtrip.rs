//! Delta round-trip property: `patch(base, diff(base, new))` is
//! bit-exact with writing `new` as a fresh v3 container — across random
//! architectures, scales, seeds, and edit patterns (untouched models,
//! single-bit nudges, heavy rewrites, and cross-seed full replacement).

mod common;

use bitnn::weightgen::{read_sequence, write_sequence};
use bnnkc::prelude::*;
use proptest::prelude::*;

fn arch_from(i: u8) -> Arch {
    match i % 3 {
        0 => Arch::ReActNet,
        1 => Arch::VggSmall,
        _ => Arch::ResNetLite,
    }
}

fn scale_from(i: u8) -> f64 {
    [0.0625, 0.125][i as usize % 2]
}

fn compress_all(kernels: &[BitTensor], clustered: bool) -> Vec<CompressedKernel> {
    let codec = if clustered {
        KernelCodec::paper_clustered()
    } else {
        KernelCodec::paper()
    };
    kernels.iter().map(|k| codec.compress(k).unwrap()).collect()
}

proptest! {
    // Each case compresses two whole models; keep the count moderate.
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn patch_of_diff_is_bit_exact(
        arch_i in 0u8..3,
        scale_i in 0u8..2,
        seed in 1u64..1000,
        clustered in any::<bool>(),
        // Per-kernel mutation intensity: 0 = untouched, small = sparse
        // channel edits, large = heavy rewrite.
        edits_per_kernel in proptest::collection::vec(0usize..40, 1..20),
        reseed in any::<bool>(),
    ) {
        let arch = arch_from(arch_i);
        let scale = scale_from(scale_i);
        let spec = build_spec(arch, scale, 32).unwrap();
        let base_kernels = sample_conv3_kernels(&spec, seed).unwrap();
        let base = write_model_container_v2(&spec, &compress_all(&base_kernels, clustered))
            .unwrap()
            .to_vec();

        // Derive the new model: either a fully re-seeded kernel set (all
        // records change) or targeted channel edits on the base.
        let mut new_kernels = if reseed {
            sample_conv3_kernels(&spec, seed + 1).unwrap()
        } else {
            base_kernels
        };
        if !reseed {
            for (ki, k) in new_kernels.iter_mut().enumerate() {
                let n_edits = edits_per_kernel[ki % edits_per_kernel.len()];
                let shape = k.shape().to_vec();
                let (filters, channels) = (shape[0], shape[1]);
                for e in 0..n_edits {
                    // Deterministic pseudo-positions spread over the kernel.
                    let flat = (e * 7919 + ki * 104729 + seed as usize) % (filters * channels);
                    let (f, ch) = (flat / channels, flat % channels);
                    let seq = read_sequence(k, f, ch);
                    // Alternate Hamming-1 flips and full replacements.
                    let new_seq = if e % 2 == 0 {
                        seq ^ (1 << (e % 9))
                    } else {
                        (seq.wrapping_add(37 + e as u16)) & 0x1FF
                    };
                    write_sequence(k, f, ch, new_seq);
                }
            }
        }

        let new_compressed = compress_all(&new_kernels, clustered);
        let fresh_v3 = write_model_container_v3(&spec, &new_compressed).unwrap();

        let (patch, stats) = diff_containers(&base, &fresh_v3).unwrap();
        prop_assert_eq!(
            stats.same + stats.edits + stats.full,
            new_compressed.len(),
            "every kernel must be accounted for"
        );
        let patched = apply_patch(&base, &patch).unwrap();
        prop_assert_eq!(
            patched.as_ref(),
            fresh_v3.as_ref(),
            "patched container must be byte-identical to the fresh v3 write"
        );
        // The result is a verifiable v3 container.
        let parsed = read_model_container(&patched).unwrap();
        prop_assert_eq!(parsed.version, MODEL_VERSION_V3);
        prop_assert_eq!(parsed.spec.as_ref(), Some(&spec));
    }
}
