//! Simulator sanity invariants: the timing model must respond to its
//! parameters in physically sensible directions, and deterministically.

use bitnn::model::{LayerWorkload, OpCategory, ReActNet};
use simcpu::config::CpuConfig;
use simcpu::run::{run_model, run_workload, Mode};

fn conv_layer(in_ch: usize, oh: usize) -> LayerWorkload {
    LayerWorkload {
        name: "inv.conv3x3".into(),
        category: OpCategory::Conv3x3,
        in_ch,
        out_ch: in_ch,
        kh: 3,
        kw: 3,
        oh,
        ow: oh,
        precision_bits: 1,
    }
}

#[test]
fn deterministic_across_runs() {
    let cfg = CpuConfig::default();
    let wl = conv_layer(128, 6);
    for mode in [Mode::Baseline, Mode::SoftwareDecode, Mode::HardwareDecode] {
        let a = run_workload(&cfg, &wl, mode, 1.3);
        let b = run_workload(&cfg, &wl, mode, 1.3);
        assert_eq!(a.cycles, b.cycles, "{mode:?} must be deterministic");
        assert_eq!(a.mem, b.mem);
    }
}

#[test]
fn slower_dram_never_speeds_things_up() {
    let wl = conv_layer(256, 6);
    let mut prev = 0u64;
    for latency in [60u64, 120, 240] {
        let mut cfg = CpuConfig::default();
        cfg.dram.latency = latency;
        let st = run_workload(&cfg, &wl, Mode::Baseline, 1.0);
        assert!(
            st.cycles >= prev,
            "latency {latency}: {} < previous {prev}",
            st.cycles
        );
        prev = st.cycles;
    }
}

#[test]
fn less_bandwidth_never_speeds_things_up() {
    let wl = conv_layer(256, 6);
    let mut prev = u64::MAX;
    for bw in [1.0f64, 4.0, 16.0] {
        let mut cfg = CpuConfig::default();
        cfg.dram.bytes_per_cycle = bw;
        let st = run_workload(&cfg, &wl, Mode::Baseline, 1.0);
        assert!(
            st.cycles <= prev,
            "bw {bw}: {} > previous {prev}",
            st.cycles
        );
        prev = st.cycles;
    }
}

#[test]
fn better_compression_never_hurts_hardware_mode() {
    let wl = conv_layer(512, 4);
    let cfg = CpuConfig::default();
    let mut prev = u64::MAX;
    for ratio in [1.0f64, 1.2, 1.4, 1.8] {
        let st = run_workload(&cfg, &wl, Mode::HardwareDecode, ratio);
        assert!(
            st.cycles <= prev,
            "ratio {ratio}: {} > previous {prev}",
            st.cycles
        );
        prev = st.cycles;
    }
}

#[test]
fn faster_decoder_never_hurts() {
    let wl = conv_layer(512, 4);
    let mut prev = u64::MAX;
    for rate in [0.5f64, 1.0, 2.0, 4.0] {
        let mut cfg = CpuConfig::default();
        cfg.decode_unit.decode_per_cycle = rate;
        let st = run_workload(&cfg, &wl, Mode::HardwareDecode, 1.33);
        assert!(st.cycles <= prev, "rate {rate}: {} > {prev}", st.cycles);
        prev = st.cycles;
    }
}

#[test]
fn higher_sw_decode_cost_is_monotone() {
    let wl = conv_layer(128, 6);
    let mut prev = 0u64;
    for cost in [5u64, 45, 200] {
        let mut cfg = CpuConfig::default();
        cfg.cost.sw_decode_cycles_per_seq = cost;
        let st = run_workload(&cfg, &wl, Mode::SoftwareDecode, 1.33);
        assert!(st.cycles >= prev, "cost {cost}: {} < {prev}", st.cycles);
        prev = st.cycles;
    }
}

#[test]
fn category_cycles_partition_total() {
    let cfg = CpuConfig::default();
    let model = ReActNet::tiny(9);
    let run = run_model(&cfg, &model.workloads(), Mode::Baseline, &[1.0]);
    let sum: u64 = OpCategory::ALL
        .iter()
        .map(|&c| run.category_cycles(c))
        .sum();
    assert_eq!(sum, run.total_cycles);
}

#[test]
fn wider_issue_never_hurts() {
    let wl = conv_layer(128, 6);
    let mut prev = u64::MAX;
    for width in [1u64, 2, 4] {
        let mut cfg = CpuConfig::default();
        cfg.cost.issue_width = width;
        let st = run_workload(&cfg, &wl, Mode::Baseline, 1.0);
        assert!(st.cycles <= prev, "width {width}: {} > {prev}", st.cycles);
        prev = st.cycles;
    }
}

#[test]
fn bigger_layers_take_longer() {
    let cfg = CpuConfig::default();
    let small = run_workload(&cfg, &conv_layer(64, 4), Mode::Baseline, 1.0);
    let big = run_workload(&cfg, &conv_layer(128, 8), Mode::Baseline, 1.0);
    assert!(
        big.cycles > small.cycles * 4,
        "{} vs {}",
        big.cycles,
        small.cycles
    );
}

#[test]
fn all_modes_agree_on_compute_volume() {
    // The three modes execute the same math; only weight delivery
    // differs. Hardware mode replaces each weight load with exactly one
    // `ldps` and adds one `lddu` per pixel tile — so its op count is the
    // baseline's plus the tile count, no more.
    let cfg = CpuConfig::default();
    let wl = conv_layer(128, 6);
    let base = run_workload(&cfg, &wl, Mode::Baseline, 1.0);
    let hw = run_workload(&cfg, &wl, Mode::HardwareDecode, 1.33);
    let tiles = (wl.oh as u64 * wl.ow as u64).div_ceil(cfg.pixel_tile as u64);
    assert_eq!(hw.exec.ops, base.exec.ops + tiles);
}
