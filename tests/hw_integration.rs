//! Compression-to-simulator integration: the decoder configuration that
//! `kc-core` derives from a real compressed kernel must drive `simcpu`'s
//! decoding unit consistently.

use bnnkc::prelude::*;
use simcpu::decode_unit::{DecodeUnit, WORDS_PER_GROUP};
use simcpu::mem::Hierarchy;
use simcpu::trace::stream_bytes;

fn compressed_block(channels: usize) -> (CompressedKernel, BitTensor) {
    use rand::SeedableRng;
    let mut rng = rand::rngs::StdRng::seed_from_u64(13);
    let kernel = SeqDistribution::for_block(6, 0).sample_kernel(channels, channels, &mut rng);
    let ck = KernelCodec::paper_clustered()
        .compress(&kernel)
        .expect("compress");
    (ck, kernel)
}

#[test]
fn decoder_config_drives_the_unit_end_to_end() {
    let (ck, _) = compressed_block(128);
    let cfg = ck.decoder_config(0x4000_0000);
    let cpu = CpuConfig::default();
    let mut unit = DecodeUnit::new(cpu.decode_unit);
    let mut mem = Hierarchy::new(&cpu);

    // Arm the unit exactly from the Table III structure.
    let lanes = (128usize).div_ceil(64) as u64;
    let num_groups = ck.filters() as u64 * lanes;
    // No dedup information from the config alone: worst case, every
    // sequence is unique and the table never hits.
    unit.lddu(
        0,
        cfg.stream_ptr,
        cfg.stream_len_bytes,
        cfg.num_sequences,
        cfg.num_sequences,
        num_groups,
    );
    // Drain every packed word the stream yields.
    let mut cycle = 0;
    for _ in 0..num_groups * WORDS_PER_GROUP {
        cycle = unit.ldps(cycle, &mut mem);
    }
    let stats = unit.stats();
    assert_eq!(stats.words_served, num_groups * WORDS_PER_GROUP);
    // The unit fetched at least the whole stream, in input-buffer chunks.
    assert!(stats.stream_bytes >= cfg.stream_len_bytes);
    assert_eq!(
        stats.stream_bytes % cpu.decode_unit.input_buffer_bytes as u64,
        0
    );
}

#[test]
fn estimated_stream_size_matches_real_compression() {
    // The simulator sizes streams analytically from the compression
    // ratio; the analytic size must track the real encoder's output.
    for channels in [64usize, 128, 256] {
        let (ck, _) = compressed_block(channels);
        let analytic = stream_bytes(ck.num_sequences() as u64, ck.ratio());
        let real = ck.stream().len() as u64;
        let rel = (analytic as f64 - real as f64).abs() / real as f64;
        assert!(
            rel < 0.01,
            "{channels} ch: analytic {analytic} vs real {real}"
        );
    }
}

#[test]
fn simulated_speedup_uses_measured_ratio() {
    // End-to-end: compress a real kernel, feed its measured ratio to the
    // simulator, and confirm the weight-bound layer accelerates.
    let (ck, _) = compressed_block(512);
    let layer = bitnn::model::LayerWorkload {
        name: "hw.conv3x3".into(),
        category: OpCategory::Conv3x3,
        in_ch: 512,
        out_ch: 512,
        kh: 3,
        kw: 3,
        oh: 4,
        ow: 4,
        precision_bits: 1,
    };
    let cpu = CpuConfig::default();
    let base = run_workload(&cpu, &layer, Mode::Baseline, 1.0);
    let hw = run_workload(&cpu, &layer, Mode::HardwareDecode, ck.ratio());
    assert!(hw.cycles < base.cycles);
    // Weight traffic shrinks at least ~20% (compression + stream reuse).
    assert!((hw.mem.dram_bytes as f64) < base.mem.dram_bytes as f64 * 0.8);
}

#[test]
fn table_budget_holds_for_every_full_size_block() {
    // The hardware's 1 KB uncompressed table (512 entries) must fit every
    // block's codebook even at full channel counts.
    for block in 1..=13 {
        use rand::SeedableRng;
        let c = bench::BLOCK_CHANNELS[block - 1];
        let c = c.min(256); // statistics saturate well below full width
        let mut rng = rand::rngs::StdRng::seed_from_u64(block as u64);
        let kernel = SeqDistribution::for_block(block, 0).sample_kernel(c, c, &mut rng);
        let ck = KernelCodec::paper_clustered()
            .compress(&kernel)
            .expect("compress");
        let cfg = ck.decoder_config(0);
        assert!(
            cfg.table_entries() <= 512,
            "block {block}: {} entries exceed the 1 KB table",
            cfg.table_entries()
        );
    }
}
