//! Steady-state allocation gate: a warmed `forward_batch_into` performs
//! ZERO heap allocations — every intermediate activation lives in the
//! plan's liveness-assigned arena, the quantized ends stage through
//! scratch buffers, and the logits land in the caller's reused output
//! tensors.
//!
//! Asserted with a counting global allocator, so this file holds exactly
//! one test: a sibling test running concurrently would pollute the count.

use bitnn::graph::BatchScratch;
use bnnkc::prelude::*;
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicUsize, Ordering};

/// System allocator wrapper that counts every allocation call.
struct CountingAlloc;

static ALLOCS: AtomicUsize = AtomicUsize::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc_zeroed(layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
}

#[global_allocator]
static ALLOCATOR: CountingAlloc = CountingAlloc;

#[test]
fn steady_state_forward_batch_performs_zero_allocations() {
    let model = ReActNet::tiny(7);
    let inputs = synthetic_batch(4, 3, 32, 11);
    let expect: Vec<Tensor> = inputs.iter().map(|x| model.forward_scalar(x)).collect();
    let engine = Engine::single_threaded();
    let mut scratch = BatchScratch::default();
    let mut outs = Vec::new();

    // Warm-up: size the arena, the lowering/quantization scratches, and
    // the output tensors (two rounds so the output/arena buffer swap
    // settles too).
    for _ in 0..2 {
        model.forward_batch_into(&inputs, &engine, &mut scratch, &mut outs);
    }

    let before = ALLOCS.load(Ordering::SeqCst);
    for _ in 0..3 {
        model.forward_batch_into(&inputs, &engine, &mut scratch, &mut outs);
    }
    let allocated = ALLOCS.load(Ordering::SeqCst) - before;
    assert_eq!(
        allocated, 0,
        "warmed forward_batch_into allocated {allocated} times"
    );

    // And it still computes the right thing.
    for (o, e) in outs.iter().zip(&expect) {
        assert_eq!(o.data(), e.data());
    }

    // The graph-level path shares the property: repeat single forwards
    // through one Scratch allocate nothing either.
    let graph = model.graph();
    let mut s = bitnn::Scratch::default();
    let mut out = Tensor::default();
    for _ in 0..2 {
        graph
            .forward_into(&inputs[0], &engine, &mut s, &mut out)
            .unwrap();
    }
    let before = ALLOCS.load(Ordering::SeqCst);
    for _ in 0..3 {
        graph
            .forward_into(&inputs[0], &engine, &mut s, &mut out)
            .unwrap();
    }
    let allocated = ALLOCS.load(Ordering::SeqCst) - before;
    assert_eq!(
        allocated, 0,
        "warmed forward_into allocated {allocated} times"
    );
    assert_eq!(out.data(), expect[0].data());

    // Deployment-path representation gates (same allocator, same test —
    // a sibling test would pollute the count): a packed-only layer must
    // never derive the flat [K, C, 3, 3] tensor, a bank-deployed layer
    // must derive neither the flat tensor nor dense lane words, and both
    // warmed forwards stay allocation-free.
    use bitnn::bank::SequenceBank;
    use bitnn::engine::ConvScratch;
    use bitnn::exec::DedupMode;
    use bitnn::layers::BinConv2d;
    use bitnn::ops::conv::Conv2dParams;
    use bitnn::pack::PackedActivations;
    use bitnn::weightgen::random_kernel;

    let params = Conv2dParams { stride: 1, pad: 1 };
    let kernel = random_kernel(&[9, 70, 3, 3], 0xA110C);
    let packed_kernel = PackedKernel::pack(&kernel).unwrap();
    let bits = random_kernel(&[2, 70, 8, 8], 0xB17);
    let oracle = {
        let acts = PackedActivations::pack(&bits).unwrap();
        BinConv2d::new(kernel.clone(), params).forward_packed(&acts)
    };

    let deployments = [
        (
            BinConv2d::from_packed(packed_kernel.clone(), params),
            DedupMode::Off,
            "packed-only",
        ),
        (
            BinConv2d::from_bank(SequenceBank::from_packed(&packed_kernel).unwrap(), params),
            DedupMode::On,
            "bank",
        ),
    ];
    for (conv, dedup, what) in deployments {
        let engine = Engine::new(ExecPolicy {
            dedup,
            ..ExecPolicy::single_threaded()
        });
        let mut packed_acts = PackedActivations::default();
        let mut conv_scratch = ConvScratch::default();
        let mut y = Tensor::default();
        for _ in 0..2 {
            conv.forward_binarized_with(
                &bits,
                &mut packed_acts,
                &engine,
                &mut conv_scratch,
                &mut y,
            );
        }
        let before = ALLOCS.load(Ordering::SeqCst);
        for _ in 0..3 {
            conv.forward_binarized_with(
                &bits,
                &mut packed_acts,
                &engine,
                &mut conv_scratch,
                &mut y,
            );
        }
        let allocated = ALLOCS.load(Ordering::SeqCst) - before;
        assert_eq!(
            allocated, 0,
            "warmed {what} forward allocated {allocated} times"
        );
        assert_eq!(y.data(), oracle.data(), "{what} forward diverged");
        assert!(
            !conv.has_dense_weights(),
            "{what} deployment must never derive the flat weight tensor"
        );
        if what == "bank" {
            assert!(
                !conv.has_packed(),
                "bank deployment on the memoized path must never build dense lane words"
            );
        }
    }

    // Streaming-lowering gate (same allocator, same test): with
    // `ConvMode::Stream` pinned on the perfsuite-gated 28×28/c64/k64
    // geometry, a warmed streaming forward adds zero heap allocations —
    // the shifted-window walker derives every window from the resident
    // packed rows, with no im2col buffer to size or grow.
    {
        use bitnn::exec::ConvMode;
        let stream_kernel = PackedKernel::pack(&random_kernel(&[64, 64, 3, 3], 0x57E3A)).unwrap();
        let stream_acts = PackedActivations::pack(&random_kernel(&[1, 64, 28, 28], 0xAC7)).unwrap();
        let conv = BinConv2d::from_packed(stream_kernel, params);
        let stream_engine = Engine::new(ExecPolicy {
            conv: ConvMode::Stream,
            ..ExecPolicy::single_threaded()
        });
        let mut conv_scratch = ConvScratch::default();
        let mut y = Tensor::default();
        for _ in 0..2 {
            conv.forward_packed_with(&stream_acts, &stream_engine, &mut conv_scratch, &mut y);
        }
        let before = ALLOCS.load(Ordering::SeqCst);
        for _ in 0..3 {
            conv.forward_packed_with(&stream_acts, &stream_engine, &mut conv_scratch, &mut y);
        }
        let allocated = ALLOCS.load(Ordering::SeqCst) - before;
        assert_eq!(
            allocated, 0,
            "warmed streaming forward allocated {allocated} times"
        );
        // And it agrees with the im2col lowering on the same operands.
        let im2col_engine = Engine::new(ExecPolicy {
            conv: ConvMode::Im2col,
            ..ExecPolicy::single_threaded()
        });
        let mut e = Tensor::default();
        conv.forward_packed_with(&stream_acts, &im2col_engine, &mut conv_scratch, &mut e);
        assert_eq!(y.data(), e.data(), "stream vs im2col diverged");
    }

    // Serving-path gate (same allocator, same test): a warmed
    // `Server::infer_blocking` round trip — submit, coalesce, batch
    // forward, respond — performs zero heap allocations. The request
    // cell, queue storage, worker batch buffers, and batch scratch are
    // all reused; only the client-side submit path runs on this thread,
    // the rest is proven by the worker thread making progress without
    // bumping the shared counter.
    let container = {
        let codec = KernelCodec::paper();
        let spec = build_spec(Arch::VggSmall, 0.0625, 32).unwrap();
        let kernels: Vec<CompressedKernel> = sample_conv3_kernels(&spec, 7)
            .unwrap()
            .iter()
            .map(|k| codec.compress(k).unwrap())
            .collect();
        write_model_container_v2(&spec, &kernels).unwrap().to_vec()
    };
    let server = Server::new(ServeConfig {
        policy: ExecPolicy::single_threaded(),
        image: 32,
        ..Default::default()
    });
    server.register_bytes("m", &container).unwrap();
    let x = synthetic_batch(1, 3, 32, 13).remove(0);
    let mut slot = InferSlot::new();
    let mut served = Tensor::default();
    for _ in 0..4 {
        server
            .infer_blocking("m", &mut slot, &x, &mut served)
            .unwrap();
    }
    let warmed: Vec<f32> = served.data().to_vec();
    let before = ALLOCS.load(Ordering::SeqCst);
    for _ in 0..6 {
        server
            .infer_blocking("m", &mut slot, &x, &mut served)
            .unwrap();
    }
    let allocated = ALLOCS.load(Ordering::SeqCst) - before;
    assert_eq!(
        allocated, 0,
        "warmed serve path allocated {allocated} times per 6 requests"
    );
    assert_eq!(
        served.data(),
        &warmed[..],
        "serve path diverged after warmup"
    );
    server.shutdown();
}
