//! Steady-state allocation gate: a warmed `forward_batch_into` performs
//! ZERO heap allocations — every intermediate activation lives in the
//! plan's liveness-assigned arena, the quantized ends stage through
//! scratch buffers, and the logits land in the caller's reused output
//! tensors.
//!
//! Asserted with a counting global allocator, so this file holds exactly
//! one test: a sibling test running concurrently would pollute the count.

use bitnn::graph::BatchScratch;
use bnnkc::prelude::*;
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicUsize, Ordering};

/// System allocator wrapper that counts every allocation call.
struct CountingAlloc;

static ALLOCS: AtomicUsize = AtomicUsize::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc_zeroed(layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
}

#[global_allocator]
static ALLOCATOR: CountingAlloc = CountingAlloc;

#[test]
fn steady_state_forward_batch_performs_zero_allocations() {
    let model = ReActNet::tiny(7);
    let inputs = synthetic_batch(4, 3, 32, 11);
    let expect: Vec<Tensor> = inputs.iter().map(|x| model.forward_scalar(x)).collect();
    let engine = Engine::single_threaded();
    let mut scratch = BatchScratch::default();
    let mut outs = Vec::new();

    // Warm-up: size the arena, the lowering/quantization scratches, and
    // the output tensors (two rounds so the output/arena buffer swap
    // settles too).
    for _ in 0..2 {
        model.forward_batch_into(&inputs, &engine, &mut scratch, &mut outs);
    }

    let before = ALLOCS.load(Ordering::SeqCst);
    for _ in 0..3 {
        model.forward_batch_into(&inputs, &engine, &mut scratch, &mut outs);
    }
    let allocated = ALLOCS.load(Ordering::SeqCst) - before;
    assert_eq!(
        allocated, 0,
        "warmed forward_batch_into allocated {allocated} times"
    );

    // And it still computes the right thing.
    for (o, e) in outs.iter().zip(&expect) {
        assert_eq!(o.data(), e.data());
    }

    // The graph-level path shares the property: repeat single forwards
    // through one Scratch allocate nothing either.
    let graph = model.graph();
    let mut s = bitnn::Scratch::default();
    let mut out = Tensor::default();
    for _ in 0..2 {
        graph
            .forward_into(&inputs[0], &engine, &mut s, &mut out)
            .unwrap();
    }
    let before = ALLOCS.load(Ordering::SeqCst);
    for _ in 0..3 {
        graph
            .forward_into(&inputs[0], &engine, &mut s, &mut out)
            .unwrap();
    }
    let allocated = ALLOCS.load(Ordering::SeqCst) - before;
    assert_eq!(
        allocated, 0,
        "warmed forward_into allocated {allocated} times"
    );
    assert_eq!(out.data(), expect[0].data());
}
