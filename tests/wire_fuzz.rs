//! Fault-injection proof for the serving wire protocol: **every**
//! single-byte mutation of every frame kind is rejected with a typed
//! [`WireError`] — never a panic, never a silent misparse, and (because
//! every frame carries a checksum over all preceding bytes) never even a
//! "harmless" accept. Truncations, frame concatenation, extension,
//! request/response kind transplants, and adversarial length fields are
//! all covered too.
//!
//! This extends to the serving socket the same guarantee the container
//! tamper suite (`container_tamper.rs`) proves for shipped model files.

mod common;

use common::corrupt::{assert_all_truncations_detected, flip, sweep_single_byte};
use kc_core::wire::{
    decode_request, decode_response, encode_request, encode_response, read_frame, ErrorCode,
    FrameError, InferRequest, ModelInfo, Request, Response, StatsReport, WireError, HEADER_LEN,
    MAX_PAYLOAD, TRAILER_LEN,
};

const MASKS: [u8; 3] = [0x01, 0x80, 0xFF];

fn sample_requests() -> Vec<Request> {
    vec![
        Request::Ping,
        Request::Infer(InferRequest {
            model: "default".into(),
            seq: 42,
            shape: [3, 4, 4],
            data: (0..48).map(|i| i as f32 * 0.25 - 3.0).collect(),
        }),
        Request::Stats,
        Request::Swap {
            model: "default".into(),
            path: "/tmp/new.bkcm".into(),
        },
        Request::Shutdown,
    ]
}

fn sample_responses() -> Vec<Response> {
    vec![
        Response::Pong,
        Response::Logits {
            seq: 42,
            version: 2,
            data: vec![0.5, -1.25, 3.75, f32::MIN_POSITIVE],
        },
        Response::Err {
            code: ErrorCode::QueueFull,
            message: "queue full".into(),
        },
        Response::Stats(StatsReport {
            served: 100,
            batches: 30,
            rejected: 5,
            swaps: 1,
            models: vec![ModelInfo {
                name: "default".into(),
                version: 2,
                channels: 3,
                image: 32,
                classes: 10,
                queued: 0,
                queue_depth: 256,
                max_batch: 8,
            }],
            batch_hist: vec![(1, 10), (4, 20)],
        }),
        Response::Swapped { version: 2 },
        Response::Closing,
    ]
}

fn encoded_request(req: &Request) -> Vec<u8> {
    let mut buf = Vec::new();
    encode_request(req, &mut buf);
    buf
}

fn encoded_response(resp: &Response) -> Vec<u8> {
    let mut buf = Vec::new();
    encode_response(resp, &mut buf);
    buf
}

/// Every single-byte mutation of every request frame is *detected* — the
/// checksum covers every byte, so not even a harmless accept is allowed.
#[test]
fn request_frames_reject_every_single_byte_mutation() {
    let mut mutations = 0;
    for req in sample_requests() {
        let clean = encoded_request(&req);
        let report = sweep_single_byte(
            &clean,
            &req,
            decode_request,
            &MASKS,
            true, // forbid silent
            true, // forbid harmless: the checksum covers every byte
        );
        assert_eq!(report.detected, report.mutations);
        mutations += report.mutations;
    }
    assert!(mutations > 500, "sweep too small to be meaningful");
}

#[test]
fn response_frames_reject_every_single_byte_mutation() {
    for resp in sample_responses() {
        let clean = encoded_response(&resp);
        let report = sweep_single_byte(&clean, &resp, decode_response, &MASKS, true, true);
        assert_eq!(report.detected, report.mutations);
    }
}

/// Every strict prefix of every frame is rejected, on both the buffer
/// decoder and the streaming reader.
#[test]
fn truncations_are_always_detected() {
    for req in sample_requests() {
        let clean = encoded_request(&req);
        assert_all_truncations_detected(&clean, decode_request);
        for cut in 1..clean.len() {
            let mut cursor = std::io::Cursor::new(&clean[..cut]);
            let mut buf = Vec::new();
            assert!(
                read_frame(&mut cursor, &mut buf).is_err(),
                "stream truncation to {cut} bytes was accepted"
            );
        }
    }
    for resp in sample_responses() {
        let clean = encoded_response(&resp);
        assert_all_truncations_detected(&clean, decode_response);
    }
}

/// Appending anything to a valid frame (including a whole second valid
/// frame) must fail the buffer decoder: a frame is exactly one message.
#[test]
fn extended_and_concatenated_frames_are_rejected() {
    let ping = encoded_request(&Request::Ping);
    for extra in [&[0u8][..], &[0xFF][..], &ping[..]] {
        let mut extended = ping.clone();
        extended.extend_from_slice(extra);
        assert!(matches!(
            decode_request(&extended),
            Err(WireError::Malformed(_) | WireError::Truncated { .. })
        ));
    }
}

/// A response frame transplanted where a request is expected (and vice
/// versa) fails typed: the kind spaces are disjoint.
#[test]
fn kind_transplants_fail_typed() {
    for resp in sample_responses() {
        let frame = encoded_response(&resp);
        match decode_request(&frame) {
            Err(WireError::UnknownKind(k)) => assert!(k & 0x80 != 0),
            other => panic!("response-as-request must fail UnknownKind, got {other:?}"),
        }
    }
    for req in sample_requests() {
        let frame = encoded_request(&req);
        match decode_response(&frame) {
            Err(WireError::UnknownKind(k)) => assert!(k & 0x80 == 0),
            other => panic!("request-as-response must fail UnknownKind, got {other:?}"),
        }
    }
}

/// An adversarial length field can never cause a large allocation: the
/// cap is enforced before any buffer is sized, in both decoders.
#[test]
fn oversized_length_fields_are_rejected_before_allocation() {
    let mut frame = encoded_request(&Request::Ping);
    frame[6..10].copy_from_slice(&u32::MAX.to_le_bytes());
    assert!(matches!(
        decode_request(&frame),
        Err(WireError::Oversized { len, .. }) if len > MAX_PAYLOAD
    ));
    let mut cursor = std::io::Cursor::new(frame.as_slice());
    let mut buf = Vec::new();
    match read_frame(&mut cursor, &mut buf) {
        Err(FrameError::Wire(WireError::Oversized { .. })) => {}
        other => panic!("stream reader must reject oversized header, got {other:?}"),
    }
    assert!(
        buf.capacity() < HEADER_LEN + TRAILER_LEN + 64,
        "the length field must not have sized a buffer"
    );
}

/// An infer payload whose shape and data count disagree is rejected even
/// when the frame checksum is valid (payload validation is structural,
/// not just integrity).
#[test]
fn shape_count_mismatch_rejected_with_valid_checksum() {
    // Build a frame with inconsistent shape/count by re-encoding from a
    // hand-rolled payload: encode a valid frame, then patch the shape
    // and re-stamp the checksum.
    let req = Request::Infer(InferRequest {
        model: "m".into(),
        seq: 0,
        shape: [1, 2, 2],
        data: vec![0.0; 4],
    });
    let mut frame = encoded_request(&req);
    // Payload layout: str(name: 2+1) seq(8) shape(12) count(4) data.
    // shape[0] sits right after the name and seq.
    let shape0_at = HEADER_LEN + 2 + 1 + 8;
    frame[shape0_at..shape0_at + 4].copy_from_slice(&3u32.to_le_bytes());
    let body_len = frame.len() - TRAILER_LEN;
    let sum = kc_core::wire::checksum(&frame[..body_len]);
    frame[body_len..].copy_from_slice(&sum.to_le_bytes());
    match decode_request(&frame) {
        Err(WireError::Malformed(m)) => assert!(m.contains("shape")),
        other => panic!("shape/count mismatch must be Malformed, got {other:?}"),
    }
}

/// The daemon answers a malformed frame with a typed error response and
/// survives: fuzz the real TCP front end with garbage and verify the
/// next well-formed connection still works.
#[test]
fn daemon_survives_malformed_frames() {
    use bnnkc::prelude::*;
    use std::io::{Read, Write};

    // Minimal in-process daemon with one tiny model.
    let codec = KernelCodec::paper();
    let spec = build_spec(Arch::VggSmall, 0.0625, 32).unwrap();
    let kernels: Vec<CompressedKernel> = sample_conv3_kernels(&spec, 3)
        .unwrap()
        .iter()
        .map(|k| codec.compress(k).unwrap())
        .collect();
    let bytes = write_model_container_v2(&spec, &kernels).unwrap();

    let server = Server::new(ServeConfig {
        image: 32,
        ..Default::default()
    });
    server.register_bytes("m", &bytes).unwrap();
    let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    std::thread::scope(|scope| {
        scope.spawn(|| {
            let _ = serve_listener(&server, &listener);
        });

        // A valid ping frame, mutated at every header byte.
        let mut ping = Vec::new();
        kc_core::wire::encode_request(&Request::Ping, &mut ping);
        for i in 0..ping.len() {
            let garbage = flip(&ping, i, 0xFF);
            let mut s = std::net::TcpStream::connect(addr).unwrap();
            s.write_all(&garbage).unwrap();
            let _ = s.flush();
            // The daemon either answers with a typed error response or
            // just closes; it must never die. Read whatever comes back.
            let mut sink = Vec::new();
            let _ = s.set_read_timeout(Some(std::time::Duration::from_secs(5)));
            let _ = s.read_to_end(&mut sink);
        }
        // Raw garbage that is not even a header.
        for garbage in [
            &b"GET / HTTP/1.1\r\n\r\n"[..],
            &[0u8; 3][..],
            &[0xFF; 64][..],
        ] {
            let mut s = std::net::TcpStream::connect(addr).unwrap();
            s.write_all(garbage).unwrap();
            drop(s);
        }

        // The daemon is still alive and serving.
        let mut client = Client::connect(addr).unwrap();
        match client.call(&Request::Ping).unwrap() {
            Response::Pong => {}
            other => panic!("daemon no longer serving after fuzz: {other:?}"),
        }
        match client.call(&Request::Shutdown).unwrap() {
            Response::Closing => {}
            other => panic!("want Closing, got {other:?}"),
        }
    });
}
