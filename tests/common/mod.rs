//! Process-level helpers shared by the CLI integration suites.

#![allow(dead_code)] // each test binary uses the subset it needs

pub mod corrupt;

use std::path::PathBuf;
use std::process::{Command, Output};

/// Spawn the built `bnnkc` binary with `args` and collect its output.
pub fn bnnkc(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_bnnkc"))
        .args(args)
        .output()
        .expect("failed to spawn bnnkc")
}

/// A per-process temp path; `name` keeps concurrent suites distinct.
pub fn tmp_file(name: &str) -> PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("bnnkc-test-{}-{name}", std::process::id()));
    p
}

/// Deletes its path on drop so failed assertions don't leak files.
pub struct TempFile(pub PathBuf);

impl Drop for TempFile {
    fn drop(&mut self) {
        let _ = std::fs::remove_file(&self.0);
    }
}
