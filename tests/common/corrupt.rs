//! Fault-injection driver shared by the container robustness suites.
//!
//! The driver has two halves: *mutators* that damage a byte image in a
//! controlled way (bit flips, truncation, record duplication, record
//! transplants between files), and a *classifier* that runs a format's
//! reader over the damaged bytes and reports what happened:
//!
//! * [`Verdict::Detected`] — the reader returned an error (any typed
//!   error counts; the caller can assert on the variant separately);
//! * [`Verdict::Harmless`] — the reader succeeded and the decoded value
//!   is identical to the clean one (e.g. a flipped padding bit a format
//!   without digests does not cover);
//! * [`Verdict::Silent`] — the reader succeeded but decoded something
//!   *different*: the failure mode integrity-checked formats exist to
//!   eliminate.
//!
//! The tamper suites assert `Detected` for every single-byte mutation of
//! v3 containers and `.bkcp` patches, and `Detected | Harmless`-with-
//! consistency for the legacy formats.

#![allow(dead_code)] // each test binary uses the subset it needs

/// Outcome of feeding one damaged byte image to a format reader.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Verdict {
    /// The reader rejected the bytes with an error.
    Detected,
    /// The reader accepted the bytes and decoded the clean value.
    Harmless,
    /// The reader accepted the bytes and decoded something else.
    Silent,
}

/// Run `read` over `mutated` and classify against the clean decode.
pub fn classify<T, E, F>(clean_value: &T, read: F, mutated: &[u8]) -> Verdict
where
    T: PartialEq,
    F: Fn(&[u8]) -> Result<T, E>,
{
    match read(mutated) {
        Err(_) => Verdict::Detected,
        Ok(v) if &v == clean_value => Verdict::Harmless,
        Ok(_) => Verdict::Silent,
    }
}

/// XOR one byte.
pub fn flip(bytes: &[u8], i: usize, mask: u8) -> Vec<u8> {
    let mut out = bytes.to_vec();
    out[i] ^= mask;
    out
}

/// Cut the image to `len` bytes.
pub fn truncate(bytes: &[u8], len: usize) -> Vec<u8> {
    bytes[..len.min(bytes.len())].to_vec()
}

/// Insert a copy of `bytes[start..start + len]` immediately after itself
/// (a duplicated record, when the range covers one).
pub fn duplicate(bytes: &[u8], start: usize, len: usize) -> Vec<u8> {
    let mut out = Vec::with_capacity(bytes.len() + len);
    out.extend_from_slice(&bytes[..start + len]);
    out.extend_from_slice(&bytes[start..start + len]);
    out.extend_from_slice(&bytes[start + len..]);
    out
}

/// Replace `dst[at]` with `donor` (a record transplanted from another
/// file when both ranges cover records).
pub fn transplant(dst: &[u8], at: std::ops::Range<usize>, donor: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(dst.len() - at.len() + donor.len());
    out.extend_from_slice(&dst[..at.start]);
    out.extend_from_slice(donor);
    out.extend_from_slice(&dst[at.end..]);
    out
}

/// Locate `needle` inside `haystack` (used to find a record's byte range
/// in a container image from its canonical serialization).
pub fn find(haystack: &[u8], needle: &[u8]) -> Option<usize> {
    if needle.is_empty() || haystack.len() < needle.len() {
        return None;
    }
    haystack.windows(needle.len()).position(|w| w == needle)
}

/// Exhaustive single-byte mutation sweep: every byte position crossed
/// with `masks`, classified, with per-verdict counts returned. Panics
/// with the offending position if `forbidden` is hit.
pub struct SweepReport {
    pub mutations: usize,
    pub detected: usize,
    pub harmless: usize,
    pub silent: usize,
}

pub fn sweep_single_byte<T, E, F>(
    clean: &[u8],
    clean_value: &T,
    read: F,
    masks: &[u8],
    forbid_silent: bool,
    forbid_harmless: bool,
) -> SweepReport
where
    T: PartialEq,
    F: Fn(&[u8]) -> Result<T, E>,
{
    let mut report = SweepReport {
        mutations: 0,
        detected: 0,
        harmless: 0,
        silent: 0,
    };
    for i in 0..clean.len() {
        for &mask in masks {
            let mutated = flip(clean, i, mask);
            report.mutations += 1;
            match classify(clean_value, &read, &mutated) {
                Verdict::Detected => report.detected += 1,
                Verdict::Harmless => {
                    assert!(
                        !forbid_harmless,
                        "byte {i} mask {mask:#04x}: mutation accepted as harmless \
                         in a format that must detect every byte"
                    );
                    report.harmless += 1;
                }
                Verdict::Silent => {
                    assert!(
                        !forbid_silent,
                        "byte {i} mask {mask:#04x}: SILENT model change"
                    );
                    report.silent += 1;
                }
            }
        }
    }
    report
}

/// Every strictly-shorter prefix must be rejected.
pub fn assert_all_truncations_detected<T, E, F>(clean: &[u8], read: F)
where
    F: Fn(&[u8]) -> Result<T, E>,
{
    for cut in 0..clean.len() {
        assert!(
            read(&truncate(clean, cut)).is_err(),
            "truncation to {cut} bytes was accepted"
        );
    }
}
