//! The paper's quantitative claims, verified at reduced scale (the bench
//! binaries check them at full scale; these tests guard the shape in CI).

use bitnn::model::{LayerWorkload, OpCategory};
use bnnkc::prelude::*;
use rand::SeedableRng;

/// A fixed-size per-block kernel large enough for stable statistics
/// (128×128 = 16384 sequences) regardless of the block's real width.
fn stat_kernel(block: usize, seed: u64) -> BitTensor {
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed ^ block as u64);
    SeqDistribution::for_block(block, 0).sample_kernel(128, 128, &mut rng)
}

/// Table V shape: clustering beats plain encoding on every block, and
/// both land in plausible bands.
#[test]
fn table5_clustering_beats_encoding_every_block() {
    let encoding = KernelCodec::paper();
    let clustering = KernelCodec::paper_clustered();
    for block in 1..=13 {
        let kernel = stat_kernel(block, 3);
        let enc = encoding.compress(&kernel).expect("encoding").ratio();
        let clu = clustering.compress(&kernel).expect("clustering").ratio();
        assert!(
            clu > enc,
            "block {block}: clustering {clu} <= encoding {enc}"
        );
        assert!((1.05..1.45).contains(&enc), "block {block}: encoding {enc}");
        assert!(
            (1.20..1.55).contains(&clu),
            "block {block}: clustering {clu}"
        );
    }
}

/// Table II shape: the sampled coverage tracks the paper's target bands.
#[test]
fn table2_coverage_bands() {
    for block in 1..=13 {
        let kernel = stat_kernel(block, 4);
        let freq = FreqTable::from_kernel(&kernel).expect("kernel");
        let (t64, t256) = bench::PAPER_TABLE2[block - 1];
        let c64 = freq.top_k_coverage_pct(64);
        let c256 = freq.top_k_coverage_pct(256);
        assert!(
            (c64 - t64).abs() < 12.0,
            "block {block}: top64 {c64} vs paper {t64}"
        );
        assert!(
            (c256 - t256).abs() < 10.0,
            "block {block}: top256 {c256} vs paper {t256}"
        );
    }
}

/// Fig. 3 shape: sequences 0 and 511 dominate and the top-16 carry a
/// large share.
#[test]
fn fig3_extremes_dominate() {
    let kernel = stat_kernel(2, 5);
    let freq = FreqTable::from_kernel(&kernel).expect("kernel");
    let top2: Vec<u16> = freq.top_k(2).iter().map(|(s, _)| s.value()).collect();
    assert!(top2.contains(&0) && top2.contains(&511), "{top2:?}");
    let top16 = freq.top_k_coverage_pct(16);
    assert!((38.0..56.0).contains(&top16), "top16 = {top16}");
}

/// Sec. IV-B / Sec. VI: software decoding loses, the hardware unit wins,
/// on a weight-bound layer.
#[test]
fn speedup_ordering_on_weight_bound_layer() {
    let cpu = CpuConfig::default();
    let layer = LayerWorkload {
        name: "big.conv3x3".into(),
        category: OpCategory::Conv3x3,
        in_ch: 512,
        out_ch: 512,
        kh: 3,
        kw: 3,
        oh: 4,
        ow: 4,
        precision_bits: 1,
    };
    let ratio = 1.33;
    let base = run_workload(&cpu, &layer, Mode::Baseline, 1.0);
    let sw = run_workload(&cpu, &layer, Mode::SoftwareDecode, ratio);
    let hw = run_workload(&cpu, &layer, Mode::HardwareDecode, ratio);
    assert!(sw.cycles > base.cycles, "software decode must be slower");
    assert!(hw.cycles < base.cycles, "hardware decode must be faster");
    let hw_gain = base.cycles as f64 / hw.cycles as f64;
    assert!((1.1..2.5).contains(&hw_gain), "hw gain {hw_gain}");
}

/// Sec. VI: the hardware scheme's DRAM traffic drops by roughly the
/// compression ratio on streaming layers.
#[test]
fn hardware_traffic_tracks_compression_ratio() {
    let cpu = CpuConfig::default();
    let layer = LayerWorkload {
        name: "big.conv3x3".into(),
        category: OpCategory::Conv3x3,
        in_ch: 512,
        out_ch: 512,
        kh: 3,
        kw: 3,
        oh: 4,
        ow: 4,
        precision_bits: 1,
    };
    let ratio = 1.33;
    let base = run_workload(&cpu, &layer, Mode::Baseline, 1.0);
    let hw = run_workload(&cpu, &layer, Mode::HardwareDecode, ratio);
    let traffic_ratio = base.mem.dram_bytes as f64 / hw.mem.dram_bytes as f64;
    assert!(
        traffic_ratio > 1.1,
        "hardware must move less DRAM data: {traffic_ratio}"
    );
}

/// The paper's accuracy claim, as an agreement bound.
#[test]
fn clustering_preserves_predictions_mostly() {
    let original = ReActNet::tiny(31);
    let mut clustered = original.clone();
    for i in 0..clustered.num_blocks() {
        let kernel = clustered.conv3_weights(i).clone();
        let freq = FreqTable::from_kernel(&kernel).expect("kernel");
        let plan = ClusterPlan::build(&freq, &ClusterConfig::default());
        clustered.set_conv3_weights(i, plan.apply_to_kernel(&kernel).expect("rewrite"));
    }
    let batch = synthetic_batch(8, 3, 32, 32);
    let agg = compare_models(&original, &clustered, &batch);
    assert!(agg.top1 >= 0.5, "agreement collapsed: {}", agg.top1);
}

/// The simplified tree never beats full Huffman, and full Huffman never
/// beats the entropy bound — on every block.
#[test]
fn coding_hierarchy_holds_on_all_blocks() {
    for block in 1..=13 {
        let kernel = stat_kernel(block, 6);
        let freq = FreqTable::from_kernel(&kernel).expect("kernel");
        let h = freq.entropy_bits();
        let full = FullHuffman::build(&freq).expect("non-empty");
        let simp = SimplifiedTree::build(&freq, TreeConfig::paper());
        assert!(
            full.avg_bits(&freq) + 1e-9 >= h,
            "block {block}: Huffman beat entropy"
        );
        assert!(
            simp.avg_bits(&freq) + 1e-9 >= full.avg_bits(&freq),
            "block {block}: simplified beat full Huffman"
        );
    }
}
