//! Smoke test for the `bnnkc` CLI: every subcommand must work end-to-end
//! from a fresh checkout, and `compress → verify` must round-trip both
//! with clustering (Hamming-1 tolerance) and without (bit-exact).

use std::path::PathBuf;
use std::process::{Command, Output};

fn bnnkc(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_bnnkc"))
        .args(args)
        .output()
        .expect("failed to spawn bnnkc")
}

fn tmp_file(name: &str) -> PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("bnnkc-smoke-{}-{name}", std::process::id()));
    p
}

struct TempFile(PathBuf);

impl Drop for TempFile {
    fn drop(&mut self) {
        let _ = std::fs::remove_file(&self.0);
    }
}

#[test]
fn compress_verify_inspect_roundtrip_clustered() {
    let out = TempFile(tmp_file("clustered.bkcm"));
    let path = out.0.to_str().unwrap();

    let c = bnnkc(&["compress", "--out", path, "--scale", "0.125"]);
    assert!(c.status.success(), "compress failed: {c:?}");
    let stdout = String::from_utf8_lossy(&c.stdout);
    assert!(
        stdout.contains("block 13"),
        "missing per-block report: {stdout}"
    );
    assert!(
        stdout.contains("aggregate kernel ratio"),
        "missing summary: {stdout}"
    );

    let v = bnnkc(&["verify", "--in", path, "--scale", "0.125"]);
    assert!(v.status.success(), "verify failed: {v:?}");
    assert!(String::from_utf8_lossy(&v.stdout).contains("all kernels verified"));

    let i = bnnkc(&["inspect", "--in", path]);
    assert!(i.status.success(), "inspect failed: {i:?}");
    let stdout = String::from_utf8_lossy(&i.stdout);
    assert!(
        stdout.contains("13 compressed kernels"),
        "bad inspect header: {stdout}"
    );
    assert!(
        stdout.contains("code lengths"),
        "missing code lengths: {stdout}"
    );
}

#[test]
fn compress_verify_roundtrip_bit_exact_without_clustering() {
    let out = TempFile(tmp_file("exact.bkcm"));
    let path = out.0.to_str().unwrap();

    let c = bnnkc(&[
        "compress",
        "--out",
        path,
        "--scale",
        "0.125",
        "--no-cluster",
    ]);
    assert!(c.status.success(), "compress failed: {c:?}");
    let v = bnnkc(&["verify", "--in", path, "--scale", "0.125", "--no-cluster"]);
    assert!(v.status.success(), "verify failed: {v:?}");
    assert!(String::from_utf8_lossy(&v.stdout).contains("all kernels verified"));
}

#[test]
fn verify_rejects_wrong_seed() {
    let out = TempFile(tmp_file("seeded.bkcm"));
    let path = out.0.to_str().unwrap();

    let c = bnnkc(&["compress", "--out", path, "--scale", "0.125", "--seed", "1"]);
    assert!(c.status.success(), "compress failed: {c:?}");
    // Clustered containers decode to Hamming-1 neighbours of the seed-1
    // kernels; kernels from a different seed are statistically far away.
    let v = bnnkc(&["verify", "--in", path, "--scale", "0.125", "--seed", "2"]);
    assert!(
        !v.status.success(),
        "verify must fail for a mismatched seed"
    );
}

#[test]
fn simulate_runs_on_defaults_and_small_images() {
    // Small image keeps the smoke test fast; defaults are covered by the
    // run_model path being identical modulo the loop trip counts.
    let s = bnnkc(&["simulate", "--image", "32"]);
    assert!(s.status.success(), "simulate failed: {s:?}");
    let stdout = String::from_utf8_lossy(&s.stdout);
    assert!(
        stdout.contains("baseline"),
        "missing baseline line: {stdout}"
    );
    assert!(
        stdout.contains("software"),
        "missing software line: {stdout}"
    );
    assert!(
        stdout.contains("hardware"),
        "missing hardware line: {stdout}"
    );
}

#[test]
fn bad_usage_fails_cleanly() {
    assert!(!bnnkc(&[]).status.success());
    assert!(!bnnkc(&["frobnicate"]).status.success());
    assert!(!bnnkc(&["compress"]).status.success(), "--out is required");
    assert!(!bnnkc(&["verify", "--in", "/nonexistent/path.bkcm"])
        .status
        .success());
}
