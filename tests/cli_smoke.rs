//! Smoke test for the `bnnkc` CLI: every subcommand must work end-to-end
//! from a fresh checkout, and `compress → verify` must round-trip both
//! with clustering (Hamming-1 tolerance) and without (bit-exact).

mod common;

use common::{bnnkc, tmp_file, TempFile};

#[test]
fn compress_verify_inspect_roundtrip_clustered() {
    let out = TempFile(tmp_file("clustered.bkcm"));
    let path = out.0.to_str().unwrap();

    let c = bnnkc(&["compress", "--out", path, "--scale", "0.125"]);
    assert!(c.status.success(), "compress failed: {c:?}");
    let stdout = String::from_utf8_lossy(&c.stdout);
    assert!(
        stdout.contains("conv 13"),
        "missing per-conv report: {stdout}"
    );
    assert!(
        stdout.contains("arch reactnet"),
        "missing arch tag: {stdout}"
    );
    assert!(
        stdout.contains("aggregate kernel ratio"),
        "missing summary: {stdout}"
    );

    let v = bnnkc(&["verify", "--in", path, "--scale", "0.125"]);
    assert!(v.status.success(), "verify failed: {v:?}");
    assert!(String::from_utf8_lossy(&v.stdout).contains("all kernels verified"));

    let i = bnnkc(&["inspect", "--in", path]);
    assert!(i.status.success(), "inspect failed: {i:?}");
    let stdout = String::from_utf8_lossy(&i.stdout);
    assert!(
        stdout.contains("13 compressed kernels"),
        "bad inspect header: {stdout}"
    );
    assert!(
        stdout.contains("arch reactnet"),
        "inspect must print the container's arch: {stdout}"
    );
    assert!(
        stdout.contains("code lengths"),
        "missing code lengths: {stdout}"
    );
}

#[test]
fn compress_verify_roundtrip_bit_exact_without_clustering() {
    let out = TempFile(tmp_file("exact.bkcm"));
    let path = out.0.to_str().unwrap();

    let c = bnnkc(&[
        "compress",
        "--out",
        path,
        "--scale",
        "0.125",
        "--no-cluster",
    ]);
    assert!(c.status.success(), "compress failed: {c:?}");
    let v = bnnkc(&["verify", "--in", path, "--scale", "0.125", "--no-cluster"]);
    assert!(v.status.success(), "verify failed: {v:?}");
    assert!(String::from_utf8_lossy(&v.stdout).contains("all kernels verified"));
}

#[test]
fn verify_rejects_wrong_seed() {
    let out = TempFile(tmp_file("seeded.bkcm"));
    let path = out.0.to_str().unwrap();

    let c = bnnkc(&["compress", "--out", path, "--scale", "0.125", "--seed", "1"]);
    assert!(c.status.success(), "compress failed: {c:?}");
    // Clustered containers decode to Hamming-1 neighbours of the seed-1
    // kernels; kernels from a different seed are statistically far away.
    let v = bnnkc(&["verify", "--in", path, "--scale", "0.125", "--seed", "2"]);
    assert!(
        !v.status.success(),
        "verify must fail for a mismatched seed"
    );
}

#[test]
fn simulate_runs_on_defaults_and_small_images() {
    // Small image keeps the smoke test fast; defaults are covered by the
    // run_model path being identical modulo the loop trip counts.
    let s = bnnkc(&["simulate", "--image", "32"]);
    assert!(s.status.success(), "simulate failed: {s:?}");
    let stdout = String::from_utf8_lossy(&s.stdout);
    assert!(
        stdout.contains("baseline"),
        "missing baseline line: {stdout}"
    );
    assert!(
        stdout.contains("software"),
        "missing software line: {stdout}"
    );
    assert!(
        stdout.contains("hardware"),
        "missing hardware line: {stdout}"
    );
}

#[test]
fn run_and_container_simulate_work_end_to_end() {
    let out = TempFile(tmp_file("run.bkcm"));
    let path = out.0.to_str().unwrap();
    let c = bnnkc(&["compress", "--out", path, "--scale", "0.125"]);
    assert!(c.status.success(), "compress failed: {c:?}");

    let r = bnnkc(&[
        "run", "--in", path, "--scale", "0.125", "--image", "32", "--batch", "2",
    ]);
    assert!(r.status.success(), "run failed: {r:?}");
    let stdout = String::from_utf8_lossy(&r.stdout);
    assert!(
        stdout.contains("streaming decode"),
        "run must use the streaming path by default: {stdout}"
    );
    assert!(
        stdout.contains("item 1: argmax"),
        "missing logits: {stdout}"
    );

    let s = bnnkc(&["simulate", "--in", path, "--image", "32"]);
    assert!(s.status.success(), "simulate --in failed: {s:?}");
    let stdout = String::from_utf8_lossy(&s.stdout);
    assert!(
        stdout.contains("decoder configurations"),
        "missing per-kernel table: {stdout}"
    );
    assert!(
        stdout.contains("hardware") && stdout.contains("energy"),
        "missing mode/energy report: {stdout}"
    );
    // A container-driven simulate rejects a ratio override.
    assert!(!bnnkc(&["simulate", "--in", path, "--ratio", "2.0"])
        .status
        .success());
}

#[test]
fn every_arch_compresses_and_inspects() {
    for arch in ["vggsmall", "resnetlite"] {
        let out = TempFile(tmp_file(&format!("smoke-{arch}.bkcm")));
        let path = out.0.to_str().unwrap();
        let c = bnnkc(&[
            "compress", "--out", path, "--arch", arch, "--scale", "0.0625",
        ]);
        assert!(c.status.success(), "{arch} compress failed: {c:?}");
        let i = bnnkc(&["inspect", "--in", path]);
        assert!(i.status.success(), "{arch} inspect failed: {i:?}");
        let stdout = String::from_utf8_lossy(&i.stdout);
        assert!(
            stdout.contains(&format!("arch {arch}")),
            "inspect must print {arch}: {stdout}"
        );
        // simulate in ratio mode also accepts --arch directly.
        let s = bnnkc(&[
            "simulate", "--arch", arch, "--scale", "0.0625", "--image", "16",
        ]);
        assert!(s.status.success(), "{arch} simulate failed: {s:?}");
    }
    // Unknown arch values are rejected.
    assert!(
        !bnnkc(&["compress", "--out", "/tmp/never.bkcm", "--arch", "lenet"])
            .status
            .success()
    );
}

#[test]
fn bad_usage_fails_cleanly() {
    assert!(!bnnkc(&[]).status.success());
    assert!(!bnnkc(&["frobnicate"]).status.success());
    assert!(!bnnkc(&["compress"]).status.success(), "--out is required");
    assert!(!bnnkc(&["verify", "--in", "/nonexistent/path.bkcm"])
        .status
        .success());
    assert!(!bnnkc(&["run", "--in", "/nonexistent/path.bkcm"])
        .status
        .success());
}

#[test]
fn unknown_and_malformed_flags_are_rejected() {
    // A typo must not run with the default silently applied.
    let r = bnnkc(&[
        "compress",
        "--seeed",
        "7",
        "--out",
        "/tmp/never-written.bkcm",
    ]);
    assert!(!r.status.success(), "typoed flag must be rejected");
    let stderr = String::from_utf8_lossy(&r.stderr);
    assert!(
        stderr.contains("--seeed"),
        "error must name the flag: {stderr}"
    );
    assert!(
        !std::path::Path::new("/tmp/never-written.bkcm").exists(),
        "rejected invocation must not write output"
    );

    for bad in [
        vec!["inspect", "--in", "x.bkcm", "--verbose"],
        vec!["verify", "--in", "x.bkcm", "--cluster"],
        vec!["simulate", "--imagee", "64"],
        vec!["run", "--in", "x.bkcm", "--batchsize", "2"],
        vec!["simulate", "--image"], // value flag missing its value
    ] {
        assert!(!bnnkc(&bad).status.success(), "{bad:?} must fail");
    }

    // Nonsense numeric values are errors, not silent defaults.
    assert!(!bnnkc(&["simulate", "--ratio", "-1"]).status.success());
    assert!(!bnnkc(&["simulate", "--ratio", "0"]).status.success());
    assert!(!bnnkc(&["simulate", "--image", "0"]).status.success());
    assert!(
        !bnnkc(&["compress", "--out", "/tmp/x.bkcm", "--scale", "-0.5"])
            .status
            .success()
    );
}

#[test]
fn features_reports_host_capabilities() {
    let f = bnnkc(&["features"]);
    assert!(f.status.success(), "features failed: {f:?}");
    let stdout = String::from_utf8_lossy(&f.stdout);
    assert!(stdout.contains("cpu features"), "missing header: {stdout}");
    assert!(
        stdout.contains("popcnt") && stdout.contains("avx2") && stdout.contains("avx512"),
        "missing feature lines: {stdout}"
    );
    assert!(stdout.contains("simd level:"), "missing level: {stdout}");
    assert!(
        stdout.contains("hardware threads:"),
        "missing parallelism: {stdout}"
    );
    assert!(stdout.contains("backend:"), "missing backend: {stdout}");
    assert!(
        stdout.contains("gemm microkernel selection"),
        "missing kernel table: {stdout}"
    );
    // One selection line per autotuned shape class.
    for class in ["narrow", "medium", "wide"] {
        assert!(stdout.contains(class), "missing {class} row: {stdout}");
    }
    // The conv autotuner's per-geometry lowering table, with the warmed
    // hot geometry resolved to one of the two candidate lowerings.
    assert!(
        stdout.contains("conv lowering selection"),
        "missing conv table: {stdout}"
    );
    assert!(
        stdout.contains("28x28 c64 -> k64 s1 p1: stream")
            || stdout.contains("28x28 c64 -> k64 s1 p1: im2col"),
        "missing warmed conv geometry row: {stdout}"
    );

    // The JSON form carries the same tables.
    let j = bnnkc(&["features", "--json"]);
    assert!(j.status.success(), "features --json failed: {j:?}");
    let json = String::from_utf8_lossy(&j.stdout);
    for key in ["\"gemm_autotuner\"", "\"conv_autotuner\"", "\"conv_env\""] {
        assert!(json.contains(key), "missing {key}: {json}");
    }
    assert!(
        json.contains("\"lowering\": \"stream\"") || json.contains("\"lowering\": \"im2col\""),
        "missing conv lowering entry: {json}"
    );
    // features takes no flags.
    assert!(!bnnkc(&["features", "--verbose"]).status.success());
}

#[test]
fn run_backend_selection_is_bit_exact_and_validated() {
    let out = TempFile(tmp_file("backend.bkcm"));
    let path = out.0.to_str().unwrap();
    let c = bnnkc(&["compress", "--out", path, "--scale", "0.125"]);
    assert!(c.status.success(), "compress failed: {c:?}");

    let base = ["run", "--in", path, "--scale", "0.125", "--image", "16"];
    let digest_of = |out: &std::process::Output| -> String {
        let stdout = String::from_utf8_lossy(&out.stdout).to_string();
        let line = stdout
            .lines()
            .find(|l| l.contains("digest"))
            .unwrap_or_else(|| panic!("no digest line: {stdout}"))
            .to_string();
        line.rsplit(' ').next().unwrap().to_string()
    };

    // Scalar and CPU backends must agree bit-for-bit on the logits.
    let cpu = bnnkc(&[&base[..], &["--backend", "cpu"]].concat());
    assert!(cpu.status.success(), "run --backend cpu failed: {cpu:?}");
    assert!(String::from_utf8_lossy(&cpu.stdout).contains("backend cpu"));
    let scalar = bnnkc(&[&base[..], &["--backend", "scalar"]].concat());
    assert!(
        scalar.status.success(),
        "run --backend scalar failed: {scalar:?}"
    );
    assert!(String::from_utf8_lossy(&scalar.stdout).contains("backend scalar"));
    assert_eq!(digest_of(&cpu), digest_of(&scalar));

    // verify accepts the flag and reports the resolved backend.
    let v = bnnkc(&[
        "verify",
        "--in",
        path,
        "--scale",
        "0.125",
        "--backend",
        "scalar",
    ]);
    assert!(v.status.success(), "verify --backend failed: {v:?}");
    assert!(String::from_utf8_lossy(&v.stdout).contains("execution backend: scalar"));

    // Unknown backends are rejected with the valid set named.
    let bad = bnnkc(&[&base[..], &["--backend", "gpu"]].concat());
    assert!(!bad.status.success(), "--backend gpu must be rejected");
    let stderr = String::from_utf8_lossy(&bad.stderr);
    assert!(
        stderr.contains("scalar"),
        "error must list valid backends: {stderr}"
    );
}

#[test]
fn run_threads_auto_resolves_and_zero_is_rejected() {
    let out = TempFile(tmp_file("threads.bkcm"));
    let path = out.0.to_str().unwrap();
    let c = bnnkc(&["compress", "--out", path, "--scale", "0.125"]);
    assert!(c.status.success(), "compress failed: {c:?}");

    // `auto` resolves via available_parallelism and runs normally.
    let base = ["run", "--in", path, "--scale", "0.125", "--image", "16"];
    let auto = bnnkc(&[&base[..], &["--threads", "auto"]].concat());
    assert!(auto.status.success(), "run --threads auto failed: {auto:?}");
    assert!(String::from_utf8_lossy(&auto.stdout).contains("threads"));

    // Zero is a clear error pointing at `auto`, not a silent 1-thread run.
    let zero = bnnkc(&[&base[..], &["--threads", "0"]].concat());
    assert!(!zero.status.success(), "--threads 0 must be rejected");
    let stderr = String::from_utf8_lossy(&zero.stderr);
    assert!(
        stderr.contains("--threads") && stderr.contains("auto"),
        "unhelpful --threads 0 error: {stderr}"
    );

    // Garbage thread counts are rejected too.
    let bad = bnnkc(&[&base[..], &["--threads", "lots"]].concat());
    assert!(!bad.status.success(), "--threads lots must be rejected");
}

/// The integrity lifecycle end-to-end: `compress --v3` → `verify
/// --integrity`, tamper detection with a nonzero exit, `diff` → `patch`
/// byte-identity, patched output runs, and `inspect` understands both
/// container versions and patches.
#[test]
fn integrity_lifecycle_diff_patch_verify() {
    let base = TempFile(tmp_file("lifecycle-base.bkcm"));
    let new = TempFile(tmp_file("lifecycle-new.bkcm"));
    let patch = TempFile(tmp_file("lifecycle.bkcp"));
    let rebuilt = TempFile(tmp_file("lifecycle-rebuilt.bkcm"));
    let (base_p, new_p) = (base.0.to_str().unwrap(), new.0.to_str().unwrap());
    let (patch_p, rebuilt_p) = (patch.0.to_str().unwrap(), rebuilt.0.to_str().unwrap());
    let flags = ["--arch", "vggsmall", "--scale", "0.0625", "--image", "32"];

    let c = bnnkc(&[&["compress", "--out", base_p][..], &flags].concat());
    assert!(c.status.success(), "compress base failed: {c:?}");
    let c = bnnkc(
        &[
            &["compress", "--out", new_p, "--seed", "2", "--v3"][..],
            &flags,
        ]
        .concat(),
    );
    assert!(c.status.success(), "compress --v3 failed: {c:?}");
    assert!(
        String::from_utf8_lossy(&c.stdout).contains("v3 container"),
        "--v3 must be reported: {c:?}"
    );

    // verify --integrity: v3 verifies stored digests, v2 reports none.
    let v = bnnkc(&["verify", "--in", new_p, "--integrity"]);
    assert!(v.status.success(), "verify --integrity failed: {v:?}");
    assert!(String::from_utf8_lossy(&v.stdout).contains("v3 integrity verified"));
    let v = bnnkc(&["verify", "--in", base_p, "--integrity"]);
    assert!(v.status.success(), "v2 verify --integrity failed: {v:?}");
    assert!(String::from_utf8_lossy(&v.stdout).contains("no stored digests"));

    // A flipped payload byte must fail with a typed integrity message
    // and a nonzero exit.
    let mut tampered = std::fs::read(&new.0).unwrap();
    let mid = tampered.len() / 2;
    tampered[mid] ^= 0x40;
    let bad = TempFile(tmp_file("lifecycle-tampered.bkcm"));
    std::fs::write(&bad.0, &tampered).unwrap();
    let v = bnnkc(&["verify", "--in", bad.0.to_str().unwrap(), "--integrity"]);
    assert!(!v.status.success(), "tampered v3 must fail verify");
    assert!(
        String::from_utf8_lossy(&v.stderr).contains("integrity violation"),
        "expected a typed integrity error: {v:?}"
    );

    // diff → patch reproduces the v3 target byte-for-byte.
    let d = bnnkc(&["diff", base_p, new_p, "-o", patch_p]);
    assert!(d.status.success(), "diff failed: {d:?}");
    let p = bnnkc(&["patch", base_p, patch_p, "-o", rebuilt_p]);
    assert!(p.status.success(), "patch failed: {p:?}");
    assert_eq!(
        std::fs::read(&new.0).unwrap(),
        std::fs::read(&rebuilt.0).unwrap(),
        "patched container must be byte-identical to the fresh v3 write"
    );

    // The patched container is a fully working model file.
    let r = bnnkc(&[
        "run", "--in", rebuilt_p, "--arch", "vggsmall", "--scale", "0.0625", "--image", "16",
    ]);
    assert!(r.status.success(), "run on patched container failed: {r:?}");

    // inspect prints version, sizes, digests — and reads patches too.
    let i = bnnkc(&["inspect", "--in", rebuilt_p]);
    assert!(i.status.success(), "inspect failed: {i:?}");
    let stdout = String::from_utf8_lossy(&i.stdout);
    assert!(stdout.contains("v3 container"), "missing version: {stdout}");
    assert!(stdout.contains("digest"), "missing digests: {stdout}");
    assert!(stdout.contains("record"), "missing record sizes: {stdout}");
    let i = bnnkc(&["inspect", "--in", patch_p]);
    assert!(i.status.success(), "inspect patch failed: {i:?}");
    let stdout = String::from_utf8_lossy(&i.stdout);
    assert!(stdout.contains("bkcp patch"), "bad patch header: {stdout}");
    assert!(
        stdout.contains("target container digest"),
        "missing target digest: {stdout}"
    );

    // Applying the patch to the wrong base is a typed error.
    let p = bnnkc(&["patch", new_p, patch_p, "-o", rebuilt_p]);
    assert!(!p.status.success(), "wrong base must be rejected");
    assert!(
        String::from_utf8_lossy(&p.stderr).contains("base container"),
        "unhelpful wrong-base error: {p:?}"
    );

    // Positional/flag misuse fails cleanly.
    let d = bnnkc(&["diff", base_p, "-o", patch_p]);
    assert!(!d.status.success(), "diff with one positional must fail");
    let d = bnnkc(&["diff", base_p, new_p]);
    assert!(!d.status.success(), "diff without -o must fail");
    let d = bnnkc(&["diff", base_p, new_p, "--wat", "-o", patch_p]);
    assert!(!d.status.success(), "unknown diff flag must fail");
}

/// `inspect` exits nonzero when the container parses but a record does
/// not describe a loadable model (v1 kernel list that is no ReActNet
/// schedule) — printing the warning instead of succeeding silently.
#[test]
fn inspect_exits_nonzero_on_parse_warnings() {
    use bnnkc::prelude::*;
    let spec = build_spec(Arch::ReActNet, 0.125, 32).unwrap();
    let codec = KernelCodec::paper();
    let kernels: Vec<CompressedKernel> = sample_conv3_kernels(&spec, 5)
        .unwrap()
        .iter()
        .take(3) // three kernels can never be the 13-block schedule
        .map(|k| codec.compress(k).unwrap())
        .collect();
    let file = TempFile(tmp_file("warnings.bkcm"));
    std::fs::write(&file.0, write_model_container(&kernels)).unwrap();
    let i = bnnkc(&["inspect", "--in", file.0.to_str().unwrap()]);
    assert!(!i.status.success(), "inspect must exit nonzero on warnings");
    let stderr = String::from_utf8_lossy(&i.stderr);
    assert!(
        stderr.contains("warning") && stderr.contains("ReActNet"),
        "missing warning report: {stderr}"
    );
    // --stats keeps the nonzero exit: statistics never mask warnings.
    let i = bnnkc(&["inspect", "--in", file.0.to_str().unwrap(), "--stats"]);
    assert!(
        !i.status.success(),
        "inspect --stats must exit nonzero on warnings too"
    );
}

/// `inspect --stats` reports per-record sequence-skew statistics: unique
/// counts, dedup ratio, Hamming-1 roots, and a top-k frequency histogram.
#[test]
fn inspect_stats_reports_sequence_skew() {
    let out = TempFile(tmp_file("stats.bkcm"));
    let path = out.0.to_str().unwrap();
    let c = bnnkc(&["compress", "--out", path, "--scale", "0.125"]);
    assert!(c.status.success(), "compress failed: {c:?}");

    let i = bnnkc(&["inspect", "--in", path, "--stats"]);
    assert!(i.status.success(), "inspect --stats failed: {i:?}");
    let stdout = String::from_utf8_lossy(&i.stdout);
    assert!(
        stdout.contains("unique of") && stdout.contains("dedup"),
        "missing dedup statistics: {stdout}"
    );
    assert!(
        stdout.contains("H1-cluster roots") && stdout.contains("top-5"),
        "missing histogram line: {stdout}"
    );
    // Skewed paper-like kernels always repeat sequences, so at least one
    // record must report a dedup ratio above 1.
    assert!(
        stdout.lines().filter(|l| l.contains("unique of")).count() == 13,
        "one stats line per kernel: {stdout}"
    );

    // Without --stats the lines are absent (the default output is the
    // stable machine-parsed surface).
    let i = bnnkc(&["inspect", "--in", path]);
    assert!(i.status.success());
    assert!(!String::from_utf8_lossy(&i.stdout).contains("unique of"));
}
