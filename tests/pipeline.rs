//! End-to-end pipeline integration: model construction → frequency
//! analysis → compression → decompression → deployment → inference.

use bnnkc::prelude::*;

#[test]
fn full_pipeline_encoding_is_lossless() {
    let model = ReActNet::tiny(21);
    let codec = KernelCodec::paper();
    for i in 0..model.num_blocks() {
        let kernel = model.conv3_weights(i);
        let compressed = codec.compress(kernel).expect("compress");
        let restored = compressed.decompress().expect("decompress");
        assert_eq!(&restored, kernel, "block {i} must round-trip bit-exactly");
    }
}

#[test]
fn deployed_clustered_model_still_infers() {
    let original = ReActNet::tiny(22);
    let codec = KernelCodec::paper_clustered();
    let mut deployed = original.clone();
    for i in 0..original.num_blocks() {
        let compressed = codec.compress(original.conv3_weights(i)).expect("compress");
        deployed.set_conv3_weights(i, compressed.decompress().expect("decompress"));
    }
    let batch = synthetic_batch(4, 3, 32, 23);
    let agreement = compare_models(&original, &deployed, &batch);
    // Logits move a little; predictions should mostly survive and the
    // network must stay finite and functional.
    assert!(agreement.top1 >= 0.5, "top-1 agreement {}", agreement.top1);
    assert!(agreement.mean_abs_dev.is_finite());
}

#[test]
fn clustering_only_moves_channels_by_one_bit() {
    let model = ReActNet::tiny(24);
    let codec = KernelCodec::paper_clustered();
    for i in 0..model.num_blocks() {
        let kernel = model.conv3_weights(i);
        let compressed = codec.compress(kernel).expect("compress");
        let restored = compressed.decompress().expect("decompress");
        let shape = kernel.shape();
        for f in 0..shape[0] {
            for ch in 0..shape[1] {
                let a = bitnn::weightgen::read_sequence(kernel, f, ch);
                let b = bitnn::weightgen::read_sequence(&restored, f, ch);
                assert!(
                    (a ^ b).count_ones() <= 1,
                    "block {i} channel ({f},{ch}) moved more than one bit"
                );
            }
        }
    }
}

#[test]
fn model_ratio_uses_real_streams() {
    let model = ReActNet::tiny(25);
    let codec = KernelCodec::paper_clustered();
    let mr = model_compression_ratio(&model, &codec).expect("model ratio");
    assert!(mr.ratio() > 1.0, "model must shrink: {}", mr.ratio());
    assert!(mr.mean_kernel_ratio > 1.0);
    // Conservation: savings come only from the 3x3 kernels.
    let breakdown = model.storage_breakdown();
    let conv3_bits = breakdown.bits(OpCategory::Conv3x3) as u64;
    let saved = mr.original_bits - mr.compressed_bits;
    assert!(saved < conv3_bits, "cannot save more than the 3x3 storage");
}

#[test]
fn freq_tables_merge_across_blocks() {
    let model = ReActNet::tiny(26);
    let mut merged = FreqTable::new();
    let mut total = 0u64;
    for i in 0..model.num_blocks() {
        let f = FreqTable::from_kernel(model.conv3_weights(i)).expect("kernel");
        total += f.total();
        merged.merge(&f);
    }
    assert_eq!(merged.total(), total);
    // The merged table is dominated by the same extremes.
    let top2: Vec<u16> = merged.top_k(2).iter().map(|(s, _)| s.value()).collect();
    assert!(top2.contains(&0) || top2.contains(&511), "top2 = {top2:?}");
}

#[test]
fn decoder_config_round_trips_through_tree() {
    let model = ReActNet::tiny(27);
    let codec = KernelCodec::paper();
    let compressed = codec.compress(model.conv3_weights(1)).expect("compress");
    let cfg = compressed.decoder_config(0x1234_5678);
    assert_eq!(cfg.stream_ptr, 0x1234_5678);
    assert_eq!(cfg.node_code_lengths, compressed.tree().length_table());
    assert!(cfg.table_entries() <= 512, "hardware table budget");
    assert_eq!(cfg.num_sequences as usize, compressed.num_sequences());
}
