//! Offline shim for `serde_derive`.
//!
//! The in-tree types only *declare* `#[derive(Serialize, Deserialize)]`;
//! nothing serializes them yet (no `serde_json` or other format crate is
//! present). These derives therefore expand to nothing — the annotations
//! stay source-compatible with upstream serde so a later PR can swap the
//! real crates in and gain working impls without touching the call sites.

use proc_macro::TokenStream;

/// No-op stand-in for `serde_derive::Serialize`.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op stand-in for `serde_derive::Deserialize`.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
