//! Offline shim for the `rand` crate (0.9-style API surface).
//!
//! This container builds without network access, so the workspace ships a
//! minimal, deterministic stand-in implementing exactly the surface the
//! codebase uses: [`rngs::StdRng`], [`SeedableRng::seed_from_u64`], and the
//! [`Rng`] trait's `random` / `random_range` methods. The generator is
//! xoshiro256++ seeded through SplitMix64 — not `rand`'s ChaCha12, so seeded
//! streams differ from upstream `rand`, but every in-tree use only relies on
//! determinism and statistical quality, not on a specific stream.

/// Low-level word source, mirroring `rand_core::RngCore` minimally.
pub trait RngCore {
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;
}

/// Types samplable from the "standard" distribution of [`Rng::random`].
pub trait Standard: Sized {
    /// Draw one value from `rng`.
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

/// Range arguments accepted by [`Rng::random_range`].
pub trait SampleRange<T> {
    /// Draw one value in the range from `rng`.
    fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

/// User-facing random-value methods, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Draw a value from the standard distribution: uniform bits for
    /// integers, `[0, 1)` for floats, a fair coin for `bool`.
    fn random<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Draw a value uniformly from `range`.
    fn random_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample(self)
    }
}

impl<T: RngCore + ?Sized> Rng for T {}

/// Seeding entry points, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Build a generator from a 64-bit seed.
    fn seed_from_u64(state: u64) -> Self;
}

/// Uniform `f64` in `[0, 1)` using the top 53 bits.
fn f64_from_bits(bits: u64) -> f64 {
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Uniform `f32` in `[0, 1)` using the top 24 bits.
fn f32_from_bits(bits: u64) -> f32 {
    (bits >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
}

impl Standard for f64 {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        f64_from_bits(rng.next_u64())
    }
}

impl Standard for f32 {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        f32_from_bits(rng.next_u64())
    }
}

impl Standard for bool {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() >> 63 == 1
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_range_float {
    ($($t:ty, $conv:ident);*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range");
                self.start + (self.end - self.start) * $conv(rng.next_u64())
            }
        }
    )*};
}
impl_range_float!(f32, f32_from_bits; f64, f64_from_bits);

macro_rules! impl_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                // Multiply-shift bounded sampling; the tiny modulo bias is
                // irrelevant for the in-tree uses (tests and weight synth).
                let r = (rng.next_u64() as u128 * span) >> 64;
                (self.start as i128 + r as i128) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range");
                let span = (end as i128 - start as i128) as u128 + 1;
                let r = (rng.next_u64() as u128 * span) >> 64;
                (start as i128 + r as i128) as $t
            }
        }
    )*};
}
impl_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256++ generator standing in for `rand`'s
    /// `StdRng`. Streams are stable across runs and platforms.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            let mut sm = state;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn float_ranges_are_half_open_and_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x: f64 = rng.random();
            assert!((0.0..1.0).contains(&x));
            let y = rng.random_range(-2.5f32..2.5);
            assert!((-2.5..2.5).contains(&y));
        }
    }

    #[test]
    fn int_ranges_hit_both_endpoints() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut seen = [false; 8];
        for _ in 0..1_000 {
            seen[rng.random_range(0usize..8)] = true;
        }
        assert!(seen.iter().all(|&s| s));
        for _ in 0..100 {
            let v = rng.random_range(1u8..=32);
            assert!((1..=32).contains(&v));
        }
    }

    #[test]
    fn bool_is_roughly_fair() {
        let mut rng = StdRng::seed_from_u64(3);
        let heads = (0..10_000).filter(|_| rng.random::<bool>()).count();
        assert!((4_500..5_500).contains(&heads), "heads = {heads}");
    }

    #[test]
    fn works_through_unsized_rng() {
        fn draw(rng: &mut (impl Rng + ?Sized)) -> f64 {
            rng.random()
        }
        let mut rng = StdRng::seed_from_u64(4);
        let dynrng: &mut StdRng = &mut rng;
        assert!((0.0..1.0).contains(&draw(dynrng)));
    }
}
