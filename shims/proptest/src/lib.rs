//! Offline shim for `proptest`.
//!
//! Implements the slice of proptest the test suites use: the [`proptest!`]
//! macro (with optional `#![proptest_config(...)]`), range and `any::<T>()`
//! strategies, tuple and [`collection::vec`] combinators, and the
//! `prop_assert!` / `prop_assert_eq!` / `prop_assume!` macros. Unlike real
//! proptest there is no shrinking and no failure persistence: cases are
//! drawn from a generator seeded deterministically per test, so failures
//! reproduce on re-run.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Per-test configuration (case count only).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases to run per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` random cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // Real proptest defaults to 256; 64 keeps the offline suite quick
        // while still exercising a spread of inputs.
        ProptestConfig { cases: 64 }
    }
}

/// A generator of random values of one type.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draw one value.
    fn sample(&self, rng: &mut StdRng) -> Self::Value;
}

/// Types with a full-range default strategy, mirroring `proptest::Arbitrary`.
pub trait Arbitrary: Sized {
    /// Draw one unconstrained value.
    fn arbitrary(rng: &mut StdRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut StdRng) -> Self {
                rng.random()
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut StdRng) -> Self {
        rng.random()
    }
}

/// Strategy produced by [`any`].
#[derive(Debug, Clone, Copy)]
pub struct Any<T>(std::marker::PhantomData<T>);

/// Full-range strategy for `T`, mirroring `proptest::prelude::any`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn sample(&self, rng: &mut StdRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut StdRng) -> $t {
                rng.random_range(self.clone())
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut StdRng) -> $t {
                rng.random_range(self.clone())
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_range_strategy_float {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut StdRng) -> $t {
                rng.random_range(self.clone())
            }
        }
    )*};
}
impl_range_strategy_float!(f32, f64);

macro_rules! impl_tuple_strategy {
    ($(($($name:ident),+)),+ $(,)?) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn sample(&self, rng: &mut StdRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.sample(rng),)+)
            }
        }
    )+};
}
impl_tuple_strategy!((A, B), (A, B, C), (A, B, C, D));

/// Collection strategies, mirroring `proptest::collection`.
pub mod collection {
    use super::{StdRng, Strategy};
    use rand::Rng;

    /// Length specification for [`vec`]: a fixed size or a range.
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            SizeRange {
                lo: r.start,
                hi: r.end,
            }
        }
    }

    /// Strategy for `Vec<S::Value>` with length drawn from `size`.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// `Vec` strategy combinator, mirroring `proptest::collection::vec`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut StdRng) -> Self::Value {
            let len = if self.size.lo + 1 >= self.size.hi {
                self.size.lo
            } else {
                rng.random_range(self.size.lo..self.size.hi)
            };
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// Deterministic per-test generator: seeded from the test's name so every
/// run draws the same cases.
pub fn test_rng(test_name: &str) -> StdRng {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in test_name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    StdRng::seed_from_u64(h)
}

/// Assertion inside a property body; failure fails the case.
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Equality assertion inside a property body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Inequality assertion inside a property body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Skip the current case when its inputs don't satisfy a precondition.
/// Expands to an early return from the case closure, so a skipped case
/// counts as a pass (no global rejection budget, unlike real proptest).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return;
        }
    };
}

/// Property-test entry point, mirroring `proptest::proptest!`.
///
/// Supports the forms used in-tree: an optional leading
/// `#![proptest_config(expr)]`, then any number of `#[test]` functions
/// whose arguments are `name in strategy` pairs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::proptest!(@funcs ($config) $($rest)*);
    };
    (@funcs ($config:expr) $(
        $(#[$meta:meta])*
        fn $name:ident ( $($arg:ident in $strategy:expr),+ $(,)? ) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $config;
            let mut rng = $crate::test_rng(concat!(module_path!(), "::", stringify!($name)));
            for _ in 0..config.cases {
                $(let $arg = $crate::Strategy::sample(&($strategy), &mut rng);)+
                let case = move || $body;
                case();
            }
        }
    )*};
    ($($rest:tt)*) => {
        $crate::proptest!(@funcs ($crate::ProptestConfig::default()) $($rest)*);
    };
}

/// Single-import surface, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::collection;
    pub use crate::{any, Arbitrary, ProptestConfig, Strategy};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_stay_in_bounds(
            a in 1usize..24,
            b in 0.0f64..0.9,
            c in 1u8..=32,
            d in any::<u64>()
        ) {
            prop_assert!((1..24).contains(&a));
            prop_assert!((0.0..0.9).contains(&b));
            prop_assert!((1..=32).contains(&c));
            let _ = d;
        }

        #[test]
        fn vec_and_tuple_strategies(
            v in collection::vec((any::<bool>(), 1u8..=4), 1..50),
            w in collection::vec(0u64..50, 512)
        ) {
            prop_assert!(!v.is_empty() && v.len() < 50);
            prop_assert_eq!(w.len(), 512);
            for (_, x) in v {
                prop_assert!((1..=4).contains(&x));
            }
        }

        #[test]
        fn assume_skips_cases(n in 0usize..10) {
            prop_assume!(n % 2 == 0);
            prop_assert_eq!(n % 2, 0);
        }
    }

    proptest! {
        #[test]
        fn default_config_form_works(x in 0u32..7) {
            prop_assert!(x < 7);
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let mut a = crate::test_rng("t");
        let mut b = crate::test_rng("t");
        let s = 0usize..100;
        for _ in 0..32 {
            assert_eq!(Strategy::sample(&s, &mut a), Strategy::sample(&s, &mut b));
        }
    }
}
