//! Offline shim for `serde`.
//!
//! Supplies the `Serialize` / `Deserialize` trait names and (behind the
//! `derive` feature) the matching no-op derive macros, so config structs
//! can keep their upstream-compatible annotations while the workspace
//! builds without crates.io access. No data format ships in-tree, so the
//! traits carry no methods.

/// Marker stand-in for `serde::Serialize`.
pub trait Serialize {}

/// Marker stand-in for `serde::Deserialize`.
pub trait Deserialize<'de> {}

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};
