//! Offline shim for `criterion`.
//!
//! A minimal wall-clock harness exposing the subset of criterion's API the
//! bench suite uses (`benchmark_group`, `bench_function`,
//! `bench_with_input`, `Throughput`, `BenchmarkId`, the `criterion_group!`
//! / `criterion_main!` macros). Measurements are a fixed warm-up plus a
//! mean over timed batches — good enough for relative comparisons and for
//! keeping `cargo bench` runnable offline; swap in real criterion for
//! statistically rigorous numbers.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use black_box_reexport::black_box;

mod black_box_reexport {
    pub use std::hint::black_box;
}

/// Throughput annotation attached to a benchmark group.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Identifier for one parameterized benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// A `function_name/parameter` id.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// An id that is just the parameter value.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// Timing loop handle passed to benchmark closures.
pub struct Bencher {
    sample_size: usize,
    /// Mean time per iteration of the last `iter` call.
    last_mean: Duration,
}

impl Bencher {
    /// Time `routine`, storing the mean time per call.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // Warm-up and batch-size calibration: grow the batch until it
        // runs long enough to time reliably.
        let mut batch = 1u64;
        let batch_floor = Duration::from_millis(5);
        loop {
            let start = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            let elapsed = start.elapsed();
            if elapsed >= batch_floor || batch >= 1 << 20 {
                break;
            }
            batch *= 4;
        }
        let mut total = Duration::ZERO;
        let mut iters = 0u64;
        for _ in 0..self.sample_size.max(1) {
            let start = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            total += start.elapsed();
            iters += batch;
        }
        self.last_mean = total / iters.max(1) as u32;
    }
}

fn report(name: &str, mean: Duration, throughput: Option<Throughput>) {
    let ns = mean.as_nanos();
    match throughput {
        Some(Throughput::Elements(n)) if ns > 0 => {
            let rate = n as f64 / mean.as_secs_f64();
            println!("{name:<40} {ns:>12} ns/iter   {rate:>14.0} elem/s");
        }
        Some(Throughput::Bytes(n)) if ns > 0 => {
            let rate = n as f64 / mean.as_secs_f64() / (1 << 20) as f64;
            println!("{name:<40} {ns:>12} ns/iter   {rate:>14.1} MiB/s");
        }
        _ => println!("{name:<40} {ns:>12} ns/iter"),
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    throughput: Option<Throughput>,
    sample_size: usize,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Set the throughput annotation for subsequent benchmarks.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Set the number of timed samples.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n;
        self
    }

    /// Run one benchmark in this group.
    pub fn bench_function<F>(&mut self, id: impl Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            sample_size: self.sample_size,
            last_mean: Duration::ZERO,
        };
        f(&mut b);
        report(
            &format!("{}/{}", self.name, id),
            b.last_mean,
            self.throughput,
        );
        self
    }

    /// Run one benchmark with an explicit input value.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher {
            sample_size: self.sample_size,
            last_mean: Duration::ZERO,
        };
        f(&mut b, input);
        report(
            &format!("{}/{}", self.name, id),
            b.last_mean,
            self.throughput,
        );
        self
    }

    /// Finish the group (marker for API compatibility).
    pub fn finish(&mut self) {}
}

/// Top-level benchmark driver.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Open a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            throughput: None,
            sample_size: 20,
            _criterion: self,
        }
    }

    /// Run one stand-alone benchmark.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            sample_size: 20,
            last_mean: Duration::ZERO,
        };
        f(&mut b);
        report(name, b.last_mean, None);
        self
    }
}

/// Bundle benchmark functions into a runnable group, like criterion's.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Emit a `main` that runs the given groups, like criterion's.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
