//! Offline shim for the `bytes` crate.
//!
//! Implements the subset the container format uses: owned [`Bytes`] /
//! [`BytesMut`] buffers, little-endian [`BufMut`] writers on `BytesMut`,
//! and a consuming [`Buf`] reader over `&[u8]`. `Bytes` is backed by a
//! plain `Vec<u8>` (no refcounted zero-copy slicing — nothing in-tree
//! needs it).

use std::ops::Deref;

/// Immutable contiguous byte buffer.
#[derive(Debug, Clone, PartialEq, Eq, Default, Hash)]
pub struct Bytes {
    data: Vec<u8>,
}

impl Bytes {
    /// Empty buffer.
    pub fn new() -> Self {
        Bytes::default()
    }

    /// Copy `data` into a new buffer.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Bytes {
            data: data.to_vec(),
        }
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(data: Vec<u8>) -> Self {
        Bytes { data }
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self.data == other
    }
}

impl PartialEq<Vec<u8>> for Bytes {
    fn eq(&self, other: &Vec<u8>) -> bool {
        &self.data == other
    }
}

/// Growable byte buffer with little-endian put methods.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// Empty buffer.
    pub fn new() -> Self {
        BytesMut::default()
    }

    /// Empty buffer with reserved capacity.
    pub fn with_capacity(cap: usize) -> Self {
        BytesMut {
            data: Vec::with_capacity(cap),
        }
    }

    /// Freeze into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes { data: self.data }
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

/// Write-side buffer operations (little-endian subset).
pub trait BufMut {
    /// Append raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Append one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Append a little-endian `u16`.
    fn put_u16_le(&mut self, v: u16) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Append a little-endian `u32`.
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Append a little-endian `u64`.
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

/// Read-side buffer operations (little-endian subset).
///
/// # Panics
///
/// Like upstream `bytes`, the `get_*` and `copy_to_slice` methods panic
/// when the buffer holds fewer bytes than requested; callers are expected
/// to check [`Buf::remaining`] first.
pub trait Buf {
    /// Bytes left to consume.
    fn remaining(&self) -> usize;

    /// Consume `n` bytes.
    fn advance(&mut self, n: usize);

    /// Consume `dst.len()` bytes into `dst`.
    fn copy_to_slice(&mut self, dst: &mut [u8]);

    /// Consume one byte.
    fn get_u8(&mut self) -> u8 {
        let mut b = [0u8; 1];
        self.copy_to_slice(&mut b);
        b[0]
    }

    /// Consume a little-endian `u16`.
    fn get_u16_le(&mut self) -> u16 {
        let mut b = [0u8; 2];
        self.copy_to_slice(&mut b);
        u16::from_le_bytes(b)
    }

    /// Consume a little-endian `u32`.
    fn get_u32_le(&mut self) -> u32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        u32::from_le_bytes(b)
    }

    /// Consume a little-endian `u64`.
    fn get_u64_le(&mut self) -> u64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        u64::from_le_bytes(b)
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn advance(&mut self, n: usize) {
        *self = &self[n..];
    }

    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        let (head, tail) = self.split_at(dst.len());
        dst.copy_from_slice(head);
        *self = tail;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn put_get_roundtrip() {
        let mut w = BytesMut::new();
        w.put_slice(b"hdr");
        w.put_u8(7);
        w.put_u16_le(0xBEEF);
        w.put_u32_le(0xDEAD_BEEF);
        w.put_u64_le(0x0123_4567_89AB_CDEF);
        let frozen = w.freeze();

        let mut r: &[u8] = &frozen;
        assert_eq!(r.remaining(), frozen.len());
        let mut hdr = [0u8; 3];
        r.copy_to_slice(&mut hdr);
        assert_eq!(&hdr, b"hdr");
        assert_eq!(r.get_u8(), 7);
        assert_eq!(r.get_u16_le(), 0xBEEF);
        assert_eq!(r.get_u32_le(), 0xDEAD_BEEF);
        assert_eq!(r.get_u64_le(), 0x0123_4567_89AB_CDEF);
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    fn advance_and_index() {
        let b = Bytes::from(vec![1, 2, 3, 4, 5]);
        let mut r: &[u8] = &b;
        r.advance(2);
        assert_eq!(r, &[3, 4, 5]);
        assert_eq!(&r[..2], &[3, 4]);
        assert_eq!(Bytes::copy_from_slice(&b[1..3]), vec![2u8, 3]);
    }
}
