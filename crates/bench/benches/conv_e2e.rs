//! Criterion bench: end-to-end binary convolution and the compression
//! round-trip on realistic block geometry.

use bench::block_kernel;
use bitnn::ops::conv::{conv2d_binary, Conv2dParams};
use bitnn::pack::{PackedActivations, PackedKernel};
use bitnn::tensor::BitTensor;
use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use kc_core::codec::KernelCodec;
use std::hint::black_box;

fn random_bits(shape: &[usize], seed: u64) -> BitTensor {
    let mut t = BitTensor::zeros(shape);
    let mut s = seed | 1;
    for i in 0..t.len() {
        s = s
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        if s >> 63 == 1 {
            t.set(i, true);
        }
    }
    t
}

fn bench_conv(c: &mut Criterion) {
    // Block-5-like geometry, scaled: 128 channels, 14x14.
    let weights = block_kernel(5, 1, 0.5);
    let channels = weights.shape()[1];
    let acts = random_bits(&[1, channels, 14, 14], 9);
    let pk = PackedKernel::pack(&weights).unwrap();
    let pa = PackedActivations::pack(&acts).unwrap();
    let params = Conv2dParams { stride: 1, pad: 1 };

    let macs = (channels * channels * 9 * 14 * 14) as u64;
    let mut g = c.benchmark_group("conv3x3");
    g.throughput(Throughput::Elements(macs));
    g.bench_function("direct_packed", |b| {
        b.iter(|| conv2d_binary(black_box(&pa), black_box(&pk), params).unwrap())
    });
    g.finish();
}

fn bench_codec(c: &mut Criterion) {
    let kernel = block_kernel(5, 1, 0.5);
    let seqs = (kernel.shape()[0] * kernel.shape()[1]) as u64;

    let mut g = c.benchmark_group("kernel_codec");
    g.throughput(Throughput::Elements(seqs));
    g.bench_function("compress_encoding", |b| {
        let codec = KernelCodec::paper();
        b.iter(|| codec.compress(black_box(&kernel)).unwrap())
    });
    g.bench_function("compress_clustered", |b| {
        let codec = KernelCodec::paper_clustered();
        b.iter(|| codec.compress(black_box(&kernel)).unwrap())
    });
    let compressed = KernelCodec::paper().compress(&kernel).unwrap();
    g.bench_function("decompress", |b| {
        b.iter(|| black_box(&compressed).decompress().unwrap())
    });
    g.finish();
}

criterion_group!(benches, bench_conv, bench_codec);
criterion_main!(benches);
