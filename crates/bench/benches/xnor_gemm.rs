//! Criterion bench: the xnor-popcount primitives and binary GEMM — the
//! compute substrate every experiment runs on.

use bitnn::bitword::{popcount_swar, xnor_popcount_slice};
use bitnn::ops::gemm::{gemm_binary, gemm_binary_naive, PackedMatrix};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

fn lanes(n: usize, seed: u64) -> Vec<u64> {
    let mut s = seed | 1;
    (0..n)
        .map(|_| {
            s = s
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            s
        })
        .collect()
}

fn bench_xnor_popcount(c: &mut Criterion) {
    let mut g = c.benchmark_group("xnor_popcount_slice");
    for &n in &[8usize, 64, 512] {
        let a = lanes(n, 1);
        let b = lanes(n, 2);
        g.throughput(Throughput::Bytes((n * 8) as u64));
        g.bench_with_input(BenchmarkId::from_parameter(n), &n, |bench, _| {
            bench.iter(|| xnor_popcount_slice(black_box(&a), black_box(&b)))
        });
    }
    g.finish();
}

fn bench_swar(c: &mut Criterion) {
    let xs = lanes(1024, 3);
    c.bench_function("popcount_swar_1k", |b| {
        b.iter(|| {
            let mut acc = 0u32;
            for &x in &xs {
                acc += popcount_swar(black_box(x));
            }
            acc
        })
    });
    c.bench_function("popcount_native_1k", |b| {
        b.iter(|| {
            let mut acc = 0u32;
            for &x in &xs {
                acc += black_box(x).count_ones();
            }
            acc
        })
    });
}

fn bench_gemm(c: &mut Criterion) {
    let mut g = c.benchmark_group("gemm_binary");
    for &k in &[256usize, 1024] {
        let bits_a: Vec<bool> = (0..32 * k).map(|i| i % 3 == 0).collect();
        let bits_b: Vec<bool> = (0..32 * k).map(|i| i % 5 == 0).collect();
        let a = PackedMatrix::from_bools(32, k, &bits_a).unwrap();
        let b = PackedMatrix::from_bools(32, k, &bits_b).unwrap();
        g.throughput(Throughput::Elements((32 * 32 * k) as u64));
        g.bench_with_input(BenchmarkId::new("32x32", k), &k, |bench, _| {
            bench.iter(|| gemm_binary(black_box(&a), black_box(&b)).unwrap())
        });
        g.bench_with_input(BenchmarkId::new("32x32_naive", k), &k, |bench, _| {
            bench.iter(|| gemm_binary_naive(black_box(&a), black_box(&b)).unwrap())
        });
    }
    g.finish();
}

criterion_group!(benches, bench_xnor_popcount, bench_swar, bench_gemm);
criterion_main!(benches);
