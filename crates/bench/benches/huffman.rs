//! Criterion bench: encode/decode throughput of the simplified tree vs
//! full canonical Huffman — the software cost the paper's hardware unit
//! eliminates (Sec. III-B / IV-B).

use bench::block_kernel;
use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use kc_core::bitstream::{BitReader, BitWriter};
use kc_core::huffman::{FullHuffman, SimplifiedTree, TreeConfig};
use kc_core::{BitSeq, FreqTable};
use std::hint::black_box;

fn payload(freq: &FreqTable, n: usize) -> Vec<BitSeq> {
    // A deterministic payload drawn proportionally to the counts.
    let mut seqs = Vec::with_capacity(n);
    let sorted: Vec<(BitSeq, u64)> = freq
        .sorted_desc()
        .into_iter()
        .filter(|&(_, c)| c > 0)
        .collect();
    let total = freq.total();
    let mut acc = 0u64;
    let mut cursor = 0usize;
    for i in 0..n {
        let target = (i as u64 * total) / n as u64;
        while acc < target && cursor < sorted.len() {
            acc += sorted[cursor].1;
            cursor += 1;
        }
        seqs.push(sorted[cursor.min(sorted.len() - 1)].0);
    }
    seqs
}

fn bench_huffman(c: &mut Criterion) {
    let kernel = block_kernel(5, 1, 0.5);
    let freq = FreqTable::from_kernel(&kernel).unwrap();
    let simp = SimplifiedTree::build(&freq, TreeConfig::paper());
    let full = FullHuffman::build(&freq).unwrap();
    let seqs = payload(&freq, 4096);

    let mut g = c.benchmark_group("encode");
    g.throughput(Throughput::Elements(seqs.len() as u64));
    g.bench_function("simplified", |b| {
        b.iter(|| {
            let mut w = BitWriter::new();
            for &s in &seqs {
                simp.encode(black_box(s), &mut w).unwrap();
            }
            w.bits_written()
        })
    });
    g.bench_function("full", |b| {
        b.iter(|| {
            let mut w = BitWriter::new();
            for &s in &seqs {
                full.encode(black_box(s), &mut w).unwrap();
            }
            w.bits_written()
        })
    });
    g.finish();

    // Pre-encode for decode benches.
    let mut w = BitWriter::new();
    for &s in &seqs {
        simp.encode(s, &mut w).unwrap();
    }
    let simp_bits = w.bits_written();
    let simp_bytes = w.into_bytes();
    let mut w = BitWriter::new();
    for &s in &seqs {
        full.encode(s, &mut w).unwrap();
    }
    let full_bits = w.bits_written();
    let full_bytes = w.into_bytes();

    let mut g = c.benchmark_group("decode");
    g.throughput(Throughput::Elements(seqs.len() as u64));
    g.bench_function("simplified", |b| {
        b.iter(|| {
            let mut r = BitReader::with_limit(&simp_bytes, simp_bits);
            let mut acc = 0u32;
            for _ in 0..seqs.len() {
                acc += simp.decode(&mut r).unwrap().value() as u32;
            }
            acc
        })
    });
    g.bench_function("full", |b| {
        b.iter(|| {
            let mut r = BitReader::with_limit(&full_bytes, full_bits);
            let mut acc = 0u32;
            for _ in 0..seqs.len() {
                acc += full.decode(&mut r).unwrap().value() as u32;
            }
            acc
        })
    });
    g.finish();
}

criterion_group!(benches, bench_huffman);
criterion_main!(benches);
