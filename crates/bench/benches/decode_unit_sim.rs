//! Criterion bench: simulator throughput per mode on one weight-bound
//! layer — also a regression guard on the relative cycle counts behind
//! the paper's speedup claims.

use bitnn::model::{LayerWorkload, OpCategory};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use simcpu::config::CpuConfig;
use simcpu::run::{run_workload, Mode};
use std::hint::black_box;

fn layer() -> LayerWorkload {
    LayerWorkload {
        name: "bench.conv3x3".into(),
        category: OpCategory::Conv3x3,
        in_ch: 512,
        out_ch: 512,
        kh: 3,
        kw: 3,
        oh: 7,
        ow: 7,
        precision_bits: 1,
    }
}

fn bench_sim(c: &mut Criterion) {
    let cfg = CpuConfig::default();
    let wl = layer();
    let mut g = c.benchmark_group("simulate_block7_conv3x3");
    g.sample_size(10);
    for (name, mode) in [
        ("baseline", Mode::Baseline),
        ("software", Mode::SoftwareDecode),
        ("hardware", Mode::HardwareDecode),
    ] {
        g.bench_with_input(BenchmarkId::from_parameter(name), &mode, |b, &mode| {
            b.iter(|| run_workload(black_box(&cfg), black_box(&wl), mode, 1.33))
        });
    }
    g.finish();
}

criterion_group!(benches, bench_sim);
criterion_main!(benches);
