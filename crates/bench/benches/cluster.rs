//! Criterion bench: the offline clustering pass (Sec. III-C) — plan
//! construction and kernel rewriting.

use bench::block_kernel;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use kc_core::cluster::{ClusterConfig, ClusterPlan};
use kc_core::FreqTable;
use std::hint::black_box;

fn bench_cluster(c: &mut Criterion) {
    let kernel = block_kernel(7, 1, 0.5);
    let freq = FreqTable::from_kernel(&kernel).unwrap();

    let mut g = c.benchmark_group("cluster_plan");
    for n in [64usize, 256, 512] {
        let cfg = ClusterConfig {
            n_remove: n,
            ..ClusterConfig::default()
        };
        g.bench_with_input(BenchmarkId::from_parameter(n), &cfg, |b, cfg| {
            b.iter(|| ClusterPlan::build(black_box(&freq), cfg))
        });
    }
    g.finish();

    let plan = ClusterPlan::build(&freq, &ClusterConfig::default());
    c.bench_function("cluster_apply_kernel", |b| {
        b.iter(|| plan.apply_to_kernel(black_box(&kernel)).unwrap())
    });
}

criterion_group!(benches, bench_cluster);
criterion_main!(benches);
