//! Sensitivity sweeps: how the paper's headline speedup responds to the
//! quantities the evaluation holds fixed — compression ratio, DRAM
//! bandwidth, and decoder throughput. These curves show *where* the
//! scheme pays off and where it crosses over, which single-point results
//! cannot.
//!
//! ```text
//! cargo run -p bench --release --bin sweeps [-- --image 112]
//! ```

use bench::{arg_u64, TablePrinter};
use bitnn::model::{ReActNet, ReActNetConfig};
use simcpu::config::CpuConfig;
use simcpu::run::{run_model, Mode};

fn model_workloads(image: usize) -> Vec<bitnn::model::LayerWorkload> {
    let mut cfg = ReActNetConfig::full();
    cfg.image_size = image;
    ReActNet::new(cfg, 1)
        .expect("valid sweep config")
        .workloads()
}

fn speedup(cpu: &CpuConfig, wls: &[bitnn::model::LayerWorkload], ratio: f64) -> f64 {
    let base = run_model(cpu, wls, Mode::Baseline, &[1.0]);
    let hw = run_model(cpu, wls, Mode::HardwareDecode, &[ratio]);
    base.total_cycles as f64 / hw.total_cycles as f64
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let image = arg_u64(&args, "--image", 112) as usize;
    let wls = model_workloads(image);

    // --- Sweep 1: compression ratio ---
    println!("Sweep 1 — hardware speedup vs compression ratio ({image}x{image})\n");
    let mut t = TablePrinter::new();
    t.row(vec!["Ratio", "Speedup"]);
    for ratio in [1.0, 1.1, 1.2, 1.32, 1.5, 2.0] {
        let cpu = CpuConfig::default();
        t.row(vec![
            format!("{ratio:.2}"),
            format!("{:.3}x", speedup(&cpu, &wls, ratio)),
        ]);
    }
    print!("{}", t.render());
    println!("(Even at ratio 1.0 the unit helps — fetch/decode overlap hides load");
    println!(" latency — and the curve saturates once the decoder's throughput,");
    println!(" not the stream size, becomes the binding constraint.)\n");

    // --- Sweep 2: DRAM bandwidth ---
    println!("Sweep 2 — hardware speedup vs DRAM bandwidth\n");
    let mut t = TablePrinter::new();
    t.row(vec!["Bytes/cycle", "Speedup"]);
    for bw in [1.0, 2.0, 4.0, 8.0, 16.0] {
        let mut cpu = CpuConfig::default();
        cpu.dram.bytes_per_cycle = bw;
        t.row(vec![
            format!("{bw:.0}"),
            format!("{:.3}x", speedup(&cpu, &wls, 1.33)),
        ]);
    }
    print!("{}", t.render());
    println!("(Scarce bandwidth throttles both modes; the advantage saturates once");
    println!(" the compressed stream moves freely.)\n");

    // --- Sweep 3: decoder throughput ---
    println!("Sweep 3 — hardware speedup vs decoder throughput\n");
    let mut t = TablePrinter::new();
    t.row(vec!["Seq/cycle", "Speedup"]);
    for rate in [0.5, 1.0, 1.55, 2.0, 4.0] {
        let mut cpu = CpuConfig::default();
        cpu.decode_unit.decode_per_cycle = rate;
        t.row(vec![
            format!("{rate:.2}"),
            format!("{:.3}x", speedup(&cpu, &wls, 1.33)),
        ]);
    }
    print!("{}", t.render());
    println!("(Below ~1 seq/cycle the decoder itself becomes the bottleneck and the");
    println!(" scheme loses to the baseline — the risk Sec. III-B's simplification");
    println!(" of the Huffman tree is buying insurance against.)");
}
