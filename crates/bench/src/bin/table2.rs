//! Regenerate paper Table II: top-64 / top-256 bit-sequence coverage per
//! basic block, measured on sampled kernels.
//!
//! ```text
//! cargo run -p bench --release --bin table2 [-- --scale 0.5 --seed 1]
//! ```

use bench::{arg_f64, arg_u64, block_kernel, vs, TablePrinter, PAPER_TABLE2};
use kc_core::FreqTable;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let scale = arg_f64(&args, "--scale", 1.0);
    let seed = arg_u64(&args, "--seed", 1);

    println!("Table II — distribution of bit sequences for the 3x3 kernels per block\n");
    let mut table = TablePrinter::new();
    table.row(vec!["Layer", "Top 64 (%)", "Top 256 (%)", "Distinct"]);
    for block in 1..=13 {
        let kernel = block_kernel(block, seed, scale);
        let freq = FreqTable::from_kernel(&kernel).expect("3x3 kernel");
        let (p64, p256) = PAPER_TABLE2[block - 1];
        table.row(vec![
            format!("Block {block}"),
            vs(freq.top_k_coverage_pct(64), p64),
            vs(freq.top_k_coverage_pct(256), p256),
            format!("{}", freq.distinct()),
        ]);
    }
    print!("{}", table.render());
    println!("\n(Empirical coverage of sampled kernels; the generator is calibrated");
    println!(" so the underlying distribution hits the paper's targets exactly.)");
}
