//! `loadgen` — wire-protocol load generator for `bnnkc serve`.
//!
//! Drives a running daemon with concurrent connections and reports the
//! serving metrics the perfsuite and CI gate on: request throughput,
//! client-observed p50/p99 latency, the daemon's batch-size histogram
//! (how well coalescing is working), and per-code rejection counts
//! (whether backpressure engaged).
//!
//! ```text
//! loadgen --addr 127.0.0.1:PORT [--model default] [--conns 16]
//!         [--requests 100] [--rate 0] [--seed 1] [--warmup 10]
//!         [--json] [--check N] [--shutdown]
//! ```
//!
//! * Closed loop by default: each connection keeps one request in
//!   flight. `--rate R` switches to **open-loop** arrivals: requests are
//!   scheduled at a fixed aggregate rate of `R` req/s regardless of
//!   completions, which is what makes queue buildup (and backpressure)
//!   observable.
//! * Inputs are the same deterministic synthetic batch `bnnkc run`
//!   uses (seed XOR the shared input salt), so served logits are
//!   comparable bit-for-bit with the offline path.
//! * `--check N` sends items `0..N` sequentially on one connection and
//!   prints exactly the per-item lines `bnnkc run --batch N` prints
//!   (argmax, logit head, FNV digest) — CI diffs the two outputs.

use bench::{arg_flag, arg_u64};
use bitnn::infer::{logits_digest, synthetic_batch, RUN_INPUT_SALT};
use bnnkc_serve::Client;
use kc_core::wire::{InferRequest, ModelInfo, Request, Response, StatsReport};
use std::collections::BTreeMap;
use std::process::ExitCode;
use std::time::{Duration, Instant};

fn arg_str<'a>(args: &'a [String], flag: &str, default: &'a str) -> &'a str {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .map_or(default, String::as_str)
}

/// One connection's share of the run.
struct ConnResult {
    latencies_ns: Vec<u64>,
    ok: u64,
    rejected: BTreeMap<&'static str, u64>,
    /// Hard failures (transport errors, unexpected responses).
    errors: u64,
}

fn percentile(sorted_ns: &[u64], p: f64) -> u64 {
    if sorted_ns.is_empty() {
        return 0;
    }
    let rank = (p * (sorted_ns.len() - 1) as f64).round() as usize;
    sorted_ns[rank.min(sorted_ns.len() - 1)]
}

/// Fetch the daemon's stats (for model discovery and histogram deltas).
fn fetch_stats(addr: &str) -> Result<StatsReport, String> {
    let mut c = Client::connect(addr).map_err(|e| format!("connect {addr}: {e}"))?;
    match c.call(&Request::Stats) {
        Ok(Response::Stats(s)) => Ok(s),
        Ok(other) => Err(format!("unexpected response to Stats: {other:?}")),
        Err(e) => Err(format!("stats call failed: {e}")),
    }
}

fn find_model<'a>(stats: &'a StatsReport, name: &str) -> Result<&'a ModelInfo, String> {
    stats.models.iter().find(|m| m.name == name).ok_or_else(|| {
        let known: Vec<&str> = stats.models.iter().map(|m| m.name.as_str()).collect();
        format!("daemon has no model `{name}` (registered: {known:?})")
    })
}

/// One connection's arrival schedule: it owns every `conns`-th slot of
/// the global sequence starting at `conn_idx`, and in open-loop mode
/// (`interval` set) each slot is due at `start_at + slot * interval`.
#[derive(Clone, Copy)]
struct Schedule {
    conn_idx: u64,
    conns: u64,
    interval: Option<Duration>,
    start_at: Instant,
}

fn run_conn(
    addr: &str,
    model: &str,
    inputs: &[InferRequest],
    requests: u64,
    sched: Schedule,
) -> ConnResult {
    let mut res = ConnResult {
        latencies_ns: Vec::with_capacity(requests as usize),
        ok: 0,
        rejected: BTreeMap::new(),
        errors: 0,
    };
    let mut client = match Client::connect(addr) {
        Ok(c) => c,
        Err(_) => {
            res.errors = requests;
            return res;
        }
    };
    for i in 0..requests {
        // Interleaved slots keep open-loop arrivals at the aggregate
        // rate across connections.
        let slot = sched.conn_idx + i * sched.conns;
        if let Some(step) = sched.interval {
            // Open loop: arrivals are scheduled by wall clock no matter
            // how long earlier replies took.
            let due = sched.start_at + step * slot as u32;
            if let Some(wait) = due.checked_duration_since(Instant::now()) {
                std::thread::sleep(wait);
            }
        }
        let mut req = inputs[slot as usize % inputs.len()].clone();
        req.model = model.to_string();
        req.seq = slot;
        let t0 = Instant::now();
        match client.call(&Request::Infer(req)) {
            Ok(Response::Logits { .. }) => {
                res.latencies_ns.push(t0.elapsed().as_nanos() as u64);
                res.ok += 1;
            }
            Ok(Response::Err { code, .. }) => {
                *res.rejected.entry(code.as_str()).or_insert(0) += 1;
            }
            Ok(_) | Err(_) => res.errors += 1,
        }
    }
    res
}

/// `--check N`: replicate `bnnkc run --batch N`'s per-item output from
/// served responses. Returns false on any mismatch-level failure
/// (non-logits response).
fn run_check(addr: &str, model: &str, n: usize, seed: u64, info: &ModelInfo) -> bool {
    let inputs = synthetic_batch(
        n,
        info.channels as usize,
        info.image as usize,
        seed ^ RUN_INPUT_SALT,
    );
    let mut client = match Client::connect(addr) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("connect {addr}: {e}");
            return false;
        }
    };
    for (i, x) in inputs.iter().enumerate() {
        let req = Request::Infer(InferRequest {
            model: model.to_string(),
            seq: i as u64,
            shape: [info.channels, info.image, info.image],
            data: x.data().to_vec(),
        });
        match client.call(&req) {
            Ok(Response::Logits { data, .. }) => {
                let argmax = data
                    .iter()
                    .enumerate()
                    .max_by(|a, b| a.1.total_cmp(b.1))
                    .map(|(j, _)| j)
                    .unwrap_or(0);
                let head: Vec<String> = data
                    .iter()
                    .take(4)
                    .map(|v| format!("{:08x}", v.to_bits()))
                    .collect();
                println!(
                    "item {i}: argmax {argmax}, logits[0..{}] = [{}], digest {:016x}",
                    head.len(),
                    head.join(" "),
                    logits_digest(&data)
                );
            }
            Ok(other) => {
                eprintln!("item {i}: unexpected response {other:?}");
                return false;
            }
            Err(e) => {
                eprintln!("item {i}: {e}");
                return false;
            }
        }
    }
    true
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let addr = arg_str(&args, "--addr", "");
    if addr.is_empty() {
        eprintln!(
            "usage: loadgen --addr HOST:PORT [--model default] [--conns 16] [--requests 100] \
             [--rate 0] [--seed 1] [--warmup 10] [--json] [--check N]"
        );
        return ExitCode::FAILURE;
    }
    let model = arg_str(&args, "--model", "default");
    let conns = arg_u64(&args, "--conns", 16).max(1);
    let requests = arg_u64(&args, "--requests", 100);
    let rate = arg_u64(&args, "--rate", 0);
    let seed = arg_u64(&args, "--seed", 1);
    let warmup = arg_u64(&args, "--warmup", 10);
    let json = arg_flag(&args, "--json");

    if arg_flag(&args, "--shutdown") {
        let resp = Client::connect(addr)
            .map_err(|e| e.to_string())
            .and_then(|mut c| c.call(&Request::Shutdown).map_err(|e| e.to_string()));
        return match resp {
            Ok(Response::Closing) => {
                println!("daemon closing");
                ExitCode::SUCCESS
            }
            Ok(other) => {
                eprintln!("unexpected response to Shutdown: {other:?}");
                ExitCode::FAILURE
            }
            Err(e) => {
                eprintln!("error: {e}");
                ExitCode::FAILURE
            }
        };
    }

    let before = match fetch_stats(addr) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    let info = match find_model(&before, model) {
        Ok(m) => m.clone(),
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };

    if let Some(n) = args
        .iter()
        .position(|a| a == "--check")
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse::<usize>().ok())
    {
        return if run_check(addr, model, n, seed, &info) {
            ExitCode::SUCCESS
        } else {
            ExitCode::FAILURE
        };
    }

    // The request pool every connection draws from: the same synthetic
    // inputs `bnnkc run` would use with this seed.
    let pool = 64usize;
    let tensors = synthetic_batch(
        pool,
        info.channels as usize,
        info.image as usize,
        seed ^ RUN_INPUT_SALT,
    );
    let inputs: Vec<InferRequest> = tensors
        .iter()
        .map(|t| InferRequest {
            model: model.to_string(),
            seq: 0,
            shape: [info.channels, info.image, info.image],
            data: t.data().to_vec(),
        })
        .collect();

    // Warm the daemon (sizes its scratch/buffers) outside the timed run.
    if warmup > 0 {
        let sched = Schedule {
            conn_idx: 0,
            conns: 1,
            interval: None,
            start_at: Instant::now(),
        };
        let _ = run_conn(addr, model, &inputs, warmup, sched);
    }

    let interval = (rate > 0).then(|| Duration::from_secs_f64(1.0 / rate as f64));
    let t0 = Instant::now();
    let results: Vec<ConnResult> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..conns)
            .map(|c| {
                let inputs = &inputs;
                let sched = Schedule {
                    conn_idx: c,
                    conns,
                    interval,
                    start_at: t0,
                };
                scope.spawn(move || run_conn(addr, model, inputs, requests, sched))
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    let wall = t0.elapsed();

    let after = match fetch_stats(addr) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };

    let mut latencies: Vec<u64> = results
        .iter()
        .flat_map(|r| r.latencies_ns.iter().copied())
        .collect();
    latencies.sort_unstable();
    let ok: u64 = results.iter().map(|r| r.ok).sum();
    let errors: u64 = results.iter().map(|r| r.errors).sum();
    let mut rejected: BTreeMap<&'static str, u64> = BTreeMap::new();
    for r in &results {
        for (code, n) in &r.rejected {
            *rejected.entry(code).or_insert(0) += n;
        }
    }
    let rejected_total: u64 = rejected.values().sum();
    let rps = ok as f64 / wall.as_secs_f64();
    let p50 = percentile(&latencies, 0.50);
    let p99 = percentile(&latencies, 0.99);

    // Batch-size histogram over exactly this run: the daemon counter
    // delta.
    let mut hist: BTreeMap<u32, u64> = BTreeMap::new();
    for &(size, count) in &after.batch_hist {
        let prior = before
            .batch_hist
            .iter()
            .find(|(s, _)| *s == size)
            .map_or(0, |(_, c)| *c);
        if count > prior {
            hist.insert(size, count - prior);
        }
    }

    if json {
        let hist_json: Vec<String> = hist.iter().map(|(s, c)| format!("[{s}, {c}]")).collect();
        let rej_json: Vec<String> = rejected
            .iter()
            .map(|(code, n)| format!("\"{code}\": {n}"))
            .collect();
        println!("{{");
        println!("  \"model\": \"{model}\",");
        println!("  \"conns\": {conns},");
        println!("  \"requests_per_conn\": {requests},");
        println!("  \"rate_rps\": {rate},");
        println!("  \"open_loop\": {},", rate > 0);
        println!("  \"ok\": {ok},");
        println!("  \"rejected\": {rejected_total},");
        println!("  \"rejected_by_code\": {{{}}},", rej_json.join(", "));
        println!("  \"errors\": {errors},");
        println!("  \"wall_s\": {:.6},", wall.as_secs_f64());
        println!("  \"req_per_s\": {rps:.2},");
        println!("  \"p50_us\": {:.1},", p50 as f64 / 1e3);
        println!("  \"p99_us\": {:.1},", p99 as f64 / 1e3);
        println!("  \"batch_hist\": [{}],", hist_json.join(", "));
        println!("  \"served_version\": {},", info.version);
        println!("  \"max_batch\": {},", info.max_batch);
        println!("  \"queue_depth\": {}", info.queue_depth);
        println!("}}");
    } else {
        println!(
            "loadgen: model `{model}`, {conns} conns x {requests} reqs, {}",
            if rate > 0 {
                format!("open loop at {rate} req/s")
            } else {
                "closed loop".to_string()
            }
        );
        println!(
            "  {ok} ok, {rejected_total} rejected, {errors} errors in {:.3} s -> {rps:.1} req/s",
            wall.as_secs_f64()
        );
        println!(
            "  latency p50 {:.1} us, p99 {:.1} us",
            p50 as f64 / 1e3,
            p99 as f64 / 1e3
        );
        for (code, n) in &rejected {
            println!("  rejected[{code}]: {n}");
        }
        println!("  batch-size histogram (this run):");
        for (size, count) in &hist {
            println!("    {size:>3}: {count}");
        }
    }
    if errors > 0 {
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
