//! Extension experiment: the paper's Sec. I observation applied to
//! *inputs* — how skewed are the bit sequences of binarized activations?
//!
//! Runs a model forward, captures each block's binarized 3×3-stage input,
//! and reports the per-block activation-sequence statistics next to the
//! kernel-side numbers. The paper compresses only kernels (static,
//! offline tree); this quantifies what an online activation scheme — the
//! natural future-work extension — would have to work with.
//!
//! ```text
//! cargo run -p bench --release --bin actfreq [-- --seed 1 --inputs 4]
//! ```

use bench::{arg_u64, TablePrinter};
use bitnn::infer::synthetic_batch;
use bitnn::model::ReActNet;
use kc_core::actseq::activation_freq;
use kc_core::{FreqTable, TreeConfig};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let seed = arg_u64(&args, "--seed", 1);
    let inputs = arg_u64(&args, "--inputs", 4) as usize;

    let model = ReActNet::tiny(seed);
    let cfg = model.config().clone();
    let batch = synthetic_batch(inputs, cfg.input_channels, cfg.image_size, seed ^ 0xACED);

    // Merge activation frequencies across the batch per block.
    let mut per_block: Vec<FreqTable> = (0..model.num_blocks()).map(|_| FreqTable::new()).collect();
    for input in &batch {
        let (_, traces) = model.forward_traced(input);
        for (i, bits) in traces.iter().enumerate() {
            per_block[i].merge(&activation_freq(bits).expect("3x3-capable activations"));
        }
    }

    println!(
        "Activation bit-sequence statistics ({} inputs, tiny model)\n",
        inputs
    );
    let mut t = TablePrinter::new();
    t.row(vec![
        "Block",
        "Windows",
        "Distinct",
        "Top-64 (%)",
        "Top-256 (%)",
        "Entropy (bits)",
        "Simpl. ratio",
    ]);
    for (i, freq) in per_block.iter().enumerate() {
        let tree = kc_core::SimplifiedTree::build(freq, TreeConfig::paper());
        let ratio = 9.0 / tree.avg_bits(freq);
        // Kernel-side comparison.
        let kfreq = FreqTable::from_kernel(model.conv3_weights(i)).expect("kernel");
        t.row(vec![
            format!("{}", i + 1),
            format!("{}", freq.total()),
            format!("{}", freq.distinct()),
            format!(
                "{:.1} (kernel {:.1})",
                freq.top_k_coverage_pct(64),
                kfreq.top_k_coverage_pct(64)
            ),
            format!("{:.1}", freq.top_k_coverage_pct(256)),
            format!("{:.2}", freq.entropy_bits()),
            format!("{ratio:.3}"),
        ]);
    }
    print!("{}", t.render());
    println!("\nActivations of a randomly-initialized synthetic model are close to");
    println!("spatially white, so their sequence entropy is high; trained models'");
    println!("activations are spatially smooth and compress much better — this");
    println!("harness exists to measure that on real checkpoints.");
}
