//! Extension experiment: first-order energy comparison of the three
//! execution modes (the paper motivates edge devices but reports only
//! performance/storage; DRAM traffic dominates edge energy).
//!
//! ```text
//! cargo run -p bench --release --bin energy [-- --seed 1 --image 224]
//! ```

use bench::{arg_u64, TablePrinter};
use bitnn::model::{OpCategory, ReActNet, ReActNetConfig};
use simcpu::config::CpuConfig;
use simcpu::energy::EnergyModel;
use simcpu::exec::ExecStats;
use simcpu::mem::MemStats;
use simcpu::run::{run_model, Mode};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let seed = arg_u64(&args, "--seed", 1);
    let image = arg_u64(&args, "--image", 224) as usize;

    let mut model_cfg = ReActNetConfig::full();
    model_cfg.image_size = image;
    let model = ReActNet::new(model_cfg, seed).expect("valid config");
    let wls = model.workloads();
    let cpu = CpuConfig::default();
    let em = EnergyModel::default();
    let line = cpu.l1.line_bytes as u64;

    // Sequences the decoding unit produces in hardware mode: every 3x3
    // layer re-streams its kernel once per pixel tile.
    let decoded_seqs: u64 = wls
        .iter()
        .filter(|w| w.category == OpCategory::Conv3x3)
        .map(|w| {
            let tiles = ((w.oh * w.ow) as u64).div_ceil(cpu.pixel_tile as u64);
            tiles * w.num_sequences()
        })
        .sum();

    println!("Energy extension — full ReActNet geometry ({image}x{image})\n");
    let mut t = TablePrinter::new();
    t.row(vec![
        "Mode",
        "DRAM (µJ)",
        "cache (µJ)",
        "compute (µJ)",
        "decoder (µJ)",
        "static (µJ)",
        "total (µJ)",
    ]);
    let mut totals = Vec::new();
    for (name, mode, seqs) in [
        ("baseline", Mode::Baseline, 0),
        ("software", Mode::SoftwareDecode, 0),
        ("hardware", Mode::HardwareDecode, decoded_seqs),
    ] {
        let run = run_model(&cpu, &wls, mode, &[1.33]);
        let mem: MemStats = run.layers.iter().fold(MemStats::default(), |mut acc, l| {
            acc.dram_bytes += l.mem.dram_bytes;
            acc.l1_hits += l.mem.l1_hits;
            acc.l2_hits += l.mem.l2_hits;
            acc.dram_accesses += l.mem.dram_accesses;
            acc
        });
        let exec = ExecStats {
            cycles: run.total_cycles,
            ops: run.layers.iter().map(|l| l.exec.ops).sum(),
            ..ExecStats::default()
        };
        let e = em.estimate(&exec, &mem, seqs, line);
        totals.push((name, e.total_uj()));
        t.row(vec![
            name.to_string(),
            format!("{:.1}", e.dram_uj),
            format!("{:.1}", e.cache_uj),
            format!("{:.1}", e.compute_uj),
            format!("{:.1}", e.decoder_uj),
            format!("{:.1}", e.static_uj),
            format!("{:.1}", e.total_uj()),
        ]);
    }
    print!("{}", t.render());
    let base = totals[0].1;
    println!();
    for (name, total) in &totals[1..] {
        println!("{name}: {:.2}x the baseline energy", total / base);
    }
    println!("\nThe hardware scheme saves energy twice: fewer DRAM bytes (compression)");
    println!("and fewer cycles (less static/leakage energy), at the cost of the");
    println!("decoding unit's own lookups.");
}
