//! Ablations over the design choices DESIGN.md calls out:
//!
//! 1. full canonical Huffman vs the simplified tree (compression left on
//!    the table for the hardware-friendly shape);
//! 2. tree node capacity sweeps;
//! 3. clustering budget `N` sweep and Hamming radius 1 vs 2;
//! 4. pixel-tile size of the convolution loop (simulator).
//!
//! ```text
//! cargo run -p bench --release --bin ablation [-- --scale 0.5 --seed 1]
//! ```

use bench::{arg_f64, arg_u64, block_kernel, TablePrinter};
use kc_core::cluster::ClusterConfig;
use kc_core::codec::KernelCodec;
use kc_core::huffman::{FullHuffman, SimplifiedTree, TreeConfig};
use kc_core::FreqTable;
use simcpu::config::CpuConfig;
use simcpu::run::{run_workload, Mode};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let scale = arg_f64(&args, "--scale", 0.5);
    let seed = arg_u64(&args, "--seed", 1);
    let block = arg_u64(&args, "--block", 5) as usize;

    let kernel = block_kernel(block, seed, scale);
    let freq = FreqTable::from_kernel(&kernel).expect("3x3 kernel");

    // --- 1. Full vs simplified Huffman -------------------------------
    println!("Ablation 1 — full canonical Huffman vs simplified tree (block {block})\n");
    let full = FullHuffman::build(&freq).expect("non-empty table");
    let simp = SimplifiedTree::build(&freq, TreeConfig::paper());
    let mut t = TablePrinter::new();
    t.row(vec![
        "Coder",
        "avg bits/seq",
        "ratio",
        "max code",
        "decode structure",
    ]);
    t.row(vec![
        "entropy bound".to_string(),
        format!("{:.3}", freq.entropy_bits()),
        format!("{:.3}", 9.0 / freq.entropy_bits()),
        "-".to_string(),
        "-".to_string(),
    ]);
    t.row(vec![
        "full Huffman".to_string(),
        format!("{:.3}", full.avg_bits(&freq)),
        format!("{:.3}", 9.0 / full.avg_bits(&freq)),
        format!("{} bits", full.max_code_len()),
        format!("{}-entry canonical decoder", full.assigned()),
    ]);
    t.row(vec![
        "simplified (paper)".to_string(),
        format!("{:.3}", simp.avg_bits(&freq)),
        format!("{:.3}", 9.0 / simp.avg_bits(&freq)),
        format!("{} bits", simp.length_table().iter().max().unwrap()),
        "4 tables + 4-entry length table".to_string(),
    ]);
    print!("{}", t.render());

    // --- 2. Node capacity sweep --------------------------------------
    println!("\nAblation 2 — simplified-tree node capacities (same block)\n");
    let mut t = TablePrinter::new();
    t.row(vec!["Capacities", "code lengths", "avg bits", "ratio"]);
    for caps in [
        vec![16, 32, 64, 256],
        vec![32, 64, 64, 256],
        vec![64, 64, 128, 256],
        vec![32, 32, 64, 64, 256],
        vec![64, 256],
    ] {
        let cfg = TreeConfig::with_capacities(caps.clone()).expect("valid capacities");
        let tree = SimplifiedTree::build(&freq, cfg);
        let avg = tree.avg_bits(&freq);
        t.row(vec![
            format!("{caps:?}"),
            format!("{:?}", tree.length_table()),
            format!("{avg:.3}"),
            format!("{:.3}", 9.0 / avg),
        ]);
    }
    print!("{}", t.render());

    // --- 3. Clustering budget and radius -----------------------------
    println!("\nAblation 3 — clustering budget N and Hamming radius\n");
    let mut t = TablePrinter::new();
    t.row(vec!["N removed", "radius", "replaced", "ratio"]);
    for n in [0usize, 64, 128, 256, 384, 512] {
        for radius in [1u32, 2] {
            let codec = KernelCodec::new(TreeConfig::paper()).with_clustering(ClusterConfig {
                n_remove: n,
                max_distance: radius,
                ..ClusterConfig::default()
            });
            let ck = codec.compress(&kernel).expect("well-formed kernel");
            t.row(vec![
                format!("{n}"),
                format!("{radius}"),
                format!("{}", ck.substitutions().len()),
                format!("{:.3}", ck.ratio()),
            ]);
        }
    }
    print!("{}", t.render());

    // --- 4. Pixel-tile size in the simulator -------------------------
    println!("\nAblation 4 — convolution pixel-tile size (512-ch weight-bound layer)\n");
    let wl = bitnn::model::LayerWorkload {
        name: "ablate.conv3x3".into(),
        category: bitnn::model::OpCategory::Conv3x3,
        in_ch: 512,
        out_ch: 512,
        kh: 3,
        kw: 3,
        oh: 7,
        ow: 7,
        precision_bits: 1,
    };
    let mut t = TablePrinter::new();
    t.row(vec!["Tile", "baseline cycles", "hw cycles", "hw speedup"]);
    for tile in [1usize, 2, 4, 8] {
        let cpu = CpuConfig {
            pixel_tile: tile,
            ..CpuConfig::default()
        };
        let base = run_workload(&cpu, &wl, Mode::Baseline, 1.0);
        let hw = run_workload(&cpu, &wl, Mode::HardwareDecode, 1.33);
        t.row(vec![
            format!("{tile}"),
            format!("{}", base.cycles),
            format!("{}", hw.cycles),
            format!("{:.2}x", base.cycles as f64 / hw.cycles as f64),
        ]);
    }
    print!("{}", t.render());
    println!("\nLarger tiles amortize weight re-streaming, shrinking the hardware");
    println!("unit's advantage — the paper's premise holds when weights dominate.");
}
