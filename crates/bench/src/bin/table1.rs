//! Regenerate paper Table I: ReActNet storage and execution-time
//! breakdown by operation category.
//!
//! Storage comes from the model's parameter accounting; execution time
//! from simulating every layer on the baseline machine.
//!
//! ```text
//! cargo run -p bench --release --bin table1 [-- --seed 1 --image 224]
//! ```

use bench::{arg_u64, TablePrinter, PAPER_TABLE1};
use bitnn::model::{OpCategory, ReActNet, ReActNetConfig};
use simcpu::config::CpuConfig;
use simcpu::run::{run_model, Mode};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let seed = arg_u64(&args, "--seed", 1);
    let image = arg_u64(&args, "--image", 224) as usize;

    let mut model_cfg = ReActNetConfig::full();
    model_cfg.image_size = image;
    let model = ReActNet::new(model_cfg, seed).expect("valid config");

    let storage = model.storage_breakdown();
    let cpu = CpuConfig::default();
    let run = run_model(&cpu, &model.workloads(), Mode::Baseline, &[1.0]);

    println!("Table I — ReActNet storage and execution-time breakdown ({image}x{image} input)\n");
    let mut table = TablePrinter::new();
    table.row(vec![
        "Operation",
        "Storage (%)",
        "paper",
        "Precision",
        "Exec time (%)",
        "paper",
    ]);
    for (i, cat) in OpCategory::ALL.iter().enumerate() {
        let (p_storage, p_bits, p_exec) = PAPER_TABLE1[i];
        table.row(vec![
            cat.label().to_string(),
            format!("{:.2}", storage.percent(*cat)),
            format!("{p_storage:.2}"),
            format!("{} bit", p_bits),
            format!("{:.1}", run.category_pct(*cat)),
            format!("{p_exec:.1}"),
        ]);
    }
    print!("{}", table.render());
    println!(
        "\nTotal storage: {:.1} Mbit (paper: 29 Mbit)   Simulated cycles: {:.1} M",
        storage.total_bits() as f64 / 1e6,
        run.total_cycles as f64 / 1e6
    );
    println!("\nNote: the paper's 18.7% output-layer execution share is not reachable");
    println!("from its own op counts (a 1024x1000 8-bit FC is ~1M MACs against ~3.4G");
    println!("binary MACs in the 3x3 convolutions); see EXPERIMENTS.md.");
}
