//! perfsuite — the tracked performance suite for the binary hot path.
//!
//! Times the tiers the execution engine accelerates, each against the
//! seed's scalar baseline which is kept bit-identical in-tree:
//!
//! 1. **GEMM** — `gemm_binary_naive` (seed scalar) vs the register-blocked
//!    tiled kernel vs the parallel [`Engine`] across the thread ladder.
//! 2. **Conv 3×3** — `conv2d_binary` (seed direct scalar) vs the engine's
//!    lowerings (direct / im2col / streaming / auto) and thread counts.
//!    The `engine` ladder rows are labeled with the lowering the conv
//!    autotuner actually chose for the geometry, and the pinned
//!    `engine_stream` row feeds the enforced `conv_stream_1t_speedup`
//!    criterion.
//! 3. **End-to-end** — `ReActNet::tiny` forward over a batch:
//!    `forward_scalar` per image vs `forward_batch` across the ladder.
//! 4. **Compressed e2e** — deploy a wide graph-IR ReActNet container
//!    (at scale 1.0 the late blocks are 512-channel 3×3 convs, so the
//!    records dominate the container and decode cost is real) and run
//!    the batch forward three ways, all asserted bit-exact first:
//!    offline decompress→pack→forward, the streaming decode path
//!    (stream → packed lane words → engine, no intermediate
//!    `[K, C, 3, 3]` tensor), and the compressed-domain path (stream →
//!    dedup sequence bank → memoized bank kernel, no dense weight form
//!    at all). The section records the deployed records' cross-filter
//!    dedup ratio and the decode-table hit rate `1 - unique/total` the
//!    skew buys a hardware decode unit.
//! 5. **Arch e2e** — every built-in graph-IR architecture
//!    (`reactnet`/`vggsmall`/`resnetlite`) through the graph executor,
//!    each asserted bit-exact against its scalar walk before timing.
//! 6. **Integrity** — `read_model_container` (verifies the v3 record,
//!    graph, and container digests) vs `read_model_container_unverified`
//!    on the same bytes, plus the raw `bkh128` digest throughput for
//!    attribution. The derived criterion is enforced: a verified load
//!    may cost at most 1.10x the unverified load, which is what makes
//!    mandatory-by-default verification tenable.
//! 7. **Parallel scaling** — the engine against *itself*: representative
//!    GEMM / conv / batched-forward workloads timed at every ladder
//!    thread count against the same engine at 1 thread. The persistent
//!    worker pool plus the `min_work` inline fallback must make
//!    multi-thread configurations no slower than single-thread on any
//!    host (1-core containers included), and the derived
//!    `parallel_scaling` criteria gate on exactly that: if any
//!    multi-thread ratio falls below its floor, perfsuite exits nonzero,
//!    failing CI.
//! 8. **Serving** — the `bnnkc serve` daemon core (in process, no
//!    socket): closed-loop client threads calling `infer_blocking`
//!    against the coalescing batch queue, versus the same server forced
//!    to batch 1. Served logits are asserted bit-exact against the
//!    offline oracle before timing. The derived criteria are enforced:
//!    coalescing must win at the top concurrency when the resolved
//!    batch capacity is ≥ 2 (on a host whose capacity clamps to 1 the
//!    two configurations run byte-identical code, so the measurement is
//!    reused and the gate is the parity floor, exactly like the
//!    thread-ladder reuse), and the p99/p50 latency tail must stay
//!    under its ceiling — coalescing may not starve single requests.
//!
//! Every engine configuration is asserted bit-exact against its baseline
//! before being timed. Thread-ladder entries whose *effective* thread
//! count (requested, clamped by the hardware parallelism — the same clamp
//! `ExecPolicy::effective_threads` applies) matches an already-measured
//! entry reuse its measurement: the two configurations run byte-identical
//! code, and re-timing identical code minutes apart would record ambient
//! scheduler drift as a phantom thread-scaling difference. On a host with
//! at least 8 cores every ladder entry is a genuine measurement.
//! Results are printed as a table and written to
//! `BENCH_perf.json` (schema `bnnkc-perfsuite/v6`; override the path with
//! `--out PATH`), then the file is re-read through [`bench::perfjson`] and
//! structurally validated, so CI's `--smoke` run proves the tracked
//! artifact stays parseable.
//!
//! `bnnkc-perfsuite/v6` adds the streaming direct-conv lowering to the
//! conv section (`engine_stream`, pinned via `ConvMode::Stream`), labels
//! the auto `engine` rows with the lowering the conv autotuner chose,
//! records every conv selection in a top-level `conv_selection` array
//! (geometry → stream/im2col, autotuned or forced), and adds two
//! enforced criteria: `conv_stream_1t_speedup` (streaming ≥ 1.0x im2col
//! on the gated 28×28/c64/k64 shape) and `e2e_1t_speedup` (the 1-thread
//! batch-32 floor the packed binary-domain edges and the stacked
//! weight-stationary batch schedule raised).
//!
//! `bnnkc-perfsuite/v5` adds the `serving` section (the `thr` column
//! there counts closed-loop client connections, not engine threads), its
//! `serving` stats object (`batch_capacity`, `concurrency`, `p50_ns`,
//! `p99_ns`), and the two enforced serving criteria.
//!
//! `bnnkc-perfsuite/v4` added the `dedup` object on `compressed_e2e`
//! (`ratio`, `table_hit_rate`), the bank deploy/exec entries, and raised
//! the enforced `compressed_stream_1t_speedup` floor to 1.15.
//!
//! Since `bnnkc-perfsuite/v3` every measurement records *which* backend
//! and kernel variant produced it: each entry carries a `backend` field
//! (`cpu` for the engine paths; the baselines are the frozen `scalar`
//! reference) and a `kernel` field naming the dispatched code path —
//! SIMD level plus the autotuned GEMM register blocking
//! (`avx512/gemm-4x4`), the direct conv (`avx2/conv-direct`), or the
//! fused graph walk (`avx512/fused-graph`). The document also records
//! the effective SIMD level and the autotuner's per-shape-class GEMM
//! selections, so a perf delta between two committed runs can be
//! attributed to a dispatch change instead of guessed at.
//!
//! Flags: `--smoke` (tiny shapes, CI-fast), `--out PATH`, `--seed N`,
//! `--threads N|auto` (cap the thread ladder at N — or at the hardware
//! parallelism with `auto`; the cap itself is always measured, and 0 is
//! rejected).

use bench::{arg_flag, arg_u64, perfjson, TablePrinter};
use bitnn::engine::Engine;
use bitnn::exec::{ConvMode, DedupMode, ExecPolicy, Lowering, IM2COL_MAX_CHANNELS};
use bitnn::graph::arch::{attach_weights, build_model, Arch};
use bitnn::graph::arch::{build_spec, sample_conv3_kernels};
use bitnn::infer::synthetic_batch;
use bitnn::model::ReActNet;
use bitnn::ops::conv::{conv2d_binary, Conv2dParams};
use bitnn::ops::gemm::{
    gemm_binary, gemm_binary_naive, gemm_kernel_name, warm_gemm_tables, PackedMatrix,
};
use bitnn::pack::{PackedActivations, PackedKernel};
use bitnn::simd;
use bitnn::tensor::{BitTensor, Tensor};
use bnnkc_serve::{InferSlot, ServeConfig, Server};
use kc_core::codec::KernelCodec;
use kc_core::container::{
    read_model_container, read_model_container_unverified, write_model_container_v3, Container,
};
use kc_core::digest::Digest;
use std::hint::black_box;
use std::time::Instant;

/// The default thread ladder (`--threads` caps it and appends the cap).
const DEFAULT_LADDER: [usize; 4] = [1, 2, 4, 8];

/// Floor for the parallel-scaling criteria: a multi-thread engine entry
/// may not be slower than 1/FLOOR of the 1-thread entry. The slack over
/// 1.0 absorbs timer noise on identical code paths (the 1-core inline
/// fallback), not real regressions.
const SCALING_FLOOR: f64 = 0.9;

/// Floor for the enforced integrity criterion: a digest-verified v3 load
/// may cost at most 1.10x the unverified load of the same bytes, i.e.
/// `unverified_ns / verified_ns` must stay at or above `1/1.10`. This is
/// the budget that keeps verification on by default.
const INTEGRITY_FLOOR: f64 = 1.0 / 1.10;

/// Floor for the enforced 1-thread end-to-end criterion: the batch-32
/// `forward_batch` speedup over the scalar walk at one thread. Raised
/// past the pre-v6 5.861x figure by the packed binary-domain edges (sign
/// writes lane words directly, no flat bit tensor and no per-conv
/// re-pack) and the blocked weight-stationary batch schedule (one plan
/// walk per cache-sized image block instead of one per image). Measured
/// 6.19x at the bump; the floor leaves ~5% headroom for host frequency
/// drift between full runs.
const E2E_1T_FLOOR: f64 = 5.9;

/// Ceiling for the enforced serving tail criterion: at the top client
/// concurrency, coalescing may stretch p99 latency to at most this
/// multiple of p50. Closed-loop queueing on a saturated host already
/// costs every request one batch of head-of-line wait, so the ceiling
/// bounds *starvation* (a request stranded across many flushes), not
/// ordinary queueing.
const TAIL_CEILING: f64 = 8.0;

/// Smoke-mode serving tail ceiling: smoke forwards are microseconds, so
/// a single scheduler preemption is many multiples of p50. The gate
/// still catches a stranded request (hundreds of multiples) without
/// tracking timer noise.
const TAIL_CEILING_SMOKE: f64 = 40.0;

/// One timed configuration. `backend`/`kernel` record which execution
/// backend and which dispatched kernel variant produced the number —
/// the v3 schema fields that let a perf delta between two committed
/// runs be attributed to a dispatch change.
struct Entry {
    name: &'static str,
    threads: usize,
    ns: f64,
    backend: &'static str,
    kernel: String,
}

/// Kernel label for a binary GEMM whose rows carry `k_bits` bits:
/// the effective SIMD level plus the register-blocking variant the
/// autotuner selected for that shape class (`avx512/gemm-4x4`), or the
/// dedicated short-row path for rows of ≤ 2 lanes.
fn gemm_kernel(k_bits: usize) -> String {
    format!(
        "{}/gemm-{}",
        simd::level(),
        gemm_kernel_name(k_bits.div_ceil(64))
    )
}

/// Kernel label for a 3×3 conv over `c` channels under `lowering`,
/// mirroring the engine's `Lowering::Auto` rule so the label names the
/// path that actually ran.
fn conv_kernel(c: usize, lowering: Lowering) -> String {
    match lowering {
        Lowering::Direct => format!("{}/conv-direct", simd::level()),
        Lowering::Im2col => gemm_kernel(c * 9),
        Lowering::Auto if c <= IM2COL_MAX_CHANNELS => conv_kernel(c, Lowering::Im2col),
        Lowering::Auto => conv_kernel(c, Lowering::Direct),
    }
}

/// Kernel label for whole-model forwards through the graph executor's
/// fused plan (mixed conv/GEMM/fusion kernels under one SIMD level).
fn fused_graph_kernel() -> String {
    format!("{}/fused-graph", simd::level())
}

/// Kernel label for the streaming shifted-window direct lowering.
fn stream_conv_kernel() -> String {
    format!("{}/conv-stream", simd::level())
}

/// Kernel label for the lowering the conv autotuner *actually chose* for
/// a benched stride-1 pad-1 3×3 geometry (v6: the `engine` rows name the
/// path that ran, not the static heuristic). Falls back to the legacy
/// heuristic label when no decision has been recorded yet.
fn chosen_conv_kernel(c: usize, hw: usize, kf: usize) -> String {
    let choice = simd::conv_choices().into_iter().find(|ch| {
        ch.source == simd::ChoiceSource::Autotuned
            && ch.geom.channels == c
            && ch.geom.filters == kf
            && ch.geom.h == hw
            && ch.geom.w == hw
            && ch.geom.stride == 1
            && ch.geom.pad == 1
    });
    match choice.map(|ch| ch.lowering) {
        Some(simd::ConvLowering::Stream) => stream_conv_kernel(),
        Some(simd::ConvLowering::Im2col) => gemm_kernel(c * 9),
        None => conv_kernel(c, Lowering::Auto),
    }
}

/// Sequence-skew statistics of a deployed container (schema v4): the
/// cross-filter dedup ratio of its records and the fraction of all
/// sequences a hardware decode unit would serve from its uncompressed
/// table (`1 - unique/total`).
struct DedupStats {
    ratio: f64,
    table_hit_rate: f64,
}

/// Serving-tier statistics (schema v5): the server's resolved coalescing
/// batch capacity and the per-request latency distribution tail at the
/// top client concurrency, which the enforced tail criterion gates on.
struct ServingStats {
    capacity: usize,
    concurrency: usize,
    p50_ns: f64,
    p99_ns: f64,
}

/// One benchmark tier.
struct Section {
    name: &'static str,
    config: String,
    baseline_name: &'static str,
    baseline_ns: f64,
    entries: Vec<Entry>,
    /// Dedup statistics, recorded by `compressed_e2e` only.
    dedup: Option<DedupStats>,
    /// Serving statistics, recorded by `serving` only.
    serving: Option<ServingStats>,
}

impl Section {
    fn entry_ns(&self, name: &str, threads: usize) -> f64 {
        self.entries
            .iter()
            .find(|e| e.name == name && e.threads == threads)
            .map(|e| e.ns)
            .unwrap_or(f64::NAN)
    }

    /// Worst multi-thread ratio `ns(name, 1) / ns(name, N)` over the
    /// ladder (`1.0` when the ladder has no multi-thread entry).
    fn scaling_floor_of(&self, name: &str) -> f64 {
        let t1 = self.entry_ns(name, 1);
        self.entries
            .iter()
            .filter(|e| e.name == name && e.threads > 1)
            .map(|e| t1 / e.ns)
            .fold(1.0f64, f64::min)
    }
}

/// One pass/fail criterion derived from the sections.
struct Criterion {
    name: &'static str,
    target: f64,
    measured: f64,
    /// Criteria that hard-fail the run when `measured < target` (the
    /// parallel-scaling gates).
    enforced: bool,
}

/// Build a ladder entry, reusing an earlier measurement whose *effective*
/// thread count — the requested count clamped by the hardware parallelism,
/// exactly as [`ExecPolicy::effective_threads`] clamps it — is the same.
/// Two such configurations run byte-identical code (the inline fallback),
/// so re-timing the second would only record scheduler drift as a phantom
/// difference between them. On a runner with ≥ 8 cores nothing is ever
/// reused: every ladder entry is a genuine measurement.
fn entry_reusing(
    entries: &[Entry],
    name: &'static str,
    threads: usize,
    kernel: String,
    measure: impl FnOnce() -> f64,
) -> Entry {
    let hw = std::thread::available_parallelism().map_or(1, usize::from);
    let ns = entries
        .iter()
        .find(|e| e.name == name && e.threads.min(hw) == threads.min(hw))
        .map(|e| e.ns)
        .unwrap_or_else(measure);
    Entry {
        name,
        threads,
        ns,
        backend: "cpu",
        kernel,
    }
}

/// Best-of-three mean wall time per iteration, with one warmup call.
fn time_ns<F: FnMut()>(iters: usize, mut f: F) -> f64 {
    f();
    let mut best = f64::INFINITY;
    for _ in 0..3 {
        let t = Instant::now();
        for _ in 0..iters {
            f();
        }
        best = best.min(t.elapsed().as_nanos() as f64 / iters as f64);
    }
    best
}

fn random_bits(shape: &[usize], seed: u64) -> BitTensor {
    let mut t = BitTensor::zeros(shape);
    let mut s = seed | 1;
    for i in 0..t.len() {
        s = s
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        if s >> 63 == 1 {
            t.set(i, true);
        }
    }
    t
}

fn random_bools(n: usize, seed: u64) -> Vec<bool> {
    let mut s = seed | 1;
    (0..n)
        .map(|_| {
            s = s
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            s >> 63 == 1
        })
        .collect()
}

fn engine(threads: usize, lowering: Lowering) -> Engine {
    Engine::new(ExecPolicy {
        threads,
        lowering,
        // Pinned so the tracked entries name the path they ran under,
        // regardless of any ambient BITNN_CONV override.
        conv: ConvMode::Auto,
        ..Default::default()
    })
}

fn bench_gemm(smoke: bool, seed: u64, ladder: &[usize]) -> Section {
    let (m, n, k, iters) = if smoke {
        (8usize, 6usize, 96usize, 3usize)
    } else {
        (96, 64, 1024, 30)
    };
    let a = PackedMatrix::from_bools(m, k, &random_bools(m * k, seed)).unwrap();
    let b = PackedMatrix::from_bools(n, k, &random_bools(n * k, seed ^ 0xBEEF)).unwrap();

    let expect = gemm_binary_naive(&a, &b).unwrap();
    assert_eq!(gemm_binary(&a, &b).unwrap(), expect, "tiled GEMM mismatch");

    let baseline_ns = time_ns(iters, || {
        black_box(gemm_binary_naive(black_box(&a), black_box(&b)).unwrap());
    });
    let mut entries = vec![Entry {
        name: "tiled",
        threads: 1,
        ns: time_ns(iters, || {
            black_box(gemm_binary(black_box(&a), black_box(&b)).unwrap());
        }),
        backend: "cpu",
        kernel: gemm_kernel(k),
    }];
    for &t in ladder {
        let eng = engine(t, Lowering::Auto);
        assert_eq!(eng.gemm(&a, &b).unwrap(), expect, "engine GEMM mismatch");
        let mut out = Vec::new();
        let entry = entry_reusing(&entries, "engine", t, gemm_kernel(k), || {
            time_ns(iters, || {
                eng.gemm_into(black_box(&a), black_box(&b), &mut out)
                    .unwrap();
                black_box(&out);
            })
        });
        entries.push(entry);
    }
    Section {
        name: "gemm_binary",
        config: format!("m={m} n={n} k={k}"),
        baseline_name: "naive_scalar",
        baseline_ns,
        entries,
        dedup: None,
        serving: None,
    }
}

fn bench_conv(smoke: bool, seed: u64, ladder: &[usize]) -> Section {
    let (c, hw, kf, iters) = if smoke {
        (8usize, 6usize, 8usize, 3usize)
    } else {
        (64, 28, 64, 20)
    };
    let params = Conv2dParams { stride: 1, pad: 1 };
    let acts = PackedActivations::pack(&random_bits(&[1, c, hw, hw], seed)).unwrap();
    let kernel = PackedKernel::pack(&random_bits(&[kf, c, 3, 3], seed ^ 0xF00D)).unwrap();

    let expect = conv2d_binary(&acts, &kernel, params).unwrap();
    let baseline_ns = time_ns(iters, || {
        black_box(conv2d_binary(black_box(&acts), black_box(&kernel), params).unwrap());
    });

    let mut entries: Vec<Entry> = Vec::new();
    let measure = |name: &'static str, eng: &Engine| {
        let mut scratch = bitnn::engine::ConvScratch::default();
        let got = eng
            .conv2d(&acts, (&kernel).into(), params, &mut scratch)
            .unwrap();
        assert_eq!(got.data(), expect.data(), "engine conv mismatch ({name})");
        time_ns(iters, || {
            black_box(
                eng.conv2d(
                    black_box(&acts),
                    black_box(&kernel).into(),
                    params,
                    &mut scratch,
                )
                .unwrap(),
            );
        })
    };
    for (name, lowering) in [
        ("engine_direct", Lowering::Direct),
        ("engine_im2col", Lowering::Im2col),
    ] {
        entries.push(Entry {
            name,
            threads: 1,
            ns: measure(name, &engine(1, lowering)),
            backend: "cpu",
            kernel: conv_kernel(c, lowering),
        });
    }
    // v6: the streaming shifted-window lowering, pinned via
    // `ConvMode::Stream` — the enforced `conv_stream_1t_speedup`
    // criterion compares this row against `engine_im2col`.
    let stream_engine = Engine::new(ExecPolicy {
        threads: 1,
        lowering: Lowering::Auto,
        conv: ConvMode::Stream,
        ..Default::default()
    });
    entries.push(Entry {
        name: "engine_stream",
        threads: 1,
        ns: measure("engine_stream", &stream_engine),
        backend: "cpu",
        kernel: stream_conv_kernel(),
    });
    // Tune the auto decision before the ladder is timed so every
    // `engine` row is labeled with the lowering that actually ran.
    {
        let eng = engine(1, Lowering::Auto);
        let mut scratch = bitnn::engine::ConvScratch::default();
        let _ = eng
            .conv2d(&acts, (&kernel).into(), params, &mut scratch)
            .unwrap();
    }
    let auto_kernel = chosen_conv_kernel(c, hw, kf);
    for &t in ladder {
        let entry = entry_reusing(&entries, "engine", t, auto_kernel.clone(), || {
            measure("engine", &engine(t, Lowering::Auto))
        });
        entries.push(entry);
    }
    Section {
        name: "conv2d_3x3",
        config: format!("c={c} h=w={hw} kf={kf} stride=1 pad=1"),
        baseline_name: "direct_scalar",
        baseline_ns,
        entries,
        dedup: None,
        serving: None,
    }
}

fn bench_e2e(smoke: bool, seed: u64, ladder: &[usize]) -> Section {
    // Batch 32 is the serving shape: large enough that batch-level
    // parallelism amortizes the way it would under sustained traffic.
    let (batch, iters) = if smoke { (2usize, 1usize) } else { (32, 4) };
    let model = ReActNet::tiny(seed);
    let inputs = synthetic_batch(batch, 3, 32, seed ^ 0xACE);

    let expect: Vec<_> = inputs.iter().map(|x| model.forward_scalar(x)).collect();
    let baseline_ns = time_ns(iters, || {
        for x in &inputs {
            black_box(model.forward_scalar(black_box(x)));
        }
    });

    let mut entries: Vec<Entry> = Vec::new();
    for &t in ladder {
        let eng = engine(t, Lowering::Auto);
        let got = model.forward_batch(&inputs, &eng);
        for (g, e) in got.iter().zip(&expect) {
            assert_eq!(g.data(), e.data(), "engine forward mismatch at {t} threads");
        }
        let entry = entry_reusing(&entries, "engine_batch", t, fused_graph_kernel(), || {
            time_ns(iters, || {
                black_box(model.forward_batch(black_box(&inputs), &eng));
            })
        });
        entries.push(entry);
    }
    Section {
        name: "reactnet_tiny_forward",
        config: format!("batch={batch} image=32x32"),
        baseline_name: "forward_scalar",
        baseline_ns,
        entries,
        dedup: None,
        serving: None,
    }
}

fn bench_compressed(smoke: bool, seed: u64, ladder: &[usize]) -> Section {
    // Wide geometry on full runs: at scale 1.0 the late ReActNet blocks
    // are 512-channel 3×3 convs, so the records dominate the container
    // (megabytes, not kilobytes), decode cost is real, and the sequence
    // table is at its paper-like skew.
    let (scale, image, batch, iters) = if smoke {
        (0.0625f64, 16usize, 1usize, 1usize)
    } else {
        (1.0, 32, 4, 3)
    };
    let codec = KernelCodec::paper_clustered();
    let spec = build_spec(Arch::ReActNet, scale, image).expect("build spec");
    let compressed: Vec<_> = sample_conv3_kernels(&spec, seed ^ 0xC0DE)
        .expect("sample kernels")
        .iter()
        .map(|k| codec.compress(k).expect("compress"))
        .collect();
    let bytes = write_model_container_v3(&spec, &compressed).expect("write v3");
    let containers = read_model_container(&bytes)
        .expect("parse model container")
        .kernels;
    let inputs = synthetic_batch(batch, 3, image, seed ^ 0xFEED);
    let template = build_model(Arch::ReActNet, scale, image, seed ^ 0xA11C).expect("build model");

    // Sequence-skew statistics of the deployed records: a hardware
    // decode unit serves `1 - unique/total` of all sequences from its
    // uncompressed table instead of re-decoding them.
    let banks: Vec<_> = containers
        .iter()
        .map(|c| c.decode_bank().expect("bank decode"))
        .collect();
    let total: u64 = banks.iter().map(|b| b.total_count() as u64).sum();
    let unique: u64 = banks.iter().map(|b| b.unique_count() as u64).sum();
    let dedup = DedupStats {
        ratio: total as f64 / unique as f64,
        table_hit_rate: 1.0 - unique as f64 / total as f64,
    };

    // The dedup mode is pinned per entry (never read from the ambient
    // `BITNN_DEDUP`) so the tracked numbers name the path they ran.
    let eng = |threads: usize, dedup: DedupMode| {
        Engine::new(ExecPolicy {
            threads,
            lowering: Lowering::Auto,
            conv: ConvMode::Auto,
            dedup,
            ..Default::default()
        })
    };

    // Deploy closures: the baseline decompresses each kernel to a flat
    // tensor and re-packs it; the streaming path goes stream → packed
    // lane words → engine with no intermediate tensor; the bank path
    // goes stream → dedup sequence bank and never builds a dense form.
    let deploy_offline = |containers: &[Container]| {
        let mut m = template.clone();
        for (i, c) in containers.iter().enumerate() {
            m.set_conv3_weights(i, c.decode_kernel().expect("offline decode"))
                .expect("container matches spec");
        }
        m
    };
    let deploy_streamed = |containers: &[Container]| {
        let mut m = template.clone();
        for (i, c) in containers.iter().enumerate() {
            m.set_conv3_packed(i, c.decode_packed().expect("stream decode"))
                .expect("container matches spec");
        }
        m
    };
    let deploy_banked = |containers: &[Container]| {
        let mut m = template.clone();
        for (i, c) in containers.iter().enumerate() {
            m.set_conv3_bank(i, c.decode_bank().expect("bank decode"))
                .expect("container matches spec");
        }
        m
    };

    let eng1 = eng(1, DedupMode::Auto);
    let eng_bank1 = eng(1, DedupMode::On);
    let expect = deploy_offline(&containers)
        .forward_batch(&inputs, &eng1)
        .expect("offline forward");
    let checks = [
        (
            "streamed",
            deploy_streamed(&containers).forward_batch(&inputs, &eng1),
        ),
        (
            "bank",
            deploy_banked(&containers).forward_batch(&inputs, &eng_bank1),
        ),
    ];
    for (what, got) in checks {
        for (g, e) in got.expect("deploy forward").iter().zip(&expect) {
            assert_eq!(g.data(), e.data(), "{what} deployment logits mismatch");
        }
    }

    let baseline_ns = time_ns(iters, || {
        let m = deploy_offline(&containers);
        black_box(m.forward_batch(black_box(&inputs), &eng1).unwrap());
    });
    // Deploy-only triple: these entries are each other's like-for-like
    // comparison (their speedup_vs_baseline fields are against the
    // deploy+forward baseline, so compare them to each other instead).
    let mut entries = vec![
        Entry {
            name: "offline_deploy",
            threads: 1,
            ns: time_ns(iters, || {
                black_box(deploy_offline(black_box(&containers)));
            }),
            backend: "cpu",
            kernel: "container-decode".into(),
        },
        Entry {
            name: "stream_deploy",
            threads: 1,
            ns: time_ns(iters, || {
                black_box(deploy_streamed(black_box(&containers)));
            }),
            backend: "cpu",
            kernel: "container-stream-decode".into(),
        },
        Entry {
            name: "bank_deploy",
            threads: 1,
            ns: time_ns(iters, || {
                black_box(deploy_banked(black_box(&containers)));
            }),
            backend: "cpu",
            kernel: "container-bank-decode".into(),
        },
        // Compressed-domain end-to-end: weights stay a dedup sequence
        // bank from decode through the memoized kernel.
        Entry {
            name: "bank_deploy_forward",
            threads: 1,
            ns: time_ns(iters, || {
                let m = deploy_banked(black_box(&containers));
                black_box(m.forward_batch(black_box(&inputs), &eng_bank1).unwrap());
            }),
            backend: "cpu",
            kernel: format!("{}/fused-graph+bank-memo", simd::level()),
        },
    ];
    for &t in ladder {
        let eng_t = eng(t, DedupMode::Auto);
        let entry = entry_reusing(
            &entries,
            "stream_deploy_forward",
            t,
            fused_graph_kernel(),
            || {
                time_ns(iters, || {
                    let m = deploy_streamed(black_box(&containers));
                    black_box(m.forward_batch(black_box(&inputs), &eng_t).unwrap());
                })
            },
        );
        entries.push(entry);
    }
    Section {
        name: "compressed_e2e",
        config: format!(
            "reactnet scale={scale} image={image} batch={batch}, {} kernels, {} B v3",
            containers.len(),
            bytes.len()
        ),
        baseline_name: "offline_decode_forward",
        baseline_ns,
        entries,
        dedup: Some(dedup),
        serving: None,
    }
}

/// Per-architecture graph-executor end-to-end: each built-in family's
/// batch forward at 1/4 threads, against the summed scalar-walk baseline.
fn bench_arch_e2e(smoke: bool, seed: u64) -> Section {
    let (image, batch, iters) = if smoke {
        (16usize, 2usize, 1usize)
    } else {
        (32, 8, 3)
    };
    let scale = 0.0625;
    let mut baseline_ns = 0.0;
    let mut entries = Vec::new();
    for arch in Arch::ALL {
        let model = build_model(arch, scale, image, seed ^ 0xA2C4).expect("build model");
        let inputs = synthetic_batch(batch, 3, image, seed ^ 0x11E);
        let expect: Vec<_> = inputs
            .iter()
            .map(|x| model.forward_scalar(x).expect("scalar walk"))
            .collect();
        baseline_ns += time_ns(iters, || {
            for x in &inputs {
                black_box(model.forward_scalar(black_box(x)).unwrap());
            }
        });
        for t in [1usize, 4] {
            let eng = engine(t, Lowering::Auto);
            let got = model.forward_batch(&inputs, &eng).expect("batch forward");
            for (g, e) in got.iter().zip(&expect) {
                assert_eq!(
                    g.data(),
                    e.data(),
                    "{arch} executor mismatch at {t} threads"
                );
            }
            let entry = entry_reusing(&entries, arch.name(), t, fused_graph_kernel(), || {
                time_ns(iters, || {
                    black_box(model.forward_batch(black_box(&inputs), &eng).unwrap());
                })
            });
            entries.push(entry);
        }
    }
    Section {
        name: "arch_e2e",
        config: format!("scale={scale} image={image}x{image} batch={batch}"),
        baseline_name: "forward_scalar_all_archs",
        baseline_ns,
        entries,
        dedup: None,
        serving: None,
    }
}

/// Verified vs unverified v3 container loads on the same byte image,
/// plus the raw `bkh128` throughput over those bytes so a regression can
/// be attributed to the hash itself vs the read path around it. The
/// derived `integrity_verified_load` criterion is enforced on full runs:
/// verification may cost at most 1.10x the unverified load.
fn bench_integrity(smoke: bool, seed: u64) -> Section {
    let (scale, image, iters) = if smoke {
        (0.0625, 16usize, 50usize)
    } else {
        (0.25, 32, 200)
    };
    let codec = KernelCodec::paper_clustered();
    let spec = build_spec(Arch::ReActNet, scale, image).expect("build spec");
    let compressed: Vec<_> = sample_conv3_kernels(&spec, seed ^ 0xD16E)
        .expect("sample kernels")
        .iter()
        .map(|k| codec.compress(k).expect("compress"))
        .collect();
    let bytes = write_model_container_v3(&spec, &compressed).expect("write v3");

    // The two paths must agree on the model before either is timed.
    let verified = read_model_container(&bytes).expect("verified load");
    let unverified = read_model_container_unverified(&bytes).expect("unverified load");
    assert_eq!(verified.spec, unverified.spec, "load paths disagree");
    assert_eq!(
        verified.record_digests(),
        unverified.record_digests(),
        "load paths disagree on records"
    );

    let baseline_ns = time_ns(iters, || {
        black_box(read_model_container_unverified(black_box(&bytes)).unwrap());
    });
    let entries = vec![
        Entry {
            name: "verified_read",
            threads: 1,
            ns: time_ns(iters, || {
                black_box(read_model_container(black_box(&bytes)).unwrap());
            }),
            backend: "cpu",
            kernel: "container-read/bkh128".into(),
        },
        Entry {
            name: "digest_only",
            threads: 1,
            ns: time_ns(iters, || {
                black_box(Digest::of(black_box(&bytes)));
            }),
            backend: "cpu",
            kernel: "bkh128".into(),
        },
    ];
    Section {
        name: "integrity",
        config: format!("reactnet scale={scale} image={image}, {} B v3", bytes.len()),
        baseline_name: "unverified_read",
        baseline_ns,
        entries,
        dedup: None,
        serving: None,
    }
}

/// Engine-vs-itself thread scaling on workloads big enough to cross the
/// `min_work` threshold: the persistent worker pool (or, on hosts with
/// fewer cores than requested threads, the inline fallback) must keep
/// every multi-thread configuration at or above [`SCALING_FLOOR`] of the
/// 1-thread wall time. These are the entries the enforced
/// `parallel_scaling` criteria are derived from.
fn bench_parallel_scaling(smoke: bool, seed: u64, ladder: &[usize]) -> Section {
    // Iteration counts are higher than the other sections': the criteria
    // derived here compare near-identical times, so the readings must be
    // stable to a couple percent.
    let (gm, gn, gk, giters) = if smoke {
        (48usize, 32usize, 1024usize, 40usize)
    } else {
        (128, 96, 2048, 12)
    };
    let (cc, chw, ckf, citers) = if smoke {
        (32usize, 14usize, 32usize, 30usize)
    } else {
        (96, 28, 96, 8)
    };
    let (batch, eiters) = if smoke { (4usize, 5usize) } else { (16, 4) };

    let a = PackedMatrix::from_bools(gm, gk, &random_bools(gm * gk, seed ^ 0x5CA1)).unwrap();
    let b = PackedMatrix::from_bools(gn, gk, &random_bools(gn * gk, seed ^ 0x5CA2)).unwrap();
    let gemm_expect = gemm_binary_naive(&a, &b).unwrap();

    let params = Conv2dParams { stride: 1, pad: 1 };
    let acts = PackedActivations::pack(&random_bits(&[1, cc, chw, chw], seed ^ 0x5CA3)).unwrap();
    let kernel = PackedKernel::pack(&random_bits(&[ckf, cc, 3, 3], seed ^ 0x5CA4)).unwrap();
    let conv_expect = conv2d_binary(&acts, &kernel, params).unwrap();

    let model = ReActNet::tiny(seed ^ 0x5CA5);
    let inputs = synthetic_batch(batch, 3, 32, seed ^ 0x5CA6);
    let e2e_expect: Vec<_> = inputs.iter().map(|x| model.forward_scalar(x)).collect();

    let mut entries: Vec<Entry> = Vec::new();
    for &t in ladder {
        let eng = engine(t, Lowering::Auto);

        assert_eq!(eng.gemm(&a, &b).unwrap(), gemm_expect, "gemm @ {t}t");
        let mut out = Vec::new();
        let entry = entry_reusing(&entries, "gemm", t, gemm_kernel(gk), || {
            time_ns(giters, || {
                eng.gemm_into(black_box(&a), black_box(&b), &mut out)
                    .unwrap();
                black_box(&out);
            })
        });
        entries.push(entry);

        let mut scratch = bitnn::engine::ConvScratch::default();
        let got = eng
            .conv2d(&acts, (&kernel).into(), params, &mut scratch)
            .unwrap();
        assert_eq!(got.data(), conv_expect.data(), "conv @ {t}t");
        let entry = entry_reusing(
            &entries,
            "conv3x3",
            t,
            // The oracle dispatch above already tuned this geometry, so
            // the label names the lowering the timed runs actually use.
            chosen_conv_kernel(cc, chw, ckf),
            || {
                time_ns(citers, || {
                    black_box(
                        eng.conv2d(
                            black_box(&acts),
                            black_box(&kernel).into(),
                            params,
                            &mut scratch,
                        )
                        .unwrap(),
                    );
                })
            },
        );
        entries.push(entry);

        let got = model.forward_batch(&inputs, &eng);
        for (g, e) in got.iter().zip(&e2e_expect) {
            assert_eq!(g.data(), e.data(), "e2e @ {t}t");
        }
        let entry = entry_reusing(&entries, "e2e", t, fused_graph_kernel(), || {
            time_ns(eiters, || {
                black_box(model.forward_batch(black_box(&inputs), &eng));
            })
        });
        entries.push(entry);
    }
    let baseline_ns = entries
        .iter()
        .filter(|e| e.threads == 1)
        .map(|e| e.ns)
        .sum();
    Section {
        name: "parallel_scaling",
        config: format!(
            "gemm {gm}x{gn} k={gk}; conv c={cc} hw={chw} kf={ckf}; e2e tiny batch={batch}"
        ),
        baseline_name: "engine_1t_total",
        baseline_ns,
        entries,
        dedup: None,
        serving: None,
    }
}

/// One closed-loop serving measurement: throughput as wall-clock
/// ns/request over every request issued, plus the merged per-request
/// latency percentiles the tail criterion gates on.
#[derive(Clone, Copy)]
struct ServeRun {
    ns_per_req: f64,
    p50_ns: f64,
    p99_ns: f64,
}

/// Drive `server` with `conns` closed-loop client threads, each issuing
/// `per_conn` blocking requests (after a one-request-per-connection
/// warmup that sizes the request cells, queue storage, and worker batch
/// scratch). Inputs are striped across connections so concurrent
/// batches mix images, the way real traffic would.
fn run_serve_load(server: &Server, conns: usize, per_conn: usize, inputs: &[Tensor]) -> ServeRun {
    std::thread::scope(|s| {
        for c in 0..conns {
            let x = &inputs[c % inputs.len()];
            s.spawn(move || {
                let mut slot = InferSlot::new();
                let mut out = Tensor::default();
                server
                    .infer_blocking("m", &mut slot, x, &mut out)
                    .expect("warmup infer");
            });
        }
    });
    let t0 = Instant::now();
    let mut lats: Vec<u64> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..conns)
            .map(|c| {
                s.spawn(move || {
                    let mut slot = InferSlot::new();
                    let mut out = Tensor::default();
                    let mut lats = Vec::with_capacity(per_conn);
                    for i in 0..per_conn {
                        let x = &inputs[(c + i * conns) % inputs.len()];
                        let t = Instant::now();
                        server
                            .infer_blocking("m", &mut slot, x, &mut out)
                            .expect("timed infer");
                        lats.push(t.elapsed().as_nanos() as u64);
                    }
                    lats
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("client thread"))
            .collect()
    });
    let wall = t0.elapsed().as_nanos() as f64;
    lats.sort_unstable();
    let pct = |p: f64| lats[((lats.len() - 1) as f64 * p) as usize] as f64;
    ServeRun {
        ns_per_req: wall / (conns * per_conn) as f64,
        p50_ns: pct(0.50),
        p99_ns: pct(0.99),
    }
}

/// The serving tier: the daemon core under closed-loop concurrent load —
/// the coalescing batch queue versus the same server forced to batch 1,
/// both asserted bit-exact against the offline decode oracle before any
/// timing. The `threads` column of these entries counts client
/// connections, not engine threads (the engine runs the default policy
/// in both configurations). When the server's resolved batch capacity is
/// 1 — a 1-core host, where `preferred_batch` clamps to the hardware —
/// the coalesced top-concurrency configuration runs byte-identical code
/// to the forced-batch-1 baseline, so its measurement is reused exactly
/// like the thread-ladder entries reuse theirs.
fn bench_serving(smoke: bool, seed: u64) -> Section {
    let (image, per_conn) = if smoke { (16usize, 8usize) } else { (32, 48) };
    const TOP_CONCURRENCY: usize = 16;
    let scale = 0.0625;
    let codec = KernelCodec::paper_clustered();
    let spec = build_spec(Arch::VggSmall, scale, image).expect("build spec");
    let compressed: Vec<_> = sample_conv3_kernels(&spec, seed ^ 0x5E12)
        .expect("sample kernels")
        .iter()
        .map(|k| codec.compress(k).expect("compress"))
        .collect();
    let bytes = write_model_container_v3(&spec, &compressed).expect("write v3");
    let inputs = synthetic_batch(16, 3, image, seed ^ 0x10AD);

    // The independent oracle: offline decompress-and-pack deployment,
    // forwarded on a single-threaded engine (the `bnnkc run --offline`
    // reference path).
    let expect: Vec<Vec<u32>> = {
        let parsed = read_model_container(&bytes).expect("parse container");
        let mut graph = attach_weights(&spec, seed).expect("attach weights");
        for (i, c) in parsed.kernels.iter().enumerate() {
            graph
                .set_conv3_weights(i, c.decode_kernel().expect("decode kernel"))
                .expect("container matches spec");
        }
        graph
            .forward_batch(&inputs, &Engine::single_threaded())
            .expect("oracle forward")
            .iter()
            .map(|t| t.data().iter().map(|v| v.to_bits()).collect())
            .collect()
    };

    // Both configurations must serve bit-exact logits before timing.
    let mk_server = |max_batch: usize| {
        let server = Server::new(ServeConfig {
            // Conv lowering pinned to the autotuner so an ambient
            // `BITNN_CONV` can't skew the tracked serving numbers.
            policy: ExecPolicy {
                conv: ConvMode::Auto,
                ..Default::default()
            },
            max_batch,
            seed,
            image,
            ..Default::default()
        });
        server.register_bytes("m", &bytes).expect("register model");
        let mut slot = InferSlot::new();
        let mut out = Tensor::default();
        for (x, want) in inputs.iter().zip(&expect) {
            server
                .infer_blocking("m", &mut slot, x, &mut out)
                .expect("serve infer");
            let got: Vec<u32> = out.data().iter().map(|v| v.to_bits()).collect();
            assert_eq!(&got, want, "served logits diverge from the oracle");
        }
        server
    };
    let coalesced = mk_server(0); // auto: the per-plan preferred batch
    let batch1 = mk_server(1);
    let capacity = coalesced.stats_report().models[0].max_batch as usize;
    let serve_kernel = || format!("{}/fused-graph+coalesce", simd::level());

    let base = run_serve_load(&batch1, TOP_CONCURRENCY, per_conn, &inputs);
    let mut entries = Vec::new();
    for conns in [1usize, 4] {
        let run = run_serve_load(&coalesced, conns, per_conn, &inputs);
        entries.push(Entry {
            name: "serve_coalesced",
            threads: conns,
            ns: run.ns_per_req,
            backend: "cpu",
            kernel: serve_kernel(),
        });
    }
    let top = if capacity == 1 {
        // Byte-identical to the baseline at capacity 1: reuse it rather
        // than recording scheduler drift as a phantom coalescing delta.
        base
    } else {
        run_serve_load(&coalesced, TOP_CONCURRENCY, per_conn, &inputs)
    };
    entries.push(Entry {
        name: "serve_coalesced",
        threads: TOP_CONCURRENCY,
        ns: top.ns_per_req,
        backend: "cpu",
        kernel: serve_kernel(),
    });
    coalesced.shutdown();
    batch1.shutdown();

    Section {
        name: "serving",
        config: format!(
            "vggsmall scale={scale} image={image}, {per_conn} reqs/conn, \
             batch capacity {capacity}, thr = client connections"
        ),
        baseline_name: "serve_batch1_c16",
        baseline_ns: base.ns_per_req,
        entries,
        dedup: None,
        serving: Some(ServingStats {
            capacity,
            concurrency: TOP_CONCURRENCY,
            p50_ns: top.p50_ns,
            p99_ns: top.p99_ns,
        }),
    }
}

/// Combined 4-thread arch_e2e wall time: the sum of the three real
/// per-architecture measurements (the criteria denominator).
fn arch_e2e_total_4t(archs: &Section) -> f64 {
    Arch::ALL.iter().map(|a| archs.entry_ns(a.name(), 4)).sum()
}

/// Derive every tracked criterion from the measured sections. The
/// parallel-scaling ones are enforced: perfsuite exits nonzero when any
/// of them misses its floor. The GEMM floors are enforced on full runs
/// only — smoke shapes are too small to reflect the tuned kernels, so
/// gating them there would track noise, not dispatch quality.
fn criteria(sections: &[Section], smoke: bool) -> Vec<Criterion> {
    let gemm = &sections[0];
    let conv = &sections[1];
    let e2e = &sections[2];
    let comp = &sections[3];
    let archs = &sections[4];
    let integrity = &sections[5];
    let scaling = &sections[6];
    let serving = &sections[7];
    let sv = serving
        .serving
        .as_ref()
        .expect("serving section records its stats");
    let c = |name, target, measured| Criterion {
        name,
        target,
        measured,
        enforced: false,
    };
    let gate = |name, measured| Criterion {
        name,
        target: SCALING_FLOOR,
        measured,
        enforced: true,
    };
    let e2e_top = e2e.entries.iter().map(|e| e.threads).max().unwrap_or(1);
    vec![
        // GEMM floors, gated on full runs: raised from the pre-backend
        // 1.5 once the per-shape SIMD dispatch + autotuner landed. The
        // engine floor sits above the 2.33x the old single-variant
        // kernel measured, so a dispatch regression to it fails the run.
        Criterion {
            name: "gemm_tiled_1t_speedup",
            target: 1.8,
            measured: gemm.baseline_ns / gemm.entry_ns("tiled", 1),
            enforced: !smoke,
        },
        Criterion {
            name: "gemm_engine_1t_speedup",
            target: 2.4,
            measured: gemm.baseline_ns / gemm.entry_ns("engine", 1),
            enforced: !smoke,
        },
        // Enforced: the streaming shifted-window lowering must at least
        // match im2col on the gated 28×28/c64→k64 geometry — the shape
        // the conv autotuner's default decision is anchored on. Smoke
        // conv shapes are too small for the window reuse to show.
        Criterion {
            name: "conv_stream_1t_speedup",
            target: 1.0,
            measured: conv.entry_ns("engine_im2col", 1) / conv.entry_ns("engine_stream", 1),
            enforced: !smoke,
        },
        // Best-ladder engine batch forward vs the scalar walk.
        c(
            "e2e_max_threads_speedup",
            4.0,
            e2e.baseline_ns / e2e.entry_ns("engine_batch", e2e_top),
        ),
        // Enforced: the single-thread batch forward (per-sample
        // quantization + packed binary edges + the weight-stationary
        // stacked schedule) must hold the floor the streaming PR
        // raised it past. Full runs only: smoke models are too small
        // for the packed-edge savings to dominate dispatch overhead.
        Criterion {
            name: "e2e_1t_speedup",
            target: E2E_1T_FLOOR,
            measured: e2e.baseline_ns / e2e.entry_ns("engine_batch", 1),
            enforced: !smoke,
        },
        // Enforced: compression must pay for itself end-to-end. On the
        // wide container the streamed deploy+forward beats the offline
        // decompress-then-pack deployment by well over the 1.15 floor;
        // smoke containers are kilobytes, too small to gate on.
        Criterion {
            name: "compressed_stream_1t_speedup",
            target: 1.15,
            measured: comp.baseline_ns / comp.entry_ns("stream_deploy_forward", 1),
            enforced: !smoke,
        },
        // Compressed-domain execution (bank deploy + memoized kernel,
        // no dense weight form ever built) must at least match the
        // offline deployment end-to-end.
        c(
            "compressed_bank_exec_vs_offline",
            1.0,
            comp.baseline_ns / comp.entry_ns("bank_deploy_forward", 1),
        ),
        // Like-for-like deployment: stream decode vs offline
        // decompress+pack.
        c(
            "stream_deploy_vs_offline_deploy",
            1.5,
            comp.entry_ns("offline_deploy", 1) / comp.entry_ns("stream_deploy", 1),
        ),
        // The graph executor must beat the scalar walk across every
        // built-in architecture combined.
        c(
            "arch_e2e_4t_speedup",
            1.5,
            archs.baseline_ns / arch_e2e_total_4t(archs),
        ),
        // Enforced: digest verification on load must stay within its
        // 1.10x budget of the unverified read — the cost of making v3
        // integrity checks mandatory by default. Smoke containers are a
        // few KB, where fixed parse overhead hides the hash; only full
        // runs measure a container big enough to gate on.
        Criterion {
            name: "integrity_verified_load",
            target: INTEGRITY_FLOOR,
            measured: integrity.baseline_ns / integrity.entry_ns("verified_read", 1),
            enforced: !smoke,
        },
        // Enforced: N threads may never lose to 1 thread. The persistent
        // pool earns the wins on multi-core hosts; the min_work inline
        // fallback and the hardware clamp keep 1-core hosts at parity.
        gate("parallel_scaling_gemm", scaling.scaling_floor_of("gemm")),
        gate(
            "parallel_scaling_conv3x3",
            scaling.scaling_floor_of("conv3x3"),
        ),
        gate("parallel_scaling_e2e", scaling.scaling_floor_of("e2e")),
        // Enforced: batch coalescing must pay for itself under
        // concurrent load. The 1.5x floor applies when the server's
        // resolved batch capacity is ≥ 2 (smoke shapes are too small to
        // demand the full factor); on a host whose capacity clamps to 1
        // the coalesced and forced-batch-1 configurations run
        // byte-identical code and the measurement is reused, so the
        // gate is the parity floor, same as the parallel-scaling gates.
        Criterion {
            name: "serving_batch_throughput_gain",
            target: if sv.capacity >= 2 {
                if smoke {
                    1.2
                } else {
                    1.5
                }
            } else {
                SCALING_FLOOR
            },
            measured: serving.baseline_ns / serving.entry_ns("serve_coalesced", 16),
            enforced: true,
        },
        // Enforced: the latency tail at the top client concurrency.
        // Floor-style like the integrity budget: p50/p99 must stay at
        // or above 1/ceiling, i.e. coalescing may not strand a request
        // across many flush windows.
        Criterion {
            name: "serving_tail_ratio",
            target: 1.0
                / if smoke {
                    TAIL_CEILING_SMOKE
                } else {
                    TAIL_CEILING
                },
            measured: sv.p50_ns / sv.p99_ns,
            enforced: true,
        },
    ]
}

fn emit_json(sections: &[Section], crits: &[Criterion], mode: &str, out_path: &str) -> String {
    let mut s = String::new();
    s.push_str("{\n");
    s.push_str("  \"schema\": \"bnnkc-perfsuite/v6\",\n");
    s.push_str(&format!("  \"mode\": \"{}\",\n", perfjson::escape(mode)));
    s.push_str(&format!(
        "  \"threads_available\": {},\n",
        std::thread::available_parallelism().map_or(1, usize::from)
    ));
    // v3: the dispatch configuration every measurement below ran under —
    // the effective SIMD level and the autotuner's per-shape-class GEMM
    // register-blocking selections (warmed here so all three classes are
    // recorded even if a section happened not to touch one).
    s.push_str(&format!(
        "  \"simd_level\": \"{}\",\n",
        perfjson::escape(simd::level().name())
    ));
    s.push_str("  \"gemm_selection\": [\n");
    let choices = warm_gemm_tables();
    for (i, ch) in choices.iter().enumerate() {
        s.push_str(&format!(
            "    {{\"class\": \"{}\", \"variant\": \"{}\", \"source\": \"{}\"}}{}\n",
            perfjson::escape(ch.class.name()),
            perfjson::escape(ch.variant.name()),
            if ch.source == simd::ChoiceSource::Forced {
                "forced"
            } else {
                "autotuned"
            },
            if i + 1 == choices.len() { "" } else { "," }
        ));
    }
    s.push_str("  ],\n");
    // v6: the conv autotuner's per-geometry lowering decisions made
    // while the sections above ran (the conv section tunes the gated
    // geometry before its ladder, so this is never empty).
    s.push_str("  \"conv_selection\": [\n");
    let conv_choices = simd::conv_choices();
    for (i, ch) in conv_choices.iter().enumerate() {
        s.push_str(&format!(
            "    {{\"channels\": {}, \"filters\": {}, \"h\": {}, \"w\": {}, \"stride\": {}, \"pad\": {}, \"lowering\": \"{}\", \"source\": \"{}\"}}{}\n",
            ch.geom.channels,
            ch.geom.filters,
            ch.geom.h,
            ch.geom.w,
            ch.geom.stride,
            ch.geom.pad,
            perfjson::escape(ch.lowering.name()),
            if ch.source == simd::ChoiceSource::Forced {
                "forced"
            } else {
                "autotuned"
            },
            if i + 1 == conv_choices.len() { "" } else { "," }
        ));
    }
    s.push_str("  ],\n");
    s.push_str("  \"sections\": [\n");
    for (i, sec) in sections.iter().enumerate() {
        s.push_str("    {\n");
        s.push_str(&format!(
            "      \"name\": \"{}\",\n",
            perfjson::escape(sec.name)
        ));
        s.push_str(&format!(
            "      \"config\": \"{}\",\n",
            perfjson::escape(&sec.config)
        ));
        s.push_str(&format!(
            "      \"baseline\": {{\"name\": \"{}\", \"backend\": \"scalar\", \"ns_per_iter\": {:.1}}},\n",
            perfjson::escape(sec.baseline_name),
            sec.baseline_ns
        ));
        // v4: the compressed section records its container's sequence
        // skew alongside the timings it explains.
        if let Some(d) = &sec.dedup {
            s.push_str(&format!(
                "      \"dedup\": {{\"ratio\": {:.3}, \"table_hit_rate\": {:.3}}},\n",
                d.ratio, d.table_hit_rate
            ));
        }
        // v5: the serving section records its resolved batch capacity
        // and the latency tail the enforced criteria gate on.
        if let Some(sv) = &sec.serving {
            s.push_str(&format!(
                "      \"serving\": {{\"batch_capacity\": {}, \"concurrency\": {}, \"p50_ns\": {:.1}, \"p99_ns\": {:.1}}},\n",
                sv.capacity, sv.concurrency, sv.p50_ns, sv.p99_ns
            ));
        }
        s.push_str("      \"entries\": [\n");
        for (j, e) in sec.entries.iter().enumerate() {
            s.push_str(&format!(
                "        {{\"name\": \"{}\", \"backend\": \"{}\", \"kernel\": \"{}\", \"threads\": {}, \"ns_per_iter\": {:.1}, \"speedup_vs_baseline\": {:.3}}}{}\n",
                perfjson::escape(e.name),
                perfjson::escape(e.backend),
                perfjson::escape(&e.kernel),
                e.threads,
                e.ns,
                sec.baseline_ns / e.ns,
                if j + 1 == sec.entries.len() { "" } else { "," }
            ));
        }
        s.push_str("      ]\n");
        s.push_str(&format!(
            "    }}{}\n",
            if i + 1 == sections.len() { "" } else { "," }
        ));
    }
    s.push_str("  ],\n");
    s.push_str("  \"criteria\": [\n");
    for (i, c) in crits.iter().enumerate() {
        s.push_str(&format!(
            "    {{\"name\": \"{}\", \"target\": {}, \"measured\": {:.3}}}{}\n",
            perfjson::escape(c.name),
            c.target,
            c.measured,
            if i + 1 == crits.len() { "" } else { "," }
        ));
    }
    s.push_str("  ]\n");
    s.push_str("}\n");
    std::fs::write(out_path, &s).expect("write BENCH_perf.json");
    s
}

/// Structural validation of the emitted document (CI's `--smoke` gate).
fn validate(doc: &perfjson::Value) -> Result<(), String> {
    if doc.get("schema").and_then(|v| v.as_str()) != Some("bnnkc-perfsuite/v6") {
        return Err("missing or wrong schema tag".into());
    }
    if doc
        .get("simd_level")
        .and_then(|v| v.as_str())
        .is_none_or(str::is_empty)
    {
        return Err("missing simd_level".into());
    }
    let selection = doc
        .get("gemm_selection")
        .and_then(|v| v.as_arr())
        .ok_or("gemm_selection must be an array")?;
    if selection.len() != 3 {
        return Err(format!(
            "expected 3 gemm_selection entries (one per shape class), found {}",
            selection.len()
        ));
    }
    // v6: the conv autotuner's lowering decisions must be recorded, and
    // the conv section's pinned `engine_stream` run guarantees at least
    // the gated geometry appears.
    let conv_selection = doc
        .get("conv_selection")
        .and_then(|v| v.as_arr())
        .ok_or("conv_selection must be an array (v6)")?;
    if conv_selection.is_empty() {
        return Err("conv_selection must record at least one geometry".into());
    }
    for ch in conv_selection {
        let lowering = ch.get("lowering").and_then(|v| v.as_str()).unwrap_or("");
        if !matches!(lowering, "stream" | "im2col") {
            return Err(format!("conv_selection: bad lowering {lowering:?}"));
        }
    }
    let sections = doc
        .get("sections")
        .and_then(|v| v.as_arr())
        .ok_or("sections must be an array")?;
    if sections.len() != 8 {
        return Err(format!("expected 8 sections, found {}", sections.len()));
    }
    for sec in sections {
        let name = sec
            .get("name")
            .and_then(|v| v.as_str())
            .ok_or("section without a name")?;
        // v4: the compressed section must carry its dedup statistics.
        if name == "compressed_e2e" {
            let d = sec
                .get("dedup")
                .ok_or("compressed_e2e: missing dedup stats (v4)")?;
            let ratio = d.get("ratio").and_then(|v| v.as_f64()).unwrap_or(-1.0);
            let hit = d
                .get("table_hit_rate")
                .and_then(|v| v.as_f64())
                .unwrap_or(-1.0);
            if !(ratio.is_finite() && ratio >= 1.0) {
                return Err(format!("compressed_e2e: bad dedup ratio {ratio}"));
            }
            if !(0.0..=1.0).contains(&hit) {
                return Err(format!("compressed_e2e: bad table_hit_rate {hit}"));
            }
        }
        // v5: the serving section must carry its stats, and the tail
        // must be ordered (0 < p50 <= p99) with a real batch capacity.
        if name == "serving" {
            let sv = sec
                .get("serving")
                .ok_or("serving: missing serving stats (v5)")?;
            let cap = sv
                .get("batch_capacity")
                .and_then(|v| v.as_f64())
                .unwrap_or(-1.0);
            if cap < 1.0 {
                return Err(format!("serving: bad batch_capacity {cap}"));
            }
            let p50 = sv.get("p50_ns").and_then(|v| v.as_f64()).unwrap_or(-1.0);
            let p99 = sv.get("p99_ns").and_then(|v| v.as_f64()).unwrap_or(-1.0);
            if !(p50.is_finite() && p50 > 0.0 && p99 >= p50) {
                return Err(format!("serving: bad latency tail p50={p50} p99={p99}"));
            }
        }
        let base = sec
            .get("baseline")
            .and_then(|b| b.get("ns_per_iter"))
            .and_then(|v| v.as_f64())
            .ok_or_else(|| format!("section {name}: missing baseline ns"))?;
        if !(base.is_finite() && base > 0.0) {
            return Err(format!("section {name}: non-positive baseline ns"));
        }
        let entries = sec
            .get("entries")
            .and_then(|v| v.as_arr())
            .ok_or_else(|| format!("section {name}: entries must be an array"))?;
        if entries.is_empty() {
            return Err(format!("section {name}: no entries"));
        }
        for e in entries {
            let ns = e
                .get("ns_per_iter")
                .and_then(|v| v.as_f64())
                .unwrap_or(-1.0);
            let sp = e
                .get("speedup_vs_baseline")
                .and_then(|v| v.as_f64())
                .unwrap_or(-1.0);
            if !(ns.is_finite() && ns > 0.0 && sp.is_finite() && sp > 0.0) {
                return Err(format!("section {name}: malformed entry"));
            }
            // v3: every measurement names its backend and kernel path.
            for field in ["backend", "kernel"] {
                if e.get(field)
                    .and_then(|v| v.as_str())
                    .is_none_or(str::is_empty)
                {
                    return Err(format!("section {name}: entry without a {field}"));
                }
            }
        }
    }
    let criteria = doc
        .get("criteria")
        .and_then(|v| v.as_arr())
        .ok_or("criteria must be an array")?;
    if criteria.len() != 15 {
        return Err(format!("expected 15 criteria, found {}", criteria.len()));
    }
    Ok(())
}

/// Resolve `--threads N|auto` into the measured thread ladder: the
/// default ladder capped at the requested count, which is itself always
/// included. Exits with an error on `--threads 0` or garbage (same
/// grammar and messages as `bnnkc run`, via the engine's shared parser).
fn thread_ladder(args: &[String]) -> Vec<usize> {
    let requested = args
        .iter()
        .position(|a| a == "--threads")
        .and_then(|i| args.get(i + 1));
    if requested.is_none() {
        return DEFAULT_LADDER.to_vec();
    }
    let cap = match bitnn::exec::parse_thread_count(requested.map(String::as_str)) {
        Ok(n) => n,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(2);
        }
    };
    let mut ladder: Vec<usize> = DEFAULT_LADDER
        .iter()
        .copied()
        .filter(|&n| n <= cap)
        .collect();
    if !ladder.contains(&cap) {
        ladder.push(cap);
    }
    ladder.sort_unstable();
    ladder
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = arg_flag(&args, "--smoke");
    let seed = arg_u64(&args, "--seed", 0xBEEF);
    let ladder = thread_ladder(&args);
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "BENCH_perf.json".to_string());
    let mode = if smoke { "smoke" } else { "full" };

    println!("perfsuite ({mode}), seed {seed:#x}, thread ladder {ladder:?}");
    let sections = vec![
        bench_gemm(smoke, seed, &ladder),
        bench_conv(smoke, seed, &ladder),
        bench_e2e(smoke, seed, &ladder),
        bench_compressed(smoke, seed, &ladder),
        bench_arch_e2e(smoke, seed),
        bench_integrity(smoke, seed),
        bench_parallel_scaling(smoke, seed, &ladder),
        bench_serving(smoke, seed),
    ];
    let crits = criteria(&sections, smoke);

    let mut table = TablePrinter::new();
    table.row(vec![
        "section", "config", "impl", "kernel", "thr", "ns/iter", "speedup",
    ]);
    for sec in &sections {
        table.row(vec![
            sec.name.to_string(),
            sec.config.clone(),
            sec.baseline_name.to_string(),
            "scalar/reference".into(),
            "1".into(),
            format!("{:.0}", sec.baseline_ns),
            "1.00x".into(),
        ]);
        for e in &sec.entries {
            table.row(vec![
                String::new(),
                String::new(),
                e.name.to_string(),
                format!("{}:{}", e.backend, e.kernel),
                e.threads.to_string(),
                format!("{:.0}", e.ns),
                format!("{:.2}x", sec.baseline_ns / e.ns),
            ]);
        }
    }
    print!("{}", table.render());

    let written = emit_json(&sections, &crits, mode, &out_path);
    let parsed = match perfjson::parse(&written) {
        Ok(v) => v,
        Err(e) => {
            eprintln!("FAIL: emitted {out_path} does not parse: {e}");
            std::process::exit(1);
        }
    };
    if let Err(e) = validate(&parsed) {
        eprintln!("FAIL: emitted {out_path} is malformed: {e}");
        std::process::exit(1);
    }
    println!("wrote {out_path} (validated, schema bnnkc-perfsuite/v6)");

    let mut failed = false;
    for c in &crits {
        let gate = if c.enforced { " [enforced]" } else { "" };
        println!(
            "criterion {:<32} target {:>5.2} measured {:>7.3}{gate}",
            c.name, c.target, c.measured
        );
        if c.enforced && c.measured < c.target {
            eprintln!(
                "FAIL: {} = {:.3} below its floor {:.2}",
                c.name, c.measured, c.target
            );
            failed = true;
        }
    }
    if failed {
        std::process::exit(1);
    }
}
