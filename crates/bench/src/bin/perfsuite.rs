//! perfsuite — the tracked performance suite for the binary hot path.
//!
//! Times the three tiers the execution engine accelerates, each against
//! the seed's scalar baseline which is kept bit-identical in-tree:
//!
//! 1. **GEMM** — `gemm_binary_naive` (seed scalar) vs the register-blocked
//!    tiled kernel vs the parallel [`Engine`] at 1/2/4/8 threads.
//! 2. **Conv 3×3** — `conv2d_binary` (seed direct scalar) vs the engine's
//!    lowerings (direct / im2col / auto) and thread counts.
//! 3. **End-to-end** — `ReActNet::tiny` forward over a batch:
//!    `forward_scalar` per image vs `forward_batch` at 1/2/4/8 threads.
//! 4. **Compressed e2e** — deploy a `.bkcm` model container and run the
//!    batch forward: offline decompress→pack→forward vs the streaming
//!    decode path (stream → packed lane words → engine, no intermediate
//!    `[K, C, 3, 3]` tensor), asserted bit-exact before timing.
//! 5. **Arch e2e** — every built-in graph-IR architecture
//!    (`reactnet`/`vggsmall`/`resnetlite`) through the graph executor,
//!    each asserted bit-exact against its scalar walk before timing.
//!
//! Every engine configuration is asserted bit-exact against its baseline
//! before being timed. Results are printed as a table and written to
//! `BENCH_perf.json` (override with `--out PATH`), then the file is
//! re-read through [`bench::perfjson`] and structurally validated, so CI's
//! `--smoke` run proves the tracked artifact stays parseable.
//!
//! Flags: `--smoke` (tiny shapes, CI-fast), `--out PATH`, `--seed N`.

use bench::{arg_flag, arg_u64, perfjson, TablePrinter};
use bitnn::engine::{Engine, ExecPolicy, Lowering};
use bitnn::graph::arch::{build_model, Arch};
use bitnn::infer::synthetic_batch;
use bitnn::model::ReActNet;
use bitnn::ops::conv::{conv2d_binary, Conv2dParams};
use bitnn::ops::gemm::{gemm_binary, gemm_binary_naive, PackedMatrix};
use bitnn::pack::{PackedActivations, PackedKernel};
use bitnn::tensor::BitTensor;
use kc_core::codec::KernelCodec;
use kc_core::container::{read_model_container, write_model_container, Container};
use std::hint::black_box;
use std::time::Instant;

const THREADS: [usize; 4] = [1, 2, 4, 8];

/// One timed configuration.
struct Entry {
    name: &'static str,
    threads: usize,
    ns: f64,
}

/// One benchmark tier.
struct Section {
    name: &'static str,
    config: String,
    baseline_name: &'static str,
    baseline_ns: f64,
    entries: Vec<Entry>,
}

impl Section {
    fn entry_ns(&self, name: &str, threads: usize) -> f64 {
        self.entries
            .iter()
            .find(|e| e.name == name && e.threads == threads)
            .map(|e| e.ns)
            .unwrap_or(f64::NAN)
    }
}

/// Best-of-three mean wall time per iteration, with one warmup call.
fn time_ns<F: FnMut()>(iters: usize, mut f: F) -> f64 {
    f();
    let mut best = f64::INFINITY;
    for _ in 0..3 {
        let t = Instant::now();
        for _ in 0..iters {
            f();
        }
        best = best.min(t.elapsed().as_nanos() as f64 / iters as f64);
    }
    best
}

fn random_bits(shape: &[usize], seed: u64) -> BitTensor {
    let mut t = BitTensor::zeros(shape);
    let mut s = seed | 1;
    for i in 0..t.len() {
        s = s
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        if s >> 63 == 1 {
            t.set(i, true);
        }
    }
    t
}

fn random_bools(n: usize, seed: u64) -> Vec<bool> {
    let mut s = seed | 1;
    (0..n)
        .map(|_| {
            s = s
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            s >> 63 == 1
        })
        .collect()
}

fn engine(threads: usize, lowering: Lowering) -> Engine {
    Engine::new(ExecPolicy { threads, lowering })
}

fn bench_gemm(smoke: bool, seed: u64) -> Section {
    let (m, n, k, iters) = if smoke {
        (8usize, 6usize, 96usize, 3usize)
    } else {
        (96, 64, 1024, 30)
    };
    let a = PackedMatrix::from_bools(m, k, &random_bools(m * k, seed)).unwrap();
    let b = PackedMatrix::from_bools(n, k, &random_bools(n * k, seed ^ 0xBEEF)).unwrap();

    let expect = gemm_binary_naive(&a, &b).unwrap();
    assert_eq!(gemm_binary(&a, &b).unwrap(), expect, "tiled GEMM mismatch");

    let baseline_ns = time_ns(iters, || {
        black_box(gemm_binary_naive(black_box(&a), black_box(&b)).unwrap());
    });
    let mut entries = vec![Entry {
        name: "tiled",
        threads: 1,
        ns: time_ns(iters, || {
            black_box(gemm_binary(black_box(&a), black_box(&b)).unwrap());
        }),
    }];
    for t in THREADS {
        let eng = engine(t, Lowering::Auto);
        assert_eq!(eng.gemm(&a, &b).unwrap(), expect, "engine GEMM mismatch");
        let mut out = Vec::new();
        entries.push(Entry {
            name: "engine",
            threads: t,
            ns: time_ns(iters, || {
                eng.gemm_into(black_box(&a), black_box(&b), &mut out)
                    .unwrap();
                black_box(&out);
            }),
        });
    }
    Section {
        name: "gemm_binary",
        config: format!("m={m} n={n} k={k}"),
        baseline_name: "naive_scalar",
        baseline_ns,
        entries,
    }
}

fn bench_conv(smoke: bool, seed: u64) -> Section {
    let (c, hw, kf, iters) = if smoke {
        (8usize, 6usize, 8usize, 3usize)
    } else {
        (64, 28, 64, 20)
    };
    let params = Conv2dParams { stride: 1, pad: 1 };
    let acts = PackedActivations::pack(&random_bits(&[1, c, hw, hw], seed)).unwrap();
    let kernel = PackedKernel::pack(&random_bits(&[kf, c, 3, 3], seed ^ 0xF00D)).unwrap();

    let expect = conv2d_binary(&acts, &kernel, params).unwrap();
    let baseline_ns = time_ns(iters, || {
        black_box(conv2d_binary(black_box(&acts), black_box(&kernel), params).unwrap());
    });

    let mut entries = Vec::new();
    let run = |name: &'static str, threads: usize, lowering: Lowering| {
        let eng = engine(threads, lowering);
        let mut scratch = bitnn::engine::ConvScratch::default();
        let got = eng
            .conv2d(&acts, (&kernel).into(), params, &mut scratch)
            .unwrap();
        assert_eq!(got.data(), expect.data(), "engine conv mismatch ({name})");
        Entry {
            name,
            threads,
            ns: time_ns(iters, || {
                black_box(
                    eng.conv2d(
                        black_box(&acts),
                        black_box(&kernel).into(),
                        params,
                        &mut scratch,
                    )
                    .unwrap(),
                );
            }),
        }
    };
    entries.push(run("engine_direct", 1, Lowering::Direct));
    entries.push(run("engine_im2col", 1, Lowering::Im2col));
    for t in THREADS {
        entries.push(run("engine", t, Lowering::Auto));
    }
    Section {
        name: "conv2d_3x3",
        config: format!("c={c} h=w={hw} kf={kf} stride=1 pad=1"),
        baseline_name: "direct_scalar",
        baseline_ns,
        entries,
    }
}

fn bench_e2e(smoke: bool, seed: u64) -> Section {
    // Batch 32 is the serving shape: large enough that the fork-join cost
    // of the 8-thread configuration amortizes the way it would under
    // sustained traffic.
    let (batch, iters) = if smoke { (2usize, 1usize) } else { (32, 4) };
    let model = ReActNet::tiny(seed);
    let inputs = synthetic_batch(batch, 3, 32, seed ^ 0xACE);

    let expect: Vec<_> = inputs.iter().map(|x| model.forward_scalar(x)).collect();
    let baseline_ns = time_ns(iters, || {
        for x in &inputs {
            black_box(model.forward_scalar(black_box(x)));
        }
    });

    let mut entries = Vec::new();
    for t in THREADS {
        let eng = engine(t, Lowering::Auto);
        let got = model.forward_batch(&inputs, &eng);
        for (g, e) in got.iter().zip(&expect) {
            assert_eq!(g.data(), e.data(), "engine forward mismatch at {t} threads");
        }
        entries.push(Entry {
            name: "engine_batch",
            threads: t,
            ns: time_ns(iters, || {
                black_box(model.forward_batch(black_box(&inputs), &eng));
            }),
        });
    }
    Section {
        name: "reactnet_tiny_forward",
        config: format!("batch={batch} image=32x32"),
        baseline_name: "forward_scalar",
        baseline_ns,
        entries,
    }
}

fn bench_compressed(smoke: bool, seed: u64) -> Section {
    let (batch, iters) = if smoke { (1usize, 1usize) } else { (8, 4) };
    let model = ReActNet::tiny(seed ^ 0xC0DE);
    let codec = KernelCodec::paper_clustered();
    let compressed: Vec<_> = (0..model.num_blocks())
        .map(|i| codec.compress(model.conv3_weights(i)).expect("compress"))
        .collect();
    let bytes = write_model_container(&compressed);
    let containers = read_model_container(&bytes)
        .expect("parse model container")
        .kernels;
    let inputs = synthetic_batch(batch, 3, 32, seed ^ 0xFEED);

    // Deploy-and-infer closures: the baseline decompresses each kernel to
    // a flat tensor and re-packs it; the streaming path goes stream →
    // packed lane words → engine with no intermediate tensor.
    let deploy_offline = |containers: &[Container]| {
        let mut m = model.clone();
        for (i, c) in containers.iter().enumerate() {
            m.set_conv3_weights(i, c.decode_kernel().expect("offline decode"));
        }
        m
    };
    let deploy_streamed = |containers: &[Container]| {
        let mut m = model.clone();
        for (i, c) in containers.iter().enumerate() {
            m.set_conv3_packed(i, c.decode_packed().expect("stream decode"));
        }
        m
    };

    let eng1 = engine(1, Lowering::Auto);
    let expect: Vec<_> = deploy_offline(&containers).forward_batch(&inputs, &eng1);
    let streamed_out = deploy_streamed(&containers).forward_batch(&inputs, &eng1);
    for (g, e) in streamed_out.iter().zip(&expect) {
        assert_eq!(g.data(), e.data(), "streamed deployment logits mismatch");
    }

    let baseline_ns = time_ns(iters, || {
        let m = deploy_offline(&containers);
        black_box(m.forward_batch(black_box(&inputs), &eng1));
    });
    // Deploy-only pair: these two entries are each other's like-for-like
    // comparison (their speedup_vs_baseline fields are against the
    // deploy+forward baseline, so compare them to each other instead).
    let mut entries = vec![
        Entry {
            name: "offline_deploy",
            threads: 1,
            ns: time_ns(iters, || {
                black_box(deploy_offline(black_box(&containers)));
            }),
        },
        Entry {
            name: "stream_deploy",
            threads: 1,
            ns: time_ns(iters, || {
                black_box(deploy_streamed(black_box(&containers)));
            }),
        },
    ];
    for t in THREADS {
        let eng = engine(t, Lowering::Auto);
        entries.push(Entry {
            name: "stream_deploy_forward",
            threads: t,
            ns: time_ns(iters, || {
                let m = deploy_streamed(black_box(&containers));
                black_box(m.forward_batch(black_box(&inputs), &eng));
            }),
        });
    }
    Section {
        name: "compressed_e2e",
        config: format!(
            "tiny, batch={batch}, {} kernels, {} B container",
            containers.len(),
            bytes.len()
        ),
        baseline_name: "offline_decode_forward",
        baseline_ns,
        entries,
    }
}

/// Per-architecture graph-executor end-to-end: each built-in family's
/// batch forward at 1/4 threads, against the summed scalar-walk baseline.
fn bench_arch_e2e(smoke: bool, seed: u64) -> Section {
    let (image, batch, iters) = if smoke {
        (16usize, 2usize, 1usize)
    } else {
        (32, 8, 3)
    };
    let scale = 0.0625;
    let mut baseline_ns = 0.0;
    let mut entries = Vec::new();
    for arch in Arch::ALL {
        let model = build_model(arch, scale, image, seed ^ 0xA2C4).expect("build model");
        let inputs = synthetic_batch(batch, 3, image, seed ^ 0x11E);
        let expect: Vec<_> = inputs
            .iter()
            .map(|x| model.forward_scalar(x).expect("scalar walk"))
            .collect();
        baseline_ns += time_ns(iters, || {
            for x in &inputs {
                black_box(model.forward_scalar(black_box(x)).unwrap());
            }
        });
        for t in [1usize, 4] {
            let eng = engine(t, Lowering::Auto);
            let got = model.forward_batch(&inputs, &eng).expect("batch forward");
            for (g, e) in got.iter().zip(&expect) {
                assert_eq!(
                    g.data(),
                    e.data(),
                    "{arch} executor mismatch at {t} threads"
                );
            }
            let ns = time_ns(iters, || {
                black_box(model.forward_batch(black_box(&inputs), &eng).unwrap());
            });
            entries.push(Entry {
                name: arch.name(),
                threads: t,
                ns,
            });
        }
    }
    Section {
        name: "arch_e2e",
        config: format!("scale={scale} image={image}x{image} batch={batch}"),
        baseline_name: "forward_scalar_all_archs",
        baseline_ns,
        entries,
    }
}

/// Combined 4-thread arch_e2e wall time: the sum of the three real
/// per-architecture measurements (the criteria denominator).
fn arch_e2e_total_4t(archs: &Section) -> f64 {
    Arch::ALL.iter().map(|a| archs.entry_ns(a.name(), 4)).sum()
}

fn emit_json(sections: &[Section], mode: &str, out_path: &str) -> String {
    let mut s = String::new();
    s.push_str("{\n");
    s.push_str("  \"schema\": \"bnnkc-perfsuite/v1\",\n");
    s.push_str(&format!("  \"mode\": \"{}\",\n", perfjson::escape(mode)));
    s.push_str(&format!(
        "  \"threads_available\": {},\n",
        std::thread::available_parallelism().map_or(1, usize::from)
    ));
    s.push_str("  \"sections\": [\n");
    for (i, sec) in sections.iter().enumerate() {
        s.push_str("    {\n");
        s.push_str(&format!(
            "      \"name\": \"{}\",\n",
            perfjson::escape(sec.name)
        ));
        s.push_str(&format!(
            "      \"config\": \"{}\",\n",
            perfjson::escape(&sec.config)
        ));
        s.push_str(&format!(
            "      \"baseline\": {{\"name\": \"{}\", \"ns_per_iter\": {:.1}}},\n",
            perfjson::escape(sec.baseline_name),
            sec.baseline_ns
        ));
        s.push_str("      \"entries\": [\n");
        for (j, e) in sec.entries.iter().enumerate() {
            s.push_str(&format!(
                "        {{\"name\": \"{}\", \"threads\": {}, \"ns_per_iter\": {:.1}, \"speedup_vs_baseline\": {:.3}}}{}\n",
                perfjson::escape(e.name),
                e.threads,
                e.ns,
                sec.baseline_ns / e.ns,
                if j + 1 == sec.entries.len() { "" } else { "," }
            ));
        }
        s.push_str("      ]\n");
        s.push_str(&format!(
            "    }}{}\n",
            if i + 1 == sections.len() { "" } else { "," }
        ));
    }
    s.push_str("  ],\n");
    let gemm = &sections[0];
    let e2e = &sections[2];
    let comp = &sections[3];
    let archs = &sections[4];
    s.push_str("  \"criteria\": [\n");
    s.push_str(&format!(
        "    {{\"name\": \"gemm_tiled_1t_speedup\", \"target\": 1.5, \"measured\": {:.3}}},\n",
        gemm.baseline_ns / gemm.entry_ns("tiled", 1)
    ));
    s.push_str(&format!(
        "    {{\"name\": \"e2e_8t_speedup\", \"target\": 4.0, \"measured\": {:.3}}},\n",
        e2e.baseline_ns / e2e.entry_ns("engine_batch", 8)
    ));
    // Compression must not slow inference down: streaming deploy+forward
    // at least matches the offline decompress-then-pack deployment.
    s.push_str(&format!(
        "    {{\"name\": \"compressed_stream_1t_speedup\", \"target\": 1.0, \"measured\": {:.3}}},\n",
        comp.baseline_ns / comp.entry_ns("stream_deploy_forward", 1)
    ));
    // Like-for-like deployment: stream decode vs offline decompress+pack.
    s.push_str(&format!(
        "    {{\"name\": \"stream_deploy_vs_offline_deploy\", \"target\": 1.5, \"measured\": {:.3}}},\n",
        comp.entry_ns("offline_deploy", 1) / comp.entry_ns("stream_deploy", 1)
    ));
    // The graph executor must beat the scalar walk across every built-in
    // architecture combined.
    s.push_str(&format!(
        "    {{\"name\": \"arch_e2e_4t_speedup\", \"target\": 1.5, \"measured\": {:.3}}}\n",
        archs.baseline_ns / arch_e2e_total_4t(archs)
    ));
    s.push_str("  ]\n");
    s.push_str("}\n");
    std::fs::write(out_path, &s).expect("write BENCH_perf.json");
    s
}

/// Structural validation of the emitted document (CI's `--smoke` gate).
fn validate(doc: &perfjson::Value) -> Result<(), String> {
    if doc.get("schema").and_then(|v| v.as_str()) != Some("bnnkc-perfsuite/v1") {
        return Err("missing or wrong schema tag".into());
    }
    let sections = doc
        .get("sections")
        .and_then(|v| v.as_arr())
        .ok_or("sections must be an array")?;
    if sections.len() != 5 {
        return Err(format!("expected 5 sections, found {}", sections.len()));
    }
    for sec in sections {
        let name = sec
            .get("name")
            .and_then(|v| v.as_str())
            .ok_or("section without a name")?;
        let base = sec
            .get("baseline")
            .and_then(|b| b.get("ns_per_iter"))
            .and_then(|v| v.as_f64())
            .ok_or_else(|| format!("section {name}: missing baseline ns"))?;
        if !(base.is_finite() && base > 0.0) {
            return Err(format!("section {name}: non-positive baseline ns"));
        }
        let entries = sec
            .get("entries")
            .and_then(|v| v.as_arr())
            .ok_or_else(|| format!("section {name}: entries must be an array"))?;
        if entries.is_empty() {
            return Err(format!("section {name}: no entries"));
        }
        for e in entries {
            let ns = e
                .get("ns_per_iter")
                .and_then(|v| v.as_f64())
                .unwrap_or(-1.0);
            let sp = e
                .get("speedup_vs_baseline")
                .and_then(|v| v.as_f64())
                .unwrap_or(-1.0);
            if !(ns.is_finite() && ns > 0.0 && sp.is_finite() && sp > 0.0) {
                return Err(format!("section {name}: malformed entry"));
            }
        }
    }
    let criteria = doc
        .get("criteria")
        .and_then(|v| v.as_arr())
        .ok_or("criteria must be an array")?;
    if criteria.len() != 5 {
        return Err("expected 5 criteria".into());
    }
    Ok(())
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = arg_flag(&args, "--smoke");
    let seed = arg_u64(&args, "--seed", 0xBEEF);
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "BENCH_perf.json".to_string());
    let mode = if smoke { "smoke" } else { "full" };

    println!("perfsuite ({mode}), seed {seed:#x}");
    let sections = vec![
        bench_gemm(smoke, seed),
        bench_conv(smoke, seed),
        bench_e2e(smoke, seed),
        bench_compressed(smoke, seed),
        bench_arch_e2e(smoke, seed),
    ];

    let mut table = TablePrinter::new();
    table.row(vec![
        "section", "config", "impl", "thr", "ns/iter", "speedup",
    ]);
    for sec in &sections {
        table.row(vec![
            sec.name.to_string(),
            sec.config.clone(),
            sec.baseline_name.to_string(),
            "1".into(),
            format!("{:.0}", sec.baseline_ns),
            "1.00x".into(),
        ]);
        for e in &sec.entries {
            table.row(vec![
                String::new(),
                String::new(),
                e.name.to_string(),
                e.threads.to_string(),
                format!("{:.0}", e.ns),
                format!("{:.2}x", sec.baseline_ns / e.ns),
            ]);
        }
    }
    print!("{}", table.render());

    let written = emit_json(&sections, mode, &out_path);
    let parsed = match perfjson::parse(&written) {
        Ok(v) => v,
        Err(e) => {
            eprintln!("FAIL: emitted {out_path} does not parse: {e}");
            std::process::exit(1);
        }
    };
    if let Err(e) = validate(&parsed) {
        eprintln!("FAIL: emitted {out_path} is malformed: {e}");
        std::process::exit(1);
    }
    println!("wrote {out_path} (validated, schema bnnkc-perfsuite/v1)");

    let gemm = &sections[0];
    let e2e = &sections[2];
    let comp = &sections[3];
    let archs = &sections[4];
    println!(
        "criteria: gemm tiled 1t speedup {:.2}x (target 1.5x), e2e 8t speedup {:.2}x (target 4x), \
         compressed stream 1t speedup {:.2}x (target 1x), stream vs offline deploy {:.2}x \
         (target 1.5x), arch e2e 4t speedup {:.2}x (target 1.5x)",
        gemm.baseline_ns / gemm.entry_ns("tiled", 1),
        e2e.baseline_ns / e2e.entry_ns("engine_batch", 8),
        comp.baseline_ns / comp.entry_ns("stream_deploy_forward", 1),
        comp.entry_ns("offline_deploy", 1) / comp.entry_ns("stream_deploy", 1),
        archs.baseline_ns / arch_e2e_total_4t(archs),
    );
}
