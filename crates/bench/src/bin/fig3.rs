//! Regenerate paper Fig. 3: frequency of use for the top-16 bit sequences
//! of one basic block (the paper's figure corresponds to a block with
//! ~64.5% top-64 coverage, i.e. block 2).
//!
//! ```text
//! cargo run -p bench --release --bin fig3 [-- --block 2 --scale 1.0 --seed 1]
//! ```

use bench::{arg_f64, arg_u64, block_kernel, TablePrinter, PAPER_FIG3_TOP16};
use kc_core::FreqTable;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let scale = arg_f64(&args, "--scale", 1.0);
    let seed = arg_u64(&args, "--seed", 1);
    let block = arg_u64(&args, "--block", 2) as usize;

    let kernel = block_kernel(block, seed, scale);
    let freq = FreqTable::from_kernel(&kernel).expect("3x3 kernel");

    println!("Fig. 3 — frequency of use for the top-16 bit sequences (block {block})\n");
    let mut table = TablePrinter::new();
    table.row(vec![
        "Rank",
        "Sequence",
        "Freq (%)",
        "Bar",
        "Paper top-16 member?",
    ]);
    for (rank, (seq, _)) in freq.top_k(16).into_iter().enumerate() {
        let pct = freq.percent(seq);
        let bar = "#".repeat((pct * 4.0).round() as usize);
        let in_paper = PAPER_FIG3_TOP16.contains(&seq.value());
        table.row(vec![
            format!("{}", rank + 1),
            format!("{seq}"),
            format!("{pct:5.2}"),
            bar,
            if in_paper {
                "yes".into()
            } else {
                "no".to_string()
            },
        ]);
    }
    print!("{}", table.render());

    let top16 = freq.top_k_coverage_pct(16);
    let overlap = freq
        .top_k(16)
        .iter()
        .filter(|(s, _)| PAPER_FIG3_TOP16.contains(&s.value()))
        .count();
    println!("\nTop-16 coverage: {top16:.1}% (paper: ~46%)");
    println!("Overlap with the paper's published top-16 list: {overlap}/16");
    println!(
        "Sequences 0 and 511 (all-minus-one / all-plus-one): {:.1}% + {:.1}% (paper: 12.8% + 12.7%)",
        freq.percent(kc_core::BitSeq::ZEROS),
        freq.percent(kc_core::BitSeq::ONES)
    );
}
