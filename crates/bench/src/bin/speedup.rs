//! Regenerate the paper's performance headline numbers:
//!
//! * software-only decoding is **1.47x slower** than the channel-packed
//!   baseline (Sec. IV-B);
//! * with the decoding unit the scheme is **1.35x faster** (Sec. VI).
//!
//! Runs the full ReActNet workload through the cycle model in all three
//! modes, using the measured per-block clustering compression ratios.
//!
//! ```text
//! cargo run -p bench --release --bin speedup [-- --seed 1 --image 224 --scale 0.25]
//! ```
//!
//! `--scale` shrinks the kernels used for measuring compression ratios
//! (not the simulated geometry).

use bench::{arg_f64, arg_u64, block_kernel, headline, vs, TablePrinter};
use bitnn::model::{OpCategory, ReActNet, ReActNetConfig};
use kc_core::codec::KernelCodec;
use simcpu::config::CpuConfig;
use simcpu::run::{run_model, Mode};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let seed = arg_u64(&args, "--seed", 1);
    let image = arg_u64(&args, "--image", 224) as usize;
    let scale = arg_f64(&args, "--scale", 0.25);

    // Measure real per-block compression ratios first.
    let codec = KernelCodec::paper_clustered();
    let ratios: Vec<f64> = (1..=13)
        .map(|b| {
            codec
                .compress(&block_kernel(b, seed, scale))
                .expect("well-formed kernel")
                .ratio()
        })
        .collect();
    println!(
        "Per-block clustering ratios (scale {scale}): {:?}",
        ratios
            .iter()
            .map(|r| (r * 100.0).round() / 100.0)
            .collect::<Vec<_>>()
    );

    let mut model_cfg = ReActNetConfig::full();
    model_cfg.image_size = image;
    let model = ReActNet::new(model_cfg, seed).expect("valid config");
    let wls = model.workloads();
    let cpu = CpuConfig::default();
    println!("\n{}", cpu.to_table());

    let base = run_model(&cpu, &wls, Mode::Baseline, &[1.0]);
    let sw = run_model(&cpu, &wls, Mode::SoftwareDecode, &ratios);
    let hw = run_model(&cpu, &wls, Mode::HardwareDecode, &ratios);

    let mut table = TablePrinter::new();
    table.row(vec!["Mode", "Cycles (M)", "Time @1GHz (ms)", "vs baseline"]);
    for (name, run) in [
        ("Baseline (daBNN-style)", &base),
        ("Software decode", &sw),
        ("Hardware decode unit", &hw),
    ] {
        table.row(vec![
            name.to_string(),
            format!("{:.1}", run.total_cycles as f64 / 1e6),
            format!("{:.1}", cpu.cycles_to_ms(run.total_cycles)),
            format!("{:.3}x", base.total_cycles as f64 / run.total_cycles as f64),
        ]);
    }
    print!("{}", table.render());

    let sw_slowdown = sw.total_cycles as f64 / base.total_cycles as f64;
    let hw_speedup = base.total_cycles as f64 / hw.total_cycles as f64;
    println!(
        "\nSoftware slowdown: {}",
        vs(sw_slowdown, headline::SW_SLOWDOWN)
    );
    println!(
        "Hardware speedup:  {}",
        vs(hw_speedup, headline::HW_SPEEDUP)
    );

    let b3 = base.category_cycles(OpCategory::Conv3x3);
    let h3 = hw.category_cycles(OpCategory::Conv3x3);
    println!(
        "Conv3x3-only speedup: {:.2}x (the 3x3 convolutions are {:.1}% of baseline time)",
        b3 as f64 / h3 as f64,
        base.category_pct(OpCategory::Conv3x3)
    );
    println!(
        "DRAM traffic: baseline {:.1} MB -> hardware {:.1} MB",
        base.layers.iter().map(|l| l.mem.dram_bytes).sum::<u64>() as f64 / 1e6,
        hw.layers.iter().map(|l| l.mem.dram_bytes).sum::<u64>() as f64 / 1e6,
    );
}
