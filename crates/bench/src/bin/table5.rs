//! Regenerate paper Table V: per-block compression ratio of the 3×3
//! kernels, Encoding vs Clustering — plus the whole-model 1.2x figure
//! with `--model`.
//!
//! ```text
//! cargo run -p bench --release --bin table5 [-- --scale 0.5 --seed 1 --model]
//! ```

use bench::{arg_f64, arg_flag, arg_u64, block_kernel, headline, vs, TablePrinter, PAPER_TABLE5};
use bitnn::model::ReActNet;
use kc_core::codec::{model_compression_ratio, KernelCodec};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let scale = arg_f64(&args, "--scale", 1.0);
    let seed = arg_u64(&args, "--seed", 1);

    println!("Table V — compression ratio of bit sequences per basic block");
    println!("(tree nodes 32/64/64/256 -> 6/8/9/12-bit codes; clustering: N=256, Hamming-1)\n");

    let encoding = KernelCodec::paper();
    let clustering = KernelCodec::paper_clustered();

    let mut table = TablePrinter::new();
    table.row(vec!["Layer", "Encoding", "Clustering"]);
    let (mut enc_sum, mut clu_sum) = (0.0, 0.0);
    for block in 1..=13 {
        let kernel = block_kernel(block, seed, scale);
        let enc = encoding.compress(&kernel).expect("well-formed kernel");
        let clu = clustering.compress(&kernel).expect("well-formed kernel");
        let (p_enc, p_clu) = PAPER_TABLE5[block - 1];
        enc_sum += enc.ratio();
        clu_sum += clu.ratio();
        table.row(vec![
            format!("Block {block}"),
            vs(enc.ratio(), p_enc),
            vs(clu.ratio(), p_clu),
        ]);
    }
    table.row(vec![
        "Mean".to_string(),
        format!("{:6.3}", enc_sum / 13.0),
        vs(clu_sum / 13.0, headline::KERNEL_RATIO),
    ]);
    print!("{}", table.render());

    // Sec. VI prose also quotes per-node usage percentages; print them
    // for one representative block in both modes.
    let kernel = block_kernel(5, seed, scale);
    let freq = kc_core::FreqTable::from_kernel(&kernel).expect("3x3 kernel");
    let enc_tree = kc_core::SimplifiedTree::build(&freq, kc_core::TreeConfig::paper());
    let plan =
        kc_core::cluster::ClusterPlan::build(&freq, &kc_core::cluster::ClusterConfig::default());
    let post = plan.apply_to_freq(&freq);
    let clu_tree = kc_core::SimplifiedTree::build(&post, kc_core::TreeConfig::paper());
    println!("\nPer-node usage, block 5 (paper Sec. VI quotes ~46/24/23/5% before and");
    println!("~66/25/8/0.6% after clustering):");
    println!(
        "  Encoding:   {:?} %",
        enc_tree
            .node_usage_pct(&freq)
            .iter()
            .map(|p| (p * 10.0).round() / 10.0)
            .collect::<Vec<_>>()
    );
    println!(
        "  Clustering: {:?} %",
        clu_tree
            .node_usage_pct(&post)
            .iter()
            .map(|p| (p * 10.0).round() / 10.0)
            .collect::<Vec<_>>()
    );

    if arg_flag(&args, "--model") {
        println!("\nWhole-model compression (all layers; only 3x3 kernels compressed):");
        let model = ReActNet::full(seed);
        let mr = model_compression_ratio(&model, &clustering).expect("model compresses");
        println!(
            "  original {:.2} Mbit -> compressed {:.2} Mbit: ratio {}",
            mr.original_bits as f64 / 1e6,
            mr.compressed_bits as f64 / 1e6,
            vs(mr.ratio(), headline::MODEL_RATIO),
        );
        println!(
            "  mean kernel payload ratio: {}",
            vs(mr.mean_kernel_ratio, headline::KERNEL_RATIO)
        );
    }
}
