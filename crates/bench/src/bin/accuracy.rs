//! The accuracy-proxy experiment for the clustering claim (Sec. III-C):
//! "a rarely used bit sequence can be replaced by one employed more
//! frequently without negatively impacting the accuracy".
//!
//! Without ImageNet we measure *agreement*: run the model before and
//! after clustering every 3×3 kernel on the same synthetic inputs and
//! report top-1 agreement and logit deviation. Full agreement upper-
//! bounds any accuracy change at zero.
//!
//! ```text
//! cargo run -p bench --release --bin accuracy [-- --seed 1 --inputs 32 --radius 1]
//! ```

use bench::{arg_u64, TablePrinter};
use bitnn::infer::{compare_models, synthetic_batch};
use bitnn::model::ReActNet;
use kc_core::cluster::{ClusterConfig, ClusterPlan};
use kc_core::FreqTable;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let seed = arg_u64(&args, "--seed", 1);
    let inputs = arg_u64(&args, "--inputs", 32) as usize;
    let radius = arg_u64(&args, "--radius", 1) as u32;

    let original = ReActNet::tiny(seed);
    let mut clustered = original.clone();
    let mut total_subs = 0usize;
    for i in 0..clustered.num_blocks() {
        let kernel = clustered.conv3_weights(i).clone();
        let freq = FreqTable::from_kernel(&kernel).expect("3x3 kernel");
        let plan = ClusterPlan::build(
            &freq,
            &ClusterConfig {
                max_distance: radius,
                ..ClusterConfig::default()
            },
        );
        total_subs += plan.replaced();
        let rewritten = plan.apply_to_kernel(&kernel).expect("same shape");
        clustered.set_conv3_weights(i, rewritten);
    }

    let cfg = original.config().clone();
    let batch = synthetic_batch(inputs, cfg.input_channels, cfg.image_size, seed ^ 0xF00D);
    let agg = compare_models(&original, &clustered, &batch);

    println!("Accuracy proxy — original vs clustered network (Hamming radius {radius})\n");
    let mut t = TablePrinter::new();
    t.row(vec!["Metric", "Value"]);
    t.row(vec![
        "Inputs compared".to_string(),
        format!("{}", agg.inputs),
    ]);
    t.row(vec![
        "Sequences substituted".to_string(),
        format!("{total_subs}"),
    ]);
    t.row(vec![
        "Top-1 agreement".to_string(),
        format!("{:.1}%", agg.top1 * 100.0),
    ]);
    t.row(vec![
        "Mean |logit delta|".to_string(),
        format!("{:.4}", agg.mean_abs_dev),
    ]);
    t.row(vec![
        "Max |logit delta|".to_string(),
        format!("{:.4}", agg.max_abs_dev),
    ]);
    print!("{}", t.render());
    println!("\nPaper claim: Hamming-1 substitution does not negatively affect accuracy.");
    println!("High top-1 agreement means the clustered network is functionally the");
    println!("same classifier; any accuracy change is bounded by the disagreement rate.");
}
