//! Shared harness utilities: paper reference values and workload builders.
//!
//! Each binary in `src/bin/` regenerates one table or figure of the paper
//! and prints the published values next to the measured ones. The
//! constants here transcribe the paper so the comparison is explicit.

use bitnn::tensor::BitTensor;
use bitnn::weightgen::SeqDistribution;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Input channel count of each basic block's 3×3 kernel in the full
/// ReActNet (MobileNet schedule).
pub const BLOCK_CHANNELS: [usize; 13] = [
    32, 64, 128, 128, 256, 256, 512, 512, 512, 512, 512, 512, 1024,
];

/// Paper Table II: (top-64 %, top-256 %) per block.
pub const PAPER_TABLE2: [(f64, f64); 13] = bitnn::weightgen::TABLE2_TARGETS;

/// Paper Table V: (Encoding ratio, Clustering ratio) per block.
pub const PAPER_TABLE5: [(f64, f64); 13] = [
    (1.18, 1.30),
    (1.22, 1.30),
    (1.21, 1.31),
    (1.21, 1.32),
    (1.19, 1.30),
    (1.20, 1.33),
    (1.18, 1.33),
    (1.20, 1.32),
    (1.20, 1.31),
    (1.18, 1.32),
    (1.19, 1.33),
    (1.25, 1.36),
    (1.22, 1.35),
];

/// Paper Table I: (storage %, precision bits, execution %) rows in
/// category order (input, output, conv1x1, conv3x3, others).
pub const PAPER_TABLE1: [(f64, usize, f64); 5] = [
    (0.02, 8, 4.0),
    (22.17, 8, 18.7),
    (8.5, 1, 6.9),
    (68.0, 1, 66.8),
    (1.31, 32, 3.6),
];

/// Paper Fig. 3: the top-16 bit sequences of one basic block, in order.
pub const PAPER_FIG3_TOP16: [u16; 16] = [
    0, 511, 256, 255, 4, 510, 1, 507, 508, 64, 3, 504, 447, 7, 448, 63,
];

/// Paper headline numbers.
pub mod headline {
    /// Software-only decoding slowdown (Sec. IV-B).
    pub const SW_SLOWDOWN: f64 = 1.47;
    /// Hardware scheme speedup (Sec. VI).
    pub const HW_SPEEDUP: f64 = 1.35;
    /// Mean per-block kernel compression with clustering (Sec. VI).
    pub const KERNEL_RATIO: f64 = 1.32;
    /// Whole-model compression (Sec. VI).
    pub const MODEL_RATIO: f64 = 1.2;
}

/// Build block `block`'s full-size 3×3 kernel with the calibrated
/// distribution. `scale` (0 < scale <= 1) shrinks the channel count for
/// quick runs; the statistics are scale-invariant.
///
/// # Panics
///
/// Panics if `block` is not 1..=13 or `scale` is out of range.
pub fn block_kernel(block: usize, seed: u64, scale: f64) -> BitTensor {
    assert!((1..=13).contains(&block), "block must be 1..=13");
    assert!(scale > 0.0 && scale <= 1.0, "scale must be in (0, 1]");
    let c = ((BLOCK_CHANNELS[block - 1] as f64 * scale).round() as usize).max(8);
    let mut rng = StdRng::seed_from_u64(seed ^ block as u64);
    SeqDistribution::for_block(block, 0).sample_kernel(c, c, &mut rng)
}

/// Format a measured-vs-paper pair with the relative deviation.
pub fn vs(measured: f64, paper: f64) -> String {
    let dev = (measured - paper) / paper * 100.0;
    format!("{measured:6.3} (paper {paper:5.2}, {dev:+5.1}%)")
}

/// A simple aligned table printer.
#[derive(Debug, Default)]
pub struct TablePrinter {
    rows: Vec<Vec<String>>,
}

impl TablePrinter {
    /// Empty printer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add a row of cells.
    pub fn row<S: Into<String>>(&mut self, cells: Vec<S>) -> &mut Self {
        self.rows.push(cells.into_iter().map(Into::into).collect());
        self
    }

    /// Render with per-column alignment.
    pub fn render(&self) -> String {
        let cols = self.rows.iter().map(Vec::len).max().unwrap_or(0);
        let mut widths = vec![0usize; cols];
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                if i > 0 {
                    out.push_str("  ");
                }
                out.push_str(&format!("{cell:<width$}", width = widths[i]));
            }
            out.push('\n');
        }
        out
    }
}

pub mod perfjson;

/// Parse a `--scale X` / `--seed N` style flag list (tiny hand-rolled
/// parser so the harnesses need no CLI dependency).
pub fn arg_f64(args: &[String], flag: &str, default: f64) -> f64 {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// Integer flag variant of [`arg_f64`].
pub fn arg_u64(args: &[String], flag: &str, default: u64) -> u64 {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// Boolean flag presence.
pub fn arg_flag(args: &[String], flag: &str) -> bool {
    args.iter().any(|a| a == flag)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn block_kernel_scales_channels() {
        let k = block_kernel(1, 0, 1.0);
        assert_eq!(k.shape(), &[32, 32, 3, 3]);
        let k = block_kernel(13, 0, 0.25);
        assert_eq!(k.shape(), &[256, 256, 3, 3]);
    }

    #[test]
    #[should_panic(expected = "block must be")]
    fn block_zero_panics() {
        block_kernel(0, 0, 1.0);
    }

    #[test]
    fn table_printer_aligns() {
        let mut t = TablePrinter::new();
        t.row(vec!["a", "bbbb"]);
        t.row(vec!["ccc", "d"]);
        let out = t.render();
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines[0].find("bbbb"), lines[1].find('d'));
    }

    #[test]
    fn arg_parsers() {
        let args: Vec<String> = ["--scale", "0.5", "--seed", "7", "--model"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        assert_eq!(arg_f64(&args, "--scale", 1.0), 0.5);
        assert_eq!(arg_u64(&args, "--seed", 0), 7);
        assert!(arg_flag(&args, "--model"));
        assert!(!arg_flag(&args, "--missing"));
        assert_eq!(arg_f64(&args, "--missing", 2.0), 2.0);
    }

    #[test]
    fn vs_formats_deviation() {
        let s = vs(1.32, 1.32);
        assert!(s.contains("+0.0%"));
    }
}
