//! Minimal JSON reader for validating `BENCH_perf.json`.
//!
//! The perf suite emits its results as JSON so the numbers can be tracked
//! PR-over-PR; this module is the dependency-free parser the suite (and
//! CI's `perfsuite --smoke` step) uses to prove the emitted file actually
//! parses. It supports the full JSON value grammar; `\uXXXX` escapes are
//! decoded for scalar (non-surrogate) code points, which covers
//! everything [`escape`] can emit.

use std::collections::BTreeMap;
use std::fmt;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (parsed as `f64`).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object. Keys are sorted (BTreeMap); the perf schema never relies
    /// on member order.
    Obj(BTreeMap<String, Value>),
}

impl Value {
    /// Member of an object, if this is an object containing `key`.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(m) => m.get(key),
            _ => None,
        }
    }

    /// The array elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// The number, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The string, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }
}

/// A parse failure: byte offset and message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset of the failure.
    pub at: usize,
    /// Human-readable description.
    pub msg: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON parse error at byte {}: {}", self.at, self.msg)
    }
}

impl std::error::Error for ParseError {}

/// Parse a complete JSON document (one value plus optional whitespace).
///
/// # Errors
///
/// Returns [`ParseError`] on malformed input or trailing garbage.
pub fn parse(text: &str) -> Result<Value, ParseError> {
    let b = text.as_bytes();
    let mut p = Parser { b, i: 0 };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.i != b.len() {
        return Err(p.err("trailing characters after the document"));
    }
    Ok(v)
}

struct Parser<'a> {
    b: &'a [u8],
    i: usize,
}

impl Parser<'_> {
    fn err(&self, msg: &str) -> ParseError {
        ParseError {
            at: self.i,
            msg: msg.into(),
        }
    }

    fn skip_ws(&mut self) {
        while let Some(&c) = self.b.get(self.i) {
            if c == b' ' || c == b'\t' || c == b'\n' || c == b'\r' {
                self.i += 1;
            } else {
                break;
            }
        }
    }

    fn eat(&mut self, c: u8) -> bool {
        if self.b.get(self.i) == Some(&c) {
            self.i += 1;
            true
        } else {
            false
        }
    }

    fn expect(&mut self, c: u8) -> Result<(), ParseError> {
        if self.eat(c) {
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", c as char)))
        }
    }

    fn literal(&mut self, word: &str, v: Value) -> Result<Value, ParseError> {
        if self.b[self.i..].starts_with(word.as_bytes()) {
            self.i += word.len();
            Ok(v)
        } else {
            Err(self.err(&format!("expected '{word}'")))
        }
    }

    fn value(&mut self) -> Result<Value, ParseError> {
        match self.b.get(self.i) {
            None => Err(self.err("unexpected end of input")),
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => self.string().map(Value::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c.is_ascii_digit() || *c == b'-' => self.number(),
            Some(&c) => Err(self.err(&format!("unexpected byte 0x{c:02x}"))),
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            match self.b.get(self.i) {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.i += 1;
                    return Ok(s);
                }
                Some(b'\\') => {
                    self.i += 1;
                    let esc = self.b.get(self.i).copied();
                    self.i += 1;
                    match esc {
                        Some(b'"') => s.push('"'),
                        Some(b'\\') => s.push('\\'),
                        Some(b'/') => s.push('/'),
                        Some(b'n') => s.push('\n'),
                        Some(b't') => s.push('\t'),
                        Some(b'r') => s.push('\r'),
                        Some(b'b') => s.push('\u{8}'),
                        Some(b'f') => s.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .b
                                .get(self.i..self.i + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or_else(|| self.err("malformed \\u escape"))?;
                            self.i += 4;
                            s.push(
                                char::from_u32(hex)
                                    .ok_or_else(|| self.err("surrogate \\u escape"))?,
                            );
                        }
                        _ => return Err(self.err("unsupported escape")),
                    }
                }
                Some(&c) if c < 0x20 => return Err(self.err("control byte in string")),
                Some(_) => {
                    // Copy one UTF-8 scalar (input is &str, so valid).
                    let start = self.i;
                    self.i += 1;
                    while self.i < self.b.len() && self.b[self.i] & 0xC0 == 0x80 {
                        self.i += 1;
                    }
                    s.push_str(std::str::from_utf8(&self.b[start..self.i]).expect("valid UTF-8"));
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, ParseError> {
        let start = self.i;
        self.eat(b'-');
        while self
            .b
            .get(self.i)
            .is_some_and(|c| c.is_ascii_digit() || matches!(c, b'.' | b'e' | b'E' | b'+' | b'-'))
        {
            self.i += 1;
        }
        let text = std::str::from_utf8(&self.b[start..self.i]).expect("valid UTF-8");
        text.parse::<f64>().map(Value::Num).map_err(|_| ParseError {
            at: start,
            msg: format!("invalid number '{text}'"),
        })
    }

    fn array(&mut self) -> Result<Value, ParseError> {
        self.expect(b'[')?;
        let mut out = Vec::new();
        self.skip_ws();
        if self.eat(b']') {
            return Ok(Value::Arr(out));
        }
        loop {
            self.skip_ws();
            out.push(self.value()?);
            self.skip_ws();
            if self.eat(b']') {
                return Ok(Value::Arr(out));
            }
            self.expect(b',')?;
        }
    }

    fn object(&mut self) -> Result<Value, ParseError> {
        self.expect(b'{')?;
        let mut out = BTreeMap::new();
        self.skip_ws();
        if self.eat(b'}') {
            return Ok(Value::Obj(out));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let v = self.value()?;
            out.insert(key, v);
            self.skip_ws();
            if self.eat(b'}') {
                return Ok(Value::Obj(out));
            }
            self.expect(b',')?;
        }
    }
}

/// Escape a string for embedding in emitted JSON.
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(parse("null").unwrap(), Value::Null);
        assert_eq!(parse(" true ").unwrap(), Value::Bool(true));
        assert_eq!(parse("false").unwrap(), Value::Bool(false));
        assert_eq!(parse("-12.5e2").unwrap(), Value::Num(-1250.0));
        assert_eq!(parse("\"a\\nb\"").unwrap(), Value::Str("a\nb".into()));
    }

    #[test]
    fn parses_nested_structure() {
        let v = parse(r#"{"a": [1, 2, {"b": "x"}], "c": null}"#).unwrap();
        let arr = v.get("a").unwrap().as_arr().unwrap();
        assert_eq!(arr[0].as_f64(), Some(1.0));
        assert_eq!(arr[2].get("b").unwrap().as_str(), Some("x"));
        assert_eq!(v.get("c"), Some(&Value::Null));
        assert_eq!(v.get("missing"), None);
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in [
            "",
            "{",
            "[1,]",
            "{\"a\" 1}",
            "tru",
            "1 2",
            "\"unterminated",
            "{]",
        ] {
            assert!(parse(bad).is_err(), "{bad:?} should fail");
        }
    }

    #[test]
    fn escape_round_trips_through_parse() {
        // Includes control chars that escape() emits as \uXXXX.
        let original = "line\n\t\"quoted\" \\ bell\u{7} vt\u{b} done";
        let doc = format!("{{\"k\": \"{}\"}}", escape(original));
        let v = parse(&doc).unwrap();
        assert_eq!(v.get("k").unwrap().as_str(), Some(original));
    }

    #[test]
    fn unicode_escapes_decode() {
        assert_eq!(parse("\"\\u0041\\u00e9\"").unwrap().as_str(), Some("Aé"));
        assert!(parse("\"\\ud800\"").is_err()); // lone surrogate
        assert!(parse("\"\\u12\"").is_err()); // truncated
    }

    #[test]
    fn unicode_strings_survive() {
        let v = parse("\"héllo → wörld\"").unwrap();
        assert_eq!(v.as_str(), Some("héllo → wörld"));
    }
}
