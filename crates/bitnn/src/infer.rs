//! Inference utilities and the accuracy-proxy metrics.
//!
//! Without ImageNet, the effect of kernel clustering on "accuracy" is
//! measured as *agreement*: run the original and the substituted network on
//! the same inputs and compare predictions and logits. Perfect agreement
//! means clustering provably cannot change any downstream accuracy number.

use crate::engine::Engine;
use crate::model::ReActNet;
use crate::tensor::Tensor;
use crate::weightgen::random_floats;

/// Agreement statistics between two models on a shared input batch.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Agreement {
    /// Fraction of inputs on which the top-1 predictions match.
    pub top1: f64,
    /// Mean absolute logit difference, averaged over inputs and classes.
    pub mean_abs_dev: f64,
    /// Largest absolute logit difference observed.
    pub max_abs_dev: f64,
    /// Number of inputs compared.
    pub inputs: usize,
}

/// Salt mixed into a user-facing seed for synthetic input batches, so
/// inputs are deterministic per seed but uncorrelated with the weight
/// streams. Shared by `bnnkc run`, `bnnkc serve`, and `loadgen` so their
/// logits are comparable bit-for-bit.
pub const RUN_INPUT_SALT: u64 = 0x1A7E57;

/// FNV-1a over the raw bit patterns of the logits: a stable, bit-exact
/// digest two executions of the same model on the same input must share.
/// `bnnkc run` prints it per item and `loadgen --check` recomputes it
/// over served responses, so CI can diff served logits against the
/// offline path.
pub fn logits_digest(logits: &[f32]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for v in logits {
        for b in v.to_bits().to_le_bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
    h
}

/// Generate a deterministic batch of synthetic input images.
pub fn synthetic_batch(n: usize, channels: usize, size: usize, seed: u64) -> Vec<Tensor> {
    (0..n)
        .map(|i| {
            Tensor::from_vec(
                &[1, channels, size, size],
                random_floats(channels * size * size, 1.0, seed.wrapping_add(i as u64)),
            )
            .expect("consistent shape")
        })
        .collect()
}

/// Compare two models input-by-input.
///
/// # Panics
///
/// Panics if `inputs` is empty or the models produce different logit
/// shapes.
pub fn compare_models(a: &ReActNet, b: &ReActNet, inputs: &[Tensor]) -> Agreement {
    compare_models_with(a, b, inputs, &Engine::single_threaded())
}

/// [`compare_models`] with both models' forward passes batched across the
/// engine's worker threads. Results are identical to the single-threaded
/// comparison (the engine is bit-exact); only the wall-clock changes.
///
/// # Panics
///
/// Panics if `inputs` is empty or the models produce different logit
/// shapes.
pub fn compare_models_with(
    a: &ReActNet,
    b: &ReActNet,
    inputs: &[Tensor],
    engine: &Engine,
) -> Agreement {
    assert!(!inputs.is_empty(), "need at least one input");
    let outs_a = a.forward_batch(inputs, engine);
    let outs_b = b.forward_batch(inputs, engine);
    let mut matches = 0usize;
    let mut dev_sum = 0.0f64;
    let mut dev_max = 0.0f64;
    let mut dev_count = 0usize;
    for (ya, yb) in outs_a.iter().zip(&outs_b) {
        assert_eq!(ya.shape(), yb.shape(), "logit shape mismatch");
        if ya.argmax() == yb.argmax() {
            matches += 1;
        }
        for (&va, &vb) in ya.data().iter().zip(yb.data()) {
            let d = (va - vb).abs() as f64;
            dev_sum += d;
            dev_max = dev_max.max(d);
            dev_count += 1;
        }
    }
    Agreement {
        top1: matches as f64 / inputs.len() as f64,
        mean_abs_dev: dev_sum / dev_count as f64,
        max_abs_dev: dev_max,
        inputs: inputs.len(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn model_agrees_with_itself() {
        let m = ReActNet::tiny(1);
        let inputs = synthetic_batch(3, 3, 32, 42);
        let agg = compare_models(&m, &m, &inputs);
        assert_eq!(agg.top1, 1.0);
        assert_eq!(agg.mean_abs_dev, 0.0);
        assert_eq!(agg.max_abs_dev, 0.0);
        assert_eq!(agg.inputs, 3);
    }

    #[test]
    fn parallel_comparison_matches_single_threaded() {
        let a = ReActNet::tiny(1);
        let b = ReActNet::tiny(2);
        let inputs = synthetic_batch(4, 3, 32, 17);
        let serial = compare_models(&a, &b, &inputs);
        let parallel = compare_models_with(&a, &b, &inputs, &Engine::with_threads(4));
        assert_eq!(serial, parallel);
    }

    #[test]
    fn different_models_disagree_somewhere() {
        let a = ReActNet::tiny(1);
        let b = ReActNet::tiny(2);
        let inputs = synthetic_batch(3, 3, 32, 42);
        let agg = compare_models(&a, &b, &inputs);
        assert!(agg.mean_abs_dev > 0.0);
    }

    #[test]
    fn synthetic_batch_is_deterministic() {
        let a = synthetic_batch(2, 3, 8, 7);
        let b = synthetic_batch(2, 3, 8, 7);
        assert_eq!(a[0].data(), b[0].data());
        assert_eq!(a[1].data(), b[1].data());
        assert_ne!(a[0].data(), a[1].data());
    }

    #[test]
    #[should_panic(expected = "at least one input")]
    fn empty_batch_panics() {
        let m = ReActNet::tiny(1);
        compare_models(&m, &m, &[]);
    }
}
