//! Error type shared across the crate.

use std::fmt;

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, BitnnError>;

/// Errors produced by tensor and layer operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BitnnError {
    /// A tensor was constructed or reshaped with an inconsistent shape.
    ShapeMismatch {
        /// What the operation expected.
        expected: String,
        /// What it received.
        got: String,
    },
    /// Two operands had incompatible dimensions.
    DimMismatch {
        /// Human-readable operation name.
        op: &'static str,
        /// Left-hand dimensions.
        lhs: Vec<usize>,
        /// Right-hand dimensions.
        rhs: Vec<usize>,
    },
    /// A layer was configured with invalid hyper-parameters.
    InvalidConfig(String),
    /// An operation was asked for a geometry the implementation does not
    /// support (e.g. a shortcut stride other than 1 or 2).
    Unsupported(String),
}

impl fmt::Display for BitnnError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BitnnError::ShapeMismatch { expected, got } => {
                write!(f, "shape mismatch: expected {expected}, got {got}")
            }
            BitnnError::DimMismatch { op, lhs, rhs } => {
                write!(f, "dimension mismatch in {op}: lhs {lhs:?} vs rhs {rhs:?}")
            }
            BitnnError::InvalidConfig(msg) => write!(f, "invalid configuration: {msg}"),
            BitnnError::Unsupported(msg) => write!(f, "unsupported: {msg}"),
        }
    }
}

impl std::error::Error for BitnnError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_nonempty() {
        let e = BitnnError::ShapeMismatch {
            expected: "[1, 2]".into(),
            got: "[3]".into(),
        };
        assert!(!e.to_string().is_empty());
        let e = BitnnError::DimMismatch {
            op: "gemm",
            lhs: vec![1, 2],
            rhs: vec![3, 4],
        };
        assert!(e.to_string().contains("gemm"));
        let e = BitnnError::InvalidConfig("bad".into());
        assert!(e.to_string().contains("bad"));
        let e = BitnnError::Unsupported("stride 3".into());
        assert!(e.to_string().contains("stride 3"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<BitnnError>();
    }
}
