//! Inference-time batch normalization with bias (paper Fig. 1's
//! "BatchNorm / Bias" stage).
//!
//! At inference BN is an affine per-channel transform:
//! `y = gamma * (x - mean) / sqrt(var + eps) + beta`. ReActNet computes
//! this stage in full precision (32-bit), which is why the "Others" row of
//! Table I is 32-bit.

use crate::layers::Layer;
use crate::tensor::Tensor;

/// Per-channel affine batch normalization (inference mode).
#[derive(Debug, Clone, PartialEq)]
pub struct BatchNorm {
    gamma: Vec<f32>,
    beta: Vec<f32>,
    mean: Vec<f32>,
    var: Vec<f32>,
    eps: f32,
    // Folded multiplier/offset, precomputed once.
    scale: Vec<f32>,
    offset: Vec<f32>,
}

impl BatchNorm {
    /// Build from raw statistics.
    ///
    /// # Panics
    ///
    /// Panics if the parameter vectors have different lengths or `eps <= 0`.
    pub fn new(gamma: Vec<f32>, beta: Vec<f32>, mean: Vec<f32>, var: Vec<f32>, eps: f32) -> Self {
        let c = gamma.len();
        assert!(
            beta.len() == c && mean.len() == c && var.len() == c,
            "batch-norm parameter length mismatch"
        );
        assert!(eps > 0.0, "eps must be positive");
        let mut scale = Vec::with_capacity(c);
        let mut offset = Vec::with_capacity(c);
        for i in 0..c {
            let s = gamma[i] / (var[i] + eps).sqrt();
            scale.push(s);
            offset.push(beta[i] - s * mean[i]);
        }
        BatchNorm {
            gamma,
            beta,
            mean,
            var,
            eps,
            scale,
            offset,
        }
    }

    /// Identity batch-norm (gamma=1, beta=0, mean=0, var=1).
    pub fn identity(channels: usize) -> Self {
        BatchNorm::new(
            vec![1.0; channels],
            vec![0.0; channels],
            vec![0.0; channels],
            vec![1.0; channels],
            1e-5,
        )
    }

    /// Number of channels.
    pub fn channels(&self) -> usize {
        self.gamma.len()
    }

    /// The folded per-channel scale (`gamma / sqrt(var + eps)`).
    pub fn folded_scale(&self) -> &[f32] {
        &self.scale
    }

    /// The folded per-channel offset (`beta - scale * mean`).
    pub fn folded_offset(&self) -> &[f32] {
        &self.offset
    }

    /// [`Layer::forward`] into a reusable output tensor (the graph
    /// executor's arena path): same affine transform, zero allocations
    /// once `out` has the right capacity. Bit-exact with the trait method
    /// (same per-element multiply-add in the same order).
    ///
    /// # Panics
    ///
    /// Panics if `input` is not 4-D with this layer's channel count.
    pub fn forward_into(&self, input: &Tensor, out: &mut Tensor) {
        let shape = input.shape();
        assert_eq!(shape.len(), 4, "BatchNorm expects a 4-D tensor");
        assert_eq!(shape[1], self.gamma.len(), "channel mismatch in BatchNorm");
        let (n, c, hw) = (shape[0], shape[1], shape[2] * shape[3]);
        out.reset_for_overwrite(shape);
        let src = input.data();
        let dst = out.data_mut();
        for img in 0..n {
            for ch in 0..c {
                let (s, o) = (self.scale[ch], self.offset[ch]);
                let row = &src[(img * c + ch) * hw..][..hw];
                let orow = &mut dst[(img * c + ch) * hw..][..hw];
                for (d, &v) in orow.iter_mut().zip(row) {
                    *d = s * v + o;
                }
            }
        }
    }
}

impl Layer for BatchNorm {
    fn forward(&self, input: &Tensor) -> Tensor {
        let shape = input.shape();
        assert_eq!(shape.len(), 4, "BatchNorm expects a 4-D tensor");
        assert_eq!(shape[1], self.gamma.len(), "channel mismatch in BatchNorm");
        let (n, c, h, w) = (shape[0], shape[1], shape[2], shape[3]);
        let mut out = Tensor::zeros(shape);
        for img in 0..n {
            for ch in 0..c {
                let (s, o) = (self.scale[ch], self.offset[ch]);
                for y in 0..h {
                    for x in 0..w {
                        out.set4(img, ch, y, x, s * input.at4(img, ch, y, x) + o);
                    }
                }
            }
        }
        out
    }

    fn param_bits(&self) -> usize {
        // At inference BN is stored folded: one scale and one offset per
        // channel (32 bits each). This matches the paper's Table I
        // accounting, where "Others" is a small sliver of total storage.
        self.gamma.len() * 2 * 32
    }

    fn describe(&self) -> String {
        format!("BatchNorm({} channels)", self.gamma.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_is_identity() {
        let t = Tensor::from_vec(&[1, 2, 1, 2], vec![1.0, -2.0, 3.5, 0.0]).unwrap();
        let bn = BatchNorm::identity(2);
        let out = bn.forward(&t);
        for (a, b) in t.data().iter().zip(out.data()) {
            assert!((a - b).abs() < 1e-4, "{a} vs {b}");
        }
    }

    #[test]
    fn affine_transform_known_values() {
        // gamma=2, beta=1, mean=3, var=4 (sigma=2): y = 2*(x-3)/2 + 1 = x - 2.
        let bn = BatchNorm::new(vec![2.0], vec![1.0], vec![3.0], vec![4.0], 1e-9);
        let t = Tensor::from_vec(&[1, 1, 1, 3], vec![0.0, 3.0, 5.0]).unwrap();
        let out = bn.forward(&t);
        for (got, expect) in out.data().iter().zip([-2.0, 1.0, 3.0]) {
            assert!((got - expect).abs() < 1e-4);
        }
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn mismatched_params_panic() {
        BatchNorm::new(vec![1.0], vec![0.0, 0.0], vec![0.0], vec![1.0], 1e-5);
    }

    #[test]
    fn param_bits_count_folded_form() {
        // Folded inference form: scale + offset per channel.
        assert_eq!(BatchNorm::identity(8).param_bits(), 8 * 2 * 32);
    }
}
