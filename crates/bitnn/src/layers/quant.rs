//! 8-bit quantized layers for the network's full-precision ends.
//!
//! ReActNet's input convolution and output fully-connected layer are not
//! binarized; the paper quantizes both to 8 bits (Sec. II-B, Table I rows
//! "Input Layer" / "Output Layer"). We implement symmetric quantization:
//! weights are stored as `i8` with one per-tensor `f32` scale fixed at
//! construction, inputs are quantized on the fly with one scale *per
//! sample* (per dim-0 row), accumulation is `i32`, and the result is
//! rescaled to `f32`.
//!
//! The per-sample activation scale makes every sample's output depend
//! only on that sample — batch composition never changes a result. The
//! batched executors rely on this: stacking K single-image requests into
//! one `[K, C, H, W]` forward (the weight-stationary batch schedule, the
//! serving daemon's coalesced batches) is bit-exact with K separate
//! forwards.

use crate::layers::Layer;
use crate::ops::conv::Conv2dParams;
use crate::tensor::Tensor;

/// Symmetric 8-bit quantizer: returns `(q, scale)` with
/// `q = round(x / scale)` clamped to `[-127, 127]`.
///
/// `inline(always)` so the ISA-dispatched forward passes get a
/// vectorizable instantiation (max-reduction and round/clamp both map to
/// vector ops under AVX).
#[inline(always)]
pub fn quantize_symmetric(data: &[f32]) -> (Vec<i8>, f32) {
    let mut q = Vec::new();
    let scale = quantize_symmetric_into(data, &mut q);
    (q, scale)
}

/// [`quantize_symmetric`] into a reusable buffer (the arena-reuse forward
/// paths), returning the scale. Bit-exact with the allocating variant.
#[inline(always)]
pub fn quantize_symmetric_into(data: &[f32], q: &mut Vec<i8>) -> f32 {
    let max_abs = data.iter().fold(0.0f32, |m, &v| m.max(v.abs()));
    let scale = if max_abs == 0.0 { 1.0 } else { max_abs / 127.0 };
    q.clear();
    q.extend(
        data.iter()
            .map(|&v| (v / scale).round().clamp(-127.0, 127.0) as i8),
    );
    scale
}

/// Reusable buffers for the quantized layers' forward passes: the
/// quantized-input staging buffer and the pixel-major accumulator. Owned
/// by [`crate::engine::Scratch`] so steady-state inference through the
/// graph executor performs no per-forward allocation in the 8-bit ends.
#[derive(Debug, Clone, Default)]
pub struct QuantScratch {
    /// Quantized input values.
    pub(crate) q: Vec<i8>,
    /// Pixel-major `[OH*OW, KF]` integer accumulator (stem conv only).
    pub(crate) acc: Vec<i32>,
}

/// Dequantize a single value.
#[inline]
pub fn dequantize(q: i32, scale: f32) -> f32 {
    q as f32 * scale
}

/// 8-bit quantized 2-D convolution (the network's input layer).
#[derive(Debug, Clone, PartialEq)]
pub struct QuantConv2d {
    weights_q: Vec<i8>,
    /// Tap-major transposed weights `wt[(ch*kh + ky)*kw + kx][k]`, cached
    /// at construction for [`Self::forward_fast`]'s filter-inner loop.
    weights_t: Vec<i32>,
    w_scale: f32,
    filters: usize,
    channels: usize,
    kh: usize,
    kw: usize,
    params: Conv2dParams,
}

impl QuantConv2d {
    /// Quantize float weights `[K, C, KH, KW]` to 8 bits and build the layer.
    ///
    /// # Panics
    ///
    /// Panics if `weights` is not 4-D.
    pub fn from_float(weights: &Tensor, params: Conv2dParams) -> Self {
        let shape = weights.shape();
        assert_eq!(shape.len(), 4, "QuantConv2d weights must be 4-D");
        let (q, w_scale) = quantize_symmetric(weights.data());
        let (kf, c, kh, kw) = (shape[0], shape[1], shape[2], shape[3]);
        let mut weights_t = vec![0i32; kf * c * kh * kw];
        for k in 0..kf {
            for ch in 0..c {
                for ky in 0..kh {
                    for kx in 0..kw {
                        weights_t[(((ch * kh) + ky) * kw + kx) * kf + k] =
                            q[((k * c + ch) * kh + ky) * kw + kx] as i32;
                    }
                }
            }
        }
        QuantConv2d {
            weights_q: q,
            weights_t,
            w_scale,
            filters: kf,
            channels: c,
            kh,
            kw,
            params,
        }
    }

    /// Output filter count.
    pub fn filters(&self) -> usize {
        self.filters
    }

    /// Input channel count.
    pub fn channels(&self) -> usize {
        self.channels
    }

    /// Kernel spatial size `(kh, kw)`.
    pub fn kernel_size(&self) -> (usize, usize) {
        (self.kh, self.kw)
    }

    /// Convolution hyper-parameters.
    pub fn params(&self) -> Conv2dParams {
        self.params
    }

    #[inline]
    fn w_at(&self, k: usize, c: usize, y: usize, x: usize) -> i32 {
        self.weights_q[((k * self.channels + c) * self.kh + y) * self.kw + x] as i32
    }

    /// Forward pass with the accumulation restructured for speed: the
    /// accumulator is laid out pixel-major with the *filter* index
    /// innermost, so each kernel tap broadcasts one input sample against
    /// all filters in a contiguous (vectorizable) run, and the valid
    /// output range per tap is precomputed so the inner loops carry no
    /// bounds branch. Integer accumulation is associative, so the result
    /// is bit-exact with [`Layer::forward`]; the engine's forward path
    /// uses this variant while the trait method stays the scalar seed
    /// baseline. Dispatches to an AVX2 instantiation when available.
    ///
    /// # Panics
    ///
    /// Panics if the input is not 4-D with the layer's channel count.
    pub fn forward_fast(&self, input: &Tensor) -> Tensor {
        let mut out = Tensor::default();
        self.forward_fast_with(input, &mut QuantScratch::default(), &mut out);
        out
    }

    /// [`Self::forward_fast`] into reusable scratch and output buffers
    /// (the graph executor's arena path): no per-forward allocation once
    /// the buffers are warm. Bit-exact with [`Self::forward_fast`].
    ///
    /// # Panics
    ///
    /// Panics if the input is not 4-D with the layer's channel count.
    pub fn forward_fast_with(&self, input: &Tensor, scratch: &mut QuantScratch, out: &mut Tensor) {
        #[cfg(target_arch = "x86_64")]
        {
            /// AVX2 instantiation of [`QuantConv2d::forward_fast_impl`].
            #[target_feature(enable = "avx2,popcnt")]
            unsafe fn fast_avx2(
                layer: &QuantConv2d,
                input: &Tensor,
                scratch: &mut QuantScratch,
                out: &mut Tensor,
            ) {
                layer.forward_fast_impl(input, scratch, out);
            }
            if crate::simd::avx2() {
                // SAFETY: avx2 + popcnt were detected at runtime.
                return unsafe { fast_avx2(self, input, scratch, out) };
            }
        }
        self.forward_fast_impl(input, scratch, out)
    }

    /// Portable body of [`Self::forward_fast_with`].
    #[inline(always)]
    fn forward_fast_impl(&self, input: &Tensor, scratch: &mut QuantScratch, out: &mut Tensor) {
        let shape = input.shape();
        assert_eq!(shape.len(), 4, "QuantConv2d expects 4-D input");
        assert_eq!(shape[1], self.channels, "channel mismatch in QuantConv2d");
        let (n, c, h, w) = (shape[0], shape[1], shape[2], shape[3]);
        let (stride, pad) = (self.params.stride, self.params.pad);
        let kf = self.filters;
        let oh = self.params.out_dim(h, self.kh);
        let ow = self.params.out_dim(w, self.kw);
        let wt = &self.weights_t; // tap-major, cached at construction
                                  // Every (filter, pixel) accumulator cell is dequantized below, so
                                  // neither buffer needs a zero-fill beyond the per-image reset.
        out.reset_for_overwrite(&[n, kf, oh, ow]);
        if scratch.acc.len() != oh * ow * kf {
            scratch.acc.clear();
            scratch.acc.resize(oh * ow * kf, 0);
        }
        let QuantScratch { q, acc } = scratch;
        // Valid output index range for kernel tap offset `t` along an axis
        // of input extent `extent` and output extent `out_extent`: exactly
        // the `o` with `0 <= o*stride + t - pad < extent`.
        let valid = |t: usize, extent: usize, out_extent: usize| -> (usize, usize) {
            let lo = if t >= pad {
                0
            } else {
                (pad - t).div_ceil(stride)
            };
            let hi = if extent + pad > t {
                ((extent - 1 + pad - t) / stride + 1).min(out_extent)
            } else {
                0
            };
            (lo.min(hi), hi)
        };
        for img in 0..n {
            // One activation scale per sample (batch-invariant results).
            let in_scale =
                quantize_symmetric_into(&input.data()[img * c * h * w..][..c * h * w], q);
            let out_scale = in_scale * self.w_scale;
            acc.fill(0);
            for ch in 0..c {
                let plane = &q[ch * h * w..][..h * w];
                for ky in 0..self.kh {
                    let (oy_lo, oy_hi) = valid(ky, h, oh);
                    for kx in 0..self.kw {
                        let wrow = &wt[(((ch * self.kh) + ky) * self.kw + kx) * kf..][..kf];
                        let (ox_lo, ox_hi) = valid(kx, w, ow);
                        for oy in oy_lo..oy_hi {
                            let iy = oy * stride + ky - pad;
                            let irow = &plane[iy * w..][..w];
                            for ox in ox_lo..ox_hi {
                                let v = irow[ox * stride + kx - pad] as i32;
                                let arow = &mut acc[(oy * ow + ox) * kf..][..kf];
                                for (a, &wv) in arow.iter_mut().zip(wrow) {
                                    *a += v * wv;
                                }
                            }
                        }
                    }
                }
            }
            // Dequantize, transposing [pixel][filter] to NCHW.
            let od = &mut out.data_mut()[img * kf * oh * ow..][..kf * oh * ow];
            for pix in 0..oh * ow {
                let arow = &acc[pix * kf..][..kf];
                for (k, &a) in arow.iter().enumerate() {
                    od[k * oh * ow + pix] = dequantize(a, out_scale);
                }
            }
        }
    }
}

impl Layer for QuantConv2d {
    fn forward(&self, input: &Tensor) -> Tensor {
        let shape = input.shape();
        assert_eq!(shape.len(), 4, "QuantConv2d expects 4-D input");
        assert_eq!(shape[1], self.channels, "channel mismatch in QuantConv2d");
        let (n, c, h, w) = (shape[0], shape[1], shape[2], shape[3]);
        let oh = self.params.out_dim(h, self.kh);
        let ow = self.params.out_dim(w, self.kw);
        let mut out = Tensor::zeros(&[n, self.filters, oh, ow]);
        for img in 0..n {
            // One activation scale per sample (batch-invariant results).
            let (input_q, in_scale) =
                quantize_symmetric(&input.data()[img * c * h * w..][..c * h * w]);
            let iq =
                |ch: usize, y: usize, x: usize| -> i32 { input_q[(ch * h + y) * w + x] as i32 };
            let out_scale = in_scale * self.w_scale;
            for k in 0..self.filters {
                for oy in 0..oh {
                    for ox in 0..ow {
                        let mut acc = 0i32;
                        for ch in 0..c {
                            for ky in 0..self.kh {
                                for kx in 0..self.kw {
                                    let y = (oy * self.params.stride + ky) as isize
                                        - self.params.pad as isize;
                                    let x = (ox * self.params.stride + kx) as isize
                                        - self.params.pad as isize;
                                    if y >= 0 && y < h as isize && x >= 0 && x < w as isize {
                                        acc += iq(ch, y as usize, x as usize)
                                            * self.w_at(k, ch, ky, kx);
                                    }
                                    // 8-bit layers use conventional zero
                                    // padding (zero is representable here).
                                }
                            }
                        }
                        out.set4(img, k, oy, ox, dequantize(acc, out_scale));
                    }
                }
            }
        }
        out
    }

    fn param_bits(&self) -> usize {
        self.weights_q.len() * 8
    }

    fn describe(&self) -> String {
        format!(
            "QuantConv2d({}x{}, {}->{} ch, 8-bit)",
            self.kh, self.kw, self.channels, self.filters
        )
    }
}

/// 8-bit quantized fully-connected layer (the network's output layer).
#[derive(Debug, Clone, PartialEq)]
pub struct QuantLinear {
    weights_q: Vec<i8>,
    w_scale: f32,
    in_features: usize,
    out_features: usize,
}

impl QuantLinear {
    /// Quantize float weights `[out, in]` (row-major) to 8 bits.
    ///
    /// # Panics
    ///
    /// Panics if `weights.len() != out_features * in_features`.
    pub fn from_float(weights: &[f32], out_features: usize, in_features: usize) -> Self {
        assert_eq!(weights.len(), out_features * in_features);
        let (q, w_scale) = quantize_symmetric(weights);
        QuantLinear {
            weights_q: q,
            w_scale,
            in_features,
            out_features,
        }
    }

    /// Input feature count.
    pub fn in_features(&self) -> usize {
        self.in_features
    }

    /// Output feature count.
    pub fn out_features(&self) -> usize {
        self.out_features
    }

    /// Forward over a flattened `[N, in_features]` tensor, producing
    /// `[N, out_features]`.
    ///
    /// # Panics
    ///
    /// Panics if the trailing dimension is not `in_features`.
    pub fn forward_2d(&self, input: &Tensor) -> Tensor {
        let mut out = Tensor::default();
        self.forward_2d_with(input, &mut QuantScratch::default(), &mut out);
        out
    }

    /// [`Self::forward_2d`] into reusable scratch and output buffers (the
    /// graph executor's arena path). Bit-exact with [`Self::forward_2d`].
    ///
    /// # Panics
    ///
    /// Panics if the trailing dimension is not `in_features`.
    pub fn forward_2d_with(&self, input: &Tensor, scratch: &mut QuantScratch, out: &mut Tensor) {
        let shape = input.shape();
        assert_eq!(shape.len(), 2, "QuantLinear expects a 2-D tensor");
        assert_eq!(
            shape[1], self.in_features,
            "feature mismatch in QuantLinear"
        );
        let n = shape[0];
        out.reset_for_overwrite(&[n, self.out_features]);
        for img in 0..n {
            // One activation scale per sample (batch-invariant results).
            let row = &input.data()[img * self.in_features..][..self.in_features];
            let in_scale = quantize_symmetric_into(row, &mut scratch.q);
            let input_q = &scratch.q;
            let out_scale = in_scale * self.w_scale;
            for o in 0..self.out_features {
                let w_row = &self.weights_q[o * self.in_features..][..self.in_features];
                let acc: i32 = input_q
                    .iter()
                    .zip(w_row)
                    .map(|(&a, &w)| a as i32 * w as i32)
                    .sum();
                out.data_mut()[img * self.out_features + o] = dequantize(acc, out_scale);
            }
        }
    }
}

impl Layer for QuantLinear {
    fn forward(&self, input: &Tensor) -> Tensor {
        self.forward_2d(input)
    }

    fn param_bits(&self) -> usize {
        self.weights_q.len() * 8
    }

    fn describe(&self) -> String {
        format!(
            "QuantLinear({}->{}, 8-bit)",
            self.in_features, self.out_features
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quantize_roundtrip_accuracy() {
        let data = vec![-1.0, -0.5, 0.0, 0.25, 1.0];
        let (q, s) = quantize_symmetric(&data);
        for (&orig, &qi) in data.iter().zip(&q) {
            let back = dequantize(qi as i32, s);
            assert!((orig - back).abs() <= s, "{orig} -> {back} (scale {s})");
        }
    }

    #[test]
    fn quantize_all_zero_is_safe() {
        let (q, s) = quantize_symmetric(&[0.0; 4]);
        assert_eq!(q, vec![0i8; 4]);
        assert!(s > 0.0);
    }

    #[test]
    fn linear_matches_float_within_quant_error() {
        let w = vec![1.0, 2.0, -1.0, 0.5, -0.25, 0.0]; // [2 out, 3 in]
        let lin = QuantLinear::from_float(&w, 2, 3);
        let x = Tensor::from_vec(&[1, 3], vec![1.0, -1.0, 2.0]).unwrap();
        let out = lin.forward(&x);
        // Float reference: [1*1 + 2*-1 + -1*2, 0.5*1 + -0.25*-1 + 0] = [-3, 0.75]
        assert!((out.data()[0] - -3.0).abs() < 0.1);
        assert!((out.data()[1] - 0.75).abs() < 0.1);
    }

    #[test]
    fn conv_matches_float_within_quant_error() {
        let w = Tensor::from_vec(&[1, 1, 2, 2], vec![1.0, -1.0, 0.5, 0.25]).unwrap();
        let conv = QuantConv2d::from_float(&w, Conv2dParams::default());
        let x = Tensor::from_vec(&[1, 1, 2, 2], vec![1.0, 2.0, -1.0, 0.5]).unwrap();
        let out = conv.forward(&x);
        // Float: 1*1 + 2*-1 + -1*0.5 + 0.5*0.25 = -1.375.
        assert_eq!(out.shape(), &[1, 1, 1, 1]);
        assert!((out.data()[0] - -1.375).abs() < 0.05, "{}", out.data()[0]);
    }

    #[test]
    fn forward_fast_is_bit_exact_with_forward() {
        use crate::weightgen::random_floats;
        // Integer accumulation commutes, so the restructured loop must
        // reproduce the scalar path exactly across strides/pads/kernels.
        for (kh, kw, stride, pad) in [(3, 3, 1, 1), (3, 3, 2, 1), (1, 1, 1, 0), (2, 2, 2, 0)] {
            let w = Tensor::from_vec(
                &[4, 3, kh, kw],
                random_floats(4 * 3 * kh * kw, 1.0, (kh * 10 + stride) as u64),
            )
            .unwrap();
            let conv = QuantConv2d::from_float(&w, Conv2dParams { stride, pad });
            let x = Tensor::from_vec(&[2, 3, 8, 7], random_floats(2 * 3 * 8 * 7, 1.0, 5)).unwrap();
            let a = conv.forward(&x);
            let b = conv.forward_fast(&x);
            assert_eq!(a.shape(), b.shape());
            assert_eq!(a.data(), b.data(), "k{kh}x{kw} s{stride} p{pad}");
        }
    }

    #[test]
    fn batch_composition_never_changes_a_sample() {
        use crate::weightgen::random_floats;
        // The per-sample activation scale makes stacking bit-exact: the
        // stacked batch schedule and the serving daemon both rely on it.
        let w = Tensor::from_vec(&[4, 3, 3, 3], random_floats(4 * 3 * 9, 1.0, 21)).unwrap();
        let conv = QuantConv2d::from_float(&w, Conv2dParams { stride: 1, pad: 1 });
        let a = Tensor::from_vec(&[1, 3, 5, 5], random_floats(75, 1.0, 1)).unwrap();
        // A second sample with a very different dynamic range.
        let b = Tensor::from_vec(&[1, 3, 5, 5], random_floats(75, 40.0, 2)).unwrap();
        let mut stacked_vals = a.data().to_vec();
        stacked_vals.extend_from_slice(b.data());
        let stacked = Tensor::from_vec(&[2, 3, 5, 5], stacked_vals).unwrap();
        let ya = conv.forward_fast(&a);
        let yb = conv.forward_fast(&b);
        let ys = conv.forward_fast(&stacked);
        assert_eq!(&ys.data()[..ya.data().len()], ya.data());
        assert_eq!(&ys.data()[ya.data().len()..], yb.data());
        assert_eq!(conv.forward(&stacked).data(), ys.data());

        let lw: Vec<f32> = random_floats(2 * 75, 1.0, 3);
        let lin = QuantLinear::from_float(&lw, 2, 75);
        let ra = Tensor::from_vec(&[1, 75], a.data().to_vec()).unwrap();
        let rb = Tensor::from_vec(&[1, 75], b.data().to_vec()).unwrap();
        let rs = Tensor::from_vec(&[2, 75], stacked.data().to_vec()).unwrap();
        let la = lin.forward_2d(&ra);
        let lb = lin.forward_2d(&rb);
        let ls = lin.forward_2d(&rs);
        assert_eq!(&ls.data()[..2], la.data());
        assert_eq!(&ls.data()[2..], lb.data());
    }

    #[test]
    fn param_bits_are_8_per_weight() {
        let conv = QuantConv2d::from_float(&Tensor::zeros(&[4, 3, 3, 3]), Conv2dParams::default());
        assert_eq!(conv.param_bits(), 4 * 3 * 9 * 8);
        let lin = QuantLinear::from_float(&[0.0; 10 * 4], 10, 4);
        assert_eq!(lin.param_bits(), 40 * 8);
    }
}
