//! Binary fully-connected layer.
//!
//! ReActNet's classifier is 8-bit ([`crate::layers::quant::QuantLinear`]),
//! but fully-binary heads are common in the BNN literature the paper
//! builds on (daBNN ships one), so the substrate provides it: weights and
//! inputs are ±1, the product is an xnor-popcount GEMM.

use crate::layers::Layer;
use crate::ops::gemm::{gemm_binary, PackedMatrix};
use crate::tensor::Tensor;

/// A 1-bit dense layer: `[N, in] -> [N, out]`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BinLinear {
    weights: PackedMatrix,
}

impl BinLinear {
    /// Build from row-major weight bits (`out_features` rows of
    /// `in_features` bits; bit `1` = `+1`).
    ///
    /// # Panics
    ///
    /// Panics if `bits.len() != out_features * in_features`.
    pub fn new(out_features: usize, in_features: usize, bits: &[bool]) -> Self {
        let weights = PackedMatrix::from_bools(out_features, in_features, bits)
            .expect("weight bit count must match the geometry");
        BinLinear { weights }
    }

    /// Input feature count.
    pub fn in_features(&self) -> usize {
        self.weights.cols()
    }

    /// Output feature count.
    pub fn out_features(&self) -> usize {
        self.weights.rows()
    }

    /// The packed weights.
    pub fn weights(&self) -> &PackedMatrix {
        &self.weights
    }

    /// Forward over a `[N, in_features]` tensor: inputs are binarized
    /// with Eq. 1, the output is the integer dot product as `f32`.
    ///
    /// # Panics
    ///
    /// Panics if the input is not 2-D with the right feature count.
    pub fn forward_2d(&self, input: &Tensor) -> Tensor {
        let shape = input.shape();
        assert_eq!(shape.len(), 2, "BinLinear expects a 2-D tensor");
        assert_eq!(
            shape[1],
            self.in_features(),
            "feature mismatch in BinLinear"
        );
        let n = shape[0];
        let k = self.in_features();
        let mut a = PackedMatrix::zeros(n, k);
        for r in 0..n {
            for c in 0..k {
                if input.data()[r * k + c] >= 0.0 {
                    a.set(r, c, true);
                }
            }
        }
        let flat = gemm_binary(&a, &self.weights).expect("dimensions validated");
        let mut out = Tensor::zeros(&[n, self.out_features()]);
        for (o, v) in out.data_mut().iter_mut().zip(flat) {
            *o = v as f32;
        }
        out
    }
}

impl Layer for BinLinear {
    fn forward(&self, input: &Tensor) -> Tensor {
        self.forward_2d(input)
    }

    fn param_bits(&self) -> usize {
        self.in_features() * self.out_features()
    }

    fn describe(&self) -> String {
        format!(
            "BinLinear({}->{}, 1-bit)",
            self.in_features(),
            self.out_features()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matching_row_maximizes_output() {
        let k = 100;
        let bits: Vec<bool> = (0..k).map(|i| i % 2 == 0).collect();
        let layer = BinLinear::new(1, k, &bits);
        let input_vals: Vec<f32> = bits.iter().map(|&b| if b { 1.0 } else { -1.0 }).collect();
        let input = Tensor::from_vec(&[1, k], input_vals).unwrap();
        let out = layer.forward_2d(&input);
        assert_eq!(out.data()[0], k as f32);
    }

    #[test]
    fn input_binarization_uses_eq1() {
        // Inputs 0.0 and -0.0 binarize to +1; a tiny negative to -1.
        let layer = BinLinear::new(1, 3, &[true, true, true]);
        let input = Tensor::from_vec(&[1, 3], vec![0.0, -0.0, -1e-9]).unwrap();
        let out = layer.forward_2d(&input);
        assert_eq!(out.data()[0], 1.0 + 1.0 - 1.0);
    }

    #[test]
    fn batch_dimension_works() {
        let layer = BinLinear::new(2, 4, &[true; 8]);
        let input = Tensor::from_vec(&[3, 4], vec![1.0; 12]).unwrap();
        let out = layer.forward_2d(&input);
        assert_eq!(out.shape(), &[3, 2]);
        assert!(out.data().iter().all(|&v| v == 4.0));
    }

    #[test]
    fn param_bits_one_per_weight() {
        let layer = BinLinear::new(10, 64, &vec![false; 640]);
        assert_eq!(layer.param_bits(), 640);
        assert!(layer.describe().contains("64->10"));
    }

    #[test]
    #[should_panic(expected = "feature mismatch")]
    fn wrong_width_panics() {
        let layer = BinLinear::new(2, 4, &[true; 8]);
        layer.forward_2d(&Tensor::zeros(&[1, 5]));
    }
}
