//! RSign — ReActNet's shifted binarization.
//!
//! ReActNet generalizes Eq. 1 with a learnable per-channel shift `α_c`:
//! `sign(x - α_c)`. Shifting before binarization is one of the paper's
//! cited accuracy enablers ("the Prelu activation is biased by shifting and
//! reshaping its input"); the same idea applies to the sign function.

use crate::layers::Layer;
use crate::tensor::{BitTensor, Tensor};

/// Per-channel shifted sign activation.
#[derive(Debug, Clone, PartialEq)]
pub struct RSign {
    shifts: Vec<f32>,
}

impl RSign {
    /// RSign with explicit per-channel shifts.
    pub fn new(shifts: Vec<f32>) -> Self {
        RSign { shifts }
    }

    /// RSign with all shifts at zero (plain Eq. 1 sign).
    pub fn zero(channels: usize) -> Self {
        RSign {
            shifts: vec![0.0; channels],
        }
    }

    /// Number of channels.
    pub fn channels(&self) -> usize {
        self.shifts.len()
    }

    /// The per-channel shifts.
    pub fn shifts(&self) -> &[f32] {
        &self.shifts
    }

    /// Binarize a `[N, C, H, W]` tensor into a [`BitTensor`] of the same
    /// shape: bit `1` where `x >= shift_c`.
    ///
    /// # Panics
    ///
    /// Panics if the channel dimension does not match the shift count.
    pub fn binarize(&self, input: &Tensor) -> BitTensor {
        let shape = input.shape();
        assert_eq!(shape.len(), 4, "RSign expects a 4-D tensor");
        assert_eq!(shape[1], self.shifts.len(), "channel mismatch in RSign");
        let (n, c, h, w) = (shape[0], shape[1], shape[2], shape[3]);
        let mut out = BitTensor::zeros(shape);
        for img in 0..n {
            for ch in 0..c {
                let a = self.shifts[ch];
                for y in 0..h {
                    for x in 0..w {
                        if input.at4(img, ch, y, x) >= a {
                            let i = out.idx4(img, ch, y, x);
                            out.set(i, true);
                        }
                    }
                }
            }
        }
        out
    }
}

impl Layer for RSign {
    fn forward(&self, input: &Tensor) -> Tensor {
        self.binarize(input).to_tensor()
    }

    fn param_bits(&self) -> usize {
        self.shifts.len() * 32
    }

    fn describe(&self) -> String {
        format!("RSign({} channels)", self.shifts.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_shift_matches_plain_binarize() {
        let t = Tensor::from_vec(&[1, 2, 1, 2], vec![-1.0, 0.5, 0.0, -0.1]).unwrap();
        let rs = RSign::zero(2);
        assert_eq!(rs.binarize(&t), t.binarize());
    }

    #[test]
    fn shift_moves_threshold_per_channel() {
        let t = Tensor::from_vec(&[1, 2, 1, 1], vec![0.4, 0.4]).unwrap();
        let rs = RSign::new(vec![0.5, 0.3]);
        let b = rs.binarize(&t);
        assert!(!b.get(0)); // 0.4 < 0.5
        assert!(b.get(1)); // 0.4 >= 0.3
    }

    #[test]
    fn forward_produces_pm_one() {
        let t = Tensor::from_vec(&[1, 1, 1, 3], vec![-2.0, 0.0, 2.0]).unwrap();
        let out = RSign::zero(1).forward(&t);
        assert_eq!(out.data(), &[-1.0, 1.0, 1.0]);
    }

    #[test]
    #[should_panic(expected = "channel mismatch")]
    fn channel_mismatch_panics() {
        let t = Tensor::zeros(&[1, 3, 1, 1]);
        RSign::zero(2).binarize(&t);
    }

    #[test]
    fn layer_metadata() {
        let rs = RSign::zero(16);
        assert_eq!(rs.param_bits(), 512);
        assert!(rs.describe().contains("16"));
    }
}
