//! RSign — ReActNet's shifted binarization.
//!
//! ReActNet generalizes Eq. 1 with a learnable per-channel shift `α_c`:
//! `sign(x - α_c)`. Shifting before binarization is one of the paper's
//! cited accuracy enablers ("the Prelu activation is biased by shifting and
//! reshaping its input"); the same idea applies to the sign function.

use crate::layers::Layer;
use crate::pack::PackedActivations;
use crate::tensor::{BitTensor, Tensor};

/// Per-channel shifted sign activation.
#[derive(Debug, Clone, PartialEq)]
pub struct RSign {
    shifts: Vec<f32>,
}

impl RSign {
    /// RSign with explicit per-channel shifts.
    pub fn new(shifts: Vec<f32>) -> Self {
        RSign { shifts }
    }

    /// RSign with all shifts at zero (plain Eq. 1 sign).
    pub fn zero(channels: usize) -> Self {
        RSign {
            shifts: vec![0.0; channels],
        }
    }

    /// Number of channels.
    pub fn channels(&self) -> usize {
        self.shifts.len()
    }

    /// The per-channel shifts.
    pub fn shifts(&self) -> &[f32] {
        &self.shifts
    }

    /// Binarize a `[N, C, H, W]` tensor into a [`BitTensor`] of the same
    /// shape: bit `1` where `x >= shift_c`.
    ///
    /// # Panics
    ///
    /// Panics if the channel dimension does not match the shift count.
    pub fn binarize(&self, input: &Tensor) -> BitTensor {
        let mut out = BitTensor::zeros(&[0]);
        self.binarize_into(input, &mut out);
        out
    }

    /// [`Self::binarize`] into a reusable output buffer.
    ///
    /// `out` is re-shaped and cleared, reusing its allocation — the
    /// execution engine threads one such buffer through the forward pass
    /// so binarization stops allocating per layer. The inner loop walks
    /// each contiguous channel row once and sets bits through the packed
    /// words directly.
    ///
    /// # Panics
    ///
    /// Panics if the channel dimension does not match the shift count.
    pub fn binarize_into(&self, input: &Tensor, out: &mut BitTensor) {
        #[cfg(target_arch = "x86_64")]
        {
            /// AVX2 instantiation of [`RSign::binarize_into_impl`].
            #[target_feature(enable = "avx2")]
            unsafe fn binarize_avx2(layer: &RSign, input: &Tensor, out: &mut BitTensor) {
                layer.binarize_into_impl(input, out);
            }
            if crate::simd::avx2() {
                // SAFETY: avx2 was detected at runtime.
                return unsafe { binarize_avx2(self, input, out) };
            }
        }
        self.binarize_into_impl(input, out);
    }

    /// Portable body of [`Self::binarize_into`]: the channel row is split
    /// at 64-bit boundaries of the flat index so whole output words are
    /// assembled in a register (a vectorizable compare-and-pack) and
    /// stored once; ragged head/tail bits fall back to single-bit ORs.
    #[inline(always)]
    fn binarize_into_impl(&self, input: &Tensor, out: &mut BitTensor) {
        let shape = input.shape();
        assert_eq!(shape.len(), 4, "RSign expects a 4-D tensor");
        assert_eq!(shape[1], self.shifts.len(), "channel mismatch in RSign");
        let (n, c, h, w) = (shape[0], shape[1], shape[2], shape[3]);
        let hw = h * w;
        out.reset(shape);
        let data = input.data();
        let words = out.words_mut();
        let mut base = 0usize;
        for _img in 0..n {
            for ch in 0..c {
                let a = self.shifts[ch];
                let row = &data[base..base + hw];
                // Ragged head up to the next word boundary.
                let head = (64 - (base & 63)).min(hw) & 63;
                for (j, &v) in row[..head].iter().enumerate() {
                    let i = base + j;
                    words[i >> 6] |= u64::from(v >= a) << (i & 63);
                }
                // Aligned middle: one packed word per 64 comparisons.
                let mut j = head;
                while j + 64 <= hw {
                    let mut wd = 0u64;
                    for (bit, &v) in row[j..j + 64].iter().enumerate() {
                        wd |= u64::from(v >= a) << bit;
                    }
                    words[(base + j) >> 6] = wd;
                    j += 64;
                }
                // Ragged tail.
                for (off, &v) in row[j..].iter().enumerate() {
                    let i = base + j + off;
                    words[i >> 6] |= u64::from(v >= a) << (i & 63);
                }
                base += hw;
            }
        }
    }

    /// Binarize a `[N, C, H, W]` tensor straight into channel-packed lane
    /// words — the writer side of the compiled plan's binary-domain
    /// edges: where the next consumer is a dense-path convolution, the
    /// sign output never materializes as a flat bit tensor, skipping both
    /// that store and the per-conv re-pack (64 strided single-bit gathers
    /// per lane word). Bit-exact with packing [`Self::binarize`]'s output:
    /// the predicate per bit is the identical `x >= shift_c`.
    ///
    /// # Panics
    ///
    /// Panics if the channel dimension does not match the shift count.
    pub fn binarize_packed_into(&self, input: &Tensor, out: &mut PackedActivations) {
        #[cfg(target_arch = "x86_64")]
        {
            /// AVX2 instantiation of [`RSign::binarize_packed_into_impl`].
            #[target_feature(enable = "avx2")]
            unsafe fn binarize_packed_avx2(
                layer: &RSign,
                input: &Tensor,
                out: &mut PackedActivations,
            ) {
                layer.binarize_packed_into_impl(input, out);
            }
            if crate::simd::avx2() {
                // SAFETY: avx2 was detected at runtime.
                return unsafe { binarize_packed_avx2(self, input, out) };
            }
        }
        self.binarize_packed_into_impl(input, out);
    }

    /// Portable body of [`Self::binarize_packed_into`]: channel-major —
    /// each contiguous source channel row is compared against its shift
    /// once, and every resulting bit lands at one fixed `(lane, bit)`
    /// slot across the pixel words (a strided OR into the zeroed output).
    #[inline(always)]
    fn binarize_packed_into_impl(&self, input: &Tensor, out: &mut PackedActivations) {
        let shape = input.shape();
        assert_eq!(shape.len(), 4, "RSign expects a 4-D tensor");
        assert_eq!(shape[1], self.shifts.len(), "channel mismatch in RSign");
        let (n, c, h, w) = (shape[0], shape[1], shape[2], shape[3]);
        let hw = h * w;
        out.reset_zeroed(n, c, h, w);
        let lanes = out.lanes();
        let data = input.data();
        let words = out.words_mut();
        for img in 0..n {
            for ch in 0..c {
                let a = self.shifts[ch];
                let (lane, bit) = (ch / 64, ch % 64);
                let row = &data[(img * c + ch) * hw..][..hw];
                let base = img * hw * lanes + lane;
                for (pix, &v) in row.iter().enumerate() {
                    words[base + pix * lanes] |= u64::from(v >= a) << bit;
                }
            }
        }
    }
}

impl Layer for RSign {
    fn forward(&self, input: &Tensor) -> Tensor {
        self.binarize(input).to_tensor()
    }

    fn param_bits(&self) -> usize {
        self.shifts.len() * 32
    }

    fn describe(&self) -> String {
        format!("RSign({} channels)", self.shifts.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_shift_matches_plain_binarize() {
        let t = Tensor::from_vec(&[1, 2, 1, 2], vec![-1.0, 0.5, 0.0, -0.1]).unwrap();
        let rs = RSign::zero(2);
        assert_eq!(rs.binarize(&t), t.binarize());
    }

    #[test]
    fn shift_moves_threshold_per_channel() {
        let t = Tensor::from_vec(&[1, 2, 1, 1], vec![0.4, 0.4]).unwrap();
        let rs = RSign::new(vec![0.5, 0.3]);
        let b = rs.binarize(&t);
        assert!(!b.get(0)); // 0.4 < 0.5
        assert!(b.get(1)); // 0.4 >= 0.3
    }

    #[test]
    fn forward_produces_pm_one() {
        let t = Tensor::from_vec(&[1, 1, 1, 3], vec![-2.0, 0.0, 2.0]).unwrap();
        let out = RSign::zero(1).forward(&t);
        assert_eq!(out.data(), &[-1.0, 1.0, 1.0]);
    }

    #[test]
    #[should_panic(expected = "channel mismatch")]
    fn channel_mismatch_panics() {
        let t = Tensor::zeros(&[1, 3, 1, 1]);
        RSign::zero(2).binarize(&t);
    }

    #[test]
    fn layer_metadata() {
        let rs = RSign::zero(16);
        assert_eq!(rs.param_bits(), 512);
        assert!(rs.describe().contains("16"));
    }

    #[test]
    fn packed_binarize_matches_pack_of_binarize() {
        use crate::weightgen::random_floats;
        // Channel counts below, at, and above one lane word; odd spatial.
        for (n, c, h, w) in [(1, 3, 4, 5), (2, 64, 3, 3), (2, 70, 5, 7), (1, 1, 1, 1)] {
            let vals = random_floats(n * c * h * w, 1.0, (c * h) as u64);
            let t = Tensor::from_vec(&[n, c, h, w], vals).unwrap();
            let shifts = random_floats(c, 0.5, c as u64);
            let rs = RSign::new(shifts);
            let expect = PackedActivations::pack(&rs.binarize(&t)).unwrap();
            let mut got = PackedActivations::default();
            rs.binarize_packed_into(&t, &mut got);
            assert_eq!(got, expect, "n={n} c={c} h={h} w={w}");
        }
    }
}
