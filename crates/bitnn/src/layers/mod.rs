//! The ReActNet layer set (paper Fig. 1).
//!
//! A basic block is `Sign → 1-bit 3×3 Conv → BatchNorm(+bias) → RPReLU`
//! followed by `Sign → 1-bit 1×1 Conv → BatchNorm(+bias) → RPReLU`, with an
//! identity shortcut around each half. The input layer is an 8-bit
//! quantized convolution and the output layer an 8-bit quantized
//! fully-connected layer (paper Sec. II-B: "Both layers are computed using
//! full-precision values, and in this work, we quantize them using 8 bits").
//!
//! All layers implement [`Layer`], a simple `Tensor -> Tensor` forward
//! trait; binary convolutions additionally expose their packed kernels so
//! the compression crate can harvest bit sequences from them.

use crate::tensor::Tensor;

pub mod batchnorm;
pub mod binconv;
pub mod binlinear;
pub mod pool;
pub mod prelu;
pub mod quant;
pub mod sign;

pub use batchnorm::BatchNorm;
pub use binconv::BinConv2d;
pub use binlinear::BinLinear;
pub use pool::{avg_pool_2x2, avg_pool_2x2_into, global_avg_pool, global_avg_pool_into};
pub use prelu::RPReLU;
pub use quant::{QuantConv2d, QuantLinear, QuantScratch};
pub use sign::RSign;

/// A forward-only layer over `f32` tensors.
pub trait Layer {
    /// Run the layer.
    fn forward(&self, input: &Tensor) -> Tensor;

    /// Parameter storage in bits (used for the Table I breakdown).
    fn param_bits(&self) -> usize;

    /// Short human-readable description.
    fn describe(&self) -> String;
}
