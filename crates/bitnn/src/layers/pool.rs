//! Pooling. ReActNet ends with a global average pool before the classifier.

use crate::tensor::Tensor;

/// Global average pooling: `[N, C, H, W]` → `[N, C]`.
///
/// # Panics
///
/// Panics if the input is not 4-D or has empty spatial dimensions.
pub fn global_avg_pool(input: &Tensor) -> Tensor {
    let mut out = Tensor::default();
    global_avg_pool_into(input, &mut out);
    out
}

/// [`global_avg_pool`] into a reusable output tensor (the graph executor's
/// arena path). Bit-exact: identical accumulation order.
///
/// # Panics
///
/// Panics if the input is not 4-D or has empty spatial dimensions.
pub fn global_avg_pool_into(input: &Tensor, out: &mut Tensor) {
    let shape = input.shape();
    assert_eq!(shape.len(), 4, "global_avg_pool expects a 4-D tensor");
    let (n, c, h, w) = (shape[0], shape[1], shape[2], shape[3]);
    assert!(h > 0 && w > 0, "empty spatial dimensions");
    let inv = 1.0 / (h * w) as f32;
    out.reset_for_overwrite(&[n, c]);
    for img in 0..n {
        for ch in 0..c {
            let mut acc = 0.0f32;
            for y in 0..h {
                for x in 0..w {
                    acc += input.at4(img, ch, y, x);
                }
            }
            out.data_mut()[img * c + ch] = acc * inv;
        }
    }
}

/// 2×2 average pooling with stride 2 (odd trailing row/column averaged
/// over the in-bounds window, matching the convolution's floor semantics
/// for stride-2 output size with pad 1 on odd inputs handled by the
/// caller's geometry). This is the spatial-shortcut pool of the ReActNet
/// basic block and the downsampling stage of the plain-stack
/// architectures.
///
/// # Panics
///
/// Panics if the input is not 4-D.
pub fn avg_pool_2x2(x: &Tensor) -> Tensor {
    let mut out = Tensor::default();
    avg_pool_2x2_into(x, &mut out);
    out
}

/// [`avg_pool_2x2`] into a reusable output tensor (the graph executor's
/// arena path). Bit-exact: identical window accumulation order.
///
/// # Panics
///
/// Panics if the input is not 4-D.
pub fn avg_pool_2x2_into(x: &Tensor, out: &mut Tensor) {
    let shape = x.shape();
    assert_eq!(shape.len(), 4, "avg_pool_2x2 expects a 4-D tensor");
    let (n, c, h, w) = (shape[0], shape[1], shape[2], shape[3]);
    let oh = h.div_ceil(2);
    let ow = w.div_ceil(2);
    out.reset_for_overwrite(&[n, c, oh, ow]);
    for img in 0..n {
        for ch in 0..c {
            for oy in 0..oh {
                for ox in 0..ow {
                    let mut acc = 0.0;
                    let mut cnt = 0;
                    for dy in 0..2 {
                        for dx in 0..2 {
                            let y = oy * 2 + dy;
                            let xx = ox * 2 + dx;
                            if y < h && xx < w {
                                acc += x.at4(img, ch, y, xx);
                                cnt += 1;
                            }
                        }
                    }
                    out.set4(img, ch, oy, ox, acc / cnt as f32);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn averages_each_channel() {
        let t = Tensor::from_vec(&[1, 2, 1, 2], vec![1.0, 3.0, -2.0, 2.0]).unwrap();
        let out = global_avg_pool(&t);
        assert_eq!(out.shape(), &[1, 2]);
        assert_eq!(out.data(), &[2.0, 0.0]);
    }

    #[test]
    fn batch_dimension_is_preserved() {
        let t = Tensor::full(&[3, 4, 2, 2], 5.0);
        let out = global_avg_pool(&t);
        assert_eq!(out.shape(), &[3, 4]);
        assert!(out.data().iter().all(|&v| v == 5.0));
    }

    #[test]
    #[should_panic(expected = "4-D")]
    fn rejects_non_4d() {
        global_avg_pool(&Tensor::zeros(&[2, 2]));
    }

    #[test]
    fn avg_pool_2x2_averages_windows() {
        let x = Tensor::from_vec(&[1, 1, 2, 2], vec![1.0, 2.0, 3.0, 4.0]).unwrap();
        let y = avg_pool_2x2(&x);
        assert_eq!(y.shape(), &[1, 1, 1, 1]);
        assert_eq!(y.data()[0], 2.5);
    }

    #[test]
    fn avg_pool_2x2_odd_tail_uses_in_bounds_window() {
        let x = Tensor::from_vec(&[1, 1, 1, 3], vec![1.0, 3.0, 5.0]).unwrap();
        let y = avg_pool_2x2(&x);
        assert_eq!(y.shape(), &[1, 1, 1, 2]);
        assert_eq!(y.data(), &[2.0, 5.0]);
    }
}
