//! Pooling. ReActNet ends with a global average pool before the classifier.

use crate::tensor::Tensor;

/// Global average pooling: `[N, C, H, W]` → `[N, C]`.
///
/// # Panics
///
/// Panics if the input is not 4-D or has empty spatial dimensions.
pub fn global_avg_pool(input: &Tensor) -> Tensor {
    let shape = input.shape();
    assert_eq!(shape.len(), 4, "global_avg_pool expects a 4-D tensor");
    let (n, c, h, w) = (shape[0], shape[1], shape[2], shape[3]);
    assert!(h > 0 && w > 0, "empty spatial dimensions");
    let inv = 1.0 / (h * w) as f32;
    let mut out = Tensor::zeros(&[n, c]);
    for img in 0..n {
        for ch in 0..c {
            let mut acc = 0.0f32;
            for y in 0..h {
                for x in 0..w {
                    acc += input.at4(img, ch, y, x);
                }
            }
            out.data_mut()[img * c + ch] = acc * inv;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn averages_each_channel() {
        let t = Tensor::from_vec(&[1, 2, 1, 2], vec![1.0, 3.0, -2.0, 2.0]).unwrap();
        let out = global_avg_pool(&t);
        assert_eq!(out.shape(), &[1, 2]);
        assert_eq!(out.data(), &[2.0, 0.0]);
    }

    #[test]
    fn batch_dimension_is_preserved() {
        let t = Tensor::full(&[3, 4, 2, 2], 5.0);
        let out = global_avg_pool(&t);
        assert_eq!(out.shape(), &[3, 4]);
        assert!(out.data().iter().all(|&v| v == 5.0));
    }

    #[test]
    #[should_panic(expected = "4-D")]
    fn rejects_non_4d() {
        global_avg_pool(&Tensor::zeros(&[2, 2]));
    }
}
