//! RPReLU — ReActNet's shifted-and-reshaped PReLU.
//!
//! `y = x - γ_c > 0 ? (x - γ_c) + ζ_c : β_c * (x - γ_c) + ζ_c`
//!
//! i.e. a PReLU whose input is shifted by a learnable `γ_c` and whose output
//! is shifted by a learnable `ζ_c`, with a learnable negative slope `β_c`.
//! The paper highlights this transformation as a key accuracy contribution
//! of ReActNet (Sec. II-B).

use crate::layers::Layer;
use crate::tensor::Tensor;

/// Per-channel RPReLU activation.
#[derive(Debug, Clone, PartialEq)]
pub struct RPReLU {
    shift_in: Vec<f32>,
    slope: Vec<f32>,
    shift_out: Vec<f32>,
}

impl RPReLU {
    /// Build from per-channel input shifts, negative slopes, output shifts.
    ///
    /// # Panics
    ///
    /// Panics if the vectors have different lengths.
    pub fn new(shift_in: Vec<f32>, slope: Vec<f32>, shift_out: Vec<f32>) -> Self {
        assert!(
            shift_in.len() == slope.len() && slope.len() == shift_out.len(),
            "RPReLU parameter length mismatch"
        );
        RPReLU {
            shift_in,
            slope,
            shift_out,
        }
    }

    /// Plain PReLU with a uniform slope and no shifts.
    pub fn plain(channels: usize, slope: f32) -> Self {
        RPReLU::new(
            vec![0.0; channels],
            vec![slope; channels],
            vec![0.0; channels],
        )
    }

    /// Number of channels.
    pub fn channels(&self) -> usize {
        self.slope.len()
    }

    /// Apply the activation to one scalar of channel `c`.
    #[inline]
    pub fn apply(&self, c: usize, x: f32) -> f32 {
        let (si, sl, so) = self.channel_params(c);
        apply_params(si, sl, so, x)
    }

    /// The `(shift_in, slope, shift_out)` triple of channel `c`, for
    /// callers that hoist the per-channel loads out of an inner loop and
    /// apply [`apply_params`] per element (the engine's fused block
    /// stages).
    ///
    /// # Panics
    ///
    /// Panics if `c` is out of range.
    #[inline]
    pub fn channel_params(&self, c: usize) -> (f32, f32, f32) {
        (self.shift_in[c], self.slope[c], self.shift_out[c])
    }

    /// [`Layer::forward`] into a reusable output tensor (the graph
    /// executor's arena path). Bit-exact with the trait method: the same
    /// [`apply_params`] arithmetic per element.
    ///
    /// # Panics
    ///
    /// Panics if `input` is not 4-D with this layer's channel count.
    pub fn forward_into(&self, input: &Tensor, out: &mut Tensor) {
        let shape = input.shape();
        assert_eq!(shape.len(), 4, "RPReLU expects a 4-D tensor");
        assert_eq!(shape[1], self.slope.len(), "channel mismatch in RPReLU");
        let (n, c, hw) = (shape[0], shape[1], shape[2] * shape[3]);
        out.reset_for_overwrite(shape);
        let src = input.data();
        let dst = out.data_mut();
        for img in 0..n {
            for ch in 0..c {
                let (si, sl, so) = self.channel_params(ch);
                let row = &src[(img * c + ch) * hw..][..hw];
                let orow = &mut dst[(img * c + ch) * hw..][..hw];
                for (d, &v) in orow.iter_mut().zip(row) {
                    *d = apply_params(si, sl, so, v);
                }
            }
        }
    }
}

/// The RPReLU formula on already-hoisted channel parameters:
/// `y = (x - shift_in) > 0 ? (x - shift_in) : slope * (x - shift_in)`,
/// plus `shift_out`. Exactly [`RPReLU::apply`]'s arithmetic.
#[inline(always)]
pub fn apply_params(shift_in: f32, slope: f32, shift_out: f32, x: f32) -> f32 {
    let t = x - shift_in;
    let y = if t > 0.0 { t } else { slope * t };
    y + shift_out
}

impl Layer for RPReLU {
    fn forward(&self, input: &Tensor) -> Tensor {
        let shape = input.shape();
        assert_eq!(shape.len(), 4, "RPReLU expects a 4-D tensor");
        assert_eq!(shape[1], self.slope.len(), "channel mismatch in RPReLU");
        let (n, c, h, w) = (shape[0], shape[1], shape[2], shape[3]);
        let mut out = Tensor::zeros(shape);
        for img in 0..n {
            for ch in 0..c {
                for y in 0..h {
                    for x in 0..w {
                        out.set4(img, ch, y, x, self.apply(ch, input.at4(img, ch, y, x)));
                    }
                }
            }
        }
        out
    }

    fn param_bits(&self) -> usize {
        self.slope.len() * 3 * 32
    }

    fn describe(&self) -> String {
        format!("RPReLU({} channels)", self.slope.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plain_prelu_behaviour() {
        let p = RPReLU::plain(1, 0.25);
        assert_eq!(p.apply(0, 4.0), 4.0);
        assert_eq!(p.apply(0, -4.0), -1.0);
        assert_eq!(p.apply(0, 0.0), 0.0);
    }

    #[test]
    fn shifts_move_the_kink_and_output() {
        // shift_in = 1, slope = 0.5, shift_out = 2.
        let p = RPReLU::new(vec![1.0], vec![0.5], vec![2.0]);
        // x = 3: t = 2 > 0 -> 2 + 2 = 4.
        assert_eq!(p.apply(0, 3.0), 4.0);
        // x = 0: t = -1 -> -0.5 + 2 = 1.5.
        assert_eq!(p.apply(0, 0.0), 1.5);
        // Kink exactly at x = 1 -> t = 0 -> 0 * slope + 2 = 2.
        assert_eq!(p.apply(0, 1.0), 2.0);
    }

    #[test]
    fn forward_applies_per_channel() {
        let p = RPReLU::new(vec![0.0, 0.0], vec![0.0, 1.0], vec![0.0, 0.0]);
        let t = Tensor::from_vec(&[1, 2, 1, 1], vec![-3.0, -3.0]).unwrap();
        let out = p.forward(&t);
        assert_eq!(out.data(), &[0.0, -3.0]); // slope 0 clips, slope 1 passes
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn mismatched_lengths_panic() {
        RPReLU::new(vec![0.0], vec![0.0, 1.0], vec![0.0]);
    }
}
