//! Binary convolution layer (the paper's "1-bit 3×3 Conv" / "1-bit 1×1
//! Conv" stages).
//!
//! The layer owns the kernel in whichever representation it was deployed
//! with — flat bits, channel-packed lane words, or a deduplicated
//! [`SequenceBank`] — and derives every other form lazily on first use.

use crate::bank::SequenceBank;
use crate::engine::{ConvPath, ConvScratch, Engine, KernelForms};
use crate::layers::sign::RSign;
use crate::layers::Layer;
use crate::ops::conv::{conv2d_binary, kernel_position_ones, Conv2dParams};
use crate::ops::gemm::PackedMatrix;
use crate::ops::im2col::im2col_kernel_packed;
use crate::pack::{PackedActivations, PackedKernel};
use crate::tensor::{BitTensor, Tensor};
use std::sync::OnceLock;

/// A 1-bit convolution: binarize input (plain sign), run xnor-popcount conv.
///
/// Exactly one representation is populated at construction (flat weights
/// via [`Self::new`], lane words via [`Self::from_packed`], a sequence
/// bank via [`Self::from_bank`]); the rest — including the engine's
/// cached lowering forms — are derived lazily through [`OnceLock`]s, so a
/// forward pass materializes only what its execution path actually reads.
/// A bank-deployed layer running the memoized path never builds dense
/// lane words; a packed-deployed layer running the direct path never
/// builds the flat tensor or the im2col weight matrix.
#[derive(Debug, Clone)]
pub struct BinConv2d {
    filters: usize,
    channels: usize,
    kh: usize,
    kw: usize,
    params: Conv2dParams,
    /// Flat `[K, C, KH, KW]` bits (cold paths: harvest, serialization).
    weights: OnceLock<BitTensor>,
    /// Channel-packed lane words (dense lowerings).
    packed: OnceLock<PackedKernel>,
    /// Deduplicated sequence table (3×3 only; weight-stationary path).
    bank: OnceLock<SequenceBank>,
    /// im2col-lowered weight matrix (GEMM lowerings).
    lowered: OnceLock<PackedMatrix>,
    /// Per-filter, per-position ones counts (direct lowering's padding
    /// closed form).
    pad_ones: OnceLock<Vec<u32>>,
}

impl PartialEq for BinConv2d {
    fn eq(&self, other: &Self) -> bool {
        // The packed form determines the weights bijectively; the other
        // representations and derived caches carry no extra information.
        self.params == other.params && self.packed() == other.packed()
    }
}

impl Eq for BinConv2d {}

impl BinConv2d {
    /// Build from binary weights `[K, C, KH, KW]`.
    ///
    /// # Panics
    ///
    /// Panics if `weights` is not 4-D.
    pub fn new(weights: BitTensor, params: Conv2dParams) -> Self {
        let shape = weights.shape();
        assert_eq!(shape.len(), 4, "weights must be 4-D");
        let (filters, channels, kh, kw) = (shape[0], shape[1], shape[2], shape[3]);
        BinConv2d {
            filters,
            channels,
            kh,
            kw,
            params,
            weights: OnceLock::from(weights),
            packed: OnceLock::new(),
            bank: OnceLock::new(),
            lowered: OnceLock::new(),
            pad_ones: OnceLock::new(),
        }
    }

    /// Build from an already channel-packed kernel — the
    /// compressed-container deployment path: the stream decoder emits
    /// packed lane words and no flat `[K, C, KH, KW]` tensor ever exists.
    pub fn from_packed(packed: PackedKernel, params: Conv2dParams) -> Self {
        let (filters, channels, kh, kw) = (
            packed.filters(),
            packed.channels(),
            packed.kh(),
            packed.kw(),
        );
        BinConv2d {
            filters,
            channels,
            kh,
            kw,
            params,
            weights: OnceLock::new(),
            packed: OnceLock::from(packed),
            bank: OnceLock::new(),
            lowered: OnceLock::new(),
            pad_ones: OnceLock::new(),
        }
    }

    /// Build from a deduplicated sequence bank — the skew-aware
    /// deployment path (3×3 kernels by construction). Dense lane words
    /// are derived lazily only if a dense lowering is ever selected.
    pub fn from_bank(bank: SequenceBank, params: Conv2dParams) -> Self {
        let (filters, channels) = (bank.filters(), bank.channels());
        BinConv2d {
            filters,
            channels,
            kh: 3,
            kw: 3,
            params,
            weights: OnceLock::new(),
            packed: OnceLock::new(),
            bank: OnceLock::from(bank),
            lowered: OnceLock::new(),
            pad_ones: OnceLock::new(),
        }
    }

    /// The flat binary weights (unpacked from the packed form on first
    /// use when the layer was deployed without them).
    pub fn weights(&self) -> &BitTensor {
        self.weights.get_or_init(|| self.packed().unpack())
    }

    /// The channel-packed kernel, deriving it from the bank or flat
    /// weights on first use.
    pub fn packed(&self) -> &PackedKernel {
        self.packed.get_or_init(|| {
            if let Some(bank) = self.bank.get() {
                bank.to_packed()
            } else {
                PackedKernel::pack(
                    self.weights
                        .get()
                        .expect("some representation is populated"),
                )
                .expect("weights validated 4-D at construction")
            }
        })
    }

    /// The deduplicated sequence bank, built from the packed form on
    /// first use. `None` for non-3×3 kernels, which have no 9-bit
    /// sequence representation.
    pub fn bank(&self) -> Option<&SequenceBank> {
        if self.kh != 3 || self.kw != 3 {
            return None;
        }
        Some(
            self.bank.get_or_init(|| {
                SequenceBank::from_packed(self.packed()).expect("3x3 checked above")
            }),
        )
    }

    /// The cached im2col-lowered weight matrix (one row per filter,
    /// `KH*KW*C` position-major columns).
    pub fn lowered(&self) -> &PackedMatrix {
        self.lowered
            .get_or_init(|| im2col_kernel_packed(self.packed()))
    }

    /// The cached per-filter, per-position ones counts.
    pub fn pad_ones(&self) -> &[u32] {
        self.pad_ones
            .get_or_init(|| kernel_position_ones(self.packed()))
    }

    /// All cached kernel forms, for [`Engine::conv2d`] callers that do
    /// not know their lowering in advance (materializes every form).
    pub fn forms(&self) -> KernelForms<'_> {
        KernelForms {
            packed: self.packed(),
            lowered: Some(self.lowered()),
            pad_ones: Some(self.pad_ones()),
        }
    }

    /// The kernel forms the engine's chosen lowering will actually read,
    /// materializing only those — a direct-path forward never builds the
    /// im2col matrix and vice versa. When the path is autotuned at first
    /// dispatch (`None`), every form the candidate paths could read is
    /// provided, so the warmed forward never builds one mid-dispatch.
    pub fn forms_for(&self, engine: &Engine) -> KernelForms<'_> {
        match engine.conv_path(self.kh, self.kw, self.params, self.channels) {
            Some(ConvPath::Direct) | Some(ConvPath::Stream) => KernelForms {
                packed: self.packed(),
                lowered: None,
                pad_ones: Some(self.pad_ones()),
            },
            Some(ConvPath::Im2col) => KernelForms {
                packed: self.packed(),
                lowered: Some(self.lowered()),
                pad_ones: None,
            },
            Some(ConvPath::PointwiseGemm) => KernelForms {
                packed: self.packed(),
                lowered: None,
                pad_ones: None,
            },
            None => self.forms(),
        }
    }

    /// Whether the flat `[K, C, KH, KW]` tensor has been materialized.
    /// Deployment tests assert it stays cold on the packed/bank paths.
    pub fn has_dense_weights(&self) -> bool {
        self.weights.get().is_some()
    }

    /// Whether the channel-packed lane words have been materialized.
    pub fn has_packed(&self) -> bool {
        self.packed.get().is_some()
    }

    /// Convolution hyper-parameters.
    pub fn params(&self) -> Conv2dParams {
        self.params
    }

    /// Output filter count.
    pub fn filters(&self) -> usize {
        self.filters
    }

    /// Input channel count.
    pub fn in_channels(&self) -> usize {
        self.channels
    }

    /// Kernel spatial size `(kh, kw)`.
    pub fn kernel_size(&self) -> (usize, usize) {
        (self.kh, self.kw)
    }

    fn assert_geometry(&self, filters: usize, channels: usize, kh: usize, kw: usize, what: &str) {
        assert_eq!(
            (filters, channels, kh, kw),
            (self.filters, self.channels, self.kh, self.kw),
            "replacement {what} must keep the geometry"
        );
    }

    /// Replace the weights (used by the compression pipeline after
    /// clustering substitutes bit sequences).
    ///
    /// # Panics
    ///
    /// Panics if the new weights' shape differs from the old.
    pub fn set_weights(&mut self, weights: BitTensor) {
        let shape = weights.shape();
        assert_eq!(
            shape,
            [self.filters, self.channels, self.kh, self.kw],
            "replacement weights must keep the shape"
        );
        *self = Self::new(weights, self.params);
    }

    /// Replace the weights with an already channel-packed kernel (the
    /// compressed-container deployment path) — no flat tensor is built.
    ///
    /// # Panics
    ///
    /// Panics if the packed kernel's geometry differs from the old.
    pub fn set_packed(&mut self, packed: PackedKernel) {
        self.assert_geometry(
            packed.filters(),
            packed.channels(),
            packed.kh(),
            packed.kw(),
            "packed kernel",
        );
        *self = Self::from_packed(packed, self.params);
    }

    /// Replace the weights with a deduplicated sequence bank (the
    /// skew-aware deployment path) — neither the flat tensor nor dense
    /// lane words are built unless a dense lowering later asks.
    ///
    /// # Panics
    ///
    /// Panics if the bank's geometry differs from the old (3×3 only).
    pub fn set_bank(&mut self, bank: SequenceBank) {
        self.assert_geometry(bank.filters(), bank.channels(), 3, 3, "sequence bank");
        *self = Self::from_bank(bank, self.params);
    }

    /// Forward over an already-binarized, already-packed input (the seed's
    /// scalar path, kept as the perf-tracking baseline).
    pub fn forward_packed(&self, acts: &PackedActivations) -> Tensor {
        conv2d_binary(acts, self.packed(), self.params).expect("channel counts validated at build")
    }

    /// Forward over packed input through the execution engine, writing into
    /// a reusable output tensor. Bit-exact with [`Self::forward_packed`].
    pub fn forward_packed_with(
        &self,
        acts: &PackedActivations,
        engine: &Engine,
        scratch: &mut ConvScratch,
        out: &mut Tensor,
    ) {
        engine
            .conv2d_into(acts, self.forms_for(engine), self.params, scratch, out)
            .expect("channel counts validated at build");
    }

    /// Forward over binarized (but not yet packed) input, letting the
    /// engine's policy pick between the sequence-bank path — which
    /// consumes the bits directly and skips channel packing — and the
    /// dense lowerings, for which the bits are repacked into
    /// `packed_acts`. Bit-exact with [`Self::forward_packed`].
    ///
    /// Path selection: `DedupMode::On` forces the bank path for every
    /// 3×3 layer; `Off` forces the dense lowerings (a bank-only layer
    /// derives its lane words once); `Auto` follows the deployed
    /// representation — a layer holding *only* a bank stays in the
    /// compressed domain (its dense forms are never materialized),
    /// while a layer with dense forms resident keeps the SIMD kernels,
    /// which out-run the memoized gather on packed-SIMD hosts.
    pub fn forward_binarized_with(
        &self,
        bits: &BitTensor,
        packed_acts: &mut PackedActivations,
        engine: &Engine,
        scratch: &mut ConvScratch,
        out: &mut Tensor,
    ) {
        if self.wants_bank_path(engine) {
            if let Some(bank) = self.bank() {
                engine
                    .conv2d_bank_into(bits, bank, self.params, scratch, out)
                    .expect("channel counts validated at build");
                return;
            }
        }
        packed_acts
            .repack(bits)
            .expect("4-D input validated by binarize");
        self.forward_packed_with(packed_acts, engine, scratch, out);
    }

    /// Whether a forward under `engine` runs on the sequence-bank path
    /// (consuming raw bits) rather than the dense channel-packed
    /// lowerings. Exposed to the CPU backend so its sign stages can write
    /// packed lane words directly for dense-path layers — the binary-
    /// domain edge of the compiled plan — and raw bits only where the
    /// bank kernel wants them.
    pub(crate) fn wants_bank_path(&self, engine: &Engine) -> bool {
        let bank_resident = self.kh == 3
            && self.kw == 3
            && self.bank.get().is_some()
            && self.packed.get().is_none();
        engine.uses_bank(self.kh, self.kw, self.channels)
            || (engine.policy().dedup == crate::exec::DedupMode::Auto && bank_resident)
    }
}

impl Layer for BinConv2d {
    fn forward(&self, input: &Tensor) -> Tensor {
        let bits = RSign::zero(self.in_channels()).binarize(input);
        let packed = PackedActivations::pack(&bits).expect("4-D input");
        self.forward_packed(&packed)
    }

    fn param_bits(&self) -> usize {
        // One bit per weight (the point of a BNN).
        self.filters * self.channels * self.kh * self.kw
    }

    fn describe(&self) -> String {
        format!(
            "BinConv2d({}x{}, {}->{} ch, stride {}, pad {})",
            self.kh, self.kw, self.channels, self.filters, self.params.stride, self.params.pad
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn random_bits(shape: &[usize], seed: u64) -> BitTensor {
        let mut t = BitTensor::zeros(shape);
        let mut s = seed | 1;
        for i in 0..t.len() {
            s = s
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            if s >> 63 == 1 {
                t.set(i, true);
            }
        }
        t
    }

    #[test]
    fn forward_shape() {
        let w = random_bits(&[8, 16, 3, 3], 1);
        let conv = BinConv2d::new(w, Conv2dParams { stride: 2, pad: 1 });
        let input = Tensor::full(&[1, 16, 8, 8], 1.0);
        let out = conv.forward(&input);
        assert_eq!(out.shape(), &[1, 8, 4, 4]);
    }

    #[test]
    fn param_bits_is_one_per_weight() {
        let w = BitTensor::zeros(&[8, 16, 3, 3]);
        let conv = BinConv2d::new(w, Conv2dParams::default());
        assert_eq!(conv.param_bits(), 8 * 16 * 9);
    }

    #[test]
    fn set_weights_repacks() {
        let w0 = BitTensor::zeros(&[1, 4, 3, 3]);
        let mut conv = BinConv2d::new(w0, Conv2dParams::default());
        let input = Tensor::full(&[1, 4, 3, 3], 1.0);
        // All -1 weights vs all +1 input: full disagreement -> -36.
        assert_eq!(conv.forward(&input).data()[0], -36.0);
        let mut w1 = BitTensor::zeros(&[1, 4, 3, 3]);
        for i in 0..w1.len() {
            w1.set(i, true);
        }
        conv.set_weights(w1);
        assert_eq!(conv.forward(&input).data()[0], 36.0);
    }

    #[test]
    fn from_packed_matches_tensor_construction() {
        let w = random_bits(&[5, 70, 3, 3], 9);
        let via_tensor = BinConv2d::new(w.clone(), Conv2dParams { stride: 2, pad: 1 });
        let packed = PackedKernel::pack(&w).unwrap();
        let via_packed = BinConv2d::from_packed(packed, Conv2dParams { stride: 2, pad: 1 });
        assert_eq!(via_tensor, via_packed);
        let input = Tensor::full(&[1, 70, 8, 8], 1.0);
        assert_eq!(
            via_tensor.forward(&input).data(),
            via_packed.forward(&input).data()
        );
        // The lazy flat view agrees with the original tensor.
        assert_eq!(via_packed.weights(), &w);
        assert_eq!(via_packed.param_bits(), 5 * 70 * 9);
    }

    #[test]
    fn from_bank_matches_tensor_construction() {
        let w = random_bits(&[6, 20, 3, 3], 17);
        let params = Conv2dParams { stride: 1, pad: 1 };
        let via_tensor = BinConv2d::new(w.clone(), params);
        let packed = PackedKernel::pack(&w).unwrap();
        let bank = SequenceBank::from_packed(&packed).unwrap();
        let via_bank = BinConv2d::from_bank(bank, params);
        assert_eq!(via_tensor, via_bank);
        let input = Tensor::full(&[1, 20, 8, 8], 1.0);
        assert_eq!(
            via_tensor.forward(&input).data(),
            via_bank.forward(&input).data()
        );
        assert_eq!(via_bank.weights(), &w);
    }

    #[test]
    fn bank_path_forward_matches_dense() {
        let w = random_bits(&[7, 12, 3, 3], 23);
        let params = Conv2dParams { stride: 1, pad: 1 };
        let conv = BinConv2d::new(w, params);
        let input = crate::tensor::Tensor::from_vec(
            &[2, 12, 6, 6],
            (0..2 * 12 * 36).map(|i| ((i % 7) as f32) - 3.0).collect(),
        )
        .unwrap();
        let want = conv.forward(&input);
        let bits = RSign::zero(12).binarize(&input);
        let mut packed_acts = PackedActivations::default();
        let mut scratch = ConvScratch::default();
        let mut out = Tensor::default();
        let engine = Engine::new(crate::ExecPolicy {
            dedup: crate::DedupMode::On,
            ..crate::ExecPolicy::single_threaded()
        });
        conv.forward_binarized_with(&bits, &mut packed_acts, &engine, &mut scratch, &mut out);
        assert_eq!(want.data(), out.data());
    }

    #[test]
    fn set_packed_swaps_weights_without_flat_tensor() {
        let w0 = random_bits(&[2, 8, 3, 3], 4);
        let w1 = random_bits(&[2, 8, 3, 3], 5);
        let mut conv = BinConv2d::new(w0, Conv2dParams::default());
        conv.set_packed(PackedKernel::pack(&w1).unwrap());
        assert_eq!(conv, BinConv2d::new(w1.clone(), Conv2dParams::default()));
        assert_eq!(conv.weights(), &w1);
    }

    #[test]
    fn set_bank_swaps_weights() {
        let w0 = random_bits(&[2, 8, 3, 3], 4);
        let w1 = random_bits(&[2, 8, 3, 3], 6);
        let mut conv = BinConv2d::new(w0, Conv2dParams::default());
        let bank = SequenceBank::from_packed(&PackedKernel::pack(&w1).unwrap()).unwrap();
        conv.set_bank(bank);
        assert_eq!(conv, BinConv2d::new(w1.clone(), Conv2dParams::default()));
        assert_eq!(conv.weights(), &w1);
    }

    #[test]
    #[should_panic(expected = "keep the geometry")]
    fn set_packed_rejects_shape_change() {
        let mut conv = BinConv2d::new(BitTensor::zeros(&[1, 4, 3, 3]), Conv2dParams::default());
        conv.set_packed(PackedKernel::pack(&BitTensor::zeros(&[2, 4, 3, 3])).unwrap());
    }

    #[test]
    #[should_panic(expected = "keep the shape")]
    fn set_weights_rejects_shape_change() {
        let mut conv = BinConv2d::new(BitTensor::zeros(&[1, 4, 3, 3]), Conv2dParams::default());
        conv.set_weights(BitTensor::zeros(&[2, 4, 3, 3]));
    }

    #[test]
    fn describe_mentions_geometry() {
        let conv = BinConv2d::new(BitTensor::zeros(&[8, 4, 1, 1]), Conv2dParams::default());
        let d = conv.describe();
        assert!(d.contains("1x1") && d.contains("4->8"));
    }
}
