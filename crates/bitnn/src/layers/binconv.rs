//! Binary convolution layer (the paper's "1-bit 3×3 Conv" / "1-bit 1×1
//! Conv" stages).
//!
//! Owns both the flat binary weights (harvested by the compression crate as
//! bit sequences) and the channel-packed form used by the fast path.

use crate::engine::{ConvScratch, Engine, KernelForms};
use crate::layers::sign::RSign;
use crate::layers::Layer;
use crate::ops::conv::{conv2d_binary, kernel_position_ones, Conv2dParams};
use crate::ops::gemm::PackedMatrix;
use crate::ops::im2col::im2col_kernel_packed;
use crate::pack::{PackedActivations, PackedKernel};
use crate::tensor::{BitTensor, Tensor};
use std::sync::OnceLock;

/// A 1-bit convolution: binarize input (plain sign), run xnor-popcount conv.
///
/// The channel-packed kernel is the source of truth; besides it the layer
/// caches its im2col-lowered weight matrix and per-position ones counts,
/// so the execution engine's lowerings never rebuild either on the hot
/// path (see [`Self::forms`]). The flat `[K, C, KH, KW]` tensor is
/// derived lazily and only on cold paths (compression harvest, tests):
/// a layer built from a compressed stream via [`Self::from_packed`] never
/// materializes it unless asked.
#[derive(Debug, Clone)]
pub struct BinConv2d {
    /// Lazily unpacked flat view of `packed` (cold paths only).
    weights: OnceLock<BitTensor>,
    packed: PackedKernel,
    lowered: PackedMatrix,
    pad_ones: Vec<u32>,
    params: Conv2dParams,
}

impl PartialEq for BinConv2d {
    fn eq(&self, other: &Self) -> bool {
        // The packed form determines the weights bijectively; the lazy
        // flat view and the derived caches carry no extra information.
        self.packed == other.packed && self.params == other.params
    }
}

impl Eq for BinConv2d {}

impl BinConv2d {
    /// Build from binary weights `[K, C, KH, KW]`.
    ///
    /// # Panics
    ///
    /// Panics if `weights` is not 4-D.
    pub fn new(weights: BitTensor, params: Conv2dParams) -> Self {
        let packed = PackedKernel::pack(&weights).expect("weights must be 4-D");
        let mut conv = Self::from_packed(packed, params);
        conv.weights = OnceLock::from(weights);
        conv
    }

    /// Build from an already channel-packed kernel — the
    /// compressed-container hot path: the stream decoder emits packed lane
    /// words, and this constructor derives the engine's cached forms from
    /// them without ever materializing the flat `[K, C, KH, KW]` tensor.
    pub fn from_packed(packed: PackedKernel, params: Conv2dParams) -> Self {
        let lowered = im2col_kernel_packed(&packed);
        let pad_ones = kernel_position_ones(&packed);
        BinConv2d {
            weights: OnceLock::new(),
            packed,
            lowered,
            pad_ones,
            params,
        }
    }

    /// The flat binary weights (unpacked from the packed form on first
    /// use when the layer was built via [`Self::from_packed`]).
    pub fn weights(&self) -> &BitTensor {
        self.weights.get_or_init(|| self.packed.unpack())
    }

    /// The channel-packed kernel.
    pub fn packed(&self) -> &PackedKernel {
        &self.packed
    }

    /// The cached im2col-lowered weight matrix (one row per filter,
    /// `KH*KW*C` position-major columns).
    pub fn lowered(&self) -> &PackedMatrix {
        &self.lowered
    }

    /// All cached kernel forms, for [`Engine::conv2d`].
    pub fn forms(&self) -> KernelForms<'_> {
        KernelForms {
            packed: &self.packed,
            lowered: Some(&self.lowered),
            pad_ones: Some(&self.pad_ones),
        }
    }

    /// Convolution hyper-parameters.
    pub fn params(&self) -> Conv2dParams {
        self.params
    }

    /// Output filter count.
    pub fn filters(&self) -> usize {
        self.packed.filters()
    }

    /// Input channel count.
    pub fn in_channels(&self) -> usize {
        self.packed.channels()
    }

    /// Kernel spatial size `(kh, kw)`.
    pub fn kernel_size(&self) -> (usize, usize) {
        (self.packed.kh(), self.packed.kw())
    }

    /// Replace the weights (used by the compression pipeline after
    /// clustering substitutes bit sequences).
    ///
    /// # Panics
    ///
    /// Panics if the new weights' shape differs from the old.
    pub fn set_weights(&mut self, weights: BitTensor) {
        assert_eq!(
            weights.shape(),
            [
                self.packed.filters(),
                self.packed.channels(),
                self.packed.kh(),
                self.packed.kw()
            ],
            "replacement weights must keep the shape"
        );
        self.packed = PackedKernel::pack(&weights).expect("weights must be 4-D");
        self.lowered = im2col_kernel_packed(&self.packed);
        self.pad_ones = kernel_position_ones(&self.packed);
        self.weights = OnceLock::from(weights);
    }

    /// Replace the weights with an already channel-packed kernel (the
    /// compressed-container deployment path) — no flat tensor is built.
    ///
    /// # Panics
    ///
    /// Panics if the packed kernel's geometry differs from the old.
    pub fn set_packed(&mut self, packed: PackedKernel) {
        assert_eq!(
            (
                packed.filters(),
                packed.channels(),
                packed.kh(),
                packed.kw()
            ),
            (
                self.packed.filters(),
                self.packed.channels(),
                self.packed.kh(),
                self.packed.kw()
            ),
            "replacement packed kernel must keep the geometry"
        );
        *self = Self::from_packed(packed, self.params);
    }

    /// Forward over an already-binarized, already-packed input (the seed's
    /// scalar path, kept as the perf-tracking baseline).
    pub fn forward_packed(&self, acts: &PackedActivations) -> Tensor {
        conv2d_binary(acts, &self.packed, self.params).expect("channel counts validated at build")
    }

    /// Forward over packed input through the execution engine, writing into
    /// a reusable output tensor. Bit-exact with [`Self::forward_packed`].
    pub fn forward_packed_with(
        &self,
        acts: &PackedActivations,
        engine: &Engine,
        scratch: &mut ConvScratch,
        out: &mut Tensor,
    ) {
        engine
            .conv2d_into(acts, self.forms(), self.params, scratch, out)
            .expect("channel counts validated at build");
    }
}

impl Layer for BinConv2d {
    fn forward(&self, input: &Tensor) -> Tensor {
        let bits = RSign::zero(self.in_channels()).binarize(input);
        let packed = PackedActivations::pack(&bits).expect("4-D input");
        self.forward_packed(&packed)
    }

    fn param_bits(&self) -> usize {
        // One bit per weight (the point of a BNN).
        self.packed.filters() * self.packed.channels() * self.packed.kh() * self.packed.kw()
    }

    fn describe(&self) -> String {
        let (kh, kw) = self.kernel_size();
        format!(
            "BinConv2d({}x{}, {}->{} ch, stride {}, pad {})",
            kh,
            kw,
            self.in_channels(),
            self.filters(),
            self.params.stride,
            self.params.pad
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn random_bits(shape: &[usize], seed: u64) -> BitTensor {
        let mut t = BitTensor::zeros(shape);
        let mut s = seed | 1;
        for i in 0..t.len() {
            s = s
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            if s >> 63 == 1 {
                t.set(i, true);
            }
        }
        t
    }

    #[test]
    fn forward_shape() {
        let w = random_bits(&[8, 16, 3, 3], 1);
        let conv = BinConv2d::new(w, Conv2dParams { stride: 2, pad: 1 });
        let input = Tensor::full(&[1, 16, 8, 8], 1.0);
        let out = conv.forward(&input);
        assert_eq!(out.shape(), &[1, 8, 4, 4]);
    }

    #[test]
    fn param_bits_is_one_per_weight() {
        let w = BitTensor::zeros(&[8, 16, 3, 3]);
        let conv = BinConv2d::new(w, Conv2dParams::default());
        assert_eq!(conv.param_bits(), 8 * 16 * 9);
    }

    #[test]
    fn set_weights_repacks() {
        let w0 = BitTensor::zeros(&[1, 4, 3, 3]);
        let mut conv = BinConv2d::new(w0, Conv2dParams::default());
        let input = Tensor::full(&[1, 4, 3, 3], 1.0);
        // All -1 weights vs all +1 input: full disagreement -> -36.
        assert_eq!(conv.forward(&input).data()[0], -36.0);
        let mut w1 = BitTensor::zeros(&[1, 4, 3, 3]);
        for i in 0..w1.len() {
            w1.set(i, true);
        }
        conv.set_weights(w1);
        assert_eq!(conv.forward(&input).data()[0], 36.0);
    }

    #[test]
    fn from_packed_matches_tensor_construction() {
        let w = random_bits(&[5, 70, 3, 3], 9);
        let via_tensor = BinConv2d::new(w.clone(), Conv2dParams { stride: 2, pad: 1 });
        let packed = PackedKernel::pack(&w).unwrap();
        let via_packed = BinConv2d::from_packed(packed, Conv2dParams { stride: 2, pad: 1 });
        assert_eq!(via_tensor, via_packed);
        let input = Tensor::full(&[1, 70, 8, 8], 1.0);
        assert_eq!(
            via_tensor.forward(&input).data(),
            via_packed.forward(&input).data()
        );
        // The lazy flat view agrees with the original tensor.
        assert_eq!(via_packed.weights(), &w);
        assert_eq!(via_packed.param_bits(), 5 * 70 * 9);
    }

    #[test]
    fn set_packed_swaps_weights_without_flat_tensor() {
        let w0 = random_bits(&[2, 8, 3, 3], 4);
        let w1 = random_bits(&[2, 8, 3, 3], 5);
        let mut conv = BinConv2d::new(w0, Conv2dParams::default());
        conv.set_packed(PackedKernel::pack(&w1).unwrap());
        assert_eq!(conv, BinConv2d::new(w1.clone(), Conv2dParams::default()));
        assert_eq!(conv.weights(), &w1);
    }

    #[test]
    #[should_panic(expected = "keep the geometry")]
    fn set_packed_rejects_shape_change() {
        let mut conv = BinConv2d::new(BitTensor::zeros(&[1, 4, 3, 3]), Conv2dParams::default());
        conv.set_packed(PackedKernel::pack(&BitTensor::zeros(&[2, 4, 3, 3])).unwrap());
    }

    #[test]
    #[should_panic(expected = "keep the shape")]
    fn set_weights_rejects_shape_change() {
        let mut conv = BinConv2d::new(BitTensor::zeros(&[1, 4, 3, 3]), Conv2dParams::default());
        conv.set_weights(BitTensor::zeros(&[2, 4, 3, 3]));
    }

    #[test]
    fn describe_mentions_geometry() {
        let conv = BinConv2d::new(BitTensor::zeros(&[8, 4, 1, 1]), Conv2dParams::default());
        let d = conv.describe();
        assert!(d.contains("1x1") && d.contains("4->8"));
    }
}
