//! Lane-level bit primitives.
//!
//! Everything in the binary fast path reduces to three operations on 64-bit
//! lanes: xnor, popcount, and masked popcount for partially-filled lanes.
//! The paper evaluates on ARMv8 NEON (`veorq`/`vmvnq`/`vcntq`); on x86-64
//! `u64::count_ones` compiles to `popcnt`, so a `u64` lane is the portable
//! equivalent used throughout this crate.

/// Xnor of two lanes: a bit is set where the operands agree.
///
/// In the ±1 domain this is exactly element-wise multiplication
/// (paper Eq. 2): `+1 * +1 = +1`, `-1 * -1 = +1`, otherwise `-1`.
#[inline(always)]
pub fn xnor(a: u64, b: u64) -> u64 {
    !(a ^ b)
}

/// Popcount of a lane.
#[inline(always)]
pub fn popcount(x: u64) -> u32 {
    x.count_ones()
}

/// Xnor + popcount of two full lanes.
#[inline(always)]
pub fn xnor_popcount(a: u64, b: u64) -> u32 {
    xnor(a, b).count_ones()
}

/// Xnor + popcount over the low `n` bits only (`n <= 64`).
///
/// Used for the final, partially-filled lane when the channel count is not
/// a multiple of 64. The high bits of the lane are treated as absent rather
/// than as `-1` values.
///
/// # Panics
///
/// Panics in debug builds if `n > 64`.
#[inline(always)]
pub fn xnor_popcount_masked(a: u64, b: u64, n: usize) -> u32 {
    debug_assert!(n <= 64);
    (xnor(a, b) & mask(n)).count_ones()
}

/// A mask with the low `n` bits set (`n <= 64`).
#[inline(always)]
pub fn mask(n: usize) -> u64 {
    if n >= 64 {
        u64::MAX
    } else {
        (1u64 << n) - 1
    }
}

/// Convert a popcount over `n` bits into the ±1-domain dot product.
///
/// If `p` bits agreed out of `n`, the dot product is `p - (n - p) = 2p - n`.
#[inline(always)]
pub fn popcount_to_dot(p: u32, n: usize) -> i32 {
    2 * p as i32 - n as i32
}

/// Software SWAR popcount (no `popcnt` instruction), kept as a reference
/// implementation and for the simulator's cost model of targets without a
/// native popcount.
///
/// This is the classic parallel bit-count; it matches `u64::count_ones`
/// bit-for-bit and is exercised against it by the property tests below.
#[inline]
pub fn popcount_swar(mut x: u64) -> u32 {
    x -= (x >> 1) & 0x5555_5555_5555_5555;
    x = (x & 0x3333_3333_3333_3333) + ((x >> 2) & 0x3333_3333_3333_3333);
    x = (x + (x >> 4)) & 0x0f0f_0f0f_0f0f_0f0f;
    ((x.wrapping_mul(0x0101_0101_0101_0101)) >> 56) as u32
}

/// Accumulate xnor-popcounts across two lane slices of equal length.
///
/// This is the inner loop of every binary convolution and GEMM in the
/// crate; keeping it in one place lets the benches measure it in isolation.
///
/// Four *independent* accumulators break the `acc += popcount(..)` addition
/// dependency chain, so the CPU can keep several `popcnt`s in flight — the
/// same multi-accumulator trick daBNN's NEON kernel uses across 128-bit
/// registers.
///
/// # Panics
///
/// Panics if the slices have different lengths.
#[inline(always)]
pub fn xnor_popcount_slice(a: &[u64], b: &[u64]) -> u32 {
    assert_eq!(a.len(), b.len(), "lane slices must have equal length");
    let mut acc = [0u32; 4];
    let mut chunks_a = a.chunks_exact(4);
    let mut chunks_b = b.chunks_exact(4);
    for (ca, cb) in (&mut chunks_a).zip(&mut chunks_b) {
        acc[0] += xnor_popcount(ca[0], cb[0]);
        acc[1] += xnor_popcount(ca[1], cb[1]);
        acc[2] += xnor_popcount(ca[2], cb[2]);
        acc[3] += xnor_popcount(ca[3], cb[3]);
    }
    for (&x, &y) in chunks_a.remainder().iter().zip(chunks_b.remainder()) {
        acc[0] += xnor_popcount(x, y);
    }
    (acc[0] + acc[1]) + (acc[2] + acc[3])
}

/// OR the low `nbits` bits of `src` into `dst`, starting at bit offset
/// `off` of `dst`.
///
/// This is the word-at-a-time bit blit used by the im2col lowering and the
/// kernel flattener: an unaligned copy of a packed bit run without touching
/// individual bits. Bits of `src` beyond `nbits` must be zero (the packed
/// containers guarantee clean tails), and the destination range must
/// already be zero or the result is the OR of both.
///
/// # Panics
///
/// Panics if `dst` is too short to hold bit `off + nbits - 1`.
#[inline]
pub fn or_bits(dst: &mut [u64], off: usize, src: &[u64], nbits: usize) {
    if nbits == 0 {
        return;
    }
    let nw = nbits.div_ceil(64);
    let word = off / 64;
    let shift = off % 64;
    debug_assert!(src[..nw].iter().enumerate().all(|(i, &w)| {
        let used = (nbits - i * 64).min(64);
        used == 64 || w & !mask(used) == 0
    }));
    if shift == 0 {
        for (d, &s) in dst[word..word + nw].iter_mut().zip(&src[..nw]) {
            *d |= s;
        }
    } else {
        for (i, &v) in src[..nw].iter().enumerate() {
            dst[word + i] |= v << shift;
            let hi = v >> (64 - shift);
            if hi != 0 {
                dst[word + i + 1] |= hi;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn xnor_agrees_with_sign_multiplication() {
        // bit 1 = +1, bit 0 = -1; xnor bit is 1 iff the product is +1.
        for a in 0..2u64 {
            for b in 0..2u64 {
                let sa = if a == 1 { 1i32 } else { -1 };
                let sb = if b == 1 { 1i32 } else { -1 };
                let x = xnor(a, b) & 1;
                assert_eq!(x == 1, sa * sb == 1);
            }
        }
    }

    #[test]
    fn mask_edges() {
        assert_eq!(mask(0), 0);
        assert_eq!(mask(1), 1);
        assert_eq!(mask(63), u64::MAX >> 1);
        assert_eq!(mask(64), u64::MAX);
    }

    #[test]
    fn popcount_to_dot_known_values() {
        assert_eq!(popcount_to_dot(9, 9), 9); // all agree
        assert_eq!(popcount_to_dot(0, 9), -9); // all disagree
        assert_eq!(popcount_to_dot(5, 9), 1);
    }

    #[test]
    fn slice_accumulator_matches_scalar_loop() {
        let a: Vec<u64> = (0..13)
            .map(|i| 0x9e37_79b9_7f4a_7c15u64.wrapping_mul(i + 1))
            .collect();
        let b: Vec<u64> = (0..13)
            .map(|i| 0xc2b2_ae3d_27d4_eb4fu64.wrapping_mul(i + 3))
            .collect();
        let expect: u32 = a.iter().zip(&b).map(|(&x, &y)| xnor_popcount(x, y)).sum();
        assert_eq!(xnor_popcount_slice(&a, &b), expect);
    }

    #[test]
    #[should_panic(expected = "equal length")]
    fn slice_accumulator_rejects_mismatched_lengths() {
        xnor_popcount_slice(&[0], &[0, 1]);
    }

    #[test]
    fn or_bits_aligned_and_unaligned() {
        let src = [0b1011u64, 0b1];
        let mut dst = [0u64; 3];
        or_bits(&mut dst, 0, &src, 65);
        assert_eq!(dst, [0b1011, 0b1, 0]);
        let mut dst = [0u64; 3];
        or_bits(&mut dst, 62, &src, 65);
        // bit 0 of src -> bit 62, bit 1 -> 63, bit 3 -> 65, bit 64 -> 126.
        assert_eq!(dst[0], 0b11 << 62);
        assert_eq!(dst[1], 0b10 | (1 << 62));
        assert_eq!(dst[2], 0);
        // Two separate blits compose to the same result.
        let mut dst2 = [0u64; 3];
        or_bits(&mut dst2, 62, &[0b1011], 4);
        or_bits(&mut dst2, 126, &[0b1], 1);
        assert_eq!(dst2, dst);
    }

    proptest! {
        #[test]
        fn or_bits_matches_per_bit_copy(
            bits in proptest::collection::vec(any::<bool>(), 1..150),
            off in 0usize..130
        ) {
            let mut src = vec![0u64; bits.len().div_ceil(64)];
            for (i, &b) in bits.iter().enumerate() {
                if b {
                    src[i / 64] |= 1 << (i % 64);
                }
            }
            let total = off + bits.len();
            let mut dst = vec![0u64; total.div_ceil(64)];
            or_bits(&mut dst, off, &src, bits.len());
            for (i, &b) in bits.iter().enumerate() {
                let j = off + i;
                prop_assert_eq!((dst[j / 64] >> (j % 64)) & 1 == 1, b, "bit {}", i);
            }
            // No stray bits outside the target range.
            let set: u32 = dst.iter().map(|w| w.count_ones()).sum();
            prop_assert_eq!(set as usize, bits.iter().filter(|&&b| b).count());
        }
    }

    proptest! {
        #[test]
        fn swar_matches_native(x in any::<u64>()) {
            prop_assert_eq!(popcount_swar(x), x.count_ones());
        }

        #[test]
        fn masked_popcount_never_exceeds_n(a in any::<u64>(), b in any::<u64>(), n in 0usize..=64) {
            prop_assert!(xnor_popcount_masked(a, b, n) <= n as u32);
        }

        #[test]
        fn slice_accumulator_matches_per_lane_count_ones(
            pairs in proptest::collection::vec((any::<u64>(), any::<u64>()), 0..40)
        ) {
            // Cross-check the unrolled multi-accumulator path against the
            // definitional per-lane xnor + count_ones sum.
            let a: Vec<u64> = pairs.iter().map(|p| p.0).collect();
            let b: Vec<u64> = pairs.iter().map(|p| p.1).collect();
            let expect: u32 = a
                .iter()
                .zip(&b)
                .map(|(&x, &y)| (!(x ^ y)).count_ones())
                .sum();
            prop_assert_eq!(xnor_popcount_slice(&a, &b), expect);
        }

        #[test]
        fn xnor_is_commutative(a in any::<u64>(), b in any::<u64>()) {
            prop_assert_eq!(xnor(a, b), xnor(b, a));
        }

        #[test]
        fn xnor_self_is_all_ones(a in any::<u64>()) {
            prop_assert_eq!(xnor(a, a), u64::MAX);
        }
    }
}
