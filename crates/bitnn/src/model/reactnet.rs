//! The full ReActNet model (paper Sec. II-B).
//!
//! 15 layers: one 8-bit input convolution, 13 basic blocks
//! ([`crate::model::block::BasicBlock`]), and one 8-bit fully-connected
//! output layer, with a global average pool before the classifier. The
//! channel/stride schedule follows the MobileNet backbone that ReActNet is
//! derived from; with it, the storage breakdown reproduces paper Table I
//! (3×3 convolutions ≈ 68% of all bits).

use crate::engine::{Engine, Scratch};
use crate::error::{BitnnError, Result};
use crate::graph::{GraphNode, ModelGraph, NodeOp};
use crate::layers::{
    global_avg_pool, BatchNorm, BinConv2d, Layer, QuantConv2d, QuantLinear, RPReLU, RSign,
};
use crate::model::block::BasicBlock;
use crate::model::storage::{OpCategory, StorageBreakdown};
use crate::model::workload::LayerWorkload;
use crate::ops::conv::Conv2dParams;
use crate::tensor::{BitTensor, Tensor};
use crate::weightgen::{random_floats, random_kernel, SeqDistribution};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Channel/stride specification of one basic block.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BlockSpec {
    /// Input channels of the 3×3 stage.
    pub in_ch: usize,
    /// Output channels of the 1×1 stage (must be `in_ch` or `2 * in_ch`).
    pub out_ch: usize,
    /// Stride of the 3×3 stage (1 or 2).
    pub stride: usize,
}

/// Model hyper-parameters.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReActNetConfig {
    /// Input image side length (square inputs).
    pub image_size: usize,
    /// Input image channels (3 for RGB).
    pub input_channels: usize,
    /// Stem (input convolution) output channels.
    pub stem_channels: usize,
    /// The 13-block (or fewer, for scaled-down models) schedule.
    pub blocks: Vec<BlockSpec>,
    /// Classifier output count.
    pub num_classes: usize,
}

impl ReActNetConfig {
    /// The paper's full configuration: 224×224 input, MobileNet schedule,
    /// 1000 classes.
    pub fn full() -> Self {
        let s = |in_ch, out_ch, stride| BlockSpec {
            in_ch,
            out_ch,
            stride,
        };
        ReActNetConfig {
            image_size: 224,
            input_channels: 3,
            stem_channels: 32,
            blocks: vec![
                s(32, 64, 1),
                s(64, 128, 2),
                s(128, 128, 1),
                s(128, 256, 2),
                s(256, 256, 1),
                s(256, 512, 2),
                s(512, 512, 1),
                s(512, 512, 1),
                s(512, 512, 1),
                s(512, 512, 1),
                s(512, 512, 1),
                s(512, 1024, 2),
                s(1024, 1024, 1),
            ],
            num_classes: 1000,
        }
    }

    /// The full 13-block schedule with every channel count scaled by
    /// `scale` (rounded, clamped to at least 8 channels) — the geometry
    /// the `bnnkc` CLI compresses and runs. The stem and each block's
    /// input channels use the same formula, so a container written by
    /// `bnnkc compress --scale S` always matches `ReActNetConfig::scaled(S)`.
    ///
    /// # Errors
    ///
    /// Returns a description of the inconsistency when the clamping
    /// breaks the `out_ch ∈ {C, 2C}` block invariant (very small scales).
    pub fn scaled(scale: f64) -> std::result::Result<Self, String> {
        if !scale.is_finite() || scale <= 0.0 {
            return Err("scale must be positive".into());
        }
        let full = Self::full();
        let ch = |c: usize| ((c as f64 * scale).round() as usize).max(8);
        let mut cfg = full.clone();
        cfg.stem_channels = ch(full.blocks[0].in_ch);
        for (i, b) in cfg.blocks.iter_mut().enumerate() {
            b.in_ch = ch(full.blocks[i].in_ch);
            b.out_ch = if i + 1 < full.blocks.len() {
                ch(full.blocks[i + 1].in_ch)
            } else {
                // The full schedule's last block keeps its channel count.
                ch(full.blocks[i].in_ch)
            };
        }
        cfg.validate()
            .map_err(|e| format!("scale {scale} produces an inconsistent schedule: {e}"))?;
        Ok(cfg)
    }

    /// A scaled-down configuration for tests and examples: 32×32 input,
    /// three blocks, 10 classes.
    pub fn tiny() -> Self {
        let s = |in_ch, out_ch, stride| BlockSpec {
            in_ch,
            out_ch,
            stride,
        };
        ReActNetConfig {
            image_size: 32,
            input_channels: 3,
            stem_channels: 8,
            blocks: vec![s(8, 16, 1), s(16, 16, 2), s(16, 32, 2)],
            num_classes: 10,
        }
    }

    /// Validate internal consistency.
    ///
    /// # Errors
    ///
    /// Returns a description of the first inconsistency found.
    pub fn validate(&self) -> std::result::Result<(), String> {
        if self.blocks.is_empty() {
            return Err("at least one block is required".into());
        }
        let mut c = self.stem_channels;
        for (i, b) in self.blocks.iter().enumerate() {
            if b.in_ch != c {
                return Err(format!(
                    "block {i}: expects {c} input channels, spec says {}",
                    b.in_ch
                ));
            }
            if b.out_ch != b.in_ch && b.out_ch != 2 * b.in_ch {
                return Err(format!("block {i}: out_ch must be C or 2C"));
            }
            if b.stride != 1 && b.stride != 2 {
                return Err(format!("block {i}: stride must be 1 or 2"));
            }
            c = b.out_ch;
        }
        Ok(())
    }

    /// Per-layer workload descriptors (geometry for the timing simulator),
    /// walking the same spatial arithmetic as [`ReActNet::forward`].
    /// Available on the bare configuration so callers driving the
    /// simulator from a compressed container never build weights.
    pub fn workloads(&self) -> Vec<LayerWorkload> {
        let mut out = Vec::new();
        let mut size = Conv2dParams { stride: 2, pad: 1 }.out_dim(self.image_size, 3);
        out.push(LayerWorkload {
            name: "input.conv".into(),
            category: OpCategory::InputLayer,
            in_ch: self.input_channels,
            out_ch: self.stem_channels,
            kh: 3,
            kw: 3,
            oh: size,
            ow: size,
            precision_bits: 8,
        });
        for (i, spec) in self.blocks.iter().enumerate() {
            let conv3_out = Conv2dParams {
                stride: spec.stride,
                pad: 1,
            }
            .out_dim(size, 3);
            out.push(LayerWorkload {
                name: format!("block{}.conv3x3", i + 1),
                category: OpCategory::Conv3x3,
                in_ch: spec.in_ch,
                out_ch: spec.in_ch,
                kh: 3,
                kw: 3,
                oh: conv3_out,
                ow: conv3_out,
                precision_bits: 1,
            });
            out.push(LayerWorkload {
                name: format!("block{}.conv1x1", i + 1),
                category: OpCategory::Conv1x1,
                in_ch: spec.in_ch,
                out_ch: spec.out_ch,
                kh: 1,
                kw: 1,
                oh: conv3_out,
                ow: conv3_out,
                precision_bits: 1,
            });
            size = conv3_out;
        }
        let final_ch = self.blocks.last().unwrap().out_ch;
        out.push(LayerWorkload {
            name: "output.fc".into(),
            category: OpCategory::OutputLayer,
            in_ch: final_ch,
            out_ch: self.num_classes,
            kh: 1,
            kw: 1,
            oh: 1,
            ow: 1,
            precision_bits: 8,
        });
        out
    }
}

/// The assembled network.
///
/// The blocks are the primary storage and the frozen scalar oracle
/// ([`Self::forward_scalar`]); construction also assembles the layer-graph
/// IR twin ([`crate::graph::ModelGraph`], holding clones of the layers),
/// and every engine-path forward runs through the graph executor. Kernel
/// mutations keep both views in sync.
#[derive(Debug, Clone)]
pub struct ReActNet {
    config: ReActNetConfig,
    input_conv: QuantConv2d,
    blocks: Vec<BasicBlock>,
    classifier: QuantLinear,
    graph: ModelGraph,
}

impl ReActNet {
    /// Build a network with calibrated synthetic weights.
    ///
    /// Each block's 3×3 kernel is sampled from
    /// [`SeqDistribution::for_block`] so that the bit-sequence statistics
    /// reproduce paper Table II; 1×1 kernels are uniform random (the paper
    /// does not compress them); the 8-bit layers get uniform float weights.
    ///
    /// # Errors
    ///
    /// Returns [`BitnnError::InvalidConfig`] if the configuration fails
    /// [`ReActNetConfig::validate`].
    pub fn new(config: ReActNetConfig, seed: u64) -> Result<Self> {
        config
            .validate()
            .map_err(|e| BitnnError::InvalidConfig(format!("invalid ReActNet config: {e}")))?;
        let mut rng = StdRng::seed_from_u64(seed);
        let stem = config.stem_channels;

        let input_weights = Tensor::from_vec(
            &[stem, config.input_channels, 3, 3],
            random_floats(stem * config.input_channels * 9, 1.0, seed ^ 0xA11CE),
        )
        .expect("consistent stem shape");
        let input_conv =
            QuantConv2d::from_float(&input_weights, Conv2dParams { stride: 2, pad: 1 });

        let mut blocks = Vec::with_capacity(config.blocks.len());
        for (i, spec) in config.blocks.iter().enumerate() {
            let paper_block = i % 13 + 1;
            let dist = SeqDistribution::for_block(paper_block, seed);
            let w3 = dist.sample_kernel(spec.in_ch, spec.in_ch, &mut rng);
            let w1 = random_kernel(&[spec.out_ch, spec.in_ch, 1, 1], seed ^ (i as u64) << 8);
            blocks.push(BasicBlock {
                sign1: RSign::new(small_params(spec.in_ch, seed ^ (i as u64), 0.05)),
                conv3: BinConv2d::new(
                    w3,
                    Conv2dParams {
                        stride: spec.stride,
                        pad: 1,
                    },
                ),
                bn1: varied_bn(spec.in_ch, seed ^ (i as u64) << 1),
                act1: RPReLU::new(
                    small_params(spec.in_ch, seed ^ (i as u64) << 2, 0.05),
                    vec![0.25; spec.in_ch],
                    small_params(spec.in_ch, seed ^ (i as u64) << 3, 0.05),
                ),
                sign2: RSign::new(small_params(spec.in_ch, seed ^ (i as u64) << 4, 0.05)),
                conv1: BinConv2d::new(w1, Conv2dParams::default()),
                bn2: varied_bn(spec.out_ch, seed ^ (i as u64) << 5),
                act2: RPReLU::new(
                    small_params(spec.out_ch, seed ^ (i as u64) << 6, 0.05),
                    vec![0.25; spec.out_ch],
                    small_params(spec.out_ch, seed ^ (i as u64) << 7, 0.05),
                ),
            });
        }

        let final_ch = config.blocks.last().unwrap().out_ch;
        let classifier = QuantLinear::from_float(
            &random_floats(config.num_classes * final_ch, 0.5, seed ^ 0xC1A55),
            config.num_classes,
            final_ch,
        );

        let graph = build_graph(&config, &input_conv, &blocks, &classifier);
        Ok(ReActNet {
            config,
            input_conv,
            blocks,
            classifier,
            graph,
        })
    }

    /// The paper's full model.
    pub fn full(seed: u64) -> Self {
        ReActNet::new(ReActNetConfig::full(), seed).expect("built-in config is valid")
    }

    /// A small model for tests and quick examples.
    pub fn tiny(seed: u64) -> Self {
        ReActNet::new(ReActNetConfig::tiny(), seed).expect("built-in config is valid")
    }

    /// The layer-graph IR view of this network (same weights; the graph
    /// holds its own clones, kept in sync by the kernel setters).
    pub fn graph(&self) -> &ModelGraph {
        &self.graph
    }

    /// Convert into the graph representation, dropping the block view.
    pub fn into_graph(self) -> ModelGraph {
        self.graph
    }

    /// The configuration.
    pub fn config(&self) -> &ReActNetConfig {
        &self.config
    }

    /// The basic blocks.
    pub fn blocks(&self) -> &[BasicBlock] {
        &self.blocks
    }

    /// Number of basic blocks.
    pub fn num_blocks(&self) -> usize {
        self.blocks.len()
    }

    /// The binary 3×3 kernel of block `i` (the object of compression).
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn conv3_weights(&self, i: usize) -> &BitTensor {
        self.blocks[i].conv3.weights()
    }

    /// Replace block `i`'s 3×3 kernel (used after clustering).
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range or the shape changes.
    pub fn set_conv3_weights(&mut self, i: usize, weights: BitTensor) {
        self.blocks[i].conv3.set_weights(weights.clone());
        self.graph
            .set_conv3_weights(i, weights)
            .expect("graph mirrors the block schedule");
    }

    /// Replace block `i`'s 3×3 kernel with an already channel-packed
    /// kernel — the compressed-container deployment path: a streaming
    /// decoder's lane words go straight into the engine's weight forms
    /// with no intermediate `[K, C, 3, 3]` tensor.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range or the packed geometry changes.
    pub fn set_conv3_packed(&mut self, i: usize, packed: crate::pack::PackedKernel) {
        self.blocks[i].conv3.set_packed(packed.clone());
        self.graph
            .set_conv3_packed(i, packed)
            .expect("graph mirrors the block schedule");
    }

    /// Replace block `i`'s 3×3 kernel with a deduplicated sequence bank —
    /// the skew-aware deployment path: the decoder's unique-sequence
    /// table and index lists feed the weight-stationary kernel directly,
    /// and dense lane words are derived only if a dense lowering asks.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range or the bank geometry changes.
    pub fn set_conv3_bank(&mut self, i: usize, bank: crate::bank::SequenceBank) {
        self.blocks[i].conv3.set_bank(bank.clone());
        self.graph
            .set_conv3_bank(i, bank)
            .expect("graph mirrors the block schedule");
    }

    /// Full forward pass: `[N, 3, S, S]` image → `[N, num_classes]` logits.
    ///
    /// Runs through the graph executor's fast path (tiled kernels,
    /// fused block stages, scratch-buffer reuse) on the calling thread;
    /// bit-exact with the scalar seed path ([`Self::forward_scalar`]).
    /// Use [`Self::forward_with`] to supply a policy and a long-lived
    /// scratch, or [`Self::forward_batch`] for multi-image parallelism.
    ///
    /// # Panics
    ///
    /// Panics if the input shape does not match the configuration.
    pub fn forward(&self, input: &Tensor) -> Tensor {
        self.forward_with(input, &Engine::single_threaded(), &mut Scratch::default())
    }

    /// Forward pass under an explicit [`Engine`] policy with caller-owned
    /// scratch buffers (reused across calls, so steady-state inference
    /// stops allocating per layer).
    ///
    /// # Panics
    ///
    /// Panics if the input shape does not match the configuration.
    pub fn forward_with(&self, input: &Tensor, engine: &Engine, scratch: &mut Scratch) -> Tensor {
        self.graph
            .forward_with(input, engine, scratch)
            .expect("strides validated at construction")
    }

    /// [`Self::forward_with`] into a reusable output tensor: zero heap
    /// allocation once the scratch (arena included) is warm.
    ///
    /// # Panics
    ///
    /// Panics if the input shape does not match the configuration.
    pub fn forward_into(
        &self,
        input: &Tensor,
        engine: &Engine,
        scratch: &mut Scratch,
        out: &mut Tensor,
    ) {
        self.graph
            .forward_into(input, engine, scratch, out)
            .expect("strides validated at construction")
    }

    /// Forward a batch of independent inputs through the plan-level
    /// batch executor (batch-level chunking across the persistent worker
    /// pool when there are enough items, intra-op parallelism otherwise).
    /// Results are in input order and bit-exact with per-item
    /// [`Self::forward`].
    ///
    /// # Panics
    ///
    /// Panics if any input shape does not match the configuration.
    pub fn forward_batch(&self, inputs: &[Tensor], engine: &Engine) -> Vec<Tensor> {
        self.graph
            .forward_batch(inputs, engine)
            .expect("strides validated at construction")
    }

    /// [`Self::forward_batch`] into reusable output and scratch state
    /// (see [`crate::graph::ModelGraph::forward_batch_into`]).
    ///
    /// # Panics
    ///
    /// Panics if any input shape does not match the configuration.
    pub fn forward_batch_into(
        &self,
        inputs: &[Tensor],
        engine: &Engine,
        scratch: &mut crate::graph::BatchScratch,
        outs: &mut Vec<Tensor>,
    ) {
        self.graph
            .forward_batch_into(inputs, engine, scratch, outs)
            .expect("strides validated at construction")
    }

    /// The seed's scalar forward pass: per-position dot products, no
    /// tiling, no fusion, fresh allocations per layer. Kept bit-identical
    /// as the perf-tracking baseline that `perfsuite` measures the engine
    /// against, and as an oracle for the equivalence tests.
    ///
    /// # Panics
    ///
    /// Panics if the input shape does not match the configuration.
    pub fn forward_scalar(&self, input: &Tensor) -> Tensor {
        let shape = input.shape();
        assert_eq!(shape.len(), 4, "input must be [N, C, H, W]");
        assert_eq!(
            shape[1], self.config.input_channels,
            "input channel mismatch"
        );
        let mut x = self.input_conv.forward(input);
        for b in &self.blocks {
            x = b.forward(&x).expect("strides validated at construction");
        }
        let pooled = global_avg_pool(&x);
        self.classifier.forward_2d(&pooled)
    }

    /// Forward pass that also returns each block's binarized 3×3-stage
    /// input — the activation bit tensors whose 3×3 windows form the
    /// "input" bit sequences of the paper's Sec. I observation.
    ///
    /// # Panics
    ///
    /// Panics if the input shape does not match the configuration.
    pub fn forward_traced(&self, input: &Tensor) -> (Tensor, Vec<BitTensor>) {
        self.graph
            .forward_traced(input)
            .expect("strides validated at construction")
    }

    /// Storage breakdown by Table I category.
    pub fn storage_breakdown(&self) -> StorageBreakdown {
        let mut b = StorageBreakdown::new();
        b.add(OpCategory::InputLayer, self.input_conv.param_bits());
        b.add(OpCategory::OutputLayer, self.classifier.param_bits());
        for blk in &self.blocks {
            b.add(OpCategory::Conv3x3, blk.conv3.param_bits());
            b.add(OpCategory::Conv1x1, blk.conv1.param_bits());
            b.add(
                OpCategory::Others,
                blk.sign1.param_bits()
                    + blk.bn1.param_bits()
                    + blk.act1.param_bits()
                    + blk.sign2.param_bits()
                    + blk.bn2.param_bits()
                    + blk.act2.param_bits(),
            );
        }
        b
    }

    /// Per-layer workload descriptors (geometry for the timing simulator),
    /// walking the same spatial arithmetic as [`ReActNet::forward`].
    pub fn workloads(&self) -> Vec<LayerWorkload> {
        self.config.workloads()
    }
}

/// Assemble the layer-graph IR for a validated configuration, cloning the
/// layers into typed nodes. Node order mirrors
/// [`crate::graph::arch::reactnet_spec`] exactly (a unit test pins them
/// together), so a weight-free spec built from the same configuration is
/// structurally identical to `graph().spec()`.
fn build_graph(
    config: &ReActNetConfig,
    input_conv: &QuantConv2d,
    blocks: &[BasicBlock],
    classifier: &QuantLinear,
) -> ModelGraph {
    let mut nodes = vec![GraphNode {
        name: "input".into(),
        op: NodeOp::Input {
            channels: config.input_channels,
            image: config.image_size,
        },
        inputs: vec![],
    }];
    let push = |nodes: &mut Vec<GraphNode>, name: String, op: NodeOp, inputs: &[usize]| {
        nodes.push(GraphNode {
            name,
            op,
            inputs: inputs.to_vec(),
        });
        nodes.len() - 1
    };
    let mut x = push(
        &mut nodes,
        "input.conv".into(),
        NodeOp::StemConv(input_conv.clone()),
        &[0],
    );
    for (i, (spec, b)) in config.blocks.iter().zip(blocks).enumerate() {
        let p = format!("block{}", i + 1);
        let sign = push(
            &mut nodes,
            format!("{p}.sign1"),
            NodeOp::Sign(b.sign1.clone()),
            &[x],
        );
        let conv = push(
            &mut nodes,
            format!("{p}.conv3x3"),
            NodeOp::BinConv(b.conv3.clone()),
            &[sign],
        );
        let bn = push(
            &mut nodes,
            format!("{p}.bn1"),
            NodeOp::BatchNorm(b.bn1.clone()),
            &[conv],
        );
        let sc = if spec.stride == 2 {
            push(&mut nodes, format!("{p}.pool"), NodeOp::AvgPool2x2, &[x])
        } else {
            x
        };
        let addn = push(&mut nodes, format!("{p}.add1"), NodeOp::Add, &[bn, sc]);
        let mid = push(
            &mut nodes,
            format!("{p}.act1"),
            NodeOp::Act(b.act1.clone()),
            &[addn],
        );
        let sign = push(
            &mut nodes,
            format!("{p}.sign2"),
            NodeOp::Sign(b.sign2.clone()),
            &[mid],
        );
        let conv = push(
            &mut nodes,
            format!("{p}.conv1x1"),
            NodeOp::BinConv(b.conv1.clone()),
            &[sign],
        );
        let bn = push(
            &mut nodes,
            format!("{p}.bn2"),
            NodeOp::BatchNorm(b.bn2.clone()),
            &[conv],
        );
        let sc = if spec.out_ch == 2 * spec.in_ch {
            push(&mut nodes, format!("{p}.dup"), NodeOp::ChannelDup, &[mid])
        } else {
            mid
        };
        let addn = push(&mut nodes, format!("{p}.add2"), NodeOp::Add, &[bn, sc]);
        x = push(
            &mut nodes,
            format!("{p}.act2"),
            NodeOp::Act(b.act2.clone()),
            &[addn],
        );
    }
    let gap = push(&mut nodes, "gap".into(), NodeOp::GlobalAvgPool, &[x]);
    push(
        &mut nodes,
        "output.fc".into(),
        NodeOp::Classifier(classifier.clone()),
        &[gap],
    );
    ModelGraph::new("reactnet", nodes).expect("a validated config builds a valid graph")
}

/// Small deterministic per-channel parameters in `[-bound, bound]`.
pub(crate) fn small_params(channels: usize, seed: u64, bound: f32) -> Vec<f32> {
    random_floats(channels, bound, seed)
}

/// A batch-norm with mild per-channel variation around identity, so the
/// synthetic network's activations neither explode nor collapse.
pub(crate) fn varied_bn(channels: usize, seed: u64) -> BatchNorm {
    let g = random_floats(channels, 0.2, seed ^ 1);
    let b = random_floats(channels, 0.2, seed ^ 2);
    let gamma: Vec<f32> = g.iter().map(|v| 0.1 + v.abs()).collect();
    let beta = b;
    // Normalize roughly by fan-in scale: binary conv outputs are O(C * 9);
    // use mean 0, var (C*9/4)^2-ish folded into gamma instead. Keep BN
    // statistics simple: mean 0, var 1, and let gamma carry the scale-down.
    let scale = 1.0 / (channels as f32 * 3.0);
    let gamma = gamma.iter().map(|v| v * scale).collect();
    BatchNorm::new(gamma, beta, vec![0.0; channels], vec![1.0; channels], 1e-5)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_forward_shape() {
        let m = ReActNet::tiny(1);
        let x = Tensor::from_vec(&[2, 3, 32, 32], random_floats(2 * 3 * 32 * 32, 1.0, 7)).unwrap();
        let y = m.forward(&x);
        assert_eq!(y.shape(), &[2, 10]);
        assert!(y.data().iter().all(|v| v.is_finite()));
    }

    #[test]
    fn engine_forward_matches_scalar_and_batch() {
        let m = ReActNet::tiny(4);
        let inputs: Vec<Tensor> = (0..3)
            .map(|i| {
                Tensor::from_vec(
                    &[1, 3, 32, 32],
                    random_floats(3 * 32 * 32, 1.0, 11 + i as u64),
                )
                .unwrap()
            })
            .collect();
        let engine = Engine::with_threads(4);
        let batched = m.forward_batch(&inputs, &engine);
        assert_eq!(batched.len(), 3);
        let mut scratch = Scratch::default();
        for (x, via_batch) in inputs.iter().zip(&batched) {
            let scalar = m.forward_scalar(x);
            let fast = m.forward(x);
            let with = m.forward_with(x, &engine, &mut scratch);
            assert_eq!(scalar.data(), fast.data());
            assert_eq!(scalar.data(), with.data());
            assert_eq!(scalar.data(), via_batch.data());
        }
    }

    #[test]
    fn full_config_validates() {
        assert!(ReActNetConfig::full().validate().is_ok());
        assert!(ReActNetConfig::tiny().validate().is_ok());
    }

    #[test]
    fn invalid_config_is_a_typed_error() {
        let mut c = ReActNetConfig::tiny();
        c.blocks[0].stride = 3;
        assert!(matches!(
            ReActNet::new(c, 1),
            Err(BitnnError::InvalidConfig(_))
        ));
    }

    #[test]
    fn invalid_configs_are_rejected() {
        let mut c = ReActNetConfig::tiny();
        c.blocks[0].in_ch = 99;
        assert!(c.validate().is_err());
        let mut c = ReActNetConfig::tiny();
        c.blocks[0].out_ch = c.blocks[0].in_ch * 3;
        assert!(c.validate().is_err());
        let mut c = ReActNetConfig::tiny();
        c.blocks[0].stride = 3;
        assert!(c.validate().is_err());
        let mut c = ReActNetConfig::tiny();
        c.blocks.clear();
        assert!(c.validate().is_err());
    }

    #[test]
    fn full_storage_breakdown_matches_table1_shape() {
        // Build only the breakdown-relevant structure; full model weights
        // are large, so this is the one full-size construction in tests.
        let m = ReActNet::full(0);
        let b = m.storage_breakdown();
        let conv3 = b.percent(OpCategory::Conv3x3);
        let conv1 = b.percent(OpCategory::Conv1x1);
        let output = b.percent(OpCategory::OutputLayer);
        let input = b.percent(OpCategory::InputLayer);
        // Paper Table I: 68.0 / 8.5 / 22.17 / 0.02.
        assert!((60.0..75.0).contains(&conv3), "conv3x3 = {conv3}%");
        assert!((5.0..12.0).contains(&conv1), "conv1x1 = {conv1}%");
        assert!((15.0..30.0).contains(&output), "output = {output}%");
        assert!(input < 1.0, "input = {input}%");
    }

    #[test]
    fn workloads_cover_all_layers() {
        let m = ReActNet::tiny(2);
        let w = m.workloads();
        // input + 2 per block + output.
        assert_eq!(w.len(), 1 + 2 * 3 + 1);
        assert_eq!(w[0].category, OpCategory::InputLayer);
        assert_eq!(w.last().unwrap().category, OpCategory::OutputLayer);
    }

    #[test]
    fn workload_geometry_tracks_strides() {
        let m = ReActNet::tiny(2);
        let w = m.workloads();
        // 32x32 input, stem stride 2 -> 16; block1 stride 1 -> 16;
        // block2 stride 2 -> 8; block3 stride 2 -> 4.
        assert_eq!(w[1].oh, 16);
        assert_eq!(w[3].oh, 8);
        assert_eq!(w[5].oh, 4);
    }

    #[test]
    fn deterministic_construction() {
        let a = ReActNet::tiny(5);
        let b = ReActNet::tiny(5);
        assert_eq!(a.conv3_weights(0), b.conv3_weights(0));
        let c = ReActNet::tiny(6);
        assert_ne!(a.conv3_weights(0), c.conv3_weights(0));
    }

    #[test]
    fn scaled_config_tracks_the_full_schedule() {
        let cfg = ReActNetConfig::scaled(0.25).unwrap();
        assert_eq!(cfg.stem_channels, 8);
        assert_eq!(cfg.blocks.len(), 13);
        let full = ReActNetConfig::full();
        for (s, f) in cfg.blocks.iter().zip(&full.blocks) {
            assert_eq!(s.stride, f.stride);
            assert_eq!(s.in_ch, ((f.in_ch as f64 * 0.25).round() as usize).max(8));
        }
        // Unit scale reproduces the full schedule's channels.
        let unit = ReActNetConfig::scaled(1.0).unwrap();
        assert_eq!(unit.blocks, full.blocks);
        // Degenerate scales are rejected cleanly.
        assert!(ReActNetConfig::scaled(0.0).is_err());
        assert!(ReActNetConfig::scaled(f64::NAN).is_err());
    }

    #[test]
    fn set_conv3_packed_matches_set_weights() {
        let x = Tensor::from_vec(&[1, 3, 32, 32], random_floats(3 * 32 * 32, 1.0, 13)).unwrap();
        let mut w = ReActNet::tiny(7).conv3_weights(1).clone();
        for i in 0..w.len() {
            w.set(i, !w.get(i));
        }
        let mut via_tensor = ReActNet::tiny(7);
        via_tensor.set_conv3_weights(1, w.clone());
        let mut via_packed = ReActNet::tiny(7);
        via_packed.set_conv3_packed(1, crate::pack::PackedKernel::pack(&w).unwrap());
        assert_eq!(via_tensor.forward(&x).data(), via_packed.forward(&x).data());
        assert_eq!(via_packed.conv3_weights(1), &w);
    }

    #[test]
    fn set_conv3_weights_changes_output() {
        let mut m = ReActNet::tiny(3);
        let x = Tensor::from_vec(&[1, 3, 32, 32], random_floats(3 * 32 * 32, 1.0, 9)).unwrap();
        let y0 = m.forward(&x);
        let mut w = m.conv3_weights(0).clone();
        for i in 0..w.len() {
            w.set(i, !w.get(i));
        }
        m.set_conv3_weights(0, w);
        let y1 = m.forward(&x);
        assert_ne!(y0.data(), y1.data());
    }
}
