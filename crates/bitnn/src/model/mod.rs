//! The ReActNet model (paper Fig. 1 and Table I).

pub mod block;
pub mod reactnet;
pub mod storage;
pub mod workload;

pub use block::BasicBlock;
pub use reactnet::{BlockSpec, ReActNet, ReActNetConfig};
pub use storage::{OpCategory, StorageBreakdown};
pub use workload::{ConvMode, LayerWorkload};
