//! Layer workload descriptors.
//!
//! A [`LayerWorkload`] captures the loop-nest geometry of one convolution —
//! everything the timing simulator needs to generate a memory/compute trace
//! without re-running inference. The `simcpu` crate consumes these.

use crate::model::storage::OpCategory;

/// Which kernel representation a convolution's trace should model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ConvMode {
    /// Channel-packed, uncompressed kernels (the daBNN baseline).
    Baseline,
    /// Compressed kernels decoded in software (paper Sec. IV-B: 1.47x
    /// slower than the baseline).
    SoftwareDecode,
    /// Compressed kernels decoded by the hardware decoding unit
    /// (paper Sec. VI: 1.35x faster than the baseline).
    HardwareDecode,
}

/// Geometry of one layer's compute.
#[derive(Debug, Clone, PartialEq)]
pub struct LayerWorkload {
    /// Display name, e.g. `"block3.conv3x3"`.
    pub name: String,
    /// Table I category.
    pub category: OpCategory,
    /// Input channels.
    pub in_ch: usize,
    /// Output channels (filters).
    pub out_ch: usize,
    /// Kernel height.
    pub kh: usize,
    /// Kernel width.
    pub kw: usize,
    /// Output height.
    pub oh: usize,
    /// Output width.
    pub ow: usize,
    /// Weight precision in bits (1 for binary, 8 for quantized).
    pub precision_bits: usize,
}

impl LayerWorkload {
    /// Number of multiply-accumulate operations in the layer.
    pub fn macs(&self) -> u64 {
        (self.out_ch * self.oh * self.ow * self.in_ch * self.kh * self.kw) as u64
    }

    /// Weight storage in bits.
    pub fn weight_bits(&self) -> u64 {
        (self.out_ch * self.in_ch * self.kh * self.kw * self.precision_bits) as u64
    }

    /// Number of 64-bit weight lanes per kernel position (binary layers).
    pub fn weight_lanes(&self) -> usize {
        self.in_ch.div_ceil(64)
    }

    /// Number of 9-bit bit sequences in the kernel (3×3 binary layers).
    pub fn num_sequences(&self) -> u64 {
        (self.out_ch * self.in_ch) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn wl() -> LayerWorkload {
        LayerWorkload {
            name: "test".into(),
            category: OpCategory::Conv3x3,
            in_ch: 64,
            out_ch: 64,
            kh: 3,
            kw: 3,
            oh: 56,
            ow: 56,
            precision_bits: 1,
        }
    }

    #[test]
    fn macs_formula() {
        assert_eq!(wl().macs(), 64 * 56 * 56 * 64 * 9);
    }

    #[test]
    fn weight_bits_formula() {
        assert_eq!(wl().weight_bits(), 64 * 64 * 9);
    }

    #[test]
    fn lanes_round_up() {
        let mut w = wl();
        w.in_ch = 65;
        assert_eq!(w.weight_lanes(), 2);
    }

    #[test]
    fn sequences_count_channels_times_filters() {
        assert_eq!(wl().num_sequences(), 64 * 64);
    }
}
