//! The ReActNet basic block (paper Fig. 1).
//!
//! ```text
//! x ──► RSign ──► 1-bit 3×3 Conv ──► BatchNorm ──► (+ shortcut) ──► RPReLU ──►
//!   ──► RSign ──► 1-bit 1×1 Conv ──► BatchNorm ──► (+ shortcut) ──► RPReLU ──► y
//! ```
//!
//! Shortcuts follow the ReActNet paper: around the 3×3 conv the identity is
//! average-pooled when the stride is 2; around the 1×1 conv the identity is
//! channel-duplicated when the block doubles the channel count.

use crate::engine::{Engine, Scratch};
use crate::error::{BitnnError, Result};
use crate::layers::prelu::apply_params;
use crate::layers::{avg_pool_2x2, BatchNorm, BinConv2d, Layer, RPReLU, RSign};
use crate::pack::PackedActivations;
use crate::tensor::Tensor;

/// One ReActNet basic block.
#[derive(Debug, Clone)]
pub struct BasicBlock {
    /// Shifted sign before the 3×3 conv.
    pub sign1: RSign,
    /// The 1-bit 3×3 convolution (`C -> C`, stride 1 or 2, pad 1).
    pub conv3: BinConv2d,
    /// Batch-norm after the 3×3 conv.
    pub bn1: BatchNorm,
    /// RPReLU after the 3×3 stage.
    pub act1: RPReLU,
    /// Shifted sign before the 1×1 conv.
    pub sign2: RSign,
    /// The 1-bit 1×1 convolution (`C -> C'`).
    pub conv1: BinConv2d,
    /// Batch-norm after the 1×1 conv.
    pub bn2: BatchNorm,
    /// RPReLU after the 1×1 stage.
    pub act2: RPReLU,
}

impl BasicBlock {
    /// Input channel count.
    pub fn in_channels(&self) -> usize {
        self.conv3.in_channels()
    }

    /// Output channel count.
    pub fn out_channels(&self) -> usize {
        self.conv1.filters()
    }

    /// Stride of the 3×3 stage.
    pub fn stride(&self) -> usize {
        self.conv3.params().stride
    }

    /// Forward pass.
    ///
    /// # Errors
    ///
    /// Returns [`BitnnError::Unsupported`] for a shortcut stride other
    /// than 1 or 2 ([`crate::model::ReActNetConfig::validate`] rejects
    /// such configurations up front, so models built through
    /// [`crate::model::ReActNet`] never hit this).
    ///
    /// # Panics
    ///
    /// Panics if the input channel count does not match.
    pub fn forward(&self, x: &Tensor) -> Result<Tensor> {
        Ok(self.forward_traced(x)?.0)
    }

    /// Forward pass that also returns the binarized input of the 3×3
    /// stage — the activation bits the paper's Sec. I observation about
    /// "weights or inputs" refers to.
    ///
    /// # Errors
    ///
    /// Returns [`BitnnError::Unsupported`] for a shortcut stride other
    /// than 1 or 2.
    ///
    /// # Panics
    ///
    /// Panics if the input channel count does not match.
    pub fn forward_traced(&self, x: &Tensor) -> Result<(Tensor, crate::tensor::BitTensor)> {
        // --- 3x3 stage ---
        let bits_3x3 = self.sign1.binarize(x);
        let packed = PackedActivations::pack(&bits_3x3).expect("4-D input");
        let conv_out = self.conv3.forward_packed(&packed);
        let bn_out = self.bn1.forward(&conv_out);
        let shortcut = shortcut_spatial(x, self.stride())?;
        let mid = self.act1.forward(&add(&bn_out, &shortcut));

        // --- 1x1 stage ---
        let bits = self.sign2.binarize(&mid);
        let packed = PackedActivations::pack(&bits).expect("4-D input");
        let conv_out = self.conv1.forward_packed(&packed);
        let bn_out = self.bn2.forward(&conv_out);
        let shortcut = shortcut_channels(&mid, self.out_channels());
        Ok((self.act2.forward(&add(&bn_out, &shortcut)), bits_3x3))
    }

    /// Forward pass through the execution engine with scratch-buffer
    /// reuse. Bit-exact with [`Self::forward`].
    ///
    /// The convolutions run through the engine's tiled/parallel lowering
    /// into reused buffers, and each stage's batch-norm, shortcut add, and
    /// RPReLU are fused into a single pass over the conv output (same
    /// per-element operation order as the scalar path, so the float
    /// results are identical).
    ///
    /// # Errors
    ///
    /// Returns [`BitnnError::Unsupported`] for a shortcut stride other
    /// than 1 or 2.
    ///
    /// # Panics
    ///
    /// Panics if the input channel count does not match.
    pub fn forward_with(
        &self,
        x: &Tensor,
        engine: &Engine,
        scratch: &mut Scratch,
    ) -> Result<Tensor> {
        let s = &mut scratch.cpu;
        // --- 3x3 stage ---
        self.sign1.binarize_into(x, &mut s.bits);
        self.conv3.forward_binarized_with(
            &s.bits,
            &mut s.packed,
            engine,
            &mut s.conv,
            &mut s.conv_out,
        );
        fuse_spatial_stage(
            &s.conv_out,
            x,
            self.stride(),
            &self.bn1,
            &self.act1,
            &mut s.mid,
        )?;

        // --- 1x1 stage ---
        self.sign2.binarize_into(&s.mid, &mut s.bits);
        self.conv1.forward_binarized_with(
            &s.bits,
            &mut s.packed,
            engine,
            &mut s.conv,
            &mut s.conv_out,
        );
        let mut out = Tensor::default();
        fuse_channel_stage(&s.conv_out, &s.mid, &self.bn2, &self.act2, &mut out);
        Ok(out)
    }

    /// Parameter storage in bits across all stages.
    pub fn param_bits(&self) -> usize {
        self.sign1.param_bits()
            + self.conv3.param_bits()
            + self.bn1.param_bits()
            + self.act1.param_bits()
            + self.sign2.param_bits()
            + self.conv1.param_bits()
            + self.bn2.param_bits()
            + self.act2.param_bits()
    }
}

/// Fused `BatchNorm → (+ spatial shortcut) → RPReLU` for the 3×3 stage:
/// one pass over the conv output instead of three tensor-sized passes and
/// two intermediate allocations. Applies, per element, exactly
/// `act(bn(conv) + shortcut)` in the scalar path's operation order, with
/// the stride-2 average-pool shortcut computed on the fly. Dispatches to
/// an AVX2 instantiation when available (see [`crate::simd`]). Shared
/// with the graph executor ([`crate::graph`]), which fuses the same
/// pattern wherever it appears in a model graph.
#[inline]
pub(crate) fn fuse_spatial_stage(
    conv: &Tensor,
    x: &Tensor,
    stride: usize,
    bn: &BatchNorm,
    act: &RPReLU,
    out: &mut Tensor,
) -> Result<()> {
    #[cfg(target_arch = "x86_64")]
    {
        /// AVX2 instantiation of [`fuse_spatial_portable`].
        #[target_feature(enable = "avx2")]
        unsafe fn fuse_spatial_avx2(
            conv: &Tensor,
            x: &Tensor,
            stride: usize,
            bn: &BatchNorm,
            act: &RPReLU,
            out: &mut Tensor,
        ) -> Result<()> {
            fuse_spatial_portable(conv, x, stride, bn, act, out)
        }
        if crate::simd::avx2() {
            // SAFETY: avx2 was detected at runtime.
            return unsafe { fuse_spatial_avx2(conv, x, stride, bn, act, out) };
        }
    }
    fuse_spatial_portable(conv, x, stride, bn, act, out)
}

/// Portable body of [`fuse_spatial_stage`].
#[inline(always)]
fn fuse_spatial_portable(
    conv: &Tensor,
    x: &Tensor,
    stride: usize,
    bn: &BatchNorm,
    act: &RPReLU,
    out: &mut Tensor,
) -> Result<()> {
    if stride != 1 && stride != 2 {
        return Err(BitnnError::Unsupported(format!(
            "shortcut stride {stride} (only 1 and 2 are defined)"
        )));
    }
    let shape = conv.shape();
    let (n, c, oh, ow) = (shape[0], shape[1], shape[2], shape[3]);
    let (h, w) = (x.shape()[2], x.shape()[3]);
    // Every element is written below, so skip the zero-fill.
    out.reset_for_overwrite(shape);
    let scale = bn.folded_scale();
    let offset = bn.folded_offset();
    let cd = conv.data();
    let xd = x.data();
    let od = out.data_mut();
    let ohw = oh * ow;
    let hw = h * w;
    for img in 0..n {
        for ch in 0..c {
            let (s, o) = (scale[ch], offset[ch]);
            let (si, sl, so) = act.channel_params(ch);
            let crow = &cd[(img * c + ch) * ohw..][..ohw];
            let xrow = &xd[(img * c + ch) * hw..][..hw];
            let orow = &mut od[(img * c + ch) * ohw..][..ohw];
            match stride {
                1 => {
                    for ((ov, &cv), &xv) in orow.iter_mut().zip(crow).zip(xrow) {
                        *ov = apply_params(si, sl, so, (s * cv + o) + xv);
                    }
                }
                _ => {
                    for oy in 0..oh {
                        for ox in 0..ow {
                            // 2×2 average pool with the trailing odd
                            // row/column dropped — same accumulation order
                            // as `avg_pool_2x2`.
                            let mut acc = 0.0f32;
                            let mut cnt = 0;
                            for dy in 0..2 {
                                for dx in 0..2 {
                                    let y = oy * 2 + dy;
                                    let xx = ox * 2 + dx;
                                    if y < h && xx < w {
                                        acc += xrow[y * w + xx];
                                        cnt += 1;
                                    }
                                }
                            }
                            let sc = acc / cnt as f32;
                            let i = oy * ow + ox;
                            orow[i] = apply_params(si, sl, so, (s * crow[i] + o) + sc);
                        }
                    }
                }
            }
        }
    }
    Ok(())
}

/// Fused `BatchNorm → (+ channel shortcut) → RPReLU` for the 1×1 stage,
/// written into a reusable output tensor. The channel-duplication
/// shortcut (`C → 2C` blocks) reads channel `ch % C` of `mid` on the fly
/// instead of materializing the widened tensor. Dispatches to an AVX2
/// instantiation when available. Shared with the graph executor
/// ([`crate::graph`]).
#[inline]
pub(crate) fn fuse_channel_stage(
    conv: &Tensor,
    mid: &Tensor,
    bn: &BatchNorm,
    act: &RPReLU,
    out: &mut Tensor,
) {
    #[cfg(target_arch = "x86_64")]
    {
        /// AVX2 instantiation of [`fuse_channel_portable`].
        #[target_feature(enable = "avx2")]
        unsafe fn fuse_channel_avx2(
            conv: &Tensor,
            mid: &Tensor,
            bn: &BatchNorm,
            act: &RPReLU,
            out: &mut Tensor,
        ) {
            fuse_channel_portable(conv, mid, bn, act, out);
        }
        if crate::simd::avx2() {
            // SAFETY: avx2 was detected at runtime.
            return unsafe { fuse_channel_avx2(conv, mid, bn, act, out) };
        }
    }
    fuse_channel_portable(conv, mid, bn, act, out)
}

/// Portable body of [`fuse_channel_stage`].
#[inline(always)]
fn fuse_channel_portable(
    conv: &Tensor,
    mid: &Tensor,
    bn: &BatchNorm,
    act: &RPReLU,
    out: &mut Tensor,
) {
    let shape = conv.shape();
    let (n, c_out, oh, ow) = (shape[0], shape[1], shape[2], shape[3]);
    let c_in = mid.shape()[1];
    assert!(
        c_out == c_in || c_out == 2 * c_in,
        "channel shortcut requires C or 2C output"
    );
    // Every element is written below, so skip the zero-fill.
    out.reset_for_overwrite(shape);
    let scale = bn.folded_scale();
    let offset = bn.folded_offset();
    let cd = conv.data();
    let md = mid.data();
    let od = out.data_mut();
    let ohw = oh * ow;
    for img in 0..n {
        for ch in 0..c_out {
            let (s, o) = (scale[ch], offset[ch]);
            let (si, sl, so) = act.channel_params(ch);
            let crow = &cd[(img * c_out + ch) * ohw..][..ohw];
            let mrow = &md[(img * c_in + ch % c_in) * ohw..][..ohw];
            let orow = &mut od[(img * c_out + ch) * ohw..][..ohw];
            for ((ov, &cv), &mv) in orow.iter_mut().zip(crow).zip(mrow) {
                *ov = apply_params(si, sl, so, (s * cv + o) + mv);
            }
        }
    }
}

/// Element-wise sum of same-shape tensors.
///
/// # Panics
///
/// Panics on shape mismatch.
pub fn add(a: &Tensor, b: &Tensor) -> Tensor {
    let mut out = Tensor::default();
    add_into(a, b, &mut out);
    out
}

/// [`add`] into a reusable output tensor (the graph executor's arena
/// path). Bit-exact: the same element-wise sum.
///
/// # Panics
///
/// Panics on shape mismatch.
pub fn add_into(a: &Tensor, b: &Tensor, out: &mut Tensor) {
    assert_eq!(a.shape(), b.shape(), "add: shape mismatch");
    out.reset_for_overwrite(a.shape());
    for ((o, &x), &y) in out.data_mut().iter_mut().zip(a.data()).zip(b.data()) {
        *o = x + y;
    }
}

/// Spatial shortcut: identity for stride 1, 2×2 average pool for stride 2.
///
/// # Errors
///
/// Returns [`BitnnError::Unsupported`] for strides other than 1 or 2.
fn shortcut_spatial(x: &Tensor, stride: usize) -> Result<Tensor> {
    match stride {
        1 => Ok(x.clone()),
        2 => Ok(avg_pool_2x2(x)),
        s => Err(BitnnError::Unsupported(format!(
            "shortcut stride {s} (only 1 and 2 are defined)"
        ))),
    }
}

/// Channel shortcut: identity when counts match, duplication (concat with
/// itself) when the block doubles the channels. Shared with the graph
/// executor's `ChannelDup` node.
///
/// # Panics
///
/// Panics if `out_ch` is neither `C` nor `2C`.
pub(crate) fn shortcut_channels(x: &Tensor, out_ch: usize) -> Tensor {
    let mut out = Tensor::default();
    shortcut_channels_into(x, out_ch, &mut out);
    out
}

/// [`shortcut_channels`] into a reusable output tensor (the graph
/// executor's arena path).
///
/// # Panics
///
/// Panics if `out_ch` is neither `C` nor `2C`.
pub(crate) fn shortcut_channels_into(x: &Tensor, out_ch: usize, out: &mut Tensor) {
    let shape = x.shape();
    let c = shape[1];
    if out_ch == c {
        out.clone_from(x);
        return;
    }
    assert_eq!(out_ch, 2 * c, "channel shortcut requires C or 2C output");
    let (n, h, w) = (shape[0], shape[2], shape[3]);
    out.reset_for_overwrite(&[n, out_ch, h, w]);
    for img in 0..n {
        for ch in 0..c {
            for y in 0..h {
                for xx in 0..w {
                    let v = x.at4(img, ch, y, xx);
                    out.set4(img, ch, y, xx, v);
                    out.set4(img, ch + c, y, xx, v);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layers::{BatchNorm, BinConv2d, RPReLU, RSign};
    use crate::ops::conv::Conv2dParams;
    use crate::weightgen::random_kernel;

    fn block(c_in: usize, c_out: usize, stride: usize, seed: u64) -> BasicBlock {
        BasicBlock {
            sign1: RSign::zero(c_in),
            conv3: BinConv2d::new(
                random_kernel(&[c_in, c_in, 3, 3], seed),
                Conv2dParams { stride, pad: 1 },
            ),
            bn1: BatchNorm::identity(c_in),
            act1: RPReLU::plain(c_in, 0.25),
            sign2: RSign::zero(c_in),
            conv1: BinConv2d::new(
                random_kernel(&[c_out, c_in, 1, 1], seed ^ 1),
                Conv2dParams::default(),
            ),
            bn2: BatchNorm::identity(c_out),
            act2: RPReLU::plain(c_out, 0.25),
        }
    }

    #[test]
    fn stride1_same_channels_preserves_shape() {
        let b = block(8, 8, 1, 42);
        let x = Tensor::full(&[1, 8, 6, 6], 0.5);
        let y = b.forward(&x).unwrap();
        assert_eq!(y.shape(), &[1, 8, 6, 6]);
    }

    #[test]
    fn stride2_halves_spatial() {
        let b = block(8, 8, 2, 43);
        let x = Tensor::full(&[1, 8, 8, 8], 0.5);
        let y = b.forward(&x).unwrap();
        assert_eq!(y.shape(), &[1, 8, 4, 4]);
    }

    #[test]
    fn channel_doubling_block() {
        let b = block(8, 16, 1, 44);
        let x = Tensor::full(&[1, 8, 4, 4], -0.5);
        let y = b.forward(&x).unwrap();
        assert_eq!(y.shape(), &[1, 16, 4, 4]);
    }

    #[test]
    fn stride2_and_doubling_together() {
        let b = block(8, 16, 2, 45);
        let x = Tensor::full(&[1, 8, 7, 7], 1.0); // odd input
        let y = b.forward(&x).unwrap();
        // pad 1, k 3, stride 2: out = (7 + 2 - 3)/2 + 1 = 4.
        assert_eq!(y.shape(), &[1, 16, 4, 4]);
    }

    #[test]
    fn add_requires_same_shape() {
        let a = Tensor::zeros(&[1, 2, 2, 2]);
        let b = Tensor::zeros(&[1, 2, 2, 2]);
        let c = add(&a, &b);
        assert_eq!(c.shape(), a.shape());
    }

    #[test]
    #[should_panic(expected = "shape mismatch")]
    fn add_panics_on_mismatch() {
        add(&Tensor::zeros(&[1, 2, 2, 2]), &Tensor::zeros(&[1, 2, 2, 3]));
    }

    #[test]
    fn unsupported_stride_is_a_typed_error() {
        let b = block(8, 8, 3, 48);
        let x = Tensor::full(&[1, 8, 6, 6], 0.5);
        let scalar = b.forward(&x);
        assert!(matches!(
            scalar,
            Err(crate::error::BitnnError::Unsupported(_))
        ));
        let engine = crate::engine::Engine::single_threaded();
        let mut scratch = crate::engine::Scratch::default();
        let fused = b.forward_with(&x, &engine, &mut scratch);
        assert!(matches!(
            fused,
            Err(crate::error::BitnnError::Unsupported(_))
        ));
    }

    #[test]
    fn engine_forward_is_bit_exact_with_scalar() {
        use crate::engine::{Engine, Scratch};
        use crate::weightgen::random_floats;
        // Every block shape class: identity, stride-2, channel-doubling,
        // and both combined — fused engine path must match the scalar path
        // bit-for-bit (binary convs are integers; the float stages run the
        // same per-element operations in the same order).
        for (c_in, c_out, stride, hw) in [(8, 8, 1, 6), (8, 8, 2, 8), (8, 16, 1, 4), (8, 16, 2, 7)]
        {
            let b = block(c_in, c_out, stride, 77 + c_out as u64 + stride as u64);
            let x = Tensor::from_vec(
                &[2, c_in, hw, hw],
                random_floats(2 * c_in * hw * hw, 1.0, 99),
            )
            .unwrap();
            let scalar = b.forward(&x).unwrap();
            for threads in [1, 4] {
                let engine = Engine::with_threads(threads);
                let mut scratch = Scratch::default();
                let fused = b.forward_with(&x, &engine, &mut scratch).unwrap();
                assert_eq!(scalar.shape(), fused.shape());
                assert_eq!(
                    scalar.data(),
                    fused.data(),
                    "c_in={c_in} c_out={c_out} stride={stride} threads={threads}"
                );
            }
        }
    }

    #[test]
    fn param_bits_dominated_by_conv3() {
        let b = block(64, 64, 1, 46);
        // conv3 = 64*64*9 bits, conv1 = 64*64 bits; 3x3 should dominate.
        assert!(b.conv3.param_bits() > b.conv1.param_bits() * 8);
        assert!(b.param_bits() > b.conv3.param_bits());
    }
}
