//! Storage accounting for the Table I breakdown.

use std::fmt;

/// The operation categories of paper Table I.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum OpCategory {
    /// 8-bit quantized input convolution.
    InputLayer,
    /// 8-bit quantized output fully-connected layer.
    OutputLayer,
    /// 1-bit 1×1 convolutions.
    Conv1x1,
    /// 1-bit 3×3 convolutions.
    Conv3x3,
    /// Everything full-precision: batch-norm, activations, shifts.
    Others,
}

impl OpCategory {
    /// All categories in Table I row order.
    pub const ALL: [OpCategory; 5] = [
        OpCategory::InputLayer,
        OpCategory::OutputLayer,
        OpCategory::Conv1x1,
        OpCategory::Conv3x3,
        OpCategory::Others,
    ];

    /// Weight precision in bits for this category (Table I column).
    pub fn precision_bits(self) -> usize {
        match self {
            OpCategory::InputLayer | OpCategory::OutputLayer => 8,
            OpCategory::Conv1x1 | OpCategory::Conv3x3 => 1,
            OpCategory::Others => 32,
        }
    }

    /// Table I row label.
    pub fn label(self) -> &'static str {
        match self {
            OpCategory::InputLayer => "Input Layer",
            OpCategory::OutputLayer => "Output Layer",
            OpCategory::Conv1x1 => "Conv 1x1",
            OpCategory::Conv3x3 => "Conv 3x3",
            OpCategory::Others => "Others",
        }
    }
}

impl fmt::Display for OpCategory {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Per-category storage totals (in bits).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct StorageBreakdown {
    bits: [usize; 5],
}

impl StorageBreakdown {
    /// Empty breakdown.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add `bits` to `category`.
    pub fn add(&mut self, category: OpCategory, bits: usize) {
        self.bits[Self::index(category)] += bits;
    }

    fn index(category: OpCategory) -> usize {
        OpCategory::ALL.iter().position(|&c| c == category).unwrap()
    }

    /// Bits stored in `category`.
    pub fn bits(&self, category: OpCategory) -> usize {
        self.bits[Self::index(category)]
    }

    /// Total bits across categories.
    pub fn total_bits(&self) -> usize {
        self.bits.iter().sum()
    }

    /// Percentage of total storage in `category`.
    pub fn percent(&self, category: OpCategory) -> f64 {
        let total = self.total_bits();
        if total == 0 {
            0.0
        } else {
            self.bits(category) as f64 / total as f64 * 100.0
        }
    }

    /// Render the storage columns of Table I.
    pub fn to_table(&self) -> String {
        let mut s = String::from("Operation     Storage (%)  Precision (bits)\n");
        for c in OpCategory::ALL {
            s.push_str(&format!(
                "{:<13} {:>10.2}  {:>16}\n",
                c.label(),
                self.percent(c),
                c.precision_bits()
            ));
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentages_sum_to_100() {
        let mut b = StorageBreakdown::new();
        b.add(OpCategory::Conv3x3, 680);
        b.add(OpCategory::Conv1x1, 85);
        b.add(OpCategory::OutputLayer, 222);
        b.add(OpCategory::InputLayer, 1);
        b.add(OpCategory::Others, 12);
        let sum: f64 = OpCategory::ALL.iter().map(|&c| b.percent(c)).sum();
        assert!((sum - 100.0).abs() < 1e-9);
        assert_eq!(b.total_bits(), 1000);
    }

    #[test]
    fn empty_breakdown_is_zero() {
        let b = StorageBreakdown::new();
        assert_eq!(b.total_bits(), 0);
        assert_eq!(b.percent(OpCategory::Conv3x3), 0.0);
    }

    #[test]
    fn precision_matches_table1() {
        assert_eq!(OpCategory::InputLayer.precision_bits(), 8);
        assert_eq!(OpCategory::OutputLayer.precision_bits(), 8);
        assert_eq!(OpCategory::Conv1x1.precision_bits(), 1);
        assert_eq!(OpCategory::Conv3x3.precision_bits(), 1);
        assert_eq!(OpCategory::Others.precision_bits(), 32);
    }

    #[test]
    fn table_render_has_all_rows() {
        let b = StorageBreakdown::new();
        let t = b.to_table();
        for c in OpCategory::ALL {
            assert!(t.contains(c.label()));
        }
    }
}
