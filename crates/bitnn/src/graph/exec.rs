//! The graph executor: lowers a validated node list onto the execution
//! engine, fusing the `conv → bn → (+shortcut) → act` patterns onto the
//! same fused stages the ReActNet block path uses.
//!
//! Planning happens once, at [`crate::graph::ModelGraph`] construction:
//! the node list is walked, sign nodes are folded into their consuming
//! convolutions (binarize + channel-pack straight into the engine's
//! scratch), and every `BinConv → BatchNorm → Add → Act` chain whose
//! intermediates are single-use is matched to one of the two fused
//! element-wise kernels ([`fuse_spatial_stage`] for the stride-2
//! average-pool shortcut, [`fuse_channel_stage`] for the identity and
//! channel-duplication shortcuts). Everything else runs node-by-node.
//! Both paths are bit-exact with the scalar walk ([`run_scalar`]): the
//! convolutions are integer, and the fused float stages apply the same
//! per-element operations in the same order.

use crate::engine::{Engine, Scratch};
use crate::error::{BitnnError, Result};
use crate::layers::{avg_pool_2x2, global_avg_pool, Layer};
use crate::model::block::{add, fuse_channel_stage, fuse_spatial_stage, shortcut_channels};
use crate::pack::PackedActivations;
use crate::tensor::{BitTensor, Tensor};

use super::{GraphNode, NodeOp};

/// One planned execution step. Node indices refer to the graph's node
/// list; each step produces the value of its `node`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) enum Step {
    /// The graph input.
    Input { node: usize },
    /// 8-bit stem convolution.
    Stem { node: usize, src: usize },
    /// Sign + binary convolution (the sign node is folded in).
    Conv {
        node: usize,
        sign: usize,
        src: usize,
    },
    /// Stand-alone batch-norm.
    Bn { node: usize, src: usize },
    /// Stand-alone RPReLU.
    Act { node: usize, src: usize },
    /// 2×2 average pool.
    AvgPool { node: usize, src: usize },
    /// Channel duplication.
    ChannelDup { node: usize, src: usize },
    /// Element-wise add.
    Add { node: usize, a: usize, b: usize },
    /// Global average pool.
    GlobalPool { node: usize, src: usize },
    /// 8-bit classifier.
    Classifier { node: usize, src: usize },
    /// `sign(src) → conv(stride 2) → bn → (+ avg_pool(src)) → act`,
    /// with the pool computed on the fly inside the fused kernel.
    /// Produces the value of `act`.
    FusedSpatial {
        act: usize,
        sign: usize,
        conv: usize,
        bn: usize,
        src: usize,
    },
    /// `sign(src) → conv(stride 1) → bn → (+ src or channel_dup(src)) →
    /// act`. Produces the value of `act`.
    FusedChannel {
        act: usize,
        sign: usize,
        conv: usize,
        bn: usize,
        src: usize,
    },
}

impl Step {
    /// The node whose value this step produces.
    fn output(&self) -> usize {
        match *self {
            Step::Input { node }
            | Step::Stem { node, .. }
            | Step::Conv { node, .. }
            | Step::Bn { node, .. }
            | Step::Act { node, .. }
            | Step::AvgPool { node, .. }
            | Step::ChannelDup { node, .. }
            | Step::Add { node, .. }
            | Step::GlobalPool { node, .. }
            | Step::Classifier { node, .. } => node,
            Step::FusedSpatial { act, .. } | Step::FusedChannel { act, .. } => act,
        }
    }

    /// Node values this step reads.
    fn reads(&self) -> Vec<usize> {
        match *self {
            Step::Input { .. } => vec![],
            Step::Stem { src, .. }
            | Step::Conv { src, .. }
            | Step::Bn { src, .. }
            | Step::Act { src, .. }
            | Step::AvgPool { src, .. }
            | Step::ChannelDup { src, .. }
            | Step::GlobalPool { src, .. }
            | Step::Classifier { src, .. }
            | Step::FusedSpatial { src, .. }
            | Step::FusedChannel { src, .. } => vec![src],
            Step::Add { a, b, .. } => vec![a, b],
        }
    }
}

/// A compiled execution plan: fused steps plus per-value lifetimes.
#[derive(Debug, Clone, Default)]
pub(crate) struct Plan {
    pub(crate) steps: Vec<Step>,
    /// `last_read[v]` = index of the last step that reads node `v`'s
    /// value (`usize::MAX` when never read), so the executor can free
    /// intermediates as soon as they are dead.
    last_read: Vec<usize>,
    /// The node whose value is the graph output.
    output: usize,
}

/// Compile the node list into a plan. The graph must already be validated
/// (see [`crate::graph::spec::GraphSpec::validate`]); planning itself only
/// decides fusion.
pub(crate) fn plan(nodes: &[GraphNode]) -> Plan {
    let n = nodes.len();
    let mut consumers: Vec<Vec<usize>> = vec![Vec::new(); n];
    for (i, node) in nodes.iter().enumerate() {
        for &src in &node.inputs {
            consumers[src].push(i);
        }
    }
    // Detect fusion roots: an Act node fed by a single-use Add of a
    // single-use BatchNorm of a single-use BinConv of a Sign, where the
    // other Add operand is the conv chain's source (identity), its 2x2
    // average pool, or its channel duplication (each single-use).
    let mut fused_at: Vec<Option<Step>> = vec![None; n];
    let mut covered = vec![false; n];
    for (i, node) in nodes.iter().enumerate() {
        let NodeOp::Act(_) = node.op else { continue };
        let ad = node.inputs[0];
        if !matches!(nodes[ad].op, NodeOp::Add) || consumers[ad].len() != 1 {
            continue;
        }
        let (p, q) = (nodes[ad].inputs[0], nodes[ad].inputs[1]);
        // Identify which operand is the bn → conv chain.
        let (bn, sc) = if matches!(nodes[p].op, NodeOp::BatchNorm(_)) {
            (p, q)
        } else if matches!(nodes[q].op, NodeOp::BatchNorm(_)) {
            (q, p)
        } else {
            continue;
        };
        if consumers[bn].len() != 1 {
            continue;
        }
        let conv = nodes[bn].inputs[0];
        let NodeOp::BinConv(ref c) = nodes[conv].op else {
            continue;
        };
        if consumers[conv].len() != 1 {
            continue;
        }
        let sign = nodes[conv].inputs[0];
        let src = nodes[sign].inputs[0];
        let stride = c.params().stride;
        let step = if sc == src && stride == 1 {
            // Identity shortcut; the fused channel kernel's `ch % C`
            // indexing degenerates to the identity when C_out == C_in.
            Some(Step::FusedChannel {
                act: i,
                sign,
                conv,
                bn,
                src,
            })
        } else if matches!(nodes[sc].op, NodeOp::ChannelDup)
            && nodes[sc].inputs[0] == src
            && consumers[sc].len() == 1
            && stride == 1
        {
            covered[sc] = true;
            Some(Step::FusedChannel {
                act: i,
                sign,
                conv,
                bn,
                src,
            })
        } else if matches!(nodes[sc].op, NodeOp::AvgPool2x2)
            && nodes[sc].inputs[0] == src
            && consumers[sc].len() == 1
            && stride == 2
        {
            covered[sc] = true;
            Some(Step::FusedSpatial {
                act: i,
                sign,
                conv,
                bn,
                src,
            })
        } else {
            None
        };
        if let Some(step) = step {
            covered[conv] = true;
            covered[bn] = true;
            covered[ad] = true;
            fused_at[i] = Some(step);
        }
    }

    let mut steps = Vec::with_capacity(n);
    for (i, node) in nodes.iter().enumerate() {
        if covered[i] {
            continue;
        }
        if let Some(step) = fused_at[i].take() {
            steps.push(step);
            continue;
        }
        let step = match node.op {
            NodeOp::Input { .. } => Step::Input { node: i },
            NodeOp::StemConv(_) => Step::Stem {
                node: i,
                src: node.inputs[0],
            },
            // Sign nodes are folded into their consuming convolutions.
            NodeOp::Sign(_) => continue,
            NodeOp::BinConv(_) => Step::Conv {
                node: i,
                sign: node.inputs[0],
                src: nodes[node.inputs[0]].inputs[0],
            },
            NodeOp::BatchNorm(_) => Step::Bn {
                node: i,
                src: node.inputs[0],
            },
            NodeOp::Act(_) => Step::Act {
                node: i,
                src: node.inputs[0],
            },
            NodeOp::AvgPool2x2 => Step::AvgPool {
                node: i,
                src: node.inputs[0],
            },
            NodeOp::ChannelDup => Step::ChannelDup {
                node: i,
                src: node.inputs[0],
            },
            NodeOp::Add => Step::Add {
                node: i,
                a: node.inputs[0],
                b: node.inputs[1],
            },
            NodeOp::GlobalAvgPool => Step::GlobalPool {
                node: i,
                src: node.inputs[0],
            },
            NodeOp::Classifier(_) => Step::Classifier {
                node: i,
                src: node.inputs[0],
            },
        };
        steps.push(step);
    }

    let mut last_read = vec![usize::MAX; n];
    for (si, step) in steps.iter().enumerate() {
        for v in step.reads() {
            last_read[v] = si;
        }
    }
    Plan {
        steps,
        last_read,
        output: n - 1,
    }
}

/// A node value during execution: the graph input is borrowed, everything
/// else is owned.
enum Val<'a> {
    Borrowed(&'a Tensor),
    Owned(Tensor),
}

impl Val<'_> {
    fn get(&self) -> &Tensor {
        match self {
            Val::Borrowed(t) => t,
            Val::Owned(t) => t,
        }
    }
}

/// Read a produced value; the plan's topological order guarantees it
/// exists.
fn value<'v>(values: &'v [Option<Val<'_>>], v: usize) -> &'v Tensor {
    values[v].as_ref().expect("topological order").get()
}

/// Fetch the layer behind a node, panicking on a kind mismatch — the plan
/// is derived from the same node list, so a mismatch is a planner bug.
macro_rules! layer {
    ($nodes:expr, $idx:expr, $variant:path) => {
        match $nodes[$idx].op {
            $variant(ref l) => l,
            ref other => unreachable!("planner wired {} into a {:?}", $idx, other.tag()),
        }
    };
}

/// Run the plan through the execution engine (fused stages, scratch
/// reuse). Bit-exact with [`run_scalar`].
pub(crate) fn run(
    nodes: &[GraphNode],
    plan: &Plan,
    input: &Tensor,
    engine: &Engine,
    scratch: &mut Scratch,
) -> Result<Tensor> {
    let mut values: Vec<Option<Val>> = (0..nodes.len()).map(|_| None).collect();
    for (si, step) in plan.steps.iter().enumerate() {
        let produced: Val = match *step {
            Step::Input { .. } => Val::Borrowed(input),
            Step::Stem { src, node } => {
                let stem = layer!(nodes, node, NodeOp::StemConv);
                Val::Owned(stem.forward_fast(value(&values, src)))
            }
            Step::Conv { node, sign, src } => {
                let sg = layer!(nodes, sign, NodeOp::Sign);
                let conv = layer!(nodes, node, NodeOp::BinConv);
                sg.binarize_into(value(&values, src), &mut scratch.bits);
                scratch
                    .packed
                    .repack(&scratch.bits)
                    .expect("4-D input validated by binarize");
                let mut out = Tensor::default();
                conv.forward_packed_with(&scratch.packed, engine, &mut scratch.conv, &mut out);
                Val::Owned(out)
            }
            Step::Bn { node, src } => {
                let bn = layer!(nodes, node, NodeOp::BatchNorm);
                Val::Owned(bn.forward(value(&values, src)))
            }
            Step::Act { node, src } => {
                let act = layer!(nodes, node, NodeOp::Act);
                Val::Owned(act.forward(value(&values, src)))
            }
            Step::AvgPool { src, .. } => Val::Owned(avg_pool_2x2(value(&values, src))),
            Step::ChannelDup { src, .. } => {
                let x = value(&values, src);
                Val::Owned(shortcut_channels(x, 2 * x.shape()[1]))
            }
            Step::Add { a, b, .. } => Val::Owned(add(value(&values, a), value(&values, b))),
            Step::GlobalPool { src, .. } => Val::Owned(global_avg_pool(value(&values, src))),
            Step::Classifier { node, src } => {
                let fc = layer!(nodes, node, NodeOp::Classifier);
                Val::Owned(fc.forward_2d(value(&values, src)))
            }
            Step::FusedSpatial {
                act,
                sign,
                conv,
                bn,
                src,
            } => {
                let sg = layer!(nodes, sign, NodeOp::Sign);
                let cv = layer!(nodes, conv, NodeOp::BinConv);
                let bnl = layer!(nodes, bn, NodeOp::BatchNorm);
                let al = layer!(nodes, act, NodeOp::Act);
                let x = value(&values, src);
                sg.binarize_into(x, &mut scratch.bits);
                scratch
                    .packed
                    .repack(&scratch.bits)
                    .expect("4-D input validated by binarize");
                cv.forward_packed_with(
                    &scratch.packed,
                    engine,
                    &mut scratch.conv,
                    &mut scratch.conv_out,
                );
                let mut out = Tensor::default();
                fuse_spatial_stage(&scratch.conv_out, x, 2, bnl, al, &mut out)?;
                Val::Owned(out)
            }
            Step::FusedChannel {
                act,
                sign,
                conv,
                bn,
                src,
            } => {
                let sg = layer!(nodes, sign, NodeOp::Sign);
                let cv = layer!(nodes, conv, NodeOp::BinConv);
                let bnl = layer!(nodes, bn, NodeOp::BatchNorm);
                let al = layer!(nodes, act, NodeOp::Act);
                let x = value(&values, src);
                sg.binarize_into(x, &mut scratch.bits);
                scratch
                    .packed
                    .repack(&scratch.bits)
                    .expect("4-D input validated by binarize");
                cv.forward_packed_with(
                    &scratch.packed,
                    engine,
                    &mut scratch.conv,
                    &mut scratch.conv_out,
                );
                Val::Owned(fuse_channel_stage(&scratch.conv_out, x, bnl, al))
            }
        };
        let out_node = step.output();
        values[out_node] = Some(produced);
        // Free every value whose last reader has now run (keep the graph
        // output alive).
        for v in step.reads() {
            if plan.last_read[v] == si && v != plan.output {
                values[v] = None;
            }
        }
    }
    match values[plan.output].take() {
        Some(Val::Owned(t)) => Ok(t),
        Some(Val::Borrowed(t)) => Ok(t.clone()),
        None => Err(BitnnError::InvalidConfig(
            "graph produced no output value".into(),
        )),
    }
}

/// The scalar reference walk: per-node naive forwards, fresh allocations,
/// no fusion, no engine — the graph-level twin of the frozen
/// `ReActNet::forward_scalar` oracle. When `traces` is `Some`, the
/// binarized input of every 3×3 binary convolution is appended in
/// topological order (the bit sequences of the paper's Sec. I
/// observation).
pub(crate) fn run_scalar(
    nodes: &[GraphNode],
    input: &Tensor,
    mut traces: Option<&mut Vec<BitTensor>>,
) -> Result<Tensor> {
    fn get(values: &[Option<Tensor>], v: usize) -> &Tensor {
        values[v].as_ref().expect("topological order")
    }
    let mut values: Vec<Option<Tensor>> = (0..nodes.len()).map(|_| None).collect();
    for (i, node) in nodes.iter().enumerate() {
        let out = match node.op {
            NodeOp::Input { .. } => input.clone(),
            NodeOp::StemConv(ref stem) => stem.forward(get(&values, node.inputs[0])),
            NodeOp::Sign(_) => continue, // folded into the consuming conv
            NodeOp::BinConv(ref conv) => {
                let sign = node.inputs[0];
                let sg = layer!(nodes, sign, NodeOp::Sign);
                let bits = sg.binarize(get(&values, nodes[sign].inputs[0]));
                let packed = PackedActivations::pack(&bits).expect("4-D input");
                let y = conv.forward_packed(&packed);
                if let Some(ref mut t) = traces {
                    if conv.kernel_size() == (3, 3) {
                        t.push(bits);
                    }
                }
                y
            }
            NodeOp::BatchNorm(ref bn) => bn.forward(get(&values, node.inputs[0])),
            NodeOp::Act(ref act) => act.forward(get(&values, node.inputs[0])),
            NodeOp::AvgPool2x2 => avg_pool_2x2(get(&values, node.inputs[0])),
            NodeOp::ChannelDup => {
                let x = get(&values, node.inputs[0]);
                shortcut_channels(x, 2 * x.shape()[1])
            }
            NodeOp::Add => add(get(&values, node.inputs[0]), get(&values, node.inputs[1])),
            NodeOp::GlobalAvgPool => global_avg_pool(get(&values, node.inputs[0])),
            NodeOp::Classifier(ref fc) => fc.forward_2d(get(&values, node.inputs[0])),
        };
        values[i] = Some(out);
    }
    values
        .pop()
        .flatten()
        .ok_or_else(|| BitnnError::InvalidConfig("graph produced no output value".into()))
}
