//! The graph executor: lowers a validated node list onto the execution
//! engine, fusing the `conv → bn → (+shortcut) → act` patterns onto the
//! same fused stages the ReActNet block path uses.
//!
//! Planning happens once, at [`crate::graph::ModelGraph`] construction:
//! the node list is walked, sign nodes are folded into their consuming
//! convolutions (binarize + channel-pack straight into the engine's
//! scratch), and every `BinConv → BatchNorm → Add → Act` chain whose
//! intermediates are single-use is matched to one of the two fused
//! element-wise kernels ([`fuse_spatial_stage`] for the stride-2
//! average-pool shortcut, [`fuse_channel_stage`] for the identity and
//! channel-duplication shortcuts). Everything else runs node-by-node.
//! Both paths are bit-exact with the scalar walk ([`run_scalar`]): the
//! convolutions are integer, and the fused float stages apply the same
//! per-element operations in the same order.

use crate::engine::{Engine, Scratch};
use crate::error::{BitnnError, Result};
use crate::layers::{
    avg_pool_2x2, avg_pool_2x2_into, global_avg_pool, global_avg_pool_into, Layer,
};
use crate::model::block::{
    add, add_into, fuse_channel_stage, fuse_spatial_stage, shortcut_channels,
    shortcut_channels_into,
};
use crate::pack::PackedActivations;
use crate::tensor::{BitTensor, Tensor};

use super::{GraphNode, NodeOp};

/// One planned execution step. Node indices refer to the graph's node
/// list; each step produces the value of its `node`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) enum Step {
    /// The graph input.
    Input { node: usize },
    /// 8-bit stem convolution.
    Stem { node: usize, src: usize },
    /// Sign + binary convolution (the sign node is folded in).
    Conv {
        node: usize,
        sign: usize,
        src: usize,
    },
    /// Stand-alone batch-norm.
    Bn { node: usize, src: usize },
    /// Stand-alone RPReLU.
    Act { node: usize, src: usize },
    /// 2×2 average pool.
    AvgPool { node: usize, src: usize },
    /// Channel duplication.
    ChannelDup { node: usize, src: usize },
    /// Element-wise add.
    Add { node: usize, a: usize, b: usize },
    /// Global average pool.
    GlobalPool { node: usize, src: usize },
    /// 8-bit classifier.
    Classifier { node: usize, src: usize },
    /// `sign(src) → conv(stride 2) → bn → (+ avg_pool(src)) → act`,
    /// with the pool computed on the fly inside the fused kernel.
    /// Produces the value of `act`.
    FusedSpatial {
        act: usize,
        sign: usize,
        conv: usize,
        bn: usize,
        src: usize,
    },
    /// `sign(src) → conv(stride 1) → bn → (+ src or channel_dup(src)) →
    /// act`. Produces the value of `act`.
    FusedChannel {
        act: usize,
        sign: usize,
        conv: usize,
        bn: usize,
        src: usize,
    },
}

impl Step {
    /// The node whose value this step produces.
    fn output(&self) -> usize {
        match *self {
            Step::Input { node }
            | Step::Stem { node, .. }
            | Step::Conv { node, .. }
            | Step::Bn { node, .. }
            | Step::Act { node, .. }
            | Step::AvgPool { node, .. }
            | Step::ChannelDup { node, .. }
            | Step::Add { node, .. }
            | Step::GlobalPool { node, .. }
            | Step::Classifier { node, .. } => node,
            Step::FusedSpatial { act, .. } | Step::FusedChannel { act, .. } => act,
        }
    }

    /// Node values this step reads.
    fn reads(&self) -> Vec<usize> {
        match *self {
            Step::Input { .. } => vec![],
            Step::Stem { src, .. }
            | Step::Conv { src, .. }
            | Step::Bn { src, .. }
            | Step::Act { src, .. }
            | Step::AvgPool { src, .. }
            | Step::ChannelDup { src, .. }
            | Step::GlobalPool { src, .. }
            | Step::Classifier { src, .. }
            | Step::FusedSpatial { src, .. }
            | Step::FusedChannel { src, .. } => vec![src],
            Step::Add { a, b, .. } => vec![a, b],
        }
    }
}

/// Arena slot marker for values that live outside the arena (the borrowed
/// graph input) or are never produced (folded sign nodes).
pub(crate) const NO_SLOT: usize = usize::MAX;

/// A compiled execution plan: fused steps, per-value lifetimes, and the
/// liveness-derived arena slot assignment.
#[derive(Debug, Clone, Default)]
pub(crate) struct Plan {
    pub(crate) steps: Vec<Step>,
    /// `last_read[v]` = index of the last step that reads node `v`'s
    /// value (`usize::MAX` when never read).
    pub(crate) last_read: Vec<usize>,
    /// The node whose value is the graph output.
    pub(crate) output: usize,
    /// The graph's input node (its value is the caller's borrowed tensor).
    input_node: usize,
    /// Arena slot holding each node's value ([`NO_SLOT`] for the input and
    /// for nodes that produce no value). Slots are assigned by a liveness
    /// pass: a slot is recycled only for values whose lifetimes are
    /// disjoint, and a step's output slot never aliases any of its input
    /// slots, so every forward runs against a fixed small set of reusable
    /// tensors instead of allocating per node.
    pub(crate) slot: Vec<usize>,
    /// Number of arena slots the plan needs.
    pub(crate) slots: usize,
}

/// Compile the node list into a plan. The graph must already be validated
/// (see [`crate::graph::spec::GraphSpec::validate`]); planning itself only
/// decides fusion.
pub(crate) fn plan(nodes: &[GraphNode]) -> Plan {
    let n = nodes.len();
    let mut consumers: Vec<Vec<usize>> = vec![Vec::new(); n];
    for (i, node) in nodes.iter().enumerate() {
        for &src in &node.inputs {
            consumers[src].push(i);
        }
    }
    // Detect fusion roots: an Act node fed by a single-use Add of a
    // single-use BatchNorm of a single-use BinConv of a Sign, where the
    // other Add operand is the conv chain's source (identity), its 2x2
    // average pool, or its channel duplication (each single-use).
    let mut fused_at: Vec<Option<Step>> = vec![None; n];
    let mut covered = vec![false; n];
    for (i, node) in nodes.iter().enumerate() {
        let NodeOp::Act(_) = node.op else { continue };
        let ad = node.inputs[0];
        if !matches!(nodes[ad].op, NodeOp::Add) || consumers[ad].len() != 1 {
            continue;
        }
        let (p, q) = (nodes[ad].inputs[0], nodes[ad].inputs[1]);
        // Identify which operand is the bn → conv chain.
        let (bn, sc) = if matches!(nodes[p].op, NodeOp::BatchNorm(_)) {
            (p, q)
        } else if matches!(nodes[q].op, NodeOp::BatchNorm(_)) {
            (q, p)
        } else {
            continue;
        };
        if consumers[bn].len() != 1 {
            continue;
        }
        let conv = nodes[bn].inputs[0];
        let NodeOp::BinConv(ref c) = nodes[conv].op else {
            continue;
        };
        if consumers[conv].len() != 1 {
            continue;
        }
        let sign = nodes[conv].inputs[0];
        let src = nodes[sign].inputs[0];
        let stride = c.params().stride;
        let step = if sc == src && stride == 1 {
            // Identity shortcut; the fused channel kernel's `ch % C`
            // indexing degenerates to the identity when C_out == C_in.
            Some(Step::FusedChannel {
                act: i,
                sign,
                conv,
                bn,
                src,
            })
        } else if matches!(nodes[sc].op, NodeOp::ChannelDup)
            && nodes[sc].inputs[0] == src
            && consumers[sc].len() == 1
            && stride == 1
        {
            covered[sc] = true;
            Some(Step::FusedChannel {
                act: i,
                sign,
                conv,
                bn,
                src,
            })
        } else if matches!(nodes[sc].op, NodeOp::AvgPool2x2)
            && nodes[sc].inputs[0] == src
            && consumers[sc].len() == 1
            && stride == 2
        {
            covered[sc] = true;
            Some(Step::FusedSpatial {
                act: i,
                sign,
                conv,
                bn,
                src,
            })
        } else {
            None
        };
        if let Some(step) = step {
            covered[conv] = true;
            covered[bn] = true;
            covered[ad] = true;
            fused_at[i] = Some(step);
        }
    }

    let mut steps = Vec::with_capacity(n);
    for (i, node) in nodes.iter().enumerate() {
        if covered[i] {
            continue;
        }
        if let Some(step) = fused_at[i].take() {
            steps.push(step);
            continue;
        }
        let step = match node.op {
            NodeOp::Input { .. } => Step::Input { node: i },
            NodeOp::StemConv(_) => Step::Stem {
                node: i,
                src: node.inputs[0],
            },
            // Sign nodes are folded into their consuming convolutions.
            NodeOp::Sign(_) => continue,
            NodeOp::BinConv(_) => Step::Conv {
                node: i,
                sign: node.inputs[0],
                src: nodes[node.inputs[0]].inputs[0],
            },
            NodeOp::BatchNorm(_) => Step::Bn {
                node: i,
                src: node.inputs[0],
            },
            NodeOp::Act(_) => Step::Act {
                node: i,
                src: node.inputs[0],
            },
            NodeOp::AvgPool2x2 => Step::AvgPool {
                node: i,
                src: node.inputs[0],
            },
            NodeOp::ChannelDup => Step::ChannelDup {
                node: i,
                src: node.inputs[0],
            },
            NodeOp::Add => Step::Add {
                node: i,
                a: node.inputs[0],
                b: node.inputs[1],
            },
            NodeOp::GlobalAvgPool => Step::GlobalPool {
                node: i,
                src: node.inputs[0],
            },
            NodeOp::Classifier(_) => Step::Classifier {
                node: i,
                src: node.inputs[0],
            },
        };
        steps.push(step);
    }

    let mut last_read = vec![usize::MAX; n];
    for (si, step) in steps.iter().enumerate() {
        for v in step.reads() {
            last_read[v] = si;
        }
    }
    let output = n - 1;
    let input_node = steps
        .iter()
        .find_map(|s| match *s {
            Step::Input { node } => Some(node),
            _ => None,
        })
        .unwrap_or(0);

    // Liveness-driven arena allocation: walk the steps assigning each
    // produced value the lowest free slot, then release the slots of
    // values whose last reader just ran. Releasing *after* assigning the
    // output keeps a step's output slot disjoint from all of its inputs
    // (no in-place aliasing), and the graph output's slot is never
    // released so it survives to the end of the plan.
    let mut slot = vec![NO_SLOT; n];
    let mut free: Vec<usize> = Vec::new();
    let mut slots = 0usize;
    for (si, step) in steps.iter().enumerate() {
        let out_node = step.output();
        if !matches!(step, Step::Input { .. }) {
            slot[out_node] = free.pop().unwrap_or_else(|| {
                slots += 1;
                slots - 1
            });
        }
        let reads = step.reads();
        for (j, &v) in reads.iter().enumerate() {
            // Deduplicate (a step may read one value twice, e.g. add(x, x))
            // so a slot is never pushed onto the free list twice.
            if reads[..j].contains(&v) {
                continue;
            }
            if last_read[v] == si && v != output && slot[v] != NO_SLOT {
                free.push(slot[v]);
            }
        }
    }

    let plan = Plan {
        steps,
        last_read,
        output,
        input_node,
        slot,
        slots,
    };
    debug_assert!(
        plan.check_no_aliasing().is_ok(),
        "slot allocator produced aliasing: {:?}",
        plan.check_no_aliasing()
    );
    plan
}

impl Plan {
    /// Verify the arena slot assignment: values sharing a slot must have
    /// strictly disjoint lifetimes (one's producing step comes after the
    /// other's last reader), which also implies a step's output slot never
    /// aliases any of its inputs. Debug builds assert this after every
    /// compile; the property tests sweep it across random graphs.
    pub(crate) fn check_no_aliasing(&self) -> std::result::Result<(), String> {
        let horizon = self.steps.len();
        // Per value: the step producing it and the last step reading it
        // (the graph output stays live to the end of the plan).
        let mut produced = vec![usize::MAX; self.slot.len()];
        for (si, step) in self.steps.iter().enumerate() {
            produced[step.output()] = si;
        }
        let life = |v: usize| -> (usize, usize) {
            let end = if v == self.output || self.last_read[v] == usize::MAX {
                horizon
            } else {
                self.last_read[v]
            };
            (produced[v], end)
        };
        for u in 0..self.slot.len() {
            if self.slot[u] == NO_SLOT {
                continue;
            }
            for v in u + 1..self.slot.len() {
                if self.slot[v] != self.slot[u] {
                    continue;
                }
                let (pu, eu) = life(u);
                let (pv, ev) = life(v);
                let disjoint = if pu < pv { pv > eu } else { pu > ev };
                if !disjoint {
                    return Err(format!(
                        "values {u} (steps {pu}..={eu}) and {v} (steps {pv}..={ev}) \
                         share slot {}",
                        self.slot[u]
                    ));
                }
            }
        }
        Ok(())
    }
}

/// Fetch the layer behind a node, panicking on a kind mismatch — the plan
/// is derived from the same node list, so a mismatch is a planner bug.
macro_rules! layer {
    ($nodes:expr, $idx:expr, $variant:path) => {
        match $nodes[$idx].op {
            $variant(ref l) => l,
            ref other => unreachable!("planner wired {} into a {:?}", $idx, other.tag()),
        }
    };
}

/// Run the plan through the execution engine (fused stages, scratch reuse,
/// arena-allocated activations) into a reusable output tensor. Bit-exact
/// with [`run_scalar`].
///
/// Every intermediate value lives in `scratch.arena` at the slot the
/// liveness pass assigned; on a warmed scratch (same shapes as the last
/// call) the whole forward performs zero heap allocation.
pub(crate) fn run_into(
    nodes: &[GraphNode],
    plan: &Plan,
    input: &Tensor,
    engine: &Engine,
    scratch: &mut Scratch,
    out: &mut Tensor,
) -> Result<()> {
    // Split the scratch into its independent buffers so the arena can be
    // borrowed alongside the conv/sign/quant staging buffers.
    let Scratch {
        conv,
        bits,
        packed,
        conv_out,
        quant,
        arena,
        ..
    } = scratch;
    if arena.len() < plan.slots {
        arena.resize_with(plan.slots, Tensor::default);
    }
    // Read a node's value: the borrowed graph input or its arena slot.
    // The liveness pass guarantees a live value's slot is not recycled, so
    // reading through `plan.slot` always yields the value produced for it.
    macro_rules! val {
        ($v:expr) => {
            if $v == plan.input_node {
                input
            } else {
                &arena[plan.slot[$v]]
            }
        };
    }
    for step in plan.steps.iter() {
        let out_node = step.output();
        if matches!(step, Step::Input { .. }) {
            continue; // the input's value is the caller's borrowed tensor
        }
        // Detach the output slot so the arena stays immutably readable;
        // the slot allocator guarantees it aliases none of the inputs.
        let mut dst = std::mem::take(&mut arena[plan.slot[out_node]]);
        let result = match *step {
            Step::Input { .. } => unreachable!("handled above"),
            Step::Stem { src, node } => {
                let stem = layer!(nodes, node, NodeOp::StemConv);
                stem.forward_fast_with(val!(src), quant, &mut dst);
                Ok(())
            }
            Step::Conv { node, sign, src } => {
                let sg = layer!(nodes, sign, NodeOp::Sign);
                let cv = layer!(nodes, node, NodeOp::BinConv);
                sg.binarize_into(val!(src), bits);
                packed
                    .repack(bits)
                    .expect("4-D input validated by binarize");
                cv.forward_packed_with(packed, engine, conv, &mut dst);
                Ok(())
            }
            Step::Bn { node, src } => {
                let bn = layer!(nodes, node, NodeOp::BatchNorm);
                bn.forward_into(val!(src), &mut dst);
                Ok(())
            }
            Step::Act { node, src } => {
                let act = layer!(nodes, node, NodeOp::Act);
                act.forward_into(val!(src), &mut dst);
                Ok(())
            }
            Step::AvgPool { src, .. } => {
                avg_pool_2x2_into(val!(src), &mut dst);
                Ok(())
            }
            Step::ChannelDup { src, .. } => {
                let x = val!(src);
                shortcut_channels_into(x, 2 * x.shape()[1], &mut dst);
                Ok(())
            }
            Step::Add { a, b, .. } => {
                add_into(val!(a), val!(b), &mut dst);
                Ok(())
            }
            Step::GlobalPool { src, .. } => {
                global_avg_pool_into(val!(src), &mut dst);
                Ok(())
            }
            Step::Classifier { node, src } => {
                let fc = layer!(nodes, node, NodeOp::Classifier);
                fc.forward_2d_with(val!(src), quant, &mut dst);
                Ok(())
            }
            Step::FusedSpatial {
                act,
                sign,
                conv: cnode,
                bn,
                src,
            } => {
                let sg = layer!(nodes, sign, NodeOp::Sign);
                let cv = layer!(nodes, cnode, NodeOp::BinConv);
                let bnl = layer!(nodes, bn, NodeOp::BatchNorm);
                let al = layer!(nodes, act, NodeOp::Act);
                let x = val!(src);
                sg.binarize_into(x, bits);
                packed
                    .repack(bits)
                    .expect("4-D input validated by binarize");
                cv.forward_packed_with(packed, engine, conv, conv_out);
                fuse_spatial_stage(conv_out, x, 2, bnl, al, &mut dst)
            }
            Step::FusedChannel {
                act,
                sign,
                conv: cnode,
                bn,
                src,
            } => {
                let sg = layer!(nodes, sign, NodeOp::Sign);
                let cv = layer!(nodes, cnode, NodeOp::BinConv);
                let bnl = layer!(nodes, bn, NodeOp::BatchNorm);
                let al = layer!(nodes, act, NodeOp::Act);
                let x = val!(src);
                sg.binarize_into(x, bits);
                packed
                    .repack(bits)
                    .expect("4-D input validated by binarize");
                cv.forward_packed_with(packed, engine, conv, conv_out);
                fuse_channel_stage(conv_out, x, bnl, al, &mut dst);
                Ok(())
            }
        };
        arena[plan.slot[out_node]] = dst;
        result?;
    }
    if plan.output == plan.input_node {
        out.clone_from(input);
    } else {
        // Hand the output slot's buffer to the caller and keep the
        // caller's old buffer as the slot's next scratch (capacity
        // ping-pongs once, then stabilizes — no steady-state allocation).
        std::mem::swap(out, &mut arena[plan.slot[plan.output]]);
    }
    Ok(())
}

/// The scalar reference walk: per-node naive forwards, fresh allocations,
/// no fusion, no engine — the graph-level twin of the frozen
/// `ReActNet::forward_scalar` oracle. When `traces` is `Some`, the
/// binarized input of every 3×3 binary convolution is appended in
/// topological order (the bit sequences of the paper's Sec. I
/// observation).
pub(crate) fn run_scalar(
    nodes: &[GraphNode],
    input: &Tensor,
    mut traces: Option<&mut Vec<BitTensor>>,
) -> Result<Tensor> {
    fn get(values: &[Option<Tensor>], v: usize) -> &Tensor {
        values[v].as_ref().expect("topological order")
    }
    let mut values: Vec<Option<Tensor>> = (0..nodes.len()).map(|_| None).collect();
    for (i, node) in nodes.iter().enumerate() {
        let out = match node.op {
            NodeOp::Input { .. } => input.clone(),
            NodeOp::StemConv(ref stem) => stem.forward(get(&values, node.inputs[0])),
            NodeOp::Sign(_) => continue, // folded into the consuming conv
            NodeOp::BinConv(ref conv) => {
                let sign = node.inputs[0];
                let sg = layer!(nodes, sign, NodeOp::Sign);
                let bits = sg.binarize(get(&values, nodes[sign].inputs[0]));
                let packed = PackedActivations::pack(&bits).expect("4-D input");
                let y = conv.forward_packed(&packed);
                if let Some(ref mut t) = traces {
                    if conv.kernel_size() == (3, 3) {
                        t.push(bits);
                    }
                }
                y
            }
            NodeOp::BatchNorm(ref bn) => bn.forward(get(&values, node.inputs[0])),
            NodeOp::Act(ref act) => act.forward(get(&values, node.inputs[0])),
            NodeOp::AvgPool2x2 => avg_pool_2x2(get(&values, node.inputs[0])),
            NodeOp::ChannelDup => {
                let x = get(&values, node.inputs[0]);
                shortcut_channels(x, 2 * x.shape()[1])
            }
            NodeOp::Add => add(get(&values, node.inputs[0]), get(&values, node.inputs[1])),
            NodeOp::GlobalAvgPool => global_avg_pool(get(&values, node.inputs[0])),
            NodeOp::Classifier(ref fc) => fc.forward_2d(get(&values, node.inputs[0])),
        };
        values[i] = Some(out);
    }
    values
        .pop()
        .flatten()
        .ok_or_else(|| BitnnError::InvalidConfig("graph produced no output value".into()))
}
