//! Plan structure and backend dispatch for the graph executor.
//!
//! This module owns the *backend-neutral* half of execution: the
//! [`Step`] vocabulary, the step-list builders ([`fused_steps`] /
//! [`unfused_steps`]) that backends call from their `compile`, the
//! liveness pass that assigns every intermediate value an arena slot
//! ([`CompiledPlan::from_steps`]), and the dispatch loop ([`run_plan`])
//! that resolves each step's operand tensors and hands the step to a
//! [`Backend`](crate::backend::Backend). It never touches a kernel: how a
//! step is actually computed — which engine, which SIMD level, which
//! scratch buffers — is entirely the backend's business (see
//! [`crate::backend`]).
//!
//! Planning happens once, at [`crate::graph::ModelGraph`] construction:
//! the node list is walked, sign nodes are folded into their consuming
//! convolutions, and (in the fused lowering) every
//! `BinConv → BatchNorm → Add → Act` chain whose intermediates are
//! single-use is collapsed into one fused step. Every backend is
//! bit-exact with every other: the convolutions are integer, and the
//! fused float stages apply the same per-element operations in the same
//! order.

use crate::backend::{Backend, StepCtx};
use crate::error::Result;
use crate::tensor::Tensor;

use super::{GraphNode, NodeOp};

/// One planned execution step. Node indices refer to the graph's node
/// list; each step produces the value of its [`Step::output`] node.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Step {
    /// The graph input.
    Input {
        /// The input node.
        node: usize,
    },
    /// 8-bit stem convolution.
    Stem {
        /// Producing node.
        node: usize,
        /// Value read.
        src: usize,
    },
    /// Sign + binary convolution (the sign node is folded in).
    Conv {
        /// The convolution node.
        node: usize,
        /// The folded sign node.
        sign: usize,
        /// Value read (the sign node's input).
        src: usize,
    },
    /// Stand-alone batch-norm.
    Bn {
        /// Producing node.
        node: usize,
        /// Value read.
        src: usize,
    },
    /// Stand-alone RPReLU.
    Act {
        /// Producing node.
        node: usize,
        /// Value read.
        src: usize,
    },
    /// 2×2 average pool.
    AvgPool {
        /// Producing node.
        node: usize,
        /// Value read.
        src: usize,
    },
    /// Channel duplication.
    ChannelDup {
        /// Producing node.
        node: usize,
        /// Value read.
        src: usize,
    },
    /// Element-wise add.
    Add {
        /// Producing node.
        node: usize,
        /// Left operand value.
        a: usize,
        /// Right operand value.
        b: usize,
    },
    /// Global average pool.
    GlobalPool {
        /// Producing node.
        node: usize,
        /// Value read.
        src: usize,
    },
    /// 8-bit classifier.
    Classifier {
        /// Producing node.
        node: usize,
        /// Value read.
        src: usize,
    },
    /// `sign(src) → conv(stride 2) → bn → (+ avg_pool(src)) → act`,
    /// with the pool computed on the fly inside the fused kernel.
    /// Produces the value of `act`.
    FusedSpatial {
        /// The activation node whose value this step produces.
        act: usize,
        /// The folded sign node.
        sign: usize,
        /// The convolution node.
        conv: usize,
        /// The batch-norm node.
        bn: usize,
        /// Value read.
        src: usize,
    },
    /// `sign(src) → conv(stride 1) → bn → (+ src or channel_dup(src)) →
    /// act`. Produces the value of `act`.
    FusedChannel {
        /// The activation node whose value this step produces.
        act: usize,
        /// The folded sign node.
        sign: usize,
        /// The convolution node.
        conv: usize,
        /// The batch-norm node.
        bn: usize,
        /// Value read.
        src: usize,
    },
}

impl Step {
    /// The node whose value this step produces.
    pub fn output(&self) -> usize {
        match *self {
            Step::Input { node }
            | Step::Stem { node, .. }
            | Step::Conv { node, .. }
            | Step::Bn { node, .. }
            | Step::Act { node, .. }
            | Step::AvgPool { node, .. }
            | Step::ChannelDup { node, .. }
            | Step::Add { node, .. }
            | Step::GlobalPool { node, .. }
            | Step::Classifier { node, .. } => node,
            Step::FusedSpatial { act, .. } | Step::FusedChannel { act, .. } => act,
        }
    }

    /// Node values this step reads, as an allocation-free pair: the first
    /// operand (absent only for [`Step::Input`]) and the second (present
    /// only for [`Step::Add`]).
    pub fn read_pair(&self) -> (Option<usize>, Option<usize>) {
        match *self {
            Step::Input { .. } => (None, None),
            Step::Stem { src, .. }
            | Step::Conv { src, .. }
            | Step::Bn { src, .. }
            | Step::Act { src, .. }
            | Step::AvgPool { src, .. }
            | Step::ChannelDup { src, .. }
            | Step::GlobalPool { src, .. }
            | Step::Classifier { src, .. }
            | Step::FusedSpatial { src, .. }
            | Step::FusedChannel { src, .. } => (Some(src), None),
            Step::Add { a, b, .. } => (Some(a), Some(b)),
        }
    }
}

/// Arena slot marker for values that live outside the arena (the borrowed
/// graph input) or are never produced (folded sign nodes).
pub(crate) const NO_SLOT: usize = usize::MAX;

/// A compiled execution plan: the step list a backend's `compile` chose,
/// per-value lifetimes, and the liveness-derived arena slot assignment.
///
/// The plan is pure topology — it says *what* runs in *which order*
/// against *which arena slots*, never *how*. Backends build one via
/// [`CompiledPlan::from_steps`] from a step list (usually [`fused_steps`]
/// or [`unfused_steps`]) and [`run_plan`] drives any plan against any
/// backend.
#[derive(Debug, Clone, Default)]
pub struct CompiledPlan {
    pub(crate) steps: Vec<Step>,
    /// `last_read[v]` = index of the last step that reads node `v`'s
    /// value (`usize::MAX` when never read).
    pub(crate) last_read: Vec<usize>,
    /// The node whose value is the graph output.
    pub(crate) output: usize,
    /// The graph's input node (its value is the caller's borrowed tensor).
    input_node: usize,
    /// Arena slot holding each node's value ([`NO_SLOT`] for the input and
    /// for nodes that produce no value). Slots are assigned by a liveness
    /// pass: a slot is recycled only for values whose lifetimes are
    /// disjoint, and a step's output slot never aliases any of its input
    /// slots, so every forward runs against a fixed small set of reusable
    /// tensors instead of allocating per node.
    pub(crate) slot: Vec<usize>,
    /// Number of arena slots the plan needs.
    pub(crate) slots: usize,
    /// `binary_edge[si]` — whether step `si` carries a binary-domain
    /// edge: a folded sign whose output feeds a binary convolution
    /// inside the same step. On such edges a backend may keep the sign
    /// output bit-packed (channel-packed lane words) instead of
    /// materializing a flat bit tensor, because the only consumer is
    /// the conv kernel. Derived purely from the step vocabulary, so it
    /// holds for any backend's step list.
    pub(crate) binary_edge: Vec<bool>,
}

/// Build the fused step list: sign nodes folded into their consuming
/// convolutions, and every `BinConv → BatchNorm → Add → Act` chain whose
/// intermediates are single-use collapsed into a fused step. The shortcut
/// operand must be the conv chain's source (identity), its 2×2 average
/// pool (stride-2 convs), or its channel duplication — each single-use.
///
/// The graph must already be validated (see
/// [`crate::graph::spec::GraphSpec::validate`]).
pub fn fused_steps(nodes: &[GraphNode]) -> Vec<Step> {
    let n = nodes.len();
    let mut consumers: Vec<Vec<usize>> = vec![Vec::new(); n];
    for (i, node) in nodes.iter().enumerate() {
        for &src in &node.inputs {
            consumers[src].push(i);
        }
    }
    // Detect fusion roots: an Act node fed by a single-use Add of a
    // single-use BatchNorm of a single-use BinConv of a Sign, where the
    // other Add operand is the conv chain's source (identity), its 2x2
    // average pool, or its channel duplication (each single-use).
    let mut fused_at: Vec<Option<Step>> = vec![None; n];
    let mut covered = vec![false; n];
    for (i, node) in nodes.iter().enumerate() {
        let NodeOp::Act(_) = node.op else { continue };
        let ad = node.inputs[0];
        if !matches!(nodes[ad].op, NodeOp::Add) || consumers[ad].len() != 1 {
            continue;
        }
        let (p, q) = (nodes[ad].inputs[0], nodes[ad].inputs[1]);
        // Identify which operand is the bn → conv chain.
        let (bn, sc) = if matches!(nodes[p].op, NodeOp::BatchNorm(_)) {
            (p, q)
        } else if matches!(nodes[q].op, NodeOp::BatchNorm(_)) {
            (q, p)
        } else {
            continue;
        };
        if consumers[bn].len() != 1 {
            continue;
        }
        let conv = nodes[bn].inputs[0];
        let NodeOp::BinConv(ref c) = nodes[conv].op else {
            continue;
        };
        if consumers[conv].len() != 1 {
            continue;
        }
        let sign = nodes[conv].inputs[0];
        let src = nodes[sign].inputs[0];
        let stride = c.params().stride;
        let step = if sc == src && stride == 1 {
            // Identity shortcut; the fused channel kernel's `ch % C`
            // indexing degenerates to the identity when C_out == C_in.
            Some(Step::FusedChannel {
                act: i,
                sign,
                conv,
                bn,
                src,
            })
        } else if matches!(nodes[sc].op, NodeOp::ChannelDup)
            && nodes[sc].inputs[0] == src
            && consumers[sc].len() == 1
            && stride == 1
        {
            covered[sc] = true;
            Some(Step::FusedChannel {
                act: i,
                sign,
                conv,
                bn,
                src,
            })
        } else if matches!(nodes[sc].op, NodeOp::AvgPool2x2)
            && nodes[sc].inputs[0] == src
            && consumers[sc].len() == 1
            && stride == 2
        {
            covered[sc] = true;
            Some(Step::FusedSpatial {
                act: i,
                sign,
                conv,
                bn,
                src,
            })
        } else {
            None
        };
        if let Some(step) = step {
            covered[conv] = true;
            covered[bn] = true;
            covered[ad] = true;
            fused_at[i] = Some(step);
        }
    }

    let mut steps = Vec::with_capacity(n);
    for (i, node) in nodes.iter().enumerate() {
        if covered[i] {
            continue;
        }
        if let Some(step) = fused_at[i].take() {
            steps.push(step);
            continue;
        }
        if let Some(step) = node_step(nodes, i, node) {
            steps.push(step);
        }
    }
    steps
}

/// Build the unfused step list: one step per node, with only the
/// mandatory sign-into-conv folding (a sign node's value — packed bits —
/// is not a [`Tensor`] and cannot live in the arena). This is the step
/// list the reference backend compiles to: maximum per-step
/// observability, no fusion to hide behind.
pub fn unfused_steps(nodes: &[GraphNode]) -> Vec<Step> {
    nodes
        .iter()
        .enumerate()
        .filter_map(|(i, node)| node_step(nodes, i, node))
        .collect()
}

/// The plain (unfused) step for one node; `None` for folded sign nodes.
fn node_step(nodes: &[GraphNode], i: usize, node: &GraphNode) -> Option<Step> {
    Some(match node.op {
        NodeOp::Input { .. } => Step::Input { node: i },
        NodeOp::StemConv(_) => Step::Stem {
            node: i,
            src: node.inputs[0],
        },
        // Sign nodes are folded into their consuming convolutions.
        NodeOp::Sign(_) => return None,
        NodeOp::BinConv(_) => Step::Conv {
            node: i,
            sign: node.inputs[0],
            src: nodes[node.inputs[0]].inputs[0],
        },
        NodeOp::BatchNorm(_) => Step::Bn {
            node: i,
            src: node.inputs[0],
        },
        NodeOp::Act(_) => Step::Act {
            node: i,
            src: node.inputs[0],
        },
        NodeOp::AvgPool2x2 => Step::AvgPool {
            node: i,
            src: node.inputs[0],
        },
        NodeOp::ChannelDup => Step::ChannelDup {
            node: i,
            src: node.inputs[0],
        },
        NodeOp::Add => Step::Add {
            node: i,
            a: node.inputs[0],
            b: node.inputs[1],
        },
        NodeOp::GlobalAvgPool => Step::GlobalPool {
            node: i,
            src: node.inputs[0],
        },
        NodeOp::Classifier(_) => Step::Classifier {
            node: i,
            src: node.inputs[0],
        },
    })
}

impl CompiledPlan {
    /// Compile a step list over a graph of `n_nodes` nodes into a plan:
    /// derive per-value lifetimes and run the liveness pass that assigns
    /// arena slots. This is the one constructor — every backend's
    /// `compile` funnels through it, so the aliasing guarantees hold for
    /// any step list.
    pub fn from_steps(n_nodes: usize, steps: Vec<Step>) -> CompiledPlan {
        let mut last_read = vec![usize::MAX; n_nodes];
        for (si, step) in steps.iter().enumerate() {
            let (a, b) = step.read_pair();
            for v in [a, b].into_iter().flatten() {
                last_read[v] = si;
            }
        }
        let output = n_nodes - 1;
        let input_node = steps
            .iter()
            .find_map(|s| match *s {
                Step::Input { node } => Some(node),
                _ => None,
            })
            .unwrap_or(0);

        // Liveness-driven arena allocation: walk the steps assigning each
        // produced value the lowest free slot, then release the slots of
        // values whose last reader just ran. Releasing *after* assigning
        // the output keeps a step's output slot disjoint from all of its
        // inputs (no in-place aliasing), and the graph output's slot is
        // never released so it survives to the end of the plan.
        let mut slot = vec![NO_SLOT; n_nodes];
        let mut free: Vec<usize> = Vec::new();
        let mut slots = 0usize;
        for (si, step) in steps.iter().enumerate() {
            let out_node = step.output();
            if !matches!(step, Step::Input { .. }) {
                slot[out_node] = free.pop().unwrap_or_else(|| {
                    slots += 1;
                    slots - 1
                });
            }
            let (a, b) = step.read_pair();
            // Deduplicate (a step may read one value twice, e.g.
            // add(x, x)) so a slot is never pushed onto the free list
            // twice.
            let reads = [a, if b == a { None } else { b }];
            for v in reads.into_iter().flatten() {
                if last_read[v] == si && v != output && slot[v] != NO_SLOT {
                    free.push(slot[v]);
                }
            }
        }

        // Mark binary-domain edges: steps that fold a sign directly into
        // a binary conv. Their sign output's sole consumer is the conv
        // kernel, so it can stay channel-packed end to end.
        let binary_edge = steps
            .iter()
            .map(|s| {
                matches!(
                    s,
                    Step::Conv { .. } | Step::FusedSpatial { .. } | Step::FusedChannel { .. }
                )
            })
            .collect();

        let plan = CompiledPlan {
            steps,
            last_read,
            output,
            input_node,
            slot,
            slots,
            binary_edge,
        };
        debug_assert!(
            plan.check_no_aliasing().is_ok(),
            "slot allocator produced aliasing: {:?}",
            plan.check_no_aliasing()
        );
        plan
    }

    /// The planned steps, in execution order.
    pub fn steps(&self) -> &[Step] {
        &self.steps
    }

    /// Number of arena slots this plan needs.
    pub fn slots(&self) -> usize {
        self.slots
    }

    /// Per-step binary-domain-edge marking (parallel to [`Self::steps`]):
    /// `true` where the step folds a sign into a binary conv, letting a
    /// backend keep that sign output bit-packed.
    pub fn binary_edges(&self) -> &[bool] {
        &self.binary_edge
    }

    /// Verify the arena slot assignment: values sharing a slot must have
    /// strictly disjoint lifetimes (one's producing step comes after the
    /// other's last reader), which also implies a step's output slot never
    /// aliases any of its inputs. Debug builds assert this after every
    /// compile; the property tests sweep it across random graphs.
    pub(crate) fn check_no_aliasing(&self) -> std::result::Result<(), String> {
        let horizon = self.steps.len();
        // Per value: the step producing it and the last step reading it
        // (the graph output stays live to the end of the plan).
        let mut produced = vec![usize::MAX; self.slot.len()];
        for (si, step) in self.steps.iter().enumerate() {
            produced[step.output()] = si;
        }
        let life = |v: usize| -> (usize, usize) {
            let end = if v == self.output || self.last_read[v] == usize::MAX {
                horizon
            } else {
                self.last_read[v]
            };
            (produced[v], end)
        };
        for u in 0..self.slot.len() {
            if self.slot[u] == NO_SLOT {
                continue;
            }
            for v in u + 1..self.slot.len() {
                if self.slot[v] != self.slot[u] {
                    continue;
                }
                let (pu, eu) = life(u);
                let (pv, ev) = life(v);
                let disjoint = if pu < pv { pv > eu } else { pu > ev };
                if !disjoint {
                    return Err(format!(
                        "values {u} (steps {pu}..={eu}) and {v} (steps {pv}..={ev}) \
                         share slot {}",
                        self.slot[u]
                    ));
                }
            }
        }
        Ok(())
    }
}

/// Run a compiled plan against a backend into a reusable output tensor.
///
/// This is the whole dispatch loop: per step, resolve the operand values
/// (the borrowed graph input or arena slots), detach the liveness-assigned
/// output slot, and hand the step to [`Backend::execute_step`] with the
/// backend's own scratch. Every intermediate value lives in `arena` at
/// the slot the liveness pass assigned; on a warmed arena (same shapes as
/// the last call) the loop itself performs zero heap allocation — whether
/// the whole forward does depends on the backend (the CPU backend's does,
/// the reference backend allocates per step by design).
pub(crate) fn run_plan(
    nodes: &[GraphNode],
    plan: &CompiledPlan,
    backend: &dyn Backend,
    input: &Tensor,
    arena: &mut Vec<Tensor>,
    scratch: &mut (dyn std::any::Any + Send),
    out: &mut Tensor,
) -> Result<()> {
    if arena.len() < plan.slots {
        arena.resize_with(plan.slots, Tensor::default);
    }
    for (si, step) in plan.steps.iter().enumerate() {
        let (first, second) = step.read_pair();
        let Some(first) = first else {
            continue; // the input's value is the caller's borrowed tensor
        };
        let out_node = step.output();
        // Detach the output slot so the arena stays immutably readable;
        // the slot allocator guarantees it aliases none of the inputs.
        let mut dst = std::mem::take(&mut arena[plan.slot[out_node]]);
        // Read a node's value: the borrowed graph input or its arena
        // slot. The liveness pass guarantees a live value's slot is not
        // recycled, so reading through `plan.slot` always yields the
        // value produced for it.
        let resolve = |v: usize| -> &Tensor {
            if v == plan.input_node {
                input
            } else {
                &arena[plan.slot[v]]
            }
        };
        let result = backend.execute_step(
            StepCtx {
                nodes,
                step,
                a: resolve(first),
                b: second.map(resolve),
                binary_edge: plan.binary_edge[si],
            },
            scratch,
            &mut dst,
        );
        arena[plan.slot[out_node]] = dst;
        result?;
    }
    if plan.output == plan.input_node {
        out.clone_from(input);
    } else {
        // Hand the output slot's buffer to the caller and keep the
        // caller's old buffer as the slot's next scratch (capacity
        // ping-pongs once, then stabilizes — no steady-state allocation).
        std::mem::swap(out, &mut arena[plan.slot[plan.output]]);
    }
    Ok(())
}
