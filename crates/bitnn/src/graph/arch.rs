//! Built-in architecture families and generic weight attachment.
//!
//! Three BNN topologies ship as data, all flowing through the same graph
//! IR, executor, compression pipeline, and simulator:
//!
//! * **`reactnet`** — the paper's 13-block MobileNet-backbone ReActNet
//!   (built by [`crate::model::ReActNet`], which carries the calibrated
//!   paper weights and the frozen scalar oracle);
//! * **`vggsmall`** — a VGG-Small-style plain stack: five binary 3×3
//!   convolutions with batch-norm + RPReLU between average-pool
//!   downsamples, no shortcuts;
//! * **`resnetlite`** — a ResNet-style stack of residual binary 3×3
//!   blocks exercising all three shortcut forms (identity, stride-2
//!   average pool, channel duplication).
//!
//! Every family takes a channel `scale` (the `bnnkc --scale` flag): each
//! base channel count is multiplied and clamped to at least 8, exactly as
//! [`ReActNetConfig::scaled`] does.

use super::spec::{ConvGeometry, GraphSpec, NodeSpec, OpSpec};
use super::{GraphNode, ModelGraph, NodeOp};
use crate::error::{BitnnError, Result};
use crate::layers::{BinConv2d, QuantConv2d, QuantLinear, RPReLU, RSign};
use crate::model::reactnet::{small_params, varied_bn};
use crate::model::{ReActNet, ReActNetConfig};
use crate::ops::conv::Conv2dParams;
use crate::tensor::{BitTensor, Tensor};
use crate::weightgen::{random_floats, random_kernel, SeqDistribution};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// A built-in architecture family.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Arch {
    /// The paper's ReActNet (13 basic blocks, two-stage shortcuts).
    ReActNet,
    /// VGG-Small-style plain stack (no shortcuts).
    VggSmall,
    /// ResNet-style residual stack of binary 3×3 blocks.
    ResNetLite,
}

impl Arch {
    /// Every built-in family, in CLI listing order.
    pub const ALL: [Arch; 3] = [Arch::ReActNet, Arch::VggSmall, Arch::ResNetLite];

    /// The lowercase tag used by the CLI and stored in v2 containers.
    pub fn name(self) -> &'static str {
        match self {
            Arch::ReActNet => "reactnet",
            Arch::VggSmall => "vggsmall",
            Arch::ResNetLite => "resnetlite",
        }
    }
}

impl std::fmt::Display for Arch {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

impl std::str::FromStr for Arch {
    type Err = String;

    fn from_str(s: &str) -> std::result::Result<Self, String> {
        Arch::ALL
            .into_iter()
            .find(|a| a.name() == s)
            .ok_or_else(|| {
                format!(
                    "unknown architecture `{s}` (known: {})",
                    Arch::ALL.map(Arch::name).join(", ")
                )
            })
    }
}

/// Scale a base channel count: multiply, round, clamp to at least 8 —
/// the same formula as [`ReActNetConfig::scaled`].
fn ch(base: usize, scale: f64) -> usize {
    ((base as f64 * scale).round() as usize).max(8)
}

fn check_scale(scale: f64) -> Result<()> {
    if !scale.is_finite() || scale <= 0.0 {
        return Err(BitnnError::InvalidConfig("scale must be positive".into()));
    }
    Ok(())
}

/// The weight-free spec of a built-in family at a channel scale and
/// input size. This is what `bnnkc compress --arch` samples kernels for
/// and serializes into the v2 container.
///
/// # Errors
///
/// Returns [`BitnnError::InvalidConfig`] for a non-positive scale, a
/// zero image, or a scale that breaks the family's invariants.
pub fn build_spec(arch: Arch, scale: f64, image: usize) -> Result<GraphSpec> {
    check_scale(scale)?;
    if image == 0 {
        return Err(BitnnError::InvalidConfig("image size must be >= 1".into()));
    }
    let spec = match arch {
        Arch::ReActNet => {
            let mut cfg = ReActNetConfig::scaled(scale).map_err(BitnnError::InvalidConfig)?;
            cfg.image_size = image;
            reactnet_spec(&cfg)?
        }
        Arch::VggSmall => vggsmall_spec(scale, image),
        Arch::ResNetLite => resnetlite_spec(scale, image),
    };
    spec.validate()?;
    Ok(spec)
}

/// Build a weighted, executable model of a built-in family with
/// deterministic synthetic weights. For `reactnet` this is
/// [`ReActNet::new`] converted to its graph (the calibrated paper
/// weights); the other families go through [`attach_weights`].
///
/// # Errors
///
/// Returns [`BitnnError::InvalidConfig`] under the same conditions as
/// [`build_spec`].
pub fn build_model(arch: Arch, scale: f64, image: usize, seed: u64) -> Result<ModelGraph> {
    match arch {
        Arch::ReActNet => {
            check_scale(scale)?;
            if image == 0 {
                return Err(BitnnError::InvalidConfig("image size must be >= 1".into()));
            }
            let mut cfg = ReActNetConfig::scaled(scale).map_err(BitnnError::InvalidConfig)?;
            cfg.image_size = image;
            Ok(ReActNet::new(cfg, seed)?.into_graph())
        }
        Arch::VggSmall | Arch::ResNetLite => attach_weights(&build_spec(arch, scale, image)?, seed),
    }
}

/// Attach deterministic synthetic weights to a weight-free spec,
/// producing an executable [`ModelGraph`]. Binary 3×3 kernels are sampled
/// from the calibrated per-block bit-sequence distributions (paper
/// Table II, cycled every 13 convolutions); 1×1 kernels are uniform; the
/// 8-bit stem/classifier get uniform float weights; batch-norms carry the
/// same mild fan-in-scaled variation as the ReActNet generator.
///
/// # Errors
///
/// Returns [`BitnnError::InvalidConfig`] if the spec does not validate.
pub fn attach_weights(spec: &GraphSpec, seed: u64) -> Result<ModelGraph> {
    use super::spec::ShapeInfo;
    let shapes = spec.shapes()?;
    let mut nodes = Vec::with_capacity(spec.nodes.len());
    let mut conv3_seen = 0usize;
    for (i, node) in spec.nodes.iter().enumerate() {
        let salt = seed ^ ((i as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15));
        let in_dims = node.inputs.first().map(|&s| shapes[s]);
        let in_ch = match in_dims {
            Some(ShapeInfo::Map { ch, .. }) => ch,
            Some(ShapeInfo::Flat { features }) => features,
            None => 0,
        };
        let op = match node.op {
            OpSpec::Input { channels, image } => NodeOp::Input { channels, image },
            OpSpec::StemConv { out_ch, stride } => {
                let w = Tensor::from_vec(
                    &[out_ch, in_ch, 3, 3],
                    random_floats(out_ch * in_ch * 9, 1.0, salt),
                )
                .expect("consistent stem shape");
                NodeOp::StemConv(QuantConv2d::from_float(&w, Conv2dParams { stride, pad: 1 }))
            }
            OpSpec::Sign => NodeOp::Sign(RSign::new(small_params(in_ch, salt, 0.05))),
            OpSpec::BinConv {
                out_ch,
                kh,
                kw,
                stride,
                pad,
            } => {
                let kernel = if (kh, kw) == (3, 3) {
                    let block = conv3_seen % 13 + 1;
                    conv3_seen += 1;
                    let mut rng = StdRng::seed_from_u64(salt);
                    SeqDistribution::for_block(block, 0).sample_kernel(out_ch, in_ch, &mut rng)
                } else {
                    random_kernel(&[out_ch, in_ch, kh, kw], salt)
                };
                NodeOp::BinConv(BinConv2d::new(kernel, Conv2dParams { stride, pad }))
            }
            OpSpec::BatchNorm => NodeOp::BatchNorm(varied_bn(in_ch, salt)),
            OpSpec::Act => NodeOp::Act(RPReLU::new(
                small_params(in_ch, salt ^ 1, 0.05),
                vec![0.25; in_ch],
                small_params(in_ch, salt ^ 2, 0.05),
            )),
            OpSpec::AvgPool2x2 => NodeOp::AvgPool2x2,
            OpSpec::ChannelDup => NodeOp::ChannelDup,
            OpSpec::Add => NodeOp::Add,
            OpSpec::GlobalAvgPool => NodeOp::GlobalAvgPool,
            OpSpec::Classifier { classes } => NodeOp::Classifier(QuantLinear::from_float(
                &random_floats(classes * in_ch, 0.5, salt),
                classes,
                in_ch,
            )),
        };
        nodes.push(GraphNode {
            name: format!("n{i}.{}", node.op.tag()),
            op,
            inputs: node.inputs.clone(),
        });
    }
    ModelGraph::new(spec.arch.clone(), nodes)
}

/// Sample the calibrated kernel of every compressible 3×3 convolution of
/// a spec — the kernels `bnnkc compress` encodes and `bnnkc verify`
/// regenerates. Seeding is stable per conv index (and matches the
/// pre-graph CLI exactly for the 13-block ReActNet schedule, so v1
/// containers keep verifying).
///
/// # Errors
///
/// Returns [`BitnnError::InvalidConfig`] if the spec does not validate.
pub fn sample_conv3_kernels(spec: &GraphSpec, seed: u64) -> Result<Vec<BitTensor>> {
    spec.validate()?;
    Ok(spec
        .conv3_geometries()
        .iter()
        .enumerate()
        .map(|(i, g)| {
            let block = i % 13 + 1;
            let mut rng = StdRng::seed_from_u64(seed ^ (i as u64 + 1));
            SeqDistribution::for_block(block, 0).sample_kernel(g.filters, g.channels, &mut rng)
        })
        .collect())
}

/// Append a spec node, returning its id.
fn push_spec(nodes: &mut Vec<NodeSpec>, op: OpSpec, inputs: &[usize]) -> usize {
    nodes.push(NodeSpec {
        op,
        inputs: inputs.to_vec(),
    });
    nodes.len() - 1
}

/// The ReActNet graph topology for a configuration. Mirrors
/// [`ReActNet::into_graph`] node for node (a unit test pins the two
/// together), so a spec can be built — and a container validated —
/// without constructing any weights.
///
/// # Errors
///
/// Returns [`BitnnError::InvalidConfig`] if the configuration fails
/// [`ReActNetConfig::validate`].
pub fn reactnet_spec(cfg: &ReActNetConfig) -> Result<GraphSpec> {
    cfg.validate()
        .map_err(|e| BitnnError::InvalidConfig(format!("invalid ReActNet config: {e}")))?;
    let mut nodes = vec![NodeSpec {
        op: OpSpec::Input {
            channels: cfg.input_channels,
            image: cfg.image_size,
        },
        inputs: vec![],
    }];
    let mut x = push_spec(
        &mut nodes,
        OpSpec::StemConv {
            out_ch: cfg.stem_channels,
            stride: 2,
        },
        &[0],
    );
    for spec in &cfg.blocks {
        // 3x3 stage.
        let sign = push_spec(&mut nodes, OpSpec::Sign, &[x]);
        let conv = push_spec(
            &mut nodes,
            OpSpec::BinConv {
                out_ch: spec.in_ch,
                kh: 3,
                kw: 3,
                stride: spec.stride,
                pad: 1,
            },
            &[sign],
        );
        let bn = push_spec(&mut nodes, OpSpec::BatchNorm, &[conv]);
        let sc = if spec.stride == 2 {
            push_spec(&mut nodes, OpSpec::AvgPool2x2, &[x])
        } else {
            x
        };
        let addn = push_spec(&mut nodes, OpSpec::Add, &[bn, sc]);
        let mid = push_spec(&mut nodes, OpSpec::Act, &[addn]);
        // 1x1 stage.
        let sign = push_spec(&mut nodes, OpSpec::Sign, &[mid]);
        let conv = push_spec(
            &mut nodes,
            OpSpec::BinConv {
                out_ch: spec.out_ch,
                kh: 1,
                kw: 1,
                stride: 1,
                pad: 0,
            },
            &[sign],
        );
        let bn = push_spec(&mut nodes, OpSpec::BatchNorm, &[conv]);
        let sc = if spec.out_ch == 2 * spec.in_ch {
            push_spec(&mut nodes, OpSpec::ChannelDup, &[mid])
        } else {
            mid
        };
        let addn = push_spec(&mut nodes, OpSpec::Add, &[bn, sc]);
        x = push_spec(&mut nodes, OpSpec::Act, &[addn]);
    }
    let gap = push_spec(&mut nodes, OpSpec::GlobalAvgPool, &[x]);
    push_spec(
        &mut nodes,
        OpSpec::Classifier {
            classes: cfg.num_classes,
        },
        &[gap],
    );
    Ok(GraphSpec {
        arch: Arch::ReActNet.name().into(),
        nodes,
    })
}

/// VGG-Small-style plain stack: base channels 128/256/512, five binary
/// 3×3 convolutions, average-pool downsamples, 10 classes.
fn vggsmall_spec(scale: f64, image: usize) -> GraphSpec {
    let (c1, c2, c3) = (ch(128, scale), ch(256, scale), ch(512, scale));
    let mut nodes = vec![NodeSpec {
        op: OpSpec::Input { channels: 3, image },
        inputs: vec![],
    }];
    let mut x = push_spec(
        &mut nodes,
        OpSpec::StemConv {
            out_ch: c1,
            stride: 2,
        },
        &[0],
    );
    let conv_bn_act = |nodes: &mut Vec<NodeSpec>, x: usize, out_ch: usize| -> usize {
        let sign = push_spec(nodes, OpSpec::Sign, &[x]);
        let conv = push_spec(
            nodes,
            OpSpec::BinConv {
                out_ch,
                kh: 3,
                kw: 3,
                stride: 1,
                pad: 1,
            },
            &[sign],
        );
        let bn = push_spec(nodes, OpSpec::BatchNorm, &[conv]);
        push_spec(nodes, OpSpec::Act, &[bn])
    };
    x = conv_bn_act(&mut nodes, x, c1);
    x = conv_bn_act(&mut nodes, x, c2);
    x = push_spec(&mut nodes, OpSpec::AvgPool2x2, &[x]);
    x = conv_bn_act(&mut nodes, x, c2);
    x = conv_bn_act(&mut nodes, x, c3);
    x = push_spec(&mut nodes, OpSpec::AvgPool2x2, &[x]);
    x = conv_bn_act(&mut nodes, x, c3);
    let gap = push_spec(&mut nodes, OpSpec::GlobalAvgPool, &[x]);
    push_spec(&mut nodes, OpSpec::Classifier { classes: 10 }, &[gap]);
    GraphSpec {
        arch: Arch::VggSmall.name().into(),
        nodes,
    }
}

/// ResNet-style residual stack: base channels 64/128/256, eight binary
/// 3×3 blocks covering the identity, stride-2 pool, and channel-dup
/// shortcuts, 10 classes.
fn resnetlite_spec(scale: f64, image: usize) -> GraphSpec {
    // Widening is by exact channel duplication, so the deeper stages are
    // pinned to 2x and 4x the (clamped) base rather than independently
    // clamped base-128/base-256 counts.
    let c1 = ch(64, scale);
    let mut nodes = vec![NodeSpec {
        op: OpSpec::Input { channels: 3, image },
        inputs: vec![],
    }];
    let mut x = push_spec(
        &mut nodes,
        OpSpec::StemConv {
            out_ch: c1,
            stride: 2,
        },
        &[0],
    );
    // One residual block: sign → conv3x3 → bn → (+shortcut) → act.
    // `widen` doubles channels via the duplication shortcut (stride 1);
    // `stride` 2 pools the identity.
    let block =
        |nodes: &mut Vec<NodeSpec>, x: usize, in_ch: usize, stride: usize, widen: bool| -> usize {
            let out_ch = if widen { 2 * in_ch } else { in_ch };
            let sign = push_spec(nodes, OpSpec::Sign, &[x]);
            let conv = push_spec(
                nodes,
                OpSpec::BinConv {
                    out_ch,
                    kh: 3,
                    kw: 3,
                    stride,
                    pad: 1,
                },
                &[sign],
            );
            let bn = push_spec(nodes, OpSpec::BatchNorm, &[conv]);
            let sc = if widen {
                push_spec(nodes, OpSpec::ChannelDup, &[x])
            } else if stride == 2 {
                push_spec(nodes, OpSpec::AvgPool2x2, &[x])
            } else {
                x
            };
            let addn = push_spec(nodes, OpSpec::Add, &[bn, sc]);
            push_spec(nodes, OpSpec::Act, &[addn])
        };
    x = block(&mut nodes, x, c1, 1, false);
    x = block(&mut nodes, x, c1, 1, false);
    x = block(&mut nodes, x, c1, 1, true); // c1 -> 2*c1
    let mid = 2 * c1;
    x = block(&mut nodes, x, mid, 2, false);
    x = block(&mut nodes, x, mid, 1, false);
    x = block(&mut nodes, x, mid, 1, true); // 2*c1 -> 4*c1
    let wide = 2 * mid;
    x = block(&mut nodes, x, wide, 2, false);
    x = block(&mut nodes, x, wide, 1, false);
    let gap = push_spec(&mut nodes, OpSpec::GlobalAvgPool, &[x]);
    push_spec(&mut nodes, OpSpec::Classifier { classes: 10 }, &[gap]);
    GraphSpec {
        arch: Arch::ResNetLite.name().into(),
        nodes,
    }
}

/// Auto-upgrade path for v1 model containers (which carry no topology):
/// reconstruct the scaled ReActNet schedule from the per-kernel
/// `(filters, channels)` dimensions exactly as the pre-graph CLI did —
/// strides follow the full 13-block schedule, each block's output
/// channels are the next kernel's input channels.
///
/// # Errors
///
/// Returns [`BitnnError::InvalidConfig`] when the kernel list cannot be
/// a ReActNet schedule (wrong count, non-square kernels, broken channel
/// chain).
pub fn reactnet_config_from_kernels(
    dims: &[(usize, usize)],
    image: usize,
) -> Result<ReActNetConfig> {
    let full = ReActNetConfig::full();
    if dims.len() != full.blocks.len() {
        return Err(BitnnError::InvalidConfig(format!(
            "container holds {} kernels; the ReActNet schedule needs {}",
            dims.len(),
            full.blocks.len()
        )));
    }
    let mut cfg = full;
    cfg.image_size = image;
    for (i, &(filters, channels)) in dims.iter().enumerate() {
        if filters != channels {
            return Err(BitnnError::InvalidConfig(format!(
                "kernel {}: {filters}x{channels} is not square; 3x3 block kernels are CxC",
                i + 1
            )));
        }
        cfg.blocks[i].in_ch = filters;
        cfg.blocks[i].out_ch = if i + 1 < dims.len() {
            dims[i + 1].0
        } else {
            filters
        };
    }
    cfg.stem_channels = dims[0].0;
    cfg.validate().map_err(|e| {
        BitnnError::InvalidConfig(format!(
            "container geometry is not a ReActNet schedule: {e}"
        ))
    })?;
    Ok(cfg)
}

/// Convenience: the compressible conv geometries of a built-in family.
///
/// # Errors
///
/// Same conditions as [`build_spec`].
pub fn conv3_geometries(arch: Arch, scale: f64, image: usize) -> Result<Vec<ConvGeometry>> {
    Ok(build_spec(arch, scale, image)?.conv3_geometries())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::Engine;
    use crate::engine::Scratch;

    #[test]
    fn arch_parses_and_prints() {
        for a in Arch::ALL {
            assert_eq!(a.name().parse::<Arch>().unwrap(), a);
        }
        assert!("mobilenet".parse::<Arch>().is_err());
    }

    #[test]
    fn built_in_specs_validate_and_have_conv3s() {
        for a in Arch::ALL {
            let spec = build_spec(a, 0.0625, 32).unwrap();
            spec.validate().unwrap();
            let convs = spec.conv3_geometries();
            assert!(!convs.is_empty(), "{a} has no compressible convs");
            match a {
                Arch::ReActNet => assert_eq!(convs.len(), 13),
                Arch::VggSmall => assert_eq!(convs.len(), 5),
                Arch::ResNetLite => assert_eq!(convs.len(), 8),
            }
        }
    }

    #[test]
    fn reactnet_spec_matches_the_model_graph() {
        let cfg = ReActNetConfig::tiny();
        let spec = reactnet_spec(&cfg).unwrap();
        let model = ReActNet::new(cfg, 3).unwrap();
        assert_eq!(model.graph().spec(), &spec);
    }

    #[test]
    fn non_reactnet_models_execute_bit_exactly() {
        for a in [Arch::VggSmall, Arch::ResNetLite] {
            let m = build_model(a, 0.0625, 16, 5).unwrap();
            let x =
                Tensor::from_vec(&[2, 3, 16, 16], random_floats(2 * 3 * 16 * 16, 1.0, 9)).unwrap();
            let scalar = m.forward_scalar(&x).unwrap();
            let engine = Engine::with_threads(2);
            let fast = m
                .forward_with(&x, &engine, &mut Scratch::default())
                .unwrap();
            assert_eq!(scalar.data(), fast.data(), "{a}");
            assert_eq!(scalar.shape(), &[2, 10]);
        }
    }

    #[test]
    fn sample_kernels_match_legacy_reactnet_seeding() {
        // The pre-graph CLI sampled block kernels with
        // `StdRng::seed_from_u64(seed ^ block)` and
        // `SeqDistribution::for_block(block, 0)`; v1 containers depend on
        // this staying stable.
        let spec = build_spec(Arch::ReActNet, 0.125, 224).unwrap();
        let kernels = sample_conv3_kernels(&spec, 7).unwrap();
        assert_eq!(kernels.len(), 13);
        let cfg = ReActNetConfig::scaled(0.125).unwrap();
        for (i, spec_block) in cfg.blocks.iter().enumerate() {
            let block = i + 1;
            let mut rng = StdRng::seed_from_u64(7 ^ block as u64);
            let legacy = SeqDistribution::for_block(block, 0).sample_kernel(
                spec_block.in_ch,
                spec_block.in_ch,
                &mut rng,
            );
            assert_eq!(kernels[i], legacy, "block {block}");
        }
    }

    #[test]
    fn v1_fallback_reconstructs_scaled_schedules() {
        let cfg = ReActNetConfig::scaled(0.125).unwrap();
        let dims: Vec<(usize, usize)> = cfg.blocks.iter().map(|b| (b.in_ch, b.in_ch)).collect();
        let rebuilt = reactnet_config_from_kernels(&dims, 32).unwrap();
        assert_eq!(rebuilt.blocks, cfg.blocks);
        assert_eq!(rebuilt.stem_channels, cfg.stem_channels);
        assert!(reactnet_config_from_kernels(&dims[..5], 32).is_err());
        let mut bad = dims.clone();
        bad[0] = (8, 16);
        assert!(reactnet_config_from_kernels(&bad, 32).is_err());
    }

    #[test]
    fn scale_and_image_are_validated() {
        assert!(build_spec(Arch::VggSmall, 0.0, 32).is_err());
        assert!(build_spec(Arch::VggSmall, f64::NAN, 32).is_err());
        assert!(build_spec(Arch::VggSmall, 0.25, 0).is_err());
        assert!(build_model(Arch::ReActNet, -1.0, 32, 0).is_err());
    }
}
