//! The weight-free layer-graph IR: topology, shape inference, validation.
//!
//! A [`GraphSpec`] is the pure geometry of a model — typed operator nodes
//! with explicit edges and no weights. It is what the v2 model container
//! serializes next to the compressed kernel streams, what the timing
//! simulator derives its [`LayerWorkload`]s from, and what the CLI checks
//! a container against before deploying kernels into a weighted
//! [`crate::graph::ModelGraph`].

use crate::error::{BitnnError, Result};
use crate::model::storage::OpCategory;
use crate::model::workload::LayerWorkload;
use crate::ops::conv::Conv2dParams;

/// One typed operator in the IR. Parameters describe geometry only; the
/// weighted twin of each op lives in [`crate::graph::NodeOp`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OpSpec {
    /// The network input: `[N, channels, image, image]`.
    Input {
        /// Input channels (3 for RGB).
        channels: usize,
        /// Nominal square input side length. Advisory: the executor
        /// accepts any spatial size; shapes here feed validation and the
        /// simulator's workloads.
        image: usize,
    },
    /// The 8-bit quantized stem convolution (3×3, pad 1).
    StemConv {
        /// Output channels.
        out_ch: usize,
        /// Stride (1 or 2).
        stride: usize,
    },
    /// Shifted sign binarization. Its output may only feed [`OpSpec::BinConv`].
    Sign,
    /// A 1-bit convolution over a preceding sign's bits.
    BinConv {
        /// Output channels (filters).
        out_ch: usize,
        /// Kernel height.
        kh: usize,
        /// Kernel width.
        kw: usize,
        /// Stride.
        stride: usize,
        /// Zero padding.
        pad: usize,
    },
    /// Per-channel batch normalization.
    BatchNorm,
    /// RPReLU activation.
    Act,
    /// 2×2 average pool, stride 2 (spatial downsample / shortcut pool).
    AvgPool2x2,
    /// Channel duplication `C → 2C` (the widening shortcut).
    ChannelDup,
    /// Element-wise sum of two same-shape inputs.
    Add,
    /// Global average pool `[N, C, H, W] → [N, C]`.
    GlobalAvgPool,
    /// The 8-bit quantized fully-connected classifier.
    Classifier {
        /// Output class count.
        classes: usize,
    },
}

impl OpSpec {
    /// Required input edge count.
    pub fn arity(&self) -> usize {
        match self {
            OpSpec::Input { .. } => 0,
            OpSpec::Add => 2,
            _ => 1,
        }
    }

    /// Short lowercase tag used in error messages and serialization docs.
    pub fn tag(&self) -> &'static str {
        match self {
            OpSpec::Input { .. } => "input",
            OpSpec::StemConv { .. } => "stem_conv",
            OpSpec::Sign => "sign",
            OpSpec::BinConv { .. } => "bin_conv",
            OpSpec::BatchNorm => "batch_norm",
            OpSpec::Act => "act",
            OpSpec::AvgPool2x2 => "avg_pool_2x2",
            OpSpec::ChannelDup => "channel_dup",
            OpSpec::Add => "add",
            OpSpec::GlobalAvgPool => "global_avg_pool",
            OpSpec::Classifier { .. } => "classifier",
        }
    }
}

/// One node of the IR: an op plus its input edges (indices of earlier
/// nodes — the node list is in topological order by construction).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NodeSpec {
    /// The operator.
    pub op: OpSpec,
    /// Producer nodes, each strictly smaller than this node's index.
    pub inputs: Vec<usize>,
}

/// Inferred value shape of one node (batch dimension elided).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShapeInfo {
    /// A `[N, ch, h, w]` feature map.
    Map {
        /// Channels.
        ch: usize,
        /// Height.
        h: usize,
        /// Width.
        w: usize,
    },
    /// A `[N, features]` flat vector (after global pooling).
    Flat {
        /// Feature count.
        features: usize,
    },
}

/// Geometry of one compressible binary 3×3 convolution in a spec.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ConvGeometry {
    /// Node index in the spec.
    pub node: usize,
    /// Output filters.
    pub filters: usize,
    /// Input channels.
    pub channels: usize,
}

/// A validated-on-demand, weight-free model graph.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GraphSpec {
    /// Architecture tag (`"reactnet"`, `"vggsmall"`, `"resnetlite"`, or a
    /// free-form name for custom graphs).
    pub arch: String,
    /// Nodes in topological order; node 0 is the input.
    pub nodes: Vec<NodeSpec>,
}

impl GraphSpec {
    /// Validate topology and infer every node's shape.
    ///
    /// Checks, in order: non-empty; node 0 is the single [`OpSpec::Input`];
    /// edges point strictly backwards; arity per op; every [`OpSpec::Sign`]
    /// output feeds only binary convolutions and every binary convolution
    /// reads a sign; shape rules per op (matching `Add` operands, channel
    /// continuity, spatial feasibility); every non-terminal node is
    /// consumed.
    ///
    /// # Errors
    ///
    /// Returns [`BitnnError::InvalidConfig`] describing the first
    /// violation found.
    pub fn shapes(&self) -> Result<Vec<ShapeInfo>> {
        let bad = |msg: String| Err(BitnnError::InvalidConfig(msg));
        if self.nodes.is_empty() {
            return bad("graph has no nodes".into());
        }
        let mut shapes: Vec<ShapeInfo> = Vec::with_capacity(self.nodes.len());
        let mut consumed = vec![false; self.nodes.len()];
        for (i, node) in self.nodes.iter().enumerate() {
            if node.inputs.len() != node.op.arity() {
                return bad(format!(
                    "node {i} ({}): expects {} inputs, has {}",
                    node.op.tag(),
                    node.op.arity(),
                    node.inputs.len()
                ));
            }
            for &src in &node.inputs {
                if src >= i {
                    return bad(format!(
                        "node {i} ({}): input {src} is not an earlier node",
                        node.op.tag()
                    ));
                }
                consumed[src] = true;
                // Sign bits are an internal representation: only a binary
                // conv knows how to consume them.
                if matches!(self.nodes[src].op, OpSpec::Sign)
                    && !matches!(node.op, OpSpec::BinConv { .. })
                {
                    return bad(format!(
                        "node {i} ({}): sign output {src} may only feed a binary conv",
                        node.op.tag()
                    ));
                }
            }
            if matches!(node.op, OpSpec::Input { .. }) != (i == 0) {
                return bad(format!(
                    "node {i}: exactly one input node is allowed and it must be node 0"
                ));
            }
            let map_input = |what: &str| -> Result<(usize, usize, usize)> {
                match shapes[node.inputs[0]] {
                    ShapeInfo::Map { ch, h, w } => Ok((ch, h, w)),
                    ShapeInfo::Flat { .. } => Err(BitnnError::InvalidConfig(format!(
                        "node {i} ({what}): needs a 4-D feature map input"
                    ))),
                }
            };
            let shape = match node.op {
                OpSpec::Input { channels, image } => {
                    if channels == 0 || image == 0 {
                        return bad(format!("node {i} (input): zero channels or image size"));
                    }
                    ShapeInfo::Map {
                        ch: channels,
                        h: image,
                        w: image,
                    }
                }
                OpSpec::StemConv { out_ch, stride } => {
                    let (_, h, w) = map_input("stem_conv")?;
                    if out_ch == 0 || !(1..=2).contains(&stride) {
                        return bad(format!("node {i} (stem_conv): bad out_ch or stride"));
                    }
                    let p = Conv2dParams { stride, pad: 1 };
                    ShapeInfo::Map {
                        ch: out_ch,
                        h: p.out_dim(h, 3),
                        w: p.out_dim(w, 3),
                    }
                }
                OpSpec::Sign => {
                    let (ch, h, w) = map_input("sign")?;
                    ShapeInfo::Map { ch, h, w }
                }
                OpSpec::BinConv {
                    out_ch,
                    kh,
                    kw,
                    stride,
                    pad,
                } => {
                    if !matches!(self.nodes[node.inputs[0]].op, OpSpec::Sign) {
                        return bad(format!(
                            "node {i} (bin_conv): input must be a sign node (got {})",
                            self.nodes[node.inputs[0]].op.tag()
                        ));
                    }
                    let (_, h, w) = map_input("bin_conv")?;
                    if out_ch == 0 || kh == 0 || kw == 0 || stride == 0 {
                        return bad(format!("node {i} (bin_conv): degenerate geometry"));
                    }
                    if h + 2 * pad < kh || w + 2 * pad < kw {
                        return bad(format!(
                            "node {i} (bin_conv): {kh}x{kw} kernel does not fit {h}x{w} input"
                        ));
                    }
                    let p = Conv2dParams { stride, pad };
                    ShapeInfo::Map {
                        ch: out_ch,
                        h: p.out_dim(h, kh),
                        w: p.out_dim(w, kw),
                    }
                }
                OpSpec::BatchNorm | OpSpec::Act => {
                    let (ch, h, w) = map_input(node.op.tag())?;
                    ShapeInfo::Map { ch, h, w }
                }
                OpSpec::AvgPool2x2 => {
                    let (ch, h, w) = map_input("avg_pool_2x2")?;
                    ShapeInfo::Map {
                        ch,
                        h: h.div_ceil(2),
                        w: w.div_ceil(2),
                    }
                }
                OpSpec::ChannelDup => {
                    let (ch, h, w) = map_input("channel_dup")?;
                    ShapeInfo::Map { ch: 2 * ch, h, w }
                }
                OpSpec::Add => {
                    let (a, b) = (shapes[node.inputs[0]], shapes[node.inputs[1]]);
                    if a != b {
                        return bad(format!("node {i} (add): operand shapes {a:?} vs {b:?}"));
                    }
                    if matches!(a, ShapeInfo::Flat { .. }) {
                        return bad(format!("node {i} (add): needs 4-D feature maps"));
                    }
                    a
                }
                OpSpec::GlobalAvgPool => {
                    let (ch, _, _) = map_input("global_avg_pool")?;
                    ShapeInfo::Flat { features: ch }
                }
                OpSpec::Classifier { classes } => {
                    if classes == 0 {
                        return bad(format!("node {i} (classifier): zero classes"));
                    }
                    match shapes[node.inputs[0]] {
                        ShapeInfo::Flat { .. } => {}
                        ShapeInfo::Map { .. } => {
                            return bad(format!("node {i} (classifier): needs a pooled 2-D input"))
                        }
                    }
                    ShapeInfo::Flat { features: classes }
                }
            };
            shapes.push(shape);
        }
        // A sign node whose bits nothing consumes, or any dangling
        // intermediate, is a wiring mistake — reject rather than silently
        // compute dead values.
        for (i, used) in consumed.iter().enumerate().take(self.nodes.len() - 1) {
            if !used {
                return bad(format!(
                    "node {i} ({}): unused (only the final node may be unconsumed)",
                    self.nodes[i].op.tag()
                ));
            }
        }
        Ok(shapes)
    }

    /// [`Self::shapes`] discarding the inferred shapes.
    ///
    /// # Errors
    ///
    /// Returns [`BitnnError::InvalidConfig`] on the first violation.
    pub fn validate(&self) -> Result<()> {
        self.shapes().map(|_| ())
    }

    /// The compressible binary 3×3 convolutions, in topological order —
    /// the nodes whose kernels the paper's scheme compresses and the v2
    /// container stores streams for.
    ///
    /// # Panics
    ///
    /// Panics if the spec does not validate (call [`Self::validate`] first
    /// on untrusted specs).
    pub fn conv3_geometries(&self) -> Vec<ConvGeometry> {
        let shapes = self.shapes().expect("spec must validate");
        self.nodes
            .iter()
            .enumerate()
            .filter_map(|(i, n)| match n.op {
                OpSpec::BinConv {
                    out_ch,
                    kh: 3,
                    kw: 3,
                    ..
                } => {
                    let ch = match shapes[n.inputs[0]] {
                        ShapeInfo::Map { ch, .. } => ch,
                        ShapeInfo::Flat { .. } => unreachable!("validated"),
                    };
                    Some(ConvGeometry {
                        node: i,
                        filters: out_ch,
                        channels: ch,
                    })
                }
                _ => None,
            })
            .collect()
    }

    /// Per-layer workload descriptors (geometry for the timing simulator),
    /// walking the same spatial arithmetic as the graph executor. One
    /// entry per stem / binary conv / classifier node; the simulator
    /// synthesizes the element-wise "Others" passes itself.
    ///
    /// # Panics
    ///
    /// Panics if the spec does not validate.
    pub fn workloads(&self) -> Vec<LayerWorkload> {
        let shapes = self.shapes().expect("spec must validate");
        let ch_of = |n: usize| match shapes[n] {
            ShapeInfo::Map { ch, .. } => ch,
            ShapeInfo::Flat { features } => features,
        };
        let mut out = Vec::new();
        for (i, node) in self.nodes.iter().enumerate() {
            match node.op {
                OpSpec::StemConv { out_ch, .. } => {
                    let (h, w) = match shapes[i] {
                        ShapeInfo::Map { h, w, .. } => (h, w),
                        ShapeInfo::Flat { .. } => unreachable!("validated"),
                    };
                    out.push(LayerWorkload {
                        name: "input.conv".into(),
                        category: OpCategory::InputLayer,
                        in_ch: ch_of(node.inputs[0]),
                        out_ch,
                        kh: 3,
                        kw: 3,
                        oh: h,
                        ow: w,
                        precision_bits: 8,
                    });
                }
                OpSpec::BinConv { out_ch, kh, kw, .. } => {
                    let (h, w) = match shapes[i] {
                        ShapeInfo::Map { h, w, .. } => (h, w),
                        ShapeInfo::Flat { .. } => unreachable!("validated"),
                    };
                    let conv1 = kh == 1 && kw == 1;
                    out.push(LayerWorkload {
                        name: format!("node{i}.conv{}", if conv1 { "1x1" } else { "3x3" }),
                        category: if conv1 {
                            OpCategory::Conv1x1
                        } else {
                            OpCategory::Conv3x3
                        },
                        in_ch: ch_of(node.inputs[0]),
                        out_ch,
                        kh,
                        kw,
                        oh: h,
                        ow: w,
                        precision_bits: 1,
                    });
                }
                OpSpec::Classifier { classes } => {
                    out.push(LayerWorkload {
                        name: "output.fc".into(),
                        category: OpCategory::OutputLayer,
                        in_ch: ch_of(node.inputs[0]),
                        out_ch: classes,
                        kh: 1,
                        kw: 1,
                        oh: 1,
                        ow: 1,
                        precision_bits: 8,
                    });
                }
                _ => {}
            }
        }
        out
    }

    /// Structural equality ignoring the advisory input image size — the
    /// check `bnnkc run --image N` uses to confirm a container's topology
    /// matches the model it is about to deploy into.
    ///
    /// # Errors
    ///
    /// Returns a description of the first divergence.
    pub fn same_topology_ignoring_image(
        &self,
        other: &GraphSpec,
    ) -> std::result::Result<(), String> {
        if self.nodes.len() != other.nodes.len() {
            return Err(format!(
                "{} nodes vs {} nodes",
                self.nodes.len(),
                other.nodes.len()
            ));
        }
        for (i, (a, b)) in self.nodes.iter().zip(&other.nodes).enumerate() {
            if a.inputs != b.inputs {
                return Err(format!("node {i}: edges {:?} vs {:?}", a.inputs, b.inputs));
            }
            let ops_match = match (a.op, b.op) {
                (OpSpec::Input { channels: ca, .. }, OpSpec::Input { channels: cb, .. }) => {
                    ca == cb
                }
                (x, y) => x == y,
            };
            if !ops_match {
                return Err(format!("node {i}: {:?} vs {:?}", a.op, b.op));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// input → stem → sign → conv3x3 → bn → act → gap → classifier.
    fn plain_spec() -> GraphSpec {
        GraphSpec {
            arch: "test".into(),
            nodes: vec![
                NodeSpec {
                    op: OpSpec::Input {
                        channels: 3,
                        image: 16,
                    },
                    inputs: vec![],
                },
                NodeSpec {
                    op: OpSpec::StemConv {
                        out_ch: 8,
                        stride: 2,
                    },
                    inputs: vec![0],
                },
                NodeSpec {
                    op: OpSpec::Sign,
                    inputs: vec![1],
                },
                NodeSpec {
                    op: OpSpec::BinConv {
                        out_ch: 8,
                        kh: 3,
                        kw: 3,
                        stride: 1,
                        pad: 1,
                    },
                    inputs: vec![2],
                },
                NodeSpec {
                    op: OpSpec::BatchNorm,
                    inputs: vec![3],
                },
                NodeSpec {
                    op: OpSpec::Act,
                    inputs: vec![4],
                },
                NodeSpec {
                    op: OpSpec::GlobalAvgPool,
                    inputs: vec![5],
                },
                NodeSpec {
                    op: OpSpec::Classifier { classes: 10 },
                    inputs: vec![6],
                },
            ],
        }
    }

    #[test]
    fn plain_spec_validates_and_infers_shapes() {
        let s = plain_spec();
        let shapes = s.shapes().unwrap();
        assert_eq!(shapes[1], ShapeInfo::Map { ch: 8, h: 8, w: 8 });
        assert_eq!(shapes[3], ShapeInfo::Map { ch: 8, h: 8, w: 8 });
        assert_eq!(*shapes.last().unwrap(), ShapeInfo::Flat { features: 10 });
    }

    #[test]
    fn conv3_geometries_and_workloads() {
        let s = plain_spec();
        let convs = s.conv3_geometries();
        assert_eq!(convs.len(), 1);
        assert_eq!((convs[0].filters, convs[0].channels), (8, 8));
        let wls = s.workloads();
        assert_eq!(wls.len(), 3);
        assert_eq!(wls[0].category, OpCategory::InputLayer);
        assert_eq!(wls[1].category, OpCategory::Conv3x3);
        assert_eq!(wls[2].category, OpCategory::OutputLayer);
    }

    #[test]
    fn sign_must_feed_a_conv() {
        let mut s = plain_spec();
        s.nodes[4].inputs = vec![2]; // batch-norm reading sign bits
        assert!(s.validate().is_err());
    }

    #[test]
    fn conv_must_read_a_sign() {
        let mut s = plain_spec();
        s.nodes[3].inputs = vec![1];
        // Node 2 (the sign) becomes dangling AND the conv reads a non-sign;
        // either way this must fail.
        assert!(s.validate().is_err());
    }

    #[test]
    fn add_shape_mismatch_rejected() {
        let mut s = plain_spec();
        // act(5) + stem(1) have different spatial sizes only if strides
        // differ; here they match (both 8x8 ch8), so build a genuine
        // mismatch via ChannelDup.
        s.nodes.insert(
            6,
            NodeSpec {
                op: OpSpec::ChannelDup,
                inputs: vec![1],
            },
        );
        s.nodes.insert(
            7,
            NodeSpec {
                op: OpSpec::Add,
                inputs: vec![5, 6],
            },
        );
        // Rewire pool onto the add.
        s.nodes[8].inputs = vec![7];
        assert!(s.validate().is_err());
    }

    #[test]
    fn dangling_node_rejected() {
        let mut s = plain_spec();
        s.nodes.insert(
            6,
            NodeSpec {
                op: OpSpec::AvgPool2x2,
                inputs: vec![5],
            },
        );
        // Old pool/classifier indices shift by one; keep their original
        // sources so node 6 dangles.
        s.nodes[7].inputs = vec![5];
        s.nodes[8].inputs = vec![7];
        assert!(s.validate().is_err());
    }

    #[test]
    fn topology_comparison_ignores_image() {
        let a = plain_spec();
        let mut b = plain_spec();
        b.nodes[0].op = OpSpec::Input {
            channels: 3,
            image: 64,
        };
        assert!(a.same_topology_ignoring_image(&b).is_ok());
        b.nodes[0].op = OpSpec::Input {
            channels: 1,
            image: 64,
        };
        assert!(a.same_topology_ignoring_image(&b).is_err());
        let mut c = plain_spec();
        c.nodes[3].op = OpSpec::BinConv {
            out_ch: 16,
            kh: 3,
            kw: 3,
            stride: 1,
            pad: 1,
        };
        assert!(a.same_topology_ignoring_image(&c).is_err());
    }
}
