//! Layer-graph model IR: typed operator nodes, explicit edges, shape
//! inference, and a fused graph executor.
//!
//! The paper's decode+packing unit and compression scheme are
//! architecture-agnostic — they operate on binary 3×3 kernels regardless
//! of which network produced them. This module makes the *execution* side
//! equally agnostic: a [`ModelGraph`] is a DAG of typed nodes (stem conv,
//! sign, binary conv, batch-norm, RPReLU, pools, shortcut add, channel
//! duplication, classifier) that the executor lowers onto the
//! [`crate::engine`] machinery, fusing every
//! `conv → bn → (+shortcut) → act` chain onto the same fused element-wise
//! kernels the ReActNet block path uses. New BNN topologies become data,
//! not code: see [`arch`] for the built-in families
//! (`reactnet`/`vggsmall`/`resnetlite`) and [`GraphBuilder`] for
//! assembling custom ones.
//!
//! The weight-free twin of a `ModelGraph` is its [`GraphSpec`]: pure
//! topology plus geometry, which the v2 model container serializes next
//! to the compressed kernel streams and the timing simulator turns into
//! [`crate::model::LayerWorkload`]s.
//!
//! ```
//! use bitnn::graph::arch::{build_model, Arch};
//! use bitnn::tensor::Tensor;
//!
//! let model = build_model(Arch::VggSmall, 0.0625, 16, 7).unwrap();
//! let input = Tensor::zeros(&[1, 3, 16, 16]);
//! let logits = model.forward(&input).unwrap();
//! assert_eq!(logits.shape(), &[1, 10]);
//! // The engine path is bit-exact with the scalar oracle.
//! assert_eq!(logits.data(), model.forward_scalar(&input).unwrap().data());
//! ```

pub mod arch;
mod exec;
pub mod spec;

pub use exec::{fused_steps, unfused_steps, CompiledPlan, Step};
pub use spec::{ConvGeometry, GraphSpec, NodeSpec, OpSpec, ShapeInfo};

use crate::backend::{Backend, CpuBackend};
use crate::engine::{Engine, Scratch};
use crate::error::{BitnnError, Result};
use crate::exec::ExecPolicy;
use crate::layers::{BatchNorm, BinConv2d, QuantConv2d, QuantLinear, RPReLU, RSign};
use crate::model::workload::LayerWorkload;
use crate::pack::PackedKernel;
use crate::tensor::{BitTensor, Tensor};

/// A weighted graph operator: the layer object behind one [`OpSpec`].
// `BinConv2d` carries three lazily-derived weight forms (flat / packed /
// bank), which dwarfs the other variants; graphs hold tens of nodes, so
// the per-node slack is irrelevant and boxing would only add indirection
// on the hot dispatch path.
#[allow(clippy::large_enum_variant)]
#[derive(Debug, Clone)]
pub enum NodeOp {
    /// The network input placeholder.
    Input {
        /// Input channels.
        channels: usize,
        /// Nominal square input side length (advisory; see
        /// [`OpSpec::Input`]).
        image: usize,
    },
    /// 8-bit quantized stem convolution (3×3, pad 1).
    StemConv(QuantConv2d),
    /// Shifted sign binarization; may only feed [`NodeOp::BinConv`].
    Sign(RSign),
    /// 1-bit convolution.
    BinConv(BinConv2d),
    /// Batch normalization.
    BatchNorm(BatchNorm),
    /// RPReLU activation.
    Act(RPReLU),
    /// 2×2 average pool, stride 2.
    AvgPool2x2,
    /// Channel duplication `C → 2C`.
    ChannelDup,
    /// Element-wise sum.
    Add,
    /// Global average pool.
    GlobalAvgPool,
    /// 8-bit quantized classifier.
    Classifier(QuantLinear),
}

impl NodeOp {
    /// The weight-free spec of this op.
    ///
    /// # Errors
    ///
    /// Returns [`BitnnError::InvalidConfig`] for a stem conv that is not
    /// 3×3 pad 1 (the only stem geometry the IR defines).
    pub fn spec(&self) -> Result<OpSpec> {
        Ok(match *self {
            NodeOp::Input { channels, image } => OpSpec::Input { channels, image },
            NodeOp::StemConv(ref q) => {
                if q.kernel_size() != (3, 3) || q.params().pad != 1 {
                    return Err(BitnnError::InvalidConfig(format!(
                        "stem conv must be 3x3 pad 1, got {:?} pad {}",
                        q.kernel_size(),
                        q.params().pad
                    )));
                }
                OpSpec::StemConv {
                    out_ch: q.filters(),
                    stride: q.params().stride,
                }
            }
            NodeOp::Sign(_) => OpSpec::Sign,
            NodeOp::BinConv(ref c) => {
                let (kh, kw) = c.kernel_size();
                OpSpec::BinConv {
                    out_ch: c.filters(),
                    kh,
                    kw,
                    stride: c.params().stride,
                    pad: c.params().pad,
                }
            }
            NodeOp::BatchNorm(_) => OpSpec::BatchNorm,
            NodeOp::Act(_) => OpSpec::Act,
            NodeOp::AvgPool2x2 => OpSpec::AvgPool2x2,
            NodeOp::ChannelDup => OpSpec::ChannelDup,
            NodeOp::Add => OpSpec::Add,
            NodeOp::GlobalAvgPool => OpSpec::GlobalAvgPool,
            NodeOp::Classifier(ref l) => OpSpec::Classifier {
                classes: l.out_features(),
            },
        })
    }

    /// Short lowercase tag (mirrors [`OpSpec::tag`]).
    pub fn tag(&self) -> &'static str {
        match self {
            NodeOp::Input { .. } => "input",
            NodeOp::StemConv(_) => "stem_conv",
            NodeOp::Sign(_) => "sign",
            NodeOp::BinConv(_) => "bin_conv",
            NodeOp::BatchNorm(_) => "batch_norm",
            NodeOp::Act(_) => "act",
            NodeOp::AvgPool2x2 => "avg_pool_2x2",
            NodeOp::ChannelDup => "channel_dup",
            NodeOp::Add => "add",
            NodeOp::GlobalAvgPool => "global_avg_pool",
            NodeOp::Classifier(_) => "classifier",
        }
    }

    /// Per-channel parameter count of the owned layer, if any — used by
    /// the weight cross-check in [`ModelGraph::new`].
    fn channel_count(&self) -> Option<usize> {
        match self {
            NodeOp::Sign(s) => Some(s.channels()),
            NodeOp::BatchNorm(b) => Some(b.channels()),
            NodeOp::Act(a) => Some(a.channels()),
            _ => None,
        }
    }
}

/// One node of a weighted model graph.
#[derive(Debug, Clone)]
pub struct GraphNode {
    /// Display name (e.g. `"block3.conv3x3"`).
    pub name: String,
    /// The weighted operator.
    pub op: NodeOp,
    /// Producer nodes (topologically earlier).
    pub inputs: Vec<usize>,
}

/// Incrementally assemble a [`ModelGraph`]. `push` returns the new node's
/// id for wiring later nodes; `finish` validates and compiles the
/// execution plan.
#[derive(Debug)]
pub struct GraphBuilder {
    arch: String,
    nodes: Vec<GraphNode>,
}

impl GraphBuilder {
    /// Start a graph for `arch` with its input node (`[N, channels,
    /// image, image]`); the input's id is 0.
    pub fn new(arch: impl Into<String>, channels: usize, image: usize) -> Self {
        GraphBuilder {
            arch: arch.into(),
            nodes: vec![GraphNode {
                name: "input".into(),
                op: NodeOp::Input { channels, image },
                inputs: Vec::new(),
            }],
        }
    }

    /// Append a node reading from `inputs`; returns its id.
    pub fn push(&mut self, name: impl Into<String>, op: NodeOp, inputs: &[usize]) -> usize {
        self.nodes.push(GraphNode {
            name: name.into(),
            op,
            inputs: inputs.to_vec(),
        });
        self.nodes.len() - 1
    }

    /// Validate and compile.
    ///
    /// # Errors
    ///
    /// Returns [`BitnnError::InvalidConfig`] for any topology, shape, or
    /// layer-geometry inconsistency (see [`GraphSpec::validate`]).
    pub fn finish(self) -> Result<ModelGraph> {
        ModelGraph::new(self.arch, self.nodes)
    }
}

/// Reusable state for [`ModelGraph::forward_batch_into`]: a pool of
/// per-worker [`Scratch`]es (each with its own activation arena). Chunks
/// of a batched forward check a scratch out, run their items, and return
/// it; once every worker has gone through one warm-up batch, steady-state
/// batched forwards stop allocating.
#[derive(Debug, Default)]
pub struct BatchScratch {
    idle: std::sync::Mutex<Vec<Scratch>>,
}

impl BatchScratch {
    /// Check out a scratch (a fresh one if the pool is dry).
    fn take(&self) -> Scratch {
        self.idle
            .lock()
            .expect("scratch pool mutex")
            .pop()
            .unwrap_or_default()
    }

    /// Return a scratch to the pool.
    fn put(&self, scratch: Scratch) {
        self.idle.lock().expect("scratch pool mutex").push(scratch);
    }
}

/// Reusable forward state for one [`crate::backend::Backend`]: the plan
/// that backend compiled, the activation arena the dispatch loop
/// recycles, and the backend's own opaque scratch. Built by
/// [`ModelGraph::state_for`], consumed by [`ModelGraph::forward_on`].
pub struct ForwardState {
    plan: exec::CompiledPlan,
    arena: Vec<Tensor>,
    scratch: Box<dyn std::any::Any + Send>,
}

impl ForwardState {
    /// The compiled plan this state runs.
    pub fn plan(&self) -> &CompiledPlan {
        &self.plan
    }
}

impl std::fmt::Debug for ForwardState {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ForwardState")
            .field("plan", &self.plan)
            .field("arena", &self.arena.len())
            .finish_non_exhaustive()
    }
}

/// A weighted, validated, executable model graph.
///
/// Construction validates the topology (via the derived [`GraphSpec`]),
/// cross-checks every layer's geometry against the inferred shapes, and
/// compiles the fused execution plan once (including the liveness pass
/// that assigns every intermediate activation an arena slot); forwards
/// then run against the plan. All forward paths are bit-exact with each
/// other.
#[derive(Debug, Clone)]
pub struct ModelGraph {
    nodes: Vec<GraphNode>,
    spec: GraphSpec,
    plan: exec::CompiledPlan,
    /// Compressible (3×3 binary conv) node ids, topological order.
    conv3: Vec<usize>,
    /// Estimated lane-word operations per input element (from the spec's
    /// workloads at its nominal image size) — the batch executor's
    /// workload model for picking batch-level vs intra-op parallelism.
    work_per_elem: u64,
}

impl ModelGraph {
    /// Build from a node list (see [`GraphBuilder`]).
    ///
    /// # Errors
    ///
    /// Returns [`BitnnError::InvalidConfig`] for any topology or shape
    /// violation, or when a layer's channel/feature counts disagree with
    /// the shapes inferred from the graph.
    pub fn new(arch: impl Into<String>, nodes: Vec<GraphNode>) -> Result<Self> {
        let spec = GraphSpec {
            arch: arch.into(),
            nodes: nodes
                .iter()
                .map(|n| {
                    Ok(NodeSpec {
                        op: n.op.spec()?,
                        inputs: n.inputs.clone(),
                    })
                })
                .collect::<Result<_>>()?,
        };
        let shapes = spec.shapes()?;
        // Cross-check owned layer geometry against the inferred shapes.
        for (i, node) in nodes.iter().enumerate() {
            let in_ch = node.inputs.first().map(|&src| match shapes[src] {
                ShapeInfo::Map { ch, .. } => ch,
                ShapeInfo::Flat { features } => features,
            });
            let mismatch = |what: &str, got: usize| {
                Err(BitnnError::InvalidConfig(format!(
                    "node {i} ({}): {what} is {got}, the graph feeds it {}",
                    node.name,
                    in_ch.unwrap_or(0)
                )))
            };
            match &node.op {
                NodeOp::StemConv(q) if Some(q.channels()) != in_ch => {
                    return mismatch("stem input channels", q.channels())
                }
                NodeOp::BinConv(c) if Some(c.in_channels()) != in_ch => {
                    return mismatch("conv input channels", c.in_channels())
                }
                NodeOp::Classifier(l) if Some(l.in_features()) != in_ch => {
                    return mismatch("classifier input features", l.in_features())
                }
                op => {
                    if let Some(ch) = op.channel_count() {
                        if Some(ch) != in_ch {
                            return mismatch("layer channel count", ch);
                        }
                    }
                }
            }
        }
        // The stored plan is the CPU backend's (fused) compilation — the
        // one the `forward*` family runs. Other backends compile their
        // own via [`ModelGraph::state_for`].
        let plan = exec::CompiledPlan::from_steps(nodes.len(), exec::fused_steps(&nodes));
        let conv3 = spec.conv3_geometries().iter().map(|g| g.node).collect();
        // Workload model: total multiply-accumulates at the nominal image
        // size, weighted by precision (1-bit ops pack 64 to a lane word),
        // normalized per input element. Convolution work scales linearly
        // with the input pixel count, so this transfers to other runtime
        // image sizes well enough for a split heuristic.
        let nominal_elems = match spec.nodes.first().map(|n| &n.op) {
            Some(&OpSpec::Input { channels, image }) => (channels * image * image).max(1),
            _ => 1,
        };
        let word_ops: u64 = spec
            .workloads()
            .iter()
            .map(|w| {
                let macs = (w.in_ch * w.out_ch * w.kh * w.kw * w.oh * w.ow) as u64;
                (macs * w.precision_bits as u64).div_ceil(64)
            })
            .sum();
        let work_per_elem = (word_ops / nominal_elems as u64).max(1);
        Ok(ModelGraph {
            nodes,
            spec,
            plan,
            conv3,
            work_per_elem,
        })
    }

    /// Architecture tag.
    pub fn arch(&self) -> &str {
        &self.spec.arch
    }

    /// The weight-free IR of this graph.
    pub fn spec(&self) -> &GraphSpec {
        &self.spec
    }

    /// The nodes, in topological order.
    pub fn nodes(&self) -> &[GraphNode] {
        &self.nodes
    }

    /// Number of compressible binary 3×3 convolutions.
    pub fn num_conv3(&self) -> usize {
        self.conv3.len()
    }

    /// Node id of compressible conv `i` (topological order).
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn conv3_node(&self, i: usize) -> usize {
        self.conv3[i]
    }

    /// The binary 3×3 kernel of compressible conv `i` (the object of
    /// compression).
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn conv3_weights(&self, i: usize) -> &BitTensor {
        match &self.nodes[self.conv3[i]].op {
            NodeOp::BinConv(c) => c.weights(),
            _ => unreachable!("conv3 ids index BinConv nodes"),
        }
    }

    fn conv3_mut(&mut self, i: usize) -> Result<&mut BinConv2d> {
        let node = *self.conv3.get(i).ok_or_else(|| {
            BitnnError::InvalidConfig(format!(
                "conv index {i} out of range ({} compressible convs)",
                self.conv3.len()
            ))
        })?;
        match &mut self.nodes[node].op {
            NodeOp::BinConv(c) => Ok(c),
            _ => unreachable!("conv3 ids index BinConv nodes"),
        }
    }

    /// Replace compressible conv `i`'s kernel from a flat tensor (the
    /// offline decompress path).
    ///
    /// # Errors
    ///
    /// Returns [`BitnnError::InvalidConfig`] if `i` is out of range or
    /// the shape changes.
    pub fn set_conv3_weights(&mut self, i: usize, weights: BitTensor) -> Result<()> {
        let conv = self.conv3_mut(i)?;
        let want = [
            conv.filters(),
            conv.in_channels(),
            conv.kernel_size().0,
            conv.kernel_size().1,
        ];
        if weights.shape() != want {
            return Err(BitnnError::InvalidConfig(format!(
                "conv {i}: replacement kernel is {:?}, the graph needs {want:?}",
                weights.shape()
            )));
        }
        conv.set_weights(weights);
        Ok(())
    }

    /// Replace compressible conv `i`'s kernel with already channel-packed
    /// lane words (the streaming decode path — no intermediate flat
    /// tensor).
    ///
    /// # Errors
    ///
    /// Returns [`BitnnError::InvalidConfig`] if `i` is out of range or
    /// the packed geometry changes.
    pub fn set_conv3_packed(&mut self, i: usize, packed: PackedKernel) -> Result<()> {
        let conv = self.conv3_mut(i)?;
        let want = (
            conv.filters(),
            conv.in_channels(),
            conv.kernel_size().0,
            conv.kernel_size().1,
        );
        let got = (
            packed.filters(),
            packed.channels(),
            packed.kh(),
            packed.kw(),
        );
        if got != want {
            return Err(BitnnError::InvalidConfig(format!(
                "conv {i}: replacement packed kernel is {got:?}, the graph needs {want:?}"
            )));
        }
        conv.set_packed(packed);
        Ok(())
    }

    /// Replace compressible conv `i`'s kernel with a deduplicated
    /// sequence bank (the skew-aware decode path — neither a flat tensor
    /// nor dense lane words are materialized unless a dense lowering
    /// later asks for them).
    ///
    /// # Errors
    ///
    /// Returns [`BitnnError::InvalidConfig`] if `i` is out of range or
    /// the bank geometry changes.
    pub fn set_conv3_bank(&mut self, i: usize, bank: crate::bank::SequenceBank) -> Result<()> {
        let conv = self.conv3_mut(i)?;
        let want = (
            conv.filters(),
            conv.in_channels(),
            conv.kernel_size().0,
            conv.kernel_size().1,
        );
        let got = (bank.filters(), bank.channels(), 3, 3);
        if got != want {
            return Err(BitnnError::InvalidConfig(format!(
                "conv {i}: replacement sequence bank is {got:?}, the graph needs {want:?}"
            )));
        }
        conv.set_bank(bank);
        Ok(())
    }

    /// Per-layer workload descriptors for the timing simulator.
    pub fn workloads(&self) -> Vec<LayerWorkload> {
        self.spec.workloads()
    }

    /// Forward pass on the calling thread through the engine's fast path.
    ///
    /// # Errors
    ///
    /// Returns [`BitnnError`] for unsupported runtime geometry.
    ///
    /// # Panics
    ///
    /// Panics if the input is not `[N, C, H, W]` with the graph's input
    /// channel count.
    pub fn forward(&self, input: &Tensor) -> Result<Tensor> {
        self.forward_with(input, &Engine::single_threaded(), &mut Scratch::default())
    }

    /// Forward pass under an explicit engine policy with caller-owned
    /// scratch buffers. Bit-exact with [`Self::forward_scalar`].
    ///
    /// # Errors
    ///
    /// Returns [`BitnnError`] for unsupported runtime geometry.
    ///
    /// # Panics
    ///
    /// Panics if the input is not `[N, C, H, W]` with the graph's input
    /// channel count.
    pub fn forward_with(
        &self,
        input: &Tensor,
        engine: &Engine,
        scratch: &mut Scratch,
    ) -> Result<Tensor> {
        let mut out = Tensor::default();
        self.forward_into(input, engine, scratch, &mut out)?;
        Ok(out)
    }

    /// [`Self::forward_with`] into a reusable output tensor: on a warmed
    /// scratch (same input shape as the previous call) the entire forward
    /// performs zero heap allocation — every intermediate activation lives
    /// in the scratch's arena at a slot assigned by the plan's liveness
    /// pass, and the logits land in `out`'s existing buffer.
    ///
    /// # Errors
    ///
    /// Returns [`BitnnError`] for unsupported runtime geometry.
    ///
    /// # Panics
    ///
    /// Panics if the input is not `[N, C, H, W]` with the graph's input
    /// channel count.
    pub fn forward_into(
        &self,
        input: &Tensor,
        engine: &Engine,
        scratch: &mut Scratch,
        out: &mut Tensor,
    ) -> Result<()> {
        self.check_input(input);
        let backend = CpuBackend::new(engine.clone());
        let Scratch { cpu, arena, .. } = scratch;
        exec::run_plan(&self.nodes, &self.plan, &backend, input, arena, cpu, out)
    }

    /// Compile this graph for an arbitrary [`Backend`] and allocate its
    /// forward state (plan, activation arena, backend scratch). Reuse the
    /// state across [`Self::forward_on`] calls to amortize buffers.
    pub fn state_for(&self, backend: &dyn Backend) -> ForwardState {
        ForwardState {
            plan: backend.compile(&self.nodes),
            arena: Vec::new(),
            scratch: backend.new_scratch(),
        }
    }

    /// Forward pass through an arbitrary backend with state from
    /// [`Self::state_for`]. Bit-exact with [`Self::forward_scalar`] for
    /// every registered backend.
    ///
    /// # Errors
    ///
    /// Returns [`BitnnError`] for unsupported runtime geometry.
    ///
    /// # Panics
    ///
    /// Panics if the input is not `[N, C, H, W]` with the graph's input
    /// channel count, or if `state` was compiled by a different backend
    /// kind than `backend`.
    pub fn forward_on(
        &self,
        backend: &dyn Backend,
        state: &mut ForwardState,
        input: &Tensor,
        out: &mut Tensor,
    ) -> Result<()> {
        self.check_input(input);
        exec::run_plan(
            &self.nodes,
            &state.plan,
            backend,
            input,
            &mut state.arena,
            state.scratch.as_mut(),
            out,
        )
    }

    /// Estimated lane-word operations for one forward of `input`.
    fn item_work(&self, input: &Tensor) -> u64 {
        (input.len() as u64).saturating_mul(self.work_per_elem)
    }

    /// The batch size a serving-style request coalescer should flush at
    /// under `policy` — the per-plan workload model applied in reverse:
    /// enough items for [`Self::forward_batch_into`]'s batch-level split
    /// to hand every effective worker a chunk whose estimated work
    /// clears the `min_work` inline threshold, capped at 64 so queueing
    /// latency stays bounded.
    ///
    /// On a host (or policy) without usable parallelism this is 1:
    /// coalescing cannot beat per-item dispatch there, and a larger
    /// batch would only add queueing latency.
    pub fn preferred_batch(&self, policy: &ExecPolicy) -> usize {
        const MAX_COALESCE: usize = 64;
        let elems = match self.spec.shapes().ok().and_then(|s| s.first().copied()) {
            Some(ShapeInfo::Map { ch, h, w }) => (ch * h * w) as u64,
            _ => 1,
        };
        let item_work = elems.saturating_mul(self.work_per_elem).max(1);
        let ways = policy.effective_threads(u64::MAX);
        if ways <= 1 {
            return 1;
        }
        let per_worker = (policy.min_work.div_ceil(item_work).max(1) as usize).min(MAX_COALESCE);
        (ways.saturating_mul(per_worker)).min(MAX_COALESCE)
    }

    /// Forward a batch of independent inputs. Results are in input order
    /// and bit-exact with per-item [`Self::forward`].
    ///
    /// # Errors
    ///
    /// Returns the first item error, if any.
    ///
    /// # Panics
    ///
    /// Panics if any input shape does not match the graph.
    pub fn forward_batch(&self, inputs: &[Tensor], engine: &Engine) -> Result<Vec<Tensor>> {
        // Thread-local scratch so repeat callers of the convenience
        // wrapper get the same steady-state (zero-allocation) forward as
        // `forward_batch_into` with persistent scratch. The buffers are
        // shape-agnostic and resize on demand, so sharing across graphs
        // is safe; the cost is scratch memory retained per thread.
        thread_local! {
            static SCRATCH: std::cell::RefCell<BatchScratch> =
                std::cell::RefCell::new(BatchScratch::default());
        }
        let mut outs = Vec::new();
        SCRATCH
            .with(|s| self.forward_batch_into(inputs, engine, &mut s.borrow_mut(), &mut outs))?;
        Ok(outs)
    }

    /// [`Self::forward_batch`] into reusable output and scratch state —
    /// the plan-level parallel entry point.
    ///
    /// The executor picks the split from the workload: when there are at
    /// least as many items as effective threads (the engine's policy
    /// clamped by hardware and by the batch's total estimated work),
    /// items are chunked across the persistent worker pool and each chunk
    /// runs the whole plan single-threaded with a pooled per-worker
    /// scratch — batch-level parallelism, no oversubscription. With fewer
    /// items than threads (e.g. one huge image), items run sequentially
    /// and the parallelism moves *inside* each op instead. Either way the
    /// results are bit-exact with per-item [`Self::forward`], and on
    /// warmed state the steady-state forward performs zero heap
    /// allocation.
    ///
    /// # Errors
    ///
    /// Returns the first item error, if any.
    ///
    /// # Panics
    ///
    /// Panics if any input shape does not match the graph.
    pub fn forward_batch_into(
        &self,
        inputs: &[Tensor],
        engine: &Engine,
        scratch: &mut BatchScratch,
        outs: &mut Vec<Tensor>,
    ) -> Result<()> {
        // The pool only needs shared access; the `&mut` in the signature
        // keeps the door open for lock-free reuse later.
        let scratch: &BatchScratch = scratch;
        outs.resize_with(inputs.len(), Tensor::default);
        let Some(first_input) = inputs.first() else {
            return Ok(());
        };
        let total_work = self
            .item_work(first_input)
            .saturating_mul(inputs.len() as u64);
        let threads = engine.policy().effective_threads(total_work);
        if threads > 1 && inputs.len() >= threads {
            // Batch-level split: chunk items across the pool; workers run
            // the single-threaded plan with a pooled scratch each.
            let inner = engine.inner();
            let error = std::sync::Mutex::new(None);
            engine.parallel_chunks(&mut outs[..], 1, 1, total_work, |first, band| {
                let mut s = scratch.take();
                for (i, out) in band.iter_mut().enumerate() {
                    if let Err(e) = self.forward_into(&inputs[first + i], &inner, &mut s, out) {
                        error.lock().expect("batch error mutex").get_or_insert(e);
                        break;
                    }
                }
                scratch.put(s);
            });
            match error.into_inner().expect("batch error mutex") {
                Some(e) => Err(e),
                None => Ok(()),
            }
        } else {
            // Intra-op parallelism. Uniform-shape batches take the
            // weight-stationary stacked path: the whole plan runs once
            // over a `[B*N, C, H, W]` stack, so every layer's packing and
            // window state is built once per image set instead of once
            // per image. Mixed shapes fall back to the per-item loop.
            let mut s = scratch.take();
            let uniform = inputs.len() > 1
                && first_input.shape().len() == 4
                && inputs.iter().all(|t| t.shape() == first_input.shape());
            let result = if uniform {
                self.forward_batch_stacked(inputs, engine, &mut s, outs)
            } else {
                let mut result = Ok(());
                for (input, out) in inputs.iter().zip(outs.iter_mut()) {
                    if let Err(e) = self.forward_into(input, engine, &mut s, out) {
                        result = Err(e);
                        break;
                    }
                }
                result
            };
            scratch.put(s);
            result
        }
    }

    /// Batch weight-stationary scheduling: stack uniform-shape items into
    /// one `[B*N, C, H, W]` input, run the compiled plan once for the
    /// whole set, and split the stacked logits back into per-item output
    /// tensors. Every op in the graph is batch-independent (convolutions
    /// and pools act per image, elementwise stages per element, the
    /// classifier per row), so this is bit-exact with per-item forwards
    /// while amortizing each layer's row packing, im2col/bank window
    /// state, and kernel dispatch overhead across the batch — composing
    /// with the weight-stationary bank kernel, which already iterates
    /// weights-outer over the stacked images. On warmed scratch the whole
    /// path performs zero heap allocation.
    fn forward_batch_stacked(
        &self,
        inputs: &[Tensor],
        engine: &Engine,
        s: &mut Scratch,
        outs: &mut [Tensor],
    ) -> Result<()> {
        // Weight-stationary over cache-sized blocks, not the whole batch:
        // packed weights are small enough to stay resident regardless, so
        // the block bounds the *activation* working set — stacking all 32
        // serving-shaped images at once streams every layer's activations
        // through the cache and loses the reuse it set out to buy
        // (measured ~8% slower than per-item at block=32, fastest at 8).
        const STACK_BLOCK: usize = 8;
        if inputs.len() > STACK_BLOCK {
            for (ins, os) in inputs.chunks(STACK_BLOCK).zip(outs.chunks_mut(STACK_BLOCK)) {
                self.forward_batch_stacked(ins, engine, s, os)?;
            }
            return Ok(());
        }
        let shape = inputs[0].shape();
        let mut stacked_shape = [0usize; 4];
        stacked_shape.copy_from_slice(shape);
        stacked_shape[0] = shape[0] * inputs.len();
        let Scratch {
            cpu,
            arena,
            stacked_in,
            stacked_out,
        } = s;
        stacked_in.reset_for_overwrite(&stacked_shape);
        let item_len = inputs[0].data().len();
        for (i, input) in inputs.iter().enumerate() {
            stacked_in.data_mut()[i * item_len..(i + 1) * item_len].copy_from_slice(input.data());
        }
        self.check_input(stacked_in);
        let backend = CpuBackend::new(engine.clone());
        exec::run_plan(
            &self.nodes,
            &self.plan,
            &backend,
            stacked_in,
            arena,
            cpu,
            stacked_out,
        )?;
        // Split dim 0 of the stacked output back into per-item tensors.
        // Fixed-size shape staging keeps the warm path allocation-free.
        let mut item_shape = [0usize; 8];
        let dims = stacked_out.shape().len();
        item_shape[..dims].copy_from_slice(stacked_out.shape());
        item_shape[0] = stacked_out.shape()[0] / inputs.len();
        let per = stacked_out.data().len() / inputs.len();
        for (i, out) in outs.iter_mut().enumerate() {
            out.reset_for_overwrite(&item_shape[..dims]);
            out.data_mut()
                .copy_from_slice(&stacked_out.data()[i * per..(i + 1) * per]);
        }
        Ok(())
    }

    /// The scalar reference walk: naive per-node forwards, fresh
    /// allocations, no fusion — the graph-level bit-exactness oracle.
    ///
    /// # Errors
    ///
    /// Returns [`BitnnError`] for unsupported runtime geometry.
    ///
    /// # Panics
    ///
    /// Panics if the input shape does not match the graph.
    pub fn forward_scalar(&self, input: &Tensor) -> Result<Tensor> {
        self.check_input(input);
        crate::backend::scalar::run_scalar(&self.nodes, input, None)
    }

    /// Scalar forward that also returns the binarized input of every
    /// 3×3 binary convolution, in topological order — the activation bit
    /// tensors of the paper's Sec. I observation.
    ///
    /// # Errors
    ///
    /// Returns [`BitnnError`] for unsupported runtime geometry.
    ///
    /// # Panics
    ///
    /// Panics if the input shape does not match the graph.
    pub fn forward_traced(&self, input: &Tensor) -> Result<(Tensor, Vec<BitTensor>)> {
        self.check_input(input);
        let mut traces = Vec::with_capacity(self.conv3.len());
        let out = crate::backend::scalar::run_scalar(&self.nodes, input, Some(&mut traces))?;
        Ok((out, traces))
    }

    fn check_input(&self, input: &Tensor) {
        let shape = input.shape();
        assert_eq!(shape.len(), 4, "input must be [N, C, H, W]");
        if let NodeOp::Input { channels, .. } = self.nodes[0].op {
            assert_eq!(shape[1], channels, "input channel mismatch");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::conv::Conv2dParams;
    use crate::weightgen::{random_floats, random_kernel};

    /// A tiny hand-built plain graph:
    /// input → stem → sign → conv3x3 → bn → act → gap → fc.
    fn plain_graph(seed: u64) -> ModelGraph {
        let c = 8;
        let stem_w = Tensor::from_vec(&[c, 3, 3, 3], random_floats(c * 3 * 9, 1.0, seed)).unwrap();
        let mut b = GraphBuilder::new("test-plain", 3, 16);
        let stem = b.push(
            "stem",
            NodeOp::StemConv(QuantConv2d::from_float(
                &stem_w,
                Conv2dParams { stride: 2, pad: 1 },
            )),
            &[0],
        );
        let sign = b.push("sign", NodeOp::Sign(RSign::zero(c)), &[stem]);
        let conv = b.push(
            "conv",
            NodeOp::BinConv(BinConv2d::new(
                random_kernel(&[c, c, 3, 3], seed ^ 1),
                Conv2dParams { stride: 1, pad: 1 },
            )),
            &[sign],
        );
        let bn = b.push("bn", NodeOp::BatchNorm(BatchNorm::identity(c)), &[conv]);
        let act = b.push("act", NodeOp::Act(RPReLU::plain(c, 0.25)), &[bn]);
        let gap = b.push("gap", NodeOp::GlobalAvgPool, &[act]);
        b.push(
            "fc",
            NodeOp::Classifier(QuantLinear::from_float(
                &random_floats(10 * c, 0.5, seed ^ 2),
                10,
                c,
            )),
            &[gap],
        );
        b.finish().unwrap()
    }

    /// A residual graph exercising all three fused shortcut forms.
    fn residual_graph(seed: u64) -> ModelGraph {
        let c = 8;
        let stem_w = Tensor::from_vec(&[c, 3, 3, 3], random_floats(c * 3 * 9, 1.0, seed)).unwrap();
        let mut b = GraphBuilder::new("test-residual", 3, 16);
        let mut x = b.push(
            "stem",
            NodeOp::StemConv(QuantConv2d::from_float(
                &stem_w,
                Conv2dParams { stride: 2, pad: 1 },
            )),
            &[0],
        );
        // Identity-shortcut block (stride 1).
        let sign = b.push("b1.sign", NodeOp::Sign(RSign::zero(c)), &[x]);
        let conv = b.push(
            "b1.conv",
            NodeOp::BinConv(BinConv2d::new(
                random_kernel(&[c, c, 3, 3], seed ^ 3),
                Conv2dParams { stride: 1, pad: 1 },
            )),
            &[sign],
        );
        let bn = b.push("b1.bn", NodeOp::BatchNorm(BatchNorm::identity(c)), &[conv]);
        let addn = b.push("b1.add", NodeOp::Add, &[bn, x]);
        x = b.push("b1.act", NodeOp::Act(RPReLU::plain(c, 0.25)), &[addn]);
        // Pool-shortcut block (stride 2).
        let sign = b.push("b2.sign", NodeOp::Sign(RSign::zero(c)), &[x]);
        let conv = b.push(
            "b2.conv",
            NodeOp::BinConv(BinConv2d::new(
                random_kernel(&[c, c, 3, 3], seed ^ 4),
                Conv2dParams { stride: 2, pad: 1 },
            )),
            &[sign],
        );
        let bn = b.push("b2.bn", NodeOp::BatchNorm(BatchNorm::identity(c)), &[conv]);
        let pool = b.push("b2.pool", NodeOp::AvgPool2x2, &[x]);
        let addn = b.push("b2.add", NodeOp::Add, &[bn, pool]);
        x = b.push("b2.act", NodeOp::Act(RPReLU::plain(c, 0.25)), &[addn]);
        // Channel-duplication block (C → 2C).
        let sign = b.push("b3.sign", NodeOp::Sign(RSign::zero(c)), &[x]);
        let conv = b.push(
            "b3.conv",
            NodeOp::BinConv(BinConv2d::new(
                random_kernel(&[2 * c, c, 3, 3], seed ^ 5),
                Conv2dParams { stride: 1, pad: 1 },
            )),
            &[sign],
        );
        let bn = b.push(
            "b3.bn",
            NodeOp::BatchNorm(BatchNorm::identity(2 * c)),
            &[conv],
        );
        let dup = b.push("b3.dup", NodeOp::ChannelDup, &[x]);
        let addn = b.push("b3.add", NodeOp::Add, &[bn, dup]);
        x = b.push("b3.act", NodeOp::Act(RPReLU::plain(2 * c, 0.25)), &[addn]);
        let gap = b.push("gap", NodeOp::GlobalAvgPool, &[x]);
        b.push(
            "fc",
            NodeOp::Classifier(QuantLinear::from_float(
                &random_floats(10 * 2 * c, 0.5, seed ^ 6),
                10,
                2 * c,
            )),
            &[gap],
        );
        b.finish().unwrap()
    }

    #[test]
    fn engine_paths_match_scalar_on_plain_and_residual_graphs() {
        for g in [plain_graph(11), residual_graph(12)] {
            let inputs: Vec<Tensor> = (0..3)
                .map(|i| {
                    Tensor::from_vec(&[1, 3, 16, 16], random_floats(3 * 256, 1.0, 40 + i)).unwrap()
                })
                .collect();
            let expect: Vec<Tensor> = inputs
                .iter()
                .map(|x| g.forward_scalar(x).unwrap())
                .collect();
            for threads in [1usize, 4] {
                let engine = Engine::with_threads(threads);
                let mut scratch = Scratch::default();
                for (x, e) in inputs.iter().zip(&expect) {
                    let y = g.forward_with(x, &engine, &mut scratch).unwrap();
                    assert_eq!(y.data(), e.data(), "{} threads {threads}", g.arch());
                }
                let batched = g.forward_batch(&inputs, &engine).unwrap();
                for (y, e) in batched.iter().zip(&expect) {
                    assert_eq!(y.data(), e.data(), "batch, {} threads", threads);
                }
            }
        }
    }

    #[test]
    fn residual_fusion_covers_all_blocks() {
        // All three shortcut forms must compile to fused steps, not
        // node-by-node evaluation.
        let g = residual_graph(13);
        let fused = g
            .plan
            .steps
            .iter()
            .filter(|s| {
                matches!(
                    s,
                    super::exec::Step::FusedSpatial { .. } | super::exec::Step::FusedChannel { .. }
                )
            })
            .count();
        assert_eq!(fused, 3, "expected every block fused: {:?}", g.plan.steps);
    }

    #[test]
    fn traced_returns_conv3_inputs() {
        let g = residual_graph(14);
        let x = Tensor::from_vec(&[1, 3, 16, 16], random_floats(3 * 256, 1.0, 50)).unwrap();
        let (logits, traces) = g.forward_traced(&x).unwrap();
        assert_eq!(logits.shape(), &[1, 10]);
        assert_eq!(traces.len(), 3);
        assert_eq!(traces[0].shape(), &[1, 8, 8, 8]);
    }

    #[test]
    fn kernel_replacement_roundtrip() {
        let mut g = plain_graph(15);
        let x = Tensor::from_vec(&[1, 3, 16, 16], random_floats(3 * 256, 1.0, 51)).unwrap();
        let y0 = g.forward(&x).unwrap();
        let mut w = g.conv3_weights(0).clone();
        for i in 0..w.len() {
            w.set(i, !w.get(i));
        }
        // Tensor and packed deployment agree.
        let mut via_packed = g.clone();
        via_packed
            .set_conv3_packed(0, PackedKernel::pack(&w).unwrap())
            .unwrap();
        g.set_conv3_weights(0, w).unwrap();
        let y1 = g.forward(&x).unwrap();
        assert_ne!(y0.data(), y1.data());
        assert_eq!(y1.data(), via_packed.forward(&x).unwrap().data());
        // Shape changes are typed errors, not panics.
        assert!(g
            .set_conv3_weights(0, BitTensor::zeros(&[1, 8, 3, 3]))
            .is_err());
        assert!(g
            .set_conv3_packed(
                9,
                PackedKernel::pack(&BitTensor::zeros(&[8, 8, 3, 3])).unwrap()
            )
            .is_err());
    }

    #[test]
    fn layer_geometry_cross_check() {
        // A bn whose channel count disagrees with the graph must be
        // rejected at construction.
        let c = 8;
        let stem_w = Tensor::from_vec(&[c, 3, 3, 3], random_floats(c * 27, 1.0, 1)).unwrap();
        let mut b = GraphBuilder::new("bad", 3, 16);
        let stem = b.push(
            "stem",
            NodeOp::StemConv(QuantConv2d::from_float(
                &stem_w,
                Conv2dParams { stride: 2, pad: 1 },
            )),
            &[0],
        );
        let bn = b.push("bn", NodeOp::BatchNorm(BatchNorm::identity(c + 1)), &[stem]);
        let gap = b.push("gap", NodeOp::GlobalAvgPool, &[bn]);
        b.push(
            "fc",
            NodeOp::Classifier(QuantLinear::from_float(
                &random_floats(10 * c, 0.5, 2),
                10,
                c,
            )),
            &[gap],
        );
        assert!(matches!(b.finish(), Err(BitnnError::InvalidConfig(_))));
    }

    #[test]
    fn arena_assignment_is_compact_and_alias_free_on_builtins() {
        for arch in crate::graph::arch::Arch::ALL {
            let g = crate::graph::arch::build_model(arch, 0.0625, 16, 3).unwrap();
            g.plan.check_no_aliasing().unwrap();
            // Liveness compaction: the arena must be much smaller than one
            // slot per node (the whole point of the liveness pass).
            assert!(
                g.plan.slots < g.nodes.len() / 2,
                "{arch}: {} slots for {} nodes",
                g.plan.slots,
                g.nodes.len()
            );
        }
    }

    /// Build a random-but-valid graph: a chain of bn/act/conv/pool ops
    /// with occasional skip-connection adds to random earlier same-shape
    /// values. Multi-consumer values and reconvergent adds are exactly
    /// what stresses the liveness-driven slot recycling.
    fn random_chain_graph(ops: &[usize], picks: &[usize], seed: u64) -> ModelGraph {
        let c = 8;
        let stem_w = Tensor::from_vec(&[c, 3, 3, 3], random_floats(c * 27, 1.0, seed)).unwrap();
        let mut b = GraphBuilder::new("test-random", 3, 8);
        let mut x = b.push(
            "stem",
            NodeOp::StemConv(QuantConv2d::from_float(
                &stem_w,
                Conv2dParams { stride: 1, pad: 1 },
            )),
            &[0],
        );
        let mut size = 8usize; // stride-1 stem keeps the input size
                               // Every produced map-shaped value with its spatial size, for
                               // skip-add shape matching.
        let mut avail: Vec<(usize, usize)> = vec![(x, size)];
        for (i, (&op, &pick)) in ops.iter().zip(picks).enumerate() {
            x = match op {
                0 => b.push(
                    format!("bn{i}"),
                    NodeOp::BatchNorm(BatchNorm::identity(c)),
                    &[x],
                ),
                1 => b.push(format!("act{i}"), NodeOp::Act(RPReLU::plain(c, 0.25)), &[x]),
                2 => {
                    // Skip add with a random earlier same-shape value
                    // (falls back to self-add when none exists).
                    let same: Vec<usize> = avail
                        .iter()
                        .filter(|&&(_, s)| s == size)
                        .map(|&(id, _)| id)
                        .collect();
                    let other = same[pick % same.len()];
                    b.push(format!("add{i}"), NodeOp::Add, &[x, other])
                }
                3 => {
                    let sign = b.push(format!("sign{i}"), NodeOp::Sign(RSign::zero(c)), &[x]);
                    b.push(
                        format!("conv{i}"),
                        NodeOp::BinConv(BinConv2d::new(
                            random_kernel(&[c, c, 3, 3], seed ^ i as u64),
                            Conv2dParams { stride: 1, pad: 1 },
                        )),
                        &[sign],
                    )
                }
                _ => {
                    if size < 2 {
                        continue; // too small to pool again
                    }
                    size = size.div_ceil(2);
                    b.push(format!("pool{i}"), NodeOp::AvgPool2x2, &[x])
                }
            };
            avail.push((x, size));
        }
        let gap = b.push("gap", NodeOp::GlobalAvgPool, &[x]);
        b.push(
            "fc",
            NodeOp::Classifier(QuantLinear::from_float(
                &random_floats(10 * c, 0.5, seed ^ 0xFC),
                10,
                c,
            )),
            &[gap],
        );
        b.finish().unwrap()
    }

    proptest::proptest! {
        #![proptest_config(proptest::prelude::ProptestConfig::with_cases(24))]

        /// Satellite: arena-reused buffers never alias across plan steps —
        /// for random graphs with skip connections, every pair of values
        /// sharing an arena slot has strictly disjoint lifetimes, and the
        /// arena executor stays bit-exact with the scalar walk.
        #[test]
        fn arena_slots_never_alias_live_values(
            ops in proptest::collection::vec(0usize..5, 1..24),
            picks in proptest::collection::vec(0usize..64, 24),
            seed in proptest::prelude::any::<u64>(),
        ) {
            let g = random_chain_graph(&ops, &picks, seed);
            g.plan.check_no_aliasing().unwrap();
            let x = Tensor::from_vec(&[1, 3, 8, 8], random_floats(3 * 64, 1.0, seed ^ 9)).unwrap();
            let scalar = g.forward_scalar(&x).unwrap();
            let mut scratch = Scratch::default();
            let engine = Engine::single_threaded();
            // Two consecutive forwards through the same arena: the second
            // run reuses every slot buffer and must stay bit-exact.
            for _ in 0..2 {
                let y = g.forward_with(&x, &engine, &mut scratch).unwrap();
                proptest::prop_assert_eq!(y.data(), scalar.data());
            }
        }
    }

    #[test]
    fn workloads_follow_the_graph() {
        let g = residual_graph(16);
        let wls = g.workloads();
        // stem + 3 convs + fc.
        assert_eq!(wls.len(), 5);
        assert_eq!(wls[0].name, "input.conv");
        assert_eq!(wls[4].name, "output.fc");
        // Stride-2 block halves the spatial dims: 16 → stem 8 → b2 4.
        assert_eq!(wls[2].oh, 4);
    }
}
