//! Binary GEMM over packed row matrices.
//!
//! Dense layers and 1×1 convolutions reduce to a binary matrix multiply:
//! `out[m][n] = <A_row_m, B_row_n>` in the ±1 domain, computed as
//! `2 * popcount(xnor) - K` (paper Eq. 2).
//!
//! Two implementations are provided:
//!
//! * [`gemm_binary`] — the register-blocked fast path. An `MR×NR`
//!   micro-kernel keeps one tile of output accumulators live across the
//!   whole lane loop, so every loaded activation lane is reused `NR`
//!   times and every weight lane `MR` times, and the independent
//!   accumulators break the popcount addition dependency chain (the daBNN
//!   register-tiling idea on `u64` lanes). The blocking (4×2, 8×2, or
//!   4×4) is chosen per shape class by the [`crate::simd`] selection
//!   table, which micro-autotunes on first use; the ISA instantiation
//!   (portable / AVX2 / AVX-512 `vpopcntq`) follows the detected dispatch
//!   level.
//! * [`gemm_binary_naive`] — the seed's scalar row-by-row loop, kept
//!   bit-identical as the perf-tracking baseline and as a second
//!   implementation for cross-checking.
//!
//! # Clean-tail invariant
//!
//! When `cols` is not a multiple of 64, the unused high bits of each row's
//! last lane must be **zero** in both operands. All constructors and
//! [`PackedMatrix::set`] maintain this; the fast path exploits it by
//! counting the tail zeros as agreements and subtracting the constant
//! correction afterwards instead of masking inside the inner loop.

use crate::bitword::xnor_popcount_slice;
use crate::error::{BitnnError, Result};
use crate::ops::dot::dot_channels_seed;
use crate::simd::{self, GemmVariant, ShapeClass};
use crate::{lanes_for, LANE_BITS};

/// A binary matrix stored row-major with each row packed into `u64` lanes.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PackedMatrix {
    rows: usize,
    cols: usize,
    lanes: usize,
    data: Vec<u64>,
}

impl PackedMatrix {
    /// All-zero (all `-1`) matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        let lanes = lanes_for(cols);
        PackedMatrix {
            rows,
            cols,
            lanes,
            data: vec![0; rows * lanes],
        }
    }

    /// Re-shape this matrix to `rows × cols` and clear every bit, reusing
    /// the existing allocation when it is large enough.
    ///
    /// This is the scratch-buffer entry point: the im2col lowering calls it
    /// once per layer instead of allocating a fresh matrix.
    pub fn reset(&mut self, rows: usize, cols: usize) {
        self.rows = rows;
        self.cols = cols;
        self.lanes = lanes_for(cols);
        self.data.clear();
        self.data.resize(rows * self.lanes, 0);
    }

    /// Build from booleans in row-major order.
    ///
    /// Bits are packed a word at a time: each group of 64 booleans is
    /// assembled in a register and stored with a single write.
    ///
    /// # Errors
    ///
    /// Returns [`BitnnError::ShapeMismatch`] on length mismatch.
    pub fn from_bools(rows: usize, cols: usize, bits: &[bool]) -> Result<Self> {
        if bits.len() != rows * cols {
            return Err(BitnnError::ShapeMismatch {
                expected: format!("{} bits", rows * cols),
                got: format!("{}", bits.len()),
            });
        }
        let mut m = PackedMatrix::zeros(rows, cols);
        if cols == 0 {
            return Ok(m);
        }
        for (row_bits, row) in bits.chunks(cols).zip(m.data.chunks_mut(m.lanes)) {
            for (chunk, word) in row_bits.chunks(LANE_BITS).zip(row.iter_mut()) {
                let mut w = 0u64;
                for (i, &b) in chunk.iter().enumerate() {
                    w |= (b as u64) << i;
                }
                *word = w;
            }
        }
        Ok(m)
    }

    /// Row count.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Column (bit) count.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Lanes per row.
    pub fn lanes(&self) -> usize {
        self.lanes
    }

    /// Set a bit.
    ///
    /// # Panics
    ///
    /// Panics if out of range.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: bool) {
        assert!(r < self.rows && c < self.cols, "({r},{c}) out of range");
        let idx = r * self.lanes + c / LANE_BITS;
        if v {
            self.data[idx] |= 1 << (c % LANE_BITS);
        } else {
            self.data[idx] &= !(1 << (c % LANE_BITS));
        }
    }

    /// Read a bit.
    ///
    /// # Panics
    ///
    /// Panics if out of range.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> bool {
        assert!(r < self.rows && c < self.cols, "({r},{c}) out of range");
        (self.data[r * self.lanes + c / LANE_BITS] >> (c % LANE_BITS)) & 1 == 1
    }

    /// The packed lanes of row `r`.
    #[inline]
    pub fn row(&self, r: usize) -> &[u64] {
        &self.data[r * self.lanes..(r + 1) * self.lanes]
    }

    /// Mutable packed lanes of row `r`.
    ///
    /// Callers must keep the clean-tail invariant: bits at column indices
    /// `>= cols()` in the last lane must stay zero, or the GEMM fast path
    /// will count them as agreements.
    #[inline]
    pub fn row_mut(&mut self, r: usize) -> &mut [u64] {
        &mut self.data[r * self.lanes..(r + 1) * self.lanes]
    }

    /// Raw words.
    pub fn words(&self) -> &[u64] {
        &self.data
    }

    /// Raw words, mutable. Same clean-tail caveat as [`Self::row_mut`].
    pub(crate) fn words_mut(&mut self) -> &mut [u64] {
        &mut self.data
    }

    /// Check the clean-tail invariant (used by tests and debug assertions).
    pub fn tails_clean(&self) -> bool {
        let rem = self.cols % LANE_BITS;
        if rem == 0 || self.lanes == 0 {
            return true;
        }
        let tail = !crate::bitword::mask(rem);
        (0..self.rows).all(|r| self.data[(r + 1) * self.lanes - 1] & tail == 0)
    }
}

/// The register-blocked inner tile: `MR` rows of `a` against `NR` rows of
/// `b`, all lanes, `MR*NR` independent accumulators. Monomorphized per
/// [`GemmVariant`]; the 4×2 instantiation is the historical micro-kernel.
#[inline(always)]
fn microkernel<const MR: usize, const NR: usize>(
    a: &[u64],
    b: &[u64],
    lanes: usize,
) -> [[u32; NR]; MR] {
    // Real (non-debug) asserts so the bounds checks below are elided.
    assert_eq!(a.len(), MR * lanes);
    assert_eq!(b.len(), NR * lanes);
    let mut acc = [[0u32; NR]; MR];
    for l in 0..lanes {
        let mut w = [0u64; NR];
        for (ni, wl) in w.iter_mut().enumerate() {
            *wl = b[ni * lanes + l];
        }
        for (mi, row) in acc.iter_mut().enumerate() {
            let x = a[mi * lanes + l];
            for (ni, cell) in row.iter_mut().enumerate() {
                *cell += (!(x ^ w[ni])).count_ones();
            }
        }
    }
    acc
}

/// The `MR×NR`-blocked tiling loop over a band of `a` rows, with edge
/// tiles falling back to plain slice dots. `corr` is the clean-tail
/// correction already computed by the caller.
#[allow(clippy::too_many_arguments)]
#[inline(always)]
fn gemm_rows_blocked<const MR: usize, const NR: usize>(
    a_words: &[u64],
    b_words: &[u64],
    lanes: usize,
    corr: i32,
    bn: usize,
    m_start: usize,
    m_count: usize,
    out: &mut [i32],
) {
    let mut m = 0;
    while m + MR <= m_count {
        let a_tile = &a_words[(m_start + m) * lanes..(m_start + m + MR) * lanes];
        let mut n = 0;
        while n + NR <= bn {
            let b_tile = &b_words[n * lanes..(n + NR) * lanes];
            let acc = microkernel::<MR, NR>(a_tile, b_tile, lanes);
            for (mi, row) in acc.iter().enumerate() {
                for (ni, &cell) in row.iter().enumerate() {
                    out[(m + mi) * bn + n + ni] = 2 * cell as i32 - corr;
                }
            }
            n += NR;
        }
        while n < bn {
            let rb = &b_words[n * lanes..(n + 1) * lanes];
            for mi in 0..MR {
                let ra = &a_tile[mi * lanes..(mi + 1) * lanes];
                out[(m + mi) * bn + n] = 2 * xnor_popcount_slice(ra, rb) as i32 - corr;
            }
            n += 1;
        }
        m += MR;
    }
    while m < m_count {
        let ra = &a_words[(m_start + m) * lanes..(m_start + m + 1) * lanes];
        for n in 0..bn {
            let rb = &b_words[n * lanes..(n + 1) * lanes];
            out[m * bn + n] = 2 * xnor_popcount_slice(ra, rb) as i32 - corr;
        }
        m += 1;
    }
}

/// Tiled GEMM over raw packed words for a contiguous band of `a` rows.
///
/// `a_words`/`b_words` are row-major with `lanes` words per row and `k`
/// logical bits per row (clean tails required); `bn` is the number of `b`
/// rows (the output width). Writes ±1-domain dot products for `a` rows
/// `m_start ..` into `out`, whose length determines how many rows are
/// computed. This is the worker body the execution backends hand to each
/// thread with a disjoint output band; the register blocking comes from
/// the [`crate::simd`] selection table (autotuned on first use per shape
/// class) and the ISA instantiation from the detected dispatch level.
#[inline]
pub(crate) fn gemm_rows_into(
    a_words: &[u64],
    b_words: &[u64],
    lanes: usize,
    k: usize,
    bn: usize,
    m_start: usize,
    out: &mut [i32],
) {
    let variant = match ShapeClass::of_lanes(lanes) {
        Some(class) => simd::gemm_variant_for(class, autotune_gemm),
        None => GemmVariant::Mr4Nr2, // short-row path; blocking unused
    };
    gemm_rows_with_variant(variant, a_words, b_words, lanes, k, bn, m_start, out);
}

/// [`gemm_rows_into`] with an explicit register blocking — the ISA
/// dispatcher, also driven directly by the autotuner so candidate timings
/// run through exactly the code path later dispatches will take.
#[allow(clippy::too_many_arguments)]
#[inline]
fn gemm_rows_with_variant(
    variant: GemmVariant,
    a_words: &[u64],
    b_words: &[u64],
    lanes: usize,
    k: usize,
    bn: usize,
    m_start: usize,
    out: &mut [i32],
) {
    #[cfg(target_arch = "x86_64")]
    {
        /// AVX-512 instantiation of [`gemm_rows_portable`]: `count_ones`
        /// loops compile to hardware `vpopcntq` over 512-bit lanes.
        #[target_feature(enable = "avx512f,avx512bw,avx512vpopcntdq,popcnt")]
        unsafe fn gemm_rows_avx512(
            variant: GemmVariant,
            a_words: &[u64],
            b_words: &[u64],
            lanes: usize,
            k: usize,
            bn: usize,
            m_start: usize,
            out: &mut [i32],
        ) {
            gemm_rows_portable(variant, a_words, b_words, lanes, k, bn, m_start, out);
        }
        /// AVX2+popcnt instantiation of [`gemm_rows_portable`].
        #[target_feature(enable = "avx2,popcnt")]
        unsafe fn gemm_rows_avx2(
            variant: GemmVariant,
            a_words: &[u64],
            b_words: &[u64],
            lanes: usize,
            k: usize,
            bn: usize,
            m_start: usize,
            out: &mut [i32],
        ) {
            gemm_rows_portable(variant, a_words, b_words, lanes, k, bn, m_start, out);
        }
        if crate::simd::avx512() {
            // SAFETY: avx512f/bw/vpopcntdq + popcnt were detected at runtime.
            return unsafe {
                gemm_rows_avx512(variant, a_words, b_words, lanes, k, bn, m_start, out)
            };
        }
        if crate::simd::avx2() {
            // SAFETY: avx2 + popcnt were detected at runtime.
            return unsafe {
                gemm_rows_avx2(variant, a_words, b_words, lanes, k, bn, m_start, out)
            };
        }
    }
    gemm_rows_portable(variant, a_words, b_words, lanes, k, bn, m_start, out);
}

/// Portable body of [`gemm_rows_into`] — the single source every ISA
/// instantiation compiles from.
#[allow(clippy::too_many_arguments)]
#[inline(always)]
fn gemm_rows_portable(
    variant: GemmVariant,
    a_words: &[u64],
    b_words: &[u64],
    lanes: usize,
    k: usize,
    bn: usize,
    m_start: usize,
    out: &mut [i32],
) {
    if bn == 0 {
        return;
    }
    debug_assert_eq!(out.len() % bn, 0);
    let m_count = out.len() / bn;
    // Tail zeros xnor to agreements; subtract them once per output.
    let corr = (2 * (lanes * LANE_BITS - k) + k) as i32;
    if lanes == 0 {
        out.fill(0); // zero-width rows: every dot is empty
        return;
    }
    if lanes <= 2 {
        // Short-row fast path (K ≤ 128 bits, e.g. the narrow layers of
        // small models): the MR×NR tile's per-call bookkeeping would cost
        // more than its two-lane dot, so stream each `a` row against all
        // `b` rows with the row lanes held in registers and contiguous
        // writes. The compact trip counts vectorize well.
        for (m, orow) in out.chunks_mut(bn).enumerate() {
            let base = (m_start + m) * lanes;
            let a0 = a_words[base];
            let a1 = if lanes > 1 { a_words[base + 1] } else { 0 };
            for (n, o) in orow.iter_mut().enumerate() {
                let mut p = (!(a0 ^ b_words[n * lanes])).count_ones();
                if lanes > 1 {
                    p += (!(a1 ^ b_words[n * lanes + 1])).count_ones();
                }
                *o = 2 * p as i32 - corr;
            }
        }
        return;
    }
    match variant {
        GemmVariant::Mr4Nr2 => {
            gemm_rows_blocked::<4, 2>(a_words, b_words, lanes, corr, bn, m_start, m_count, out)
        }
        GemmVariant::Mr8Nr2 => {
            gemm_rows_blocked::<8, 2>(a_words, b_words, lanes, corr, bn, m_start, m_count, out)
        }
        GemmVariant::Mr4Nr4 => {
            gemm_rows_blocked::<4, 4>(a_words, b_words, lanes, corr, bn, m_start, m_count, out)
        }
    }
}

/// Micro-autotune one shape class: time every register-blocking variant on
/// synthetic operands of the class's representative lane count and return
/// the fastest. Runs once per class per process (cached by the
/// [`crate::simd`] selection table); total cost is well under a
/// millisecond. Every variant is bit-exact, so timing noise can cost
/// speed, never correctness.
fn autotune_gemm(class: ShapeClass) -> GemmVariant {
    const M: usize = 48;
    const BN: usize = 48;
    const REPS: usize = 4;
    let lanes = class.representative_lanes();
    let k = lanes * LANE_BITS; // full lanes: tails trivially clean
    let mut seed = 0x9E3779B97F4A7C15u64 ^ lanes as u64;
    let mut word = move || {
        seed = seed
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        seed
    };
    let a: Vec<u64> = (0..M * lanes).map(|_| word()).collect();
    let b: Vec<u64> = (0..BN * lanes).map(|_| word()).collect();
    let mut out = vec![0i32; M * BN];
    let mut best = (GemmVariant::Mr4Nr2, std::time::Duration::MAX);
    for variant in GemmVariant::ALL {
        let mut fastest = std::time::Duration::MAX;
        for _ in 0..REPS {
            let t0 = std::time::Instant::now();
            gemm_rows_with_variant(variant, &a, &b, lanes, k, BN, 0, &mut out);
            std::hint::black_box(&mut out);
            fastest = fastest.min(t0.elapsed());
        }
        if fastest < best.1 {
            best = (variant, fastest);
        }
    }
    best.0
}

/// Force-populate the GEMM variant selection table for every shape class
/// and return the recorded choices — used by `bnnkc features` and the
/// perfsuite so reports cover all classes, not just the ones a workload
/// happened to hit.
pub fn warm_gemm_tables() -> Vec<simd::GemmChoice> {
    for class in ShapeClass::ALL {
        simd::gemm_variant_for(class, autotune_gemm);
    }
    simd::gemm_choices()
}

/// The name of the kernel that serves rows of `lanes` lane words:
/// `"short-row"` for the dedicated ≤2-lane path, otherwise the selected
/// register blocking (`"4x2"`-style, autotuning on first use). For
/// measurement labeling — perfsuite entries record this per benchmark.
pub fn gemm_kernel_name(lanes: usize) -> &'static str {
    match ShapeClass::of_lanes(lanes) {
        None => "short-row",
        Some(class) => simd::gemm_variant_for(class, autotune_gemm).name(),
    }
}

/// Binary GEMM: `out[m][n] = dot(a.row(m), b.row(n))` in the ±1 domain.
///
/// `b` is interpreted row-wise (i.e. already "transposed"): each row of `b`
/// is one output column's weight vector, which matches how binary dense
/// layers store one packed row per output neuron. This is the
/// register-blocked fast path; see [`gemm_binary_naive`] for the scalar
/// baseline it is cross-checked against.
///
/// # Errors
///
/// Returns [`BitnnError::DimMismatch`] if the inner dimensions differ.
pub fn gemm_binary(a: &PackedMatrix, b: &PackedMatrix) -> Result<Vec<i32>> {
    let mut out = Vec::new();
    gemm_binary_into(a, b, &mut out)?;
    Ok(out)
}

/// [`gemm_binary`] writing into a reusable output buffer.
///
/// The buffer is cleared and resized to `a.rows() * b.rows()`; its
/// allocation is reused across calls.
///
/// # Errors
///
/// Returns [`BitnnError::DimMismatch`] if the inner dimensions differ.
pub fn gemm_binary_into(a: &PackedMatrix, b: &PackedMatrix, out: &mut Vec<i32>) -> Result<()> {
    if a.cols != b.cols {
        return Err(BitnnError::DimMismatch {
            op: "gemm_binary",
            lhs: vec![a.rows, a.cols],
            rhs: vec![b.rows, b.cols],
        });
    }
    debug_assert!(a.tails_clean() && b.tails_clean());
    // Length-only resize: every element is written by the kernel below.
    let n = a.rows * b.rows;
    if out.len() != n {
        out.clear();
        out.resize(n, 0);
    }
    gemm_rows_into(&a.data, &b.data, a.lanes, a.cols, b.rows, 0, out);
    Ok(())
}

/// The seed's scalar binary GEMM: one single-accumulator channel dot per
/// output element, no tiling, no unrolling.
///
/// Kept bit-identical to the original implementation (including the seed's
/// original lane loop) as the perf-tracking baseline that `perfsuite`
/// reports the tiled kernel's speedup against, and as an independent
/// oracle for the property tests.
///
/// # Errors
///
/// Returns [`BitnnError::DimMismatch`] if the inner dimensions differ.
pub fn gemm_binary_naive(a: &PackedMatrix, b: &PackedMatrix) -> Result<Vec<i32>> {
    if a.cols != b.cols {
        return Err(BitnnError::DimMismatch {
            op: "gemm_binary",
            lhs: vec![a.rows, a.cols],
            rhs: vec![b.rows, b.cols],
        });
    }
    let k = a.cols;
    let mut out = vec![0i32; a.rows * b.rows];
    for m in 0..a.rows {
        let ra = a.row(m);
        for n in 0..b.rows {
            let agree = dot_channels_seed(ra, b.row(n), k);
            out[m * b.rows + n] = 2 * agree as i32 - k as i32;
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn sign(b: bool) -> i32 {
        if b {
            1
        } else {
            -1
        }
    }

    fn reference_gemm(a: &[bool], b: &[bool], m: usize, n: usize, k: usize) -> Vec<i32> {
        let mut out = vec![0i32; m * n];
        for i in 0..m {
            for j in 0..n {
                out[i * n + j] = (0..k)
                    .map(|x| sign(a[i * k + x]) * sign(b[j * k + x]))
                    .sum();
            }
        }
        out
    }

    fn random_bits(n: usize, seed: u64) -> Vec<bool> {
        let mut s = seed | 1;
        (0..n)
            .map(|_| {
                s = s
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                s >> 63 == 1
            })
            .collect()
    }

    #[test]
    fn identity_like_product() {
        // Row equal to itself -> +k; complement -> -k.
        let k = 100;
        let bits: Vec<bool> = (0..k).map(|i| i % 3 == 0).collect();
        let nbits: Vec<bool> = bits.iter().map(|b| !b).collect();
        let a = PackedMatrix::from_bools(1, k, &bits).unwrap();
        let mut b_bits = bits.clone();
        b_bits.extend_from_slice(&nbits);
        let b = PackedMatrix::from_bools(2, k, &b_bits).unwrap();
        let out = gemm_binary(&a, &b).unwrap();
        assert_eq!(out, vec![k as i32, -(k as i32)]);
    }

    #[test]
    fn dim_mismatch_is_error() {
        let a = PackedMatrix::zeros(2, 10);
        let b = PackedMatrix::zeros(3, 11);
        assert!(matches!(
            gemm_binary(&a, &b),
            Err(BitnnError::DimMismatch { .. })
        ));
        assert!(matches!(
            gemm_binary_naive(&a, &b),
            Err(BitnnError::DimMismatch { .. })
        ));
    }

    #[test]
    fn set_get_roundtrip_cross_lane() {
        let mut m = PackedMatrix::zeros(2, 130);
        m.set(1, 129, true);
        m.set(0, 63, true);
        m.set(0, 64, true);
        assert!(m.get(1, 129) && m.get(0, 63) && m.get(0, 64));
        assert!(!m.get(1, 128));
        m.set(0, 64, false);
        assert!(!m.get(0, 64));
        assert!(m.tails_clean());
    }

    #[test]
    fn from_bools_packs_words_and_keeps_tails_clean() {
        let bits: Vec<bool> = (0..2 * 70).map(|i| i % 7 == 0).collect();
        let m = PackedMatrix::from_bools(2, 70, &bits).unwrap();
        assert!(m.tails_clean());
        for r in 0..2 {
            for c in 0..70 {
                assert_eq!(m.get(r, c), bits[r * 70 + c], "({r},{c})");
            }
        }
    }

    #[test]
    fn reset_reuses_and_clears() {
        let bits = vec![true; 2 * 70];
        let mut m = PackedMatrix::from_bools(2, 70, &bits).unwrap();
        m.reset(3, 40);
        assert_eq!((m.rows(), m.cols(), m.lanes()), (3, 40, 1));
        assert!(m.words().iter().all(|&w| w == 0));
        assert!(m.tails_clean());
    }

    #[test]
    fn tiled_covers_all_tile_edges() {
        // Row/column counts straddling the MR x NR tile boundaries, with a
        // ragged K to exercise the tail-correction.
        for &(m, n) in &[(1, 1), (3, 2), (4, 2), (5, 3), (8, 7), (9, 5)] {
            for &k in &[1usize, 63, 64, 65, 129, 200] {
                let a_bits = random_bits(m * k, (m * 31 + n * 7 + k) as u64);
                let b_bits = random_bits(n * k, (m * 17 + n * 3 + k) as u64 ^ 0xABCD);
                let a = PackedMatrix::from_bools(m, k, &a_bits).unwrap();
                let b = PackedMatrix::from_bools(n, k, &b_bits).unwrap();
                let tiled = gemm_binary(&a, &b).unwrap();
                let naive = gemm_binary_naive(&a, &b).unwrap();
                assert_eq!(tiled, naive, "m={m} n={n} k={k}");
            }
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn gemm_matches_reference(
            m in 1usize..7, n in 1usize..7, k in 1usize..150,
            seed in any::<u64>()
        ) {
            let a_bits = random_bits(m * k, seed);
            let b_bits = random_bits(n * k, !seed);
            let a = PackedMatrix::from_bools(m, k, &a_bits).unwrap();
            let b = PackedMatrix::from_bools(n, k, &b_bits).unwrap();
            let expect = reference_gemm(&a_bits, &b_bits, m, n, k);
            prop_assert_eq!(gemm_binary(&a, &b).unwrap(), expect.clone());
            prop_assert_eq!(gemm_binary_naive(&a, &b).unwrap(), expect);
        }
    }
}
