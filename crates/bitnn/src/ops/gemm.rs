//! Binary GEMM over packed row matrices.
//!
//! Dense layers and 1×1 convolutions reduce to a binary matrix multiply:
//! `out[m][n] = <A_row_m, B_row_n>` in the ±1 domain, computed as
//! `2 * popcount(xnor) - K` (paper Eq. 2).

use crate::error::{BitnnError, Result};
use crate::ops::dot::dot_channels;
use crate::{lanes_for, LANE_BITS};

/// A binary matrix stored row-major with each row packed into `u64` lanes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PackedMatrix {
    rows: usize,
    cols: usize,
    lanes: usize,
    data: Vec<u64>,
}

impl PackedMatrix {
    /// All-zero (all `-1`) matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        let lanes = lanes_for(cols);
        PackedMatrix {
            rows,
            cols,
            lanes,
            data: vec![0; rows * lanes],
        }
    }

    /// Build from booleans in row-major order.
    ///
    /// # Errors
    ///
    /// Returns [`BitnnError::ShapeMismatch`] on length mismatch.
    pub fn from_bools(rows: usize, cols: usize, bits: &[bool]) -> Result<Self> {
        if bits.len() != rows * cols {
            return Err(BitnnError::ShapeMismatch {
                expected: format!("{} bits", rows * cols),
                got: format!("{}", bits.len()),
            });
        }
        let mut m = PackedMatrix::zeros(rows, cols);
        for r in 0..rows {
            for c in 0..cols {
                if bits[r * cols + c] {
                    m.set(r, c, true);
                }
            }
        }
        Ok(m)
    }

    /// Row count.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Column (bit) count.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Lanes per row.
    pub fn lanes(&self) -> usize {
        self.lanes
    }

    /// Set a bit.
    ///
    /// # Panics
    ///
    /// Panics if out of range.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: bool) {
        assert!(r < self.rows && c < self.cols, "({r},{c}) out of range");
        let idx = r * self.lanes + c / LANE_BITS;
        if v {
            self.data[idx] |= 1 << (c % LANE_BITS);
        } else {
            self.data[idx] &= !(1 << (c % LANE_BITS));
        }
    }

    /// Read a bit.
    ///
    /// # Panics
    ///
    /// Panics if out of range.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> bool {
        assert!(r < self.rows && c < self.cols, "({r},{c}) out of range");
        (self.data[r * self.lanes + c / LANE_BITS] >> (c % LANE_BITS)) & 1 == 1
    }

    /// The packed lanes of row `r`.
    #[inline]
    pub fn row(&self, r: usize) -> &[u64] {
        &self.data[r * self.lanes..(r + 1) * self.lanes]
    }

    /// Mutable packed lanes of row `r`.
    #[inline]
    pub fn row_mut(&mut self, r: usize) -> &mut [u64] {
        &mut self.data[r * self.lanes..(r + 1) * self.lanes]
    }

    /// Raw words.
    pub fn words(&self) -> &[u64] {
        &self.data
    }
}

/// Binary GEMM: `out[m][n] = dot(a.row(m), b.row(n))` in the ±1 domain.
///
/// `b` is interpreted row-wise (i.e. already "transposed"): each row of `b`
/// is one output column's weight vector, which matches how binary dense
/// layers store one packed row per output neuron.
///
/// # Errors
///
/// Returns [`BitnnError::DimMismatch`] if the inner dimensions differ.
pub fn gemm_binary(a: &PackedMatrix, b: &PackedMatrix) -> Result<Vec<i32>> {
    if a.cols != b.cols {
        return Err(BitnnError::DimMismatch {
            op: "gemm_binary",
            lhs: vec![a.rows, a.cols],
            rhs: vec![b.rows, b.cols],
        });
    }
    let k = a.cols;
    let mut out = vec![0i32; a.rows * b.rows];
    for m in 0..a.rows {
        let ra = a.row(m);
        for n in 0..b.rows {
            let agree = dot_channels(ra, b.row(n), k);
            out[m * b.rows + n] = 2 * agree as i32 - k as i32;
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn sign(b: bool) -> i32 {
        if b {
            1
        } else {
            -1
        }
    }

    fn reference_gemm(a: &[bool], b: &[bool], m: usize, n: usize, k: usize) -> Vec<i32> {
        let mut out = vec![0i32; m * n];
        for i in 0..m {
            for j in 0..n {
                out[i * n + j] = (0..k)
                    .map(|x| sign(a[i * k + x]) * sign(b[j * k + x]))
                    .sum();
            }
        }
        out
    }

    #[test]
    fn identity_like_product() {
        // Row equal to itself -> +k; complement -> -k.
        let k = 100;
        let bits: Vec<bool> = (0..k).map(|i| i % 3 == 0).collect();
        let nbits: Vec<bool> = bits.iter().map(|b| !b).collect();
        let a = PackedMatrix::from_bools(1, k, &bits).unwrap();
        let mut b_bits = bits.clone();
        b_bits.extend_from_slice(&nbits);
        let b = PackedMatrix::from_bools(2, k, &b_bits).unwrap();
        let out = gemm_binary(&a, &b).unwrap();
        assert_eq!(out, vec![k as i32, -(k as i32)]);
    }

    #[test]
    fn dim_mismatch_is_error() {
        let a = PackedMatrix::zeros(2, 10);
        let b = PackedMatrix::zeros(3, 11);
        assert!(matches!(
            gemm_binary(&a, &b),
            Err(BitnnError::DimMismatch { .. })
        ));
    }

    #[test]
    fn set_get_roundtrip_cross_lane() {
        let mut m = PackedMatrix::zeros(2, 130);
        m.set(1, 129, true);
        m.set(0, 63, true);
        m.set(0, 64, true);
        assert!(m.get(1, 129) && m.get(0, 63) && m.get(0, 64));
        assert!(!m.get(1, 128));
        m.set(0, 64, false);
        assert!(!m.get(0, 64));
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn gemm_matches_reference(
            m in 1usize..4, n in 1usize..4, k in 1usize..150,
            seed in any::<u64>()
        ) {
            let mut s = seed | 1;
            let mut next = || {
                s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                s >> 63 == 1
            };
            let a_bits: Vec<bool> = (0..m * k).map(|_| next()).collect();
            let b_bits: Vec<bool> = (0..n * k).map(|_| next()).collect();
            let a = PackedMatrix::from_bools(m, k, &a_bits).unwrap();
            let b = PackedMatrix::from_bools(n, k, &b_bits).unwrap();
            let got = gemm_binary(&a, &b).unwrap();
            prop_assert_eq!(got, reference_gemm(&a_bits, &b_bits, m, n, k));
        }
    }
}
