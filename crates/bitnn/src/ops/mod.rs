//! Binary compute kernels: dot products, GEMM, and convolutions.
//!
//! Every packed kernel here has a full-precision oracle in [`mod@reference`]
//! that operates on ±1 floats; the test suites assert bit-exact agreement
//! (the binary dot product is an integer, so "bit-exact" is meaningful).
//!
//! Padding semantics: spatial padding inserts the value `-1` (bit `0`).
//! This is the convention used by binary inference frameworks since a `0`
//! bit already decodes to `-1`, and both the packed and reference paths
//! implement it identically (see `DESIGN.md`).

pub mod bankconv;
pub mod conv;
pub mod dot;
pub mod gemm;
pub mod im2col;
pub mod reference;
pub mod streamconv;

pub use bankconv::{conv2d_bank, BankScratch};
pub use conv::{conv2d_binary, Conv2dParams};
pub use dot::{dot_channels, DotAcc};
pub use gemm::{gemm_binary, gemm_binary_into, gemm_binary_naive, PackedMatrix};
pub use im2col::{conv2d_im2col, im2col_kernel, im2col_kernel_packed, im2col_pack};
