//! Direct binary convolution over channel-packed operands.
//!
//! For each output pixel and filter the inner product walks the kernel's
//! spatial positions; at each in-bounds position one xnor-popcount over the
//! channel lanes is accumulated (this is the loop the decoding unit feeds in
//! the paper's hardware scheme). Out-of-bounds positions contribute the
//! padding value `-1` for every channel, which has the closed form
//! `agree = C - ones(w_p)` — the weight bits that are `0` (`-1`) agree with
//! the padding.

use crate::error::{BitnnError, Result};
use crate::ops::dot::{dot_channels, dot_channels_seed};
use crate::pack::{PackedActivations, PackedKernel};
use crate::tensor::Tensor;

/// Convolution hyper-parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Conv2dParams {
    /// Spatial stride (same in both dimensions).
    pub stride: usize,
    /// Spatial zero-padding (pad value is `-1`; same in both dimensions).
    pub pad: usize,
}

impl Default for Conv2dParams {
    fn default() -> Self {
        Conv2dParams { stride: 1, pad: 0 }
    }
}

impl Conv2dParams {
    /// Output spatial size for an input of size `n` and kernel size `k`.
    ///
    /// # Panics
    ///
    /// Panics if the configuration yields no output pixels.
    pub fn out_dim(&self, n: usize, k: usize) -> usize {
        let padded = n + 2 * self.pad;
        assert!(padded >= k, "kernel larger than padded input");
        (padded - k) / self.stride + 1
    }
}

/// Per-filter, per-position popcounts of the kernel weights, used for the
/// padding closed form. `ones[k * positions + p]` = number of `1` bits among
/// the `C` channels of filter `k` at position `p`.
pub(crate) fn kernel_position_ones(kernel: &PackedKernel) -> Vec<u32> {
    let positions = kernel.kh() * kernel.kw();
    let c = kernel.channels();
    let full = c / 64;
    let rem = c % 64;
    let mut ones = vec![0u32; kernel.filters() * positions];
    for k in 0..kernel.filters() {
        for p in 0..positions {
            let lanes = kernel.position_lanes(k, p);
            let mut acc = 0u32;
            for &lane in &lanes[..full] {
                acc += lane.count_ones();
            }
            if rem > 0 {
                acc += (lanes[full] & crate::bitword::mask(rem)).count_ones();
            }
            ones[k * positions + p] = acc;
        }
    }
    ones
}

/// Binary 2-D convolution producing integer dot products as `f32`.
///
/// Output shape is `[N, K, OH, OW]`; each element is the ±1-domain inner
/// product `2 * popcount(xnor) - 9C` (for a 3×3 kernel), i.e. exactly what a
/// full-precision convolution of the ±1 tensors (with `-1` padding) yields.
///
/// This is the seed's scalar direct convolution, frozen (down to the
/// single-accumulator channel dot) as the perf-tracking baseline and
/// correctness oracle; the fast path is [`crate::engine::Engine::conv2d`].
///
/// # Errors
///
/// Returns [`BitnnError::DimMismatch`] when the channel counts disagree.
pub fn conv2d_binary(
    acts: &PackedActivations,
    kernel: &PackedKernel,
    params: Conv2dParams,
) -> Result<Tensor> {
    if acts.channels() != kernel.channels() {
        return Err(BitnnError::DimMismatch {
            op: "conv2d_binary",
            lhs: vec![acts.channels()],
            rhs: vec![kernel.channels()],
        });
    }
    let (n, c, h, w) = (acts.batch(), acts.channels(), acts.height(), acts.width());
    let (kf, kh, kw) = (kernel.filters(), kernel.kh(), kernel.kw());
    let oh = params.out_dim(h, kh);
    let ow = params.out_dim(w, kw);
    let positions = kh * kw;
    let total_bits = (positions * c) as i32;
    let pad_ones = kernel_position_ones(kernel);

    let mut out = Tensor::zeros(&[n, kf, oh, ow]);
    for img in 0..n {
        for k in 0..kf {
            for oy in 0..oh {
                for ox in 0..ow {
                    let mut agree = 0u32;
                    for ky in 0..kh {
                        for kx in 0..kw {
                            let iy = (oy * params.stride + ky) as isize - params.pad as isize;
                            let ix = (ox * params.stride + kx) as isize - params.pad as isize;
                            let p = ky * kw + kx;
                            if iy >= 0 && iy < h as isize && ix >= 0 && ix < w as isize {
                                agree += dot_channels_seed(
                                    acts.pixel_lanes(img, iy as usize, ix as usize),
                                    kernel.position_lanes(k, p),
                                    c,
                                );
                            } else {
                                // Padding: every channel is -1 (bit 0); the
                                // weight bits that are 0 agree.
                                agree += c as u32 - pad_ones[k * positions + p];
                            }
                        }
                    }
                    out.set4(img, k, oy, ox, (2 * agree as i32 - total_bits) as f32);
                }
            }
        }
    }
    Ok(out)
}

/// Direct convolution of a contiguous band of output rows.
///
/// One "item" is an `(img, filter, oy)` triple — `ow` output pixels — and
/// the band covers items `row_start ..` for `out.len() / ow` items. This is
/// the worker body the [`crate::engine::Engine`] hands to each thread with
/// a disjoint slice of the output tensor; computing the whole tensor with
/// `row_start = 0` reproduces [`conv2d_binary`] exactly. Dispatches to an
/// AVX2+popcnt instantiation when the CPU has one (see [`crate::simd`]).
#[inline]
pub(crate) fn conv2d_direct_rows(
    acts: &PackedActivations,
    kernel: &PackedKernel,
    params: Conv2dParams,
    pad_ones: &[u32],
    row_start: usize,
    out: &mut [f32],
) {
    #[cfg(target_arch = "x86_64")]
    {
        /// AVX-512 instantiation of [`conv2d_direct_rows_portable`]: the
        /// channel-dot `count_ones` loops compile to hardware `vpopcntq`.
        #[target_feature(enable = "avx512f,avx512bw,avx512vpopcntdq,popcnt")]
        unsafe fn conv2d_direct_rows_avx512(
            acts: &PackedActivations,
            kernel: &PackedKernel,
            params: Conv2dParams,
            pad_ones: &[u32],
            row_start: usize,
            out: &mut [f32],
        ) {
            conv2d_direct_rows_portable(acts, kernel, params, pad_ones, row_start, out);
        }
        /// AVX2+popcnt instantiation of [`conv2d_direct_rows_portable`].
        #[target_feature(enable = "avx2,popcnt")]
        unsafe fn conv2d_direct_rows_avx2(
            acts: &PackedActivations,
            kernel: &PackedKernel,
            params: Conv2dParams,
            pad_ones: &[u32],
            row_start: usize,
            out: &mut [f32],
        ) {
            conv2d_direct_rows_portable(acts, kernel, params, pad_ones, row_start, out);
        }
        if crate::simd::avx512() {
            // SAFETY: avx512f/bw/vpopcntdq + popcnt were detected at runtime.
            return unsafe {
                conv2d_direct_rows_avx512(acts, kernel, params, pad_ones, row_start, out)
            };
        }
        if crate::simd::avx2() {
            // SAFETY: avx2 + popcnt were detected at runtime.
            return unsafe {
                conv2d_direct_rows_avx2(acts, kernel, params, pad_ones, row_start, out)
            };
        }
    }
    conv2d_direct_rows_portable(acts, kernel, params, pad_ones, row_start, out);
}

/// Portable body of [`conv2d_direct_rows`].
#[inline(always)]
fn conv2d_direct_rows_portable(
    acts: &PackedActivations,
    kernel: &PackedKernel,
    params: Conv2dParams,
    pad_ones: &[u32],
    row_start: usize,
    out: &mut [f32],
) {
    let (c, h, w) = (acts.channels(), acts.height(), acts.width());
    let (kf, kh, kw) = (kernel.filters(), kernel.kh(), kernel.kw());
    let oh = params.out_dim(h, kh);
    let ow = params.out_dim(w, kw);
    let positions = kh * kw;
    let total_bits = (positions * c) as i32;
    for (r, orow) in out.chunks_mut(ow).enumerate() {
        let global = row_start + r;
        let oy = global % oh;
        let k = (global / oh) % kf;
        let img = global / (oh * kf);
        for (ox, o) in orow.iter_mut().enumerate() {
            let mut agree = 0u32;
            for ky in 0..kh {
                let iy = (oy * params.stride + ky) as isize - params.pad as isize;
                for kx in 0..kw {
                    let ix = (ox * params.stride + kx) as isize - params.pad as isize;
                    let p = ky * kw + kx;
                    if iy >= 0 && iy < h as isize && ix >= 0 && ix < w as isize {
                        agree += dot_channels(
                            acts.pixel_lanes(img, iy as usize, ix as usize),
                            kernel.position_lanes(k, p),
                            c,
                        );
                    } else {
                        agree += c as u32 - pad_ones[k * positions + p];
                    }
                }
            }
            *o = (2 * agree as i32 - total_bits) as f32;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::reference::conv2d_reference;
    use crate::tensor::BitTensor;
    use proptest::prelude::*;

    fn random_bits(shape: &[usize], seed: u64) -> BitTensor {
        let mut t = BitTensor::zeros(shape);
        let mut s = seed | 1;
        for i in 0..t.len() {
            s = s
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            if s >> 63 == 1 {
                t.set(i, true);
            }
        }
        t
    }

    #[test]
    fn out_dim_formula() {
        let p = Conv2dParams { stride: 2, pad: 1 };
        assert_eq!(p.out_dim(224, 3), 112);
        let p = Conv2dParams { stride: 1, pad: 1 };
        assert_eq!(p.out_dim(7, 3), 7);
        let p = Conv2dParams { stride: 1, pad: 0 };
        assert_eq!(p.out_dim(3, 3), 1);
    }

    #[test]
    fn all_ones_kernel_counts_input() {
        // Kernel of all +1: output = sum of input signs over the window.
        let a = random_bits(&[1, 8, 4, 4], 3);
        let mut wk = BitTensor::zeros(&[1, 8, 3, 3]);
        for i in 0..wk.len() {
            wk.set(i, true);
        }
        let pa = PackedActivations::pack(&a).unwrap();
        let pk = PackedKernel::pack(&wk).unwrap();
        let out = conv2d_binary(&pa, &pk, Conv2dParams::default()).unwrap();
        // Reference: sum signs in the 3x3x8 window at (0,0).
        let mut expect = 0i32;
        for c in 0..8 {
            for y in 0..3 {
                for x in 0..3 {
                    expect += a.sign_at4(0, c, y, x);
                }
            }
        }
        assert_eq!(out.at4(0, 0, 0, 0), expect as f32);
    }

    #[test]
    fn channel_mismatch_is_error() {
        let a = PackedActivations::pack(&BitTensor::zeros(&[1, 8, 4, 4])).unwrap();
        let k = PackedKernel::pack(&BitTensor::zeros(&[1, 16, 3, 3])).unwrap();
        assert!(conv2d_binary(&a, &k, Conv2dParams::default()).is_err());
    }

    #[test]
    fn padding_counts_as_minus_one() {
        // All-zero input, all-zero kernel (-1 everywhere), pad=1:
        // every bit agrees everywhere including padding -> full positive.
        let a = PackedActivations::pack(&BitTensor::zeros(&[1, 4, 3, 3])).unwrap();
        let k = PackedKernel::pack(&BitTensor::zeros(&[1, 4, 3, 3])).unwrap();
        let out = conv2d_binary(&a, &k, Conv2dParams { stride: 1, pad: 1 }).unwrap();
        // 9 positions * 4 channels = 36 bits, all agree -> +36 at every pixel.
        for &v in out.data() {
            assert_eq!(v, 36.0);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]

        #[test]
        fn conv_matches_float_reference(
            c in 1usize..70,
            h in 3usize..7,
            w in 3usize..7,
            kf in 1usize..3,
            stride in 1usize..3,
            pad in 0usize..2,
            seed in any::<u64>()
        ) {
            let a = random_bits(&[1, c, h, w], seed);
            let wk = random_bits(&[kf, c, 3, 3], seed ^ 0xdead_beef);
            let pa = PackedActivations::pack(&a).unwrap();
            let pk = PackedKernel::pack(&wk).unwrap();
            let params = Conv2dParams { stride, pad };
            let got = conv2d_binary(&pa, &pk, params).unwrap();
            let expect = conv2d_reference(&a.to_tensor(), &wk.to_tensor(), params);
            prop_assert_eq!(got.shape(), expect.shape());
            for (g, e) in got.data().iter().zip(expect.data()) {
                prop_assert_eq!(*g, *e);
            }
        }
    }
}
