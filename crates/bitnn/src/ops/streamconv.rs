//! Im2col-free streaming direct binary convolution.
//!
//! The im2col lowering wins on raw GEMM throughput but pays for it twice:
//! a `[OH*OW, C*KH*KW]` bit matrix is materialized per conv, and every
//! output pixel re-reads its window out of that copy. The streaming path
//! keeps the channel-packed activation rows *resident* — each input row is
//! packed into lane words exactly once (by the sign stage) — and derives
//! every 3x3 window on the fly from three resident rows: nine lane-word
//! loads, no staging buffer, no blit.
//!
//! Scheduling is *weight-stationary over a filter block*: one work item is
//! an `(img, filter)` output plane, and up to [`FILTER_BLOCK`] consecutive
//! filters of the same image are computed together so each activation word
//! is loaded once and xnor-popcounted against every filter in the block.
//! This is the CPU analogue of the paper's compute units streaming one
//! activation window past a stationary weight set.
//!
//! Two cores share the band contract:
//!
//! * a stride/pad-general path for any kernel geometry and channel count,
//!   bit-exact with [`crate::ops::conv::conv2d_binary`] by construction;
//! * a fast path for 3x3 kernels with `C <= 64` (one lane word per pixel,
//!   every ReActNet/VGG-small interior conv) that hoists the nine weight
//!   words per filter into locals and runs the interior columns branch-free
//!   with full-word popcounts plus a closed-form tail correction.
//!
//! AVX2/AVX-512 instantiations sit next to the existing direct-conv
//! dispatch (see [`crate::simd`]); the portable body is the oracle.

use crate::ops::conv::Conv2dParams;
use crate::ops::dot::dot_channels;
use crate::pack::{PackedActivations, PackedKernel};

/// Filters computed together per image: the weight-stationary block width.
/// Four blocks of nine `u64` weight words fit comfortably in registers on
/// x86-64 while quadrupling the reuse of every loaded activation word.
pub(crate) const FILTER_BLOCK: usize = 4;

/// Streaming convolution of a contiguous band of output planes.
///
/// One "item" is an `(img, filter)` pair — a full `OH*OW` output plane —
/// and the band covers items `item_start ..` for `out.len() / (OH*OW)`
/// items, ordered filter-minor (`item = img * KF + filter`), matching the
/// `[N, KF, OH, OW]` output layout. Computing the whole tensor with
/// `item_start = 0` reproduces [`crate::ops::conv::conv2d_binary`] exactly.
/// This is the worker body [`crate::engine::Engine`] hands to each thread
/// with a disjoint slice of the output tensor. Dispatches to AVX-512 or
/// AVX2+popcnt instantiations when the CPU has them.
#[inline]
pub(crate) fn conv2d_stream_items(
    acts: &PackedActivations,
    kernel: &PackedKernel,
    params: Conv2dParams,
    pad_ones: &[u32],
    item_start: usize,
    out: &mut [f32],
) {
    #[cfg(target_arch = "x86_64")]
    {
        /// AVX-512 instantiation of [`conv2d_stream_items_portable`]: the
        /// xnor-popcount loops compile to hardware `vpopcntq`.
        #[target_feature(enable = "avx512f,avx512bw,avx512vpopcntdq,popcnt")]
        unsafe fn conv2d_stream_items_avx512(
            acts: &PackedActivations,
            kernel: &PackedKernel,
            params: Conv2dParams,
            pad_ones: &[u32],
            item_start: usize,
            out: &mut [f32],
        ) {
            conv2d_stream_items_portable(acts, kernel, params, pad_ones, item_start, out);
        }
        /// AVX2+popcnt instantiation of [`conv2d_stream_items_portable`].
        #[target_feature(enable = "avx2,popcnt")]
        unsafe fn conv2d_stream_items_avx2(
            acts: &PackedActivations,
            kernel: &PackedKernel,
            params: Conv2dParams,
            pad_ones: &[u32],
            item_start: usize,
            out: &mut [f32],
        ) {
            conv2d_stream_items_portable(acts, kernel, params, pad_ones, item_start, out);
        }
        if crate::simd::avx512() {
            // SAFETY: avx512f/bw/vpopcntdq + popcnt were detected at runtime.
            return unsafe {
                conv2d_stream_items_avx512(acts, kernel, params, pad_ones, item_start, out)
            };
        }
        if crate::simd::avx2() {
            // SAFETY: avx2 + popcnt were detected at runtime.
            return unsafe {
                conv2d_stream_items_avx2(acts, kernel, params, pad_ones, item_start, out)
            };
        }
    }
    conv2d_stream_items_portable(acts, kernel, params, pad_ones, item_start, out);
}

/// Portable body of [`conv2d_stream_items`]: walk the band in filter
/// blocks, routing each block to the 3x3 single-lane fast path when the
/// geometry allows and the general streaming core otherwise.
#[inline(always)]
fn conv2d_stream_items_portable(
    acts: &PackedActivations,
    kernel: &PackedKernel,
    params: Conv2dParams,
    pad_ones: &[u32],
    item_start: usize,
    out: &mut [f32],
) {
    let (kf, kh, kw) = (kernel.filters(), kernel.kh(), kernel.kw());
    let oh = params.out_dim(acts.height(), kh);
    let ow = params.out_dim(acts.width(), kw);
    let ohw = oh * ow;
    let items = out.len() / ohw;
    let fast3 = kh == 3 && kw == 3 && acts.lanes() == 1;
    let mut done = 0usize;
    while done < items {
        let global = item_start + done;
        let k0 = global % kf;
        let img = global / kf;
        // A block never crosses an image boundary: consecutive filters of
        // one image share its resident rows.
        let nb = (kf - k0).min(items - done).min(FILTER_BLOCK);
        let band = &mut out[done * ohw..(done + nb) * ohw];
        if fast3 {
            match nb {
                1 => stream3_block::<1>(acts, kernel, params, pad_ones, img, k0, band),
                2 => stream3_block::<2>(acts, kernel, params, pad_ones, img, k0, band),
                3 => stream3_block::<3>(acts, kernel, params, pad_ones, img, k0, band),
                _ => stream3_block::<4>(acts, kernel, params, pad_ones, img, k0, band),
            }
        } else {
            stream_general(acts, kernel, params, pad_ones, img, k0, nb, band);
        }
        done += nb;
    }
}

/// General streaming core: any kernel geometry, any channel count. Each
/// activation pixel's lane slice is loaded once per kernel position and
/// dotted against all `nb` filters in the block.
#[inline(always)]
#[allow(clippy::too_many_arguments)]
fn stream_general(
    acts: &PackedActivations,
    kernel: &PackedKernel,
    params: Conv2dParams,
    pad_ones: &[u32],
    img: usize,
    k0: usize,
    nb: usize,
    band: &mut [f32],
) {
    let (c, h, w) = (acts.channels(), acts.height(), acts.width());
    let (kh, kw) = (kernel.kh(), kernel.kw());
    let oh = params.out_dim(h, kh);
    let ow = params.out_dim(w, kw);
    let ohw = oh * ow;
    let positions = kh * kw;
    let total_bits = (positions * c) as i32;
    for oy in 0..oh {
        for ox in 0..ow {
            let mut agree = [0u32; FILTER_BLOCK];
            for ky in 0..kh {
                let iy = (oy * params.stride + ky) as isize - params.pad as isize;
                for kx in 0..kw {
                    let ix = (ox * params.stride + kx) as isize - params.pad as isize;
                    let p = ky * kw + kx;
                    if iy >= 0 && iy < h as isize && ix >= 0 && ix < w as isize {
                        let a = acts.pixel_lanes(img, iy as usize, ix as usize);
                        for (j, acc) in agree[..nb].iter_mut().enumerate() {
                            *acc += dot_channels(a, kernel.position_lanes(k0 + j, p), c);
                        }
                    } else {
                        for (j, acc) in agree[..nb].iter_mut().enumerate() {
                            *acc += c as u32 - pad_ones[(k0 + j) * positions + p];
                        }
                    }
                }
            }
            for (j, &acc) in agree[..nb].iter().enumerate() {
                band[j * ohw + oy * ow + ox] = (2 * acc as i32 - total_bits) as f32;
            }
        }
    }
}

/// 3x3 single-lane fast path over a block of `NB` filters.
///
/// The nine weight words per filter are hoisted into locals; per output
/// row the three input-row bounds are resolved once (with the closed-form
/// padding contribution of any out-of-bounds rows), and the interior
/// columns — where all three window columns are in bounds — run branch
/// free: three resident-row loads per row, `3 * NB` xnor-popcounts, and a
/// single tail correction (clean-tail words xnor to spurious agreements in
/// the unused high bits, `3 * rows_in_bounds * tail_bits` of them).
#[inline(always)]
fn stream3_block<const NB: usize>(
    acts: &PackedActivations,
    kernel: &PackedKernel,
    params: Conv2dParams,
    pad_ones: &[u32],
    img: usize,
    k0: usize,
    band: &mut [f32],
) {
    let (c, h, w) = (acts.channels(), acts.height(), acts.width());
    let oh = params.out_dim(h, 3);
    let ow = params.out_dim(w, 3);
    let ohw = oh * ow;
    let total_bits = (9 * c) as i32;
    let tail = ((64 - (c % 64)) % 64) as u32;
    let cmask = if c % 64 == 0 {
        u64::MAX
    } else {
        crate::bitword::mask(c % 64)
    };
    let (stride, pad) = (params.stride, params.pad);
    let words = acts.words();

    let mut wq = [[0u64; 9]; NB];
    for (j, wf) in wq.iter_mut().enumerate() {
        for (p, wp) in wf.iter_mut().enumerate() {
            *wp = kernel.position_lanes(k0 + j, p)[0];
        }
    }

    // Interior column range: every `ox` in `[x_lo, x_hi)` has all three
    // window columns in bounds (`0 <= ox*stride + kx - pad < w`).
    let x_lo = pad.div_ceil(stride).min(ow);
    let x_hi = if w + pad >= 3 {
        (((w + pad - 3) / stride) + 1).min(ow).max(x_lo)
    } else {
        x_lo
    };

    // Bounds-checked single pixel, used for the edge columns where part
    // of the window hangs over the left/right border. Masked popcounts,
    // so no tail correction applies here.
    let edge_pixel = |oy: usize, ox: usize| -> [u32; NB] {
        let mut agree = [0u32; NB];
        for ky in 0..3 {
            let iy = (oy * stride + ky) as isize - pad as isize;
            for kx in 0..3 {
                let ix = (ox * stride + kx) as isize - pad as isize;
                let p = ky * 3 + kx;
                if iy >= 0 && iy < h as isize && ix >= 0 && ix < w as isize {
                    let a = words[(img * h + iy as usize) * w + ix as usize];
                    for (j, acc) in agree.iter_mut().enumerate() {
                        *acc += ((!(a ^ wq[j][p])) & cmask).count_ones();
                    }
                } else {
                    for (j, acc) in agree.iter_mut().enumerate() {
                        *acc += c as u32 - pad_ones[(k0 + j) * 9 + p];
                    }
                }
            }
        }
        agree
    };

    for oy in 0..oh {
        // Resolve the three input rows once per output row.
        let mut inb = [false; 3];
        let mut iy = [0usize; 3];
        let mut rows_in = 0u32;
        let mut row_pad = [0u32; NB];
        for ky in 0..3 {
            let y = (oy * stride + ky) as isize - pad as isize;
            if y >= 0 && (y as usize) < h {
                inb[ky] = true;
                iy[ky] = y as usize;
                rows_in += 1;
            } else {
                for (j, acc) in row_pad.iter_mut().enumerate() {
                    for kx in 0..3 {
                        *acc += c as u32 - pad_ones[(k0 + j) * 9 + ky * 3 + kx];
                    }
                }
            }
        }
        let corr = 3 * rows_in * tail;

        for ox in 0..x_lo {
            let agree = edge_pixel(oy, ox);
            for (j, &acc) in agree.iter().enumerate() {
                band[j * ohw + oy * ow + ox] = (2 * acc as i32 - total_bits) as f32;
            }
        }
        for ox in x_lo..x_hi {
            let ix0 = ox * stride - pad;
            let mut agree = row_pad;
            for ky in 0..3 {
                if !inb[ky] {
                    continue;
                }
                let base = (img * h + iy[ky]) * w + ix0;
                let (a0, a1, a2) = (words[base], words[base + 1], words[base + 2]);
                for (j, acc) in agree.iter_mut().enumerate() {
                    *acc += (!(a0 ^ wq[j][ky * 3])).count_ones()
                        + (!(a1 ^ wq[j][ky * 3 + 1])).count_ones()
                        + (!(a2 ^ wq[j][ky * 3 + 2])).count_ones();
                }
            }
            for (j, &acc) in agree.iter().enumerate() {
                band[j * ohw + oy * ow + ox] = (2 * (acc - corr) as i32 - total_bits) as f32;
            }
        }
        for ox in x_hi..ow {
            let agree = edge_pixel(oy, ox);
            for (j, &acc) in agree.iter().enumerate() {
                band[j * ohw + oy * ow + ox] = (2 * acc as i32 - total_bits) as f32;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::conv::{conv2d_binary, kernel_position_ones};
    use crate::tensor::BitTensor;
    use proptest::prelude::*;

    fn random_bits(shape: &[usize], seed: u64) -> BitTensor {
        let mut t = BitTensor::zeros(shape);
        let mut s = seed | 1;
        for i in 0..t.len() {
            s = s
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            if s >> 63 == 1 {
                t.set(i, true);
            }
        }
        t
    }

    fn stream_full(
        acts: &PackedActivations,
        kernel: &PackedKernel,
        params: Conv2dParams,
    ) -> crate::tensor::Tensor {
        let oh = params.out_dim(acts.height(), kernel.kh());
        let ow = params.out_dim(acts.width(), kernel.kw());
        let pad_ones = kernel_position_ones(kernel);
        let mut out = crate::tensor::Tensor::zeros(&[acts.batch(), kernel.filters(), oh, ow]);
        conv2d_stream_items(acts, kernel, params, &pad_ones, 0, out.data_mut());
        out
    }

    fn assert_stream_matches(
        shape_a: &[usize],
        shape_k: &[usize],
        params: Conv2dParams,
        seed: u64,
    ) {
        let a = random_bits(shape_a, seed);
        let k = random_bits(shape_k, seed ^ 0x5EED);
        let pa = PackedActivations::pack(&a).unwrap();
        let pk = PackedKernel::pack(&k).unwrap();
        let expect = conv2d_binary(&pa, &pk, params).unwrap();
        let got = stream_full(&pa, &pk, params);
        assert_eq!(got.shape(), expect.shape());
        assert_eq!(got.data(), expect.data());
    }

    #[test]
    fn matches_oracle_on_gated_shape() {
        // The perfsuite's gated geometry: 28x28, c=64, 64 filters, pad 1.
        assert_stream_matches(
            &[1, 64, 28, 28],
            &[64, 64, 3, 3],
            Conv2dParams { stride: 1, pad: 1 },
            11,
        );
    }

    #[test]
    fn matches_oracle_on_degenerate_rows_and_cols() {
        // 1-row and 1-col inputs only produce output with pad >= 1.
        let p = Conv2dParams { stride: 1, pad: 1 };
        assert_stream_matches(&[2, 5, 1, 9], &[3, 5, 3, 3], p, 21);
        assert_stream_matches(&[2, 5, 9, 1], &[3, 5, 3, 3], p, 22);
        assert_stream_matches(&[1, 64, 1, 1], &[7, 64, 3, 3], p, 23);
    }

    #[test]
    fn matches_oracle_on_stride_two_no_pad() {
        let p = Conv2dParams { stride: 2, pad: 0 };
        assert_stream_matches(&[2, 64, 11, 13], &[9, 64, 3, 3], p, 31);
        assert_stream_matches(&[1, 33, 8, 8], &[5, 33, 3, 3], p, 32);
    }

    #[test]
    fn band_start_mid_tensor_matches_full_run() {
        // The band contract: starting mid-tensor writes the same values
        // the full run puts there (filter block seams land anywhere).
        let a = random_bits(&[3, 40, 6, 7], 77);
        let k = random_bits(&[6, 40, 3, 3], 78);
        let pa = PackedActivations::pack(&a).unwrap();
        let pk = PackedKernel::pack(&k).unwrap();
        let params = Conv2dParams { stride: 1, pad: 1 };
        let full = stream_full(&pa, &pk, params);
        let ohw = 6 * 7;
        let pad_ones = kernel_position_ones(&pk);
        for start in [1usize, 5, 7, 11, 17] {
            let items = 3 * 6 - start;
            let mut band = vec![0f32; items * ohw];
            conv2d_stream_items(&pa, &pk, params, &pad_ones, start, &mut band);
            assert_eq!(&band[..], &full.data()[start * ohw..], "start={start}");
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn stream_matches_scalar_oracle(
            c in 1usize..70,
            h in 1usize..8,
            w in 1usize..8,
            n in 1usize..3,
            kf in 1usize..7,
            ks in 1usize..4,
            stride in 1usize..3,
            pad in 0usize..2,
            seed in any::<u64>()
        ) {
            // Keep the geometry valid: the padded input must cover the kernel.
            prop_assume!(h + 2 * pad >= ks && w + 2 * pad >= ks);
            let a = random_bits(&[n, c, h, w], seed);
            let k = random_bits(&[kf, c, ks, ks], seed ^ 0xF00D);
            let pa = PackedActivations::pack(&a).unwrap();
            let pk = PackedKernel::pack(&k).unwrap();
            let params = Conv2dParams { stride, pad };
            let expect = conv2d_binary(&pa, &pk, params).unwrap();
            let got = stream_full(&pa, &pk, params);
            prop_assert_eq!(got.shape(), expect.shape());
            prop_assert_eq!(got.data(), expect.data());
        }
    }
}
