//! Full-precision oracle implementations.
//!
//! These run on ±1 float tensors and define the semantics that the packed
//! binary kernels must reproduce exactly. They are deliberately naive —
//! clarity over speed — and are used by unit/property tests and by the
//! accuracy-proxy experiment.

use crate::ops::conv::Conv2dParams;
use crate::tensor::Tensor;

/// Naive float 2-D convolution with `-1` padding.
///
/// Input `[N, C, H, W]`, kernel `[K, C, KH, KW]`, output `[N, K, OH, OW]`.
///
/// # Panics
///
/// Panics if the channel dimensions disagree or the kernel does not fit.
pub fn conv2d_reference(input: &Tensor, kernel: &Tensor, params: Conv2dParams) -> Tensor {
    let ishape = input.shape();
    let kshape = kernel.shape();
    assert_eq!(ishape.len(), 4, "input must be 4-D");
    assert_eq!(kshape.len(), 4, "kernel must be 4-D");
    assert_eq!(ishape[1], kshape[1], "channel mismatch");
    let (n, c, h, w) = (ishape[0], ishape[1], ishape[2], ishape[3]);
    let (kf, kh, kw) = (kshape[0], kshape[2], kshape[3]);
    let oh = params.out_dim(h, kh);
    let ow = params.out_dim(w, kw);
    let mut out = Tensor::zeros(&[n, kf, oh, ow]);
    for img in 0..n {
        for k in 0..kf {
            for oy in 0..oh {
                for ox in 0..ow {
                    let mut acc = 0.0f32;
                    for ch in 0..c {
                        for ky in 0..kh {
                            for kx in 0..kw {
                                let iy = (oy * params.stride + ky) as isize - params.pad as isize;
                                let ix = (ox * params.stride + kx) as isize - params.pad as isize;
                                let x = if iy >= 0 && iy < h as isize && ix >= 0 && ix < w as isize
                                {
                                    input.at4(img, ch, iy as usize, ix as usize)
                                } else {
                                    -1.0 // padding value in the ±1 domain
                                };
                                acc += x * kernel.at4(k, ch, ky, kx);
                            }
                        }
                    }
                    out.set4(img, k, oy, ox, acc);
                }
            }
        }
    }
    out
}

/// Naive float matrix multiply: `a` is `[m, k]` row-major, `b` is `[n, k]`
/// row-major (one row per output), result `[m, n]`.
///
/// # Panics
///
/// Panics if `a.len() != m * k` or `b.len() != n * k`.
pub fn matmul_reference(a: &[f32], b: &[f32], m: usize, n: usize, k: usize) -> Vec<f32> {
    assert_eq!(a.len(), m * k);
    assert_eq!(b.len(), n * k);
    let mut out = vec![0.0f32; m * n];
    for i in 0..m {
        for j in 0..n {
            let mut acc = 0.0;
            for x in 0..k {
                acc += a[i * k + x] * b[j * k + x];
            }
            out[i * n + j] = acc;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conv_reference_known_value() {
        // 1x1x3x3 input of all +1, kernel all +1: output = 9.
        let input = Tensor::full(&[1, 1, 3, 3], 1.0);
        let kernel = Tensor::full(&[1, 1, 3, 3], 1.0);
        let out = conv2d_reference(&input, &kernel, Conv2dParams::default());
        assert_eq!(out.shape(), &[1, 1, 1, 1]);
        assert_eq!(out.data()[0], 9.0);
    }

    #[test]
    fn conv_reference_padding_is_minus_one() {
        // All +1 input with all +1 kernel and pad=1: the corner pixel sees
        // 4 in-bounds (+1 each) and 5 padding (-1 each) -> -1.
        let input = Tensor::full(&[1, 1, 3, 3], 1.0);
        let kernel = Tensor::full(&[1, 1, 3, 3], 1.0);
        let out = conv2d_reference(&input, &kernel, Conv2dParams { stride: 1, pad: 1 });
        assert_eq!(out.shape(), &[1, 1, 3, 3]);
        assert_eq!(out.at4(0, 0, 0, 0), -1.0);
        assert_eq!(out.at4(0, 0, 1, 1), 9.0);
    }

    #[test]
    fn matmul_reference_identity() {
        // 2x2 identity-ish in ±1 is not meaningful; just check a dot.
        let a = vec![1.0, -1.0, 1.0];
        let b = vec![1.0, 1.0, 1.0];
        let out = matmul_reference(&a, &b, 1, 1, 3);
        assert_eq!(out, vec![1.0]);
    }
}
