//! Channel-wise binary dot products with tail-lane masking.

use crate::bitword::{mask, xnor, xnor_popcount_slice};
use crate::LANE_BITS;

/// Accumulator for multi-position binary dot products.
///
/// Tracks both the number of agreeing bits and the number of bits compared,
/// so the ±1-domain value can be recovered at the end (`2p - n`).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DotAcc {
    /// Agreeing bit count (popcount of xnor).
    pub agree: u32,
    /// Total bits compared.
    pub total: u32,
}

impl DotAcc {
    /// Fresh accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// The ±1-domain dot product accumulated so far.
    #[inline]
    pub fn value(self) -> i32 {
        2 * self.agree as i32 - self.total as i32
    }

    /// Add a pre-computed (agree, total) contribution.
    #[inline]
    pub fn add_raw(&mut self, agree: u32, total: u32) {
        self.agree += agree;
        self.total += total;
    }
}

/// The seed's original channel dot: one accumulator, one lane at a time.
///
/// Frozen bit-for-bit as the scalar baseline that `perfsuite` tracks the
/// engine against — [`crate::ops::conv::conv2d_binary`] and
/// [`crate::ops::gemm::gemm_binary_naive`] call this so their timings keep
/// meaning the seed code path even as [`dot_channels`] evolves.
#[inline]
pub(crate) fn dot_channels_seed(a: &[u64], w: &[u64], c: usize) -> u32 {
    let full = c / LANE_BITS;
    let rem = c % LANE_BITS;
    debug_assert!(a.len() >= full + usize::from(rem > 0));
    debug_assert!(w.len() >= full + usize::from(rem > 0));
    let mut acc = 0u32;
    for l in 0..full {
        acc += crate::bitword::xnor_popcount(a[l], w[l]);
    }
    if rem > 0 {
        acc += (xnor(a[full], w[full]) & mask(rem)).count_ones();
    }
    acc
}

/// Xnor-popcount over `c` channel bits spread across lanes.
///
/// The final lane is masked when `c` is not a multiple of 64 so that the
/// undefined tail bits (which are zero in both operands and would otherwise
/// xnor to *agreements*) do not contribute.
///
/// # Panics
///
/// Panics in debug builds if the slices are shorter than `c` requires.
#[inline(always)]
pub fn dot_channels(a: &[u64], w: &[u64], c: usize) -> u32 {
    let full = c / LANE_BITS;
    let rem = c % LANE_BITS;
    debug_assert!(a.len() >= full + usize::from(rem > 0));
    debug_assert!(w.len() >= full + usize::from(rem > 0));
    // The full lanes go through the unrolled multi-accumulator path.
    let mut acc = xnor_popcount_slice(&a[..full], &w[..full]);
    if rem > 0 {
        acc += (xnor(a[full], w[full]) & mask(rem)).count_ones();
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn reference_dot(a_bits: &[bool], w_bits: &[bool]) -> (u32, i32) {
        let agree = a_bits.iter().zip(w_bits).filter(|(x, y)| x == y).count() as u32;
        let dot: i32 = a_bits
            .iter()
            .zip(w_bits)
            .map(|(&x, &y)| {
                let sx = if x { 1 } else { -1 };
                let sy = if y { 1 } else { -1 };
                sx * sy
            })
            .sum();
        (agree, dot)
    }

    fn pack_bits(bits: &[bool]) -> Vec<u64> {
        let mut v = vec![0u64; bits.len().div_ceil(64).max(1)];
        for (i, &b) in bits.iter().enumerate() {
            if b {
                v[i / 64] |= 1 << (i % 64);
            }
        }
        v
    }

    #[test]
    fn dot_acc_value() {
        let mut acc = DotAcc::new();
        acc.add_raw(9, 9);
        assert_eq!(acc.value(), 9);
        acc.add_raw(0, 9);
        assert_eq!(acc.value(), 0);
    }

    #[test]
    fn masked_tail_does_not_count_agreements() {
        // 65 channels, all bits zero: the 63 unused tail bits of lane 1
        // must not be counted even though they xnor to 1.
        let a = vec![0u64; 2];
        let w = vec![0u64; 2];
        assert_eq!(dot_channels(&a, &w, 65), 65);
    }

    proptest! {
        #[test]
        fn dot_matches_reference(
            bits in proptest::collection::vec((any::<bool>(), any::<bool>()), 1..300)
        ) {
            let a_bits: Vec<bool> = bits.iter().map(|p| p.0).collect();
            let w_bits: Vec<bool> = bits.iter().map(|p| p.1).collect();
            let (agree, dot) = reference_dot(&a_bits, &w_bits);
            let a = pack_bits(&a_bits);
            let w = pack_bits(&w_bits);
            let got = dot_channels(&a, &w, bits.len());
            prop_assert_eq!(got, agree);
            let mut acc = DotAcc::new();
            acc.add_raw(got, bits.len() as u32);
            prop_assert_eq!(acc.value(), dot);
        }
    }
}
