//! im2col lowering of binary convolution to binary GEMM.
//!
//! Each output pixel's receptive field is flattened into one packed row of
//! `KH*KW*C` bits; the kernel is flattened the same way; the convolution is
//! then a [`gemm_binary`] call. This is the alternative lowering daBNN uses
//! for some shapes and serves as a second, independent implementation that
//! the direct convolution is cross-checked against.
//!
//! Padding pixels contribute `-1` for every channel, i.e. zero bits, which
//! is what freshly-zeroed rows already contain — but the *bit count* must
//! still include them, so rows are always `KH*KW*C` bits wide.

use crate::bitword::or_bits;
use crate::error::Result;
use crate::ops::conv::Conv2dParams;
use crate::ops::gemm::{gemm_binary, PackedMatrix};
use crate::pack::{PackedActivations, PackedKernel};
use crate::tensor::{BitTensor, Tensor};

/// Lower packed activations to an im2col matrix.
///
/// Returns a matrix with one row per output pixel (row-major over
/// `[N, OH, OW]`) and `KH*KW*C` columns ordered position-major
/// (`p * C + channel`), matching [`im2col_kernel`].
pub fn im2col_pack(
    acts: &PackedActivations,
    kh: usize,
    kw: usize,
    params: Conv2dParams,
) -> PackedMatrix {
    let mut m = PackedMatrix::default();
    im2col_pack_into(acts, kh, kw, params, &mut m);
    m
}

/// [`im2col_pack`] into a reusable matrix (scratch-buffer reuse).
///
/// The matrix is re-shaped and cleared; its allocation is reused across
/// layers by the execution engine.
pub fn im2col_pack_into(
    acts: &PackedActivations,
    kh: usize,
    kw: usize,
    params: Conv2dParams,
    m: &mut PackedMatrix,
) {
    let (n, c, h, w) = (acts.batch(), acts.channels(), acts.height(), acts.width());
    let oh = params.out_dim(h, kh);
    let ow = params.out_dim(w, kw);
    let rows = n * oh * ow;
    m.reset(rows, kh * kw * c);
    let lanes = m.lanes();
    im2col_rows(
        acts,
        kh,
        kw,
        params,
        0,
        &mut m.words_mut()[..rows * lanes],
        lanes,
    );
}

/// Build a contiguous band of im2col rows starting at `row_start` into
/// `out` (`lanes` words per row; the row count is `out.len() / lanes`).
///
/// Each in-bounds kernel position is copied with one word-level bit blit
/// ([`or_bits`]) of all `C` channel bits instead of per-bit sets; padding
/// positions stay zero (`-1` values). Rows are independent, which is what
/// lets the execution engine chunk them across worker threads.
pub(crate) fn im2col_rows(
    acts: &PackedActivations,
    kh: usize,
    kw: usize,
    params: Conv2dParams,
    row_start: usize,
    out: &mut [u64],
    lanes: usize,
) {
    let (c, h, w) = (acts.channels(), acts.height(), acts.width());
    let oh = params.out_dim(h, kh);
    let ow = params.out_dim(w, kw);
    debug_assert_eq!(out.len() % lanes.max(1), 0);
    for (r, row) in out.chunks_mut(lanes).enumerate() {
        let global = row_start + r;
        let ox = global % ow;
        let oy = (global / ow) % oh;
        let img = global / (ow * oh);
        for ky in 0..kh {
            let iy = (oy * params.stride + ky) as isize - params.pad as isize;
            if iy < 0 || iy >= h as isize {
                continue;
            }
            for kx in 0..kw {
                let ix = (ox * params.stride + kx) as isize - params.pad as isize;
                if ix < 0 || ix >= w as isize {
                    continue;
                }
                let p = ky * kw + kx;
                let px = acts.pixel_lanes(img, iy as usize, ix as usize);
                or_bits(row, p * c, px, c);
            }
        }
    }
}

/// Flatten a binary kernel `[K, C, KH, KW]` into a packed matrix with one
/// row per filter and `KH*KW*C` position-major columns.
pub fn im2col_kernel(weights: &BitTensor) -> PackedMatrix {
    assert_eq!(weights.shape().len(), 4, "kernel must be 4-D");
    im2col_kernel_packed(&PackedKernel::pack(weights).expect("kernel must be 4-D"))
}

/// [`im2col_kernel`] starting from an already channel-packed kernel: each
/// position's channel lanes are blitted into the row with [`or_bits`].
pub fn im2col_kernel_packed(kernel: &PackedKernel) -> PackedMatrix {
    let (k, c) = (kernel.filters(), kernel.channels());
    let positions = kernel.kh() * kernel.kw();
    let mut m = PackedMatrix::zeros(k, positions * c);
    for f in 0..k {
        let row = m.row_mut(f);
        for p in 0..positions {
            or_bits(row, p * c, kernel.position_lanes(f, p), c);
        }
    }
    m
}

/// Binary convolution via im2col + GEMM.
///
/// Produces the same `[N, K, OH, OW]` tensor as
/// [`crate::ops::conv::conv2d_binary`].
///
/// # Errors
///
/// Propagates GEMM dimension errors (cannot occur for consistent inputs).
pub fn conv2d_im2col(
    acts: &PackedActivations,
    weights: &BitTensor,
    params: Conv2dParams,
) -> Result<Tensor> {
    let shape = weights.shape();
    let (kf, kh, kw) = (shape[0], shape[2], shape[3]);
    let (n, h, w) = (acts.batch(), acts.height(), acts.width());
    let oh = params.out_dim(h, kh);
    let ow = params.out_dim(w, kw);
    let a = im2col_pack(acts, kh, kw, params);
    let b = im2col_kernel(weights);
    let flat = gemm_binary(&a, &b)?; // [n*oh*ow, kf]
    let mut out = Tensor::zeros(&[n, kf, oh, ow]);
    for img in 0..n {
        for oy in 0..oh {
            for ox in 0..ow {
                let row = (img * oh + oy) * ow + ox;
                for k in 0..kf {
                    out.set4(img, k, oy, ox, flat[row * kf + k] as f32);
                }
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::conv::conv2d_binary;
    use crate::pack::PackedKernel;
    use proptest::prelude::*;

    fn random_bits(shape: &[usize], seed: u64) -> BitTensor {
        let mut t = BitTensor::zeros(shape);
        let mut s = seed | 1;
        for i in 0..t.len() {
            s = s
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            if s >> 63 == 1 {
                t.set(i, true);
            }
        }
        t
    }

    #[test]
    fn im2col_row_width_includes_padding() {
        let a = PackedActivations::pack(&BitTensor::zeros(&[1, 5, 3, 3])).unwrap();
        let m = im2col_pack(&a, 3, 3, Conv2dParams { stride: 1, pad: 1 });
        assert_eq!(m.rows(), 9);
        assert_eq!(m.cols(), 45);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(20))]

        #[test]
        fn im2col_agrees_with_direct_conv(
            c in 1usize..70,
            h in 3usize..6,
            w in 3usize..6,
            kf in 1usize..3,
            stride in 1usize..3,
            pad in 0usize..2,
            seed in any::<u64>()
        ) {
            let a = random_bits(&[1, c, h, w], seed);
            let wk = random_bits(&[kf, c, 3, 3], !seed);
            let pa = PackedActivations::pack(&a).unwrap();
            let pk = PackedKernel::pack(&wk).unwrap();
            let params = Conv2dParams { stride, pad };
            let direct = conv2d_binary(&pa, &pk, params).unwrap();
            let lowered = conv2d_im2col(&pa, &wk, params).unwrap();
            prop_assert_eq!(direct.shape(), lowered.shape());
            for (d, l) in direct.data().iter().zip(lowered.data()) {
                prop_assert_eq!(*d, *l);
            }
        }
    }
}
