//! Weight-stationary binary convolution over a deduplicated sequence bank.
//!
//! The direct and im2col kernels pay one xnor-popcount per (filter,
//! position, lane) — identical sequences in different filters are
//! recomputed from scratch. This kernel inverts the loop order around the
//! [`crate::bank::BankPlan`]: for each input channel it builds the 9-bit
//! activation window of every output pixel once, then walks the channel's
//! *unique* sequences; each unique sequence's popcount row is computed
//! once ("memoized") and added into the accumulator row of every filter
//! in its fan-out list. Popcount work scales with the number of unique
//! sequences per channel instead of with `K`, which is where the paper's
//! frequency skew pays off at run time.
//!
//! The arithmetic is exact: with window bit `8 - p` holding kernel
//! position `p` (zero when out of bounds, which encodes the `-1` padding)
//! the ±1-domain inner product is `9C - 2 * Σ_c popcount(seq ^ window)`,
//! bit-identical to [`crate::ops::conv2d_binary`].

use crate::bank::SequenceBank;
use crate::error::{BitnnError, Result};
use crate::ops::conv::Conv2dParams;
use crate::tensor::{BitTensor, Tensor};
use crate::weightgen::SEQ_BITS;

/// Reusable buffers for [`conv2d_bank_items`]: per-channel window row,
/// memoized popcount row, and the per-item `[K, OH*OW]` accumulator.
#[derive(Debug, Default, Clone)]
pub struct BankScratch {
    windows: Vec<u16>,
    memo: Vec<i32>,
    acc: Vec<i32>,
}

impl BankScratch {
    /// Grow the buffers for `filters` output filters and `pixels` output
    /// pixels. Never shrinks, so steady-state reuse does not allocate.
    pub fn ensure(&mut self, filters: usize, pixels: usize) {
        if self.windows.len() < pixels {
            self.windows.resize(pixels, 0);
            self.memo.resize(pixels, 0);
        }
        if self.acc.len() < filters * pixels {
            self.acc.resize(filters * pixels, 0);
        }
    }
}

/// Build the 9-bit windows of channel `c` of image `img` for every output
/// pixel. Bit `8 - p` of a window is the activation bit under kernel
/// position `p = ky * 3 + kx`; out-of-bounds bits stay `0` (`-1` padding).
#[allow(clippy::too_many_arguments)]
fn build_windows(
    acts: &BitTensor,
    img: usize,
    c: usize,
    h: usize,
    w: usize,
    oh: usize,
    ow: usize,
    params: Conv2dParams,
    win: &mut [u16],
) {
    let words = acts.words();
    let base = acts.idx4(img, c, 0, 0);
    let mut i = 0;
    for oy in 0..oh {
        let iy0 = (oy * params.stride) as isize - params.pad as isize;
        for ox in 0..ow {
            let ix0 = (ox * params.stride) as isize - params.pad as isize;
            let mut v = 0u16;
            for q in 0..SEQ_BITS {
                let iy = iy0 + (q / 3) as isize;
                let ix = ix0 + (q % 3) as isize;
                if iy >= 0 && iy < h as isize && ix >= 0 && ix < w as isize {
                    let bit = base + iy as usize * w + ix as usize;
                    v |= (((words[bit >> 6] >> (bit & 63)) & 1) as u16) << (SEQ_BITS - 1 - q);
                }
            }
            win[i] = v;
            i += 1;
        }
    }
}

/// Run the memoized bank convolution for images `item0 .. item0 + items`,
/// writing `[items, K, OH, OW]` dot products into `out`.
///
/// `acts` is the binarized activation tensor `[N, C, H, W]`; geometry must
/// match `bank` (3×3 kernels only, enforced by bank construction). The
/// caller hands a scratch sized via [`BankScratch::ensure`] — the kernel
/// itself never allocates.
#[allow(clippy::too_many_arguments)]
pub fn conv2d_bank_items(
    acts: &BitTensor,
    bank: &SequenceBank,
    params: Conv2dParams,
    item0: usize,
    items: usize,
    scratch: &mut BankScratch,
    out: &mut [f32],
) {
    let shape = acts.shape();
    let (c, h, w) = (shape[1], shape[2], shape[3]);
    debug_assert_eq!(c, bank.channels());
    let kf = bank.filters();
    let oh = params.out_dim(h, 3);
    let ow = params.out_dim(w, 3);
    let pixels = oh * ow;
    let total_bits = (SEQ_BITS * c) as i32;
    scratch.ensure(kf, pixels);
    debug_assert_eq!(out.len(), items * kf * pixels);

    let plan = bank.plan();
    for rel in 0..items {
        let img = item0 + rel;
        let acc = &mut scratch.acc[..kf * pixels];
        acc.fill(0);
        for ch in 0..c {
            let win = &mut scratch.windows[..pixels];
            build_windows(acts, img, ch, h, w, oh, ow, params, win);
            let win = &scratch.windows[..pixels];
            for entry in plan.entries(ch) {
                let seq = entry.seq as u32;
                if let [f] = entry.filters {
                    // Fan-out of one: accumulate directly, skip the memo row.
                    let row = &mut acc[*f as usize * pixels..][..pixels];
                    for (r, &wv) in row.iter_mut().zip(win) {
                        *r += (seq ^ wv as u32).count_ones() as i32;
                    }
                } else {
                    let memo = &mut scratch.memo[..pixels];
                    for (m, &wv) in memo.iter_mut().zip(win) {
                        *m = (seq ^ wv as u32).count_ones() as i32;
                    }
                    let memo = &scratch.memo[..pixels];
                    for &f in entry.filters {
                        let row = &mut acc[f as usize * pixels..][..pixels];
                        for (r, &m) in row.iter_mut().zip(memo) {
                            *r += m;
                        }
                    }
                }
            }
        }
        let dst = &mut out[rel * kf * pixels..][..kf * pixels];
        for (d, &a) in dst.iter_mut().zip(acc.iter()) {
            *d = (total_bits - 2 * a) as f32;
        }
    }
}

/// One-shot convenience wrapper: binarized activations × bank → dense
/// `[N, K, OH, OW]` output tensor. Allocates; tests and cold paths only.
///
/// # Errors
///
/// Returns [`BitnnError::DimMismatch`] when activation channels disagree
/// with the bank.
pub fn conv2d_bank(acts: &BitTensor, bank: &SequenceBank, params: Conv2dParams) -> Result<Tensor> {
    let shape = acts.shape();
    if shape.len() != 4 || shape[1] != bank.channels() {
        return Err(BitnnError::DimMismatch {
            op: "conv2d_bank",
            lhs: shape.to_vec(),
            rhs: vec![bank.channels()],
        });
    }
    let (n, h, w) = (shape[0], shape[2], shape[3]);
    let oh = params.out_dim(h, 3);
    let ow = params.out_dim(w, 3);
    let mut out = Tensor::zeros(&[n, bank.filters(), oh, ow]);
    let mut scratch = BankScratch::default();
    conv2d_bank_items(acts, bank, params, 0, n, &mut scratch, out.data_mut());
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::conv2d_binary;
    use crate::pack::{PackedActivations, PackedKernel};
    use crate::weightgen::{random_kernel, SeqDistribution};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_bits(shape: &[usize], seed: u64) -> BitTensor {
        let mut rng = StdRng::seed_from_u64(seed);
        let n: usize = shape.iter().product();
        let bools: Vec<bool> = (0..n).map(|_| rng.random()).collect();
        BitTensor::from_bools(shape, &bools).unwrap()
    }

    #[test]
    fn matches_scalar_oracle_across_geometries() {
        let mut seed = 100u64;
        for &(n, c, k, h, w) in &[(1, 3, 4, 7, 7), (2, 8, 8, 9, 6), (3, 65, 5, 8, 8)] {
            for &(stride, pad) in &[(1, 1), (1, 0), (2, 1), (2, 0), (3, 2)] {
                if h + 2 * pad < 3 || w + 2 * pad < 3 {
                    continue;
                }
                seed += 1;
                let kernel = random_kernel(&[k, c, 3, 3], seed);
                let packed = PackedKernel::pack(&kernel).unwrap();
                let bank = crate::bank::SequenceBank::from_packed(&packed).unwrap();
                let acts = random_bits(&[n, c, h, w], seed ^ 0x5a5a);
                let packed_acts = PackedActivations::pack(&acts).unwrap();
                let params = Conv2dParams { stride, pad };
                let want = conv2d_binary(&packed_acts, &packed, params).unwrap();
                let got = conv2d_bank(&acts, &bank, params).unwrap();
                assert_eq!(want.shape(), got.shape());
                assert_eq!(
                    want.data(),
                    got.data(),
                    "n={n} c={c} k={k} s={stride} p={pad}"
                );
            }
        }
    }

    #[test]
    fn skewed_kernels_match_oracle() {
        let mut rng = StdRng::seed_from_u64(77);
        let dist = SeqDistribution::for_block(3, 21);
        let kernel = dist.sample_kernel(24, 16, &mut rng);
        let packed = PackedKernel::pack(&kernel).unwrap();
        let bank = crate::bank::SequenceBank::from_packed(&packed).unwrap();
        assert!(bank.dedup_ratio() > 1.0, "skewed draw should dedup");
        let acts = random_bits(&[2, 16, 10, 10], 31);
        let packed_acts = PackedActivations::pack(&acts).unwrap();
        let params = Conv2dParams { stride: 1, pad: 1 };
        let want = conv2d_binary(&packed_acts, &packed, params).unwrap();
        let got = conv2d_bank(&acts, &bank, params).unwrap();
        assert_eq!(want.data(), got.data());
    }
}
