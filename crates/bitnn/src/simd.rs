//! Runtime CPU-feature dispatch and kernel-variant selection.
//!
//! The crate builds for the portable x86-64 baseline (SSE2, no `popcnt`),
//! but every band kernel the execution backends hand to their workers is
//! *also* compiled in wider instantiations behind
//! `#[target_feature(enable = ...)]`: an AVX2+`popcnt` one, where LLVM
//! vectorizes the `count_ones` inner loops with the `vpshufb` nibble-LUT
//! popcount, and — when the host has it — an AVX-512 one
//! (`avx512f,avx512bw,avx512vpopcntdq`), where the same loops compile to
//! the hardware `vpopcntq` over 512-bit lanes. The portable source stays
//! the single implementation; the right instantiation is picked per call
//! through the cached detection below (the compile-once /
//! dispatch-at-runtime scheme daBNN uses for its NEON kernels, without
//! hand-written intrinsics).
//!
//! Each kernel follows the same pattern at its definition site: an
//! `#[inline(always)]` portable body, one `#[target_feature]` wrapper per
//! ISA level that inlines that body under the wider feature set, and a
//! thin dispatcher gated on [`level()`].
//!
//! On top of the ISA dispatch sits a small **kernel-variant selection
//! table** for the register-blocked GEMM: the hot shapes are bucketed into
//! [`ShapeClass`]es by their lane count, and the first GEMM of each class
//! runs a micro-autotune (see `ops::gemm`) that times the available
//! register-blocking variants and caches the winner for the process
//! lifetime. Selections are recorded and exposed through
//! [`gemm_choices()`] so `bnnkc features` and the perfsuite can report
//! exactly which kernel served each measurement.
//!
//! # Environment overrides
//!
//! * `BITNN_SIMD` = `portable` | `avx2` | `avx512` | `auto` — caps the
//!   dispatch level. A cap can only *disable* features the CPU has, never
//!   enable ones it lacks, so forcing is always safe; `BITNN_SIMD=portable`
//!   is how CI exercises the fallback kernels on AVX2 hosts.
//! * `BITNN_GEMM` = `4x2` | `8x2` | `4x4` — pins the GEMM register
//!   blocking for every shape class, skipping the autotuner.

use std::sync::{Mutex, OnceLock};

/// Raw CPU capability bits relevant to the binary kernels, as detected —
/// before any [`BITNN_SIMD` cap](self#environment-overrides) is applied.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CpuFeatures {
    /// Hardware scalar `popcnt`.
    pub popcnt: bool,
    /// AVX2 (with `popcnt`): the nibble-LUT vector popcount instantiations.
    pub avx2: bool,
    /// AVX-512 F+BW+VPOPCNTDQ: the native 512-bit vector popcount
    /// instantiations.
    pub avx512: bool,
}

/// Detected CPU capabilities. Detection runs once and is cached.
pub fn detect() -> CpuFeatures {
    static FEATURES: OnceLock<CpuFeatures> = OnceLock::new();
    *FEATURES.get_or_init(|| {
        #[cfg(target_arch = "x86_64")]
        {
            let popcnt = std::arch::is_x86_feature_detected!("popcnt");
            CpuFeatures {
                popcnt,
                avx2: popcnt && std::arch::is_x86_feature_detected!("avx2"),
                avx512: popcnt
                    && std::arch::is_x86_feature_detected!("avx512f")
                    && std::arch::is_x86_feature_detected!("avx512bw")
                    && std::arch::is_x86_feature_detected!("avx512vpopcntdq"),
            }
        }
        #[cfg(not(target_arch = "x86_64"))]
        {
            CpuFeatures {
                popcnt: false,
                avx2: false,
                avx512: false,
            }
        }
    })
}

/// The ISA tier a kernel dispatch runs at, ordered from narrowest to
/// widest.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum SimdLevel {
    /// Baseline x86-64 (or non-x86): scalar `count_ones` loops.
    Portable,
    /// AVX2 + `popcnt` instantiations.
    Avx2,
    /// AVX-512 F/BW/VPOPCNTDQ instantiations.
    Avx512,
}

impl SimdLevel {
    /// Stable lower-case name, as accepted by `BITNN_SIMD` and printed by
    /// `bnnkc features` / the perfsuite schema.
    pub fn name(self) -> &'static str {
        match self {
            SimdLevel::Portable => "portable",
            SimdLevel::Avx2 => "avx2",
            SimdLevel::Avx512 => "avx512",
        }
    }
}

impl std::fmt::Display for SimdLevel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// The effective dispatch level: detected capabilities, capped by
/// `BITNN_SIMD` when set. Resolved once and cached.
///
/// An unrecognized `BITNN_SIMD` value is ignored (full detected level)
/// rather than being an error: the variable is a diagnostic/CI knob, not
/// part of the CLI surface.
pub fn level() -> SimdLevel {
    static LEVEL: OnceLock<SimdLevel> = OnceLock::new();
    *LEVEL.get_or_init(|| {
        let f = detect();
        let detected = if f.avx512 {
            SimdLevel::Avx512
        } else if f.avx2 {
            SimdLevel::Avx2
        } else {
            SimdLevel::Portable
        };
        let cap = match std::env::var("BITNN_SIMD").as_deref() {
            Ok("portable") => SimdLevel::Portable,
            Ok("avx2") => SimdLevel::Avx2,
            _ => SimdLevel::Avx512, // "avx512", "auto", unset, unrecognized
        };
        detected.min(cap)
    })
}

/// Whether dispatches may use the AVX2+popcnt instantiations.
#[inline]
pub(crate) fn avx2() -> bool {
    level() >= SimdLevel::Avx2
}

/// Whether dispatches may use the AVX-512 instantiations.
#[inline]
pub(crate) fn avx512() -> bool {
    level() >= SimdLevel::Avx512
}

/// A register-blocking variant of the tiled GEMM micro-kernel: `MRxNR`
/// output accumulator tiles (see `ops::gemm`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GemmVariant {
    /// 4 activation rows × 2 weight rows, 8 accumulators.
    Mr4Nr2,
    /// 8 activation rows × 2 weight rows, 16 accumulators — more lane
    /// reuse per weight load, more register pressure.
    Mr8Nr2,
    /// 4 activation rows × 4 weight rows, 16 accumulators — more lane
    /// reuse per activation load.
    Mr4Nr4,
}

impl GemmVariant {
    /// Every selectable variant, in autotune order.
    pub const ALL: [GemmVariant; 3] = [
        GemmVariant::Mr4Nr2,
        GemmVariant::Mr8Nr2,
        GemmVariant::Mr4Nr4,
    ];

    /// Stable name (`4x2` form), as accepted by `BITNN_GEMM` and printed
    /// by `bnnkc features` / the perfsuite schema.
    pub fn name(self) -> &'static str {
        match self {
            GemmVariant::Mr4Nr2 => "4x2",
            GemmVariant::Mr8Nr2 => "8x2",
            GemmVariant::Mr4Nr4 => "4x4",
        }
    }
}

impl std::fmt::Display for GemmVariant {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// GEMM shape bucket, by inner-dimension lane count. Each class gets one
/// autotuned variant choice; the representative lane counts are the hot
/// shapes of the model zoo (1×1 convs ≈ 1–4 lanes, im2col'd 3×3 convs
/// ≈ 5–12, the classifier ≥ 13).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShapeClass {
    /// 3–4 lanes per row (K ≤ 256 bits).
    Narrow,
    /// 5–12 lanes per row.
    Medium,
    /// 13+ lanes per row.
    Wide,
}

impl ShapeClass {
    /// All tunable classes.
    pub const ALL: [ShapeClass; 3] = [ShapeClass::Narrow, ShapeClass::Medium, ShapeClass::Wide];

    /// The class of a row with `lanes` lane words, or `None` for rows the
    /// dedicated short-row path handles (≤ 2 lanes — never tile-blocked).
    pub fn of_lanes(lanes: usize) -> Option<ShapeClass> {
        match lanes {
            0..=2 => None,
            3..=4 => Some(ShapeClass::Narrow),
            5..=12 => Some(ShapeClass::Medium),
            _ => Some(ShapeClass::Wide),
        }
    }

    /// A representative lane count for autotuning this class.
    pub fn representative_lanes(self) -> usize {
        match self {
            ShapeClass::Narrow => 4,
            ShapeClass::Medium => 9, // 3×3 im2col of a 64-channel layer
            ShapeClass::Wide => 16,  // the 1024-bit classifier
        }
    }

    /// Stable name for reports.
    pub fn name(self) -> &'static str {
        match self {
            ShapeClass::Narrow => "narrow",
            ShapeClass::Medium => "medium",
            ShapeClass::Wide => "wide",
        }
    }

    fn index(self) -> usize {
        match self {
            ShapeClass::Narrow => 0,
            ShapeClass::Medium => 1,
            ShapeClass::Wide => 2,
        }
    }
}

/// Where a recorded variant selection came from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChoiceSource {
    /// Picked by the runtime micro-autotuner.
    Autotuned,
    /// Pinned via `BITNN_GEMM`.
    Forced,
}

/// One recorded kernel selection: which GEMM variant serves a shape class,
/// and why.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GemmChoice {
    /// The shape bucket.
    pub class: ShapeClass,
    /// The selected register blocking.
    pub variant: GemmVariant,
    /// Autotuned or forced.
    pub source: ChoiceSource,
}

/// Per-class selection table. `OnceLock` per slot: the first GEMM of a
/// class tunes (or reads the override) and every later dispatch is a
/// plain atomic load.
static GEMM_TABLE: [OnceLock<GemmChoice>; 3] = [OnceLock::new(), OnceLock::new(), OnceLock::new()];

/// Record of selections in the order they were made, for reporting.
static GEMM_LOG: Mutex<Vec<GemmChoice>> = Mutex::new(Vec::new());

fn forced_variant() -> Option<GemmVariant> {
    match std::env::var("BITNN_GEMM").as_deref() {
        Ok("4x2") => Some(GemmVariant::Mr4Nr2),
        Ok("8x2") => Some(GemmVariant::Mr8Nr2),
        Ok("4x4") => Some(GemmVariant::Mr4Nr4),
        _ => None,
    }
}

/// The GEMM register blocking to use for `class`, tuning on first use.
///
/// `tune` runs at most once per class per process (unless `BITNN_GEMM`
/// pins the variant, in which case it never runs); `ops::gemm` passes its
/// micro-benchmark. Every variant is bit-exact, so a noisy tuning run can
/// cost speed but never correctness.
pub(crate) fn gemm_variant_for(
    class: ShapeClass,
    tune: impl FnOnce(ShapeClass) -> GemmVariant,
) -> GemmVariant {
    GEMM_TABLE[class.index()]
        .get_or_init(|| {
            let choice = match forced_variant() {
                Some(variant) => GemmChoice {
                    class,
                    variant,
                    source: ChoiceSource::Forced,
                },
                None => GemmChoice {
                    class,
                    variant: tune(class),
                    source: ChoiceSource::Autotuned,
                },
            };
            if let Ok(mut log) = GEMM_LOG.lock() {
                log.push(choice);
            }
            choice
        })
        .variant
}

/// The GEMM variant selections recorded so far, in selection order. Only
/// classes that have actually been dispatched (or warmed via
/// `ops::gemm::warm_gemm_tables`) appear.
pub fn gemm_choices() -> Vec<GemmChoice> {
    GEMM_LOG.lock().map(|log| log.clone()).unwrap_or_default()
}

/// The 3×3 lowering a conv geometry resolved to under the streaming
/// autotuner: the im2col-free shifted-window path or the im2col+GEMM
/// lowering (see `ops::streamconv` / `ops::im2col`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ConvLowering {
    /// Streaming shifted-window direct path.
    Stream,
    /// Materialized im2col + tiled GEMM.
    Im2col,
}

impl ConvLowering {
    /// Stable name, as printed by `bnnkc features` / the perfsuite schema.
    pub fn name(self) -> &'static str {
        match self {
            ConvLowering::Stream => "stream",
            ConvLowering::Im2col => "im2col",
        }
    }
}

impl std::fmt::Display for ConvLowering {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// The geometry key a 3×3 conv lowering decision is cached under. The
/// batch size is deliberately absent: both candidate paths scale linearly
/// in it, so the per-image winner is the per-batch winner.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ConvGeom {
    /// Input channels.
    pub channels: usize,
    /// Output filters.
    pub filters: usize,
    /// Input height.
    pub h: usize,
    /// Input width.
    pub w: usize,
    /// Spatial stride.
    pub stride: usize,
    /// Spatial padding.
    pub pad: usize,
}

/// One recorded conv lowering selection: which path serves a geometry,
/// and why.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ConvChoice {
    /// The conv geometry.
    pub geom: ConvGeom,
    /// The selected lowering.
    pub lowering: ConvLowering,
    /// Autotuned or forced (`BITNN_CONV` / a pinned policy).
    pub source: ChoiceSource,
}

/// Decision caches stop growing past this many distinct geometries — a
/// graph with more unique conv shapes than this falls back to the static
/// heuristic for the excess, which costs speed but never correctness or
/// steady-state allocations.
const CONV_CACHE_CAP: usize = 256;

/// Per-geometry decision cache. Holds *autotuned* entries only: a pinned
/// `BITNN_CONV=stream|im2col` engine must not poison the tuned choice an
/// `auto` engine in the same process would make for the same geometry.
static CONV_TABLE: Mutex<Vec<(ConvGeom, ConvLowering)>> = Mutex::new(Vec::new());

/// Record of every selection (tuned and forced) in decision order, for
/// `bnnkc features` and the perfsuite. Deduplicated by geometry+source.
static CONV_LOG: Mutex<Vec<ConvChoice>> = Mutex::new(Vec::new());

/// The cached autotuned lowering for `geom`, if one has been recorded.
/// A linear scan under the lock — the table is small and the warmed
/// forward path performs no allocation here.
pub(crate) fn conv_choice_cached(geom: ConvGeom) -> Option<ConvLowering> {
    let table = CONV_TABLE.lock().ok()?;
    table.iter().find(|(g, _)| *g == geom).map(|&(_, l)| l)
}

/// Record an autotuned decision for `geom`. First writer wins (a benign
/// double-tune race picks whichever insert lands first); past
/// [`CONV_CACHE_CAP`] the decision is dropped rather than grown.
pub(crate) fn record_conv_choice(geom: ConvGeom, lowering: ConvLowering) {
    if let Ok(mut table) = CONV_TABLE.lock() {
        if table.iter().any(|(g, _)| *g == geom) {
            return;
        }
        if table.len() < CONV_CACHE_CAP {
            table.push((geom, lowering));
        }
    }
    log_conv_choice(ConvChoice {
        geom,
        lowering,
        source: ChoiceSource::Autotuned,
    });
}

/// Record that a pinned policy (`BITNN_CONV` or an explicit
/// [`crate::exec::ConvMode`]) decided a live 3×3 dispatch. Reporting only —
/// never touches the decision cache.
pub(crate) fn record_forced_conv(geom: ConvGeom, lowering: ConvLowering) {
    log_conv_choice(ConvChoice {
        geom,
        lowering,
        source: ChoiceSource::Forced,
    });
}

fn log_conv_choice(choice: ConvChoice) {
    if let Ok(mut log) = CONV_LOG.lock() {
        if log
            .iter()
            .any(|c| c.geom == choice.geom && c.source == choice.source)
        {
            return;
        }
        if log.len() < CONV_CACHE_CAP {
            log.push(choice);
        }
    }
}

/// The conv lowering selections recorded so far, in decision order. Only
/// geometries that have actually been dispatched (or warmed via
/// `engine::warm_conv_table`) appear.
pub fn conv_choices() -> Vec<ConvChoice> {
    CONV_LOG.lock().map(|log| log.clone()).unwrap_or_default()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn level_is_consistent_with_detection() {
        let f = detect();
        let l = level();
        // The cap can lower the level but never raise it past detection.
        if l >= SimdLevel::Avx2 {
            assert!(f.avx2);
        }
        if l >= SimdLevel::Avx512 {
            assert!(f.avx512);
        }
    }

    #[test]
    fn shape_classes_partition_lane_counts() {
        assert_eq!(ShapeClass::of_lanes(0), None);
        assert_eq!(ShapeClass::of_lanes(2), None);
        assert_eq!(ShapeClass::of_lanes(3), Some(ShapeClass::Narrow));
        assert_eq!(ShapeClass::of_lanes(4), Some(ShapeClass::Narrow));
        assert_eq!(ShapeClass::of_lanes(5), Some(ShapeClass::Medium));
        assert_eq!(ShapeClass::of_lanes(12), Some(ShapeClass::Medium));
        assert_eq!(ShapeClass::of_lanes(13), Some(ShapeClass::Wide));
        assert_eq!(ShapeClass::of_lanes(1000), Some(ShapeClass::Wide));
        for class in ShapeClass::ALL {
            assert_eq!(
                ShapeClass::of_lanes(class.representative_lanes()),
                Some(class)
            );
        }
    }

    #[test]
    fn names_are_stable() {
        assert_eq!(SimdLevel::Portable.name(), "portable");
        assert_eq!(SimdLevel::Avx2.name(), "avx2");
        assert_eq!(SimdLevel::Avx512.name(), "avx512");
        assert_eq!(GemmVariant::Mr4Nr2.name(), "4x2");
        assert_eq!(GemmVariant::Mr8Nr2.name(), "8x2");
        assert_eq!(GemmVariant::Mr4Nr4.name(), "4x4");
    }

    #[test]
    fn variant_table_caches_first_selection() {
        // Whatever is in the table for Narrow after two calls, both calls
        // agree and at most one tune ran.
        let first = gemm_variant_for(ShapeClass::Narrow, |_| GemmVariant::Mr4Nr2);
        let second = gemm_variant_for(ShapeClass::Narrow, |_| {
            panic!("tune ran twice for one class")
        });
        assert_eq!(first, second);
        assert!(gemm_choices()
            .iter()
            .any(|c| c.class == ShapeClass::Narrow && c.variant == first));
    }

    #[test]
    fn conv_table_caches_and_separates_forced_entries() {
        // A geometry no real dispatch in this test binary will hit.
        let geom = ConvGeom {
            channels: 3,
            filters: 5,
            h: 101,
            w: 7,
            stride: 1,
            pad: 1,
        };
        assert_eq!(conv_choice_cached(geom), None);
        // Forced entries are reporting-only: the decision cache must stay
        // clean for a later auto engine.
        record_forced_conv(geom, ConvLowering::Stream);
        assert_eq!(conv_choice_cached(geom), None);
        record_conv_choice(geom, ConvLowering::Im2col);
        assert_eq!(conv_choice_cached(geom), Some(ConvLowering::Im2col));
        // First insert wins; a benign double-tune cannot flip it.
        record_conv_choice(geom, ConvLowering::Stream);
        assert_eq!(conv_choice_cached(geom), Some(ConvLowering::Im2col));
        let log = conv_choices();
        assert!(log
            .iter()
            .any(|c| c.geom == geom && c.source == ChoiceSource::Forced));
        assert!(log.iter().any(|c| c.geom == geom
            && c.source == ChoiceSource::Autotuned
            && c.lowering == ConvLowering::Im2col));
    }
}
