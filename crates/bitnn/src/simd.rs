//! Runtime CPU-feature dispatch for the hot kernels.
//!
//! The crate builds for the portable x86-64 baseline (SSE2, no `popcnt`),
//! but the band kernels the execution engine hands to its workers are
//! *also* compiled in a second instantiation with
//! `#[target_feature(enable = "avx2,popcnt")]`. LLVM then vectorizes the
//! `count_ones` inner loops with the AVX2 `vpshufb` nibble-LUT popcount
//! and uses the hardware `popcnt` for scalar remainders — the portable
//! source stays the single implementation, and the right instantiation is
//! picked per call through the cached detection below (the same
//! compile-once/dispatch-at-runtime scheme daBNN uses for its NEON
//! kernels, without any hand-written intrinsics).
//!
//! Each kernel follows the same three-piece pattern at its definition
//! site: an `#[inline(always)]` portable body, a `#[target_feature]`
//! wrapper that inlines that body under the wider ISA, and a thin public
//! dispatcher gated on [`avx2()`].

/// Whether this CPU supports the AVX2+popcnt fast instantiations.
/// Detection runs once and is cached.
#[cfg(target_arch = "x86_64")]
#[inline]
pub(crate) fn avx2() -> bool {
    use std::sync::OnceLock;
    static AVX2: OnceLock<bool> = OnceLock::new();
    *AVX2.get_or_init(|| {
        std::arch::is_x86_feature_detected!("avx2") && std::arch::is_x86_feature_detected!("popcnt")
    })
}

#[cfg(not(target_arch = "x86_64"))]
#[inline]
pub(crate) fn avx2() -> bool {
    false
}
