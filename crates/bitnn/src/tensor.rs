//! Dense float tensors and flat bit tensors.
//!
//! [`Tensor`] is a minimal row-major `f32` tensor (NCHW for activations,
//! `[K, C, KH, KW]` for kernels) used by the full-precision reference paths
//! (batch-norm, PReLU, the quantized input/output layers, and the oracle
//! implementations that the packed kernels are tested against).
//!
//! [`BitTensor`] stores one bit per element in the same logical order and is
//! the unpacked binary representation from which [`crate::pack`] builds the
//! channel-packed layouts.

use crate::bitword::mask;
use crate::error::{BitnnError, Result};
use crate::lanes_for;

/// A row-major `f32` tensor with runtime shape.
///
/// The [`Default`] tensor is empty (zero dimensions, no data) — a seat for
/// scratch buffers that are shaped on first use.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Tensor {
    shape: Vec<usize>,
    data: Vec<f32>,
}

impl Tensor {
    /// Create a tensor filled with zeros.
    ///
    /// # Panics
    ///
    /// Panics if the shape has a zero-sized dimension product overflow.
    pub fn zeros(shape: &[usize]) -> Self {
        let n: usize = shape.iter().product();
        Tensor {
            shape: shape.to_vec(),
            data: vec![0.0; n],
        }
    }

    /// Create a tensor from existing data.
    ///
    /// # Errors
    ///
    /// Returns [`BitnnError::ShapeMismatch`] if `data.len()` does not equal
    /// the product of `shape`.
    pub fn from_vec(shape: &[usize], data: Vec<f32>) -> Result<Self> {
        let n: usize = shape.iter().product();
        if n != data.len() {
            return Err(BitnnError::ShapeMismatch {
                expected: format!("{n} elements for shape {shape:?}"),
                got: format!("{} elements", data.len()),
            });
        }
        Ok(Tensor {
            shape: shape.to_vec(),
            data,
        })
    }

    /// Tensor filled with a constant.
    pub fn full(shape: &[usize], value: f32) -> Self {
        let n: usize = shape.iter().product();
        Tensor {
            shape: shape.to_vec(),
            data: vec![value; n],
        }
    }

    /// The shape of the tensor.
    pub fn shape(&self) -> &[usize] {
        &self.shape
    }

    /// Total number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the tensor has zero elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Immutable view of the underlying data.
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Mutable view of the underlying data.
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consume the tensor and return its data.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Re-shape to `shape` reusing the allocation, leaving the element
    /// values unspecified (stale or zero). Only for callers that overwrite
    /// every element before the tensor is read — skips [`Self::reset`]'s
    /// redundant zero-fill on the hot path.
    pub(crate) fn reset_for_overwrite(&mut self, shape: &[usize]) {
        let n: usize = shape.iter().product();
        self.shape.clear();
        self.shape.extend_from_slice(shape);
        if self.data.len() != n {
            self.data.clear();
            self.data.resize(n, 0.0);
        }
    }

    /// Flat index for a 4-D coordinate `(n, c, h, w)`.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if the tensor is not 4-D or the coordinate is
    /// out of bounds.
    #[inline]
    pub fn idx4(&self, n: usize, c: usize, h: usize, w: usize) -> usize {
        debug_assert_eq!(self.shape.len(), 4);
        debug_assert!(
            n < self.shape[0] && c < self.shape[1] && h < self.shape[2] && w < self.shape[3]
        );
        ((n * self.shape[1] + c) * self.shape[2] + h) * self.shape[3] + w
    }

    /// Read element at a 4-D coordinate.
    #[inline]
    pub fn at4(&self, n: usize, c: usize, h: usize, w: usize) -> f32 {
        self.data[self.idx4(n, c, h, w)]
    }

    /// Write element at a 4-D coordinate.
    #[inline]
    pub fn set4(&mut self, n: usize, c: usize, h: usize, w: usize, v: f32) {
        let i = self.idx4(n, c, h, w);
        self.data[i] = v;
    }

    /// Reshape in place (same element count).
    ///
    /// # Errors
    ///
    /// Returns [`BitnnError::ShapeMismatch`] if the element count differs.
    pub fn reshape(&mut self, shape: &[usize]) -> Result<()> {
        let n: usize = shape.iter().product();
        if n != self.data.len() {
            return Err(BitnnError::ShapeMismatch {
                expected: format!("{} elements", self.data.len()),
                got: format!("shape {shape:?} ({n} elements)"),
            });
        }
        self.shape = shape.to_vec();
        Ok(())
    }

    /// Binarize with the paper's Eq. 1: `+1` if `x >= 0`, else `-1`,
    /// producing a [`BitTensor`] with bit `1` for `+1`.
    pub fn binarize(&self) -> BitTensor {
        let mut bt = BitTensor::zeros(&self.shape);
        for (i, &v) in self.data.iter().enumerate() {
            if v >= 0.0 {
                bt.set(i, true);
            }
        }
        bt
    }

    /// Index of the maximum element (ties resolve to the first).
    ///
    /// Returns `None` for an empty tensor.
    pub fn argmax(&self) -> Option<usize> {
        self.data
            .iter()
            .enumerate()
            .max_by(|a, b| {
                a.1.partial_cmp(b.1)
                    .unwrap_or(std::cmp::Ordering::Equal)
                    .then(b.0.cmp(&a.0))
            })
            .map(|(i, _)| i)
    }
}

/// A flat bit tensor: one bit per logical element, same row-major order as
/// [`Tensor`]. Bit `1` encodes the value `+1`, bit `0` encodes `-1`
/// (paper Sec. II-A).
///
/// The [`Default`] bit tensor is empty — a seat for scratch buffers that
/// are shaped on first use.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BitTensor {
    shape: Vec<usize>,
    len: usize,
    words: Vec<u64>,
}

impl BitTensor {
    /// All-zero (all `-1`) bit tensor.
    pub fn zeros(shape: &[usize]) -> Self {
        let len: usize = shape.iter().product();
        BitTensor {
            shape: shape.to_vec(),
            len,
            words: vec![0; lanes_for(len)],
        }
    }

    /// Build from a boolean slice in row-major order.
    ///
    /// # Errors
    ///
    /// Returns [`BitnnError::ShapeMismatch`] on length mismatch.
    pub fn from_bools(shape: &[usize], bits: &[bool]) -> Result<Self> {
        let len: usize = shape.iter().product();
        if len != bits.len() {
            return Err(BitnnError::ShapeMismatch {
                expected: format!("{len} bits for shape {shape:?}"),
                got: format!("{} bits", bits.len()),
            });
        }
        let mut t = BitTensor::zeros(shape);
        // Word-at-a-time: assemble each 64-bit lane in a register and store
        // it once instead of read-modify-writing per bit.
        for (chunk, word) in bits.chunks(64).zip(t.words.iter_mut()) {
            let mut w = 0u64;
            for (i, &b) in chunk.iter().enumerate() {
                w |= (b as u64) << i;
            }
            *word = w;
        }
        Ok(t)
    }

    /// Shape of the tensor.
    pub fn shape(&self) -> &[usize] {
        &self.shape
    }

    /// Number of logical bits.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the tensor has zero elements.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Read bit `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= len()`.
    #[inline]
    pub fn get(&self, i: usize) -> bool {
        assert!(i < self.len, "bit index {i} out of range {}", self.len);
        (self.words[i / 64] >> (i % 64)) & 1 == 1
    }

    /// Write bit `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= len()`.
    #[inline]
    pub fn set(&mut self, i: usize, v: bool) {
        assert!(i < self.len, "bit index {i} out of range {}", self.len);
        let w = &mut self.words[i / 64];
        if v {
            *w |= 1 << (i % 64);
        } else {
            *w &= !(1 << (i % 64));
        }
    }

    /// Flat index for a 4-D coordinate.
    #[inline]
    pub fn idx4(&self, n: usize, c: usize, h: usize, w: usize) -> usize {
        debug_assert_eq!(self.shape.len(), 4);
        ((n * self.shape[1] + c) * self.shape[2] + h) * self.shape[3] + w
    }

    /// Read a 4-D coordinate as ±1.
    #[inline]
    pub fn sign_at4(&self, n: usize, c: usize, h: usize, w: usize) -> i32 {
        if self.get(self.idx4(n, c, h, w)) {
            1
        } else {
            -1
        }
    }

    /// Number of set bits.
    pub fn count_ones(&self) -> usize {
        // The unused tail of the last word is kept at zero by `set`.
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Underlying packed words (tail bits beyond `len` are zero).
    pub fn words(&self) -> &[u64] {
        &self.words
    }

    /// Mutable packed words for crate-internal fast paths. Callers must
    /// keep bits beyond `len` clear (see [`Self::tail_is_clean`]).
    pub(crate) fn words_mut(&mut self) -> &mut [u64] {
        &mut self.words
    }

    /// Re-shape to `shape` and clear every bit, reusing the allocation
    /// when possible (scratch-buffer reuse in the execution engine).
    pub(crate) fn reset(&mut self, shape: &[usize]) {
        self.len = shape.iter().product();
        self.shape.clear();
        self.shape.extend_from_slice(shape);
        self.words.clear();
        self.words.resize(lanes_for(self.len), 0);
    }

    /// Convert back to a ±1 float tensor.
    pub fn to_tensor(&self) -> Tensor {
        let mut t = Tensor::zeros(&self.shape);
        for i in 0..self.len {
            t.data_mut()[i] = if self.get(i) { 1.0 } else { -1.0 };
        }
        t
    }

    /// Check the internal invariant that bits beyond `len` are clear.
    ///
    /// Exposed for tests and fuzzing.
    pub fn tail_is_clean(&self) -> bool {
        let rem = self.len % 64;
        if rem == 0 || self.words.is_empty() {
            return true;
        }
        self.words[self.words.len() - 1] & !mask(rem) == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn zeros_has_right_len() {
        let t = Tensor::zeros(&[2, 3, 4, 5]);
        assert_eq!(t.len(), 120);
        assert_eq!(t.shape(), &[2, 3, 4, 5]);
        assert!(!t.is_empty());
    }

    #[test]
    fn from_vec_validates() {
        assert!(Tensor::from_vec(&[2, 2], vec![0.0; 4]).is_ok());
        assert!(Tensor::from_vec(&[2, 2], vec![0.0; 5]).is_err());
    }

    #[test]
    fn idx4_row_major() {
        let t = Tensor::zeros(&[2, 3, 4, 5]);
        assert_eq!(t.idx4(0, 0, 0, 0), 0);
        assert_eq!(t.idx4(0, 0, 0, 1), 1);
        assert_eq!(t.idx4(0, 0, 1, 0), 5);
        assert_eq!(t.idx4(0, 1, 0, 0), 20);
        assert_eq!(t.idx4(1, 0, 0, 0), 60);
    }

    #[test]
    fn binarize_matches_eq1() {
        let t = Tensor::from_vec(&[5], vec![-1.5, -0.0, 0.0, 0.1, 2.0]).unwrap();
        let b = t.binarize();
        // Eq. 1: x >= 0 -> +1. Note -0.0 >= 0.0 is true in IEEE-754.
        assert!(!b.get(0));
        assert!(b.get(1));
        assert!(b.get(2));
        assert!(b.get(3));
        assert!(b.get(4));
    }

    #[test]
    fn argmax_ties_and_empty() {
        let t = Tensor::from_vec(&[3], vec![1.0, 3.0, 3.0]).unwrap();
        assert_eq!(t.argmax(), Some(1));
        let e = Tensor::zeros(&[0]);
        assert_eq!(e.argmax(), None);
    }

    #[test]
    fn reshape_checks_count() {
        let mut t = Tensor::zeros(&[4, 4]);
        assert!(t.reshape(&[2, 8]).is_ok());
        assert_eq!(t.shape(), &[2, 8]);
        assert!(t.reshape(&[3, 3]).is_err());
    }

    #[test]
    fn bit_tensor_set_get_roundtrip() {
        let mut b = BitTensor::zeros(&[130]);
        b.set(0, true);
        b.set(64, true);
        b.set(129, true);
        assert!(b.get(0) && b.get(64) && b.get(129));
        assert!(!b.get(1) && !b.get(65) && !b.get(128));
        assert_eq!(b.count_ones(), 3);
        b.set(64, false);
        assert_eq!(b.count_ones(), 2);
        assert!(b.tail_is_clean());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bit_tensor_oob_panics() {
        let b = BitTensor::zeros(&[8]);
        b.get(8);
    }

    #[test]
    fn sign_roundtrip_through_float() {
        let mut b = BitTensor::zeros(&[2, 1, 2, 2]);
        b.set(0, true);
        b.set(5, true);
        let t = b.to_tensor();
        assert_eq!(t.data()[0], 1.0);
        assert_eq!(t.data()[1], -1.0);
        let b2 = t.binarize();
        assert_eq!(b, b2);
    }

    proptest! {
        #[test]
        fn bools_roundtrip(bits in proptest::collection::vec(any::<bool>(), 0..300)) {
            let shape = [bits.len()];
            let t = BitTensor::from_bools(&shape, &bits).unwrap();
            prop_assert!(t.tail_is_clean());
            for (i, &b) in bits.iter().enumerate() {
                prop_assert_eq!(t.get(i), b);
            }
            prop_assert_eq!(t.count_ones(), bits.iter().filter(|&&b| b).count());
        }

        #[test]
        fn binarize_to_tensor_is_sign(v in proptest::collection::vec(-10.0f32..10.0, 1..100)) {
            let t = Tensor::from_vec(&[v.len()], v.clone()).unwrap();
            let b = t.binarize().to_tensor();
            for (x, y) in v.iter().zip(b.data()) {
                prop_assert_eq!(*y, if *x >= 0.0 { 1.0 } else { -1.0 });
            }
        }
    }
}
