//! Execution policy and thread-count grammar — backend-neutral knobs.
//!
//! Everything here is shared by *every* execution backend and by the
//! binaries (`bnnkc`, `perfsuite`): how many workers a dispatch may use,
//! when an op is too small to parallelize, and how a convolution is
//! lowered onto the compute substrate. None of it depends on the CPU
//! engine's internals, so the CLI and bench crates import this module
//! instead of [`crate::engine`].

use crate::pool::WorkerPool;
use std::thread;

/// How a convolution is lowered onto the binary compute substrate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Lowering {
    /// Choose per shape: 1×1 stride-1 pad-0 layers run as a GEMM over the
    /// packed activations, narrow layers (≤ [`IM2COL_MAX_CHANNELS`]
    /// channels) are im2col-lowered so the tiled GEMM amortizes their
    /// short channel vectors, and wide layers run the direct conv whose
    /// long channel dots already saturate the popcount units.
    #[default]
    Auto,
    /// Always use the direct channel-packed convolution.
    Direct,
    /// Always lower to im2col + GEMM.
    Im2col,
}

/// Channel-count threshold for [`Lowering::Auto`]: at or below this the
/// im2col lowering wins (short channel vectors, per-position call overhead
/// dominates the direct path); above it the direct path's long dots win
/// and the 9× activation duplication stops paying for itself.
pub const IM2COL_MAX_CHANNELS: usize = 256;

/// Whether 3×3 convolutions may run on the deduplicated sequence-bank
/// path (the weight-stationary memoized kernel, paper §III-B skew
/// exploited at run time) instead of materialized lane words.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DedupMode {
    /// Follow the deployed representation: a layer deployed as a bank
    /// (and nothing else) stays in the compressed domain — its dense
    /// lane words are never materialized — while layers holding dense
    /// forms keep the SIMD lane-word kernels, which on packed-SIMD
    /// hosts out-run the memoized gather at every measured geometry.
    /// Auto never *forces* a representation swap in either direction.
    #[default]
    Auto,
    /// Run every 3×3 convolution on the bank path (non-3×3 layers have
    /// no sequence representation and always use the dense forms).
    On,
    /// Never use the bank path; always materialize dense lane words.
    Off,
}

impl DedupMode {
    /// Resolve the `BITNN_DEDUP` environment knob (`on` / `off` /
    /// `auto`, case-insensitive); unset or unrecognized values mean
    /// [`DedupMode::Auto`].
    pub fn from_env() -> Self {
        match std::env::var("BITNN_DEDUP") {
            Ok(v) => match v.to_ascii_lowercase().as_str() {
                "on" | "1" | "true" => DedupMode::On,
                "off" | "0" | "false" => DedupMode::Off,
                _ => DedupMode::Auto,
            },
            Err(_) => DedupMode::Auto,
        }
    }

    /// Whether a `kh × kw` convolution must be *forced* onto the bank
    /// path regardless of which weight forms are resident. Only
    /// [`DedupMode::On`] forces; `Auto` defers to the deployed
    /// representation (see [`BinConv2d::forward_binarized_with`]), so a
    /// deploy loop keying on this sends layers to the bank only when
    /// the operator explicitly opted in via `BITNN_DEDUP=on`.
    ///
    /// [`BinConv2d::forward_binarized_with`]: crate::layers::BinConv2d::forward_binarized_with
    pub fn selects(&self, kh: usize, kw: usize, _channels: usize) -> bool {
        if kh != 3 || kw != 3 {
            return false;
        }
        matches!(self, DedupMode::On)
    }
}

/// Which 3×3 lowering [`Lowering::Auto`] prefers: the im2col+GEMM path or
/// the im2col-free streaming direct path
/// (see [`crate::ops::streamconv`]).
///
/// Orthogonal to [`Lowering`]: an explicit `Lowering::Direct`/`Im2col`
/// still pins that lowering; this knob only steers the automatic choice
/// (and, for [`ConvMode::Auto`], hands the decision to the first-dispatch
/// autotuner, which measures both paths on the live operands per conv
/// geometry).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ConvMode {
    /// Autotune per conv geometry: on the first dispatch of each 3×3
    /// shape, time the streaming path against im2col on the real operands
    /// and cache the winner (see [`crate::simd::conv_choices`]).
    #[default]
    Auto,
    /// Always use the streaming shifted-window path for 3×3 layers.
    Stream,
    /// Keep the legacy channel-count heuristic: im2col at or below
    /// [`IM2COL_MAX_CHANNELS`] channels, direct above.
    Im2col,
}

impl ConvMode {
    /// Resolve the `BITNN_CONV` environment knob (`stream` / `im2col` /
    /// `auto`, case-insensitive); unset or unrecognized values mean
    /// [`ConvMode::Auto`].
    pub fn from_env() -> Self {
        match std::env::var("BITNN_CONV") {
            Ok(v) => match v.to_ascii_lowercase().as_str() {
                "stream" => ConvMode::Stream,
                "im2col" => ConvMode::Im2col,
                _ => ConvMode::Auto,
            },
            Err(_) => ConvMode::Auto,
        }
    }
}

/// Default [`ExecPolicy::min_work`]: roughly 15 µs of lane-word operations
/// on a current core. Below this, waking even one parked worker costs a
/// measurable fraction of the op itself, so the dispatch runs inline.
pub const DEFAULT_MIN_WORK: u64 = 32 * 1024;

/// Execution policy: worker count, per-dispatch inline threshold, and
/// lowering choice.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExecPolicy {
    /// Number of threads parallel sections may use (≥ 1), counting the
    /// calling thread. `1` means everything runs inline. The effective
    /// count is clamped to the hardware parallelism at dispatch time —
    /// requesting more threads than cores never oversubscribes.
    pub threads: usize,
    /// Minimum estimated work (in lane-word operations) an op must carry
    /// before it is split across workers; smaller dispatches run inline on
    /// the calling thread regardless of `threads`. This is what keeps
    /// tiny ops (short GEMMs, 1×1 convs on small maps) from losing to
    /// their own parallel overhead.
    pub min_work: u64,
    /// Convolution lowering selection.
    pub lowering: Lowering,
    /// Sequence-bank (dedup) path selection for 3×3 convolutions.
    pub dedup: DedupMode,
    /// Streaming-vs-im2col steering for [`Lowering::Auto`] 3×3 layers.
    pub conv: ConvMode,
}

impl Default for ExecPolicy {
    /// All available hardware parallelism, default inline threshold,
    /// automatic lowering, `BITNN_DEDUP`-resolved dedup mode,
    /// `BITNN_CONV`-resolved conv mode.
    fn default() -> Self {
        ExecPolicy {
            threads: thread::available_parallelism().map_or(1, usize::from),
            min_work: DEFAULT_MIN_WORK,
            lowering: Lowering::Auto,
            dedup: DedupMode::from_env(),
            conv: ConvMode::from_env(),
        }
    }
}

impl ExecPolicy {
    /// Everything inline on the calling thread, automatic lowering.
    pub fn single_threaded() -> Self {
        ExecPolicy {
            threads: 1,
            ..Default::default()
        }
    }

    /// `threads` workers, automatic lowering.
    ///
    /// # Panics
    ///
    /// Panics if `threads` is zero.
    pub fn with_threads(threads: usize) -> Self {
        assert!(threads >= 1, "need at least one worker thread");
        ExecPolicy {
            threads,
            ..Default::default()
        }
    }

    /// The thread count a dispatch of `work` estimated lane-word
    /// operations actually uses: `threads`, clamped by the hardware
    /// parallelism, or 1 when the op is too small to amortize a wakeup.
    pub fn effective_threads(&self, work: u64) -> usize {
        if self.threads <= 1 || work < self.min_work {
            return 1;
        }
        self.threads.min(WorkerPool::global().hw_threads())
    }
}

/// The hardware parallelism dispatches are clamped to: the persistent
/// worker pool's thread budget (the calling thread plus its workers).
pub fn hardware_threads() -> usize {
    WorkerPool::global().hw_threads()
}

/// Parse a `--threads`-style CLI value into a thread count: a positive
/// integer, or `auto` (also the meaning of an absent flag), which
/// resolves to the hardware parallelism. Zero and unparseable values are
/// errors pointing the user at `auto` — never a silent single-threaded
/// run. Shared by every binary exposing a thread flag (`bnnkc run`,
/// `perfsuite`) so the grammar and messages cannot drift apart.
///
/// # Errors
///
/// Returns the user-facing message for `0` or a non-numeric value.
pub fn parse_thread_count(value: Option<&str>) -> std::result::Result<usize, String> {
    match value {
        None | Some("auto") => Ok(thread::available_parallelism().map_or(1, usize::from)),
        Some(v) => match v.parse::<usize>() {
            Ok(0) => Err(
                "--threads must be at least 1; use `--threads auto` to match the hardware".into(),
            ),
            Ok(n) => Ok(n),
            Err(_) => Err(format!(
                "invalid value `{v}` for --threads (a count or `auto`)"
            )),
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn policy_constructors() {
        assert_eq!(ExecPolicy::single_threaded().threads, 1);
        assert_eq!(ExecPolicy::with_threads(3).threads, 3);
        assert!(ExecPolicy::default().threads >= 1);
        assert_eq!(ExecPolicy::default().min_work, DEFAULT_MIN_WORK);
    }

    #[test]
    #[should_panic(expected = "at least one worker")]
    fn zero_threads_rejected() {
        ExecPolicy::with_threads(0);
    }

    #[test]
    fn small_work_runs_inline() {
        // Below min_work the dispatch is pinned to one thread no matter
        // how many threads the policy asks for.
        let policy = ExecPolicy::with_threads(8);
        assert_eq!(policy.effective_threads(0), 1);
        assert_eq!(policy.effective_threads(policy.min_work - 1), 1);
        // At or above the threshold the count is the requested one clamped
        // by hardware parallelism.
        let eff = policy.effective_threads(policy.min_work);
        assert!((1..=8).contains(&eff));
        assert_eq!(ExecPolicy::single_threaded().effective_threads(u64::MAX), 1);
    }

    #[test]
    fn dedup_mode_selection() {
        // Only an explicit On forces the bank path; Auto defers to the
        // layer's deployed representation at forward time.
        assert!(!DedupMode::Auto.selects(3, 3, IM2COL_MAX_CHANNELS + 1));
        assert!(!DedupMode::Auto.selects(3, 3, IM2COL_MAX_CHANNELS));
        assert!(DedupMode::On.selects(3, 3, 8));
        assert!(DedupMode::On.selects(3, 3, 4096));
        assert!(!DedupMode::On.selects(1, 1, 8));
        assert!(!DedupMode::Off.selects(3, 3, 4096));
    }

    #[test]
    fn thread_count_grammar() {
        assert!(parse_thread_count(None).unwrap() >= 1);
        assert!(parse_thread_count(Some("auto")).unwrap() >= 1);
        assert_eq!(parse_thread_count(Some("3")).unwrap(), 3);
        assert!(parse_thread_count(Some("0")).is_err());
        assert!(parse_thread_count(Some("lots")).is_err());
    }
}
