//! Binary serialization of bit tensors and model weights.
//!
//! A deployment needs to ship the (possibly clustered) binary weights;
//! this module provides a minimal, self-describing little-endian format:
//!
//! ```text
//! BitTensor record:  ndim u8, dims u32*, words u64* (ceil(len/64))
//! Weights file:      "BNNW", version u16, count u32, records...
//! ```
//!
//! The compressed representation lives in `kc_core::container`; this is
//! the *uncompressed* side — what the baseline loads, and what you get
//! after offline decompression.

use crate::error::{BitnnError, Result};
use crate::model::ReActNet;
use crate::tensor::BitTensor;

/// Weights-file magic.
pub const MAGIC: &[u8; 4] = b"BNNW";

/// Format version.
pub const VERSION: u16 = 1;

/// Append a bit tensor to `out`.
pub fn write_bit_tensor(t: &BitTensor, out: &mut Vec<u8>) {
    out.push(t.shape().len() as u8);
    for &d in t.shape() {
        out.extend_from_slice(&(d as u32).to_le_bytes());
    }
    for &w in t.words() {
        out.extend_from_slice(&w.to_le_bytes());
    }
}

/// Read one bit tensor starting at `buf[*pos]`, advancing `pos`.
///
/// # Errors
///
/// Returns [`BitnnError::ShapeMismatch`] on truncation or an implausible
/// shape.
pub fn read_bit_tensor(buf: &[u8], pos: &mut usize) -> Result<BitTensor> {
    let fail = |what: &str| BitnnError::ShapeMismatch {
        expected: what.into(),
        got: "truncated or invalid data".into(),
    };
    fn take<'a>(buf: &'a [u8], pos: &mut usize, n: usize) -> Result<&'a [u8]> {
        if *pos + n > buf.len() {
            return Err(BitnnError::ShapeMismatch {
                expected: "more bytes".into(),
                got: "truncated or invalid data".into(),
            });
        }
        let s = &buf[*pos..*pos + n];
        *pos += n;
        Ok(s)
    }
    let ndim = take(buf, pos, 1)?[0] as usize;
    if ndim == 0 || ndim > 8 {
        return Err(fail("1..=8 dimensions"));
    }
    let mut shape = Vec::with_capacity(ndim);
    for _ in 0..ndim {
        let b = take(buf, pos, 4)?;
        let d = u32::from_le_bytes([b[0], b[1], b[2], b[3]]) as usize;
        if d == 0 || d > 1 << 20 {
            return Err(fail("plausible dimension"));
        }
        shape.push(d);
    }
    let len: usize = shape.iter().product();
    let words = len.div_ceil(64);
    let mut t = BitTensor::zeros(&shape);
    for wi in 0..words {
        let b = take(buf, pos, 8)?;
        let word = u64::from_le_bytes([b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7]]);
        // Set bits individually to preserve the tail-is-clean invariant
        // even on malformed input.
        for bit in 0..64 {
            let idx = wi * 64 + bit;
            if idx < len && (word >> bit) & 1 == 1 {
                t.set(idx, true);
            }
        }
    }
    Ok(t)
}

/// Serialize every binary 3×3 kernel of a model (block order).
pub fn save_conv3_weights(model: &ReActNet) -> Vec<u8> {
    let mut out = Vec::new();
    out.extend_from_slice(MAGIC);
    out.extend_from_slice(&VERSION.to_le_bytes());
    out.extend_from_slice(&(model.num_blocks() as u32).to_le_bytes());
    for i in 0..model.num_blocks() {
        write_bit_tensor(model.conv3_weights(i), &mut out);
    }
    out
}

/// Load 3×3 kernels saved by [`save_conv3_weights`] into a model with the
/// same architecture.
///
/// # Errors
///
/// Returns [`BitnnError::ShapeMismatch`] if the file is damaged, the
/// block count differs, or any kernel's shape does not match the model.
pub fn load_conv3_weights(model: &mut ReActNet, bytes: &[u8]) -> Result<()> {
    let fail = |what: &str| BitnnError::ShapeMismatch {
        expected: what.into(),
        got: "weights file".into(),
    };
    if bytes.len() < 10 || &bytes[..4] != MAGIC {
        return Err(fail("BNNW magic"));
    }
    let version = u16::from_le_bytes([bytes[4], bytes[5]]);
    if version != VERSION {
        return Err(fail("supported version"));
    }
    let count = u32::from_le_bytes([bytes[6], bytes[7], bytes[8], bytes[9]]) as usize;
    if count != model.num_blocks() {
        return Err(BitnnError::ShapeMismatch {
            expected: format!("{} blocks", model.num_blocks()),
            got: format!("{count} blocks"),
        });
    }
    let mut pos = 10;
    let mut kernels = Vec::with_capacity(count);
    for i in 0..count {
        let k = read_bit_tensor(bytes, &mut pos)?;
        if k.shape() != model.conv3_weights(i).shape() {
            return Err(BitnnError::ShapeMismatch {
                expected: format!("{:?}", model.conv3_weights(i).shape()),
                got: format!("{:?}", k.shape()),
            });
        }
        kernels.push(k);
    }
    for (i, k) in kernels.into_iter().enumerate() {
        model.set_conv3_weights(i, k);
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn random_bits(shape: &[usize], seed: u64) -> BitTensor {
        let mut t = BitTensor::zeros(shape);
        let mut s = seed | 1;
        for i in 0..t.len() {
            s = s
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            if s >> 63 == 1 {
                t.set(i, true);
            }
        }
        t
    }

    #[test]
    fn bit_tensor_roundtrip() {
        for shape in [vec![7usize], vec![3, 5], vec![2, 65, 3, 3]] {
            let t = random_bits(&shape, 3);
            let mut buf = Vec::new();
            write_bit_tensor(&t, &mut buf);
            let mut pos = 0;
            let back = read_bit_tensor(&buf, &mut pos).unwrap();
            assert_eq!(back, t);
            assert_eq!(pos, buf.len());
            assert!(back.tail_is_clean());
        }
    }

    #[test]
    fn model_weights_roundtrip() {
        let original = ReActNet::tiny(41);
        let bytes = save_conv3_weights(&original);
        let mut other = ReActNet::tiny(42); // different weights
        assert_ne!(other.conv3_weights(0), original.conv3_weights(0));
        load_conv3_weights(&mut other, &bytes).unwrap();
        for i in 0..original.num_blocks() {
            assert_eq!(other.conv3_weights(i), original.conv3_weights(i));
        }
    }

    #[test]
    fn damage_is_detected() {
        let model = ReActNet::tiny(43);
        let bytes = save_conv3_weights(&model);
        let mut m = ReActNet::tiny(44);
        // Bad magic.
        let mut bad = bytes.clone();
        bad[0] = b'X';
        assert!(load_conv3_weights(&mut m, &bad).is_err());
        // Bad version.
        let mut bad = bytes.clone();
        bad[4] = 9;
        assert!(load_conv3_weights(&mut m, &bad).is_err());
        // Truncations.
        for cut in [3usize, 9, 12, bytes.len() / 2] {
            assert!(
                load_conv3_weights(&mut m, &bytes[..cut]).is_err(),
                "cut {cut}"
            );
        }
    }

    #[test]
    fn block_count_mismatch_rejected() {
        let model = ReActNet::tiny(45);
        let mut bytes = save_conv3_weights(&model);
        bytes[6..10].copy_from_slice(&99u32.to_le_bytes());
        let mut m = ReActNet::tiny(46);
        assert!(load_conv3_weights(&mut m, &bytes).is_err());
    }

    #[test]
    fn tail_bits_in_file_do_not_corrupt_tensor() {
        // Hand-craft a record whose last word has garbage beyond `len`.
        let mut buf = vec![1u8, 3, 0, 0, 0]; // ndim 1, dim 3
        buf.extend_from_slice(&u64::MAX.to_le_bytes());
        let mut pos = 0;
        let t = read_bit_tensor(&buf, &mut pos).unwrap();
        assert_eq!(t.len(), 3);
        assert!(t.tail_is_clean());
        assert_eq!(t.count_ones(), 3);
    }
}
