//! Parallel tiled execution engine for the binary hot path.
//!
//! The paper's premise is that xnor-popcount inference is compute-bound on
//! the binary GEMM/conv substrate; this module is the piece that actually
//! drives that substrate at speed:
//!
//! * **Register-blocked GEMM** — every matrix product goes through the
//!   `MR×NR` micro-kernel in [`crate::ops::gemm`], which reuses loaded
//!   lanes across output rows and keeps several popcounts in flight.
//! * **Persistent worker pool** — parallel sections run on the process-wide
//!   pool of condvar-parked workers ([`crate::pool`]). Each operation
//!   splits a contiguous output range (GEMM rows, conv output rows, batch
//!   items) into more chunks than workers; workers claim chunks with one
//!   atomic `fetch_add` each, so tail chunks are stolen by whichever
//!   worker finishes first. Every dispatch carries a work estimate, and
//!   ops below [`ExecPolicy::min_work`] run inline on the calling thread —
//!   small dispatches never pay parallel overhead. The requested thread
//!   count is additionally clamped to the hardware parallelism, so asking
//!   for 8 threads on a 1-core host degrades to the inline path instead of
//!   oversubscribing.
//! * **Shape-dependent lowering** — per layer, [`ExecPolicy::lowering`]
//!   picks between the direct channel-packed convolution and the
//!   im2col-lowered GEMM (daBNN makes the same choice per shape). 1×1
//!   stride-1 convolutions skip lowering entirely: the channel-packed
//!   activations already *are* the GEMM operand.
//! * **Scratch-buffer reuse** — the im2col matrix, the flat GEMM output,
//!   the binarized activation bits, and the packed activations live in a
//!   [`Scratch`] that the model's forward pass threads through every
//!   layer, so steady-state inference stops allocating per layer.
//!
//! Every path is bit-exact against [`crate::ops::reference`]: binary dot
//! products are integers, so the engine's outputs are *identical* to the
//! scalar seed path, and the property tests at the bottom of this module
//! assert exactly that across random shapes, strides, pads, and thread
//! counts.

use crate::bank::SequenceBank;
use crate::error::{BitnnError, Result};
use crate::ops::bankconv::{conv2d_bank_items, BankScratch};
use crate::ops::conv::{conv2d_direct_rows, kernel_position_ones, Conv2dParams};
use crate::ops::gemm::{gemm_rows_into, PackedMatrix};
use crate::ops::im2col::{im2col_kernel_packed, im2col_rows};
use crate::ops::streamconv::conv2d_stream_items;
use crate::pack::{PackedActivations, PackedKernel};
use crate::pool::WorkerPool;
use crate::simd::{conv_choice_cached, record_conv_choice, record_forced_conv};
use crate::simd::{ConvChoice, ConvGeom, ConvLowering};
use crate::tensor::{BitTensor, Tensor};

// The policy/lowering knobs used to live here; they moved to the neutral
// [`crate::exec`] module so the CLI and bench crates stop importing engine
// internals. Re-exported for path compatibility.
pub use crate::exec::{
    parse_thread_count, ConvMode, ExecPolicy, Lowering, DEFAULT_MIN_WORK, IM2COL_MAX_CHANNELS,
};

/// Set a buffer's length without zero-filling retained elements — for
/// outputs whose every element is written before being read.
fn resize_unfilled(v: &mut Vec<i32>, n: usize) {
    if v.len() != n {
        v.clear();
        v.resize(n, 0);
    }
}

/// Target number of claimable chunks per effective thread: enough that a
/// stalled worker's tail is stolen, few enough that the per-chunk
/// `fetch_add` stays invisible.
const CHUNKS_PER_THREAD: usize = 4;

/// Borrowed kernel representations for [`Engine::conv2d`].
///
/// The channel-packed form is always required; the im2col weight matrix
/// and the per-position ones counts (padding closed form) are optional
/// cached accelerations that layers precompute once at construction (see
/// [`crate::layers::BinConv2d::forms`]). Forms that are absent are built
/// on the fly by the lowering that needs them.
#[derive(Debug, Clone, Copy)]
pub struct KernelForms<'a> {
    /// Channel-packed kernel.
    pub packed: &'a PackedKernel,
    /// Cached im2col weight matrix (one row per filter, position-major
    /// columns), used by the GEMM lowerings.
    pub lowered: Option<&'a PackedMatrix>,
    /// Cached per-filter, per-position ones counts, used by the direct
    /// lowering's `-1`-padding closed form.
    pub pad_ones: Option<&'a [u32]>,
}

impl<'a> From<&'a PackedKernel> for KernelForms<'a> {
    /// A bare packed kernel with no cached forms.
    fn from(packed: &'a PackedKernel) -> Self {
        KernelForms {
            packed,
            lowered: None,
            pad_ones: None,
        }
    }
}

/// Reusable buffers for the engine's own lowering steps.
///
/// Owned by [`Scratch`]; split out so a caller can hold `&PackedActivations`
/// from one scratch field while the engine mutates these.
#[derive(Debug, Clone, Default)]
pub struct ConvScratch {
    /// The im2col-lowered activation matrix.
    pub(crate) im2col: PackedMatrix,
    /// Flat `[pixels × filters]` GEMM output before the NCHW scatter.
    pub(crate) flat: Vec<i32>,
    /// Window/memo/accumulator buffers for the sequence-bank path.
    pub(crate) bank: BankScratch,
}

/// The concrete execution path [`Engine::conv2d_into`] picks for a dense
/// convolution under a given policy and geometry. Exposed so layers can
/// pre-materialize exactly the cached [`KernelForms`] the path will read
/// (and nothing else) — see [`crate::layers::BinConv2d`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ConvPath {
    /// 1×1 stride-1 pad-0 GEMM directly over the packed activations;
    /// needs only the packed kernel.
    PointwiseGemm,
    /// Direct channel-packed convolution; wants `pad_ones`.
    Direct,
    /// im2col lowering + GEMM; wants the `lowered` weight matrix.
    Im2col,
    /// Im2col-free streaming shifted-window convolution
    /// ([`crate::ops::streamconv`]); wants `pad_ones`, allocates nothing.
    Stream,
}

/// The CPU backend's per-step staging buffers — everything a step of the
/// compiled plan needs besides the liveness-assigned activation arena.
///
/// This is the scratch type [`crate::backend::CpuBackend`] owns behind the
/// `Backend` trait's type-erased scratch handle; the legacy engine-based
/// forwards reach the same buffers through [`Scratch::cpu`].
#[derive(Debug, Clone, Default)]
pub struct CpuScratch {
    /// Engine-internal lowering buffers.
    pub(crate) conv: ConvScratch,
    /// Binarized activations (output of the sign stages).
    pub(crate) bits: BitTensor,
    /// Channel-packed binarized activations.
    pub(crate) packed: PackedActivations,
    /// Raw convolution output of the current stage.
    pub(crate) conv_out: Tensor,
    /// Fused bn + shortcut + activation output of the 3×3 stage.
    pub(crate) mid: Tensor,
    /// Quantized-layer staging buffers (stem conv + classifier).
    pub(crate) quant: crate::layers::QuantScratch,
}

/// Reusable forward-pass buffers threaded through the model so steady-state
/// inference stops allocating per layer: once every buffer (including the
/// graph executor's activation arena) has been sized by a warm-up forward,
/// repeat forwards of the same shape perform zero heap allocation.
///
/// Split in two so the graph dispatcher can hand the backend its own
/// buffers (`cpu`) while itself mutating the arena — disjoint borrows of
/// one struct.
#[derive(Debug, Clone, Default)]
pub struct Scratch {
    /// CPU-backend staging buffers (lowering, binarization, packing,
    /// quantized ends).
    pub(crate) cpu: CpuScratch,
    /// The graph executor's activation arena: one reusable tensor per
    /// liveness-assigned slot of the compiled plan (see
    /// [`crate::graph`]'s executor).
    pub(crate) arena: Vec<Tensor>,
    /// Batch weight-stationary staging: uniform-shape batch items stacked
    /// into one `[B*N, C, H, W]` tensor so the whole plan runs once per
    /// batch — every layer's row packing and window state builds once per
    /// image set instead of once per image (see
    /// [`crate::graph::ModelGraph::forward_batch_into`]).
    pub(crate) stacked_in: Tensor,
    /// The stacked plan output before it is split back into per-item
    /// logits tensors.
    pub(crate) stacked_out: Tensor,
}

/// The parallel tiled executor. Cheap to construct, [`Clone`], and
/// [`Sync`]: it holds no buffers (those live in [`Scratch`]) and no
/// threads of its own — every engine dispatches onto the one process-wide
/// persistent worker pool ([`crate::pool`]), so a single shared `Engine`
/// serves all layers, batches, and concurrent callers without spawning.
#[derive(Debug, Clone, Default)]
pub struct Engine {
    policy: ExecPolicy,
}

impl Engine {
    /// Engine with an explicit policy.
    pub fn new(policy: ExecPolicy) -> Self {
        Engine { policy }
    }

    /// Engine that runs everything inline on the calling thread.
    pub fn single_threaded() -> Self {
        Engine::new(ExecPolicy::single_threaded())
    }

    /// Engine with `threads` workers and automatic lowering.
    ///
    /// # Panics
    ///
    /// Panics if `threads` is zero.
    pub fn with_threads(threads: usize) -> Self {
        Engine::new(ExecPolicy::with_threads(threads))
    }

    /// The policy this engine executes under.
    pub fn policy(&self) -> ExecPolicy {
        self.policy
    }

    /// A copy of this engine pinned to one thread — used inside already
    /// parallel sections (e.g. per batch item) to avoid oversubscription.
    pub fn inner(&self) -> Engine {
        Engine::new(ExecPolicy {
            threads: 1,
            ..self.policy
        })
    }

    /// Parallel loop over a mutable output slice of `items * width`
    /// elements, dispatched onto the persistent worker pool.
    ///
    /// The items are split into chunks of at least `grain` items — several
    /// chunks per effective thread, so tail chunks are stolen by whichever
    /// worker finishes first. Each chunk invocation gets a disjoint `&mut`
    /// band plus the index of its first item. `work` is the caller's
    /// estimate of the whole dispatch in lane-word operations; dispatches
    /// under [`ExecPolicy::min_work`] (and all single-threaded engines)
    /// run inline on the calling thread without touching the pool.
    pub(crate) fn parallel_chunks<T, F>(
        &self,
        out: &mut [T],
        width: usize,
        grain: usize,
        work: u64,
        f: F,
    ) where
        T: Send,
        F: Fn(usize, &mut [T]) + Sync,
    {
        let threads = self.policy.effective_threads(work);
        dispatch_chunks(WorkerPool::global(), threads, out, width, grain, f);
    }

    /// Binary GEMM under this policy (see [`crate::ops::gemm::gemm_binary`]
    /// for operand semantics): rows of `a` are chunked across the worker
    /// pool, each chunk running the register-blocked micro-kernel on its
    /// band.
    ///
    /// # Errors
    ///
    /// Returns [`BitnnError::DimMismatch`] if the inner dimensions differ.
    pub fn gemm(&self, a: &PackedMatrix, b: &PackedMatrix) -> Result<Vec<i32>> {
        let mut out = Vec::new();
        self.gemm_into(a, b, &mut out)?;
        Ok(out)
    }

    /// [`Engine::gemm`] into a reusable output buffer.
    ///
    /// # Errors
    ///
    /// Returns [`BitnnError::DimMismatch`] if the inner dimensions differ.
    pub fn gemm_into(&self, a: &PackedMatrix, b: &PackedMatrix, out: &mut Vec<i32>) -> Result<()> {
        if a.cols() != b.cols() {
            return Err(BitnnError::DimMismatch {
                op: "gemm_binary",
                lhs: vec![a.rows(), a.cols()],
                rhs: vec![b.rows(), b.cols()],
            });
        }
        resize_unfilled(out, a.rows() * b.rows());
        let (aw, bw) = (a.words(), b.words());
        let (lanes, k, bn) = (a.lanes(), a.cols(), b.rows());
        let work = (a.rows() * bn * lanes) as u64;
        self.parallel_chunks(&mut out[..], bn, 8, work, |first, band| {
            gemm_rows_into(aw, bw, lanes, k, bn, first, band);
        });
        Ok(())
    }

    /// Binary 2-D convolution under this policy, producing the same
    /// `[N, K, OH, OW]` tensor as [`crate::ops::conv::conv2d_binary`]
    /// bit-for-bit.
    ///
    /// `kernel` carries the packed kernel plus whatever cached forms the
    /// caller has (`KernelForms::from(&packed)` for none); missing forms
    /// are built on the fly by the lowering that needs them.
    ///
    /// # Errors
    ///
    /// Returns [`BitnnError::DimMismatch`] when the channel counts
    /// disagree.
    pub fn conv2d(
        &self,
        acts: &PackedActivations,
        kernel: KernelForms<'_>,
        params: Conv2dParams,
        scratch: &mut ConvScratch,
    ) -> Result<Tensor> {
        let mut out = Tensor::zeros(&[0]);
        self.conv2d_into(acts, kernel, params, scratch, &mut out)?;
        Ok(out)
    }

    /// [`Engine::conv2d`] into a reusable output tensor.
    ///
    /// # Errors
    ///
    /// Returns [`BitnnError::DimMismatch`] when the channel counts
    /// disagree.
    pub fn conv2d_into(
        &self,
        acts: &PackedActivations,
        kernel: KernelForms<'_>,
        params: Conv2dParams,
        scratch: &mut ConvScratch,
        out: &mut Tensor,
    ) -> Result<()> {
        let packed = kernel.packed;
        if acts.channels() != packed.channels() {
            return Err(BitnnError::DimMismatch {
                op: "conv2d_binary",
                lhs: vec![acts.channels()],
                rhs: vec![packed.channels()],
            });
        }
        let c = acts.channels();
        let (kh, kw) = (packed.kh(), packed.kw());
        let path = match self.conv_path(kh, kw, params, c) {
            Some(p) => {
                // A pinned `ConvMode` deciding a live auto-lowered 3×3
                // dispatch is recorded (reporting only) so `bnnkc
                // features` and the perfsuite can label what actually ran.
                if self.policy.lowering == Lowering::Auto && kh == 3 && kw == 3 {
                    let forced = match (self.policy.conv, p) {
                        (ConvMode::Stream, ConvPath::Stream) => Some(ConvLowering::Stream),
                        (ConvMode::Im2col, ConvPath::Im2col) => Some(ConvLowering::Im2col),
                        _ => None,
                    };
                    if let Some(lowering) = forced {
                        record_forced_conv(conv_geom(acts, packed, params), lowering);
                    }
                }
                p
            }
            // `None` means "autotune this 3×3 geometry": consult the
            // process-wide decision cache, measuring stream-vs-im2col on
            // the live operands the first time the geometry is seen.
            None => {
                let geom = conv_geom(acts, packed, params);
                let lowering = match conv_choice_cached(geom) {
                    Some(l) => l,
                    None => {
                        let l = self.tune_conv(acts, kernel, params, scratch, out);
                        record_conv_choice(geom, l);
                        l
                    }
                };
                match lowering {
                    ConvLowering::Stream => ConvPath::Stream,
                    ConvLowering::Im2col => ConvPath::Im2col,
                }
            }
        };
        self.conv2d_with_path(path, acts, kernel, params, scratch, out);
        Ok(())
    }

    /// Time the streaming path against im2col on the live operands —
    /// min-of-reps each, every rep a full valid compute (both paths are
    /// bit-exact, so `out` holds correct results throughout). Runs once
    /// per conv geometry per process, on the warm-up forward.
    ///
    /// The decision is cached process-wide, so a mis-tune is sticky:
    /// both candidates get an untimed warm-up first (the im2col probe
    /// must not be charged for sizing its staging buffer), the timed
    /// reps alternate between the candidates so frequency drift hits
    /// both equally, and small geometries — where one rep is a handful
    /// of microseconds and a single timer blip flips the outcome — keep
    /// racing until each candidate has accumulated a minimum timed
    /// budget.
    fn tune_conv(
        &self,
        acts: &PackedActivations,
        kernel: KernelForms<'_>,
        params: Conv2dParams,
        scratch: &mut ConvScratch,
        out: &mut Tensor,
    ) -> ConvLowering {
        const MIN_REPS: usize = 3;
        const MAX_REPS: usize = 32;
        const BUDGET_NS: u128 = 200_000;
        let candidates = [ConvPath::Im2col, ConvPath::Stream];
        for path in candidates {
            self.conv2d_with_path(path, acts, kernel, params, scratch, out);
        }
        let mut best = [u128::MAX; 2];
        let mut spent = [0u128; 2];
        let mut reps = 0;
        while reps < MAX_REPS && (reps < MIN_REPS || spent.iter().any(|&s| s < BUDGET_NS)) {
            for (slot, path) in candidates.into_iter().enumerate() {
                let t = std::time::Instant::now();
                self.conv2d_with_path(path, acts, kernel, params, scratch, out);
                let d = t.elapsed().as_nanos();
                best[slot] = best[slot].min(d);
                spent[slot] += d;
            }
            reps += 1;
        }
        // Ties go to streaming: same speed with no im2col staging buffer.
        if best[1] <= best[0] {
            ConvLowering::Stream
        } else {
            ConvLowering::Im2col
        }
    }

    /// Execute one already-resolved lowering. Never consults or writes the
    /// autotune cache — the tuner calls this for its probe runs, and a
    /// probe must not pollute the recorded decisions.
    fn conv2d_with_path(
        &self,
        path: ConvPath,
        acts: &PackedActivations,
        kernel: KernelForms<'_>,
        params: Conv2dParams,
        scratch: &mut ConvScratch,
        out: &mut Tensor,
    ) {
        let packed = kernel.packed;
        let (n, c, h, w) = (acts.batch(), acts.channels(), acts.height(), acts.width());
        let (kf, kh, kw) = (packed.filters(), packed.kh(), packed.kw());
        let oh = params.out_dim(h, kh);
        let ow = params.out_dim(w, kw);
        // Every lowering writes every output element, so skip the zero-fill.
        out.reset_for_overwrite(&[n, kf, oh, ow]);

        if path == ConvPath::Direct || path == ConvPath::Stream {
            let built;
            let pad_ones = match kernel.pad_ones {
                Some(p) => p,
                None => {
                    built = kernel_position_ones(packed);
                    &built
                }
            };
            let work = (n * kf * oh * ow * kh * kw * acts.lanes()) as u64;
            if path == ConvPath::Stream {
                // One item = one (img, filter) output plane; the kernel
                // blocks up to FILTER_BLOCK filters of one image so each
                // resident activation word is loaded once per block.
                self.parallel_chunks(out.data_mut(), oh * ow, 1, work, |first, band| {
                    conv2d_stream_items(acts, packed, params, pad_ones, first, band);
                });
            } else {
                self.parallel_chunks(out.data_mut(), ow, 4, work, |first, band| {
                    conv2d_direct_rows(acts, packed, params, pad_ones, first, band);
                });
            }
            return;
        }

        let pixels = n * oh * ow;
        if path == ConvPath::PointwiseGemm {
            // The packed activations are already the GEMM operand: one
            // C-bit row per pixel, and the 1×1 kernel is one C-bit row per
            // filter. No lowering, no copies.
            resize_unfilled(&mut scratch.flat, pixels * kf);
            let (aw, bw, lanes) = (acts.words(), packed.words(), acts.lanes());
            let work = (pixels * kf * lanes) as u64;
            self.parallel_chunks(&mut scratch.flat[..], kf, 16, work, |first, band| {
                gemm_rows_into(aw, bw, lanes, c, kf, first, band);
            });
        } else {
            let cols = kh * kw * c;
            scratch.im2col.reset(pixels, cols);
            let lanes = scratch.im2col.lanes();
            // The lowering is a word blit: roughly one lane-word op per
            // output word (bit gathers cost a couple each).
            let blit_work = (pixels * lanes * 2) as u64;
            self.parallel_chunks(
                scratch.im2col.words_mut(),
                lanes,
                16,
                blit_work,
                |first, band| {
                    im2col_rows(acts, kh, kw, params, first, band, lanes);
                },
            );
            let built;
            let lk = match kernel.lowered {
                Some(m) => m,
                None => {
                    built = im2col_kernel_packed(packed);
                    &built
                }
            };
            debug_assert_eq!(lk.cols(), cols);
            resize_unfilled(&mut scratch.flat, pixels * kf);
            let (aw, bw) = (scratch.im2col.words(), lk.words());
            let work = (pixels * kf * lanes) as u64;
            self.parallel_chunks(&mut scratch.flat[..], kf, 16, work, |first, band| {
                gemm_rows_into(aw, bw, lanes, cols, kf, first, band);
            });
        }

        // Scatter flat [N*OH*OW, KF] to NCHW.
        let ohw = oh * ow;
        let od = out.data_mut();
        for img in 0..n {
            for pix in 0..ohw {
                let src = &scratch.flat[(img * ohw + pix) * kf..][..kf];
                for (k, &v) in src.iter().enumerate() {
                    od[(img * kf + k) * ohw + pix] = v as f32;
                }
            }
        }
    }

    /// The dense lowering [`Engine::conv2d_into`] will run for this
    /// geometry under the current policy, or `None` when the choice is
    /// autotuned at first dispatch ([`ConvMode::Auto`] on an auto-lowered
    /// 3×3 layer — the streaming-vs-im2col decision needs live operands).
    pub fn conv_path(
        &self,
        kh: usize,
        kw: usize,
        params: Conv2dParams,
        channels: usize,
    ) -> Option<ConvPath> {
        let pointwise = kh == 1 && kw == 1 && params.stride == 1 && params.pad == 0;
        match self.policy.lowering {
            Lowering::Direct => Some(ConvPath::Direct),
            Lowering::Im2col => Some(ConvPath::Im2col),
            Lowering::Auto => {
                if pointwise {
                    return Some(ConvPath::PointwiseGemm);
                }
                if kh == 3 && kw == 3 {
                    match self.policy.conv {
                        ConvMode::Stream => return Some(ConvPath::Stream),
                        ConvMode::Auto => return None,
                        ConvMode::Im2col => {}
                    }
                }
                Some(if channels <= IM2COL_MAX_CHANNELS {
                    ConvPath::Im2col
                } else {
                    ConvPath::Direct
                })
            }
        }
    }

    /// Whether this engine's policy sends a `kh × kw` convolution with
    /// `channels` input channels to the sequence-bank path instead of the
    /// dense lowerings.
    pub fn uses_bank(&self, kh: usize, kw: usize, channels: usize) -> bool {
        self.policy.dedup.selects(kh, kw, channels)
    }

    /// Weight-stationary convolution over a deduplicated sequence bank,
    /// bit-identical to [`Engine::conv2d_into`] on the dense forms of the
    /// same kernel (see [`crate::ops::bankconv`]).
    ///
    /// Takes the *binarized* activations directly — the bank path never
    /// channel-packs, so callers skip the repack step entirely. Batch
    /// items are chunked across the worker pool; the inline path reuses
    /// the scratch's buffers and performs no steady-state allocation.
    ///
    /// # Errors
    ///
    /// Returns [`BitnnError::DimMismatch`] when `bits` is not a 4-D
    /// activation tensor with the bank's channel count.
    pub fn conv2d_bank_into(
        &self,
        bits: &BitTensor,
        bank: &SequenceBank,
        params: Conv2dParams,
        scratch: &mut ConvScratch,
        out: &mut Tensor,
    ) -> Result<()> {
        let shape = bits.shape();
        if shape.len() != 4 || shape[1] != bank.channels() {
            return Err(BitnnError::DimMismatch {
                op: "conv2d_bank",
                lhs: shape.to_vec(),
                rhs: vec![bank.channels()],
            });
        }
        let (n, c, h, w) = (shape[0], shape[1], shape[2], shape[3]);
        let kf = bank.filters();
        let oh = params.out_dim(h, 3);
        let ow = params.out_dim(w, 3);
        out.reset_for_overwrite(&[n, kf, oh, ow]);
        let pixels = oh * ow;
        // Work estimate in lane-word-op equivalents: K accumulator adds
        // per channel per pixel, 8-wide when vectorized.
        let work = ((n * c * kf * pixels) / 8) as u64;
        if self.policy.effective_threads(work) <= 1 || n == 1 {
            scratch.bank.ensure(kf, pixels);
            conv2d_bank_items(bits, bank, params, 0, n, &mut scratch.bank, out.data_mut());
        } else {
            self.parallel_chunks(out.data_mut(), kf * pixels, 1, work, |first, band| {
                let mut local = BankScratch::default();
                let items = band.len() / (kf * pixels);
                conv2d_bank_items(bits, bank, params, first, items, &mut local, band);
            });
        }
        Ok(())
    }
}

/// The streaming autotuner's cache key for a live dispatch.
fn conv_geom(acts: &PackedActivations, kernel: &PackedKernel, params: Conv2dParams) -> ConvGeom {
    ConvGeom {
        channels: acts.channels(),
        filters: kernel.filters(),
        h: acts.height(),
        w: acts.width(),
        stride: params.stride,
        pad: params.pad,
    }
}

/// Warm the streaming-vs-im2col conv decision on the model zoo's hot
/// geometry (28×28, 64 channels, 64 filters, 3×3 stride-1 pad-1 — the
/// perfsuite's gated shape) and return every conv selection recorded so
/// far. `bnnkc features` calls this so the table has something to show
/// before any real forward has run; under a pinned `BITNN_CONV` the
/// recorded entry is the forced one.
pub fn warm_conv_table() -> Vec<ConvChoice> {
    let engine = Engine::new(ExecPolicy {
        threads: 1,
        ..ExecPolicy::default()
    });
    let bits = crate::weightgen::random_kernel(&[1, 64, 28, 28], 0xC0DE);
    let kernel = crate::weightgen::random_kernel(&[64, 64, 3, 3], 0xFACE);
    if let (Ok(acts), Ok(packed)) = (PackedActivations::pack(&bits), PackedKernel::pack(&kernel)) {
        let mut scratch = ConvScratch::default();
        let mut out = Tensor::default();
        let params = Conv2dParams { stride: 1, pad: 1 };
        let _ = engine.conv2d_into(&acts, (&packed).into(), params, &mut scratch, &mut out);
    }
    crate::simd::conv_choices()
}

/// Band-dispatch body of [`Engine::parallel_chunks`], parameterized over
/// the pool so tests can force a multi-worker pool on any host. `threads`
/// is the already-resolved effective thread count.
fn dispatch_chunks<T, F>(
    pool: &WorkerPool,
    threads: usize,
    out: &mut [T],
    width: usize,
    grain: usize,
    f: F,
) where
    T: Send,
    F: Fn(usize, &mut [T]) + Sync,
{
    if out.is_empty() || width == 0 {
        return;
    }
    debug_assert_eq!(out.len() % width, 0);
    let items = out.len() / width;
    // A few chunks per thread balances steal granularity against the
    // per-chunk claim overhead (one fetch_add each).
    let chunk_items = grain
        .max(1)
        .max(items.div_ceil(threads.max(1) * CHUNKS_PER_THREAD));
    let chunks = items.div_ceil(chunk_items);
    if threads <= 1 || chunks <= 1 {
        f(0, out);
        return;
    }
    let base = out.as_mut_ptr() as usize;
    let runner = |chunk: usize| {
        let start = chunk * chunk_items;
        let end = (start + chunk_items).min(items);
        // SAFETY: chunk indices are claimed exactly once by the pool, and
        // each maps to a disjoint item range of `out`, which outlives the
        // dispatch (the pool blocks until every chunk completes).
        let band = unsafe {
            std::slice::from_raw_parts_mut(
                (base as *mut T).add(start * width),
                (end - start) * width,
            )
        };
        f(start, band);
    };
    pool.dispatch(chunks, threads - 1, &runner);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::conv::conv2d_binary;
    use proptest::prelude::*;

    fn random_bits(shape: &[usize], seed: u64) -> BitTensor {
        let mut t = BitTensor::zeros(shape);
        let mut s = seed | 1;
        for i in 0..t.len() {
            s = s
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            if s >> 63 == 1 {
                t.set(i, true);
            }
        }
        t
    }

    #[test]
    fn engine_policy_plumbing() {
        assert_eq!(Engine::with_threads(5).policy().threads, 5);
        assert_eq!(Engine::with_threads(5).inner().policy().threads, 1);
        assert_eq!(Engine::single_threaded().policy().threads, 1);
    }

    #[test]
    fn parallel_chunks_covers_every_item_once() {
        // Drive the band dispatch directly with a forced 3-worker pool so
        // the chunked path runs with real threads even on 1-core hosts.
        let pool = crate::pool::WorkerPool::with_workers(3, 4);
        for threads in [1usize, 2, 3, 8] {
            for items in [1usize, 2, 7, 64, 257] {
                let mut out = vec![0u32; items * 3];
                dispatch_chunks(&pool, threads, &mut out, 3, 1, |first, band| {
                    for (i, row) in band.chunks_mut(3).enumerate() {
                        for v in row.iter_mut() {
                            *v += (first + i) as u32 + 1;
                        }
                    }
                });
                let expect: Vec<u32> = (0..items).flat_map(|i| [i as u32 + 1; 3]).collect();
                assert_eq!(out, expect, "threads={threads} items={items}");
            }
        }
    }

    #[test]
    fn parallel_chunks_respects_grain() {
        let pool = crate::pool::WorkerPool::with_workers(2, 4);
        let mut out = vec![0u8; 30];
        dispatch_chunks(&pool, 4, &mut out, 1, 8, |_, band| {
            // Bands are at least `grain` items (except possibly the last).
            assert!(band.len() >= 6, "band of {} items", band.len());
            band.fill(1);
        });
        assert!(out.iter().all(|&v| v == 1));
    }

    #[test]
    fn gemm_dim_mismatch_is_error() {
        let a = PackedMatrix::zeros(2, 10);
        let b = PackedMatrix::zeros(3, 11);
        assert!(Engine::single_threaded().gemm(&a, &b).is_err());
    }

    #[test]
    fn conv_channel_mismatch_is_error() {
        let a = PackedActivations::pack(&BitTensor::zeros(&[1, 8, 4, 4])).unwrap();
        let k = PackedKernel::pack(&BitTensor::zeros(&[1, 16, 3, 3])).unwrap();
        let mut s = ConvScratch::default();
        assert!(Engine::single_threaded()
            .conv2d(&a, (&k).into(), Conv2dParams::default(), &mut s)
            .is_err());
    }

    #[test]
    fn pointwise_gemm_path_matches_direct() {
        let a = random_bits(&[2, 70, 5, 4], 11);
        let wk = random_bits(&[9, 70, 1, 1], 13);
        let pa = PackedActivations::pack(&a).unwrap();
        let pk = PackedKernel::pack(&wk).unwrap();
        let mut s = ConvScratch::default();
        let fast = Engine::with_threads(4)
            .conv2d(&pa, (&pk).into(), Conv2dParams::default(), &mut s)
            .unwrap();
        let direct = conv2d_binary(&pa, &pk, Conv2dParams::default()).unwrap();
        assert_eq!(fast.shape(), direct.shape());
        assert_eq!(fast.data(), direct.data());
    }

    // The engine-vs-reference conv and GEMM oracle proptests that lived
    // here moved to `tests/backend_conformance.rs`, where one harness
    // sweeps every registered backend against the scalar oracle.

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]

        /// The engine's reusable-scratch conv gives identical results when
        /// the scratch is reused across differently-shaped layers.
        #[test]
        fn scratch_reuse_is_clean_across_shapes(
            c1 in 1usize..40, c2 in 1usize..40, seed in any::<u64>()
        ) {
            let engine = Engine::with_threads(2);
            let mut scratch = ConvScratch::default();
            for (i, &c) in [c1, c2, c1].iter().enumerate() {
                let a = random_bits(&[1, c, 5, 5], seed ^ i as u64);
                let wk = random_bits(&[3, c, 3, 3], !seed ^ i as u64);
                let pa = PackedActivations::pack(&a).unwrap();
                let pk = PackedKernel::pack(&wk).unwrap();
                let params = Conv2dParams { stride: 1, pad: 1 };
                let got = engine.conv2d(&pa, (&pk).into(), params, &mut scratch).unwrap();
                let expect = conv2d_binary(&pa, &pk, params).unwrap();
                prop_assert_eq!(got.data(), expect.data());
            }
        }
    }
}
