//! # bitnn — Binary Neural Network inference substrate
//!
//! This crate is the software baseline of the kernel-compression study: a
//! pure-Rust re-implementation of the parts of [daBNN] that the paper
//! relies on, namely
//!
//! * **bit-packed tensors** for weights and activations where each value is
//!   one bit (`1` encodes `+1`, `0` encodes `-1`),
//! * **channel packing** (paper Fig. 5): the bit at one spatial position of
//!   many channels is packed into machine words so a single register load
//!   brings in one position of up to 64 channels,
//! * **xnor + popcount** convolution and GEMM kernels (paper Eq. 2),
//! * the **ReActNet** layer set and model (paper Fig. 1 / Table I):
//!   `RSign`, binary 3×3 / 1×1 convolutions, batch-norm, `RPReLU`, 8-bit
//!   quantized input and output layers, and
//! * a **calibrated synthetic weight generator** reproducing the published
//!   bit-sequence frequency statistics (paper Fig. 3 / Table II), used in
//!   place of the trained ImageNet checkpoint.
//!
//! # Quick example
//!
//! ```
//! use bitnn::model::ReActNet;
//! use bitnn::tensor::Tensor;
//!
//! // A small ReActNet-shaped model (scaled-down channel schedule).
//! let model = ReActNet::tiny(0xBEEF);
//! let input = Tensor::zeros(&[1, 3, 32, 32]);
//! let logits = model.forward(&input);
//! assert_eq!(logits.shape(), &[1, 10]);
//! ```
//!
//! [daBNN]: https://arxiv.org/abs/1908.05858

#![warn(missing_docs)]

pub mod backend;
pub mod bank;
pub mod bitword;
pub mod engine;
pub mod error;
pub mod exec;
pub mod graph;
pub mod infer;
pub mod io;
pub mod layers;
pub mod model;
pub mod ops;
pub mod pack;
mod pool;
pub mod simd;
pub mod tensor;
pub mod weightgen;

pub use backend::{Backend, BackendKind};
pub use bank::{BankPlan, SequenceBank};
pub use engine::{Engine, KernelForms, Scratch};
pub use error::{BitnnError, Result};
pub use exec::{ConvMode, DedupMode, ExecPolicy, Lowering};
pub use graph::arch::Arch;
pub use graph::{BatchScratch, GraphBuilder, GraphSpec, ModelGraph};
pub use pack::{PackedActivations, PackedKernel};
pub use tensor::{BitTensor, Tensor};

/// Number of bits in one packed lane word.
///
/// The paper's target (ARMv8 NEON) uses 128-bit vector registers built from
/// 64-bit lanes; we use `u64` as the lane type everywhere, which is both the
/// widest native integer with a hardware `popcnt` on common targets and the
/// granularity daBNN packs at.
pub const LANE_BITS: usize = 64;

/// Compute how many `u64` lanes are needed to hold `bits` bits.
#[inline]
pub const fn lanes_for(bits: usize) -> usize {
    bits.div_ceil(LANE_BITS)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lanes_for_exact_and_partial() {
        assert_eq!(lanes_for(0), 0);
        assert_eq!(lanes_for(1), 1);
        assert_eq!(lanes_for(64), 1);
        assert_eq!(lanes_for(65), 2);
        assert_eq!(lanes_for(128), 2);
        assert_eq!(lanes_for(129), 3);
    }
}
