//! Calibrated synthetic binary kernels.
//!
//! The paper's experiments depend only on the *frequency distribution* of
//! 9-bit channel "bit sequences" in ReActNet's trained 3×3 kernels
//! (Fig. 3 / Table II), not on what the weights classify. Since the trained
//! ImageNet checkpoint is not available offline, this module generates
//! kernels whose empirical sequence distribution is calibrated to the
//! published statistics:
//!
//! * sequences are *ranked* by "naturalness" — distance to the all-zeros /
//!   all-ones sequences dominates, which reproduces the paper's observation
//!   that sequences `0`, `511` and their Hamming-1 neighbours (`256`, `255`,
//!   `4`, `510`, `1`, …) top the list (Fig. 3);
//! * rank masses are assigned in three segments so that the **top-64 and
//!   top-256 coverage exactly match a target pair** — the per-block targets
//!   are taken from Table II ([`TABLE2_TARGETS`]);
//! * within each segment the mass decays like a Zipf law, tuned so the
//!   top-16 coverage and the ~12–13% share of sequences 0/511 match Fig. 3.
//!
//! # Natural mapping (paper Fig. 2)
//!
//! A 3×3 channel maps to the integer whose **most significant bit is
//! position (0,0)** and least significant bit is position (2,2). The
//! all-`-1` channel is sequence 0; the all-`+1` channel is sequence 511.

use crate::tensor::BitTensor;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Number of distinct 9-bit sequences.
pub const NUM_SEQUENCES: usize = 512;

/// Bits per sequence (a 3×3 channel).
pub const SEQ_BITS: usize = 9;

/// Per-block (top-64 %, top-256 %) coverage targets from paper Table II.
pub const TABLE2_TARGETS: [(f64, f64); 13] = [
    (53.4, 90.6),
    (64.5, 95.1),
    (56.3, 87.11),
    (64.8, 92.7),
    (63.2, 88.3),
    (63.1, 90.86),
    (62.4, 91.64),
    (60.8, 90.24),
    (55.2, 92.9),
    (62.2, 89.9),
    (67.97, 92.0),
    (75.3, 93.4),
    (58.3, 86.9),
];

/// Write a 9-bit sequence into channel `ch` of filter `f` of a 3×3 kernel,
/// using the natural mapping (bit 8 = position (0,0), bit 0 = (2,2)).
///
/// # Panics
///
/// Panics if the kernel is not `[K, C, 3, 3]` or `seq >= 512`.
pub fn write_sequence(kernel: &mut BitTensor, f: usize, ch: usize, seq: u16) {
    assert!(seq < 512, "sequence out of range");
    let shape = kernel.shape().to_vec();
    assert_eq!(shape.len(), 4);
    assert_eq!((shape[2], shape[3]), (3, 3), "3x3 kernels only");
    for p in 0..SEQ_BITS {
        let bit = (seq >> (SEQ_BITS - 1 - p)) & 1 == 1;
        let i = kernel.idx4(f, ch, p / 3, p % 3);
        kernel.set(i, bit);
    }
}

/// Read the 9-bit sequence of channel `ch` of filter `f` (natural mapping).
///
/// # Panics
///
/// Panics if the kernel is not `[K, C, 3, 3]`.
pub fn read_sequence(kernel: &BitTensor, f: usize, ch: usize) -> u16 {
    let shape = kernel.shape();
    assert_eq!(shape.len(), 4);
    assert_eq!((shape[2], shape[3]), (3, 3), "3x3 kernels only");
    let mut seq = 0u16;
    for p in 0..SEQ_BITS {
        if kernel.get(kernel.idx4(f, ch, p / 3, p % 3)) {
            seq |= 1 << (SEQ_BITS - 1 - p);
        }
    }
    seq
}

/// Count sequence occurrences across all channels of a `[K, C, 3, 3]`
/// kernel. Index = sequence value, entry = count.
pub fn count_sequences(kernel: &BitTensor) -> Vec<u64> {
    let shape = kernel.shape();
    assert_eq!(shape.len(), 4);
    let mut counts = vec![0u64; NUM_SEQUENCES];
    for f in 0..shape[0] {
        for ch in 0..shape[1] {
            counts[read_sequence(kernel, f, ch) as usize] += 1;
        }
    }
    counts
}

/// A probability distribution over the 512 bit sequences, with sampling.
#[derive(Debug, Clone)]
pub struct SeqDistribution {
    /// `probs[s]` = probability of sequence `s`.
    probs: Vec<f64>,
    /// Sequences ordered by descending probability.
    order: Vec<u16>,
    /// Cumulative probabilities aligned with `order`, for sampling.
    cumulative: Vec<f64>,
}

impl SeqDistribution {
    /// Build from explicit per-sequence probabilities (normalized here).
    ///
    /// # Panics
    ///
    /// Panics if `probs.len() != 512`, any entry is negative, or all are 0.
    pub fn from_probs(probs: &[f64]) -> Self {
        assert_eq!(probs.len(), NUM_SEQUENCES);
        assert!(probs.iter().all(|&p| p >= 0.0), "negative probability");
        let total: f64 = probs.iter().sum();
        assert!(total > 0.0, "distribution has no mass");
        let probs: Vec<f64> = probs.iter().map(|p| p / total).collect();
        let mut order: Vec<u16> = (0..NUM_SEQUENCES as u16).collect();
        order.sort_by(|&a, &b| {
            probs[b as usize]
                .partial_cmp(&probs[a as usize])
                .unwrap()
                .then(a.cmp(&b))
        });
        let mut cumulative = Vec::with_capacity(NUM_SEQUENCES);
        let mut acc = 0.0;
        for &s in &order {
            acc += probs[s as usize];
            cumulative.push(acc);
        }
        // Guard against rounding: force the last entry to 1.
        *cumulative.last_mut().unwrap() = 1.0;
        SeqDistribution {
            probs,
            order,
            cumulative,
        }
    }

    /// Uniform distribution (the "no skew" baseline for ablations).
    pub fn uniform() -> Self {
        SeqDistribution::from_probs(&vec![1.0; NUM_SEQUENCES])
    }

    /// Calibrated distribution hitting `(top64_pct, top256_pct)` coverage.
    ///
    /// The construction is a globally **monotone non-increasing** sequence
    /// of probabilities along the naturalness ranking, built in three
    /// segments whose masses are the targets by construction:
    ///
    /// * ranks 0..64 — a Zipf body (exponent [`HEAD_ALPHA`], first two
    ///   ranks tied per Fig. 3) on top of a floor that keeps the segment's
    ///   tail above the next segment's average;
    /// * ranks 64..256 — a geometric decay from the previous tail down to a
    ///   floor above the last segment's average;
    /// * ranks 256..512 — a geometric decay from the previous tail.
    ///
    /// Monotonicity makes "top-k coverage" well-defined: the k most likely
    /// sequences are exactly the first k ranks, so `coverage(64)` and
    /// `coverage(256)` equal the targets up to float rounding.
    ///
    /// `seed` controls the pseudo-random tie-breaking in the naturalness
    /// ranking so different blocks get different (but statistically alike)
    /// tails.
    ///
    /// All 512 sequences receive nonzero probability; see
    /// [`SeqDistribution::calibrated_with_support`] for the trained-kernel
    /// variant with a truncated support.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < top64_pct < top256_pct <= 100` and the targets
    /// describe a head-heavy distribution (top-64 mass at least a third of
    /// the 64..256 mass, as all Table II rows do).
    pub fn calibrated(top64_pct: f64, top256_pct: f64, seed: u64) -> Self {
        Self::calibrated_with_support(top64_pct, top256_pct, NUM_SEQUENCES, seed)
    }

    /// Calibrated distribution whose support is limited to the `support`
    /// most natural sequences.
    ///
    /// Trained kernels do not exercise all 512 sequences; the paper's
    /// Sec. VI statistics (pre-clustering 12-bit node usage of 5%, and the
    /// 9-bit node usage collapsing from 23% to 8% once the 256 least
    /// common sequences are removed) are only consistent with a support of
    /// roughly 350 distinct sequences per block — with full support,
    /// "remove the 256 most uncommon" would only touch the ≈9% tail mass,
    /// not the mid ranks. [`DEFAULT_SUPPORT`] encodes this; `EXPERIMENTS.md`
    /// documents the calibration.
    ///
    /// # Panics
    ///
    /// Panics unless `256 < support <= 512` (Table II's top-256 coverage
    /// being below 100% requires more than 256 present sequences) and the
    /// targets satisfy the same conditions as [`SeqDistribution::calibrated`].
    pub fn calibrated_with_support(
        top64_pct: f64,
        top256_pct: f64,
        support: usize,
        seed: u64,
    ) -> Self {
        assert!(
            0.0 < top64_pct && top64_pct < top256_pct && top256_pct <= 100.0,
            "coverage targets must satisfy 0 < top64 < top256 <= 100"
        );
        assert!(
            (257..=NUM_SEQUENCES).contains(&support),
            "support must be in 257..=512"
        );
        let ranking = naturalness_ranking(seed);
        let m_a = top64_pct / 100.0;
        let m_b = top256_pct / 100.0 - m_a;
        let m_c = 1.0 - top256_pct / 100.0;

        // Floors keep each segment's tail above the next segment's needs.
        let floor_a = 1.02 * m_b / 192.0;
        let floor_b = 1.02 * m_c / (support - 256) as f64;
        assert!(
            64.0 * floor_a < m_a && 192.0 * floor_b < m_b + f64::EPSILON,
            "targets are not head-heavy enough for the monotone construction"
        );

        // --- Segment A: floor + Zipf body over 64 ranks, mass m_a ---
        let mut seg_a = vec![floor_a; 64];
        let mut body: Vec<f64> = (0..64)
            .map(|i| 1.0 / ((i + 1) as f64).powf(HEAD_ALPHA))
            .collect();
        body[1] = body[0] * 0.99; // sequences 0 and 511 nearly tied (Fig. 3)
        let body_sum: f64 = body.iter().sum();
        let body_mass = m_a - 64.0 * floor_a;
        for (p, w) in seg_a.iter_mut().zip(&body) {
            *p += body_mass * w / body_sum;
        }
        let tail_a = seg_a[63];

        // --- Segment B: floor + geometric decay from tail_a, mass m_b ---
        let seg_b = geometric_segment(192, tail_a, floor_b, m_b);
        let tail_b = *seg_b.last().unwrap();

        // --- Segment C: geometric decay from tail_b over the remaining
        //     support, mass m_c; ranks beyond the support get zero ---
        let mut seg_c = if m_c > 0.0 {
            geometric_segment(support - 256, tail_b, 0.0, m_c)
        } else {
            vec![0.0; support - 256]
        };
        seg_c.resize(256, 0.0);

        let mut probs = vec![0.0f64; NUM_SEQUENCES];
        for (rank, p) in seg_a.iter().chain(&seg_b).chain(&seg_c).enumerate() {
            probs[ranking[rank] as usize] = *p;
        }
        SeqDistribution::from_probs(&probs)
    }

    /// Calibrated distribution for paper block `block` (1-based, 1..=13),
    /// using the Table II targets and the trained-kernel support
    /// ([`DEFAULT_SUPPORT`]).
    ///
    /// # Panics
    ///
    /// Panics if `block` is not in `1..=13`.
    pub fn for_block(block: usize, seed: u64) -> Self {
        assert!((1..=13).contains(&block), "block must be 1..=13");
        let (t64, t256) = TABLE2_TARGETS[block - 1];
        SeqDistribution::calibrated_with_support(
            t64,
            t256,
            DEFAULT_SUPPORT,
            seed ^ (block as u64).wrapping_mul(0x9e37_79b9),
        )
    }

    /// Probability of sequence `s`.
    pub fn prob(&self, s: u16) -> f64 {
        self.probs[s as usize]
    }

    /// All probabilities, indexed by sequence value.
    pub fn probs(&self) -> &[f64] {
        &self.probs
    }

    /// Sequences in descending probability order.
    pub fn order(&self) -> &[u16] {
        &self.order
    }

    /// Total probability mass of the `k` most likely sequences.
    pub fn coverage(&self, k: usize) -> f64 {
        if k == 0 {
            0.0
        } else {
            self.cumulative[k.min(NUM_SEQUENCES) - 1]
        }
    }

    /// Draw one sequence.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> u16 {
        let u: f64 = rng.random();
        match self
            .cumulative
            .binary_search_by(|c| c.partial_cmp(&u).unwrap())
        {
            Ok(i) | Err(i) => self.order[i.min(NUM_SEQUENCES - 1)],
        }
    }

    /// Sample a `[filters, channels, 3, 3]` binary kernel.
    pub fn sample_kernel<R: Rng + ?Sized>(
        &self,
        filters: usize,
        channels: usize,
        rng: &mut R,
    ) -> BitTensor {
        let mut kernel = BitTensor::zeros(&[filters, channels, 3, 3]);
        for f in 0..filters {
            for ch in 0..channels {
                write_sequence(&mut kernel, f, ch, self.sample(rng));
            }
        }
        kernel
    }
}

/// Default number of distinct sequences a trained block's kernels
/// exercise. See [`SeqDistribution::calibrated_with_support`] for how this
/// is pinned by the paper's Sec. VI node-usage statistics.
pub const DEFAULT_SUPPORT: usize = 352;

/// Zipf exponent of the top-64 body in [`SeqDistribution::calibrated`].
///
/// Chosen so the within-top-64 shape matches Fig. 3: the head sequence
/// holds ~20% of the segment mass and the top-16 hold ~70%.
pub const HEAD_ALPHA: f64 = 1.25;

/// A monotone segment `p_i = floor + (start - floor) * r^(i+1)` of length
/// `n` whose sum equals `mass`, with `r` found by bisection. The first
/// element is strictly below `start`, so appending this segment after a
/// tail of value `start` keeps the whole sequence non-increasing.
///
/// # Panics
///
/// Panics if the mass is not achievable (`mass` outside
/// `(n*floor, n*start)`), which the calibration floors rule out.
fn geometric_segment(n: usize, start: f64, floor: f64, mass: f64) -> Vec<f64> {
    assert!(start > floor, "segment start must exceed its floor");
    let target = mass - n as f64 * floor;
    let span = start - floor;
    assert!(
        target > 0.0 && target < span * n as f64,
        "segment mass {mass} infeasible for start {start}, floor {floor}, n {n}"
    );
    // sum_{k=1..n} r^k is increasing in r; bisect.
    let sum_pow = |r: f64| -> f64 {
        let mut acc = 0.0;
        let mut p = 1.0;
        for _ in 0..n {
            p *= r;
            acc += p;
        }
        acc
    };
    let (mut lo, mut hi) = (0.0f64, 1.0f64);
    for _ in 0..200 {
        let mid = 0.5 * (lo + hi);
        if span * sum_pow(mid) < target {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    let r = 0.5 * (lo + hi);
    let mut out = Vec::with_capacity(n);
    let mut p = 1.0;
    for _ in 0..n {
        p *= r;
        out.push(floor + span * p);
    }
    out
}

/// The "anchor" patterns trained binary kernels gravitate towards: the
/// uniform channels plus horizontal/vertical edge patterns (cumulative row
/// and column fills under the natural mapping).
///
/// Fig. 3's published top-16 list (0, 511, 256, 255, 4, 510, 1, 507, 508,
/// 64, 3, 504, 447, 7, 448, 63) consists exactly of these anchors and
/// their Hamming-1 neighbours: 448/504/7/63 are row fills, and the rest
/// are within one bit of all-zeros or all-ones.
pub const ANCHOR_SEQUENCES: [u16; 10] = [
    0b000000000, // all -1
    0b111111111, // all +1
    0b111000000, // top row        (448)
    0b111111000, // top two rows   (504)
    0b000000111, // bottom row     (7)
    0b000111111, // bottom two     (63)
    0b100100100, // left column    (292)
    0b110110110, // left two       (438)
    0b001001001, // right column   (73)
    0b011011011, // right two      (219)
];

/// Rank all 512 sequences by "naturalness": primary key is the Hamming
/// distance to the nearest anchor pattern ([`ANCHOR_SEQUENCES`]), with the
/// uniform sequences 0 and 511 pinned to ranks 0 and 1; the secondary key
/// is a seeded hash so ties break differently per block.
///
/// Ranking by anchor distance (rather than plain Hamming weight) matters
/// for the clustering experiment: it spreads the common set across Hamming
/// weights the way trained kernels do, so rare sequences usually *have* a
/// Hamming-1 neighbour among the common ones — the property the paper's
/// Sec. III-C algorithm relies on.
pub fn naturalness_ranking(seed: u64) -> Vec<u16> {
    let mut seqs: Vec<u16> = (0..NUM_SEQUENCES as u16).collect();
    let key = |s: u16| -> (u32, u64) {
        let dist = if s == 0 || s == 511 {
            0
        } else {
            1 + ANCHOR_SEQUENCES
                .iter()
                .map(|&a| ((s ^ a) as u32).count_ones())
                .min()
                .expect("anchors are non-empty")
        };
        // Deterministic per-seed tie-break hash (splitmix64).
        let mut h = seed ^ ((s as u64) << 17).wrapping_add(0x9e37_79b9_7f4a_7c15);
        h = (h ^ (h >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        h = (h ^ (h >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        h ^= h >> 31;
        (dist, h)
    };
    seqs.sort_by_key(|&s| key(s));
    seqs
}

/// Sample uniformly random binary weights of any 4-D shape (used for the
/// 1×1 kernels, which the paper does not compress).
pub fn random_kernel(shape: &[usize], seed: u64) -> BitTensor {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut t = BitTensor::zeros(shape);
    for i in 0..t.len() {
        if rng.random::<bool>() {
            t.set(i, true);
        }
    }
    t
}

/// Sample float weights uniform in `[-bound, bound]` (for the 8-bit layers).
pub fn random_floats(n: usize, bound: f32, seed: u64) -> Vec<f32> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n).map(|_| rng.random_range(-bound..bound)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn natural_mapping_roundtrip_all_sequences() {
        let mut kernel = BitTensor::zeros(&[1, 1, 3, 3]);
        for s in 0..512u16 {
            write_sequence(&mut kernel, 0, 0, s);
            assert_eq!(read_sequence(&kernel, 0, 0), s);
        }
    }

    #[test]
    fn natural_mapping_msb_is_position_00() {
        // Paper Fig. 2: value at (0,0) is the most significant bit.
        let mut kernel = BitTensor::zeros(&[1, 1, 3, 3]);
        write_sequence(&mut kernel, 0, 0, 0b100_000_000);
        assert_eq!(kernel.sign_at4(0, 0, 0, 0), 1);
        for p in 1..9 {
            assert_eq!(kernel.sign_at4(0, 0, p / 3, p % 3), -1);
        }
        // All ones -> 511; all minus-ones -> 0.
        write_sequence(&mut kernel, 0, 0, 511);
        assert!((0..9).all(|p| kernel.sign_at4(0, 0, p / 3, p % 3) == 1));
    }

    #[test]
    fn fig2_example_sequence_369() {
        // Fig. 2 channel 1: rows (1,-1,1),(1,1,-1),(-1,-1,1) -> bits
        // 101110001 = 369.
        let bits = [true, false, true, true, true, false, false, false, true];
        let mut kernel = BitTensor::zeros(&[1, 1, 3, 3]);
        for (p, &b) in bits.iter().enumerate() {
            let i = kernel.idx4(0, 0, p / 3, p % 3);
            kernel.set(i, b);
        }
        assert_eq!(read_sequence(&kernel, 0, 0), 369);
    }

    #[test]
    fn ranking_starts_with_extremes() {
        let r = naturalness_ranking(7);
        assert!(r[0] == 0 || r[0] == 511);
        assert!(r[1] == 0 || r[1] == 511);
        assert_ne!(r[0], r[1]);
        // The next ranks are anchors or their Hamming-1 neighbours.
        let near_anchor = |s: u16| {
            ANCHOR_SEQUENCES
                .iter()
                .map(|&a| ((s ^ a) as u32).count_ones())
                .min()
                .unwrap()
        };
        for &s in &r[2..20] {
            assert!(near_anchor(s) <= 1, "sequence {s} ranks too early");
        }
        // It is a permutation.
        let mut sorted = r.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..512).collect::<Vec<u16>>());
    }

    #[test]
    fn fig3_published_top16_rank_early() {
        // The paper's observed top-16 should all live in the head of our
        // ranking (they are anchors or one bit away from one).
        let fig3 = [
            0u16, 511, 256, 255, 4, 510, 1, 507, 508, 64, 3, 504, 447, 7, 448, 63,
        ];
        let r = naturalness_ranking(0);
        let pos = |s: u16| r.iter().position(|&x| x == s).unwrap();
        for &s in &fig3 {
            assert!(pos(s) < 120, "sequence {s} at rank {}", pos(s));
        }
    }

    #[test]
    fn calibrated_hits_coverage_targets_exactly() {
        for &(t64, t256) in TABLE2_TARGETS.iter() {
            let d = SeqDistribution::calibrated(t64, t256, 3);
            assert!(
                (d.coverage(64) * 100.0 - t64).abs() < 1e-6,
                "top64: {} vs {t64}",
                d.coverage(64) * 100.0
            );
            assert!(
                (d.coverage(256) * 100.0 - t256).abs() < 1e-6,
                "top256: {} vs {t256}",
                d.coverage(256) * 100.0
            );
        }
    }

    #[test]
    fn calibrated_head_matches_fig3_shape() {
        // Fig. 3 shows a block where sequences 0 and 511 are ~12.8%/12.7%
        // and the top-16 cover ~46% while the top-64 cover ~64.5%
        // (= block 2's Table II row). Check the within-segment shape: the
        // head pair holds ~like the figure and top16/top64 ≈ 46/64.5 ≈ 0.71.
        let d = SeqDistribution::for_block(2, 0);
        let p0 = d.prob(0) * 100.0;
        let p511 = d.prob(511) * 100.0;
        assert!((10.0..16.0).contains(&p0), "p(0) = {p0}");
        assert!((10.0..16.0).contains(&p511), "p(511) = {p511}");
        let top16 = d.coverage(16) * 100.0;
        assert!((41.0..51.0).contains(&top16), "top16 = {top16}");
        // The ratio holds across blocks, not just the one in the figure.
        for block in 1..=13 {
            let d = SeqDistribution::for_block(block, 0);
            let ratio = d.coverage(16) / d.coverage(64);
            assert!((0.6..0.85).contains(&ratio), "block {block}: ratio {ratio}");
        }
    }

    #[test]
    fn sampling_converges_to_distribution() {
        let d = SeqDistribution::for_block(2, 1);
        let mut rng = StdRng::seed_from_u64(99);
        let kernel = d.sample_kernel(64, 64, &mut rng); // 4096 draws
        let counts = count_sequences(&kernel);
        let total: u64 = counts.iter().sum();
        assert_eq!(total, 64 * 64);
        // Empirical top-64 coverage should be near the 64.5% target.
        let mut c: Vec<u64> = counts.clone();
        c.sort_unstable_by(|a, b| b.cmp(a));
        let top64: u64 = c.iter().take(64).sum();
        let pct = top64 as f64 / total as f64 * 100.0;
        assert!((pct - 64.5).abs() < 6.0, "empirical top64 = {pct}");
    }

    #[test]
    fn uniform_coverage_is_linear() {
        let d = SeqDistribution::uniform();
        assert!((d.coverage(256) - 0.5).abs() < 1e-9);
        assert!((d.coverage(64) - 0.125).abs() < 1e-9);
    }

    #[test]
    fn count_sequences_totals_channels() {
        let d = SeqDistribution::uniform();
        let mut rng = StdRng::seed_from_u64(5);
        let k = d.sample_kernel(3, 7, &mut rng);
        let counts = count_sequences(&k);
        assert_eq!(counts.iter().sum::<u64>(), 21);
    }

    #[test]
    #[should_panic(expected = "coverage targets")]
    fn bad_targets_panic() {
        SeqDistribution::calibrated(90.0, 50.0, 0);
    }

    #[test]
    fn deterministic_given_seed() {
        let mut r1 = StdRng::seed_from_u64(11);
        let mut r2 = StdRng::seed_from_u64(11);
        let d = SeqDistribution::for_block(3, 4);
        assert_eq!(
            d.sample_kernel(2, 8, &mut r1),
            d.sample_kernel(2, 8, &mut r2)
        );
    }
}
