//! Channel packing (paper Fig. 5).
//!
//! daBNN's key layout trick: instead of storing a kernel channel-by-channel,
//! the bit at one *spatial position* of many channels is packed into a
//! single machine word. Loading one word then brings position `(r, c)` of 64
//! channels into a register at once, and the xnor-popcount inner product
//! over channels becomes a loop over lanes with no bit shuffling.
//!
//! Two packed containers are provided:
//!
//! * [`PackedKernel`] — weights `[K, C, KH, KW]` packed as
//!   `kernel[k][position][lane]`,
//! * [`PackedActivations`] — activations `[N, C, H, W]` packed as
//!   `act[n][y][x][lane]`.
//!
//! Both store channels along the lane dimension so that a kernel position
//! word and an activation pixel word line up channel-for-channel.

use crate::error::{BitnnError, Result};
use crate::tensor::BitTensor;
use crate::{lanes_for, LANE_BITS};

/// Channel-packed binary convolution kernel.
///
/// Layout: `data[((k * positions) + p) * lanes + l]` holds the bits of
/// channels `l*64 .. l*64+64` at spatial position `p = r * kw + c` of output
/// filter `k`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PackedKernel {
    filters: usize,
    channels: usize,
    kh: usize,
    kw: usize,
    lanes: usize,
    data: Vec<u64>,
}

impl PackedKernel {
    /// Pack a binary weight tensor of shape `[K, C, KH, KW]`.
    ///
    /// # Errors
    ///
    /// Returns [`BitnnError::ShapeMismatch`] if `weights` is not 4-D.
    pub fn pack(weights: &BitTensor) -> Result<Self> {
        let shape = weights.shape();
        if shape.len() != 4 {
            return Err(BitnnError::ShapeMismatch {
                expected: "4-D kernel [K, C, KH, KW]".into(),
                got: format!("{shape:?}"),
            });
        }
        let (k, c, kh, kw) = (shape[0], shape[1], shape[2], shape[3]);
        let lanes = lanes_for(c);
        let positions = kh * kw;
        let src = weights.words();
        let mut data = vec![0u64; k * positions * lanes];
        // Word-at-a-time packing: each destination lane (64 channels of one
        // filter position) is assembled in a register from the channel-major
        // source — bit (f, ch, p) sits at flat index (f*C + ch)*positions + p,
        // i.e. stride `positions` per channel — and stored with one write.
        for f in 0..k {
            for p in 0..positions {
                let base = f * c * positions + p;
                for (l, word) in data[(f * positions + p) * lanes..][..lanes]
                    .iter_mut()
                    .enumerate()
                {
                    let c0 = l * LANE_BITS;
                    let nb = (c - c0).min(LANE_BITS);
                    let mut w = 0u64;
                    for j in 0..nb {
                        let bit = base + (c0 + j) * positions;
                        w |= ((src[bit / 64] >> (bit % 64)) & 1) << j;
                    }
                    *word = w;
                }
            }
        }
        Ok(PackedKernel {
            filters: k,
            channels: c,
            kh,
            kw,
            lanes,
            data,
        })
    }

    /// Build directly from channel-packed lane words — the layout a
    /// streaming decoder's packing unit emits (paper Fig. 6): for each
    /// filter and spatial position, `lanes_for(channels)` 64-bit words
    /// whose bit `j` of lane `l` is channel `l*64 + j`. This is the
    /// constructor the compressed-container inference path uses so a
    /// kernel goes stream → lane words → engine without ever
    /// materializing a flat `[K, C, KH, KW]` tensor.
    ///
    /// Bits beyond `channels` in the final lane are masked off, so the
    /// xnor-popcount kernels (which assume zero lane padding) stay exact
    /// even for a sloppy producer.
    ///
    /// # Errors
    ///
    /// Returns [`BitnnError::ShapeMismatch`] if any dimension is zero or
    /// `data.len() != filters * kh * kw * lanes_for(channels)`.
    pub fn from_lane_words(
        filters: usize,
        channels: usize,
        kh: usize,
        kw: usize,
        mut data: Vec<u64>,
    ) -> Result<Self> {
        if filters == 0 || channels == 0 || kh == 0 || kw == 0 {
            return Err(BitnnError::ShapeMismatch {
                expected: "non-zero kernel dimensions".into(),
                got: format!("[{filters}, {channels}, {kh}, {kw}]"),
            });
        }
        let lanes = lanes_for(channels);
        let want = filters * kh * kw * lanes;
        if data.len() != want {
            return Err(BitnnError::ShapeMismatch {
                expected: format!("{want} lane words"),
                got: format!("{}", data.len()),
            });
        }
        let tail_bits = channels % LANE_BITS;
        if tail_bits != 0 {
            let mask = (1u64 << tail_bits) - 1;
            for (i, w) in data.iter_mut().enumerate() {
                if i % lanes == lanes - 1 {
                    *w &= mask;
                }
            }
        }
        Ok(PackedKernel {
            filters,
            channels,
            kh,
            kw,
            lanes,
            data,
        })
    }

    /// Number of output filters `K`.
    pub fn filters(&self) -> usize {
        self.filters
    }

    /// Number of input channels `C`.
    pub fn channels(&self) -> usize {
        self.channels
    }

    /// Kernel height.
    pub fn kh(&self) -> usize {
        self.kh
    }

    /// Kernel width.
    pub fn kw(&self) -> usize {
        self.kw
    }

    /// Number of 64-bit lanes per position.
    pub fn lanes(&self) -> usize {
        self.lanes
    }

    /// The lane words for filter `k` at position `p` (length = `lanes()`).
    #[inline]
    pub fn position_lanes(&self, k: usize, p: usize) -> &[u64] {
        let base = (k * self.kh * self.kw + p) * self.lanes;
        &self.data[base..base + self.lanes]
    }

    /// Raw packed words.
    pub fn words(&self) -> &[u64] {
        &self.data
    }

    /// Total packed storage in bytes.
    pub fn storage_bytes(&self) -> usize {
        self.data.len() * 8
    }

    /// Unpack back to a flat [`BitTensor`] of shape `[K, C, KH, KW]`.
    pub fn unpack(&self) -> BitTensor {
        let mut t = BitTensor::zeros(&[self.filters, self.channels, self.kh, self.kw]);
        for f in 0..self.filters {
            for r in 0..self.kh {
                for col in 0..self.kw {
                    let p = r * self.kw + col;
                    let lanes = self.position_lanes(f, p);
                    for ch in 0..self.channels {
                        if (lanes[ch / LANE_BITS] >> (ch % LANE_BITS)) & 1 == 1 {
                            let i = t.idx4(f, ch, r, col);
                            t.set(i, true);
                        }
                    }
                }
            }
        }
        t
    }
}

/// Channel-packed binary activations.
///
/// Layout: `data[(((n * h) + y) * w + x) * lanes + l]` holds channels
/// `l*64 .. l*64+64` of pixel `(y, x)` in image `n`.
///
/// Because pixels are row-major with `lanes` words each, the container
/// doubles as a packed matrix with one `channels()`-bit row per pixel —
/// the execution engine exploits this to run 1×1 convolutions as a GEMM
/// directly over [`Self::words`] with no re-packing.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PackedActivations {
    n: usize,
    channels: usize,
    h: usize,
    w: usize,
    lanes: usize,
    data: Vec<u64>,
}

impl PackedActivations {
    /// Pack a binary activation tensor of shape `[N, C, H, W]`.
    ///
    /// # Errors
    ///
    /// Returns [`BitnnError::ShapeMismatch`] if `acts` is not 4-D.
    pub fn pack(acts: &BitTensor) -> Result<Self> {
        let mut out = PackedActivations::default();
        out.repack(acts)?;
        Ok(out)
    }

    /// Re-pack `acts` into this container, reusing its allocation.
    ///
    /// This is the scratch-buffer entry point used by the execution
    /// engine's forward pass so each layer stops allocating a fresh packed
    /// buffer.
    ///
    /// # Errors
    ///
    /// Returns [`BitnnError::ShapeMismatch`] if `acts` is not 4-D.
    pub fn repack(&mut self, acts: &BitTensor) -> Result<()> {
        let shape = acts.shape();
        if shape.len() != 4 {
            return Err(BitnnError::ShapeMismatch {
                expected: "4-D activations [N, C, H, W]".into(),
                got: format!("{shape:?}"),
            });
        }
        let (n, c, h, w) = (shape[0], shape[1], shape[2], shape[3]);
        let lanes = lanes_for(c);
        let hw = h * w;
        let src = acts.words();
        self.data.clear();
        self.data.resize(n * hw * lanes, 0);
        // Word-at-a-time packing: bit (img, ch, y, x) sits at flat index
        // img*C*HW + ch*HW + (y*W + x), i.e. stride HW per channel for a
        // fixed pixel; each destination lane is gathered in a register and
        // stored once.
        for img in 0..n {
            for pix in 0..hw {
                let base = img * c * hw + pix;
                for (l, word) in self.data[(img * hw + pix) * lanes..][..lanes]
                    .iter_mut()
                    .enumerate()
                {
                    let c0 = l * LANE_BITS;
                    let nb = (c - c0).min(LANE_BITS);
                    let mut wd = 0u64;
                    for j in 0..nb {
                        let bit = base + (c0 + j) * hw;
                        wd |= ((src[bit / 64] >> (bit % 64)) & 1) << j;
                    }
                    *word = wd;
                }
            }
        }
        self.n = n;
        self.channels = c;
        self.h = h;
        self.w = w;
        self.lanes = lanes;
        Ok(())
    }

    /// Batch size.
    pub fn batch(&self) -> usize {
        self.n
    }

    /// Channel count.
    pub fn channels(&self) -> usize {
        self.channels
    }

    /// Height.
    pub fn height(&self) -> usize {
        self.h
    }

    /// Width.
    pub fn width(&self) -> usize {
        self.w
    }

    /// Lanes per pixel.
    pub fn lanes(&self) -> usize {
        self.lanes
    }

    /// The lane words of pixel `(y, x)` in image `n`.
    #[inline]
    pub fn pixel_lanes(&self, n: usize, y: usize, x: usize) -> &[u64] {
        let base = (((n * self.h) + y) * self.w + x) * self.lanes;
        &self.data[base..base + self.lanes]
    }

    /// Raw packed words.
    pub fn words(&self) -> &[u64] {
        &self.data
    }

    /// Re-shape this container for `[n, c, h, w]` and zero every word,
    /// reusing the allocation — the direct-write seat for
    /// [`crate::layers::RSign::binarize_packed_into`], which assembles
    /// lane words with single-bit ORs and needs a zeroed start (this also
    /// preserves the clean-tail invariant: bits at and above `c` in the
    /// last lane stay zero).
    pub(crate) fn reset_zeroed(&mut self, n: usize, c: usize, h: usize, w: usize) {
        let lanes = lanes_for(c);
        self.data.clear();
        self.data.resize(n * h * w * lanes, 0);
        self.n = n;
        self.channels = c;
        self.h = h;
        self.w = w;
        self.lanes = lanes;
    }

    /// Mutable raw packed words, for the fused sign→pack writer.
    pub(crate) fn words_mut(&mut self) -> &mut [u64] {
        &mut self.data
    }

    /// Unpack back to a flat [`BitTensor`] of shape `[N, C, H, W]`.
    pub fn unpack(&self) -> BitTensor {
        let mut t = BitTensor::zeros(&[self.n, self.channels, self.h, self.w]);
        for img in 0..self.n {
            for y in 0..self.h {
                for x in 0..self.w {
                    let lanes = self.pixel_lanes(img, y, x);
                    for ch in 0..self.channels {
                        if (lanes[ch / LANE_BITS] >> (ch % LANE_BITS)) & 1 == 1 {
                            let i = t.idx4(img, ch, y, x);
                            t.set(i, true);
                        }
                    }
                }
            }
        }
        t
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn random_bits(shape: &[usize], seed: u64) -> BitTensor {
        // Simple deterministic LCG so tests don't need rand here.
        let mut t = BitTensor::zeros(shape);
        let mut s = seed | 1;
        for i in 0..t.len() {
            s = s
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            if s >> 63 == 1 {
                t.set(i, true);
            }
        }
        t
    }

    #[test]
    fn kernel_pack_unpack_roundtrip() {
        let w = random_bits(&[4, 70, 3, 3], 42);
        let pk = PackedKernel::pack(&w).unwrap();
        assert_eq!(pk.lanes(), 2); // 70 channels -> 2 lanes
        assert_eq!(pk.unpack(), w);
    }

    #[test]
    fn activation_pack_unpack_roundtrip() {
        let a = random_bits(&[2, 130, 5, 4], 7);
        let pa = PackedActivations::pack(&a).unwrap();
        assert_eq!(pa.lanes(), 3);
        assert_eq!(pa.unpack(), a);
    }

    #[test]
    fn pack_rejects_non_4d() {
        let t = BitTensor::zeros(&[4, 4]);
        assert!(PackedKernel::pack(&t).is_err());
        assert!(PackedActivations::pack(&t).is_err());
    }

    #[test]
    fn fig5_example_two_channels() {
        // Paper Fig. 5: a 2-channel 3x3 kernel is packed into nine 2-bit
        // registers, one per position, bit 0 = channel a, bit 1 = channel b.
        let mut w = BitTensor::zeros(&[1, 2, 3, 3]);
        // Channel 0: set position (0,0); channel 1: set positions (0,0),(2,2).
        let i = w.idx4(0, 0, 0, 0);
        w.set(i, true);
        let i = w.idx4(0, 1, 0, 0);
        w.set(i, true);
        let i = w.idx4(0, 1, 2, 2);
        w.set(i, true);
        let pk = PackedKernel::pack(&w).unwrap();
        assert_eq!(pk.lanes(), 1);
        assert_eq!(pk.position_lanes(0, 0)[0], 0b11); // both channels at (0,0)
        assert_eq!(pk.position_lanes(0, 8)[0], 0b10); // only channel 1 at (2,2)
        for p in 1..8 {
            assert_eq!(pk.position_lanes(0, p)[0], 0);
        }
    }

    #[test]
    fn lane_alignment_matches_between_kernel_and_activations() {
        // The same channel index must land in the same lane/bit in both
        // containers, otherwise xnor lanes would be misaligned.
        let c = 100;
        let mut w = BitTensor::zeros(&[1, c, 1, 1]);
        let mut a = BitTensor::zeros(&[1, c, 1, 1]);
        let ch = 77;
        let i = w.idx4(0, ch, 0, 0);
        w.set(i, true);
        let i = a.idx4(0, ch, 0, 0);
        a.set(i, true);
        let pk = PackedKernel::pack(&w).unwrap();
        let pa = PackedActivations::pack(&a).unwrap();
        assert_eq!(pk.position_lanes(0, 0), pa.pixel_lanes(0, 0, 0));
    }

    #[test]
    fn from_lane_words_matches_pack() {
        // Feeding pack()'s own words back through the streaming-side
        // constructor must reproduce the kernel exactly.
        for c in [1usize, 63, 64, 65, 130] {
            let w = random_bits(&[3, c, 3, 3], c as u64 ^ 0x5EED);
            let pk = PackedKernel::pack(&w).unwrap();
            let rebuilt = PackedKernel::from_lane_words(3, c, 3, 3, pk.words().to_vec()).unwrap();
            assert_eq!(rebuilt, pk, "c = {c}");
            assert_eq!(rebuilt.unpack(), w, "c = {c}");
        }
    }

    #[test]
    fn from_lane_words_masks_tail_lane_padding() {
        // 70 channels -> lane 1 holds 6 real bits; garbage above them must
        // be cleared so popcounts stay exact.
        let lanes = crate::lanes_for(70);
        let words = vec![u64::MAX; 9 * lanes];
        let pk = PackedKernel::from_lane_words(1, 70, 3, 3, words).unwrap();
        for p in 0..9 {
            assert_eq!(pk.position_lanes(0, p)[1], (1u64 << 6) - 1);
        }
        let t = pk.unpack();
        assert!((0..t.len()).all(|i| t.get(i)));
    }

    #[test]
    fn from_lane_words_rejects_bad_shapes() {
        assert!(PackedKernel::from_lane_words(0, 4, 3, 3, vec![]).is_err());
        assert!(PackedKernel::from_lane_words(1, 0, 3, 3, vec![]).is_err());
        assert!(PackedKernel::from_lane_words(1, 4, 3, 3, vec![0; 8]).is_err());
        assert!(PackedKernel::from_lane_words(1, 4, 3, 3, vec![0; 10]).is_err());
        assert!(PackedKernel::from_lane_words(1, 4, 3, 3, vec![0; 9]).is_ok());
    }

    #[test]
    fn storage_bytes_counts_lane_padding() {
        let w = BitTensor::zeros(&[2, 65, 3, 3]);
        let pk = PackedKernel::pack(&w).unwrap();
        // 65 channels -> 2 lanes; 2 filters * 9 positions * 2 lanes * 8 bytes.
        assert_eq!(pk.storage_bytes(), 2 * 9 * 2 * 8);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn kernel_roundtrip_any_shape(
            k in 1usize..4, c in 1usize..130, kh in 1usize..4, kw in 1usize..4, seed in any::<u64>()
        ) {
            let w = random_bits(&[k, c, kh, kw], seed);
            let pk = PackedKernel::pack(&w).unwrap();
            prop_assert_eq!(pk.unpack(), w);
        }

        #[test]
        fn activations_roundtrip_any_shape(
            n in 1usize..3, c in 1usize..130, h in 1usize..5, w in 1usize..5, seed in any::<u64>()
        ) {
            let a = random_bits(&[n, c, h, w], seed);
            let pa = PackedActivations::pack(&a).unwrap();
            prop_assert_eq!(pa.unpack(), a);
        }
    }
}
