//! The production CPU backend: fused steps lowered onto the
//! tiled/parallel [`Engine`] kernels, with binarization and channel
//! packing staged through reused scratch buffers. On a warmed scratch the
//! whole forward performs zero heap allocation.

use std::any::Any;

use super::{layer, Backend, StepCtx};
use crate::engine::{ConvScratch, CpuScratch, Engine};
use crate::error::Result;
use crate::exec::ExecPolicy;
use crate::graph::{fused_steps, CompiledPlan, GraphNode, NodeOp, Step};
use crate::layers::{avg_pool_2x2_into, global_avg_pool_into, BinConv2d, RSign};
use crate::model::block::{
    add_into, fuse_channel_stage, fuse_spatial_stage, shortcut_channels_into,
};
use crate::pack::PackedActivations;
use crate::tensor::{BitTensor, Tensor};

/// The engine-accelerated backend. Compiles the *fused* step list —
/// sign folded into conv, every single-use `conv → bn → (+shortcut) →
/// act` chain collapsed onto one fused element-wise kernel — and executes
/// it through [`Engine`]'s tiled, SIMD-dispatched, optionally parallel
/// kernels with a [`CpuScratch`] of reused staging buffers.
#[derive(Debug, Clone)]
pub struct CpuBackend {
    engine: Engine,
}

impl CpuBackend {
    /// Backend running on `engine`'s policy (threads, lowering).
    pub fn new(engine: Engine) -> Self {
        CpuBackend { engine }
    }

    /// The engine this backend dispatches kernels through.
    pub fn engine(&self) -> &Engine {
        &self.engine
    }
}

impl Backend for CpuBackend {
    fn name(&self) -> &'static str {
        "cpu"
    }

    fn compile(&self, nodes: &[GraphNode]) -> CompiledPlan {
        CompiledPlan::from_steps(nodes.len(), fused_steps(nodes))
    }

    fn new_scratch(&self) -> Box<dyn Any + Send> {
        Box::new(CpuScratch::default())
    }

    fn execute_step(
        &self,
        ctx: StepCtx<'_>,
        scratch: &mut (dyn Any + Send),
        dst: &mut Tensor,
    ) -> Result<()> {
        let s = scratch
            .downcast_mut::<CpuScratch>()
            .expect("CpuBackend scratch is CpuScratch");
        let nodes = ctx.nodes;
        match *ctx.step {
            Step::Input { .. } => unreachable!("the dispatch loop skips input steps"),
            Step::Stem { node, .. } => {
                let stem = layer!(nodes, node, NodeOp::StemConv);
                stem.forward_fast_with(ctx.a, &mut s.quant, dst);
            }
            Step::Conv { node, sign, .. } => {
                let sg = layer!(nodes, sign, NodeOp::Sign);
                let cv = layer!(nodes, node, NodeOp::BinConv);
                self.sign_conv_stage(
                    sg,
                    cv,
                    ctx.binary_edge,
                    ctx.a,
                    &mut s.bits,
                    &mut s.packed,
                    &mut s.conv,
                    dst,
                );
            }
            Step::Bn { node, .. } => {
                layer!(nodes, node, NodeOp::BatchNorm).forward_into(ctx.a, dst);
            }
            Step::Act { node, .. } => {
                layer!(nodes, node, NodeOp::Act).forward_into(ctx.a, dst);
            }
            Step::AvgPool { .. } => {
                avg_pool_2x2_into(ctx.a, dst);
            }
            Step::ChannelDup { .. } => {
                shortcut_channels_into(ctx.a, 2 * ctx.a.shape()[1], dst);
            }
            Step::Add { .. } => {
                add_into(ctx.a, ctx.b.expect("add step has two operands"), dst);
            }
            Step::GlobalPool { .. } => {
                global_avg_pool_into(ctx.a, dst);
            }
            Step::Classifier { node, .. } => {
                let fc = layer!(nodes, node, NodeOp::Classifier);
                fc.forward_2d_with(ctx.a, &mut s.quant, dst);
            }
            Step::FusedSpatial {
                act,
                sign,
                conv,
                bn,
                ..
            } => {
                self.conv_chain_into(nodes, sign, conv, ctx.binary_edge, ctx.a, s);
                return fuse_spatial_stage(
                    &s.conv_out,
                    ctx.a,
                    2,
                    layer!(nodes, bn, NodeOp::BatchNorm),
                    layer!(nodes, act, NodeOp::Act),
                    dst,
                );
            }
            Step::FusedChannel {
                act,
                sign,
                conv,
                bn,
                ..
            } => {
                self.conv_chain_into(nodes, sign, conv, ctx.binary_edge, ctx.a, s);
                fuse_channel_stage(
                    &s.conv_out,
                    ctx.a,
                    layer!(nodes, bn, NodeOp::BatchNorm),
                    layer!(nodes, act, NodeOp::Act),
                    dst,
                );
            }
        }
        Ok(())
    }

    fn policy(&self) -> ExecPolicy {
        self.engine.policy()
    }
}

impl CpuBackend {
    /// The staged `sign → binary conv` prefix shared by every
    /// conv-bearing step.
    ///
    /// On a binary-domain edge feeding a dense-path conv, the sign
    /// writes channel-packed lane words straight into `packed` and the
    /// conv consumes them — the flat bit tensor is never materialized
    /// and the per-conv re-pack (64 strided single-bit gathers per lane
    /// word) disappears. The sequence-bank kernel is the one consumer
    /// that wants raw bits, so bank-path layers keep the
    /// binarize-then-repack staging.
    #[allow(clippy::too_many_arguments)]
    fn sign_conv_stage(
        &self,
        sg: &RSign,
        cv: &BinConv2d,
        binary_edge: bool,
        x: &Tensor,
        bits: &mut BitTensor,
        packed: &mut PackedActivations,
        conv: &mut ConvScratch,
        dst: &mut Tensor,
    ) {
        if binary_edge && !cv.wants_bank_path(&self.engine) {
            sg.binarize_packed_into(x, packed);
            cv.forward_packed_with(packed, &self.engine, conv, dst);
        } else {
            sg.binarize_into(x, bits);
            cv.forward_binarized_with(bits, packed, &self.engine, conv, dst);
        }
    }

    /// The staged `sign → binary conv` prefix of a fused step, landing
    /// in `scratch.conv_out`.
    fn conv_chain_into(
        &self,
        nodes: &[GraphNode],
        sign: usize,
        conv: usize,
        binary_edge: bool,
        x: &Tensor,
        s: &mut CpuScratch,
    ) {
        let sg = layer!(nodes, sign, NodeOp::Sign);
        let cv = layer!(nodes, conv, NodeOp::BinConv);
        let CpuScratch {
            bits,
            packed,
            conv: conv_scratch,
            conv_out,
            ..
        } = s;
        self.sign_conv_stage(sg, cv, binary_edge, x, bits, packed, conv_scratch, conv_out);
    }
}
