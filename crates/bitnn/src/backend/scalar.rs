//! The scalar reference backend: naive per-node forwards, fresh
//! allocations, no fusion, no engine. Slow and obvious by design — this
//! is the bit-exactness oracle every other backend is verified against.

use std::any::Any;

use super::{layer, Backend, StepCtx};
use crate::error::{BitnnError, Result};
use crate::exec::ExecPolicy;
use crate::graph::{unfused_steps, CompiledPlan, GraphNode, Step};
use crate::layers::{avg_pool_2x2, global_avg_pool, Layer};
use crate::model::block::{add, fuse_channel_stage, fuse_spatial_stage, shortcut_channels};
use crate::pack::PackedActivations;
use crate::tensor::{BitTensor, Tensor};

use crate::graph::NodeOp;

/// The reference backend. Stateless: its scratch is `()`, every step
/// allocates its own intermediates, and execution is always inline on the
/// calling thread.
///
/// It compiles the *unfused* step list — one step per node, only the
/// mandatory sign-into-conv folding — so each node's value is observable
/// and nothing hides behind a fused kernel. It can nevertheless execute
/// fused steps (another backend's plan) by running the same per-element
/// operations unfused-equivalently, which the conformance suite relies
/// on.
#[derive(Debug, Clone, Copy, Default)]
pub struct ScalarBackend;

impl Backend for ScalarBackend {
    fn name(&self) -> &'static str {
        "scalar"
    }

    fn compile(&self, nodes: &[GraphNode]) -> CompiledPlan {
        CompiledPlan::from_steps(nodes.len(), unfused_steps(nodes))
    }

    fn new_scratch(&self) -> Box<dyn Any + Send> {
        Box::new(())
    }

    fn execute_step(
        &self,
        ctx: StepCtx<'_>,
        _scratch: &mut (dyn Any + Send),
        dst: &mut Tensor,
    ) -> Result<()> {
        let nodes = ctx.nodes;
        match *ctx.step {
            Step::Input { .. } => unreachable!("the dispatch loop skips input steps"),
            Step::Stem { node, .. } => {
                *dst = layer!(nodes, node, NodeOp::StemConv).forward(ctx.a);
            }
            Step::Conv { node, sign, .. } => {
                let bits = layer!(nodes, sign, NodeOp::Sign).binarize(ctx.a);
                let packed = PackedActivations::pack(&bits).expect("4-D input");
                *dst = layer!(nodes, node, NodeOp::BinConv).forward_packed(&packed);
            }
            Step::Bn { node, .. } => {
                *dst = layer!(nodes, node, NodeOp::BatchNorm).forward(ctx.a);
            }
            Step::Act { node, .. } => {
                *dst = layer!(nodes, node, NodeOp::Act).forward(ctx.a);
            }
            Step::AvgPool { .. } => {
                *dst = avg_pool_2x2(ctx.a);
            }
            Step::ChannelDup { .. } => {
                *dst = shortcut_channels(ctx.a, 2 * ctx.a.shape()[1]);
            }
            Step::Add { .. } => {
                *dst = add(ctx.a, ctx.b.expect("add step has two operands"));
            }
            Step::GlobalPool { .. } => {
                *dst = global_avg_pool(ctx.a);
            }
            Step::Classifier { node, .. } => {
                *dst = layer!(nodes, node, NodeOp::Classifier).forward_2d(ctx.a);
            }
            Step::FusedSpatial {
                act,
                sign,
                conv,
                bn,
                ..
            } => {
                let conv_out = conv_chain(nodes, sign, conv, ctx.a);
                return fuse_spatial_stage(
                    &conv_out,
                    ctx.a,
                    2,
                    layer!(nodes, bn, NodeOp::BatchNorm),
                    layer!(nodes, act, NodeOp::Act),
                    dst,
                );
            }
            Step::FusedChannel {
                act,
                sign,
                conv,
                bn,
                ..
            } => {
                let conv_out = conv_chain(nodes, sign, conv, ctx.a);
                fuse_channel_stage(
                    &conv_out,
                    ctx.a,
                    layer!(nodes, bn, NodeOp::BatchNorm),
                    layer!(nodes, act, NodeOp::Act),
                    dst,
                );
            }
        }
        Ok(())
    }

    fn policy(&self) -> ExecPolicy {
        ExecPolicy::single_threaded()
    }
}

/// The naive `sign → binary conv` prefix of a fused step.
fn conv_chain(nodes: &[GraphNode], sign: usize, conv: usize, x: &Tensor) -> Tensor {
    let bits = layer!(nodes, sign, NodeOp::Sign).binarize(x);
    let packed = PackedActivations::pack(&bits).expect("4-D input");
    layer!(nodes, conv, NodeOp::BinConv).forward_packed(&packed)
}

/// The scalar reference walk: per-node naive forwards, fresh allocations,
/// no fusion, no engine — the graph-level twin of the frozen
/// `ReActNet::forward_scalar` oracle. When `traces` is `Some`, the
/// binarized input of every 3×3 binary convolution is appended in
/// topological order (the bit sequences of the paper's Sec. I
/// observation).
pub(crate) fn run_scalar(
    nodes: &[GraphNode],
    input: &Tensor,
    mut traces: Option<&mut Vec<BitTensor>>,
) -> Result<Tensor> {
    fn get(values: &[Option<Tensor>], v: usize) -> &Tensor {
        values[v].as_ref().expect("topological order")
    }
    let mut values: Vec<Option<Tensor>> = (0..nodes.len()).map(|_| None).collect();
    for (i, node) in nodes.iter().enumerate() {
        let out = match node.op {
            NodeOp::Input { .. } => input.clone(),
            NodeOp::StemConv(ref stem) => stem.forward(get(&values, node.inputs[0])),
            NodeOp::Sign(_) => continue, // folded into the consuming conv
            NodeOp::BinConv(ref conv) => {
                let sign = node.inputs[0];
                let sg = layer!(nodes, sign, NodeOp::Sign);
                let bits = sg.binarize(get(&values, nodes[sign].inputs[0]));
                let packed = PackedActivations::pack(&bits).expect("4-D input");
                let y = conv.forward_packed(&packed);
                if let Some(ref mut t) = traces {
                    if conv.kernel_size() == (3, 3) {
                        t.push(bits);
                    }
                }
                y
            }
            NodeOp::BatchNorm(ref bn) => bn.forward(get(&values, node.inputs[0])),
            NodeOp::Act(ref act) => act.forward(get(&values, node.inputs[0])),
            NodeOp::AvgPool2x2 => avg_pool_2x2(get(&values, node.inputs[0])),
            NodeOp::ChannelDup => {
                let x = get(&values, node.inputs[0]);
                shortcut_channels(x, 2 * x.shape()[1])
            }
            NodeOp::Add => add(get(&values, node.inputs[0]), get(&values, node.inputs[1])),
            NodeOp::GlobalAvgPool => global_avg_pool(get(&values, node.inputs[0])),
            NodeOp::Classifier(ref fc) => fc.forward_2d(get(&values, node.inputs[0])),
        };
        values[i] = Some(out);
    }
    values
        .pop()
        .flatten()
        .ok_or_else(|| BitnnError::InvalidConfig("graph produced no output value".into()))
}
