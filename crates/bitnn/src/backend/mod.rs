//! Execution backends: pluggable "how do steps run" strategies behind
//! the backend-neutral graph executor.
//!
//! The graph side ([`crate::graph`]) owns *what* runs — step vocabulary,
//! step-list builders, the liveness pass that assigns arena slots, and
//! the dispatch loop. A [`Backend`] owns *how*: it compiles a node list
//! into the step list it wants to execute ([`Backend::compile`]), carries
//! its own opaque scratch state ([`Backend::new_scratch`]), and computes
//! one step at a time into a caller-provided tensor
//! ([`Backend::execute_step`]).
//!
//! Two backends ship:
//!
//! * [`CpuBackend`] — the production path: fused steps, the
//!   tiled/parallel [`Engine`] kernels with SIMD dispatch (see
//!   [`crate::simd`]), channel-packed activations staged in reused
//!   buffers, zero steady-state allocation.
//! * [`ScalarBackend`] — the frozen reference: unfused steps, naive
//!   per-node forwards, fresh allocations. Slow, obvious, and the
//!   bit-exactness oracle every other backend is tested against.
//!
//! All backends are bit-exact with each other by construction: the binary
//! convolutions are integer, and the float stages apply the same
//! per-element operations in the same order. The conformance suite
//! (`tests/backend_conformance.rs`) enforces this across random graphs,
//! shapes, and thread counts.
//!
//! Selection is explicit — `--backend` on the CLI, [`BackendKind`] in
//! code — with an `auto` mode that honors the `BITNN_BACKEND`
//! environment variable and otherwise picks the CPU backend.

mod cpu;
pub(crate) mod scalar;

pub use cpu::CpuBackend;
pub use scalar::ScalarBackend;

use std::any::Any;
use std::fmt;
use std::str::FromStr;

use crate::engine::Engine;
use crate::error::Result;
use crate::exec::ExecPolicy;
use crate::graph::{CompiledPlan, GraphNode, Step};
use crate::tensor::Tensor;

/// Everything a backend sees when executing one step: the graph's node
/// list (layer weights live there), the step itself, and the operand
/// tensors the dispatch loop resolved from the arena.
pub struct StepCtx<'a> {
    /// The graph's nodes, in topological order.
    pub nodes: &'a [GraphNode],
    /// The step to execute.
    pub step: &'a Step,
    /// First operand value (every non-input step reads at least one).
    pub a: &'a Tensor,
    /// Second operand value (present only for [`Step::Add`]).
    pub b: Option<&'a Tensor>,
    /// Whether this step carries a binary-domain edge — a folded sign
    /// whose only consumer is the step's own binary conv. Backends may
    /// then keep the sign output channel-packed (the CPU backend writes
    /// packed lane words directly, skipping the flat bit tensor and the
    /// per-conv re-pack); ignoring the hint is always correct.
    pub binary_edge: bool,
}

/// A pluggable execution strategy for compiled model graphs.
///
/// The contract with the dispatch loop
/// (`crate::graph` / [`crate::graph::ModelGraph::forward_on`]):
///
/// * `compile` chooses the step list (fused or unfused) and funnels it
///   through [`CompiledPlan::from_steps`], so the arena aliasing
///   guarantees hold for every backend.
/// * `execute_step` is handed operands resolved by the loop and must
///   write the step's full result into `dst` (whose previous contents
///   are unspecified — it is a recycled arena buffer).
/// * `scratch` is whatever `new_scratch` returned; the backend downcasts
///   it back. Backends must not stash results there across steps — all
///   dataflow goes through the arena.
/// * Every backend must be bit-exact with [`ScalarBackend`] on every
///   graph: same float results, same integer conv outputs.
pub trait Backend: fmt::Debug + Send + Sync {
    /// Short stable name (`"cpu"`, `"scalar"`) for reports and logs.
    fn name(&self) -> &'static str;

    /// Compile a validated node list into the plan this backend executes.
    fn compile(&self, nodes: &[GraphNode]) -> CompiledPlan;

    /// Fresh backend-private scratch state for one forward stream.
    fn new_scratch(&self) -> Box<dyn Any + Send>;

    /// Execute one step into `dst` using the backend's scratch.
    ///
    /// # Errors
    ///
    /// Returns [`crate::BitnnError`] for unsupported runtime geometry
    /// (e.g. a fused shortcut stride other than 1 or 2).
    fn execute_step(
        &self,
        ctx: StepCtx<'_>,
        scratch: &mut (dyn Any + Send),
        dst: &mut Tensor,
    ) -> Result<()>;

    /// The execution policy this backend runs under (thread count,
    /// lowering, inline threshold).
    fn policy(&self) -> ExecPolicy;
}

/// Which backend to run — the CLI's `--backend` flag and the programmatic
/// selector.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum BackendKind {
    /// Pick automatically: the `BITNN_BACKEND` environment variable when
    /// it names a concrete backend, otherwise the CPU backend.
    #[default]
    Auto,
    /// The fused, tiled, SIMD-dispatched engine path.
    Cpu,
    /// The naive scalar reference path.
    Scalar,
}

impl BackendKind {
    /// All concrete kinds, for sweeps and help text.
    pub const ALL: [BackendKind; 2] = [BackendKind::Cpu, BackendKind::Scalar];

    /// Resolve `Auto` to a concrete kind: `BITNN_BACKEND` when it parses
    /// to one, otherwise [`BackendKind::Cpu`]. Concrete kinds pass
    /// through unchanged.
    pub fn resolve(self) -> BackendKind {
        let kind = match self {
            BackendKind::Auto => std::env::var("BITNN_BACKEND")
                .ok()
                .and_then(|s| s.parse().ok())
                .unwrap_or(BackendKind::Auto),
            k => k,
        };
        match kind {
            // `BITNN_BACKEND=auto` (or unset) falls through to the
            // production backend.
            BackendKind::Auto => BackendKind::Cpu,
            k => k,
        }
    }

    /// Instantiate the backend. Engine-backed kinds run on `engine`; the
    /// scalar backend ignores it (it is single-threaded by design).
    pub fn create(self, engine: Engine) -> Box<dyn Backend> {
        match self.resolve() {
            BackendKind::Auto | BackendKind::Cpu => Box::new(CpuBackend::new(engine)),
            BackendKind::Scalar => Box::new(ScalarBackend),
        }
    }
}

impl FromStr for BackendKind {
    type Err = String;

    fn from_str(s: &str) -> std::result::Result<Self, String> {
        match s {
            "auto" => Ok(BackendKind::Auto),
            "cpu" => Ok(BackendKind::Cpu),
            "scalar" => Ok(BackendKind::Scalar),
            other => Err(format!(
                "unknown backend '{other}' (expected auto, cpu, or scalar)"
            )),
        }
    }
}

impl fmt::Display for BackendKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            BackendKind::Auto => "auto",
            BackendKind::Cpu => "cpu",
            BackendKind::Scalar => "scalar",
        })
    }
}

/// Every registered backend, for conformance sweeps: the scalar oracle
/// first, then the CPU backend at the given thread count.
pub fn all_backends(threads: usize) -> Vec<Box<dyn Backend>> {
    vec![
        Box::new(ScalarBackend),
        Box::new(CpuBackend::new(Engine::with_threads(threads))),
    ]
}

/// Fetch the layer behind a node, panicking on a kind mismatch — the plan
/// is derived from the same node list, so a mismatch is a planner bug.
macro_rules! layer {
    ($nodes:expr, $idx:expr, $variant:path) => {
        match $nodes[$idx].op {
            $variant(ref l) => l,
            ref other => unreachable!("planner wired {} into a {:?}", $idx, other.tag()),
        }
    };
}
pub(crate) use layer;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kind_parse_and_display_roundtrip() {
        for kind in [BackendKind::Auto, BackendKind::Cpu, BackendKind::Scalar] {
            assert_eq!(kind.to_string().parse::<BackendKind>(), Ok(kind));
        }
        assert!("gpu".parse::<BackendKind>().is_err());
    }

    #[test]
    fn auto_resolves_to_a_concrete_kind() {
        // Whatever the environment says, Auto must never survive
        // resolution, and concrete kinds pass through.
        assert_ne!(BackendKind::Auto.resolve(), BackendKind::Auto);
        assert_eq!(BackendKind::Scalar.resolve(), BackendKind::Scalar);
        assert_eq!(BackendKind::Cpu.resolve(), BackendKind::Cpu);
    }

    #[test]
    fn registry_lists_scalar_first() {
        let backends = all_backends(1);
        assert_eq!(backends[0].name(), "scalar");
        assert!(backends.iter().any(|b| b.name() == "cpu"));
    }
}
